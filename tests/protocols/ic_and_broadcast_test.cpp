#include <gtest/gtest.h>

#include <memory>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "protocols/broadcast.h"
#include "protocols/common.h"
#include "protocols/interactive_consistency.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

TEST(UnauthBroadcast, CorrectSenderBitIsDecided) {
  SystemParams params{4, 1};
  for (int b : {0, 1}) {
    std::vector<Value> proposals(4, Value::bit(1 - b));
    proposals[2] = Value::bit(b);  // sender 2
    RunResult res = run_execution(params, unauth_broadcast_bit(2), proposals,
                                  Adversary::none());
    for (ProcessId p = 0; p < 4; ++p) {
      ASSERT_TRUE(res.decisions[p].has_value());
      EXPECT_EQ(*res.decisions[p], Value::bit(b));
    }
  }
}

TEST(UnauthBroadcast, EquivocatingSenderStillYieldsAgreement) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(1);
  RunResult res = run_execution(params, unauth_broadcast_bit(0),
                                std::vector<Value>(4, Value::bit(0)), adv);
  std::optional<Value> first;
  for (ProcessId p = 1; p < 4; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    if (!first) first = res.decisions[p];
    EXPECT_EQ(*res.decisions[p], *first);
  }
}

TEST(UnauthBroadcast, SilentSenderAgreesOnDefault) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{1}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_silent();
  RunResult res = run_execution(params, unauth_broadcast_bit(1),
                                std::vector<Value>(4, Value::bit(1)), adv);
  for (ProcessId p : {0u, 2u, 3u}) {
    EXPECT_EQ(*res.decisions[p], Value::bit(0));  // default when silent
  }
}

TEST(AuthIC, FaultFreeVectorMatchesProposals) {
  SystemParams params{4, 2};
  auto auth = std::make_shared<crypto::Authenticator>(3, 4);
  std::vector<Value> proposals{Value{"a"}, Value{"b"}, Value{"c"},
                               Value{"d"}};
  RunResult res = run_execution(params, auth_interactive_consistency(auth),
                                proposals, Adversary::none());
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    const ValueVec& vec = res.decisions[p]->as_vec();
    ASSERT_EQ(vec.size(), 4u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(vec[i], proposals[i]);
  }
}

TEST(AuthIC, DishonestMajorityStillConsistent) {
  // n = 5, t = 3: far beyond any unauthenticated bound.
  SystemParams params{5, 3};
  auto auth = std::make_shared<crypto::Authenticator>(4, 5);
  Adversary adv;
  adv.faulty = ProcessSet{{1, 2, 4}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_silent();
  std::vector<Value> proposals{Value{"p0"}, Value{"x"}, Value{"x"},
                               Value{"p3"}, Value{"x"}};
  RunResult res = run_execution(params, auth_interactive_consistency(auth),
                                proposals, adv);
  for (ProcessId p : {0u, 3u}) {
    ASSERT_TRUE(res.decisions[p].has_value());
    const ValueVec& vec = res.decisions[p]->as_vec();
    EXPECT_EQ(vec[0], Value{"p0"});
    EXPECT_EQ(vec[3], Value{"p3"});
    EXPECT_EQ(vec[1], bottom());
    EXPECT_EQ(vec[2], bottom());
    EXPECT_EQ(vec[4], bottom());
  }
  EXPECT_EQ(*res.decisions[0], *res.decisions[3]);
}

TEST(AuthIC, ByzantineComponentsAgreeEvenIfGarbage) {
  SystemParams params{4, 1};
  auto auth = std::make_shared<crypto::Authenticator>(5, 4);
  Adversary adv;
  adv.faulty = ProcessSet{{2}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_noise(11, 3);
  std::vector<Value> proposals(4, Value{"v"});
  RunResult res = run_execution(params, auth_interactive_consistency(auth),
                                proposals, adv);
  for (ProcessId p : {0u, 1u, 3u}) {
    EXPECT_EQ(*res.decisions[p], *res.decisions[0]);
  }
}

TEST(UnauthIC, BitVectorsAgreeUnderByzantineFault) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{3}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(30);
  std::vector<Value> proposals{Value::bit(1), Value::bit(0), Value::bit(1),
                               Value::bit(0)};
  RunResult res = run_execution(params, unauth_interactive_consistency_bits(),
                                proposals, adv);
  std::optional<Value> first;
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    if (!first) first = res.decisions[p];
    EXPECT_EQ(*res.decisions[p], *first);
    const ValueVec& vec = res.decisions[p]->as_vec();
    EXPECT_EQ(vec[0], Value::bit(1));
    EXPECT_EQ(vec[1], Value::bit(0));
    EXPECT_EQ(vec[2], Value::bit(1));
  }
}

TEST(UnauthIC, FaultFree) {
  SystemParams params{4, 1};
  std::vector<Value> proposals{Value::bit(0), Value::bit(1), Value::bit(1),
                               Value::bit(0)};
  RunResult res = run_execution(params, unauth_interactive_consistency_bits(),
                                proposals, Adversary::none());
  for (ProcessId p = 0; p < 4; ++p) {
    const ValueVec& vec = res.decisions[p]->as_vec();
    for (int i = 0; i < 4; ++i) EXPECT_EQ(vec[i], proposals[i]);
  }
}

}  // namespace
}  // namespace ba::protocols
