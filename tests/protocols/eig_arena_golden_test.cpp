// Golden equivalence of the arena EIG encoding against the retained seed
// implementation (eig_reference_*): over a (protocol × n × t × fault-plan)
// grid, executed on both the lockstep and sim backends, decisions AND
// byte-encoded traces must be identical. The trace comparison is the strong
// claim: every report payload an arena process emits — ordering, label
// encoding, value sharing — is byte-for-byte what the seed's
// std::map-over-labels implementation emitted.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "engine/backend.h"
#include "engine/registry.h"
#include "protocols/eig.h"
#include "runtime/sync_system.h"
#include "runtime/trace_io.h"

namespace ba::protocols {
namespace {

struct FaultPlan {
  std::string name;
  Adversary adv;
};

std::vector<FaultPlan> fault_plans(std::uint32_t n, std::uint32_t t) {
  std::vector<FaultPlan> plans;
  plans.push_back({"fault_free", Adversary::none()});
  if (t >= 1) {
    {
      FaultPlan p{"silent_byz", {}};
      p.adv.faulty = ProcessSet{{n - 1}};
      p.adv.byzantine = p.adv.faulty;
      p.adv.byzantine_factory = byz_silent();
      plans.push_back(std::move(p));
    }
    {
      FaultPlan p{"noise_byz", {}};
      p.adv.faulty = ProcessSet{{1}};
      p.adv.byzantine = p.adv.faulty;
      p.adv.byzantine_factory = byz_noise(0x5eed + n, t + 2);
      plans.push_back(std::move(p));
    }
    {
      FaultPlan p{"equivocate_byz", {}};
      p.adv.faulty = ProcessSet{{0}};
      p.adv.byzantine = p.adv.faulty;
      p.adv.byzantine_factory = byz_equivocate_bits(t + 1);
      plans.push_back(std::move(p));
    }
    {
      FaultPlan p{"random_omissions",
                  random_omissions(ProcessSet{{n - 1}}, 0xd1ce + n, 40)};
      plans.push_back(std::move(p));
    }
  }
  if (t >= 2) {
    FaultPlan p{"two_noisy_byz", {}};
    p.adv.faulty = ProcessSet{{0, n - 1}};
    p.adv.byzantine = p.adv.faulty;
    p.adv.byzantine_factory = byz_noise(0xabcd, t + 2);
    plans.push_back(std::move(p));
  }
  return plans;
}

std::vector<Value> grid_proposals(std::uint32_t n) {
  std::vector<Value> proposals;
  proposals.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    // Mixed kinds so interning covers ints, strings, and null.
    if (p % 5 == 4) {
      proposals.push_back(Value::null());
    } else if (p % 3 == 2) {
      proposals.emplace_back("prop-" + std::to_string(p));
    } else {
      proposals.emplace_back(static_cast<std::int64_t>(p * 7 + 1));
    }
  }
  return proposals;
}

struct Variant {
  std::string name;
  ProtocolFactory arena;
  ProtocolFactory reference;
};

void expect_golden(const Variant& variant, std::uint32_t n, std::uint32_t t) {
  SystemParams params{n, t};
  ASSERT_TRUE(eig_paths::layout_fits(n, t))
      << "grid point would silently test reference-vs-reference";
  const std::vector<Value> proposals = grid_proposals(n);
  for (const std::string& backend_name : {std::string("lockstep"),
                                          std::string("sim")}) {
    const engine::BackendHandle backend =
        engine::make_backend(backend_name);
    for (const FaultPlan& plan : fault_plans(n, t)) {
      RunOptions opts;
      opts.record_trace = true;
      RunResult arena_res =
          backend->run(params, variant.arena, proposals, plan.adv, opts);
      RunResult ref_res =
          backend->run(params, variant.reference, proposals, plan.adv, opts);
      const std::string where = variant.name + " n=" + std::to_string(n) +
                                " t=" + std::to_string(t) + " " + plan.name +
                                " @" + backend_name;
      ASSERT_EQ(arena_res.decisions.size(), ref_res.decisions.size()) << where;
      for (std::size_t p = 0; p < arena_res.decisions.size(); ++p) {
        EXPECT_EQ(arena_res.decisions[p], ref_res.decisions[p])
            << where << " process " << p;
      }
      EXPECT_EQ(arena_res.messages_sent_total, ref_res.messages_sent_total)
          << where;
      EXPECT_EQ(arena_res.rounds_executed, ref_res.rounds_executed) << where;
      EXPECT_EQ(encode_trace(arena_res.trace), encode_trace(ref_res.trace))
          << where << ": traces diverge";
    }
  }
}

Variant ic_variant() {
  return {"eig-ic", eig_interactive_consistency(),
          eig_reference_interactive_consistency()};
}
Variant strong_variant() {
  return {"eig-strong", eig_strong_consensus(),
          eig_reference_strong_consensus()};
}

TEST(EigArenaGolden, InteractiveConsistencySmall) {
  expect_golden(ic_variant(), 4, 1);
  expect_golden(ic_variant(), 5, 1);
}

TEST(EigArenaGolden, InteractiveConsistencyTwoFaults) {
  expect_golden(ic_variant(), 7, 2);
  expect_golden(ic_variant(), 9, 2);
}

TEST(EigArenaGolden, InteractiveConsistencyThreeFaults) {
  expect_golden(ic_variant(), 10, 3);
}

TEST(EigArenaGolden, StrongConsensusSmall) {
  expect_golden(strong_variant(), 4, 1);
  expect_golden(strong_variant(), 5, 1);
}

TEST(EigArenaGolden, StrongConsensusTwoFaults) {
  expect_golden(strong_variant(), 7, 2);
}

TEST(EigArenaGolden, StrongConsensusThreeFaults) {
  expect_golden(strong_variant(), 10, 3);
}

// t = 0 degenerates to one exchange of proposals; the arena stores leaves
// directly (no tallies), which is its own code path.
TEST(EigArenaGolden, DegenerateZeroFaults) {
  expect_golden(ic_variant(), 3, 0);
  expect_golden(strong_variant(), 3, 0);
}

// The shared ReportCache must not leak state across runs in a way that
// changes behaviour: re-running the same factory twice is byte-stable.
TEST(EigArenaGolden, FactoryReuseIsByteStable) {
  SystemParams params{5, 1};
  const std::vector<Value> proposals = grid_proposals(5);
  ProtocolFactory factory = eig_interactive_consistency();
  RunOptions opts;
  opts.record_trace = true;
  RunResult a = run_execution(params, factory, proposals, Adversary::none(),
                              opts);
  RunResult b = run_execution(params, factory, proposals, Adversary::none(),
                              opts);
  EXPECT_EQ(encode_trace(a.trace), encode_trace(b.trace));
}

}  // namespace
}  // namespace ba::protocols
