#include "protocols/crusader.h"

#include <gtest/gtest.h>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "protocols/common.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

void expect_crusader_agreement(const RunResult& res, const ProcessSet& correct,
                               const char* label) {
  std::optional<Value> bit;
  for (ProcessId p : correct) {
    ASSERT_TRUE(res.decisions[p].has_value()) << label;
    const Value& d = *res.decisions[p];
    if (d == bottom()) continue;
    if (!bit) {
      bit = d;
    } else {
      EXPECT_EQ(d, *bit) << label << ": two different non-bottom decisions";
    }
  }
}

TEST(Crusader, CorrectSenderAllDecideItsBit) {
  SystemParams params{4, 1};
  for (int b : {0, 1}) {
    std::vector<Value> proposals(4, Value::bit(1 - b));
    proposals[1] = Value::bit(b);
    RunResult res = run_execution(params, crusader_broadcast_bit(1),
                                  proposals, Adversary::none());
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_EQ(*res.decisions[p], Value::bit(b)) << "b=" << b;
    }
  }
}

TEST(Crusader, SilentSenderYieldsBottomEverywhere) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_silent();
  RunResult res = run_execution(params, crusader_broadcast_bit(0),
                                std::vector<Value>(4, Value::bit(1)), adv);
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(*res.decisions[p], bottom());
  }
}

TEST(Crusader, EquivocatingSenderNeverSplitsBits) {
  // The sender sends 0 to half, 1 to half: correct processes may decide a
  // bit or bottom, but never two different bits.
  for (std::uint32_t n : {4u, 7u, 10u}) {
    SystemParams params{n, (n - 1) / 3};
    Adversary adv;
    adv.faulty = ProcessSet{{0}};
    adv.byzantine = adv.faulty;
    adv.byzantine_factory = byz_equivocate_bits(2);
    RunResult res = run_execution(params, crusader_broadcast_bit(0),
                                  std::vector<Value>(n, Value::bit(0)), adv);
    expect_crusader_agreement(res, adv.faulty.complement(n), "equivocate");
  }
}

TEST(Crusader, ByzantineEchoersCannotForgeDecision) {
  // t Byzantine echoers (not the sender) voting the wrong way cannot push a
  // wrong bit to n - t echoes.
  SystemParams params{7, 2};
  Adversary adv;
  adv.faulty = ProcessSet{{5, 6}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(2);
  std::vector<Value> proposals(7, Value::bit(0));
  RunResult res = run_execution(params, crusader_broadcast_bit(0), proposals,
                                adv);
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(*res.decisions[p], Value::bit(0)) << "p" << p;
  }
}

TEST(Crusader, TwoRoundsQuadraticMessages) {
  SystemParams params{10, 3};
  RunResult res = run_all_correct(params, crusader_broadcast_bit(0),
                                  Value::bit(1));
  EXPECT_TRUE(res.quiesced);
  EXPECT_EQ(res.rounds_executed, crusader_rounds() + 1);  // +1 silent round
  // n-1 initial + n * (n-1) echoes.
  EXPECT_EQ(res.messages_sent_by_correct, 9u + 10u * 9u);
}

// Exhaustive sweep: every (Byzantine) single-fault position and every
// round-1 equivocation pattern for n = 4, t = 1 — crusader agreement and
// sender validity must survive all of them.
class CrusaderSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrusaderSweep, AllEquivocationPatterns) {
  const int pattern = GetParam();  // bit sent to receiver i = (pattern>>i)&1
  SystemParams params{4, 1};

  class PatternSender final : public Process {
   public:
    PatternSender(const ProcessContext& ctx, int pattern)
        : n_(ctx.params.n), self_(ctx.self), pattern_(pattern) {}
    Outbox outbox_for_round(Round r) override {
      Outbox out;
      if (r != 1) return out;
      for (ProcessId p = 0; p < n_; ++p) {
        if (p == self_) continue;
        out.push_back(Outgoing{
            p, tagged("cru-init", {Value::bit((pattern_ >> p) & 1)})});
      }
      return out;
    }
    void deliver(Round, const Inbox&) override {}
    [[nodiscard]] std::optional<Value> decision() const override {
      return std::nullopt;
    }
    [[nodiscard]] bool quiescent() const override { return true; }

   private:
    std::uint32_t n_;
    ProcessId self_;
    int pattern_;
  };

  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = [pattern](const ProcessContext& ctx) {
    return std::make_unique<PatternSender>(ctx, pattern);
  };
  RunResult res = run_execution(params, crusader_broadcast_bit(0),
                                std::vector<Value>(4, Value::bit(0)), adv);
  expect_crusader_agreement(res, ProcessSet{{1, 2, 3}}, "pattern");
}

INSTANTIATE_TEST_SUITE_P(Patterns, CrusaderSweep,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace ba::protocols
