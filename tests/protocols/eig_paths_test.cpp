// Unit tests for the dense path-id arithmetic underlying the EIG arena
// encoding: base-n digit packing, lexicographic ordering within a level,
// saturation at the uint64 boundary, and the layout_fits gate that decides
// when the arena is allowed to allocate dense levels.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "protocols/eig.h"

namespace ba::protocols::eig_paths {
namespace {

TEST(EigPaths, ChildIdIsBaseNPacking) {
  // id(2,0,1) base 5 = (2*5 + 0)*5 + 1 = 51.
  std::uint64_t id = kRootId;
  id = child_id(id, 5, 2);
  id = child_id(id, 5, 0);
  id = child_id(id, 5, 1);
  EXPECT_EQ(id, 51u);
}

TEST(EigPaths, DecodePathRoundTrips) {
  constexpr std::uint32_t n = 7;
  std::vector<ProcessId> digits{3, 3, 0, 6, 1};  // repeats allowed
  std::uint64_t id = kRootId;
  for (ProcessId d : digits) id = child_id(id, n, d);
  std::vector<ProcessId> out;
  decode_path(id, n, static_cast<std::uint32_t>(digits.size()), out);
  EXPECT_EQ(out, digits);
}

TEST(EigPaths, DecodeRootIsEmpty) {
  std::vector<ProcessId> out{1, 2, 3};
  decode_path(kRootId, 4, 0, out);
  EXPECT_TRUE(out.empty());
}

// Ascending dense ids within a level must enumerate labels in lexicographic
// order — the property that keeps arena report payloads byte-identical to
// the seed's std::map iteration.
TEST(EigPaths, AscendingIdsAreLexicographicLabels) {
  constexpr std::uint32_t n = 4;
  constexpr std::uint32_t level = 3;
  std::vector<ProcessId> prev;
  std::vector<ProcessId> cur;
  const std::uint64_t size = level_size(n, level);
  ASSERT_EQ(size, 64u);
  for (std::uint64_t id = 0; id < size; ++id) {
    decode_path(id, n, level, cur);
    if (id > 0) {
      EXPECT_LT(prev, cur) << "id " << id;  // strict lexicographic increase
    }
    prev = cur;
  }
}

TEST(EigPaths, PathContains) {
  constexpr std::uint32_t n = 6;
  std::uint64_t id = kRootId;
  for (ProcessId d : {2u, 5u, 2u}) id = child_id(id, n, d);
  EXPECT_TRUE(path_contains(id, n, 3, 2));
  EXPECT_TRUE(path_contains(id, n, 3, 5));
  EXPECT_FALSE(path_contains(id, n, 3, 0));
  EXPECT_FALSE(path_contains(id, n, 3, 4));
  // Level 0 (the root label) contains nothing — including digit 0, which is
  // the root's dense id.
  EXPECT_FALSE(path_contains(kRootId, n, 0, 0));
}

TEST(EigPaths, LevelSizeExactSmall) {
  EXPECT_EQ(level_size(5, 0), 1u);
  EXPECT_EQ(level_size(5, 1), 5u);
  EXPECT_EQ(level_size(5, 3), 125u);
  EXPECT_EQ(level_size(2, 10), 1024u);
  // n = 1 is degenerate but well defined: one label per level.
  EXPECT_EQ(level_size(1, 9), 1u);
}

TEST(EigPaths, LevelSizeSaturatesInsteadOfWrapping) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  // 2^64 overflows by exactly one doubling: must saturate, not wrap to 0.
  EXPECT_EQ(level_size(2, 64), kMax);
  EXPECT_EQ(level_size(2, 63), 1ull << 63);
  // Large-base blowups.
  EXPECT_EQ(level_size(1u << 16, 3), 1ull << 48);
  EXPECT_EQ(level_size(1u << 16, 5), kMax);
  // (2^32-1)^2 still fits in 64 bits; the cube does not.
  EXPECT_EQ(level_size(0xffffffffu, 2), 0xffffffffULL * 0xffffffffULL);
  EXPECT_EQ(level_size(0xffffffffu, 3), kMax);
}

TEST(EigPaths, LayoutFitsGatesPathologicalCorners) {
  // Every tier-1 operating point fits.
  EXPECT_TRUE(layout_fits(4, 1));
  EXPECT_TRUE(layout_fits(64, 1));
  EXPECT_TRUE(layout_fits(10, 3));
  EXPECT_TRUE(layout_fits(128, 1));
  // Exponential corners must fall back to the reference implementation
  // rather than attempt astronomically sized dense levels.
  EXPECT_FALSE(layout_fits(128, 9));
  EXPECT_FALSE(layout_fits(1000, 6));
}

}  // namespace
}  // namespace ba::protocols::eig_paths
