#include "protocols/beyond_agreement.h"

#include <gtest/gtest.h>

#include <set>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

constexpr std::int64_t kEps = 1;
constexpr std::int64_t kBound = 1000;

struct ApproxOutcome {
  std::int64_t min_decided;
  std::int64_t max_decided;
  std::int64_t min_input;
  std::int64_t max_input;
};

ApproxOutcome run_approx(const SystemParams& params,
                         const std::vector<std::int64_t>& inputs,
                         const Adversary& adv) {
  std::vector<Value> proposals;
  proposals.reserve(inputs.size());
  for (std::int64_t v : inputs) proposals.push_back(Value{v});
  RunResult res = run_execution(params, approximate_agreement(kEps, kBound),
                                proposals, adv);
  ApproxOutcome out{kBound + 1, -kBound - 1, kBound + 1, -kBound - 1};
  for (ProcessId p = 0; p < params.n; ++p) {
    if (adv.faulty.contains(p)) continue;
    EXPECT_TRUE(res.decisions[p].has_value()) << "p" << p;
    const std::int64_t d = res.decisions[p]->as_int();
    out.min_decided = std::min(out.min_decided, d);
    out.max_decided = std::max(out.max_decided, d);
    out.min_input = std::min(out.min_input, inputs[p]);
    out.max_input = std::max(out.max_input, inputs[p]);
  }
  return out;
}

TEST(ApproximateAgreement, FaultFreeConvergesWithinEpsilon) {
  SystemParams params{7, 2};
  auto out = run_approx(params, {-900, -300, 0, 10, 250, 600, 999},
                        Adversary::none());
  EXPECT_LE(out.max_decided - out.min_decided, kEps);
  EXPECT_GE(out.min_decided, out.min_input);
  EXPECT_LE(out.max_decided, out.max_input);
}

TEST(ApproximateAgreement, UnanimousInputIsFixedPoint) {
  SystemParams params{4, 1};
  auto out = run_approx(params, {123, 123, 123, 123}, Adversary::none());
  EXPECT_EQ(out.min_decided, 123);
  EXPECT_EQ(out.max_decided, 123);
}

TEST(ApproximateAgreement, ByzantineExtremesCannotDragOutOfRange) {
  SystemParams params{7, 2};
  Adversary adv;
  adv.faulty = ProcessSet{{5, 6}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_noise(3, 40);  // garbage values
  auto out = run_approx(params, {100, 110, 120, 130, 140, -999, 999}, adv);
  // Validity: decisions inside the range of CORRECT inputs.
  EXPECT_GE(out.min_decided, 100);
  EXPECT_LE(out.max_decided, 140);
  EXPECT_LE(out.max_decided - out.min_decided, kEps);
}

TEST(ApproximateAgreement, EquivocatingByzantineStillConverges) {
  SystemParams params{10, 3};
  Adversary adv;
  adv.faulty = ProcessSet{{7, 8, 9}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(40);
  std::vector<std::int64_t> inputs{-500, -400, -100, 0, 200, 300, 500,
                                   0, 0, 0};
  auto out = run_approx(params, inputs, adv);
  EXPECT_LE(out.max_decided - out.min_decided, kEps);
  EXPECT_GE(out.min_decided, -500);
  EXPECT_LE(out.max_decided, 500);
}

TEST(ApproximateAgreement, OmissionFaultsHarmless) {
  SystemParams params{7, 2};
  Adversary adv = isolate_group(ProcessSet{{5, 6}}, 2);
  auto out = run_approx(params, {-800, -200, -100, 0, 100, 200, 800}, adv);
  EXPECT_LE(out.max_decided - out.min_decided, kEps);
}

TEST(ApproximateAgreement, RoundsFormula) {
  EXPECT_EQ(approximate_agreement_rounds(1, 1), 2u);
  EXPECT_EQ(approximate_agreement_rounds(1000, 500), 1u);
  // 2*1000 / 1 needs 11 halvings: rounds = 12.
  EXPECT_EQ(approximate_agreement_rounds(1, 1000), 12u);
}

TEST(KSetAgreement, AtMostKDecisionsUnderCrashes) {
  // n = 6, t = 2, k = 2: 2 rounds. Exhaustive single+double crash schedules.
  SystemParams params{6, 2};
  std::vector<Value> proposals;
  for (int i = 0; i < 6; ++i) proposals.push_back(Value{i});
  for (ProcessId p = 0; p < 6; ++p) {
    for (ProcessId q = 0; q < 6; ++q) {
      if (q == p) continue;
      for (Round r1 = 1; r1 <= 3; ++r1) {
        for (Round r2 = 1; r2 <= 3; ++r2) {
          Adversary adv = crash_schedule({{p, r1}, {q, r2}});
          RunResult res = run_execution(params, k_set_agreement(2),
                                        proposals, adv);
          std::set<Value> decisions;
          for (ProcessId i = 0; i < 6; ++i) {
            if (adv.faulty.contains(i)) continue;
            ASSERT_TRUE(res.decisions[i].has_value());
            decisions.insert(*res.decisions[i]);
          }
          EXPECT_LE(decisions.size(), 2u)
              << "crash p" << p << "@" << r1 << ", p" << q << "@" << r2;
        }
      }
    }
  }
}

TEST(KSetAgreement, FaultFreeIsPlainMinConsensus) {
  SystemParams params{5, 2};
  std::vector<Value> proposals{Value{9}, Value{4}, Value{7}, Value{6},
                               Value{5}};
  RunResult res = run_execution(params, k_set_agreement(2), proposals,
                                Adversary::none());
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(*res.decisions[p], Value{4});
  }
}

TEST(KSetAgreement, RoundCountMatchesFormula) {
  SystemParams params{8, 4};
  RunResult res = run_all_correct(params, k_set_agreement(2), Value{1});
  ASSERT_TRUE(res.quiesced);
  for (const auto& pt : res.trace.procs) {
    EXPECT_EQ(pt.decision_round, k_set_rounds(params, 2));
  }
}

TEST(KSetAgreement, DecidedValueWasProposed) {
  SystemParams params{6, 3};
  std::vector<Value> proposals;
  for (int i = 0; i < 6; ++i) proposals.push_back(Value{10 * i});
  Adversary adv = crash_schedule({{0, 1}, {1, 2}, {2, 2}});
  RunResult res = run_execution(params, k_set_agreement(3), proposals, adv);
  for (ProcessId p = 3; p < 6; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    const std::int64_t d = res.decisions[p]->as_int();
    EXPECT_TRUE(d % 10 == 0 && d >= 0 && d <= 50);
  }
}

}  // namespace
}  // namespace ba::protocols
