#include "protocols/early_stopping.h"

#include <gtest/gtest.h>

#include "adversary/omission.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

struct CrashCase {
  SystemParams params;
  std::vector<std::pair<ProcessId, Round>> crashes;
};

Round max_correct_decision_round(const RunResult& res,
                                 const ProcessSet& faulty) {
  Round last = 0;
  for (ProcessId p = 0; p < res.trace.params.n; ++p) {
    if (faulty.contains(p)) continue;
    last = std::max(last, res.trace.procs[p].decision_round);
  }
  return last;
}

void check_consensus(const ProtocolFactory& proto, const CrashCase& cc,
                     const std::vector<int>& bits, const char* label) {
  std::vector<Value> proposals;
  proposals.reserve(cc.params.n);
  for (int b : bits) proposals.push_back(Value::bit(b));
  Adversary adv = crash_schedule(cc.crashes);
  RunResult res = run_execution(cc.params, proto, proposals, adv);
  std::optional<Value> first;
  for (ProcessId p = 0; p < cc.params.n; ++p) {
    if (adv.faulty.contains(p)) continue;
    ASSERT_TRUE(res.decisions[p].has_value())
        << label << " p" << p << " undecided";
    if (!first) first = res.decisions[p];
    EXPECT_EQ(*res.decisions[p], *first) << label << " agreement";
  }
  ASSERT_TRUE(first.has_value());
  // Crash-model validity: the decision is the proposal of SOME process
  // (crashed processes' round-1 values legitimately flow into min()).
  bool proposed = false;
  bool all_same = true;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (Value::bit(bits[i]) == *first) proposed = true;
    if (bits[i] != bits[0]) all_same = false;
  }
  EXPECT_TRUE(proposed) << label << " decided a never-proposed value";
  if (all_same) {
    EXPECT_EQ(*first, Value::bit(bits[0])) << label << " unanimous validity";
  }
}

TEST(FloodSet, FaultFreeDecidesMin) {
  SystemParams params{5, 2};
  std::vector<Value> proposals{Value::bit(1), Value::bit(0), Value::bit(1),
                               Value::bit(1), Value::bit(1)};
  RunResult res = run_execution(params, floodset_consensus(), proposals,
                                Adversary::none());
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(*res.decisions[p], Value::bit(0));
    EXPECT_EQ(res.trace.procs[p].decision_round, params.t + 1);
  }
}

TEST(FloodSet, ExhaustiveCrashSchedulesSmall) {
  // n = 4, t = 2: crash up to two processes at every (process, round)
  // combination, over several proposal vectors. Agreement + strong validity
  // must hold in all of them — for both variants.
  const SystemParams params{4, 2};
  const std::vector<std::vector<int>> inputs{
      {0, 0, 0, 0}, {1, 1, 1, 1}, {0, 1, 1, 1}, {1, 0, 0, 1}};
  for (const auto& proto :
       {floodset_consensus(), early_deciding_floodset()}) {
    for (const auto& bits : inputs) {
      // Zero crashes.
      check_consensus(proto, {params, {}}, bits, "no-crash");
      // One crash.
      for (ProcessId p = 0; p < 4; ++p) {
        for (Round r = 1; r <= 4; ++r) {
          check_consensus(proto, {params, {{p, r}}}, bits, "one-crash");
        }
      }
      // Two crashes (distinct processes, all round pairs).
      for (ProcessId p = 0; p < 4; ++p) {
        for (ProcessId q = p + 1; q < 4; ++q) {
          for (Round r1 = 1; r1 <= 3; ++r1) {
            for (Round r2 = 1; r2 <= 3; ++r2) {
              check_consensus(proto, {params, {{p, r1}, {q, r2}}}, bits,
                              "two-crash");
            }
          }
        }
      }
    }
  }
}

TEST(EarlyDeciding, FaultFreeDecidesInTwoRounds) {
  SystemParams params{6, 4};
  RunResult res = run_all_correct(params, early_deciding_floodset(),
                                  Value::bit(1));
  // heard sets are full and identical from round 2 on: decide at round 2,
  // far below t + 1 = 5.
  EXPECT_EQ(max_correct_decision_round(res, ProcessSet{}), 2u);
}

TEST(EarlyDeciding, DecisionRoundTracksActualFaults) {
  SystemParams params{8, 5};
  for (std::uint32_t f = 0; f <= 3; ++f) {
    std::vector<std::pair<ProcessId, Round>> crashes;
    for (std::uint32_t i = 0; i < f; ++i) {
      crashes.emplace_back(static_cast<ProcessId>(7 - i),
                           static_cast<Round>(i + 1));
    }
    Adversary adv = crash_schedule(crashes);
    RunResult res = run_execution(params, early_deciding_floodset(),
                                  std::vector<Value>(8, Value::bit(0)), adv);
    Round last = max_correct_decision_round(res, adv.faulty);
    EXPECT_LE(last, f + 2) << "f=" << f;
    EXPECT_LE(last, params.t + 1);
  }
}

TEST(EarlyDeciding, EarlyDecisionDoesNotSaveMessages) {
  // The [50] phenomenon: deciding early while still flooding to t + 1.
  SystemParams params{6, 4};
  RunResult early = run_all_correct(params, early_deciding_floodset(),
                                    Value::bit(0));
  RunResult full = run_all_correct(params, floodset_consensus(),
                                   Value::bit(0));
  EXPECT_EQ(early.messages_sent_by_correct, full.messages_sent_by_correct);
  EXPECT_LT(max_correct_decision_round(early, ProcessSet{}),
            max_correct_decision_round(full, ProcessSet{}));
}

TEST(FloodSet, MultiValuedProposalsDecideMinimum) {
  SystemParams params{4, 1};
  std::vector<Value> proposals{Value{7}, Value{3}, Value{9}, Value{5}};
  RunResult res = run_execution(params, floodset_consensus(), proposals,
                                Adversary::none());
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(*res.decisions[p], Value{3});
  }
}

}  // namespace
}  // namespace ba::protocols
