// Tests for the protocol combinators: parallel_composition (bundling),
// map_protocol (zero-message wrappers), delay_protocol (sequential offset).

#include <gtest/gtest.h>

#include <memory>

#include "protocols/adapters.h"
#include "protocols/common.h"
#include "protocols/parallel.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

/// Echoes its proposal once in round `round` and decides the count of
/// distinct senders heard by round 2.
class PingAt final : public DecidingProcess {
 public:
  PingAt(const ProcessContext& ctx, Round round)
      : ctx_(ctx), round_(round) {}
  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == round_) {
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != ctx_.self) out.push_back(Outgoing{p, ctx_.proposal});
      }
    }
    return out;
  }
  void deliver(Round r, const Inbox& inbox) override {
    heard_ += static_cast<std::int64_t>(inbox.size());
    if (r == round_ + 1) decide(Value{heard_});
  }

 private:
  ProcessContext ctx_;
  Round round_;
  std::int64_t heard_{0};
};

ProtocolFactory ping_at(Round round) {
  return [round](const ProcessContext& ctx) {
    return std::make_unique<PingAt>(ctx, round);
  };
}

TEST(Parallel, BundlesIntoOneMessagePerPairPerRound) {
  // Three instances all sending in round 1 must produce exactly one wire
  // message per ordered pair (the model's A.1.1 constraint).
  SystemParams params{3, 1};
  auto composite = parallel_composition(
      3,
      [](std::size_t, const ProcessContext& ctx) {
        return ping_at(1)(ctx);
      },
      [](const std::vector<Value>& ds) {
        std::int64_t sum = 0;
        for (const Value& d : ds) sum += d.as_int();
        return Value{sum};
      });
  RunResult res = run_all_correct(params, composite, Value::bit(1));
  // Round 1: each process sends exactly 2 wire messages (one per peer).
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(res.trace.procs[p].rounds[0].sent.size(), 2u);
  }
  // Each instance heard 2 peers => combined decision 6.
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(res.decisions[p]->as_int(), 6);
  }
}

TEST(Parallel, InstancesWithDisjointScheduleStayIndependent) {
  SystemParams params{3, 1};
  auto composite = parallel_composition(
      2,
      [](std::size_t i, const ProcessContext& ctx) {
        return ping_at(static_cast<Round>(i + 1))(ctx);
      },
      [](const std::vector<Value>& ds) {
        return Value{ValueVec(ds.begin(), ds.end())};
      });
  RunResult res = run_all_correct(params, composite, Value::bit(0));
  for (ProcessId p = 0; p < 3; ++p) {
    const ValueVec& v = res.decisions[p]->as_vec();
    EXPECT_EQ(v[0].as_int(), 2);  // instance 0 heard round-1 pings
    EXPECT_EQ(v[1].as_int(), 2);  // instance 1 heard round-2 pings
  }
}

TEST(MapProtocol, TransformsProposalAndDecision) {
  SystemParams params{3, 1};
  auto mapped = map_protocol(
      ping_at(1),
      [](ProcessId, const Value&) { return Value{"ignored"}; },
      [](const Value& d) { return Value{d.as_int() * 100}; });
  RunResult res = run_all_correct(params, mapped, Value::bit(1));
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(res.decisions[p]->as_int(), 200);
  }
}

TEST(MapProtocol, AddsNoMessages) {
  SystemParams params{4, 1};
  RunResult plain = run_all_correct(params, ping_at(1), Value::bit(0));
  RunResult mapped = run_all_correct(
      params, map_protocol(ping_at(1), nullptr, nullptr), Value::bit(0));
  EXPECT_EQ(plain.messages_sent_by_correct, mapped.messages_sent_by_correct);
}

TEST(DelayProtocol, ShiftsRounds) {
  SystemParams params{3, 1};
  auto delayed = delay_protocol(ping_at(1), /*offset=*/3);
  RunResult res = run_all_correct(params, delayed, Value::bit(1));
  // Pings land in wire round 4; decision at round 5.
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_TRUE(res.trace.procs[p].rounds[0].sent.empty());
    EXPECT_TRUE(res.trace.procs[p].rounds[2].sent.empty());
    EXPECT_EQ(res.trace.procs[p].rounds[3].sent.size(), 2u);
    EXPECT_EQ(res.trace.procs[p].decision_round, 5u);
    EXPECT_EQ(res.decisions[p]->as_int(), 2);
  }
}

TEST(DelayProtocol, ComposesWithMap) {
  SystemParams params{3, 1};
  auto stacked = map_protocol(delay_protocol(ping_at(1), 2), nullptr,
                              [](const Value& d) {
                                return Value{d.as_int() + 1};
                              });
  RunResult res = run_all_correct(params, stacked, Value::bit(0));
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(res.decisions[p]->as_int(), 3);
  }
}

}  // namespace
}  // namespace ba::protocols
