#include "protocols/external_validity.h"

#include <gtest/gtest.h>

#include <memory>

#include "adversary/byzantine.h"
#include "protocols/common.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

bool looks_like_tx(const Value& v) {
  return v.is_str() && v.as_str().starts_with("tx:");
}

struct TestEnv {
  SystemParams params{5, 2};
  std::shared_ptr<crypto::Authenticator> auth =
      std::make_shared<crypto::Authenticator>(17, 5);
  ProtocolFactory ev = external_validity_agreement(auth, looks_like_tx);
};

TEST(ExternalValidity, FaultFreeDecidesLeaderProposal) {
  TestEnv s;
  std::vector<Value> proposals{Value{"tx:a"}, Value{"tx:b"}, Value{"tx:c"},
                               Value{"tx:d"}, Value{"tx:e"}};
  RunResult res = run_execution(s.params, s.ev, proposals, Adversary::none());
  for (ProcessId p = 0; p < 5; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    EXPECT_EQ(*res.decisions[p], Value{"tx:a"});  // view-0 leader is p0
  }
}

TEST(ExternalValidity, TwoFaultFreeExecutionsDecideDifferently) {
  // The Corollary 1 precondition: unanimous tx:x decides tx:x, unanimous
  // tx:y decides tx:y.
  TestEnv s;
  RunResult rx = run_all_correct(s.params, s.ev, Value{"tx:x"});
  RunResult ry = run_all_correct(s.params, s.ev, Value{"tx:y"});
  EXPECT_EQ(*rx.unanimous_correct_decision(), Value{"tx:x"});
  EXPECT_EQ(*ry.unanimous_correct_decision(), Value{"tx:y"});
}

TEST(ExternalValidity, InvalidLeaderProposalRotatesView) {
  TestEnv s;
  std::vector<Value> proposals{Value{"garbage"}, Value{"tx:b"}, Value{"tx:c"},
                               Value{"tx:d"}, Value{"tx:e"}};
  // p0 is honest but proposes an invalid value (violating the protocol's
  // precondition for itself); the view rotates and p1's valid value wins.
  RunResult res = run_execution(s.params, s.ev, proposals, Adversary::none());
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(*res.decisions[p], Value{"tx:b"});
  }
}

TEST(ExternalValidity, SilentLeadersRotateUntilCorrectOne) {
  TestEnv s;
  Adversary adv;
  adv.faulty = ProcessSet{{0, 1}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_silent();
  std::vector<Value> proposals(5, Value{"tx:z"});
  RunResult res = run_execution(s.params, s.ev, proposals, adv);
  for (ProcessId p = 2; p < 5; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    EXPECT_EQ(*res.decisions[p], Value{"tx:z"});  // view 2, leader p2
  }
}

TEST(ExternalValidity, DecisionAlwaysSatisfiesPredicate) {
  TestEnv s;
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_noise(9, 10);
  std::vector<Value> proposals(5, Value{"tx:ok"});
  RunResult res = run_execution(s.params, s.ev, proposals, adv);
  for (ProcessId p = 1; p < 5; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    EXPECT_TRUE(looks_like_tx(*res.decisions[p]));
    EXPECT_EQ(*res.decisions[p], *res.decisions[1]);  // Agreement
  }
}

TEST(ExternalValidity, TerminatesWithinViewBound) {
  TestEnv s;
  RunResult res = run_all_correct(s.params, s.ev, Value{"tx:q"});
  ASSERT_TRUE(res.quiesced);
  EXPECT_LE(res.rounds_executed, external_validity_max_rounds(s.params) + 1);
}

}  // namespace
}  // namespace ba::protocols
