#include "protocols/phase_king.h"

#include <gtest/gtest.h>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

struct Outcome {
  std::vector<std::optional<Value>> decisions;
  ProcessSet correct;
  bool quiesced;
};

Outcome run_pk(std::uint32_t n, std::uint32_t t,
               const std::vector<int>& bits, const Adversary& adv) {
  SystemParams params{n, t};
  std::vector<Value> proposals;
  proposals.reserve(n);
  for (int b : bits) proposals.push_back(Value::bit(b));
  RunResult res = run_execution(params, phase_king_consensus(), proposals,
                                adv);
  return {res.decisions, adv.faulty.complement(n), res.quiesced};
}

void expect_agreement(const Outcome& o, const char* label) {
  std::optional<Value> first;
  for (ProcessId p : o.correct) {
    ASSERT_TRUE(o.decisions[p].has_value()) << label << " p" << p;
    if (!first) first = o.decisions[p];
    EXPECT_EQ(*o.decisions[p], *first) << label << " p" << p;
  }
}

TEST(PhaseKing, StrongValidityFaultFree) {
  for (int b : {0, 1}) {
    Outcome o = run_pk(4, 1, std::vector<int>(4, b), Adversary::none());
    expect_agreement(o, "unanimous");
    EXPECT_EQ(*o.decisions[0], Value::bit(b));
  }
}

TEST(PhaseKing, MixedProposalsStillAgree) {
  Outcome o = run_pk(4, 1, {0, 1, 0, 1}, Adversary::none());
  expect_agreement(o, "mixed");
}

TEST(PhaseKing, StrongValidityWithSilentFaults) {
  for (int b : {0, 1}) {
    Adversary adv;
    adv.faulty = ProcessSet{{3}};
    adv.byzantine = adv.faulty;
    adv.byzantine_factory = byz_silent();
    Outcome o = run_pk(4, 1, std::vector<int>(4, b), adv);
    expect_agreement(o, "silent fault");
    EXPECT_EQ(*o.decisions[0], Value::bit(b));
  }
}

TEST(PhaseKing, ToleratesEquivocatingByzantine) {
  Adversary adv;
  adv.faulty = ProcessSet{{2}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(20);
  // All correct propose 1: must decide 1 regardless of the equivocator.
  Outcome o = run_pk(4, 1, {1, 1, 0, 1}, adv);
  expect_agreement(o, "equivocator");
  EXPECT_EQ(*o.decisions[0], Value::bit(1));
}

TEST(PhaseKing, ByzantineKingCannotBreakAgreement) {
  // p0 is the first king and Byzantine; agreement must still hold.
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(20);
  Outcome o = run_pk(7, 2, {0, 0, 1, 1, 0, 1, 0}, adv);
  expect_agreement(o, "byzantine king");
}

TEST(PhaseKing, TwoByzantineAmongSeven) {
  Adversary adv;
  adv.faulty = ProcessSet{{1, 5}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_noise(1234, 30);
  for (int b : {0, 1}) {
    Outcome o = run_pk(7, 2, std::vector<int>(7, b), adv);
    expect_agreement(o, "noise");
    EXPECT_EQ(*o.decisions[0], Value::bit(b)) << "b=" << b;
  }
}

TEST(PhaseKing, OmissionFaultsAreHarmless) {
  Outcome o = run_pk(7, 2, {1, 1, 1, 1, 1, 1, 1},
                     isolate_group(ProcessSet{{5, 6}}, 2));
  expect_agreement(o, "isolated");
  EXPECT_EQ(*o.decisions[0], Value::bit(1));
}

TEST(PhaseKing, QuiescesAfterThreeTPlusOneRounds) {
  SystemParams params{4, 1};
  RunResult res = run_all_correct(params, phase_king_consensus(),
                                  Value::bit(0));
  ASSERT_TRUE(res.quiesced);
  Round max_decision = 0;
  for (const auto& pt : res.trace.procs) {
    max_decision = std::max(max_decision, pt.decision_round);
  }
  EXPECT_EQ(max_decision, phase_king_rounds(params));
}

TEST(PhaseKing, NonBitProposalsCoerceToZero) {
  SystemParams params{4, 1};
  std::vector<Value> proposals(4, Value{"garbage"});
  RunResult res = run_execution(params, phase_king_consensus(), proposals,
                                Adversary::none());
  EXPECT_EQ(*res.decisions[0], Value::bit(0));
}

// Exhaustive sweep over all proposal vectors for n = 4, t = 1 with each
// possible silent-Byzantine slot: Agreement and Strong Validity must hold in
// every single case.
class PhaseKingSweep : public ::testing::TestWithParam<int> {};

TEST_P(PhaseKingSweep, AllProposalVectorsAllSilentFaultSlots) {
  const int faulty_slot = GetParam();  // -1 = fault-free
  for (int mask = 0; mask < 16; ++mask) {
    std::vector<int> bits(4);
    for (int i = 0; i < 4; ++i) bits[i] = (mask >> i) & 1;
    Adversary adv;
    if (faulty_slot >= 0) {
      adv.faulty = ProcessSet{{static_cast<ProcessId>(faulty_slot)}};
      adv.byzantine = adv.faulty;
      adv.byzantine_factory = byz_silent();
    }
    Outcome o = run_pk(4, 1, bits, adv);
    expect_agreement(o, "sweep");
    // Strong validity among correct processes.
    std::optional<int> unanimous;
    bool same = true;
    for (ProcessId p : o.correct) {
      if (!unanimous) {
        unanimous = bits[p];
      } else if (*unanimous != bits[p]) {
        same = false;
      }
    }
    if (same && unanimous) {
      EXPECT_EQ(*o.decisions[*o.correct.begin()], Value::bit(*unanimous))
          << "mask=" << mask << " faulty=" << faulty_slot;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Slots, PhaseKingSweep,
                         ::testing::Values(-1, 0, 1, 2, 3));

}  // namespace
}  // namespace ba::protocols
