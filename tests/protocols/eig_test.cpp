#include "protocols/eig.h"

#include <gtest/gtest.h>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

TEST(Eig, FaultFreeVectorMatchesProposals) {
  SystemParams params{4, 1};
  std::vector<Value> proposals{Value{"a"}, Value{"b"}, Value{"c"},
                               Value{"d"}};
  RunResult res = run_execution(params, eig_interactive_consistency(),
                                proposals, Adversary::none());
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    const ValueVec& vec = res.decisions[p]->as_vec();
    ASSERT_EQ(vec.size(), 4u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(vec[i], proposals[i]);
  }
}

TEST(Eig, IcValidityWithSilentByzantine) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{2}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_silent();
  std::vector<Value> proposals{Value{1}, Value{2}, Value{3}, Value{4}};
  RunResult res = run_execution(params, eig_interactive_consistency(),
                                proposals, adv);
  std::optional<Value> first;
  for (ProcessId p : {0u, 1u, 3u}) {
    ASSERT_TRUE(res.decisions[p].has_value());
    if (!first) first = res.decisions[p];
    EXPECT_EQ(*res.decisions[p], *first);  // Agreement
    const ValueVec& vec = res.decisions[p]->as_vec();
    EXPECT_EQ(vec[0], Value{1});  // IC-Validity on correct components
    EXPECT_EQ(vec[1], Value{2});
    EXPECT_EQ(vec[3], Value{4});
  }
}

TEST(Eig, AgreementWithNoisyByzantine) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{1}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_noise(77, 5);
  std::vector<Value> proposals{Value{10}, Value{20}, Value{30}, Value{40}};
  RunResult res = run_execution(params, eig_interactive_consistency(),
                                proposals, adv);
  for (ProcessId p : {0u, 2u, 3u}) {
    ASSERT_TRUE(res.decisions[p].has_value());
    EXPECT_EQ(*res.decisions[p], *res.decisions[0]);
    const ValueVec& vec = res.decisions[p]->as_vec();
    EXPECT_EQ(vec[0], Value{10});
    EXPECT_EQ(vec[2], Value{30});
    EXPECT_EQ(vec[3], Value{40});
  }
}

TEST(Eig, TwoFaultsAmongSeven) {
  SystemParams params{7, 2};
  Adversary adv;
  adv.faulty = ProcessSet{{0, 6}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(3);
  std::vector<Value> proposals(7);
  for (int i = 0; i < 7; ++i) proposals[i] = Value{i * 100};
  RunResult res = run_execution(params, eig_interactive_consistency(),
                                proposals, adv);
  std::optional<Value> first;
  for (ProcessId p = 1; p < 6; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    if (!first) first = res.decisions[p];
    EXPECT_EQ(*res.decisions[p], *first);
    const ValueVec& vec = res.decisions[p]->as_vec();
    for (ProcessId q = 1; q < 6; ++q) {
      EXPECT_EQ(vec[q], proposals[q]) << "component " << q;
    }
  }
}

TEST(Eig, LyingProposalIsItsOwnProblem) {
  // A Byzantine process that consistently lies about its proposal just gets
  // the lie into everyone's vector — consistently.
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{3}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory =
      byz_lie_proposal(eig_interactive_consistency(), Value{"lie"});
  std::vector<Value> proposals{Value{"p0"}, Value{"p1"}, Value{"p2"},
                               Value{"truth"}};
  RunResult res = run_execution(params, eig_interactive_consistency(),
                                proposals, adv);
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(res.decisions[p]->as_vec()[3], Value{"lie"});
  }
}

TEST(Eig, StrongConsensusDecidesMajorityComponent) {
  SystemParams params{4, 1};
  std::vector<Value> proposals{Value{"x"}, Value{"x"}, Value{"x"},
                               Value{"y"}};
  RunResult res = run_execution(params, eig_strong_consensus(), proposals,
                                Adversary::none());
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(*res.decisions[p], Value{"x"});
  }
}

TEST(Eig, StrongConsensusStrongValidityUnderFaults) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{1}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_noise(5, 3);
  std::vector<Value> proposals(4, Value{"w"});
  RunResult res = run_execution(params, eig_strong_consensus(), proposals,
                                adv);
  for (ProcessId p : {0u, 2u, 3u}) {
    EXPECT_EQ(*res.decisions[p], Value{"w"});
  }
}

TEST(Eig, OmissionIsolatedMemberDoesNotPoisonOthers) {
  SystemParams params{4, 1};
  std::vector<Value> proposals{Value{1}, Value{2}, Value{3}, Value{4}};
  RunResult res = run_execution(params, eig_interactive_consistency(),
                                proposals, isolate_group(ProcessSet{{3}}, 1));
  for (ProcessId p = 0; p < 3; ++p) {
    const ValueVec& vec = res.decisions[p]->as_vec();
    EXPECT_EQ(vec[0], Value{1});
    EXPECT_EQ(vec[1], Value{2});
    EXPECT_EQ(vec[2], Value{3});
    EXPECT_EQ(vec[3], Value{4});  // p3 still SENDS correctly
  }
}

TEST(Eig, DecidesInTPlusOneRounds) {
  SystemParams params{7, 2};
  RunResult res = run_all_correct(params, eig_interactive_consistency(),
                                  Value{"v"});
  ASSERT_TRUE(res.quiesced);
  for (const auto& pt : res.trace.procs) {
    EXPECT_EQ(pt.decision_round, eig_rounds(params));
  }
}

}  // namespace
}  // namespace ba::protocols
