#include "protocols/turpin_coan.h"

#include <gtest/gtest.h>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "protocols/common.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

void expect_agreement(const RunResult& res, const ProcessSet& correct) {
  std::optional<Value> first;
  for (ProcessId p : correct) {
    ASSERT_TRUE(res.decisions[p].has_value()) << "p" << p;
    if (!first) first = res.decisions[p];
    EXPECT_EQ(*res.decisions[p], *first) << "p" << p;
  }
}

TEST(TurpinCoan, UnanimousArbitraryValueDecided) {
  SystemParams params{4, 1};
  for (const Value& v : {Value{"block#42"}, Value{17}, Value::vec({1, 2})}) {
    RunResult res = run_all_correct(params, turpin_coan_multivalued(), v);
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_EQ(*res.decisions[p], v);
    }
  }
}

TEST(TurpinCoan, UnanimityHoldsUnderByzantineFault) {
  SystemParams params{7, 2};
  Adversary adv;
  adv.faulty = ProcessSet{{1, 4}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_noise(9, 40);
  std::vector<Value> proposals(7, Value{"agreed"});
  RunResult res = run_execution(params, turpin_coan_multivalued(), proposals,
                                adv);
  for (ProcessId p : adv.faulty.complement(7)) {
    EXPECT_EQ(*res.decisions[p], Value{"agreed"});
  }
}

TEST(TurpinCoan, SplitProposalsStillAgree) {
  SystemParams params{7, 2};
  std::vector<Value> proposals{Value{"a"}, Value{"a"}, Value{"a"},
                               Value{"b"}, Value{"b"}, Value{"c"},
                               Value{"d"}};
  RunResult res = run_execution(params, turpin_coan_multivalued(), proposals,
                                Adversary::none());
  expect_agreement(res, ProcessSet::all(7));
}

TEST(TurpinCoan, NearUnanimousDecidesTheMajorityValue) {
  // n - t = 5 of 7 propose "w": every correct process backs w, binary input
  // is 1 everywhere, w is decided.
  SystemParams params{7, 2};
  std::vector<Value> proposals(7, Value{"w"});
  proposals[5] = Value{"x"};
  proposals[6] = Value{"y"};
  RunResult res = run_execution(params, turpin_coan_multivalued(), proposals,
                                Adversary::none());
  for (ProcessId p = 0; p < 7; ++p) {
    EXPECT_EQ(*res.decisions[p], Value{"w"});
  }
}

TEST(TurpinCoan, AgreementUnderEquivocationWithMixedInputs) {
  SystemParams params{7, 2};
  Adversary adv;
  adv.faulty = ProcessSet{{0, 6}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(40);
  std::vector<Value> proposals{Value{"p"}, Value{"q"}, Value{"q"},
                               Value{"q"}, Value{"r"}, Value{"q"},
                               Value{"s"}};
  RunResult res = run_execution(params, turpin_coan_multivalued(), proposals,
                                adv);
  expect_agreement(res, adv.faulty.complement(7));
}

TEST(TurpinCoan, OmissionFaultsHarmless) {
  SystemParams params{7, 2};
  std::vector<Value> proposals(7, Value{"v"});
  RunResult res = run_execution(params, turpin_coan_multivalued(), proposals,
                                isolate_group(ProcessSet{{5, 6}}, 2));
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(*res.decisions[p], Value{"v"});
  }
}

TEST(TurpinCoan, RoundCount) {
  SystemParams params{4, 1};
  RunResult res = run_all_correct(params, turpin_coan_multivalued(),
                                  Value{"v"});
  ASSERT_TRUE(res.quiesced);
  for (const auto& pt : res.trace.procs) {
    EXPECT_EQ(pt.decision_round, turpin_coan_rounds(params));
  }
}

}  // namespace
}  // namespace ba::protocols
