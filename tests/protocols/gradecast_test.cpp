#include "protocols/gradecast.h"

#include <gtest/gtest.h>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "protocols/common.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

struct GcRun {
  std::vector<GradecastOutput> outputs;  // indexed by process
  ProcessSet correct;
};

GcRun run_gc(const SystemParams& params, ProcessId sender,
             const std::vector<Value>& proposals, const Adversary& adv) {
  RunResult res = run_execution(params, gradecast_bit(sender), proposals,
                                adv);
  GcRun out;
  out.correct = adv.faulty.complement(params.n);
  out.outputs.resize(params.n);
  for (ProcessId p = 0; p < params.n; ++p) {
    if (!res.decisions[p]) continue;
    auto parsed = parse_gradecast(*res.decisions[p]);
    EXPECT_TRUE(parsed.has_value()) << "p" << p;
    if (parsed) out.outputs[p] = *parsed;
  }
  return out;
}

void check_gradecast_properties(const GcRun& run) {
  int min_grade = 3, max_grade = -1;
  std::optional<Value> graded_value;
  for (ProcessId p : run.correct) {
    const GradecastOutput& o = run.outputs[p];
    min_grade = std::min(min_grade, o.grade);
    max_grade = std::max(max_grade, o.grade);
    if (o.grade >= 1) {
      if (!graded_value) {
        graded_value = o.value;
      } else {
        EXPECT_EQ(o.value, *graded_value)
            << "two correct processes graded different values";
      }
    }
  }
  EXPECT_LE(max_grade - min_grade, 1) << "grade gap exceeds 1";
}

TEST(Gradecast, CorrectSenderAllGradeTwo) {
  SystemParams params{4, 1};
  for (int b : {0, 1}) {
    std::vector<Value> proposals(4, Value::bit(1 - b));
    proposals[2] = Value::bit(b);
    GcRun run = run_gc(params, 2, proposals, Adversary::none());
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_EQ(run.outputs[p].grade, 2);
      EXPECT_EQ(run.outputs[p].value, Value::bit(b));
    }
  }
}

TEST(Gradecast, SilentSenderAllGradeZero) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_silent();
  GcRun run = run_gc(params, 0, std::vector<Value>(4, Value::bit(1)), adv);
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(run.outputs[p].grade, 0);
  }
}

TEST(Gradecast, EquivocationKeepsGradeGapAtMostOne) {
  for (std::uint32_t n : {4u, 7u, 10u}) {
    SystemParams params{n, (n - 1) / 3};
    Adversary adv;
    adv.faulty = ProcessSet{{0}};
    adv.byzantine = adv.faulty;
    adv.byzantine_factory = byz_equivocate_bits(3);
    GcRun run = run_gc(params, 0, std::vector<Value>(n, Value::bit(0)), adv);
    check_gradecast_properties(run);
  }
}

// Exhaustive single-Byzantine-sender equivocation patterns at n = 4, t = 1:
// each receiver gets an arbitrary bit (or nothing) in round 1.
class GradecastSweep : public ::testing::TestWithParam<int> {};

TEST_P(GradecastSweep, AllRoundOnePatterns) {
  const int pattern = GetParam();  // 2 bits per receiver: 0, 1, silent
  SystemParams params{4, 1};

  class PatternSender final : public Process {
   public:
    PatternSender(const ProcessContext& ctx, int pattern)
        : n_(ctx.params.n), self_(ctx.self), pattern_(pattern) {}
    Outbox outbox_for_round(Round r) override {
      Outbox out;
      if (r != 1) return out;
      for (ProcessId p = 0; p < n_; ++p) {
        if (p == self_) continue;
        const int code = (pattern_ >> (2 * p)) & 3;
        if (code == 2 || code == 3) continue;  // silent toward p
        out.push_back(Outgoing{p, tagged("gc-init", {Value::bit(code)})});
      }
      return out;
    }
    void deliver(Round, const Inbox&) override {}
    [[nodiscard]] std::optional<Value> decision() const override {
      return std::nullopt;
    }
    [[nodiscard]] bool quiescent() const override { return true; }

   private:
    std::uint32_t n_;
    ProcessId self_;
    int pattern_;
  };

  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = [pattern](const ProcessContext& ctx) {
    return std::make_unique<PatternSender>(ctx, pattern);
  };
  GcRun run = run_gc(params, 0, std::vector<Value>(4, Value::bit(0)), adv);
  check_gradecast_properties(run);
}

INSTANTIATE_TEST_SUITE_P(Patterns, GradecastSweep,
                         ::testing::Range(0, 256));

TEST(Gradecast, ByzantineEchoersCannotForgeGradeTwo) {
  // The sender is correct with bit 1; t echoers push bit 0. Grade-2 for 1
  // must survive; no correct process may grade 0.
  SystemParams params{7, 2};
  Adversary adv;
  adv.faulty = ProcessSet{{5, 6}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(3);
  std::vector<Value> proposals(7, Value::bit(1));
  GcRun run = run_gc(params, 0, proposals, adv);
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(run.outputs[p].value, Value::bit(1));
    EXPECT_EQ(run.outputs[p].grade, 2);
  }
}

TEST(Gradecast, ParseRejectsGarbage) {
  EXPECT_EQ(parse_gradecast(Value{"junk"}), std::nullopt);
  EXPECT_EQ(parse_gradecast(Value::vec({Value{"grade"}, Value{1}})),
            std::nullopt);
}

}  // namespace
}  // namespace ba::protocols
