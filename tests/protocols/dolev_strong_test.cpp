#include "protocols/dolev_strong.h"

#include <gtest/gtest.h>

#include <memory>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "crypto/signature.h"
#include "protocols/common.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

struct TestEnv {
  SystemParams params;
  std::shared_ptr<crypto::Authenticator> auth;
  ProtocolFactory bb;

  explicit TestEnv(std::uint32_t n, std::uint32_t t, ProcessId sender = 0)
      : params{n, t},
        auth(std::make_shared<crypto::Authenticator>(99, n)),
        bb(dolev_strong_broadcast(auth, sender)) {}
};

TEST(DolevStrong, CorrectSenderAllDecideItsValue) {
  for (std::uint32_t t : {1u, 2u, 3u}) {
    TestEnv s(5, t);
    std::vector<Value> proposals(5, Value::bit(0));
    proposals[0] = Value{"the-value"};
    RunResult res =
        run_execution(s.params, s.bb, proposals, Adversary::none());
    for (ProcessId p = 0; p < 5; ++p) {
      ASSERT_TRUE(res.decisions[p].has_value());
      EXPECT_EQ(*res.decisions[p], Value{"the-value"}) << "t=" << t;
    }
    EXPECT_TRUE(res.quiesced);
  }
}

TEST(DolevStrong, ToleratesDishonestMajority) {
  // t = 3 of n = 5: impossible unauthenticated, fine for Dolev-Strong.
  TestEnv s(5, 3);
  std::vector<Value> proposals(5, Value::bit(1));
  Adversary adv;
  adv.faulty = ProcessSet{{2, 3, 4}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_silent();
  RunResult res = run_execution(s.params, s.bb, proposals, adv);
  EXPECT_EQ(*res.decisions[0], Value::bit(1));
  EXPECT_EQ(*res.decisions[1], Value::bit(1));
}

TEST(DolevStrong, SilentSenderYieldsBottom) {
  TestEnv s(5, 1);
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_silent();
  RunResult res = run_execution(s.params, s.bb,
                                std::vector<Value>(5, Value::bit(1)), adv);
  for (ProcessId p = 1; p < 5; ++p) {
    EXPECT_EQ(*res.decisions[p], bottom());
  }
}

TEST(DolevStrong, CrashingSenderStillAgrees) {
  // Sender crashes mid-protocol at various rounds; correct processes must
  // agree (on the value or on bottom) in every case.
  for (Round crash = 1; crash <= 4; ++crash) {
    TestEnv s(6, 3);
    Adversary adv;
    adv.faulty = ProcessSet{{0}};
    adv.byzantine = adv.faulty;
    adv.byzantine_factory = byz_crash_at(s.bb, crash);
    std::vector<Value> proposals(6, Value{"v"});
    RunResult res = run_execution(s.params, s.bb, proposals, adv);
    std::optional<Value> first;
    for (ProcessId p = 1; p < 6; ++p) {
      ASSERT_TRUE(res.decisions[p].has_value()) << "crash=" << crash;
      if (!first) first = res.decisions[p];
      EXPECT_EQ(*res.decisions[p], *first) << "crash=" << crash;
    }
  }
}

/// A Byzantine sender that signs two different values and sends one to the
/// lower half, the other to the upper half — a real signed equivocation.
class EquivocatingSender final : public Process {
 public:
  EquivocatingSender(const ProcessContext& ctx,
                     std::shared_ptr<const crypto::Authenticator> auth)
      : n_(ctx.params.n), self_(ctx.self), signer_(std::move(auth), ctx.self) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r != 1) return out;
    for (ProcessId p = 0; p < n_; ++p) {
      if (p == self_) continue;
      const Value v = Value::vec(
          {Value{"dsv"}, Value{0}, Value::bit(p < n_ / 2 ? 0 : 1)});
      crypto::SigChain chain(v);
      chain.extend(signer_);
      out.push_back(Outgoing{p, Value::vec({Value{"ds"}, chain.to_value()})});
    }
    return out;
  }
  void deliver(Round, const Inbox&) override {}
  [[nodiscard]] std::optional<Value> decision() const override {
    return std::nullopt;
  }
  [[nodiscard]] bool quiescent() const override { return true; }

 private:
  std::uint32_t n_;
  ProcessId self_;
  crypto::Signer signer_;
};

TEST(DolevStrong, SignedEquivocationIsDetectedAndAgreedUpon) {
  TestEnv s(6, 2);
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = [auth = s.auth](const ProcessContext& ctx) {
    return std::make_unique<EquivocatingSender>(ctx, auth);
  };
  RunResult res = run_execution(s.params, s.bb,
                                std::vector<Value>(6, Value::bit(0)), adv);
  // With t = 2 >= 2 relay rounds, both values propagate to everyone; all
  // correct processes detect the equivocation and decide bottom together.
  for (ProcessId p = 1; p < 6; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    EXPECT_EQ(*res.decisions[p], bottom()) << "p" << p;
  }
}

TEST(DolevStrong, AgreementUnderOmissionIsolation) {
  // Isolated receivers hear nothing from outside their group; with group
  // size 1 the isolated process extracts nothing and decides bottom — but it
  // is faulty, so weak guarantees only apply to the correct ones.
  TestEnv s(5, 2);
  RunResult res = run_execution(s.params, s.bb,
                                std::vector<Value>(5, Value{"x"}),
                                isolate_group(ProcessSet{{4}}, 1));
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(*res.decisions[p], Value{"x"});
  }
  EXPECT_EQ(*res.decisions[4], bottom());
}

TEST(DolevStrong, MessageComplexityQuadraticInFaultFreeCase) {
  TestEnv s(8, 3);
  std::vector<Value> proposals(8, Value{"v"});
  RunResult res = run_execution(s.params, s.bb, proposals, Adversary::none());
  // Round 1: sender sends n-1. Round 2: the n-1 receivers relay to n-1 each.
  // Round 3+: everyone has extracted already, nothing new.
  EXPECT_EQ(res.messages_sent_by_correct, 7u + 7u * 7u);
}

TEST(DolevStrong, RunsExactlyTPlusOneRounds) {
  TestEnv s(5, 3);
  RunResult res = run_execution(s.params, s.bb,
                                std::vector<Value>(5, Value{"v"}),
                                Adversary::none());
  ASSERT_TRUE(res.quiesced);
  Round max_decision = 0;
  for (ProcessId p = 0; p < 5; ++p) {
    max_decision = std::max(max_decision, res.trace.procs[p].decision_round);
  }
  EXPECT_EQ(max_decision, dolev_strong_rounds(s.params));
}

TEST(DolevStrong, ParallelInstancesDoNotCrossTalk) {
  // A chain signed for instance 0 must not be accepted by instance 1.
  SystemParams params{4, 1};
  auto auth = std::make_shared<crypto::Authenticator>(7, 4);
  // Run instance 1 with sender 0, but construct (via a Byzantine p0) chains
  // tagged for instance 0. Correct processes of instance 1 must ignore them.
  ProtocolFactory inst1 = dolev_strong_broadcast(auth, 0, /*instance=*/1);
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = [auth](const ProcessContext& ctx) {
    // Honest round-1 behaviour of instance 0's sender.
    return dolev_strong_broadcast(auth, 0, /*instance=*/0)(ctx);
  };
  RunResult res = run_execution(params, inst1,
                                std::vector<Value>(4, Value{"v"}), adv);
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(*res.decisions[p], bottom());
  }
}

}  // namespace
}  // namespace ba::protocols
