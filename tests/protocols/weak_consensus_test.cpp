#include "protocols/weak_consensus.h"

#include <gtest/gtest.h>

#include <memory>

#include "adversary/omission.h"
#include "crypto/signature.h"
#include "runtime/sync_system.h"

namespace ba::protocols {
namespace {

void expect_weak_validity(const ProtocolFactory& wc, std::uint32_t n,
                          std::uint32_t t, const char* label) {
  SystemParams params{n, t};
  for (int b : {0, 1}) {
    RunResult res = run_all_correct(params, wc, Value::bit(b));
    for (ProcessId p = 0; p < n; ++p) {
      ASSERT_TRUE(res.decisions[p].has_value()) << label;
      EXPECT_EQ(*res.decisions[p], Value::bit(b)) << label << " b=" << b;
    }
  }
}

TEST(WeakConsensus, AuthSatisfiesWeakValidity) {
  auto auth = std::make_shared<crypto::Authenticator>(1, 6);
  expect_weak_validity(weak_consensus_auth(auth), 6, 3, "auth");
}

TEST(WeakConsensus, UnauthSatisfiesWeakValidity) {
  expect_weak_validity(weak_consensus_unauth(), 7, 2, "unauth");
}

TEST(WeakConsensus, AuthAgreementUnderOmissionFaults) {
  std::uint32_t n = 6, t = 3;
  auto auth = std::make_shared<crypto::Authenticator>(2, n);
  ProtocolFactory wc = weak_consensus_auth(auth);
  SystemParams params{n, t};
  // Isolate two groups at several rounds; correct processes must agree.
  for (Round k = 1; k <= 4; ++k) {
    RunResult res =
        run_execution(params, wc, std::vector<Value>(n, Value::bit(0)),
                      isolate_two_groups(ProcessSet{{4}}, k,
                                         ProcessSet{{5}}, k + 1));
    std::optional<Value> first;
    for (ProcessId p = 0; p < 4; ++p) {
      ASSERT_TRUE(res.decisions[p].has_value()) << "k=" << k;
      if (!first) first = res.decisions[p];
      EXPECT_EQ(*res.decisions[p], *first) << "k=" << k;
    }
  }
}

TEST(WeakConsensus, CandidatesAreCheapInFaultFreeRuns) {
  SystemParams params{9, 8};
  struct Case {
    const char* name;
    ProtocolFactory factory;
    std::uint64_t max_messages;
  };
  const Case cases[] = {
      {"silent", wc_candidate_silent(), 0},
      {"beacon", wc_candidate_leader_beacon(), 8},
      {"gossip", wc_candidate_gossip_ring(2, 3), 9 * 2 * 3},
  };
  for (const Case& c : cases) {
    RunResult res = run_all_correct(params, c.factory, Value::bit(1));
    EXPECT_LE(res.messages_sent_by_correct, c.max_messages) << c.name;
  }
}

TEST(WeakConsensus, BeaconAndGossipSatisfyWeakValidityFaultFree) {
  // The broken candidates DO look correct in fault-free unanimous runs —
  // that is what makes them interesting attack targets.
  expect_weak_validity(wc_candidate_leader_beacon(), 9, 8, "beacon");
  expect_weak_validity(wc_candidate_gossip_ring(2, 3), 9, 8, "gossip");
}

TEST(WeakConsensus, SilentCandidateViolatesWeakValidityDirectly) {
  SystemParams params{4, 2};
  RunResult res =
      run_all_correct(params, wc_candidate_silent(1), Value::bit(0));
  EXPECT_EQ(*res.decisions[0], Value::bit(1));  // proposal ignored
}

TEST(WeakConsensus, OneShotEchoBreaksUnderSendOmission) {
  // Demonstrates that quadratic cost alone is not enough: the one-shot echo
  // sends n(n-1) messages yet a single send-omission splits the decisions.
  SystemParams params{4, 1};
  // p3 send-omits only its message to p0 in round 1.
  Adversary adv = send_omit_messages(ProcessSet{{3}}, {MsgKey{3, 0, 1}});
  RunResult res = run_execution(params, wc_candidate_one_shot_echo(),
                                std::vector<Value>(4, Value::bit(0)), adv);
  // p0 misses one bit -> decides 1; p1, p2 see all zeros -> decide 0.
  EXPECT_EQ(*res.decisions[0], Value::bit(1));
  EXPECT_EQ(*res.decisions[1], Value::bit(0));
  EXPECT_EQ(*res.decisions[2], Value::bit(0));
}

TEST(WeakConsensus, AuthHasQuadraticWorstCase) {
  std::uint32_t n = 9, t = 8;
  auto auth = std::make_shared<crypto::Authenticator>(3, n);
  SystemParams params{n, t};
  RunResult res = run_all_correct(params, weak_consensus_auth(auth),
                                  Value::bit(0));
  // Relay round alone is (n-1)^2.
  EXPECT_GE(res.messages_sent_by_correct,
            static_cast<std::uint64_t>(t) * t / 32);
}

}  // namespace
}  // namespace ba::protocols
