// Unit tests for the execution-invariant linter (src/analysis/lint.h).
//
// Strategy: start from a genuine execution of a tiny deterministic protocol
// (which must lint clean, replay included), then corrupt one invariant at a
// time — forged receive, payload tampering, vanished send, budget overflow,
// unattributable omission, non-deterministic replay, bogus quiescence claim —
// and assert the linter pins the violation to the right check, process, and
// round.

#include "analysis/lint.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>

#include "adversary/omission.h"
#include "async/async_system.h"
#include "async/bracha.h"
#include "async/scheduler.h"
#include "protocols/common.h"
#include "runtime/sync_system.h"

namespace ba::analysis {
namespace {

/// Broadcast the proposal in round 1, then decide on the number of round-1
/// messages heard. Round 2 is silent on the wire, so the run quiesces at
/// round 2 and the trace has a round with no legitimate traffic — handy for
/// planting forgeries.
class Flooder final : public protocols::DecidingProcess {
 public:
  explicit Flooder(const ProcessContext& ctx) : ctx_(ctx) {}
  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1) {
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != ctx_.self) out.push_back(Outgoing{p, ctx_.proposal});
      }
    }
    return out;
  }
  void deliver(Round r, const Inbox& inbox) override {
    if (r == 1) heard_ = static_cast<std::int64_t>(inbox.size());
    if (r == 2) decide(Value{heard_});
  }

 private:
  ProcessContext ctx_;
  std::int64_t heard_{0};
};

ProtocolFactory flooder() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<Flooder>(ctx);
  };
}

/// Like Flooder but with a second broadcast pulse in round 3: silent in
/// round 2 yet provably not quiescent there.
class PulseFlooder final : public protocols::DecidingProcess {
 public:
  explicit PulseFlooder(const ProcessContext& ctx) : ctx_(ctx) {}
  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1 || r == 3) {
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != ctx_.self) out.push_back(Outgoing{p, ctx_.proposal});
      }
    }
    return out;
  }
  void deliver(Round r, const Inbox& inbox) override {
    if (r == 3) decide(Value{static_cast<std::int64_t>(inbox.size())});
  }

 private:
  ProcessContext ctx_;
};

ProtocolFactory pulse_flooder() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<PulseFlooder>(ctx);
  };
}

RunResult run_flooder(const Adversary& adv, std::uint32_t n = 4,
                      std::uint32_t t = 1) {
  std::vector<Value> proposals;
  for (ProcessId p = 0; p < n; ++p) {
    proposals.push_back(Value::bit(static_cast<int>(p % 2)));
  }
  return run_execution(SystemParams{n, t}, flooder(), proposals, adv);
}

bool has_violation(const LintReport& report, LintCheck check) {
  return report.count(check) > 0;
}

TEST(TraceLint, CleanExecutionLintsClean) {
  RunResult res = run_flooder(Adversary::none());
  ASSERT_TRUE(res.quiesced);
  LintReport report = lint_execution(res.trace, flooder());
  EXPECT_TRUE(report.clean()) << report;
  EXPECT_TRUE(report.replayed);
  EXPECT_GT(report.stats.messages_checked, 0u);
  EXPECT_EQ(report.stats.processes_replayed, 4u);
}

TEST(TraceLint, CleanOmissionExecutionLintsClean) {
  ProcessSet faulty;
  faulty.insert(3);
  RunResult res = run_flooder(isolate_group(faulty, 1));
  LintReport report = lint_execution(res.trace, flooder());
  EXPECT_TRUE(report.clean()) << report;
  // The faulty process is exempt from the determinism replay.
  EXPECT_EQ(report.stats.processes_replayed, 3u);
}

TEST(TraceLint, RunOptionsThreadReportThroughRunResult) {
  RunOptions opts;
  opts.lint_trace = true;
  RunResult res = run_all_correct(SystemParams{4, 1}, flooder(),
                                  Value::bit(1), opts);
  ASSERT_TRUE(res.lint.has_value());
  EXPECT_TRUE(res.lint->clean()) << *res.lint;
  EXPECT_TRUE(res.lint->replayed);
  EXPECT_TRUE(res.lint_clean());
}

TEST(TraceLint, LintFlagWithoutTraceRecordingFailsFast) {
  // There is no trace to lint when recording is off; silently skipping the
  // audit would let a caller believe a run was linted clean when nothing
  // was checked, so the executor rejects the combination outright.
  RunOptions opts;
  opts.lint_trace = true;
  opts.record_trace = false;
  EXPECT_THROW(run_all_correct(SystemParams{4, 1}, flooder(), Value::bit(1),
                               opts),
               std::invalid_argument);
}

TEST(TraceLint, DetectsForgedReceive) {
  RunResult res = run_flooder(Adversary::none());
  // p2 claims a round-2 message from p1; nobody sends in round 2.
  res.trace.procs[2].rounds[1].received.push_back(
      Message{1, 2, 2, Value{"never-sent"}});
  LintReport report = lint_trace(res.trace);
  ASSERT_TRUE(has_violation(report, LintCheck::kConservation)) << report;
  bool found = false;
  for (const LintViolation& v : report.violations) {
    if (v.check == LintCheck::kConservation && v.process == 2 &&
        v.round == 2) {
      found = true;
      EXPECT_NE(v.detail.find("forged"), std::string::npos) << v.to_string();
    }
  }
  EXPECT_TRUE(found) << report;
}

TEST(TraceLint, DetectsPayloadTampering) {
  RunResult res = run_flooder(Adversary::none());
  res.trace.procs[2].rounds[0].received[0].payload = Value{"tampered"};
  LintReport report = lint_trace(res.trace);
  EXPECT_TRUE(has_violation(report, LintCheck::kConservation)) << report;
}

TEST(TraceLint, DetectsVanishedSend) {
  RunResult res = run_flooder(Adversary::none());
  // p0's round-1 message to p3 disappears from p3's receiver-side view
  // without a receive-omission entry.
  auto& received = res.trace.procs[3].rounds[0].received;
  ASSERT_EQ(received.front().sender, 0u);
  received.erase(received.begin());
  LintReport report = lint_trace(res.trace);
  ASSERT_TRUE(has_violation(report, LintCheck::kConservation)) << report;
  bool found = false;
  for (const LintViolation& v : report.violations) {
    if (v.check == LintCheck::kConservation &&
        v.detail.find("vanished") != std::string::npos) {
      found = true;
      EXPECT_EQ(v.process, 3u);
      EXPECT_EQ(v.round, 1u);
    }
  }
  EXPECT_TRUE(found) << report;
}

TEST(TraceLint, DetectsBudgetOverflow) {
  ProcessSet faulty;
  faulty.insert(3);
  RunResult res = run_flooder(isolate_group(faulty, 1));
  // Declare more faulty processes than the budget t = 1 allows.
  res.trace.faulty.insert(2);
  LintReport report = lint_trace(res.trace);
  EXPECT_TRUE(has_violation(report, LintCheck::kBudget)) << report;
}

TEST(TraceLint, DetectsUnattributableOmission) {
  ProcessSet faulty;
  faulty.insert(3);
  RunResult res = run_flooder(isolate_group(faulty, 1));
  // Blame-shift: p3 committed the omissions but the trace claims p3 correct.
  res.trace.faulty = ProcessSet{};
  LintReport report = lint_trace(res.trace);
  ASSERT_TRUE(has_violation(report, LintCheck::kBudget)) << report;
  bool attributed = false;
  for (const LintViolation& v : report.violations) {
    if (v.check == LintCheck::kBudget && v.process == 3) attributed = true;
  }
  EXPECT_TRUE(attributed) << report;
}

TEST(TraceLint, DetectsNonDeterministicReplay) {
  RunResult res = run_flooder(Adversary::none());
  // Tamper with p1's recorded proposal: its round-1 sends (which carried the
  // original proposal) are no longer explained by replaying the machine.
  res.trace.procs[1].proposal = Value{"not-what-was-sent"};
  LintReport report = lint_execution(res.trace, flooder());
  EXPECT_TRUE(has_violation(report, LintCheck::kDeterminism)) << report;
}

TEST(TraceLint, DetectsTamperedDecision) {
  RunResult res = run_flooder(Adversary::none());
  res.trace.procs[2].decision = Value{"wrong"};
  LintReport report = lint_execution(res.trace, flooder());
  EXPECT_TRUE(has_violation(report, LintCheck::kDeterminism)) << report;
}

TEST(TraceLint, DetectsBadQuiescenceClaim) {
  RunResult res = run_flooder(Adversary::none());
  ASSERT_TRUE(res.quiesced);
  // Chop the trace to the round in which messages were still flying, but
  // keep the quiescence claim.
  for (auto& proc : res.trace.procs) {
    proc.rounds.resize(1);
    proc.decision.reset();
    proc.decision_round = kNoRound;
  }
  res.trace.rounds = 1;
  res.trace.quiesced = true;
  LintReport report = lint_trace(res.trace);
  EXPECT_TRUE(has_violation(report, LintCheck::kQuiescence)) << report;
}

TEST(TraceLint, DetectsNonQuiescentMachineUnderReplay) {
  // Cut a pulse protocol off during its silent round 2: the wire is quiet,
  // so only the replay half of the quiescence check can expose the bogus
  // claim that the execution was over.
  RunOptions opts;
  opts.max_rounds = 2;
  RunResult res = run_all_correct(SystemParams{4, 1}, pulse_flooder(),
                                  Value::bit(0), opts);
  ASSERT_FALSE(res.quiesced);
  ExecutionTrace trace = res.trace;
  trace.quiesced = true;
  EXPECT_TRUE(lint_trace(trace).clean()) << "wire-level checks see nothing";
  LintReport report = lint_execution(trace, pulse_flooder());
  EXPECT_TRUE(has_violation(report, LintCheck::kQuiescence)) << report;
}

TEST(TraceLint, DetectsStructuralDamage) {
  RunResult res = run_flooder(Adversary::none());
  // Self-message in p0's sent set.
  res.trace.procs[0].rounds[0].sent.push_back(Message{0, 0, 1, Value::bit(0)});
  LintReport report = lint_trace(res.trace);
  EXPECT_TRUE(has_violation(report, LintCheck::kStructure)) << report;
}

TEST(TraceLint, ShapeErrorsAreFatalButReported) {
  ExecutionTrace trace;
  trace.params = SystemParams{4, 1};
  trace.procs.resize(2);  // wrong process count
  LintReport report = lint_trace(trace);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_violation(report, LintCheck::kStructure)) << report;
}

TEST(TraceLint, ViolationCapTruncatesReport) {
  RunResult res = run_flooder(Adversary::none());
  // Tamper every round-1 payload on the receiver side: 12 violations
  // against a cap of 3.
  for (ProcessId p = 0; p < 4; ++p) {
    for (Message& m : res.trace.procs[p].rounds[0].received) {
      m.payload = Value{"mass-tamper"};
    }
  }
  LintOptions opts;
  opts.max_violations = 3;
  LintReport report = lint_trace(res.trace, opts);
  EXPECT_EQ(report.violations.size(), 3u);
  EXPECT_TRUE(report.truncated);
}

TEST(TraceLint, ReportFormatsReadably) {
  RunResult res = run_flooder(Adversary::none());
  res.trace.procs[2].rounds[0].received[0].payload = Value{"tampered"};
  LintReport report = lint_trace(res.trace);
  std::ostringstream os;
  os << report;
  EXPECT_NE(os.str().find("conservation"), std::string::npos);
  EXPECT_NE(os.str().find("p2"), std::string::npos);
  EXPECT_NE(report.summary().find("violation"), std::string::npos);

  LintReport clean =
      lint_execution(run_flooder(Adversary::none()).trace, flooder());
  EXPECT_NE(clean.summary().find("clean"), std::string::npos);
}

TEST(TraceLint, ChecksCanBeDisabledIndividually) {
  ProcessSet faulty;
  faulty.insert(3);
  RunResult res = run_flooder(isolate_group(faulty, 1));
  res.trace.faulty = ProcessSet{};  // unattributable omissions
  LintOptions opts;
  opts.budget = false;
  LintReport report = lint_trace(res.trace, opts);
  EXPECT_FALSE(has_violation(report, LintCheck::kBudget)) << report;
}

// ---------------------------------------------------------------------------
// Async virtual-round semantics (LintOptions::async_model).
// ---------------------------------------------------------------------------

/// A Bracha run cut after three deliveries: the trace is honest but ends
/// with messages still in flight (receive-omissions at correct processes).
async::AsyncRunResult truncated_bracha_run() {
  const SystemParams params{4, 1};
  std::vector<Value> proposals(params.n, Value::bit(1));
  auto fifo = async::make_scheduler("fifo", 1, params.n);
  async::AsyncRunOptions options;
  options.stop_after = 3;
  options.capture_pending = true;
  return async::run_async(params, async::bracha_factory(), proposals,
                          async::AsyncAdversary::none(), *fifo, options);
}

TEST(AsyncModelLint, InFlightMessagesAreNotOmissionViolations) {
  const async::AsyncRunResult res = truncated_bracha_run();
  ASSERT_FALSE(res.pending.empty());

  // Synchronous reading: the same receive-omissions look like adversary
  // omissions at correct processes and break the budget invariant.
  const LintReport sync_read = lint_trace(res.run.trace);
  EXPECT_TRUE(has_violation(sync_read, LintCheck::kBudget)) << sync_read;

  // Async reading: they are the in-flight pool of a truncated run.
  LintOptions opts;
  opts.async_model = true;
  const LintReport async_read = lint_trace(res.run.trace, opts);
  EXPECT_TRUE(async_read.clean()) << async_read;
}

TEST(AsyncModelLint, QuiescenceMeansTheInFlightPoolDrained) {
  async::AsyncRunResult res = truncated_bracha_run();
  ASSERT_FALSE(res.run.quiesced);
  // Forge the quiescence claim on a trace with messages still in flight.
  res.run.trace.quiesced = true;
  LintOptions opts;
  opts.async_model = true;
  const LintReport report = lint_trace(res.run.trace, opts);
  EXPECT_TRUE(has_violation(report, LintCheck::kQuiescence)) << report;
  std::ostringstream os;
  os << report;
  EXPECT_NE(os.str().find("still in flight"), std::string::npos);
}

TEST(AsyncModelLint, DeterminismReplayIsSkippedForAsyncTraces) {
  // Round-based replay machinery cannot reconstruct a scheduler-driven
  // delivery order: even with a factory supplied, async_model skips it
  // instead of reporting spurious non-determinism.
  const async::AsyncRunResult res = truncated_bracha_run();
  LintOptions opts;
  opts.async_model = true;
  const LintReport report = lint_execution(res.run.trace, flooder(), opts);
  EXPECT_FALSE(report.replayed);
  EXPECT_TRUE(report.clean()) << report;
}

}  // namespace
}  // namespace ba::analysis
