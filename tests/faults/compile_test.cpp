// The fault compiler: one FaultSpec, three substrates. compile_adversary
// reproduces the legacy campaign adversaries bit-for-bit (pins ported from
// the pre-IR service tests), the sim FaultPlan lowering is execution-
// equivalent to the adversary lowering on the sim backend, and the partial
// lowerings throw their documented no-lowering errors.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "adversary/omission.h"
#include "crypto/siphash.h"
#include "engine/backend.h"
#include "faults/compile.h"
#include "faults/fault_spec.h"
#include "protocols/phase_king.h"
#include "runtime/sync_system.h"

namespace ba::faults {
namespace {

FaultSpec spec_of(const std::string& text) { return parse_fault_spec(text); }

TEST(CompileAdversary, ReproducesTheDocumentedLegacyAdversaries) {
  const SystemParams params{7, 2};

  EXPECT_TRUE(
      compile_adversary(spec_of("fault-free"), params, 9).faulty.empty());

  // crash:K corrupts the K highest ids (the legacy tail group).
  const Adversary crash = compile_adversary(spec_of("crash:2"), params, 9);
  EXPECT_EQ(crash.faulty.size(), 2u);
  EXPECT_TRUE(crash.faulty.contains(5) && crash.faulty.contains(6));
  EXPECT_TRUE(crash.byzantine.empty());

  const Adversary mute = compile_adversary(spec_of("mute:1"), params, 9);
  EXPECT_EQ(mute.faulty.size(), 1u);
  EXPECT_TRUE(mute.faulty.contains(6));

  const Adversary iso = compile_adversary(spec_of("isolate:2"), params, 9);
  EXPECT_EQ(iso.faulty.size(), 2u);

  // random-omissions corrupts the whole tail-t group regardless of P.
  const Adversary omit =
      compile_adversary(spec_of("random-omissions:250"), params, 9);
  EXPECT_EQ(omit.faulty.size(), params.t);

  const Adversary byz = compile_adversary(spec_of("silent-byz:2"), params, 9);
  EXPECT_EQ(byz.byzantine.size(), 2u);
  EXPECT_EQ(byz.faulty, byz.byzantine);
  EXPECT_TRUE(byz.byzantine_factory != nullptr);

  const Adversary noise = compile_adversary(spec_of("noise-byz:1"), params, 9);
  EXPECT_EQ(noise.byzantine.size(), 1u);
  EXPECT_TRUE(noise.byzantine_factory != nullptr);

  // Budget enforcement happens inside the compiler too.
  EXPECT_THROW((void)compile_adversary(spec_of("crash:3"), params, 9),
               std::runtime_error);
}

TEST(CompileAdversary, CrashMatchesTheLegacySeedDerivation) {
  // The legacy schedule: process n-1-i crashes at round
  // 1 + SipHash(derive_key(seed, 0xfa017ab1))(i) % 4. Byte-identical
  // campaign replay rests on the compiler deriving the same rounds, so pin
  // the reference derivation here, independent of the compiler's source.
  const SystemParams params{7, 2};
  const std::uint64_t seed = 9;
  std::vector<std::pair<ProcessId, Round>> expected;
  const crypto::SipKey key = crypto::derive_key(seed, 0xfa017ab1ULL);
  const crypto::SipHasher base(key);
  for (std::uint32_t i = 0; i < 2; ++i) {
    crypto::SipHasher h = base;
    h.absorb_u32(i);
    expected.emplace_back(params.n - 1 - i,
                          static_cast<Round>(1 + h.digest() % 4));
  }
  const Adversary reference = crash_schedule(expected);
  const Adversary compiled = compile_adversary(spec_of("crash:2"), params, 9);
  EXPECT_EQ(compiled.faulty, reference.faulty);
  // Same schedule -> same behavior: run phase-king under both and compare.
  std::vector<Value> proposals;
  for (std::uint32_t p = 0; p < params.n; ++p) {
    proposals.push_back(Value::bit(static_cast<int>(p % 2)));
  }
  const ProtocolFactory protocol = protocols::phase_king_consensus();
  const RunResult a = run_execution(params, protocol, proposals, compiled);
  const RunResult b = run_execution(params, protocol, proposals, reference);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.messages_sent_by_correct, b.messages_sent_by_correct);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
}

TEST(CompileAdversary, ModifiersSteerTargetsAndTiming) {
  const SystemParams params{7, 2};
  // %head corrupts the lowest ids instead of the tail.
  const Adversary head =
      compile_adversary(spec_of("crash:2%head"), params, 9);
  EXPECT_TRUE(head.faulty.contains(0) && head.faulty.contains(1));
  // @R pins the crash round: same spec, different seeds, same adversary
  // behavior (no seed-derived randomness left).
  std::vector<Value> proposals;
  for (std::uint32_t p = 0; p < params.n; ++p) {
    proposals.push_back(Value::bit(static_cast<int>(p % 2)));
  }
  const ProtocolFactory protocol = protocols::phase_king_consensus();
  const RunResult a = run_execution(
      params, protocol, proposals,
      compile_adversary(spec_of("crash:1@3"), params, 1));
  const RunResult b = run_execution(
      params, protocol, proposals,
      compile_adversary(spec_of("crash:1@3"), params, 2));
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.messages_sent_by_correct, b.messages_sent_by_correct);
}

TEST(CompileFaultPlan, IsExecutionEquivalentToTheAdversaryLowering) {
  // A FaultPlan crash window is "send-omit everything from round R" — the
  // plan lowering and the adversary lowering of the same spec must agree
  // on the sim backend for every expressible kind.
  const SystemParams params{7, 2};
  std::vector<Value> proposals;
  for (std::uint32_t p = 0; p < params.n; ++p) {
    proposals.push_back(Value::bit(static_cast<int>(p % 2)));
  }
  const ProtocolFactory protocol = protocols::phase_king_consensus();
  for (const char* text : {"fault-free", "crash:2", "crash:1@3", "mute:2",
                           "mute:1%head"}) {
    const FaultSpec spec = spec_of(text);
    engine::SimBackendConfig plan_config;
    plan_config.plan = compile_fault_plan(spec, params, 7);
    const engine::SimBackend via_plan(plan_config);
    const engine::SimBackend via_adversary{{}};
    const RunResult a =
        via_plan.run(params, protocol, proposals, Adversary::none());
    const RunResult b = via_adversary.run(
        params, protocol, proposals, compile_adversary(spec, params, 7));
    EXPECT_EQ(a.decisions, b.decisions) << text;
    EXPECT_EQ(a.messages_sent_by_correct, b.messages_sent_by_correct) << text;
    EXPECT_EQ(a.rounds_executed, b.rounds_executed) << text;
  }
}

TEST(CompileFaultPlan, UnexpressibleKindsThrowTheDocumentedError) {
  const SystemParams params{7, 2};
  try {
    (void)compile_fault_plan(spec_of("isolate:1"), params, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "fault plan 'isolate:1': no sim fault-plan lowering "
                 "(receive-isolation is not a network-schedulable fault; "
                 "use the adversary lowering)");
  }
  EXPECT_THROW(
      (void)compile_fault_plan(spec_of("random-omissions:250"), params, 1),
      std::runtime_error);
  EXPECT_THROW((void)compile_fault_plan(spec_of("silent-byz:1"), params, 1),
               std::runtime_error);
  EXPECT_THROW((void)compile_fault_plan(spec_of("noise-byz:1"), params, 1),
               std::runtime_error);
}

TEST(CompileAsync, CrashAndSilentByzLowerTheRestThrow) {
  const SystemParams params{4, 1};

  EXPECT_TRUE(compile_async(spec_of("fault-free"), params, 1).faulty.empty());

  const async::AsyncAdversary crash =
      compile_async(spec_of("crash:1"), params, 1);
  EXPECT_TRUE(crash.faulty.contains(3));
  EXPECT_TRUE(crash.byzantine.empty());

  // Mute lowers like crash (crash-from-start is the strongest schedule the
  // round-free async model can express).
  const async::AsyncAdversary mute =
      compile_async(spec_of("mute:1%head"), params, 1);
  EXPECT_TRUE(mute.faulty.contains(0));

  const async::AsyncAdversary byz =
      compile_async(spec_of("silent-byz:1"), params, 1);
  EXPECT_EQ(byz.faulty, byz.byzantine);
  ASSERT_TRUE(byz.byzantine_factory != nullptr);
  // The silent replica: sends nothing, never decides, reports halted.
  const auto replica = byz.byzantine_factory(async::AsyncContext{});
  EXPECT_TRUE(replica->on_start().empty());
  EXPECT_EQ(replica->decision(), std::nullopt);
  EXPECT_TRUE(replica->halted());

  EXPECT_THROW((void)compile_async(spec_of("isolate:1"), params, 1),
               std::runtime_error);
  EXPECT_THROW(
      (void)compile_async(spec_of("random-omissions:250"), params, 1),
      std::runtime_error);
  EXPECT_THROW((void)compile_async(spec_of("noise-byz:1"), params, 1),
               std::runtime_error);
}

}  // namespace
}  // namespace ba::faults
