// The FaultSpec IR: the typed grammar every fault surface in the repo goes
// through. parse/format are inverses (fuzzed at 10^5 specs), the legacy
// plan-name vocabulary round-trips byte-identically, and the error strings
// are pinned — run/sim/sweep/serve all report the same bytes for the same
// bad plan, so these tests are the single place the strings may change.

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/fault_spec.h"

namespace ba::faults {
namespace {

constexpr FaultKind kAllKinds[] = {
    FaultKind::kFaultFree,  FaultKind::kCrash,     FaultKind::kMute,
    FaultKind::kIsolate,    FaultKind::kRandomOmissions,
    FaultKind::kSilentByz,  FaultKind::kNoiseByz,
};

TEST(FaultSpecGrammar, LegacyPlanNamesRoundTripByteIdentically) {
  // The exact strings docs/SERVICE.md documented before the IR existed.
  // Campaign specs embed them verbatim; format(parse(s)) == s keeps cached
  // campaign rows content-addressable across the refactor.
  const std::vector<std::string> legacy = {
      "fault-free",          "crash:1",      "crash:2",  "mute:1",
      "isolate:2",           "random-omissions:250",     "random-omissions:0",
      "random-omissions:1000", "silent-byz:2", "noise-byz:1",
  };
  for (const std::string& name : legacy) {
    EXPECT_EQ(parse_fault_spec(name).format(), name) << name;
  }
}

TEST(FaultSpecGrammar, BareRandomOmissionsDefaultsTo250Permille) {
  const FaultSpec spec = parse_fault_spec("random-omissions");
  EXPECT_EQ(spec.kind, FaultKind::kRandomOmissions);
  EXPECT_EQ(spec.permille, 250u);
  // Canonical form always spells the permille out.
  EXPECT_EQ(spec.format(), "random-omissions:250");
}

TEST(FaultSpecGrammar, TimingAndTargetModifiersParse) {
  const FaultSpec crash = parse_fault_spec("crash:2@3");
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_EQ(crash.count, 2u);
  ASSERT_TRUE(crash.at_round.has_value());
  EXPECT_EQ(*crash.at_round, 3u);
  EXPECT_EQ(crash.targets, TargetSelection::kTail);
  EXPECT_EQ(crash.format(), "crash:2@3");

  const FaultSpec head = parse_fault_spec("mute:1%head");
  EXPECT_EQ(head.targets, TargetSelection::kHead);
  EXPECT_FALSE(head.at_round.has_value());
  EXPECT_EQ(head.format(), "mute:1%head");

  // Both modifiers, in grammar order K@R%head.
  const FaultSpec both = parse_fault_spec("isolate:2@4%head");
  EXPECT_EQ(both.count, 2u);
  EXPECT_EQ(*both.at_round, 4u);
  EXPECT_EQ(both.targets, TargetSelection::kHead);
  EXPECT_EQ(both.format(), "isolate:2@4%head");
}

TEST(FaultSpecGrammar, PinnedErrorStrings) {
  const auto error_of = [](const std::string& text) -> std::string {
    try {
      (void)parse_fault_spec(text);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "<no error>";
  };
  // THE pinned string: the one every CLI surface and serve-side validate
  // print verbatim for an unknown plan (see campaign_spec_test.cpp for the
  // serve side).
  EXPECT_EQ(error_of("no-such-fault"),
            "unknown fault plan 'no-such-fault' (known: fault-free crash:K "
            "mute:K isolate:K random-omissions:P silent-byz:K noise-byz:K)");
  EXPECT_EQ(error_of("bogus:1"),
            "unknown fault plan 'bogus:1' (known: fault-free crash:K mute:K "
            "isolate:K random-omissions:P silent-byz:K noise-byz:K)");
  EXPECT_EQ(error_of("crash"), "fault plan 'crash': missing :K argument");
  EXPECT_EQ(error_of("fault-free:1"),
            "fault plan 'fault-free' takes no argument");
  EXPECT_EQ(error_of("random-omissions:1001"),
            "fault plan 'random-omissions:1001': permille > 1000");
  EXPECT_EQ(error_of("crash:x"), "fault plan 'crash:x': malformed argument");
  EXPECT_EQ(error_of("crash:1@0"),
            "fault plan 'crash:1@0': malformed argument");
  EXPECT_EQ(error_of("silent-byz:1@2"),
            "fault plan 'silent-byz:1@2': '@' timing applies only to "
            "crash/mute/isolate");
}

TEST(FaultSpecGrammar, ValidateForEnforcesTheFaultBudget) {
  const SystemParams params{7, 2};
  EXPECT_NO_THROW(validate_for(parse_fault_spec("crash:2"), params));
  EXPECT_NO_THROW(validate_for(parse_fault_spec("random-omissions:900"),
                               params));
  try {
    validate_for(parse_fault_spec("crash:3"), params);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "fault plan 'crash:3': 3 faults exceed budget t=2");
  }
  EXPECT_THROW((void)checked_fault_spec("silent-byz:3", params),
               std::runtime_error);
}

TEST(FaultSpecGrammar, DeclaredFaultsAreTheActualFaultAxis) {
  const SystemParams params{7, 2};
  EXPECT_EQ(parse_fault_spec("fault-free").declared_faults(params), 0u);
  EXPECT_EQ(parse_fault_spec("crash:1").declared_faults(params), 1u);
  EXPECT_EQ(parse_fault_spec("isolate:2").declared_faults(params), 2u);
  // Random omissions corrupt the whole tail-t group.
  EXPECT_EQ(parse_fault_spec("random-omissions:250").declared_faults(params),
            params.t);
}

TEST(FaultSpecGrammar, KindPredicatesMatchTheGrammar) {
  for (const FaultKind kind : kAllKinds) {
    // Sweepable == counted: the f axis only makes sense for kinds with a K.
    EXPECT_EQ(kind_sweepable(kind), kind_takes_count(kind));
    // Every kind name resolves back to its kind.
    EXPECT_EQ(find_fault_kind(fault_kind_name(kind)), kind);
  }
  EXPECT_FALSE(kind_takes_count(FaultKind::kFaultFree));
  EXPECT_FALSE(kind_takes_count(FaultKind::kRandomOmissions));
  EXPECT_EQ(find_fault_kind("no-such"), std::nullopt);
}

TEST(FaultSpecFuzz, FormatParseIsTheIdentityOn100kRandomSpecs) {
  // Property: parse(format(spec)) == spec and format is canonical
  // (format(parse(format(spec))) == format(spec)), across the whole IR
  // including timing and target modifiers. Deterministic seed: failures
  // reproduce.
  std::mt19937_64 rng(0xfa017ab1ULL);
  std::uniform_int_distribution<std::size_t> kind_of(0, 6);
  std::uniform_int_distribution<std::uint32_t> count_of(0, 1u << 20);
  std::uniform_int_distribution<std::uint32_t> permille_of(0, 1000);
  std::uniform_int_distribution<std::uint32_t> round_of(1, 1u << 16);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int i = 0; i < 100000; ++i) {
    FaultSpec spec;
    spec.kind = kAllKinds[kind_of(rng)];
    if (spec.kind == FaultKind::kRandomOmissions) {
      spec.permille = permille_of(rng);
    } else if (kind_takes_count(spec.kind)) {
      spec.count = count_of(rng);
      const bool takes_round = spec.kind == FaultKind::kCrash ||
                               spec.kind == FaultKind::kMute ||
                               spec.kind == FaultKind::kIsolate;
      if (takes_round && coin(rng) != 0) spec.at_round = round_of(rng);
      if (coin(rng) != 0) spec.targets = TargetSelection::kHead;
    }
    const std::string text = spec.format();
    const FaultSpec reparsed = parse_fault_spec(text);
    ASSERT_EQ(reparsed, spec) << "round-trip broke for '" << text << "'";
    ASSERT_EQ(reparsed.format(), text) << "non-canonical format: " << text;
  }
}

}  // namespace
}  // namespace ba::faults
