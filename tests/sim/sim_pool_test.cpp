// Simulation grids through the parallel ExperimentPool: a grid of sim
// configurations must produce byte-identical results at any worker count.
// This extends the repo's parallel-determinism guarantee (docs/PARALLEL.md)
// to the event-loop substrate — simulations share no mutable state, and the
// pool's index-ordered collection makes jobs=1 vs jobs=N indistinguishable.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ba.h"

namespace ba::sim {
namespace {

struct GridPoint {
  ProtocolFactory factory;
  SystemParams params;
  std::vector<Value> proposals;
  SimConfig config;
  FaultPlan plan;
};

std::vector<GridPoint> make_grid() {
  std::vector<GridPoint> grid;
  const auto bits = [](std::uint32_t n) {
    std::vector<Value> v;
    for (std::uint32_t p = 0; p < n; ++p) {
      v.push_back(Value::bit(static_cast<int>(p % 2)));
    }
    return v;
  };

  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    GridPoint g;
    g.params = SystemParams{7, 2};
    g.factory = protocols::phase_king_consensus();
    g.proposals = bits(7);
    g.config.link = LinkModel::jitter(1, 200, seed);
    g.config.round_ticks = 256;
    grid.push_back(std::move(g));
  }
  for (std::uint64_t seed : {4ull, 5ull}) {
    GridPoint g;
    g.params = SystemParams{7, 2};
    g.factory = protocols::eig_interactive_consistency();
    g.proposals = bits(7);
    g.config.link =
        LinkModel::partial_synchrony(ProcessSet::range(5, 7), 3, seed);
    g.config.round_ticks = 256;
    grid.push_back(std::move(g));
  }
  {
    GridPoint g;
    g.params = SystemParams{5, 1};
    g.factory = protocols::wc_candidate_gossip_ring(2, 4);
    g.proposals = bits(5);
    g.plan.crash_recover(0, 2, 4);
    grid.push_back(std::move(g));
  }
  return grid;
}

/// Everything observable about one simulation, in comparable form.
struct Observed {
  Bytes trace;
  NetMetrics metrics;
  std::vector<std::optional<Value>> decisions;
  std::uint64_t messages{0};
  std::uint64_t events{0};
  SimTime end_time{0};

  friend bool operator==(const Observed&, const Observed&) = default;
};

std::vector<Observed> run_grid(unsigned jobs) {
  const std::vector<GridPoint> grid = make_grid();
  parallel::ExperimentPool pool(jobs);
  return pool.map<Observed>(grid.size(), [&grid](std::size_t i) {
    const GridPoint& g = grid[i];
    const SimResult res = simulate(g.params, g.factory, g.proposals,
                                   Adversary::none(), g.plan, g.config);
    Observed o;
    o.trace = encode_trace(res.run.trace);
    o.metrics = res.metrics;
    o.decisions = res.run.decisions;
    o.messages = res.run.messages_sent_total;
    o.events = res.events_processed;
    o.end_time = res.end_time;
    return o;
  });
}

TEST(SimPool, GridIsByteIdenticalAtAnyWorkerCount) {
  const std::vector<Observed> serial = run_grid(1);
  for (unsigned jobs : {2u, 8u}) {
    const std::vector<Observed> parallel_run = run_grid(jobs);
    ASSERT_EQ(parallel_run.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel_run[i], serial[i])
          << "jobs=" << jobs << " grid point " << i;
    }
  }
}

TEST(SimPool, RepeatedParallelRunsAgree) {
  const std::vector<Observed> a = run_grid(8);
  const std::vector<Observed> b = run_grid(8);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ba::sim
