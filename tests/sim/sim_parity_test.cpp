// The lockstep-parity contract of the discrete-event simulator: under the
// zero-jitter synchronous model, `simulate` / `run_execution_sim` must be
// bit-identical to `run_execution` — decisions, message counts, and the full
// event trace — for every protocol family and adversary the repo exercises.
// This is the acceptance bar that lets the simulator serve as a drop-in
// execution substrate for the paper's experiments.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ba.h"

namespace ba::sim {
namespace {

std::shared_ptr<crypto::Authenticator> make_auth(std::uint32_t n) {
  return std::make_shared<crypto::Authenticator>(0xba5eba11, n);
}

struct ParityCase {
  std::string name;
  SystemParams params;
  ProtocolFactory factory;
  std::vector<Value> proposals;
};

std::vector<ParityCase> parity_cases() {
  std::vector<ParityCase> cases;
  {
    ParityCase c;
    c.name = "dolev_strong";
    c.params = SystemParams{7, 2};
    c.factory = protocols::dolev_strong_broadcast(make_auth(7), /*sender=*/0);
    c.proposals.assign(7, Value::bit(0));
    c.proposals[0] = Value{"sim-parity-proposal"};
    cases.push_back(std::move(c));
  }
  {
    ParityCase c;
    c.name = "eig";
    c.params = SystemParams{7, 2};
    c.factory = protocols::eig_interactive_consistency();
    for (std::uint32_t p = 0; p < 7; ++p) {
      c.proposals.emplace_back(static_cast<std::int64_t>(p));
    }
    cases.push_back(std::move(c));
  }
  {
    ParityCase c;
    c.name = "phase_king";
    c.params = SystemParams{7, 2};
    c.factory = protocols::phase_king_consensus();
    for (std::uint32_t p = 0; p < 7; ++p) {
      c.proposals.push_back(Value::bit(static_cast<int>(p % 2)));
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

void expect_bit_identical(const RunResult& sim, const RunResult& lockstep,
                          const std::string& label) {
  EXPECT_EQ(sim.decisions, lockstep.decisions) << label;
  EXPECT_EQ(sim.messages_sent_by_correct, lockstep.messages_sent_by_correct)
      << label;
  EXPECT_EQ(sim.messages_sent_total, lockstep.messages_sent_total) << label;
  EXPECT_EQ(sim.rounds_executed, lockstep.rounds_executed) << label;
  EXPECT_EQ(sim.quiesced, lockstep.quiesced) << label;
  ASSERT_EQ(sim.trace.procs.size(), lockstep.trace.procs.size()) << label;
  for (std::size_t p = 0; p < sim.trace.procs.size(); ++p) {
    EXPECT_EQ(sim.trace.procs[p], lockstep.trace.procs[p])
        << label << " process " << p;
  }
  // Byte-level: the serialized traces must be indistinguishable.
  EXPECT_EQ(encode_trace(sim.trace), encode_trace(lockstep.trace)) << label;
}

TEST(SimParity, FaultFreeBitIdenticalAcrossProtocols) {
  for (const ParityCase& c : parity_cases()) {
    RunOptions opts;
    opts.lint_trace = true;
    const RunResult lockstep = run_execution(c.params, c.factory, c.proposals,
                                             Adversary::none(), opts);
    const RunResult sim = run_execution_sim(c.params, c.factory, c.proposals,
                                            Adversary::none(), opts);
    expect_bit_identical(sim, lockstep, c.name);
    EXPECT_TRUE(sim.lint_clean()) << c.name;
  }
}

TEST(SimParity, IsolationAdversaryBitIdentical) {
  for (const ParityCase& c : parity_cases()) {
    const Adversary adv = isolate_group(
        ProcessSet::range(c.params.n - 2, c.params.n), /*from_round=*/2);
    const RunResult lockstep =
        run_execution(c.params, c.factory, c.proposals, adv, {});
    const RunResult sim =
        run_execution_sim(c.params, c.factory, c.proposals, adv, {});
    expect_bit_identical(sim, lockstep, c.name + "/isolation");
  }
}

TEST(SimParity, CrashScheduleBitIdentical) {
  for (const ParityCase& c : parity_cases()) {
    const Adversary adv =
        crash_schedule({{c.params.n - 1, 2}, {c.params.n - 2, 3}});
    const RunResult lockstep =
        run_execution(c.params, c.factory, c.proposals, adv, {});
    const RunResult sim =
        run_execution_sim(c.params, c.factory, c.proposals, adv, {});
    expect_bit_identical(sim, lockstep, c.name + "/crash");
  }
}

TEST(SimParity, SimulatedTracesPassTheLinter) {
  for (const ParityCase& c : parity_cases()) {
    const Adversary adv = isolate_group(
        ProcessSet::range(c.params.n - 2, c.params.n), /*from_round=*/1);
    RunOptions opts;
    opts.lint_trace = true;
    const RunResult sim =
        run_execution_sim(c.params, c.factory, c.proposals, adv, opts);
    ASSERT_TRUE(sim.lint.has_value()) << c.name;
    EXPECT_TRUE(sim.lint->clean()) << c.name << ": " << sim.lint->summary();
  }
}

// The Theorem 2 probe evaluated over the simulator: expressing the probe's
// isolation schedule as sim drop events must reproduce the worst-case
// message counts the lockstep probe observes.
TEST(SimParity, Theorem2ProbeReproducesWorstCaseCounts) {
  const engine::SimBackend sim_backend{engine::SimBackendConfig{}};

  struct ProbePoint {
    std::string name;
    SystemParams params;
    ProtocolFactory factory;
  };
  std::vector<ProbePoint> points;
  points.push_back({"weak_consensus_auth", {12, 8},
                    protocols::weak_consensus_auth(make_auth(12))});
  points.push_back({"phase_king", {7, 2}, protocols::phase_king_consensus()});
  points.push_back(
      {"gossip_ring", {12, 8}, protocols::wc_candidate_gossip_ring(2, 3)});

  for (const ProbePoint& pt : points) {
    const auto schedule = lowerbound::default_probe_schedule(pt.params);
    const std::uint64_t lockstep = lowerbound::worst_observed_messages(
        pt.params, pt.factory, Value::bit(0), schedule);
    const std::uint64_t sim = lowerbound::worst_observed_messages_via(
        sim_backend, pt.params, pt.factory, Value::bit(0), schedule);
    EXPECT_EQ(sim, lockstep) << pt.name;
  }
}

// The partial-synchrony model with pre-GST latencies that always overshoot
// the round is exactly isolation-until-GST: cross-checked against the
// lockstep executor with the equivalent omission adversary.
TEST(SimParity, AlwaysLatePreGstEqualsIsolationUntilGst) {
  const SystemParams params{7, 2};
  const ProtocolFactory factory = protocols::phase_king_consensus();
  std::vector<Value> proposals;
  for (std::uint32_t p = 0; p < params.n; ++p) {
    proposals.push_back(Value::bit(static_cast<int>(p % 2)));
  }
  const ProcessSet lag = ProcessSet::range(5, 7);
  const Round gst = 3;

  // Sim side: a partial-synchrony model whose pre-GST sampler cannot land
  // inside the round (round_ticks=1 makes every sampled latency in [1, 2]
  // late iff it exceeds 1 — so pin lateness by using a degenerate
  // deterministic variant: an explicit always-late model via jitter is not
  // expressible, so drive the equivalence through the adversary instead).
  Adversary until_gst;
  until_gst.faulty = lag;
  until_gst.receive_omit = [lag, gst](const MsgKey& k) {
    return k.round < gst && lag.contains(k.receiver) &&
           !lag.contains(k.sender);
  };
  const RunResult lockstep =
      run_execution(params, factory, proposals, until_gst, {});
  const RunResult sim =
      run_execution_sim(params, factory, proposals, until_gst, {});
  expect_bit_identical(sim, lockstep, "until-gst");
}

}  // namespace
}  // namespace ba::sim
