// Satellite: the adversary library's omission predicates exercised through
// the simulator's drop path. The property under test: a simulated execution
// never delivers a message its adversary's predicates block (for eligible
// endpoints), and every emitted trace satisfies the analysis linter's
// conservation and budget invariants.

#include <gtest/gtest.h>

#include <vector>

#include "core/ba.h"

namespace ba::sim {
namespace {

struct Fixture {
  SystemParams params{7, 2};
  ProtocolFactory factory = protocols::phase_king_consensus();
  std::vector<Value> proposals;

  Fixture() {
    for (std::uint32_t p = 0; p < params.n; ++p) {
      proposals.push_back(Value::bit(static_cast<int>(p % 2)));
    }
  }
};

// Delivery respects the predicates: a received message whose sender is
// faulty (non-Byzantine) must not be send-omittable, and one whose receiver
// is faulty must not be receive-omittable.
void expect_no_blocked_delivery(const ExecutionTrace& trace,
                                const Adversary& adv) {
  for (const ProcessTrace& pt : trace.procs) {
    for (const RoundEvents& re : pt.rounds) {
      for (const Message& m : re.received) {
        const MsgKey k = m.key();
        if (adv.faulty.contains(m.sender) && !adv.is_byzantine(m.sender) &&
            adv.send_omit) {
          EXPECT_FALSE(adv.send_omit(k))
              << "delivered a send-omitted message " << m.sender << "->"
              << m.receiver << " r" << m.round;
        }
        if (adv.faulty.contains(m.receiver) && adv.receive_omit) {
          EXPECT_FALSE(adv.receive_omit(k))
              << "delivered a receive-omitted message " << m.sender << "->"
              << m.receiver << " r" << m.round;
        }
      }
    }
  }
}

TEST(SimFaults, RandomOmissionsNeverDeliverBlockedMessages) {
  Fixture fx;
  const ProcessSet faulty = ProcessSet::range(5, 7);
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 0xdecafull, 0xc0ffeeull}) {
    for (std::uint32_t permille : {125u, 500u, 875u}) {
      const Adversary adv = random_omissions(faulty, seed, permille);
      RunOptions opts;
      opts.lint_trace = true;
      const RunResult res =
          run_execution_sim(fx.params, fx.factory, fx.proposals, adv, opts);
      expect_no_blocked_delivery(res.trace, adv);
      ASSERT_TRUE(res.lint.has_value());
      EXPECT_TRUE(res.lint->clean())
          << "seed=" << seed << " permille=" << permille << ": "
          << res.lint->summary();
    }
  }
}

TEST(SimFaults, IsolationNeverDeliversBlockedMessages) {
  Fixture fx;
  for (Round from : {1u, 2u, 3u}) {
    const Adversary adv = isolate_group(ProcessSet::range(5, 7), from);
    RunOptions opts;
    opts.lint_trace = true;
    const RunResult res =
        run_execution_sim(fx.params, fx.factory, fx.proposals, adv, opts);
    expect_no_blocked_delivery(res.trace, adv);
    // Isolation cuts inbound cross traffic: nothing from outside the group
    // may reach it from `from` on.
    const ProcessSet group = ProcessSet::range(5, 7);
    for (ProcessId p : group) {
      const ProcessTrace& pt = res.trace.procs[p];
      for (std::size_t r = 0; r < pt.rounds.size(); ++r) {
        if (static_cast<Round>(r + 1) < from) continue;
        for (const Message& m : pt.rounds[r].received) {
          EXPECT_TRUE(group.contains(m.sender));
        }
      }
    }
    ASSERT_TRUE(res.lint.has_value());
    EXPECT_TRUE(res.lint->clean()) << res.lint->summary();
  }
}

// The same property through the full simulator surface (jitter model +
// metrics), not just the parity adapter: predicates decide drops before
// latency sampling, so the link model cannot resurrect a blocked message.
TEST(SimFaults, PredicatesHoldUnderJitterModel) {
  Fixture fx;
  const Adversary adv =
      random_omissions(ProcessSet::range(5, 7), /*seed=*/99, /*permille=*/400);
  SimConfig config;
  config.link = LinkModel::jitter(1, 200, /*seed=*/17);
  config.round_ticks = 256;
  config.lint_trace = true;
  const SimResult res =
      simulate(fx.params, fx.factory, fx.proposals, adv, config);
  expect_no_blocked_delivery(res.run.trace, adv);
  ASSERT_TRUE(res.run.lint.has_value());
  EXPECT_TRUE(res.run.lint->clean()) << res.run.lint->summary();
  // Metrics-side conservation: every accepted send either arrived, was
  // receive-omitted, or missed its round boundary. total_dropped() also
  // counts send-side omissions (which never reach sent_by), so the
  // receive-side share it must cover is sent - delivered - late.
  std::uint64_t sent = 0;
  for (std::uint64_t s : res.metrics.sent_by) sent += s;
  ASSERT_GE(sent, res.metrics.deliveries + res.metrics.total_late());
  const std::uint64_t receive_drops =
      sent - res.metrics.deliveries - res.metrics.total_late();
  EXPECT_LE(receive_drops, res.metrics.total_dropped());
}

}  // namespace
}  // namespace ba::sim
