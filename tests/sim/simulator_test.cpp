// Behavior of the discrete-event simulator beyond lockstep parity: event
// determinism, jitter and partial-synchrony link models, fault-plan
// injection, metrics accounting, and configuration validation.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/ba.h"

namespace ba::sim {
namespace {

struct Fixture {
  SystemParams params{7, 2};
  ProtocolFactory factory = protocols::phase_king_consensus();
  std::vector<Value> proposals;

  Fixture() {
    for (std::uint32_t p = 0; p < params.n; ++p) {
      proposals.push_back(Value::bit(static_cast<int>(p % 2)));
    }
  }
};

TEST(Simulator, RepeatedRunsAreIdentical) {
  Fixture fx;
  SimConfig config;
  config.link = LinkModel::jitter(1, 200, /*seed=*/0xfeedface);
  config.round_ticks = 256;
  const SimResult a =
      simulate(fx.params, fx.factory, fx.proposals, Adversary::none(), config);
  const SimResult b =
      simulate(fx.params, fx.factory, fx.proposals, Adversary::none(), config);
  EXPECT_EQ(encode_trace(a.run.trace), encode_trace(b.run.trace));
  EXPECT_EQ(a.run.decisions, b.run.decisions);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.end_time, b.end_time);
}

// Jitter is bounded by the round length, so it can only permute arrival
// order *within* a round: the round-level trace must be identical to the
// zero-jitter run, while the metrics see the permutation.
TEST(Simulator, BoundedJitterNeverChangesTheTrace) {
  Fixture fx;
  SimConfig sync;
  sync.link = LinkModel::synchronous();
  sync.round_ticks = 256;
  SimConfig jit = sync;
  jit.link = LinkModel::jitter(1, 256, /*seed=*/7);

  const SimResult a =
      simulate(fx.params, fx.factory, fx.proposals, Adversary::none(), sync);
  const SimResult b =
      simulate(fx.params, fx.factory, fx.proposals, Adversary::none(), jit);
  EXPECT_EQ(encode_trace(a.run.trace), encode_trace(b.run.trace));
  EXPECT_EQ(a.run.decisions, b.run.decisions);
  EXPECT_EQ(a.metrics.deliveries, b.metrics.deliveries);
  // The synchronous model delivers everything at the round boundary in
  // canonical order; sampled jitter is expected to break that order for at
  // least one pair in a 7-process all-to-all protocol.
  EXPECT_EQ(a.metrics.reordered, 0u);
  EXPECT_GT(b.metrics.reordered, 0u);
  EXPECT_LE(b.metrics.latency.max, jit.round_ticks);
  EXPECT_GE(b.metrics.latency.min, 1u);
}

TEST(Simulator, PartialSynchronyLosesPreGstCrossTrafficAndLintsClean) {
  Fixture fx;
  const ProcessSet lag = ProcessSet::range(5, 7);
  SimConfig config;
  config.link = LinkModel::partial_synchrony(lag, /*gst=*/3, /*seed=*/42);
  config.round_ticks = 256;
  config.lint_trace = true;

  const SimResult res =
      simulate(fx.params, fx.factory, fx.proposals, Adversary::none(), config);
  // The lag group is folded into the trace's faulty set automatically.
  for (ProcessId p : lag) EXPECT_TRUE(res.run.trace.faulty.contains(p));
  // Pre-GST inbound latencies are sampled in (round, 2*round] about half
  // the time; with 5 outside senders × 2 lagging receivers × 2 pre-GST
  // rounds, some message must have missed its boundary.
  EXPECT_GT(res.metrics.total_late(), 0u);
  ASSERT_TRUE(res.run.lint.has_value());
  EXPECT_TRUE(res.run.lint->clean()) << res.run.lint->summary();
}

TEST(Simulator, PartialSynchronyLateMessagesAreReceiveOmissions) {
  Fixture fx;
  const ProcessSet lag = ProcessSet::range(5, 7);
  SimConfig config;
  config.link = LinkModel::partial_synchrony(lag, /*gst=*/3, /*seed=*/42);
  config.round_ticks = 256;

  const SimResult res =
      simulate(fx.params, fx.factory, fx.proposals, Adversary::none(), config);
  std::uint64_t omitted = 0;
  for (ProcessId p = 0; p < fx.params.n; ++p) {
    const ProcessTrace& pt = res.run.trace.procs[p];
    for (std::size_t r = 0; r < pt.rounds.size(); ++r) {
      for (const Message& m : pt.rounds[r].receive_omitted) {
        ++omitted;
        // Every model-induced loss is inbound cross-group before GST.
        EXPECT_TRUE(lag.contains(m.receiver));
        EXPECT_FALSE(lag.contains(m.sender));
        EXPECT_LT(m.round, 3u);
      }
      // From GST on, nothing is lost.
      if (r + 1 >= 3) {
        EXPECT_TRUE(pt.rounds[r].receive_omitted.empty());
      }
    }
  }
  EXPECT_EQ(omitted, res.metrics.total_late());
}

// A windowed fault-plan partition must equal the adversary library's
// partition_from when the window is [from, forever).
TEST(Simulator, PartitionPlanMatchesPartitionFromAdversary) {
  Fixture fx;
  const ProcessSet side = ProcessSet::range(5, 7);
  FaultPlan plan;
  plan.partition(side, /*from=*/2);

  const SimResult via_plan = simulate(fx.params, fx.factory, fx.proposals,
                                      Adversary::none(), plan, SimConfig{});
  const RunResult via_adv = run_execution(fx.params, fx.factory, fx.proposals,
                                          partition_from(side, 2), {});
  EXPECT_EQ(encode_trace(via_plan.run.trace), encode_trace(via_adv.trace));
  EXPECT_EQ(via_plan.run.decisions, via_adv.decisions);
  EXPECT_EQ(via_plan.run.messages_sent_by_correct,
            via_adv.messages_sent_by_correct);
}

TEST(Simulator, CrashPlanMatchesCrashScheduleAdversary) {
  Fixture fx;
  FaultPlan plan;
  plan.crash(6, /*at=*/2).crash(5, /*at=*/3);

  const SimResult via_plan = simulate(fx.params, fx.factory, fx.proposals,
                                      Adversary::none(), plan, SimConfig{});
  const RunResult via_adv = run_execution(
      fx.params, fx.factory, fx.proposals, crash_schedule({{6, 2}, {5, 3}}),
      {});
  EXPECT_EQ(encode_trace(via_plan.run.trace), encode_trace(via_adv.trace));
  EXPECT_EQ(via_plan.run.decisions, via_adv.decisions);
}

TEST(Simulator, CrashRecoveryResumesSending) {
  const SystemParams params{5, 1};
  const ProtocolFactory factory = protocols::wc_candidate_gossip_ring(2, 5);
  const std::vector<Value> proposals(5, Value::bit(0));
  FaultPlan plan;
  plan.crash_recover(0, /*at=*/2, /*recover=*/4);

  const SimResult res =
      simulate(params, factory, proposals, Adversary::none(), plan,
               SimConfig{});
  const ProcessTrace& pt = res.run.trace.procs[0];
  ASSERT_GE(pt.rounds.size(), 4u);
  EXPECT_FALSE(pt.rounds[0].sent.empty());          // round 1: up
  EXPECT_TRUE(pt.rounds[1].sent.empty());           // rounds 2-3: down
  EXPECT_FALSE(pt.rounds[1].send_omitted.empty());
  EXPECT_TRUE(pt.rounds[2].sent.empty());
  EXPECT_FALSE(pt.rounds[3].sent.empty());          // round 4: recovered
}

TEST(Simulator, DropLinkSuppressesExactlyThatLink) {
  const SystemParams params{5, 1};
  const ProtocolFactory factory = protocols::wc_candidate_gossip_ring(2, 4);
  const std::vector<Value> proposals(5, Value::bit(0));
  FaultPlan plan;
  plan.drop_link(0, 1);  // forever

  const SimResult res =
      simulate(params, factory, proposals, Adversary::none(), plan,
               SimConfig{});
  EXPECT_TRUE(res.run.trace.faulty.contains(0));
  bool saw_omission = false;
  for (const ProcessTrace& pt : res.run.trace.procs) {
    for (const RoundEvents& re : pt.rounds) {
      for (const Message& m : re.received) {
        EXPECT_FALSE(m.sender == 0 && m.receiver == 1);
      }
      for (const Message& m : re.send_omitted) {
        EXPECT_EQ(m.sender, 0u);
        EXPECT_EQ(m.receiver, 1u);
        saw_omission = true;
      }
    }
  }
  EXPECT_TRUE(saw_omission);
  EXPECT_EQ(res.metrics.link(0, 1).delivered, 0u);
  EXPECT_GT(res.metrics.link(0, 1).dropped, 0u);
}

// Extra per-link delay is clamped to the round boundary: it shifts arrival
// times (visible in the latency histogram) but never the trace.
TEST(Simulator, DelayWithinBoundsOnlyMovesLatency) {
  Fixture fx;
  SimConfig config;
  config.link = LinkModel::synchronous(/*latency=*/1);
  config.round_ticks = 256;

  const SimResult plain = simulate(fx.params, fx.factory, fx.proposals,
                                   Adversary::none(), FaultPlan{}, config);
  FaultPlan plan;
  plan.delay_link(0, 1, /*ticks=*/100);
  const SimResult delayed = simulate(fx.params, fx.factory, fx.proposals,
                                     Adversary::none(), plan, config);

  EXPECT_EQ(encode_trace(plain.run.trace), encode_trace(delayed.run.trace));
  EXPECT_EQ(plain.metrics.deliveries, delayed.metrics.deliveries);
  EXPECT_EQ(plain.metrics.latency.max, 1u);
  EXPECT_EQ(delayed.metrics.latency.max, 101u);
}

TEST(Simulator, FaultFreeMetricsConserveMessages) {
  Fixture fx;
  SimConfig config;
  const SimResult res =
      simulate(fx.params, fx.factory, fx.proposals, Adversary::none(), config);
  std::uint64_t sent = 0;
  for (std::uint64_t s : res.metrics.sent_by) sent += s;
  std::uint64_t delivered = 0;
  for (std::uint64_t d : res.metrics.delivered_to) delivered += d;
  EXPECT_EQ(sent, res.run.messages_sent_total);
  EXPECT_EQ(delivered, res.metrics.deliveries);
  EXPECT_EQ(res.metrics.total_delivered(), res.metrics.deliveries);
  EXPECT_EQ(sent, delivered + res.metrics.total_dropped() +
                      res.metrics.total_late());
  EXPECT_EQ(res.metrics.total_dropped(), 0u);
  EXPECT_EQ(res.metrics.total_late(), 0u);
  EXPECT_EQ(res.metrics.latency.count, res.metrics.deliveries);
  EXPECT_GT(res.metrics.total_payload_bytes(), 0u);
  EXPECT_FALSE(res.metrics.summary().empty());
}

TEST(Simulator, ValidatesConfigurationAndBudget) {
  Fixture fx;
  SimConfig config;

  SimConfig zero_ticks = config;
  zero_ticks.round_ticks = 0;
  EXPECT_THROW(simulate(fx.params, fx.factory, fx.proposals, Adversary::none(),
                        zero_ticks),
               std::invalid_argument);

  const std::vector<Value> short_props(fx.params.n - 1, Value::bit(0));
  EXPECT_THROW(
      simulate(fx.params, fx.factory, short_props, Adversary::none(), config),
      std::invalid_argument);

  FaultPlan out_of_range;
  out_of_range.crash(fx.params.n, 1);
  EXPECT_THROW(simulate(fx.params, fx.factory, fx.proposals, Adversary::none(),
                        out_of_range, config),
               std::invalid_argument);

  // A lag group of 3 busts the t = 2 budget.
  SimConfig over_budget = config;
  over_budget.link =
      LinkModel::partial_synchrony(ProcessSet::range(4, 7), 3, 1);
  EXPECT_THROW(simulate(fx.params, fx.factory, fx.proposals, Adversary::none(),
                        over_budget),
               std::invalid_argument);

  // Plan blame + adversary faulty must fit the budget jointly.
  FaultPlan plan;
  plan.crash(0, 1);
  const Adversary adv = isolate_group(ProcessSet::range(5, 7), 1);
  EXPECT_THROW(
      simulate(fx.params, fx.factory, fx.proposals, adv, plan, config),
      std::invalid_argument);
}

TEST(Simulator, EventCountMatchesTheLoopStructure) {
  Fixture fx;
  SimConfig config;
  const SimResult res =
      simulate(fx.params, fx.factory, fx.proposals, Adversary::none(), config);
  // One RoundStart + one RoundEnd per executed round, one Deliver per
  // delivered message.
  EXPECT_EQ(res.events_processed,
            2u * res.run.rounds_executed + res.metrics.deliveries);
  EXPECT_EQ(res.end_time,
            SimTime{res.run.rounds_executed} * config.round_ticks);
}

}  // namespace
}  // namespace ba::sim
