// Tests for the explicit Appendix-A formalization: fragment conditions
// (A.1.4, 1-10), behavior conditions (A.1.5), execution guarantees (A.1.6),
// and the trace <-> behavior lifting — including the determinism condition
// (7) discharged by state-machine replay, on real protocol executions.

#include "calculus/formal.h"

#include <gtest/gtest.h>

#include <memory>

#include "adversary/omission.h"
#include "crypto/signature.h"
#include "protocols/phase_king.h"
#include "protocols/weak_consensus.h"
#include "runtime/sync_system.h"

namespace ba::calculus {
namespace {

Fragment sample_fragment() {
  Fragment f;
  f.state = FormalState{1, 2, Value::bit(0), std::nullopt};
  f.sent = {Message{1, 0, 2, Value{"a"}}, Message{1, 2, 2, Value{"b"}}};
  f.send_omitted = {Message{1, 3, 2, Value{"c"}}};
  f.received = {Message{0, 1, 2, Value{"d"}}};
  f.receive_omitted = {Message{2, 1, 2, Value{"e"}}};
  return f;
}

TEST(Fragment, WellFormedSamplePasses) {
  EXPECT_EQ(check_fragment(sample_fragment(), 1, 2), std::nullopt);
}

TEST(Fragment, EachConditionFires) {
  {  // (1) wrong process
    EXPECT_EQ(check_fragment(sample_fragment(), 2, 2), 1);
  }
  {  // (2) wrong round
    EXPECT_EQ(check_fragment(sample_fragment(), 1, 3), 2);
  }
  {  // (3) message with wrong round
    Fragment f = sample_fragment();
    f.sent[0].round = 9;
    EXPECT_EQ(check_fragment(f, 1, 2), 3);
  }
  {  // (4) sent and send-omitted overlap
    Fragment f = sample_fragment();
    f.send_omitted.push_back(f.sent[0]);
    EXPECT_EQ(check_fragment(f, 1, 2), 4);
  }
  {  // (5) received and receive-omitted overlap
    Fragment f = sample_fragment();
    f.receive_omitted.push_back(f.received[0]);
    EXPECT_EQ(check_fragment(f, 1, 2), 5);
  }
  {  // (6) outbound with foreign sender
    Fragment f = sample_fragment();
    f.sent[0].sender = 2;  // also breaks (8)? receiver is 0, so no
    EXPECT_EQ(check_fragment(f, 1, 2), 6);
  }
  {  // (7) inbound with foreign receiver
    Fragment f = sample_fragment();
    f.received[0].receiver = 3;
    EXPECT_EQ(check_fragment(f, 1, 2), 7);
  }
  {  // (8) self-message
    Fragment f = sample_fragment();
    f.received[0].sender = 1;
    EXPECT_EQ(check_fragment(f, 1, 2), 8);
  }
  {  // (9) two outbound to one receiver (same bucket, so (4) stays silent)
    Fragment f = sample_fragment();
    f.sent.push_back(Message{1, 0, 2, Value{"dup"}});
    EXPECT_EQ(check_fragment(f, 1, 2), 9);
  }
  {  // (10) two inbound from one sender
    Fragment f = sample_fragment();
    f.received.push_back(Message{0, 1, 2, Value{"dup"}});
    EXPECT_EQ(check_fragment(f, 1, 2), 10);
  }
  {  // (4) duplicate identity across sent / send-omitted
    Fragment f = sample_fragment();
    f.send_omitted.push_back(Message{1, 0, 2, Value{"dup"}});
    EXPECT_EQ(check_fragment(f, 1, 2), 4);
  }
  {  // (5) duplicate identity across received / receive-omitted
    Fragment f = sample_fragment();
    f.receive_omitted.push_back(Message{0, 1, 2, Value{"dup"}});
    EXPECT_EQ(check_fragment(f, 1, 2), 5);
  }
}

TEST(Behavior, StaticConditionsOnRealTrace) {
  SystemParams params{4, 1};
  RunResult res = run_all_correct(params, protocols::phase_king_consensus(),
                                  Value::bit(1));
  for (const Behavior& b : to_behaviors(res.trace)) {
    EXPECT_EQ(check_behavior_static(b), std::nullopt) << "p" << b.process;
  }
}

TEST(Behavior, StickyDecisionViolationDetected) {
  SystemParams params{4, 1};
  RunResult res = run_all_correct(params, protocols::phase_king_consensus(),
                                  Value::bit(1));
  auto behaviors = to_behaviors(res.trace);
  // Flip the decision in the last fragment only.
  Behavior& b = behaviors[0];
  ASSERT_GE(b.fragments.size(), 2u);
  ASSERT_TRUE(b.fragments.back().state.decision.has_value());
  b.fragments.back().state.decision = Value::bit(0);
  // If the previous fragment had already decided 1, this breaks (6).
  if (b.fragments[b.fragments.size() - 2].state.decision == Value::bit(1)) {
    EXPECT_EQ(check_behavior_static(b), 6);
  }
}

TEST(Behavior, ProposalChangeDetected) {
  SystemParams params{4, 1};
  RunResult res = run_all_correct(params, protocols::phase_king_consensus(),
                                  Value::bit(1));
  auto behaviors = to_behaviors(res.trace);
  behaviors[2].fragments[1].state.proposal = Value::bit(0);
  EXPECT_EQ(check_behavior_static(behaviors[2]), 5);
}

TEST(Behavior, TransitionConditionHoldsOnRealExecutions) {
  SystemParams params{6, 2};
  auto auth = std::make_shared<crypto::Authenticator>(5, 6);
  auto wc = protocols::weak_consensus_auth(auth);
  RunResult res = run_execution(params, wc,
                                std::vector<Value>(6, Value::bit(0)),
                                isolate_group(ProcessSet{{4, 5}}, 2));
  for (const Behavior& b : to_behaviors(res.trace)) {
    EXPECT_EQ(check_behavior_transitions(b, params, wc), std::nullopt)
        << "p" << b.process;
  }
}

TEST(Behavior, TransitionConditionCatchesTamperedSends) {
  SystemParams params{4, 1};
  auto pk = protocols::phase_king_consensus();
  RunResult res = run_all_correct(params, pk, Value::bit(0));
  auto behaviors = to_behaviors(res.trace);
  ASSERT_FALSE(behaviors[1].fragments[0].sent.empty());
  behaviors[1].fragments[0].sent[0].payload = Value{"forged"};
  EXPECT_NE(check_behavior_transitions(behaviors[1], params, pk),
            std::nullopt);
}

TEST(Behavior, TransitionConditionCatchesWrongProtocol) {
  SystemParams params{4, 1};
  RunResult res = run_all_correct(params, protocols::phase_king_consensus(),
                                  Value::bit(0));
  auto behaviors = to_behaviors(res.trace);
  EXPECT_NE(check_behavior_transitions(behaviors[0], params,
                                       protocols::wc_candidate_silent(1)),
            std::nullopt);
}

TEST(ExecutionConditions, HoldOnRealExecutions) {
  SystemParams params{5, 2};
  RunResult res = run_execution(params, protocols::phase_king_consensus(),
                                std::vector<Value>(5, Value::bit(1)),
                                isolate_group(ProcessSet{{4}}, 3));
  auto behaviors = to_behaviors(res.trace);
  EXPECT_EQ(check_execution_conditions(params, res.trace.faulty, behaviors),
            std::nullopt);
}

TEST(ExecutionConditions, OmissionValidityFires) {
  SystemParams params{5, 2};
  RunResult res = run_execution(params, protocols::phase_king_consensus(),
                                std::vector<Value>(5, Value::bit(1)),
                                isolate_group(ProcessSet{{4}}, 1));
  auto behaviors = to_behaviors(res.trace);
  // Claim nobody is faulty: p4's receive-omissions violate the guarantee.
  auto err = check_execution_conditions(params, ProcessSet{}, behaviors);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("omission-validity"), std::string::npos);
}

TEST(ExecutionConditions, ReceiveValidityFires) {
  SystemParams params{4, 1};
  RunResult res = run_all_correct(params, protocols::phase_king_consensus(),
                                  Value::bit(0));
  auto behaviors = to_behaviors(res.trace);
  behaviors[0].fragments[0].received.push_back(
      Message{2, 0, 1, Value{"never-sent"}});
  // The forged inbound breaks fragment condition (10)? No — sender 2 already
  // sent one message to p0 in round 1, making two inbound from one sender,
  // which composition (static behavior check) reports first. Use a fresh
  // sender id impossible in round 1 instead: remove the original first.
  auto& rec = behaviors[0].fragments[0].received;
  std::erase_if(rec, [](const Message& m) {
    return m.sender == 2 && m.payload != Value{"never-sent"};
  });
  auto err = check_execution_conditions(params, res.trace.faulty, behaviors);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("receive-validity"), std::string::npos);
}

TEST(ExecutionConditions, FaultBudgetFires) {
  SystemParams params{4, 1};
  RunResult res = run_all_correct(params, protocols::phase_king_consensus(),
                                  Value::bit(0));
  auto behaviors = to_behaviors(res.trace);
  auto err = check_execution_conditions(params, ProcessSet{{0, 1}},
                                        behaviors);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("|F| > t"), std::string::npos);
}

TEST(Lifting, BehaviorsMatchTraceContent) {
  SystemParams params{4, 2};
  RunResult res = run_execution(params, protocols::phase_king_consensus(),
                                std::vector<Value>(4, Value::bit(0)),
                                isolate_group(ProcessSet{{3}}, 2));
  auto behaviors = to_behaviors(res.trace);
  ASSERT_EQ(behaviors.size(), 4u);
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_EQ(behaviors[p].rounds(), res.trace.procs[p].rounds.size());
    for (std::size_t j = 0; j < behaviors[p].rounds(); ++j) {
      EXPECT_EQ(behaviors[p].fragments[j].sent,
                res.trace.procs[p].rounds[j].sent);
      EXPECT_EQ(behaviors[p].fragments[j].received,
                res.trace.procs[p].rounds[j].received);
    }
    // Decision appears in states strictly after its decision round.
    const auto& pt = res.trace.procs[p];
    if (pt.decision && pt.decision_round < behaviors[p].rounds()) {
      EXPECT_EQ(behaviors[p]
                    .state(static_cast<Round>(pt.decision_round + 1))
                    .decision,
                pt.decision);
      EXPECT_EQ(behaviors[p].state(pt.decision_round).decision,
                std::nullopt);
    }
  }
}

}  // namespace
}  // namespace ba::calculus
