// Tests for the Appendix-A execution calculus: isolation (Definition 1),
// mergeability (Definition 2), swap_omission (Algorithm 4 / Lemma 15) and
// merge (Algorithm 5 / Lemma 16).

#include <gtest/gtest.h>

#include <memory>

#include "adversary/omission.h"
#include "calculus/isolation.h"
#include "calculus/merge.h"
#include "calculus/swap_omission.h"
#include "crypto/signature.h"
#include "protocols/common.h"
#include "protocols/weak_consensus.h"
#include "runtime/sync_system.h"

namespace ba::calculus {
namespace {

/// A chatty deterministic protocol: everyone multicasts its running XOR for
/// three rounds, then decides it. Gives merge/swap real message flow to work
/// on without protocol-specific structure.
class XorChatter final : public protocols::DecidingProcess {
 public:
  explicit XorChatter(const ProcessContext& ctx)
      : ctx_(ctx), acc_(ctx.proposal.try_bit().value_or(0)) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r <= 3) {
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != ctx_.self) out.push_back(Outgoing{p, Value::bit(acc_)});
      }
    }
    return out;
  }
  void deliver(Round r, const Inbox& inbox) override {
    for (const Message& m : inbox) acc_ ^= m.payload.try_bit().value_or(0);
    if (r == 3) decide(Value::bit(acc_));
  }

 private:
  ProcessContext ctx_;
  int acc_;
};

ProtocolFactory xor_chatter() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<XorChatter>(ctx);
  };
}

SystemParams params() { return SystemParams{6, 2}; }

IsolatedExecution isolated(const ProcessSet& g, Round k, int bit = 0) {
  RunResult res = run_execution(params(), xor_chatter(),
                                std::vector<Value>(6, Value::bit(bit)),
                                isolate_group(g, k));
  return IsolatedExecution{res.trace, g, k};
}

TEST(Isolation, CheckAcceptsProperlyIsolatedTraces) {
  for (Round k : {1u, 2u, 3u}) {
    auto ie = isolated(ProcessSet{{4, 5}}, k);
    EXPECT_EQ(check_isolated(ie.trace, ie.group, k), std::nullopt)
        << "k=" << k;
  }
}

TEST(Isolation, CheckRejectsWrongRound) {
  auto ie = isolated(ProcessSet{{4, 5}}, 2);
  // Claiming isolation from round 1 is wrong: round-1 messages were received.
  EXPECT_NE(check_isolated(ie.trace, ie.group, 1), std::nullopt);
  // Claiming isolation from round 3 is wrong: round-2 messages were omitted.
  EXPECT_NE(check_isolated(ie.trace, ie.group, 3), std::nullopt);
}

TEST(Isolation, CheckRejectsNonFaultyGroup) {
  auto ie = isolated(ProcessSet{{4, 5}}, 2);
  EXPECT_NE(check_isolated(ie.trace, ProcessSet{{0, 4, 5}}, 2), std::nullopt);
}

TEST(Isolation, IsolationRoundRecovery) {
  for (Round k : {1u, 2u, 3u}) {
    auto ie = isolated(ProcessSet{{5}}, k);
    EXPECT_EQ(isolation_round(ie.trace, ProcessSet{{5}}), k) << "k=" << k;
  }
  // A fault-free execution: Definition 1 requires isolated-group members to
  // be faulty, so no isolation round exists for a correct group.
  RunResult clean = run_all_correct(params(), xor_chatter(), Value::bit(0));
  EXPECT_EQ(isolation_round(clean.trace, ProcessSet{{5}}), std::nullopt);
}

TEST(Mergeable, Definition2Cases) {
  auto b1 = isolated(ProcessSet{{4}}, 1);
  auto c1 = isolated(ProcessSet{{5}}, 1, /*bit=*/1);
  EXPECT_TRUE(are_mergeable(b1, c1));  // k1 = k2 = 1, any proposals

  auto b2 = isolated(ProcessSet{{4}}, 2);
  auto c2 = isolated(ProcessSet{{5}}, 3);
  EXPECT_TRUE(are_mergeable(b2, c2));  // same proposals, |k1-k2| = 1

  auto c3 = isolated(ProcessSet{{5}}, 4);
  EXPECT_FALSE(are_mergeable(b2, c3));  // |k1-k2| = 2

  auto c4 = isolated(ProcessSet{{5}}, 3, /*bit=*/1);
  EXPECT_FALSE(are_mergeable(b2, c4));  // different proposals, k > 1

  auto overlap = isolated(ProcessSet{{4}}, 2);
  EXPECT_FALSE(are_mergeable(b2, overlap));  // groups not disjoint
}

TEST(Merge, ProducesValidExecution) {
  auto eb = isolated(ProcessSet{{4}}, 2);
  auto ec = isolated(ProcessSet{{5}}, 3);
  ExecutionTrace merged = merge(params(), xor_chatter(), eb, ec);
  EXPECT_EQ(merged.validate(), std::nullopt);
  EXPECT_EQ(merged.faulty, ProcessSet({4, 5}));
  EXPECT_TRUE(merged.quiesced);
}

TEST(Merge, IsolatedGroupsCannotDistinguish) {
  // Lemma 16(2): each isolated process receives exactly what it received in
  // its source execution.
  auto eb = isolated(ProcessSet{{4}}, 2);
  auto ec = isolated(ProcessSet{{5}}, 2);
  ExecutionTrace merged = merge(params(), xor_chatter(), eb, ec);
  EXPECT_TRUE(merged.indistinguishable_for(4, eb.trace));
  EXPECT_TRUE(merged.indistinguishable_for(5, ec.trace));
  // ... and therefore decides identically (determinism).
  EXPECT_EQ(merged.procs[4].decision, eb.trace.procs[4].decision);
  EXPECT_EQ(merged.procs[5].decision, ec.trace.procs[5].decision);
}

TEST(Merge, BothGroupsIsolatedAtTheirRounds) {
  // Lemma 16(3).
  auto eb = isolated(ProcessSet{{4}}, 3);
  auto ec = isolated(ProcessSet{{5}}, 2);
  ExecutionTrace merged = merge(params(), xor_chatter(), eb, ec);
  EXPECT_EQ(check_isolated(merged, ProcessSet{{4}}, 3), std::nullopt);
  EXPECT_EQ(check_isolated(merged, ProcessSet{{5}}, 2), std::nullopt);
}

TEST(Merge, Round1CrossProposalMerge) {
  // The k1 = k2 = 1 case with different proposals: A u B propose 0, C
  // proposes 1 (exactly the E_0^B(1) / E_1^C(1) merge of Lemma 3).
  auto eb = isolated(ProcessSet{{4}}, 1, /*bit=*/0);
  auto ec = isolated(ProcessSet{{5}}, 1, /*bit=*/1);
  ExecutionTrace merged = merge(params(), xor_chatter(), eb, ec);
  EXPECT_EQ(merged.validate(), std::nullopt);
  EXPECT_EQ(merged.procs[5].proposal, Value::bit(1));
  EXPECT_EQ(merged.procs[0].proposal, Value::bit(0));
  EXPECT_TRUE(merged.indistinguishable_for(4, eb.trace));
  EXPECT_TRUE(merged.indistinguishable_for(5, ec.trace));
}

TEST(Merge, RejectsNonMergeable) {
  auto eb = isolated(ProcessSet{{4}}, 2);
  auto ec = isolated(ProcessSet{{5}}, 4);
  EXPECT_THROW(merge(params(), xor_chatter(), eb, ec), std::invalid_argument);
}

TEST(SwapOmission, ProducesIndistinguishableValidExecution) {
  // Gossip ring with fan-out 1: p4 only ever receives from p3, so isolating
  // {4,5} blames a single sender — the swap preconditions hold with t = 3.
  SystemParams big{6, 3};
  RunResult run = run_execution(big,
                                protocols::wc_candidate_gossip_ring(1, 2),
                                std::vector<Value>(6, Value::bit(0)),
                                isolate_group(ProcessSet{{4, 5}}, 1));
  const IsolatedExecution ie{run.trace, ProcessSet{{4, 5}}, 1};
  auto pre = check_swap_preconditions(ie.trace, 4);
  ASSERT_TRUE(pre.ok) << pre.error;

  SwapResult swapped = swap_omission(ie.trace, 4);
  EXPECT_EQ(swapped.execution.validate(), std::nullopt);
  // Lemma 15(2): indistinguishable to every process.
  for (ProcessId p = 0; p < 6; ++p) {
    EXPECT_TRUE(ie.trace.indistinguishable_for(p, swapped.execution))
        << "p" << p;
  }
  // Lemma 15(3): the subject is now correct; blame lands on p3 (its ring
  // predecessor). p5's only ring predecessor is p4, inside the group, so p5
  // never actually omits anything and drops out of the faulty set too.
  EXPECT_FALSE(swapped.execution.faulty.contains(4));
  EXPECT_EQ(swapped.execution.faulty, ProcessSet({3}));
  EXPECT_EQ(swapped.execution.faulty, pre.new_faulty);
  // The witness is correct in E'.
  EXPECT_FALSE(swapped.execution.faulty.contains(pre.witness_correct));
}

TEST(SwapOmission, BlameLandsOnSenders) {
  auto ie = isolated(ProcessSet{{5}}, 2);
  SwapResult swapped = swap_omission(ie.trace, 5);
  // Everyone who sent p5 a message in rounds >= 2 now send-omits it.
  for (ProcessId p = 0; p < 5; ++p) {
    bool blamed = false;
    for (const RoundEvents& re : swapped.execution.procs[p].rounds) {
      for (const Message& m : re.send_omitted) {
        EXPECT_EQ(m.receiver, 5u);
        blamed = true;
      }
    }
    EXPECT_TRUE(blamed) << "p" << p << " sent to p5 and should be blamed";
    EXPECT_TRUE(swapped.execution.faulty.contains(p));
  }
  // p5 has no omissions left.
  for (const RoundEvents& re : swapped.execution.procs[5].rounds) {
    EXPECT_TRUE(re.receive_omitted.empty());
    EXPECT_TRUE(re.send_omitted.empty());
  }
}

TEST(SwapOmission, PreconditionsFailWhenBlameExceedsT) {
  // Isolating one process in a chatty protocol blames all n - 1 senders,
  // which exceeds t = 2: the swap must be rejected.
  auto ie = isolated(ProcessSet{{5}}, 2);
  auto pre = check_swap_preconditions(ie.trace, 5);
  EXPECT_FALSE(pre.ok);
}

TEST(SwapOmission, NoOmissionsIsANoOp) {
  RunResult clean = run_all_correct(params(), xor_chatter(), Value::bit(1));
  SwapResult swapped = swap_omission(clean.trace, 3);
  EXPECT_TRUE(swapped.execution.faulty.empty());
  EXPECT_EQ(swapped.execution.validate(), std::nullopt);
}

TEST(SwapOmission, WorksOnRealProtocol) {
  // Leader-beacon: isolate {4,5} from round 1; p4 receive-omits only the
  // leader's beacon, so the blame set is {p0} and the swap succeeds.
  SystemParams p{6, 3};
  RunResult res = run_execution(
      p, protocols::wc_candidate_leader_beacon(),
      std::vector<Value>(6, Value::bit(0)),
      isolate_group(ProcessSet{{4, 5}}, 1));
  auto pre = check_swap_preconditions(res.trace, 4);
  ASSERT_TRUE(pre.ok) << pre.error;
  SwapResult swapped = swap_omission(res.trace, 4);
  EXPECT_EQ(swapped.execution.validate(), std::nullopt);
  // p4 decided 1 (no beacon), p1 decided 0 — and both are correct in E'.
  EXPECT_FALSE(swapped.execution.faulty.contains(4));
  EXPECT_FALSE(swapped.execution.faulty.contains(1));
  EXPECT_EQ(swapped.execution.procs[4].decision, Value::bit(1));
  EXPECT_EQ(swapped.execution.procs[1].decision, Value::bit(0));
}

}  // namespace
}  // namespace ba::calculus
