// Ben-Or '83 under the asynchronous executor: the seeded termination
// campaign (>= 1e3 ideal-coin seeds at (4,1) and (7,2), every run decides,
// quiesces, and satisfies the safety conjunction), the local-coin safety
// cohort (safety always, termination not asserted per-run), and the
// deliberately broken variant's behaviour (unanimous inputs stay correct;
// split inputs disagree).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/ba.h"

namespace ba::async {
namespace {

std::vector<Value> bit_proposals(const std::vector<int>& bits) {
  std::vector<Value> out;
  out.reserve(bits.size());
  for (const int b : bits) out.push_back(Value::bit(b));
  return out;
}

std::vector<int> split_bits(std::uint32_t n) {
  std::vector<int> bits;
  for (std::uint32_t p = 0; p < n; ++p) {
    bits.push_back(static_cast<int>(p % 2));
  }
  return bits;
}

/// One campaign point: run `seeds` ideal-coin executions, each under a
/// random schedule derived from the same seed, and require every one to
/// quiesce with all processes decided and the safety conjunction intact.
void run_termination_campaign(const SystemParams& params,
                              std::uint64_t seeds) {
  const std::vector<int> proposals = split_bits(params.n);
  const std::vector<Value> values = bit_proposals(proposals);
  AsyncRunOptions options;
  options.record_trace = false;  // 1e3+ runs: skip the n*rounds storage
  std::uint64_t max_deliveries_seen = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    BenOrConfig config;
    config.coin = ideal_coin(seed);
    const AsyncProtocolFactory factory = ben_or_factory(config);
    auto scheduler = make_scheduler("random", seed, params.n);
    const AsyncRunResult res = run_async(params, factory, values,
                                         AsyncAdversary::none(), *scheduler,
                                         options);
    ASSERT_TRUE(res.run.quiesced) << "seed " << seed;
    for (ProcessId p = 0; p < params.n; ++p) {
      ASSERT_TRUE(res.run.decisions[p].has_value())
          << "seed " << seed << " p" << p;
    }
    const auto violation = binary_consensus_safety(
        params, proposals, ProcessSet{}, res.run.decisions);
    ASSERT_FALSE(violation.has_value())
        << "seed " << seed << ": " << violation->property << " — "
        << violation->detail;
    max_deliveries_seen = std::max(max_deliveries_seen, res.deliveries);
  }
  // The shared coin collapses disagreement fast: no run should come close
  // to the kBenOrMaxPhases envelope (2 n (n-1) sends per phase).
  EXPECT_LT(max_deliveries_seen,
            static_cast<std::uint64_t>(kBenOrMaxPhases) * 2 * params.n *
                (params.n - 1));
}

TEST(BenOrTermination, IdealCoinCampaignAt4x1) {
  run_termination_campaign(SystemParams{4, 1}, 1000);
}

TEST(BenOrTermination, IdealCoinCampaignAt7x2) {
  run_termination_campaign(SystemParams{7, 2}, 1000);
}

TEST(BenOrLocalCoin, SafetyHoldsAcrossScheduleCohort) {
  // With independent per-process coins, termination is only probabilistic —
  // a run may exhaust kBenOrMaxPhases undecided. Safety must hold anyway.
  const SystemParams params{4, 1};
  const std::vector<int> proposals = split_bits(params.n);
  const std::vector<Value> values = bit_proposals(proposals);
  AsyncRunOptions options;
  options.record_trace = false;
  std::uint64_t decided_runs = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    BenOrConfig config;
    config.coin = local_coin(seed);
    const AsyncProtocolFactory factory = ben_or_factory(config);
    auto scheduler = make_scheduler("random", seed * 31 + 7, params.n);
    const AsyncRunResult res = run_async(params, factory, values,
                                         AsyncAdversary::none(), *scheduler,
                                         options);
    const auto violation = binary_consensus_safety(
        params, proposals, ProcessSet{}, res.run.decisions);
    ASSERT_FALSE(violation.has_value())
        << "seed " << seed << ": " << violation->property << " — "
        << violation->detail;
    bool all = true;
    for (ProcessId p = 0; p < params.n; ++p) {
      all = all && res.run.decisions[p].has_value();
    }
    if (all) decided_runs++;
  }
  // Aggregate liveness: the overwhelming majority of local-coin runs still
  // decide well inside the phase cap.
  EXPECT_GT(decided_runs, 150u);
}

TEST(BenOr, UnanimousInputsDecideTheUnanimousValue) {
  const SystemParams params{4, 1};
  for (const int bit : {0, 1}) {
    BenOrConfig config;
    config.coin = ideal_coin(1);
    const AsyncProtocolFactory factory = ben_or_factory(config);
    auto fifo = make_scheduler("fifo", 1, params.n);
    const AsyncRunResult res =
        run_async(params, factory, bit_proposals({bit, bit, bit, bit}),
                  AsyncAdversary::none(), *fifo);
    for (ProcessId p = 0; p < params.n; ++p) {
      ASSERT_TRUE(res.run.decisions[p].has_value()) << "bit " << bit;
      EXPECT_EQ(*res.run.decisions[p], Value::bit(bit)) << "p" << p;
    }
    EXPECT_TRUE(res.run.quiesced);
  }
}

TEST(BenOr, FactoryRequiresACoin) {
  EXPECT_THROW((void)ben_or_factory(BenOrConfig{}), std::invalid_argument);
}

TEST(BenOr, StaysWithinTheStaticBudget) {
  // The CommSpec envelope (128 n^2 - 128 n messages) must cap what any
  // schedule extracts from correct processes; the async-model lint enforces
  // it through the kBudget invariant.
  const SystemParams params{4, 1};
  const statics::CommSpec* spec = protocols::find_comm_spec("ben-or");
  ASSERT_NE(spec, nullptr);
  const statics::Budget budget =
      statics::budget_at(statics::analyze(*spec), params);
  BenOrConfig config;
  config.coin = ideal_coin(3);
  const AsyncProtocolFactory factory = ben_or_factory(config);
  AsyncRunOptions options;
  options.lint_trace = true;
  options.message_budget = budget.messages;
  auto scheduler = make_scheduler("delay-decider", 1, params.n);
  const AsyncRunResult res =
      run_async(params, factory, bit_proposals(split_bits(params.n)),
                AsyncAdversary::none(), *scheduler, options);
  ASSERT_TRUE(res.run.lint.has_value());
  EXPECT_TRUE(res.run.lint->clean()) << res.run.lint->summary();
  EXPECT_LE(res.run.messages_sent_by_correct, budget.messages);
}

TEST(BenOrBroken, UnanimousInputsSurviveTheWeakenedThresholds) {
  const SystemParams params{4, 1};
  BenOrConfig config;
  config.coin = ideal_coin(1);
  config.broken = true;
  const AsyncProtocolFactory factory = ben_or_factory(config);
  auto fifo = make_scheduler("fifo", 1, params.n);
  const AsyncRunResult res =
      run_async(params, factory, bit_proposals({1, 1, 1, 1}),
                AsyncAdversary::none(), *fifo);
  for (ProcessId p = 0; p < params.n; ++p) {
    ASSERT_TRUE(res.run.decisions[p].has_value());
    EXPECT_EQ(*res.run.decisions[p], Value::bit(1));
  }
}

TEST(BenOrBroken, SplitInputsViolateAgreement) {
  // The registry's ben-or-broken at the default instance: the weakened
  // thresholds let two processes decide apart already under fifo delivery —
  // the certificate the exploration engine minimizes to zero choices.
  const SystemParams params{4, 1};
  const auto info = find_async_protocol("ben-or-broken");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->deliberately_broken);
  const std::vector<int> proposals = split_bits(params.n);
  auto fifo = make_scheduler("fifo", 1, params.n);
  const AsyncRunResult res =
      run_async(params, info->make(1), bit_proposals(proposals),
                AsyncAdversary::none(), *fifo);
  const auto violation = binary_consensus_safety(params, proposals,
                                                 ProcessSet{},
                                                 res.run.decisions);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->property, "agreement");
}

TEST(AsyncProtocolRegistry, NamesAreSortedAndResolvable) {
  const auto& protocols = async_protocols();
  ASSERT_EQ(protocols.size(), 4u);
  EXPECT_EQ(protocols[0].name, "ben-or");
  EXPECT_EQ(protocols[1].name, "ben-or-broken");
  EXPECT_EQ(protocols[2].name, "ben-or-local");
  EXPECT_EQ(protocols[3].name, "bracha");
  EXPECT_STREQ(async_protocol_list(),
               "ben-or | ben-or-broken | ben-or-local | bracha");
  for (const AsyncProtocolInfo& info : protocols) {
    EXPECT_EQ(find_async_protocol(info.name), &info);
  }
  EXPECT_EQ(find_async_protocol("no-such-protocol"), nullptr);
}

}  // namespace
}  // namespace ba::async
