// Schedule exploration (src/async/explore.h): exhaustive enumeration of a
// correct protocol finds zero violations, the broken protocol yields a
// minimized certificate whose replay reproduces the recorded violation, the
// report is byte-identical for jobs in {1, 2, 8} (the determinism battery),
// sampling campaigns are seeded and resumable, and the certificate text
// format round-trips with line-numbered decode errors.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ba.h"

namespace ba::async {
namespace {

ExploreTask task_for(const std::string& protocol, std::uint32_t n,
                     std::uint32_t t) {
  ExploreTask task;
  task.protocol = protocol;
  task.params = SystemParams{n, t};
  for (std::uint32_t p = 0; p < n; ++p) {
    task.proposals.push_back(static_cast<int>(p % 2));
  }
  return task;
}

TEST(ExploreExhaustive, BenOrIsSafeAcrossAllDepth3Prefixes) {
  const ExploreTask task = task_for("ben-or", 4, 1);
  ExploreOptions options;
  options.exhaustive = true;
  options.depth = 3;
  const ExploreReport report = explore(task, options);
  EXPECT_GT(report.schedules, 0u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_FALSE(report.certificate.has_value());
  EXPECT_EQ(report.quiesced, report.schedules);
  EXPECT_EQ(report.all_decided, report.schedules);
}

TEST(ExploreExhaustive, BrokenBenOrYieldsAMinimizedReplayableCertificate) {
  const ExploreTask task = task_for("ben-or-broken", 4, 1);
  ExploreOptions options;
  options.exhaustive = true;
  options.depth = 3;
  const ExploreReport report = explore(task, options);
  EXPECT_GT(report.violations, 0u);
  ASSERT_TRUE(report.certificate.has_value());
  const ScheduleCertificate& cert = *report.certificate;
  EXPECT_EQ(cert.property, "agreement");
  // Minimization: no certificate choice is redundant — dropping any single
  // choice (or truncating) would lose the violation, so the minimized
  // prefix can only be short. At this instance fifo alone already violates.
  EXPECT_LE(cert.choices.size(), options.depth);

  const AsyncRunResult replay = replay_certificate(cert);
  const auto violation = binary_consensus_safety(
      cert.params, cert.proposals, cert.faulty, replay.run.decisions);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->property, cert.property);
  EXPECT_EQ(violation->detail, cert.detail);
}

TEST(ExploreDeterminism, ExhaustiveReportIsIdenticalForJobs128) {
  for (const char* protocol : {"ben-or", "ben-or-broken"}) {
    ExploreTask task = task_for(protocol, 4, 1);
    ExploreOptions options;
    options.exhaustive = true;
    options.depth = 2;
    options.jobs = 1;
    const ExploreReport reference = explore(task, options);
    for (const std::uint32_t jobs : {2u, 8u}) {
      options.jobs = jobs;
      const ExploreReport got = explore(task, options);
      EXPECT_EQ(got.schedules, reference.schedules)
          << protocol << " jobs=" << jobs;
      EXPECT_EQ(got.deliveries, reference.deliveries)
          << protocol << " jobs=" << jobs;
      EXPECT_EQ(got.quiesced, reference.quiesced)
          << protocol << " jobs=" << jobs;
      EXPECT_EQ(got.all_decided, reference.all_decided)
          << protocol << " jobs=" << jobs;
      EXPECT_EQ(got.violations, reference.violations)
          << protocol << " jobs=" << jobs;
      EXPECT_EQ(got.digest, reference.digest)
          << protocol << " jobs=" << jobs;
      ASSERT_EQ(got.certificate.has_value(), reference.certificate.has_value())
          << protocol << " jobs=" << jobs;
      if (reference.certificate) {
        EXPECT_EQ(got.certificate->encode(), reference.certificate->encode())
            << protocol << " jobs=" << jobs;
      }
    }
  }
}

TEST(ExploreDeterminism, SamplingReportIsIdenticalForJobs128) {
  const ExploreTask task = task_for("ben-or", 5, 1);
  ExploreOptions options;
  options.samples = 48;
  options.seed = 11;
  options.jobs = 1;
  const ExploreReport reference = explore(task, options);
  EXPECT_EQ(reference.schedules, 48u);
  for (const std::uint32_t jobs : {2u, 8u}) {
    options.jobs = jobs;
    const ExploreReport got = explore(task, options);
    EXPECT_EQ(got.digest, reference.digest) << "jobs=" << jobs;
    EXPECT_EQ(got.deliveries, reference.deliveries) << "jobs=" << jobs;
    EXPECT_EQ(got.violations, reference.violations) << "jobs=" << jobs;
  }
}

TEST(ExploreSampling, CampaignsAreSeededAndResumable) {
  const ExploreTask task = task_for("ben-or", 4, 1);

  // Same (seed, index range) => identical report.
  ExploreOptions options;
  options.samples = 32;
  options.seed = 5;
  const ExploreReport once = explore(task, options);
  const ExploreReport again = explore(task, options);
  EXPECT_EQ(once.digest, again.digest);
  EXPECT_EQ(once.deliveries, again.deliveries);
  EXPECT_EQ(once.next_index, 32u);

  // A resumed campaign covers the same schedules as one long campaign:
  // each schedule is pinned by (seed, start_index + i), so the two halves
  // partition the full run's work exactly.
  ExploreOptions full;
  full.samples = 64;
  full.seed = 5;
  const ExploreReport whole = explore(task, full);
  ExploreOptions second_half = options;
  second_half.start_index = once.next_index;
  const ExploreReport rest = explore(task, second_half);
  EXPECT_EQ(rest.next_index, 64u);
  EXPECT_EQ(once.deliveries + rest.deliveries, whole.deliveries);
  EXPECT_EQ(once.quiesced + rest.quiesced, whole.quiesced);
  EXPECT_EQ(once.all_decided + rest.all_decided, whole.all_decided);
  EXPECT_EQ(once.schedules + rest.schedules, whole.schedules);

  // A different master seed drives different schedules.
  ExploreOptions reseeded = options;
  reseeded.seed = 6;
  EXPECT_NE(explore(task, reseeded).digest, once.digest);
}

TEST(ExploreErrors, PinnedMessages) {
  ExploreOptions options;
  try {
    ExploreTask task = task_for("warp-consensus", 4, 1);
    (void)explore(task, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "explore: unknown async protocol 'warp-consensus' "
                 "(ben-or | ben-or-broken | ben-or-local | bracha)");
  }
  try {
    ExploreTask task = task_for("ben-or", 4, 4);
    (void)explore(task, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "explore: invalid SystemParams");
  }
  try {
    ExploreTask task = task_for("ben-or", 4, 1);
    task.proposals.pop_back();
    (void)explore(task, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "explore: need exactly n proposal bits");
  }
  try {
    ExploreTask task = task_for("ben-or", 4, 1);
    task.faulty.insert(0);
    task.faulty.insert(1);
    (void)explore(task, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "explore: |faulty| exceeds t");
  }
  try {
    ExploreTask task = task_for("ben-or", 4, 1);
    task.completion_strategy = "telepathy";
    (void)explore(task, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "explore: unknown completion strategy 'telepathy' "
                 "(fifo | random | delay-decider | rr-starve)");
  }
}

TEST(ExploreFaulty, CrashedProcessShrinksTheInstanceSafely) {
  ExploreTask task = task_for("ben-or", 4, 1);
  task.faulty.insert(3);
  ExploreOptions options;
  options.samples = 32;
  const ExploreReport report = explore(task, options);
  EXPECT_EQ(report.schedules, 32u);
  EXPECT_EQ(report.violations, 0u);
}

TEST(Certificate, EncodeDecodeRoundTrips) {
  ScheduleCertificate cert;
  cert.protocol = "ben-or-broken";
  cert.params = SystemParams{4, 1};
  cert.proposals = {0, 1, 0, 1};
  cert.faulty.insert(2);
  cert.coin_seed = 77;
  cert.completion_strategy = "rr-starve";
  cert.completion_seed = 5;
  cert.max_deliveries = 4096;
  cert.choices = {8, 2, 0};
  cert.property = "agreement";
  cert.detail = "process 0 decided 0 but process 3 decided 1";

  const std::string text = cert.encode();
  EXPECT_EQ(text.rfind("ba-async-cert v1\n", 0), 0u);
  const ScheduleCertificate back = ScheduleCertificate::decode(text);
  EXPECT_EQ(back.protocol, cert.protocol);
  EXPECT_EQ(back.params.n, cert.params.n);
  EXPECT_EQ(back.params.t, cert.params.t);
  EXPECT_EQ(back.proposals, cert.proposals);
  EXPECT_EQ(back.faulty, cert.faulty);
  EXPECT_EQ(back.coin_seed, cert.coin_seed);
  EXPECT_EQ(back.completion_strategy, cert.completion_strategy);
  EXPECT_EQ(back.completion_seed, cert.completion_seed);
  EXPECT_EQ(back.max_deliveries, cert.max_deliveries);
  EXPECT_EQ(back.choices, cert.choices);
  EXPECT_EQ(back.property, cert.property);
  EXPECT_EQ(back.detail, cert.detail);
  EXPECT_EQ(back.encode(), text);
}

TEST(Certificate, DecodeErrorsAreLineNumbered) {
  try {
    (void)ScheduleCertificate::decode("not a certificate\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "certificate line 1: bad header (want 'ba-async-cert v1')");
  }
  try {
    (void)ScheduleCertificate::decode(
        "ba-async-cert v1\nprotocol ben-or\nn 4\nwrong 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "certificate line 4: expected 't', got 'wrong'");
  }
}

TEST(BinaryConsensusSafety, DiagnosesEachProperty) {
  const SystemParams params{4, 1};
  const std::vector<int> proposals = {0, 1, 0, 1};
  const ProcessSet no_faults;

  std::vector<std::optional<Value>> decisions(4, Value::bit(0));
  EXPECT_FALSE(binary_consensus_safety(params, proposals, no_faults,
                                       decisions)
                   .has_value());

  decisions[3] = Value::bit(1);
  auto disagree =
      binary_consensus_safety(params, proposals, no_faults, decisions);
  ASSERT_TRUE(disagree.has_value());
  EXPECT_EQ(disagree->property, "agreement");

  decisions.assign(4, Value{"seven"});
  auto non_bit =
      binary_consensus_safety(params, proposals, no_faults, decisions);
  ASSERT_TRUE(non_bit.has_value());
  EXPECT_EQ(non_bit->property, "integrity");

  decisions.assign(4, Value::bit(1));
  auto invalid = binary_consensus_safety(params, {0, 0, 0, 0}, no_faults,
                                         decisions);
  ASSERT_TRUE(invalid.has_value());
  EXPECT_EQ(invalid->property, "validity");

  // Faulty deciders are exempt; undecided processes are permissible.
  decisions.assign(4, std::nullopt);
  decisions[2] = Value{"garbage"};
  ProcessSet faulty;
  faulty.insert(2);
  EXPECT_FALSE(
      binary_consensus_safety(params, proposals, faulty, decisions)
          .has_value());
}

TEST(AsyncBackendIntegration, RegistrySpecDrivesTheScheduler) {
  // The engine-facing surface: `async:rr-starve,7` resolves to an
  // AsyncBackend whose scheduler config feeds run_async_protocol.
  const engine::BackendHandle handle = engine::make_backend("async:rr-starve,7");
  ASSERT_NE(handle, nullptr);
  const auto* backend = dynamic_cast<const AsyncBackend*>(handle.get());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->config().strategy, "rr-starve");
  EXPECT_EQ(backend->config().seed, 7u);

  std::vector<Value> proposals(4, Value::bit(1));
  const AsyncRunResult res = backend->run_async_protocol(
      SystemParams{4, 1}, bracha_factory(), proposals,
      AsyncAdversary::none());
  EXPECT_TRUE(res.run.quiesced);
  for (const auto& decision : res.run.decisions) {
    EXPECT_TRUE(decision.has_value());
  }
}

}  // namespace
}  // namespace ba::async
