// Bracha echo-ready conformance (src/async/bracha.h) against the
// aba_asyn_byz TLA+ guards: the integer-arithmetic quorums match the
// spec's ceilings, the V0/V1 -> EC -> RD -> AC message-type ladder fires in
// the documented order (including the single-delivery cascade), the
// all-zero instance stays silent and undecided under Byzantine READY noise
// below the amplification threshold, and the all-one instance accepts.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ba.h"
#include "protocols/common.h"

namespace ba::async {
namespace {

using protocols::has_tag;
using protocols::tagged;

std::vector<Value> bit_proposals(const std::vector<int>& bits) {
  std::vector<Value> out;
  out.reserve(bits.size());
  for (const int b : bits) out.push_back(Value::bit(b));
  return out;
}

TEST(BrachaGuards, MatchTheTlaCeilings) {
  // aba_asyn_byz guards: echo quorum ceil((n + t + 1) / 2), ready
  // amplification t + 1, ready (acceptance) quorum 2t + 1.
  static_assert(bracha_echo_quorum(4, 1) == 3);
  static_assert(bracha_echo_quorum(7, 2) == 5);
  static_assert(bracha_ready_support(1) == 2);
  static_assert(bracha_ready_support(2) == 3);
  static_assert(bracha_ready_quorum(1) == 3);
  static_assert(bracha_ready_quorum(2) == 5);
  for (std::uint32_t n = 4; n <= 13; ++n) {
    for (std::uint32_t t = 1; 3 * t < n; ++t) {
      const std::uint32_t q = bracha_echo_quorum(n, t);
      // q is the least integer with 2q >= n + t + 1 (the exact ceiling).
      EXPECT_GE(2 * q, n + t + 1) << n << "," << t;
      EXPECT_LT(2 * (q - 1), n + t + 1) << n << "," << t;
    }
  }
}

TEST(BrachaLadder, V1StartsByBroadcastingEcho) {
  const AsyncContext ctx{SystemParams{4, 1}, /*self=*/2, Value::bit(1)};
  const auto process = bracha_factory()(ctx);
  const Outbox out = process->on_start();
  ASSERT_EQ(out.size(), 3u);
  for (const Outgoing& o : out) {
    EXPECT_TRUE(has_tag(o.payload, "echo"));
    EXPECT_NE(o.to, ctx.self);
  }
  EXPECT_FALSE(process->decision().has_value());
  EXPECT_FALSE(process->halted());
}

TEST(BrachaLadder, V0StaysSilentUntilEvidence) {
  const AsyncContext ctx{SystemParams{4, 1}, /*self=*/0, Value::bit(0)};
  const auto process = bracha_factory()(ctx);
  EXPECT_TRUE(process->on_start().empty());
  // One READY (below the t + 1 = 2 amplification support) moves nothing.
  EXPECT_TRUE(process->on_message(1, tagged("ready", {})).empty());
  // A duplicate READY from the same sender is dead: per-sender dedup gives
  // a Byzantine peer exactly one vote per message type.
  EXPECT_TRUE(process->on_message(1, tagged("ready", {})).empty());
  EXPECT_FALSE(process->decision().has_value());
}

TEST(BrachaLadder, ReadySupportCascadesEchoReadyAccept) {
  // Delivering the second (distinct-sender) READY reaches the t + 1
  // support: the V0 process echoes, its own echo plus the ready evidence
  // fires READY, and the self-ready completes the 2t + 1 acceptance quorum
  // — the full EC -> RD -> AC cascade inside one delivery.
  const AsyncContext ctx{SystemParams{4, 1}, /*self=*/0, Value::bit(0)};
  const auto process = bracha_factory()(ctx);
  EXPECT_TRUE(process->on_start().empty());
  EXPECT_TRUE(process->on_message(1, tagged("ready", {})).empty());
  const Outbox out = process->on_message(2, tagged("ready", {}));
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(has_tag(out[i].payload, "echo")) << i;
  }
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_TRUE(has_tag(out[i].payload, "ready")) << i;
  }
  ASSERT_TRUE(process->decision().has_value());
  EXPECT_EQ(*process->decision(), Value::bit(1));
  EXPECT_TRUE(process->halted());
}

TEST(BrachaLadder, EchoQuorumAloneAlsoFiresTheLadder) {
  // Three distinct ECHOes reach the echo quorum (n + t + 2) / 2 = 3 at
  // (4, 1): the process echoes and readies, but with only its own READY it
  // must NOT accept yet.
  const AsyncContext ctx{SystemParams{4, 1}, /*self=*/0, Value::bit(0)};
  const auto process = bracha_factory()(ctx);
  EXPECT_TRUE(process->on_start().empty());
  EXPECT_TRUE(process->on_message(1, tagged("echo", {})).empty());
  EXPECT_TRUE(process->on_message(2, tagged("echo", {})).empty());
  const Outbox out = process->on_message(3, tagged("echo", {}));
  // Self-echo counts toward the quorum, so two external echoes would
  // suffice only with the self-echo already sent; from V0 the third
  // external echo triggers both broadcasts at once.
  ASSERT_EQ(out.size(), 6u);
  EXPECT_FALSE(process->decision().has_value());
  EXPECT_FALSE(process->halted());
}

TEST(BrachaRuns, AllZeroInstanceStaysSilentAndUndecided) {
  const SystemParams params{4, 1};
  auto fifo = make_scheduler("fifo", 1, params.n);
  const AsyncRunResult res =
      run_async(params, bracha_factory(), bit_proposals({0, 0, 0, 0}),
                AsyncAdversary::none(), *fifo);
  EXPECT_TRUE(res.run.quiesced);
  EXPECT_EQ(res.run.messages_sent_by_correct, 0u);
  EXPECT_EQ(res.run.trace.rounds, 0u);
  for (ProcessId p = 0; p < params.n; ++p) {
    EXPECT_FALSE(res.run.decisions[p].has_value()) << "p" << p;
  }
}

/// Byzantine replica that spams READY from the start — the adversarial
/// noise the t + 1 amplification support is calibrated against.
class ReadySpammer final : public AsyncProcess {
 public:
  explicit ReadySpammer(const AsyncContext& ctx)
      : n_(ctx.params.n), self_(ctx.self) {}
  Outbox on_start() override {
    Outbox out;
    for (ProcessId p = 0; p < n_; ++p) {
      if (p != self_) out.push_back(Outgoing{p, tagged("ready", {})});
    }
    return out;
  }
  Outbox on_message(ProcessId, const Value&) override { return {}; }
  [[nodiscard]] std::optional<Value> decision() const override {
    return std::nullopt;
  }

 private:
  std::uint32_t n_;
  ProcessId self_;
};

TEST(BrachaRuns, ByzantineReadiesBelowSupportCannotForgeAcceptance) {
  // t = 1 Byzantine READY broadcaster against three correct V0 processes:
  // one READY is below the t + 1 = 2 support, so no correct process ever
  // sends or decides — the validity half of the acceptance gadget.
  const SystemParams params{4, 1};
  AsyncAdversary adversary;
  adversary.faulty.insert(3);
  adversary.byzantine.insert(3);
  adversary.byzantine_factory = [](const AsyncContext& ctx) {
    return std::make_unique<ReadySpammer>(ctx);
  };
  auto fifo = make_scheduler("fifo", 1, params.n);
  const AsyncRunResult res =
      run_async(params, bracha_factory(), bit_proposals({0, 0, 0, 0}),
                adversary, *fifo);
  EXPECT_TRUE(res.run.quiesced);
  EXPECT_EQ(res.run.messages_sent_by_correct, 0u);
  EXPECT_EQ(res.run.messages_sent_total, 3u);  // the spammer's broadcast
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_FALSE(res.run.decisions[p].has_value()) << "p" << p;
  }
}

TEST(BrachaRuns, AllOneInstanceAcceptsAtBothTestPoints) {
  for (const SystemParams params : {SystemParams{4, 1}, SystemParams{7, 2}}) {
    auto fifo = make_scheduler("fifo", 1, params.n);
    const AsyncRunResult res = run_async(
        params, bracha_factory(),
        bit_proposals(std::vector<int>(params.n, 1)), AsyncAdversary::none(),
        *fifo);
    EXPECT_TRUE(res.run.quiesced);
    for (ProcessId p = 0; p < params.n; ++p) {
      ASSERT_TRUE(res.run.decisions[p].has_value())
          << params.n << "," << params.t << " p" << p;
      EXPECT_EQ(*res.run.decisions[p], Value::bit(1));
    }
  }
}

}  // namespace
}  // namespace ba::async
