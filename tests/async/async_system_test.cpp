// The asynchronous executor contract (src/async/async_system.h): argument
// validation fails fast with pinned messages, completed runs quiesce into a
// well-formed virtual-round trace that the async-aware linter accepts,
// truncated runs capture their in-flight pool, crashed processes stay
// silent, and a recorded schedule replayed through a ScriptedScheduler
// reproduces the run exactly.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/ba.h"

namespace ba::async {
namespace {

std::vector<Value> bit_proposals(const std::vector<int>& bits) {
  std::vector<Value> out;
  out.reserve(bits.size());
  for (const int b : bits) out.push_back(Value::bit(b));
  return out;
}

AsyncProtocolFactory bracha() { return bracha_factory(); }

TEST(RunAsync, ValidatesArgumentsWithPinnedMessages) {
  auto fifo = make_scheduler("fifo", 1, 4);
  const std::vector<Value> proposals = bit_proposals({1, 1, 1, 1});

  try {
    (void)run_async(SystemParams{4, 4}, bracha(), proposals,
                    AsyncAdversary::none(), *fifo);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "run_async: invalid SystemParams");
  }

  try {
    (void)run_async(SystemParams{4, 1}, bracha(), bit_proposals({1, 1, 1}),
                    AsyncAdversary::none(), *fifo);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "run_async: need exactly n proposals");
  }

  AsyncRunOptions lint_only;
  lint_only.record_trace = false;
  lint_only.lint_trace = true;
  try {
    (void)run_async(SystemParams{4, 1}, bracha(), proposals,
                    AsyncAdversary::none(), *fifo, lint_only);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "run_async: lint_trace requires record_trace (an empty "
                 "trace would lint vacuously)");
  }
}

TEST(RunAsync, UnanimousBrachaQuiescesWithAllDecided) {
  const SystemParams params{4, 1};
  auto fifo = make_scheduler("fifo", 1, params.n);
  AsyncRunOptions options;
  options.lint_trace = true;
  const AsyncRunResult res =
      run_async(params, bracha(), bit_proposals({1, 1, 1, 1}),
                AsyncAdversary::none(), *fifo, options);
  EXPECT_TRUE(res.run.quiesced);
  for (ProcessId p = 0; p < params.n; ++p) {
    ASSERT_TRUE(res.run.decisions[p].has_value()) << "p" << p;
    EXPECT_EQ(*res.run.decisions[p], Value::bit(1)) << "p" << p;
  }
  // Each process broadcasts one ECHO and one READY: 2 * n * (n - 1) sends,
  // all delivered (quiescence under reliable links).
  EXPECT_EQ(res.run.messages_sent_by_correct, 2u * 4u * 3u);
  EXPECT_EQ(res.deliveries, 2u * 4u * 3u);
  EXPECT_EQ(res.schedule.size(), res.deliveries);
  ASSERT_TRUE(res.run.lint.has_value());
  EXPECT_TRUE(res.run.lint->clean()) << res.run.lint->summary();
}

TEST(RunAsync, TraceUsesTheVirtualRoundEncoding) {
  const SystemParams params{4, 1};
  auto fifo = make_scheduler("fifo", 1, params.n);
  const AsyncRunResult res =
      run_async(params, bracha(), bit_proposals({1, 1, 1, 1}),
                AsyncAdversary::none(), *fifo);
  const ExecutionTrace& trace = res.run.trace;
  // One virtual round per send; every round holds exactly one message.
  EXPECT_EQ(trace.rounds, res.run.messages_sent_by_correct);
  EXPECT_TRUE(trace.quiesced);
  for (Round r = 0; r < trace.rounds; ++r) {
    std::size_t sends_in_round = 0;
    for (ProcessId p = 0; p < params.n; ++p) {
      const RoundEvents& events = trace.procs[p].rounds[r];
      sends_in_round += events.sent.size();
      for (const Message& m : events.sent) {
        EXPECT_EQ(m.round, r + 1);
        EXPECT_EQ(m.sender, p);
        EXPECT_NE(m.receiver, p);  // A.1.1: no self-messages
      }
      // Quiesced run: nothing left in flight anywhere.
      EXPECT_TRUE(events.receive_omitted.empty());
    }
    EXPECT_EQ(sends_in_round, 1u) << "virtual round " << r + 1;
  }
  EXPECT_FALSE(trace.validate().has_value());
}

TEST(RunAsync, StopAfterTruncatesAndCapturesPending) {
  const SystemParams params{4, 1};
  auto fifo = make_scheduler("fifo", 1, params.n);
  AsyncRunOptions options;
  options.stop_after = 3;
  options.capture_pending = true;
  options.lint_trace = true;
  const AsyncRunResult res =
      run_async(params, bracha(), bit_proposals({1, 1, 1, 1}),
                AsyncAdversary::none(), *fifo, options);
  EXPECT_EQ(res.deliveries, 3u);
  EXPECT_FALSE(res.run.quiesced);
  EXPECT_FALSE(res.pending.empty());
  // The in-flight messages appear as receive-omissions in the trace; the
  // async lint semantics read them as pending deliveries, not violations.
  std::size_t in_flight = 0;
  for (const ProcessTrace& proc : res.run.trace.procs) {
    for (const RoundEvents& events : proc.rounds) {
      in_flight += events.receive_omitted.size();
    }
  }
  EXPECT_EQ(in_flight, res.pending.size());
  ASSERT_TRUE(res.run.lint.has_value());
  EXPECT_TRUE(res.run.lint->clean()) << res.run.lint->summary();
}

TEST(RunAsync, CrashedProcessesSendNothingAndIgnoreDeliveries) {
  const SystemParams params{4, 1};
  auto fifo = make_scheduler("fifo", 1, params.n);
  AsyncAdversary adversary;
  adversary.faulty.insert(0);
  AsyncRunOptions options;
  options.lint_trace = true;
  const AsyncRunResult res =
      run_async(params, bracha(), bit_proposals({1, 1, 1, 1}), adversary,
                *fifo, options);
  EXPECT_FALSE(res.run.decisions[0].has_value());
  // Three V1 starters echo; p0 contributes nothing.
  EXPECT_EQ(res.run.messages_sent_by_correct, 2u * 3u * 3u);
  for (const RoundEvents& events : res.run.trace.procs[0].rounds) {
    EXPECT_TRUE(events.sent.empty()) << "crashed process sent a message";
  }
  // n=4, t=1: the three correct processes still reach the 2t+1 = 3 READY
  // quorum and decide.
  for (ProcessId p = 1; p < params.n; ++p) {
    ASSERT_TRUE(res.run.decisions[p].has_value()) << "p" << p;
    EXPECT_EQ(*res.run.decisions[p], Value::bit(1)) << "p" << p;
  }
  EXPECT_TRUE(res.run.quiesced);
  ASSERT_TRUE(res.run.lint.has_value());
  EXPECT_TRUE(res.run.lint->clean()) << res.run.lint->summary();
}

TEST(RunAsync, RecordedScheduleReplaysExactly) {
  const SystemParams params{5, 1};
  const auto protocol = find_async_protocol("ben-or");
  ASSERT_NE(protocol, nullptr);
  const AsyncProtocolFactory factory = protocol->make(/*coin_seed=*/7);
  const std::vector<Value> proposals = bit_proposals({0, 1, 0, 1, 0});

  auto random = make_scheduler("random", 99, params.n);
  const AsyncRunResult original = run_async(params, factory, proposals,
                                            AsyncAdversary::none(), *random);
  ASSERT_TRUE(original.run.quiesced);

  ScriptedScheduler scripted(original.schedule,
                             make_scheduler("fifo", 1, params.n));
  const AsyncRunResult replay = run_async(params, factory, proposals,
                                          AsyncAdversary::none(), scripted);
  EXPECT_EQ(replay.run.decisions, original.run.decisions);
  EXPECT_EQ(replay.deliveries, original.deliveries);
  EXPECT_EQ(replay.schedule, original.schedule);
  EXPECT_EQ(encode_trace(replay.run.trace), encode_trace(original.run.trace));
}

TEST(Schedulers, MakeSchedulerRejectsUnknownStrategies) {
  try {
    (void)make_scheduler("telepathy", 1, 4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "unknown async scheduler strategy 'telepathy' "
                 "(fifo | random | delay-decider | rr-starve)");
  }
  for (const char* strategy :
       {"fifo", "random", "delay-decider", "rr-starve"}) {
    EXPECT_TRUE(scheduler_strategy_known(strategy)) << strategy;
    EXPECT_NE(make_scheduler(strategy, 1, 4), nullptr) << strategy;
  }
  EXPECT_FALSE(scheduler_strategy_known("telepathy"));
}

TEST(Schedulers, RrStarveServesTheVictimOnlyWhenAlone) {
  // With the victim fixed by seed % n, every pick must avoid the victim's
  // messages while any other receiver has pending traffic.
  const SystemParams params{4, 1};
  const std::uint64_t seed = 2;  // victim = 2 % 4 = 2
  auto scheduler = make_scheduler("rr-starve", seed, params.n);
  const AsyncRunResult res =
      run_async(params, bracha_factory(), bit_proposals({1, 1, 1, 1}),
                AsyncAdversary::none(), *scheduler);
  // Reliable links: the run still quiesces and everyone decides.
  EXPECT_TRUE(res.run.quiesced);
  for (ProcessId p = 0; p < params.n; ++p) {
    EXPECT_TRUE(res.run.decisions[p].has_value()) << "p" << p;
  }
}

}  // namespace
}  // namespace ba::async
