// Tests for the AgreementProblem facade: verdicts, solver synthesis across
// settings, validity checking of executions, and input-configuration
// extraction.

#include <gtest/gtest.h>

#include <memory>

#include "core/ba.h"

namespace ba {
namespace {

TEST(Facade, InputConfOfTrace) {
  SystemParams params{4, 1};
  std::vector<Value> proposals{Value{1}, Value{2}, Value{3}, Value{4}};
  RunResult res = run_execution(params, protocols::phase_king_consensus(),
                                proposals, isolate_group(ProcessSet{{2}}, 1));
  validity::InputConfig c = input_conf(res.trace);
  EXPECT_EQ(c.correct(), ProcessSet({0, 1, 3}));
  EXPECT_EQ(*c[0], Value{1});
  EXPECT_FALSE(c[2].has_value());
}

TEST(Facade, TrivialProblemGetsZeroMessageSolver) {
  SystemParams params{5, 2};
  AgreementProblem trivial{params, validity::constant_validity(5, 2)};
  auto solver = trivial.make_solver(/*authenticated=*/false);
  ASSERT_TRUE(solver.has_value());
  RunResult res = run_all_correct(params, *solver, Value::bit(1));
  EXPECT_EQ(res.messages_sent_by_correct, 0u);
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_TRUE(res.decisions[p].has_value());
  }
}

TEST(Facade, UnsolvableProblemGetsNoSolver) {
  SystemParams params{4, 2};
  AgreementProblem strong{params, validity::strong_validity(4, 2)};
  auto auth = std::make_shared<crypto::Authenticator>(1, 4);
  EXPECT_FALSE(strong.make_solver(true, auth).has_value());
  EXPECT_FALSE(strong.make_solver(false).has_value());
}

TEST(Facade, UnauthSolverRefusedBeyondThreeT) {
  // Sender validity satisfies CC at any resilience, but n <= 3t blocks the
  // unauthenticated route (Lemma 10 / FLM).
  SystemParams params{4, 2};
  AgreementProblem bb{params, validity::sender_validity(4, 2, 0)};
  EXPECT_FALSE(bb.make_solver(false).has_value());
  auto auth = std::make_shared<crypto::Authenticator>(2, 4);
  EXPECT_TRUE(bb.make_solver(true, auth).has_value());
}

TEST(Facade, AuthSolverNeedsAuthenticator) {
  SystemParams params{4, 1};
  AgreementProblem strong{params, validity::strong_validity(4, 1)};
  EXPECT_FALSE(strong.make_solver(true, nullptr).has_value());
}

TEST(Facade, CheckExecutionFlagsInadmissibleDecisions) {
  SystemParams params{4, 1};
  AgreementProblem strong{params, validity::strong_validity(4, 1)};
  // Build a trace by hand from a phase-king run, then corrupt a decision.
  RunResult res = run_all_correct(params, protocols::phase_king_consensus(),
                                  Value::bit(0));
  EXPECT_EQ(strong.check_execution(res.trace), std::nullopt);
  ExecutionTrace bad = res.trace;
  bad.procs[1].decision = Value::bit(1);  // unanimous 0 forces 0
  auto err = strong.check_execution(bad);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("p1"), std::string::npos);
}

TEST(Facade, SolverDecisionsAdmissibleUnderFaults) {
  SystemParams params{5, 1};
  auto auth = std::make_shared<crypto::Authenticator>(3, 5);
  AgreementProblem any{params, validity::any_proposed_validity(5, 1)};
  ASSERT_TRUE(any.analyze().authenticated_solvable);
  auto solver = any.make_solver(true, auth);
  ASSERT_TRUE(solver.has_value());

  Adversary adv;
  adv.faulty = ProcessSet{{4}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(4);
  std::vector<Value> proposals{Value::bit(0), Value::bit(0), Value::bit(1),
                               Value::bit(0), Value::bit(1)};
  RunResult res = run_execution(params, *solver, proposals, adv);
  EXPECT_EQ(any.check_execution(res.trace), std::nullopt);
  EXPECT_TRUE(res.unanimous_correct_decision().has_value());
}

TEST(Facade, VerdictAndSolverAgreeAcrossCannedProblems) {
  struct Case {
    std::uint32_t n, t;
    validity::ValidityProperty prop;
  };
  const Case cases[] = {
      {4, 1, validity::weak_validity(4, 1)},
      {4, 1, validity::strong_validity(4, 1)},
      {4, 2, validity::strong_validity(4, 2)},
      {4, 2, validity::sender_validity(4, 2, 0)},
      {3, 1, validity::ic_validity(3, 1)},
      {4, 2, validity::any_proposed_validity(4, 2)},
      {4, 1, validity::constant_validity(4, 1)},
  };
  for (const Case& c : cases) {
    SystemParams params{c.n, c.t};
    AgreementProblem problem{params, c.prop};
    auto verdict = problem.analyze();
    auto auth = std::make_shared<crypto::Authenticator>(9, c.n);
    EXPECT_EQ(problem.make_solver(true, auth).has_value(),
              verdict.authenticated_solvable)
        << c.prop.name;
    EXPECT_EQ(problem.make_solver(false).has_value(),
              verdict.unauthenticated_solvable)
        << c.prop.name;
  }
}

}  // namespace
}  // namespace ba
