// CampaignSpec: JSON round trip, the deterministic task expansion order,
// spec hashing, fault-plan compilation, and validate()'s rejection surface.
// The expansion order is load-bearing — every resume/merge guarantee of the
// service rests on task_at being a pure function of the spec.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "faults/compile.h"
#include "faults/fault_spec.h"
#include "parallel/seed.h"
#include "service/campaign.h"

namespace ba::service {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "unit";
  spec.master_seed = 11;
  spec.protocols = {"phase-king", "floodset"};
  spec.grid = {{4, 1}, {7, 2}};
  spec.backends = {"lockstep", "sim:sync,1"};
  spec.faults = {"fault-free", "crash:1", "isolate:1"};
  spec.seeds = 5;
  return spec;
}

TEST(CampaignSpec, JsonRoundTripIsIdentity) {
  const CampaignSpec spec = small_spec();
  const CampaignSpec reparsed = CampaignSpec::from_json(spec.to_json());
  EXPECT_EQ(spec, reparsed);
  EXPECT_EQ(spec.to_json(), reparsed.to_json());
}

TEST(CampaignSpec, FromJsonAppliesDefaults) {
  const CampaignSpec spec = CampaignSpec::from_json(
      R"({"protocols": ["phase-king"], "grid": ["4:1"]})");
  EXPECT_EQ(spec.backends, std::vector<std::string>{"lockstep"});
  EXPECT_EQ(spec.faults, std::vector<std::string>{"fault-free"});
  EXPECT_EQ(spec.seeds, 1u);
  EXPECT_EQ(spec.master_seed, 1u);
  EXPECT_EQ(spec.task_count(), 1u);
}

TEST(CampaignSpec, GridAcceptsBothPointForms) {
  const CampaignSpec spec = CampaignSpec::from_json(
      R"({"protocols": ["phase-king"], "grid": ["4:1", {"n": 8, "t": 2}]})");
  ASSERT_EQ(spec.grid.size(), 2u);
  EXPECT_EQ(spec.grid[0], (SystemParams{4, 1}));
  EXPECT_EQ(spec.grid[1], (SystemParams{8, 2}));
}

TEST(CampaignSpec, ExpansionOrderIsSeedFastestProtocolMajor) {
  const CampaignSpec spec = small_spec();
  EXPECT_EQ(spec.task_count(), 2u * 2u * 2u * 3u * 5u);

  // Index 0: first value on every axis.
  const TaskSpec first = spec.task_at(0);
  EXPECT_EQ(first.protocol, "phase-king");
  EXPECT_EQ(first.params, (SystemParams{4, 1}));
  EXPECT_EQ(first.backend, "lockstep");
  EXPECT_EQ(first.fault, "fault-free");
  EXPECT_EQ(first.seed_index, 0u);

  // Seed index is the fastest axis...
  EXPECT_EQ(spec.task_at(1).seed_index, 1u);
  EXPECT_EQ(spec.task_at(1).fault, "fault-free");
  // ...then fault...
  EXPECT_EQ(spec.task_at(5).fault, "crash:1");
  EXPECT_EQ(spec.task_at(5).backend, "lockstep");
  // ...then backend...
  EXPECT_EQ(spec.task_at(15).backend, "sim:sync,1");
  EXPECT_EQ(spec.task_at(15).params, (SystemParams{4, 1}));
  // ...then grid, protocol-major last.
  EXPECT_EQ(spec.task_at(30).params, (SystemParams{7, 2}));
  EXPECT_EQ(spec.task_at(60).protocol, "floodset");

  EXPECT_THROW((void)spec.task_at(spec.task_count()), std::runtime_error);
}

TEST(CampaignSpec, TaskSeedsComeFromTheSharedDerivation) {
  const CampaignSpec spec = small_spec();
  for (const std::uint64_t i : {0u, 1u, 17u, 59u}) {
    EXPECT_EQ(spec.task_at(i).seed,
              parallel::derive_task_seed(spec.master_seed, i));
    EXPECT_EQ(spec.task_at(i).index, i);
  }
}

TEST(CampaignSpec, SpecHashesAreDistinctPerTaskAndSpec) {
  const CampaignSpec spec = small_spec();
  std::set<std::uint64_t> hashes;
  for (std::uint64_t i = 0; i < spec.task_count(); ++i) {
    hashes.insert(task_spec_hash(spec, spec.task_at(i)));
  }
  EXPECT_EQ(hashes.size(), spec.task_count());

  // A different master seed re-keys every task (no stale cache reuse).
  CampaignSpec reseeded = small_spec();
  reseeded.master_seed = 12;
  EXPECT_NE(task_spec_hash(spec, spec.task_at(0)),
            task_spec_hash(reseeded, reseeded.task_at(0)));
}

TEST(CampaignSpec, CanonicalEncodingNamesEveryAxis) {
  const CampaignSpec spec = small_spec();
  const std::string enc = canonical_task_encoding(spec, spec.task_at(5));
  EXPECT_NE(enc.find("protocol=phase-king"), std::string::npos);
  EXPECT_NE(enc.find("fault=crash:1"), std::string::npos);
  EXPECT_NE(enc.find("backend=lockstep"), std::string::npos);
  EXPECT_NE(enc.find("master=11"), std::string::npos);
}

TEST(CampaignSpec, ValidateRejectsBadSpecs) {
  const auto rejects = [](const char* json) {
    EXPECT_THROW((void)CampaignSpec::from_json(json), std::runtime_error)
        << json;
  };
  rejects(R"({"protocols": [], "grid": ["4:1"]})");
  rejects(R"({"protocols": ["no-such-protocol"], "grid": ["4:1"]})");
  rejects(R"({"protocols": ["phase-king"], "grid": []})");
  rejects(R"({"protocols": ["phase-king"], "grid": ["4:4"]})");
  rejects(R"({"protocols": ["phase-king"], "grid": ["4:1"], "seeds": 0})");
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "backends": ["no-such-backend"]})");
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "faults": ["no-such-fault"]})");
  // crash:2 exceeds the t=1 budget of the 4:1 grid point.
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "faults": ["crash:2"]})");
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "faults": ["random-omissions:1001"]})");
  rejects(R"({"protocols": ["phase-king"], "grid": ["4:1"], "bogus": 1})");
}

TEST(CampaignSpec, AsyncBackendIsRejectedUpFront) {
  // The async backend refuses synchronous protocols at run time; campaigns
  // must fail at validate() instead of mid-shard.
  EXPECT_THROW((void)CampaignSpec::from_json(
                   R"({"protocols": ["phase-king"], "grid": ["4:1"],
                       "backends": ["async:fifo,1"]})"),
               std::runtime_error);
}

TEST(CampaignSpec, FaultAxisExpandsKindTimesCounts) {
  CampaignSpec spec;
  spec.name = "axis";
  spec.protocols = {"phase-king"};
  spec.grid = {{7, 2}};
  spec.faults.clear();
  spec.fault_axis = {"isolate"};
  spec.validate();
  EXPECT_TRUE(spec.has_fault_axis());

  // Default counts: 0..min t over the grid.
  EXPECT_EQ(spec.effective_faults(),
            (std::vector<std::string>{"isolate:0", "isolate:1", "isolate:2"}));
  EXPECT_EQ(spec.task_count(), 3u);
  EXPECT_EQ(spec.task_at(1).fault, "isolate:1");

  // Explicit counts and a second kind: axis-major, counts fastest.
  spec.fault_axis = {"crash", "silent-byz"};
  spec.fault_counts = {0, 2};
  spec.validate();
  EXPECT_EQ(spec.effective_faults(),
            (std::vector<std::string>{"crash:0", "crash:2", "silent-byz:0",
                                      "silent-byz:2"}));
}

TEST(CampaignSpec, FaultAxisJsonRoundTripIsIdentity) {
  CampaignSpec spec;
  spec.name = "axis";
  spec.protocols = {"phase-king"};
  spec.grid = {{7, 2}};
  spec.faults.clear();
  spec.fault_axis = {"isolate"};
  spec.fault_counts = {0, 1};
  const CampaignSpec reparsed = CampaignSpec::from_json(spec.to_json());
  EXPECT_EQ(spec, reparsed);
  EXPECT_EQ(spec.to_json(), reparsed.to_json());

  // Legacy specs (no axis) keep their pre-fault-axis encoding byte-for-byte:
  // no fault_axis/fault_counts fields appear.
  const std::string legacy = small_spec().to_json();
  EXPECT_EQ(legacy.find("fault_axis"), std::string::npos);
  EXPECT_EQ(legacy.find("fault_counts"), std::string::npos);
}

TEST(CampaignSpec, FaultAxisRejectionSurface) {
  const auto rejects = [](const char* json) {
    EXPECT_THROW((void)CampaignSpec::from_json(json), std::runtime_error)
        << json;
  };
  // faults and fault_axis are mutually exclusive.
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "faults": ["fault-free"], "fault_axis": ["isolate"]})");
  // fault_counts without an axis.
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "fault_counts": [1]})");
  // Non-sweepable axis kinds.
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "fault_axis": ["fault-free"]})");
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "fault_axis": ["random-omissions"]})");
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "fault_axis": ["no-such-kind"]})");
  // Counts beyond the smallest grid point's budget.
  rejects(
      R"({"protocols": ["phase-king"], "grid": ["4:1"],
          "fault_axis": ["crash"], "fault_counts": [2]})");
}

TEST(CampaignSpec, UnknownFaultPlanErrorIsThePinnedString) {
  // Satellite contract: serve-side validation reports the exact
  // faults::parse_fault_spec message, unwrapped, so run/sim/sweep/serve all
  // print the same bytes for the same bad plan.
  try {
    (void)CampaignSpec::from_json(
        R"({"protocols": ["phase-king"], "grid": ["4:1"],
            "faults": ["no-such-fault"]})");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "unknown fault plan 'no-such-fault' (known: fault-free "
                 "crash:K mute:K isolate:K random-omissions:P silent-byz:K "
                 "noise-byz:K)");
  }
}

TEST(FaultPlans, CampaignTasksCompileThroughTheFaultsIr) {
  // The service has no fault vocabulary of its own any more: a task's fault
  // string round-trips through faults::checked_fault_spec and the compiled
  // adversary is the documented one.
  const SystemParams params{7, 2};
  const faults::FaultSpec spec = faults::checked_fault_spec("crash:2", params);
  EXPECT_EQ(spec.format(), "crash:2");
  const Adversary crash = faults::compile_adversary(spec, params, 9);
  EXPECT_EQ(crash.faulty.size(), 2u);
  EXPECT_TRUE(crash.faulty.contains(5) && crash.faulty.contains(6));
  EXPECT_TRUE(crash.byzantine.empty());
}

TEST(Proposals, DeterministicBitVectors) {
  const std::vector<Value> a = derive_proposals(99, 8);
  const std::vector<Value> b = derive_proposals(99, 8);
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]);
  }
  // Different seeds should (overwhelmingly) differ somewhere on 32 bits.
  bool any_diff = false;
  const std::vector<Value> c = derive_proposals(100, 32);
  const std::vector<Value> d = derive_proposals(101, 32);
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (!(c[i] == d[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace ba::service
