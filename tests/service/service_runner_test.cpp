// End-to-end campaign service tests, in-process where possible and through
// real forked ba_cli worker processes (BA_CLI_EXE) where the contract is
// about processes: sharded == serial, kill/resume, cache poisoning.
// The multi-worker SIGKILL/resume path is additionally pinned end-to-end by
// tools/serve_resume_test.cmake against the installed CLI.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/campaign.h"
#include "service/ndjson.h"
#include "service/runner.h"
#include "service/worker.h"

namespace ba::service {
namespace {

namespace fs = std::filesystem;

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.name = "runner-test";
  spec.master_seed = 2024;
  spec.protocols = {"phase-king"};
  spec.grid = {{4, 1}};
  spec.backends = {"lockstep"};
  spec.faults = {"fault-free", "crash:1"};
  spec.seeds = 6;
  spec.validate();
  return spec;  // 12 tasks
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A scratch directory removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("ba_service_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

 private:
  fs::path dir_;
};

ServeOptions base_options(const std::string& state_dir) {
  ServeOptions options;
  options.state_dir = state_dir;
  options.workers = 3;
  options.worker_exe = BA_CLI_EXE;
  options.quiet = true;
  return options;
}

TEST(SerialRunner, IsDeterministicAndComplete) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("serial");
  const ServeSummary a = run_campaign_serial(spec, tmp.path("a.ndjson"));
  const ServeSummary b = run_campaign_serial(spec, tmp.path("b.ndjson"));
  EXPECT_EQ(a.tasks_total, spec.task_count());
  EXPECT_EQ(a.tasks_run, spec.task_count());
  const std::string bytes = slurp(tmp.path("a.ndjson"));
  EXPECT_EQ(bytes, slurp(tmp.path("b.ndjson")));

  // Every line authenticates, and they come out in task order.
  const std::vector<std::string> lines =
      read_ndjson_lines(tmp.path("a.ndjson"));
  ASSERT_EQ(lines.size(), spec.task_count());
  for (std::uint64_t i = 0; i < lines.size(); ++i) {
    const auto row = decode_row(lines[i]);
    ASSERT_TRUE(row.has_value()) << lines[i];
    EXPECT_EQ(row->spec_hash, task_spec_hash(spec, spec.task_at(i)));
    EXPECT_EQ(row->seed_index, spec.task_at(i).seed_index);
    EXPECT_TRUE(row->agree) << "phase-king must agree under " << row->fault;
  }
}

TEST(TaskRunner, RowsArePureFunctionsOfSpecAndTask) {
  const CampaignSpec spec = tiny_spec();
  TaskRunner runner(spec);
  const CampaignRow once = runner.run(spec.task_at(7));
  const CampaignRow again = runner.run(spec.task_at(7));
  EXPECT_EQ(once, again);
  EXPECT_EQ(encode_row(once), encode_row(again));
  // lockstep rows carry the static bound, and the run respects it.
  ASSERT_TRUE(once.static_bound.has_value());
  EXPECT_LE(once.messages, *once.static_bound);
}

TEST(ServeCampaign, ShardedMatchesSerialByteForByte) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("sharded");
  run_campaign_serial(spec, tmp.path("serial.ndjson"));

  const ServeSummary summary =
      serve_campaign(spec, base_options(tmp.path("state")));
  EXPECT_EQ(summary.tasks_total, spec.task_count());
  EXPECT_EQ(summary.tasks_cached + summary.tasks_run, spec.task_count());
  EXPECT_EQ(slurp(summary.results_file), slurp(tmp.path("serial.ndjson")));

  // A second serve over the finished state directory is a pure cache hit.
  const ServeSummary rerun =
      serve_campaign(spec, base_options(tmp.path("state")));
  EXPECT_EQ(rerun.tasks_cached, spec.task_count());
  EXPECT_EQ(rerun.tasks_run, 0u);
  EXPECT_EQ(slurp(rerun.results_file), slurp(tmp.path("serial.ndjson")));
}

TEST(ServeCampaign, KilledWorkersResumeToIdenticalBytes) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("resume");
  run_campaign_serial(spec, tmp.path("serial.ndjson"));

  // First attempt: every worker SIGKILLs itself after 2 rows and the
  // respawn budget is zero, so the campaign must abort resumably.
  ServeOptions crashing = base_options(tmp.path("state"));
  crashing.die_after = 2;
  crashing.respawn_budget = 0;
  EXPECT_THROW((void)serve_campaign(spec, crashing), std::runtime_error);

  // Resume with a different worker count: partial shard rows are folded in
  // and only the remainder runs. Bytes must match the serial reference.
  ServeOptions resume = base_options(tmp.path("state"));
  resume.workers = 2;
  const ServeSummary summary = serve_campaign(spec, resume);
  EXPECT_GT(summary.tasks_cached, 0u) << "crashed rows should be reused";
  EXPECT_EQ(summary.tasks_cached + summary.tasks_run, spec.task_count());
  EXPECT_EQ(slurp(summary.results_file), slurp(tmp.path("serial.ndjson")));
}

TEST(ServeCampaign, InRunRespawnAbsorbsWorkerDeaths) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("respawn");
  run_campaign_serial(spec, tmp.path("serial.ndjson"));

  ServeOptions options = base_options(tmp.path("state"));
  options.workers = 2;
  options.die_after = 3;      // both first-generation workers die mid-lease
  options.respawn_budget = 4; // and are replaced within the same run
  const ServeSummary summary = serve_campaign(spec, options);
  EXPECT_GT(summary.respawns, 0u);
  EXPECT_EQ(slurp(summary.results_file), slurp(tmp.path("serial.ndjson")));
}

TEST(ServeCampaign, PoisonedCacheRowsAreRejectedAndRecomputed) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("poison");
  run_campaign_serial(spec, tmp.path("serial.ndjson"));
  serve_campaign(spec, base_options(tmp.path("state")));

  // Forge one cached row: bump its message count, keep the stale hash.
  const std::string cache = cache_path(tmp.path("state"));
  std::vector<std::string> lines = read_ndjson_lines(cache);
  ASSERT_EQ(lines.size(), spec.task_count());
  const auto pos = lines[4].find("\"messages\":");
  ASSERT_NE(pos, std::string::npos);
  lines[4].replace(pos, 12, "\"messages\":9");
  {
    NdjsonFileWriter writer(cache);
    for (const std::string& line : lines) writer.write_line(line);
  }

  const ServeSummary summary =
      serve_campaign(spec, base_options(tmp.path("state")));
  EXPECT_GE(summary.rows_rejected, 1u);
  EXPECT_EQ(summary.tasks_run, 1u) << "only the poisoned task re-runs";
  EXPECT_EQ(slurp(summary.results_file), slurp(tmp.path("serial.ndjson")));
}

TEST(ServeCampaign, RefusesSpecMismatchWithExistingState) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("mismatch");
  serve_campaign(spec, base_options(tmp.path("state")));

  CampaignSpec other = tiny_spec();
  other.master_seed = 9999;
  EXPECT_THROW((void)serve_campaign(other, base_options(tmp.path("state"))),
               std::runtime_error);
}

TEST(BenchJson, CarriesTheRegressionGateSchema) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("bench");
  const ServeSummary summary =
      serve_campaign(spec, base_options(tmp.path("state")));
  const std::string doc = bench_service_json(spec, summary);
  EXPECT_NE(doc.find("\"experiment\": \"service_campaign\""),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"rows_per_sec\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"specs\": 12"), std::string::npos) << doc;
}

}  // namespace
}  // namespace ba::service
