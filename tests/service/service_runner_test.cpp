// End-to-end campaign service tests, in-process where possible and through
// real forked ba_cli worker processes (BA_CLI_EXE) where the contract is
// about processes: sharded == serial, kill/resume, cache poisoning.
// The multi-worker SIGKILL/resume path is additionally pinned end-to-end by
// tools/serve_resume_test.cmake against the installed CLI.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/campaign.h"
#include "service/ndjson.h"
#include "service/runner.h"
#include "service/worker.h"

namespace ba::service {
namespace {

namespace fs = std::filesystem;

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.name = "runner-test";
  spec.master_seed = 2024;
  spec.protocols = {"phase-king"};
  spec.grid = {{4, 1}};
  spec.backends = {"lockstep"};
  spec.faults = {"fault-free", "crash:1"};
  spec.seeds = 6;
  spec.validate();
  return spec;  // 12 tasks
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A scratch directory removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("ba_service_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

 private:
  fs::path dir_;
};

ServeOptions base_options(const std::string& state_dir) {
  ServeOptions options;
  options.state_dir = state_dir;
  options.workers = 3;
  options.worker_exe = BA_CLI_EXE;
  options.quiet = true;
  return options;
}

TEST(SerialRunner, IsDeterministicAndComplete) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("serial");
  const ServeSummary a = run_campaign_serial(spec, tmp.path("a.ndjson"));
  const ServeSummary b = run_campaign_serial(spec, tmp.path("b.ndjson"));
  EXPECT_EQ(a.tasks_total, spec.task_count());
  EXPECT_EQ(a.tasks_run, spec.task_count());
  const std::string bytes = slurp(tmp.path("a.ndjson"));
  EXPECT_EQ(bytes, slurp(tmp.path("b.ndjson")));

  // Every line authenticates, and they come out in task order.
  const std::vector<std::string> lines =
      read_ndjson_lines(tmp.path("a.ndjson"));
  ASSERT_EQ(lines.size(), spec.task_count());
  for (std::uint64_t i = 0; i < lines.size(); ++i) {
    const auto row = decode_row(lines[i]);
    ASSERT_TRUE(row.has_value()) << lines[i];
    EXPECT_EQ(row->spec_hash, task_spec_hash(spec, spec.task_at(i)));
    EXPECT_EQ(row->seed_index, spec.task_at(i).seed_index);
    EXPECT_TRUE(row->agree) << "phase-king must agree under " << row->fault;
  }
}

TEST(TaskRunner, RowsArePureFunctionsOfSpecAndTask) {
  const CampaignSpec spec = tiny_spec();
  TaskRunner runner(spec);
  const CampaignRow once = runner.run(spec.task_at(7));
  const CampaignRow again = runner.run(spec.task_at(7));
  EXPECT_EQ(once, again);
  EXPECT_EQ(encode_row(once), encode_row(again));
  // lockstep rows carry the static bound, and the run respects it.
  ASSERT_TRUE(once.static_bound.has_value());
  EXPECT_LE(once.messages, *once.static_bound);
}

TEST(ServeCampaign, ShardedMatchesSerialByteForByte) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("sharded");
  run_campaign_serial(spec, tmp.path("serial.ndjson"));

  const ServeSummary summary =
      serve_campaign(spec, base_options(tmp.path("state")));
  EXPECT_EQ(summary.tasks_total, spec.task_count());
  EXPECT_EQ(summary.tasks_cached + summary.tasks_run, spec.task_count());
  EXPECT_EQ(slurp(summary.results_file), slurp(tmp.path("serial.ndjson")));

  // A second serve over the finished state directory is a pure cache hit.
  const ServeSummary rerun =
      serve_campaign(spec, base_options(tmp.path("state")));
  EXPECT_EQ(rerun.tasks_cached, spec.task_count());
  EXPECT_EQ(rerun.tasks_run, 0u);
  EXPECT_EQ(slurp(rerun.results_file), slurp(tmp.path("serial.ndjson")));
}

TEST(ServeCampaign, KilledWorkersResumeToIdenticalBytes) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("resume");
  run_campaign_serial(spec, tmp.path("serial.ndjson"));

  // First attempt: every worker SIGKILLs itself after 2 rows and the
  // respawn budget is zero, so the campaign must abort resumably.
  ServeOptions crashing = base_options(tmp.path("state"));
  crashing.die_after = 2;
  crashing.respawn_budget = 0;
  EXPECT_THROW((void)serve_campaign(spec, crashing), std::runtime_error);

  // Resume with a different worker count: partial shard rows are folded in
  // and only the remainder runs. Bytes must match the serial reference.
  ServeOptions resume = base_options(tmp.path("state"));
  resume.workers = 2;
  const ServeSummary summary = serve_campaign(spec, resume);
  EXPECT_GT(summary.tasks_cached, 0u) << "crashed rows should be reused";
  EXPECT_EQ(summary.tasks_cached + summary.tasks_run, spec.task_count());
  EXPECT_EQ(slurp(summary.results_file), slurp(tmp.path("serial.ndjson")));
}

TEST(ServeCampaign, InRunRespawnAbsorbsWorkerDeaths) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("respawn");
  run_campaign_serial(spec, tmp.path("serial.ndjson"));

  ServeOptions options = base_options(tmp.path("state"));
  options.workers = 2;
  options.die_after = 3;      // both first-generation workers die mid-lease
  options.respawn_budget = 4; // and are replaced within the same run
  const ServeSummary summary = serve_campaign(spec, options);
  EXPECT_GT(summary.respawns, 0u);
  EXPECT_EQ(slurp(summary.results_file), slurp(tmp.path("serial.ndjson")));
}

TEST(ServeCampaign, PoisonedCacheRowsAreRejectedAndRecomputed) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("poison");
  run_campaign_serial(spec, tmp.path("serial.ndjson"));
  serve_campaign(spec, base_options(tmp.path("state")));

  // Forge one cached row: bump its message count, keep the stale hash.
  const std::string cache = cache_path(tmp.path("state"));
  std::vector<std::string> lines = read_ndjson_lines(cache);
  ASSERT_EQ(lines.size(), spec.task_count());
  const auto pos = lines[4].find("\"messages\":");
  ASSERT_NE(pos, std::string::npos);
  lines[4].replace(pos, 12, "\"messages\":9");
  {
    NdjsonFileWriter writer(cache);
    for (const std::string& line : lines) writer.write_line(line);
  }

  const ServeSummary summary =
      serve_campaign(spec, base_options(tmp.path("state")));
  EXPECT_GE(summary.rows_rejected, 1u);
  EXPECT_EQ(summary.tasks_run, 1u) << "only the poisoned task re-runs";
  EXPECT_EQ(slurp(summary.results_file), slurp(tmp.path("serial.ndjson")));
}

TEST(ServeCampaign, RefusesSpecMismatchWithExistingState) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("mismatch");
  serve_campaign(spec, base_options(tmp.path("state")));

  CampaignSpec other = tiny_spec();
  other.master_seed = 9999;
  EXPECT_THROW((void)serve_campaign(other, base_options(tmp.path("state"))),
               std::runtime_error);
}

TEST(SerialRunner, LegacyFaultPlanCampaignReplaysByteIdentically) {
  // Golden bytes captured from the pre-FaultSpec-IR service binary: one
  // phase-king campaign over every legacy fault plan, on both synchronous
  // backends. The refactor onto faults::compile_adversary must reproduce
  // every row — spec hashes, seeds, message counts, row hashes — exactly,
  // or cached campaign state directories stop resuming.
  CampaignSpec spec;
  spec.name = "fault-golden";
  spec.master_seed = 7;
  spec.protocols = {"phase-king"};
  spec.grid = {{5, 2}};
  spec.backends = {"lockstep", "sim:sync,1"};
  spec.faults = {"fault-free",           "crash:2",      "mute:1",
                 "isolate:2",            "random-omissions:250",
                 "silent-byz:2",         "noise-byz:1"};
  spec.seeds = 2;
  spec.validate();

  const std::vector<std::string> golden = {
      R"({"spec":"7190720ac89e0b09","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"fault-free","seed_index":0,"seed":6065983080702721244,"rounds":10,"messages":132,"static_bound":132,"decided":5,"agree":true,"row_hash":"0180dc6492e7c4dc"})",
      R"({"spec":"45cc91edf4770473","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"fault-free","seed_index":1,"seed":9945532481501666971,"rounds":10,"messages":132,"static_bound":132,"decided":5,"agree":true,"row_hash":"315f24d29e30907f"})",
      R"({"spec":"b816fdeb58a84653","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"crash:2","seed_index":0,"seed":6074864400172676109,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"93289f0f365138cf"})",
      R"({"spec":"0dac78b7da0eb193","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"crash:2","seed_index":1,"seed":9078006924927279980,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"0b304036a3236876"})",
      R"({"spec":"23754dbb96488645","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"mute:1","seed_index":0,"seed":13969377184229361409,"rounds":10,"messages":108,"static_bound":132,"decided":4,"agree":true,"row_hash":"b22a2956b1ca0867"})",
      R"({"spec":"9abc5b60668515c8","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"mute:1","seed_index":1,"seed":9540176146989437712,"rounds":10,"messages":108,"static_bound":132,"decided":4,"agree":true,"row_hash":"dd78a8a1b57682ef"})",
      R"({"spec":"7721d68b2e42e343","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"isolate:2","seed_index":0,"seed":14068386197853475770,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"4841b4f1dcffedfa"})",
      R"({"spec":"c34da373fd76483a","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"isolate:2","seed_index":1,"seed":11425240136563551059,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"5316fcd95f55b9a3"})",
      R"({"spec":"31ee7a98297c3b6a","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"random-omissions:250","seed_index":0,"seed":1784213896156325329,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"e2762301a68c8308"})",
      R"({"spec":"91302dae870da7b7","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"random-omissions:250","seed_index":1,"seed":17748403252540764154,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"339a0c09d7301900"})",
      R"({"spec":"f81df903d0ad8487","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"silent-byz:2","seed_index":0,"seed":3647818610353185330,"rounds":10,"messages":72,"static_bound":132,"decided":3,"agree":true,"row_hash":"62564f417d9caee5"})",
      R"({"spec":"5854afe4dae2b513","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"silent-byz:2","seed_index":1,"seed":15783818167811660234,"rounds":10,"messages":72,"static_bound":132,"decided":3,"agree":true,"row_hash":"5c96e1707f91eeb3"})",
      R"({"spec":"024c73ed80aad028","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"noise-byz:1","seed_index":0,"seed":17803605174585838195,"rounds":13,"messages":108,"static_bound":132,"decided":4,"agree":true,"row_hash":"1940d9e0aab82818"})",
      R"({"spec":"f34f4a1844ff1846","protocol":"phase-king","n":5,"t":2,"backend":"lockstep","fault":"noise-byz:1","seed_index":1,"seed":17848445763246593826,"rounds":13,"messages":108,"static_bound":132,"decided":4,"agree":true,"row_hash":"1c3a3aea87e3ce0e"})",
      R"({"spec":"3a3639a91645d176","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"fault-free","seed_index":0,"seed":2276846283043976767,"rounds":10,"messages":132,"static_bound":132,"decided":5,"agree":true,"row_hash":"87161f50869e93bb"})",
      R"({"spec":"6890ace23bdfb6c9","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"fault-free","seed_index":1,"seed":8094671595857898388,"rounds":10,"messages":132,"static_bound":132,"decided":5,"agree":true,"row_hash":"602b770fdabae1cb"})",
      R"({"spec":"9c3052dcde933c88","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"crash:2","seed_index":0,"seed":17113842027469662398,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"d7f180f8dbf5a49b"})",
      R"({"spec":"768d2d54fc3aa479","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"crash:2","seed_index":1,"seed":11902776287438972843,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"3bd6967dded62753"})",
      R"({"spec":"914445c54ed99848","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"mute:1","seed_index":0,"seed":14281822579543690535,"rounds":10,"messages":108,"static_bound":132,"decided":4,"agree":true,"row_hash":"7158f671d564248f"})",
      R"({"spec":"7f87f0ec7ff2eb05","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"mute:1","seed_index":1,"seed":82777693743094548,"rounds":10,"messages":108,"static_bound":132,"decided":4,"agree":true,"row_hash":"2e0ba5d4ee09a8bc"})",
      R"({"spec":"650ed285c240ade8","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"isolate:2","seed_index":0,"seed":8305565546851916200,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"fe3e8bbcc1e112e3"})",
      R"({"spec":"baa2ccdc488e13cf","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"isolate:2","seed_index":1,"seed":2796551285028845394,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"2b176df96c0843ca"})",
      R"({"spec":"1aea85a4eced6312","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"random-omissions:250","seed_index":0,"seed":2927637213422319949,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"9b1513a7055a14cb"})",
      R"({"spec":"b7317d7e3b0cd720","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"random-omissions:250","seed_index":1,"seed":12556852709203726095,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"ee0f2ab20b309461"})",
      R"({"spec":"0d933ceba02e7aa9","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"silent-byz:2","seed_index":0,"seed":3107217219007043351,"rounds":10,"messages":84,"static_bound":132,"decided":3,"agree":true,"row_hash":"66344ade91769acf"})",
      R"({"spec":"70622079da0250b4","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"silent-byz:2","seed_index":1,"seed":18109931833524675666,"rounds":10,"messages":72,"static_bound":132,"decided":3,"agree":true,"row_hash":"b9f48d84fd264003"})",
      R"({"spec":"44681f5221c04ef2","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"noise-byz:1","seed_index":0,"seed":17822062327486737205,"rounds":13,"messages":92,"static_bound":132,"decided":4,"agree":true,"row_hash":"cc0ac2d0e12aea24"})",
      R"({"spec":"f8698032971558e9","protocol":"phase-king","n":5,"t":2,"backend":"sim:sync,1","fault":"noise-byz:1","seed_index":1,"seed":7235492028975708369,"rounds":13,"messages":92,"static_bound":132,"decided":4,"agree":true,"row_hash":"ce595c6cf23c301b"})",
  };
  ASSERT_EQ(spec.task_count(), golden.size());

  TempDir tmp("golden");
  run_campaign_serial(spec, tmp.path("replay.ndjson"));
  const std::vector<std::string> lines =
      read_ndjson_lines(tmp.path("replay.ndjson"));
  ASSERT_EQ(lines.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(lines[i], golden[i]) << "row " << i;
  }
}

TEST(SerialRunner, FaultAxisRowsCarryFAndTheBoundAtF) {
  CampaignSpec spec;
  spec.name = "axis-run";
  spec.master_seed = 3;
  spec.protocols = {"phase-king"};
  spec.grid = {{5, 2}};
  spec.faults.clear();
  spec.fault_axis = {"crash"};
  spec.validate();
  ASSERT_EQ(spec.task_count(), 3u);  // f = 0, 1, 2

  TempDir tmp("axis");
  run_campaign_serial(spec, tmp.path("axis.ndjson"));
  const std::vector<std::string> lines =
      read_ndjson_lines(tmp.path("axis.ndjson"));
  ASSERT_EQ(lines.size(), 3u);
  for (std::uint64_t i = 0; i < lines.size(); ++i) {
    // The extended rows still authenticate and round-trip canonically.
    const auto row = decode_row(lines[i]);
    ASSERT_TRUE(row.has_value()) << lines[i];
    ASSERT_TRUE(row->f.has_value());
    EXPECT_EQ(*row->f, i);  // crash:0, crash:1, crash:2 in task order
    ASSERT_TRUE(row->static_bound_f.has_value());
    // Observed cost respects the bound at the row's actual fault count.
    EXPECT_LE(row->messages, *row->static_bound_f);
    // No registered CommSpec weakens with f, so the per-f bound equals the
    // worst-case column.
    EXPECT_EQ(row->static_bound_f, row->static_bound);
  }
}

TEST(BenchJson, CarriesTheRegressionGateSchema) {
  const CampaignSpec spec = tiny_spec();
  TempDir tmp("bench");
  const ServeSummary summary =
      serve_campaign(spec, base_options(tmp.path("state")));
  const std::string doc = bench_service_json(spec, summary);
  EXPECT_NE(doc.find("\"experiment\": \"service_campaign\""),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"rows_per_sec\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"specs\": 12"), std::string::npos) << doc;
}

}  // namespace
}  // namespace ba::service
