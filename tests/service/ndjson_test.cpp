// The service's row encoding and streaming plumbing: the minimal JSON
// parser, authenticated encode_row/decode_row (cache-poisoning defense),
// the OrderedNdjsonWriter reorder buffer, and file round trips.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/campaign.h"
#include "service/json.h"
#include "service/ndjson.h"

namespace ba::service {
namespace {

TEST(Json, ParsesTheCampaignSurface) {
  const Json doc = Json::parse(
      R"({"name": "x", "count": 3, "ratio": 1.5, "ok": true,
          "none": null, "items": ["a", {"n": 4}]})");
  EXPECT_EQ(doc.find("name")->as_string(), "x");
  EXPECT_EQ(doc.find("count")->as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.find("ratio")->as_double(), 1.5);
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_TRUE(doc.find("none")->is_null());
  ASSERT_EQ(doc.find("items")->as_array().size(), 2u);
  EXPECT_EQ(doc.find("items")->as_array()[1].find("n")->as_int(), 4);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, FullRangeUnsignedIntegersSurvive) {
  // Campaign seeds use all 64 bits; values above INT64_MAX must parse.
  const Json doc = Json::parse(R"({"seed": 9945532481501666971})");
  EXPECT_EQ(doc.find("seed")->as_uint(), 9945532481501666971ULL);
  EXPECT_TRUE(doc.find("seed")->is_integer());
  // And small integers stay kInt, reachable through both accessors.
  const Json small = Json::parse("42");
  EXPECT_EQ(small.as_int(), 42);
  EXPECT_EQ(small.as_uint(), 42u);
}

TEST(Json, RejectsMalformedInput) {
  const auto rejects = [](const char* text) {
    EXPECT_THROW((void)Json::parse(text), std::runtime_error) << text;
  };
  rejects("");
  rejects("{");
  rejects("{\"a\": }");
  rejects("[1, 2");
  rejects("tru");
  rejects("{\"a\": 1} trailing");
  rejects("\"unterminated");
  rejects("\"bad \\x escape\"");
  rejects("18446744073709551616");  // > UINT64_MAX
  rejects("-9223372036854775809");  // < INT64_MIN
}

TEST(Json, TypedAccessorsThrowOnKindMismatch) {
  const Json doc = Json::parse(R"({"s": "x", "neg": -1})");
  EXPECT_THROW((void)doc.find("s")->as_int(), std::runtime_error);
  EXPECT_THROW((void)doc.find("s")->as_bool(), std::runtime_error);
  EXPECT_THROW((void)doc.find("neg")->as_uint(), std::runtime_error);
  EXPECT_THROW((void)doc.as_array(), std::runtime_error);
}

TEST(Json, EscapeRoundTrip) {
  std::string out;
  json_escape_to(out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001");
  const Json back = Json::parse("\"" + out + "\"");
  EXPECT_EQ(back.as_string(), "a\"b\\c\nd\te\x01");
}

CampaignRow sample_row() {
  CampaignRow row;
  row.spec_hash = 0x9688f8d05c884f71ULL;
  row.protocol = "phase-king";
  row.params = {4, 1};
  row.backend = "lockstep";
  row.fault = "fault-free";
  row.seed_index = 3;
  row.seed = 9945532481501666971ULL;  // deliberately > INT64_MAX
  row.rounds = 7;
  row.messages = 54;
  row.static_bound = 54;
  row.decided = 4;
  row.agree = true;
  return row;
}

TEST(Rows, EncodeDecodeRoundTrip) {
  const CampaignRow row = sample_row();
  const std::string line = encode_row(row);
  const auto decoded = decode_row(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, row);
  EXPECT_EQ(encode_row(*decoded), line);

  CampaignRow unbounded = row;
  unbounded.static_bound.reset();
  unbounded.agree = false;
  const auto decoded2 = decode_row(encode_row(unbounded));
  ASSERT_TRUE(decoded2.has_value());
  EXPECT_EQ(*decoded2, unbounded);
}

TEST(Rows, EveryByteFlipIsDetected) {
  const std::string line = encode_row(sample_row());
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string corrupted = line;
    corrupted[i] = corrupted[i] == 'x' ? 'y' : 'x';
    if (corrupted == line) continue;
    EXPECT_FALSE(decode_row(corrupted).has_value())
        << "undetected corruption at byte " << i << ": " << corrupted;
  }
}

TEST(Rows, TruncationAndGarbageAreRejected) {
  const std::string line = encode_row(sample_row());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, line.size() / 2, line.size() - 1}) {
    EXPECT_FALSE(decode_row(line.substr(0, keep)).has_value());
  }
  EXPECT_FALSE(decode_row("").has_value());
  EXPECT_FALSE(decode_row("{}").has_value());
  EXPECT_FALSE(decode_row("not json at all").has_value());
}

TEST(Rows, ForgedFieldWithStaleHashIsRejected) {
  // The classic cache-poisoning shape: edit a field, keep the recorded
  // hash. The hash covers the prefix bytes, so this must fail.
  std::string line = encode_row(sample_row());
  const auto pos = line.find("\"messages\":54");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, 13, "\"messages\":99");
  EXPECT_FALSE(decode_row(line).has_value());
}

TEST(Rows, NonCanonicalEncodingIsRejected) {
  // Same data, extra whitespace: parses as JSON but is not the canonical
  // byte sequence, so the re-encode equality check refuses it.
  std::string line = encode_row(sample_row());
  line.insert(1, " ");
  EXPECT_FALSE(decode_row(line).has_value());
}

TEST(OrderedWriter, ReordersCompletionOrderToIndexOrder) {
  std::vector<std::string> emitted;
  OrderedNdjsonWriter writer(
      [&](std::string_view line) { emitted.emplace_back(line); });
  writer.put(2, "two");
  writer.put(0, "zero");
  EXPECT_EQ(emitted, (std::vector<std::string>{"zero"}));
  EXPECT_FALSE(writer.drained());
  writer.put(1, "one");
  EXPECT_EQ(emitted, (std::vector<std::string>{"zero", "one", "two"}));
  EXPECT_TRUE(writer.drained());
  EXPECT_EQ(writer.emitted(), 3u);
  EXPECT_THROW(writer.put(1, "dup"), std::runtime_error);
}

TEST(FileWriter, AppendAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("ba_ndjson_test_" + std::to_string(::getpid()) + ".ndjson"))
          .string();
  {
    NdjsonFileWriter writer(path);
    writer.write_line("alpha");
    writer.write_line("beta");
    EXPECT_EQ(writer.lines_written(), 2u);
  }
  {
    NdjsonFileWriter appender(path, /*truncate=*/false);
    appender.write_line("gamma");
  }
  EXPECT_EQ(read_ndjson_lines(path),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  std::filesystem::remove(path);
  EXPECT_TRUE(read_ndjson_lines(path).empty());
}

}  // namespace
}  // namespace ba::service
