// Property battery for per-task seed derivation: a derived seed is a pure
// function of (master_seed, task_index), so it must be stable across any
// reordering of the computation, collision-free over grids far larger than
// anything we run, and independent of how many pool workers compute it.

#include "parallel/experiment_pool.h"
#include "parallel/seed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <unordered_set>

namespace ba::parallel {
namespace {

TEST(SeedDerivation, StableAcrossReorderings) {
  constexpr std::uint64_t kMaster = 0xfeedface;
  constexpr std::size_t kTasks = 1000;
  const std::vector<std::uint64_t> in_order =
      derive_task_seeds(kMaster, kTasks);

  // Recompute in a shuffled order: every seed must land on the same value.
  std::vector<std::size_t> order(kTasks);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 rng(7);
  std::shuffle(order.begin(), order.end(), rng);
  for (std::size_t i : order) {
    EXPECT_EQ(derive_task_seed(kMaster, i), in_order[i]) << "index " << i;
  }
}

TEST(SeedDerivation, CollisionFreeOver1e5Tasks) {
  constexpr std::size_t kTasks = 100000;
  const std::vector<std::uint64_t> seeds = derive_task_seeds(0xba5eed, kTasks);
  std::unordered_set<std::uint64_t> distinct(seeds.begin(), seeds.end());
  EXPECT_EQ(distinct.size(), kTasks);
}

TEST(SeedDerivation, DistinctMastersDecorrelate) {
  constexpr std::size_t kTasks = 4096;
  const auto a = derive_task_seeds(1, kTasks);
  const auto b = derive_task_seeds(2, kTasks);
  std::size_t agreements = 0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    if (a[i] == b[i]) ++agreements;
  }
  EXPECT_EQ(agreements, 0u);  // 4096 64-bit collisions: p ~ 2^-52
}

TEST(SeedDerivation, IndependentOfJobs) {
  constexpr std::uint64_t kMaster = 0x5eed;
  constexpr std::size_t kTasks = 512;
  const std::vector<std::uint64_t> serial = derive_task_seeds(kMaster, kTasks);
  for (unsigned jobs : {1u, 2u, 8u}) {
    ExperimentPool pool(jobs);
    auto pooled = pool.map<std::uint64_t>(kTasks, [](std::size_t i) {
      return derive_task_seed(kMaster, i);
    });
    EXPECT_EQ(pooled, serial) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace ba::parallel
