// Batch task-seed derivation (parallel::derive_task_seed_block): the block
// path shares one key derivation and one SipHasher prefix across the whole
// block, so it must stay BIT-IDENTICAL to the per-index reference
// derive_task_seed — campaign workers seed tasks in blocks while the
// expansion (service/campaign.h) seeds them one at a time, and the two must
// never diverge.

#include <gtest/gtest.h>

#include <vector>

#include "parallel/seed.h"

namespace ba::parallel {
namespace {

TEST(SeedBlock, GoldenValuesPinTheDerivation) {
  // Pinned constants: a change to the key-derivation context, the SipHash
  // core, or the index encoding shows up here before it silently
  // invalidates every cached campaign row in the wild.
  EXPECT_EQ(derive_task_seed(1, 0), 0x2355867bfac889d0ULL);
  EXPECT_EQ(derive_task_seed(1, 1), 0x62771f75f32fbb07ULL);
  EXPECT_EQ(derive_task_seed(0xdeadbeef, 12345), 0x2c2c8cfe635acc34ULL);
}

TEST(SeedBlock, BlockMatchesPerIndexReference) {
  for (const std::uint64_t master : {1ULL, 7ULL, 0xdeadbeefULL}) {
    for (const std::uint64_t first : {0ULL, 1ULL, 999ULL, 1ULL << 40}) {
      std::vector<std::uint64_t> block(257);
      derive_task_seed_block(master, first, block);
      for (std::size_t i = 0; i < block.size(); ++i) {
        ASSERT_EQ(block[i], derive_task_seed(master, first + i))
            << "master=" << master << " first=" << first << " i=" << i;
      }
    }
  }
}

TEST(SeedBlock, EmptyBlockIsANoop) {
  std::vector<std::uint64_t> empty;
  derive_task_seed_block(1, 0, empty);  // must not touch memory
  EXPECT_TRUE(empty.empty());
}

TEST(SeedBlock, DeriveTaskSeedsStartsAtIndexZero) {
  const std::vector<std::uint64_t> seeds = derive_task_seeds(42, 64);
  ASSERT_EQ(seeds.size(), 64u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], derive_task_seed(42, i));
  }
}

TEST(SeedBlock, DistinctMastersAndIndicesDisagree) {
  // Not a cryptographic claim — just a tripwire against degenerate keying.
  EXPECT_NE(derive_task_seed(1, 0), derive_task_seed(2, 0));
  EXPECT_NE(derive_task_seed(1, 0), derive_task_seed(1, 1));
}

}  // namespace
}  // namespace ba::parallel
