// The core "parallel == serial" golden contract: run_attack_sweep over the
// standard candidate set and grid must produce byte-identical SweepRow
// sequences — encoded violation certificates included — at every worker
// count, and every certificate must re-verify by full replay after a
// decode round-trip.

#include <gtest/gtest.h>

#include <sstream>

#include "core/ba.h"

namespace ba::lowerbound {
namespace {

TEST(SweepDeterminism, ParallelMatchesSerialAtEveryWidth) {
  const auto entries = standard_sweep_entries();
  const auto grid = standard_sweep_grid();
  const SweepResult serial = run_attack_sweep(entries, grid);
  ASSERT_EQ(serial.rows.size(), entries.size() * grid.size());
  ASSERT_TRUE(serial.theorem2_consistent());
  EXPECT_EQ(serial.jobs_used, 1u);

  for (unsigned jobs : {2u, 8u}) {
    SweepOptions options;
    options.jobs = jobs;
    const SweepResult parallel = run_attack_sweep(entries, grid, options);
    EXPECT_EQ(parallel.jobs_used, jobs);
    ASSERT_EQ(parallel.rows.size(), serial.rows.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
      // Field-by-field (for readable failures) and then the full byte-level
      // row equality, encoded certificate included.
      EXPECT_EQ(parallel.rows[i].protocol_name, serial.rows[i].protocol_name);
      EXPECT_EQ(parallel.rows[i].max_messages, serial.rows[i].max_messages)
          << "jobs=" << jobs << " row=" << i;
      EXPECT_EQ(parallel.rows[i].certificate, serial.rows[i].certificate)
          << "jobs=" << jobs << " row=" << i
          << ": certificates must be bit-identical";
      EXPECT_EQ(parallel.rows[i], serial.rows[i])
          << "jobs=" << jobs << " row=" << i;
    }
  }
}

TEST(SweepDeterminism, CertificatesReverifyAfterDecodeRoundTrip) {
  const auto entries = standard_sweep_entries();
  SweepOptions options;
  options.jobs = 2;
  const SweepResult result =
      run_attack_sweep(entries, standard_sweep_grid(), options);
  std::size_t verified = 0;
  for (const SweepRow& row : result.rows) {
    if (!row.violation) {
      EXPECT_TRUE(row.certificate.empty());
      continue;
    }
    ASSERT_FALSE(row.certificate.empty()) << row.protocol_name;
    auto cert = decode_certificate(row.certificate);
    ASSERT_TRUE(cert.has_value()) << row.protocol_name;
    EXPECT_EQ(to_string(cert->kind), row.violation_kind);
    // Re-verify against a freshly built protocol: the row's claim must be
    // reproducible from the encoded bytes alone.
    const SweepEntry* entry = nullptr;
    for (const SweepEntry& e : entries) {
      if (e.protocol_name == row.protocol_name) entry = &e;
    }
    ASSERT_NE(entry, nullptr);
    auto check = verify_certificate(*cert, entry->make(row.params));
    EXPECT_TRUE(check.ok) << row.protocol_name << ": " << check.error;
    ++verified;
  }
  EXPECT_GE(verified, 6u);  // 3 broken candidates x 2 grid points
}

TEST(SweepDeterminism, RepeatedParallelRunsAreIdentical) {
  const auto entries = standard_sweep_entries();
  const std::vector<SystemParams> grid = {{12, 11}};
  SweepOptions options;
  options.jobs = 4;
  const SweepResult a = run_attack_sweep(entries, grid, options);
  const SweepResult b = run_attack_sweep(entries, grid, options);
  EXPECT_EQ(a.rows, b.rows);
}

TEST(SweepDeterminism, BenchJsonReportsTheRun) {
  SweepOptions options;
  options.jobs = 2;
  const SweepResult result = run_attack_sweep(
      standard_sweep_entries(), std::vector<SystemParams>{{12, 11}}, options);
  std::ostringstream os;
  write_bench_json(os, result);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"experiment\": \"theorem2_attack_sweep\""),
            std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"points\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"theorem2_consistent\": true"), std::string::npos);
  EXPECT_NE(json.find("\"protocol\": \"dolev-strong-weak\""),
            std::string::npos);
}

}  // namespace
}  // namespace ba::lowerbound
