// Edge-case battery for ExperimentPool: the pool must behave identically to
// a serial loop on every degenerate shape (empty batch, single task, more
// workers than tasks), capture task exceptions without losing the batch or
// the pool, and resolve jobs = 0 to the hardware width.

#include "parallel/experiment_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

namespace ba::parallel {
namespace {

TEST(ExperimentPool, ZeroTasksCollectsImmediately) {
  ExperimentPool pool(4);
  pool.collect();  // nothing submitted: must not hang or throw
  auto out = pool.map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ExperimentPool, OneTask) {
  ExperimentPool pool(4);
  auto out = pool.map<int>(1, [](std::size_t i) {
    return static_cast<int>(i) + 41;
  });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 41);
}

TEST(ExperimentPool, MoreJobsThanTasks) {
  ExperimentPool pool(16);
  EXPECT_EQ(pool.jobs(), 16u);
  auto out = pool.map<std::size_t>(3, [](std::size_t i) { return i * i; });
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 4}));
}

TEST(ExperimentPool, ResultsAreIndexOrderedNotCompletionOrdered) {
  // Give early indices the longest work so they finish last; the collected
  // vector must still be index-ordered.
  ExperimentPool pool(4);
  auto out = pool.map<std::size_t>(32, [](std::size_t i) {
    if (i < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return i;
  });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(ExperimentPool, ThrowingTaskIsRethrownAtCollect) {
  ExperimentPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran, i] {
      ++ran;
      if (i == 4) throw std::runtime_error("task 4 failed");
    });
  }
  EXPECT_THROW(pool.collect(), std::runtime_error);
  // Every task still ran: one failure does not cancel the batch.
  EXPECT_EQ(ran.load(), 10);
}

TEST(ExperimentPool, LowestIndexExceptionWinsDeterministically) {
  ExperimentPool pool(4);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.submit([i] {
        if (i == 2) throw std::runtime_error("two");
        if (i == 6) throw std::logic_error("six");
      });
    }
    // Index 2's exception must be the one surfaced, every time, regardless
    // of which worker hit which failure first.
    try {
      pool.collect();
      FAIL() << "collect() did not throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "two");
    } catch (const std::logic_error&) {
      FAIL() << "higher-index exception surfaced";
    }
  }
}

TEST(ExperimentPool, PoolStaysUsableAfterException) {
  ExperimentPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.collect(), std::runtime_error);
  auto out = pool.map<int>(8, [](std::size_t i) {
    return static_cast<int>(i) * 2;
  });
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[7], 14);
  pool.collect();  // empty follow-up batch is still fine
}

TEST(ExperimentPool, JobsZeroMeansHardwareConcurrency) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned expected = hw == 0 ? 1 : hw;
  EXPECT_EQ(resolve_jobs(0), expected);
  ExperimentPool pool(0);
  EXPECT_EQ(pool.jobs(), expected);
  auto out = pool.map<int>(4, [](std::size_t i) {
    return static_cast<int>(i);
  });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ExperimentPool, ManySequentialBatches) {
  ExperimentPool pool(3);
  for (std::size_t batch = 0; batch < 20; ++batch) {
    auto out = pool.map<std::size_t>(batch, [batch](std::size_t i) {
      return batch * 100 + i;
    });
    ASSERT_EQ(out.size(), batch);
    for (std::size_t i = 0; i < batch; ++i) EXPECT_EQ(out[i], batch * 100 + i);
  }
}

}  // namespace
}  // namespace ba::parallel
