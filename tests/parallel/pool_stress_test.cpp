// ThreadSanitizer stress battery for ExperimentPool: hundreds of tiny tasks
// hammering shared-counter collection across many batches, with throwing
// tasks mixed in. Runs in every preset but is *aimed at* the tsan preset
// (cmake --preset tsan), where any data race in the pool's hand-off of
// tasks, results, or exceptions aborts the test.

#include "parallel/experiment_pool.h"
#include "parallel/seed.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace ba::parallel {
namespace {

TEST(PoolStress, HundredsOfTinyTasksSharedCounter) {
  ExperimentPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  constexpr std::size_t kTasks = 400;
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.collect();
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(PoolStress, OrderedSlotsUnderContention) {
  // Each task writes only its own slot: the pool's ordered-collection
  // discipline means no two tasks ever touch the same memory.
  ExperimentPool pool(8);
  for (int batch = 0; batch < 10; ++batch) {
    auto out = pool.map<std::uint64_t>(257, [batch](std::size_t i) {
      return derive_task_seed(static_cast<std::uint64_t>(batch), i);
    });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], derive_task_seed(static_cast<std::uint64_t>(batch), i));
    }
  }
}

TEST(PoolStress, ThrowingTasksUnderContention) {
  ExperimentPool pool(8);
  std::atomic<int> ran{0};
  for (int batch = 0; batch < 5; ++batch) {
    constexpr int kTasks = 300;
    ran = 0;
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran, i] {
        ++ran;
        if (i % 37 == 0) throw std::runtime_error("stress failure");
      });
    }
    EXPECT_THROW(pool.collect(), std::runtime_error);
    EXPECT_EQ(ran.load(), kTasks);
  }
}

TEST(PoolStress, InterleavedPools) {
  // Two pools alive at once must not share any state.
  ExperimentPool a(4);
  ExperimentPool b(4);
  std::atomic<std::uint64_t> sa{0};
  std::atomic<std::uint64_t> sb{0};
  for (std::size_t i = 0; i < 200; ++i) {
    a.submit([&sa] { sa.fetch_add(1, std::memory_order_relaxed); });
    b.submit([&sb] { sb.fetch_add(2, std::memory_order_relaxed); });
  }
  a.collect();
  b.collect();
  EXPECT_EQ(sa.load(), 200u);
  EXPECT_EQ(sb.load(), 400u);
}

}  // namespace
}  // namespace ba::parallel
