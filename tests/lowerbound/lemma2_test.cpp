// Lemma 2 on real executions: when the correct processes decide b_X and a
// group Y is isolated, the low-omission majority of Y follows b_X — for
// correct protocols. Broken protocols yield certificates.

#include "lowerbound/lemma2.h"

#include <gtest/gtest.h>

#include <memory>

#include "adversary/omission.h"
#include "crypto/signature.h"
#include "lowerbound/certificate.h"
#include "protocols/phase_king.h"
#include "protocols/weak_consensus.h"
#include "runtime/sync_system.h"

namespace ba::lowerbound {
namespace {

ExecutionTrace run_isolated(const SystemParams& params,
                            const ProtocolFactory& protocol, int bit,
                            const ProcessSet& g, Round k) {
  return run_execution(params, protocol,
                       std::vector<Value>(params.n, Value::bit(bit)),
                       isolate_group(g, k))
      .trace;
}

TEST(Lemma2, HoldsForPhaseKingLateIsolation) {
  // Isolation after decisions: Y trivially decided with X already.
  SystemParams params{25, 8};
  ProcessSet y = ProcessSet::range(23, 25);
  ExecutionTrace e = run_isolated(params, protocols::weak_consensus_unauth(),
                                  0, y, 100);
  Lemma2Report rep = lemma2_report(e, y);
  ASSERT_TRUE(rep.b_x.has_value());
  EXPECT_TRUE(rep.holds);
}

TEST(Lemma2, HoldsForDolevStrongWeakConsensus) {
  SystemParams params{12, 8};
  auto auth = std::make_shared<crypto::Authenticator>(77, params.n);
  auto wc = protocols::weak_consensus_auth(auth);
  ProcessSet y = ProcessSet::range(10, 12);
  for (Round k : {1u, 2u, 3u, 5u}) {
    ExecutionTrace e = run_isolated(params, wc, 0, y, k);
    Lemma2Report rep = lemma2_report(e, y);
    ASSERT_TRUE(rep.b_x.has_value()) << "k=" << k;
    // The protocol floods n-1 messages to each member per relay round, so
    // members isolated early have MANY omissions — the lemma then holds
    // vacuously or through agreement; what must never exist is a verified
    // violation certificate.
    auto cert = find_lemma2_violation(e, y, "test");
    if (cert) {
      EXPECT_FALSE(verify_certificate(*cert, wc).ok)
          << "k=" << k << ": " << cert->narrative;
    }
  }
}

TEST(Lemma2, ViolationFoundForLeaderBeacon) {
  SystemParams params{12, 8};
  auto protocol = protocols::wc_candidate_leader_beacon();
  ProcessSet y = ProcessSet::range(10, 12);
  ExecutionTrace e = run_isolated(params, protocol, 0, y, 1);
  // X decides 0 (beacon=0), isolated members decide the default 1, each
  // having omitted exactly one correct message (the beacon).
  Lemma2Report rep = lemma2_report(e, y);
  ASSERT_TRUE(rep.b_x.has_value());
  EXPECT_EQ(*rep.b_x, Value::bit(0));
  EXPECT_FALSE(rep.holds);
  EXPECT_EQ(rep.low_omission.size(), 2u);
  EXPECT_TRUE(rep.agreeing.empty());

  auto cert = find_lemma2_violation(e, y, "beacon isolation");
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->kind, ViolationKind::kAgreement);
  EXPECT_TRUE(verify_certificate(*cert, protocol).ok);
}

TEST(Lemma2, LowOmissionThresholdRespected) {
  // With a chatty protocol and early isolation, members accumulate >= t/2
  // omissions from X and drop out of the low-omission set.
  SystemParams params{25, 8};
  ProcessSet y = ProcessSet::range(23, 25);
  ExecutionTrace e = run_isolated(params, protocols::weak_consensus_unauth(),
                                  0, y, 1);
  Lemma2Report rep = lemma2_report(e, y);
  EXPECT_TRUE(rep.low_omission.empty());
}

TEST(Lemma2, ReportCountsAgreeingMembers) {
  SystemParams params{12, 8};
  ProcessSet y = ProcessSet::range(10, 12);
  // Gossip ring, isolation AFTER the protocol finished: no omissions at all,
  // everyone agrees.
  ExecutionTrace e = run_isolated(params,
                                  protocols::wc_candidate_gossip_ring(2, 3),
                                  0, y, 50);
  Lemma2Report rep = lemma2_report(e, y);
  EXPECT_EQ(rep.low_omission.size(), 2u);
  EXPECT_EQ(rep.agreeing.size(), 2u);
  EXPECT_TRUE(rep.holds);
}

}  // namespace
}  // namespace ba::lowerbound
