// Tests for the Theorem 2 attack engine: every sub-quadratic weak-consensus
// candidate must yield a machine-checkable violation certificate; correct
// protocols must survive the attack and exhibit >= t^2/32 messages.

#include "lowerbound/attack.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/signature.h"
#include "lowerbound/certificate.h"
#include "protocols/weak_consensus.h"
#include "runtime/sync_system.h"

namespace ba::lowerbound {
namespace {

void expect_attack_succeeds(const SystemParams& params,
                            const ProtocolFactory& protocol,
                            const char* label) {
  AttackReport report = attack_weak_consensus(params, protocol);
  ASSERT_TRUE(report.violation_found) << label << "\n" << report.narrative;
  ASSERT_TRUE(report.certificate.has_value()) << label;
  CertificateCheck check = verify_certificate(*report.certificate, protocol);
  EXPECT_TRUE(check.ok) << label << ": " << check.error << "\n"
                        << report.certificate->narrative;
}

TEST(Attack, SilentCandidateCaughtByWeakValidity) {
  SystemParams params{12, 8};
  AttackReport report =
      attack_weak_consensus(params, protocols::wc_candidate_silent(1));
  ASSERT_TRUE(report.violation_found);
  EXPECT_EQ(report.certificate->kind, ViolationKind::kWeakValidity);
  CertificateCheck check = verify_certificate(
      *report.certificate, protocols::wc_candidate_silent(1));
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Attack, LeaderBeaconBroken) {
  expect_attack_succeeds({12, 8}, protocols::wc_candidate_leader_beacon(),
                         "leader-beacon");
}

TEST(Attack, LeaderBeaconBrokenAtLargerScale) {
  expect_attack_succeeds({33, 32}, protocols::wc_candidate_leader_beacon(),
                         "leader-beacon-32");
}

TEST(Attack, GossipRingBroken) {
  expect_attack_succeeds({12, 8}, protocols::wc_candidate_gossip_ring(2, 3),
                         "gossip-ring");
}

TEST(Attack, GossipRingBrokenWithWiderFanout) {
  expect_attack_succeeds({16, 8}, protocols::wc_candidate_gossip_ring(3, 4),
                         "gossip-ring-3-4");
}

TEST(Attack, CertificateUsesAtMostTFaults) {
  SystemParams params{12, 8};
  AttackReport report = attack_weak_consensus(
      params, protocols::wc_candidate_leader_beacon());
  ASSERT_TRUE(report.certificate.has_value());
  EXPECT_LE(report.certificate->execution.faulty.size(), params.t);
}

TEST(Attack, CorrectAuthProtocolSurvives) {
  SystemParams params{12, 8};
  auto auth = std::make_shared<crypto::Authenticator>(21, params.n);
  auto wc = protocols::weak_consensus_auth(auth);
  AttackReport report = attack_weak_consensus(params, wc);
  EXPECT_FALSE(report.violation_found) << report.narrative;
  // ... and, as Theorem 2 promises, its cost clears the bound.
  EXPECT_GE(report.max_message_complexity, report.bound);
}

TEST(Attack, CorrectUnauthProtocolSurvives) {
  SystemParams params{25, 8};  // n > 3t for phase king
  auto wc = protocols::weak_consensus_unauth();
  AttackReport report = attack_weak_consensus(params, wc);
  EXPECT_FALSE(report.violation_found) << report.narrative;
  EXPECT_GE(report.max_message_complexity, report.bound);
}

TEST(Attack, DirectLemma2ShortCircuitsOnBeacon) {
  // With direct probing (the default), the beacon falls at the very first
  // isolated execution E_0^B(1), before any merge.
  SystemParams params{12, 8};
  AttackReport report = attack_weak_consensus(
      params, protocols::wc_candidate_leader_beacon());
  ASSERT_TRUE(report.violation_found);
  EXPECT_NE(report.narrative.find("E_0^{G(1)}"), std::string::npos)
      << report.narrative;
}

TEST(Attack, PureMergeRouteStillBreaksBeacon) {
  // Forcing the paper's route (no direct probing): default bit, Lemma 4
  // critical-round machinery or the round-1 mergeable pairs, then a merge
  // and swap_omission — and still a verified certificate.
  SystemParams params{12, 8};
  AttackOptions opts;
  opts.direct_lemma2 = false;
  auto protocol = protocols::wc_candidate_leader_beacon();
  AttackReport report = attack_weak_consensus(params, protocol, opts);
  ASSERT_TRUE(report.violation_found) << report.narrative;
  EXPECT_TRUE(report.default_bit.has_value());
  EXPECT_NE(report.narrative.find("merge("), std::string::npos)
      << report.narrative;
  EXPECT_TRUE(verify_certificate(*report.certificate, protocol).ok);
}

TEST(Attack, PureMergeRouteStillBreaksGossip) {
  SystemParams params{12, 8};
  AttackOptions opts;
  opts.direct_lemma2 = false;
  auto protocol = protocols::wc_candidate_gossip_ring(2, 3);
  AttackReport report = attack_weak_consensus(params, protocol, opts);
  ASSERT_TRUE(report.violation_found) << report.narrative;
  EXPECT_TRUE(verify_certificate(*report.certificate, protocol).ok);
}

TEST(Attack, NarrativeMentionsConstructions) {
  SystemParams params{12, 8};
  AttackReport report =
      attack_weak_consensus(params, protocols::wc_candidate_gossip_ring(2, 3));
  EXPECT_NE(report.narrative.find("E_0^B(1)"), std::string::npos)
      << report.narrative;
}

TEST(Attack, TamperedCertificateRejected) {
  SystemParams params{12, 8};
  auto protocol = protocols::wc_candidate_leader_beacon();
  AttackReport report = attack_weak_consensus(params, protocol);
  ASSERT_TRUE(report.certificate.has_value());
  ASSERT_TRUE(verify_certificate(*report.certificate, protocol).ok);

  // Tamper 1: claim different witnesses.
  {
    ViolationCertificate bad = *report.certificate;
    bad.witness_a = bad.witness_b;
    EXPECT_FALSE(verify_certificate(bad, protocol).ok);
  }
  // Tamper 2: flip a recorded decision.
  {
    ViolationCertificate bad = *report.certificate;
    auto& d = bad.execution.procs[bad.witness_a].decision;
    if (d.has_value()) {
      d = Value::bit(1 - d->try_bit().value_or(0));
      EXPECT_FALSE(verify_certificate(bad, protocol).ok);
    }
  }
  // Tamper 3: verify against the wrong protocol.
  {
    EXPECT_FALSE(verify_certificate(*report.certificate,
                                    protocols::wc_candidate_silent(1))
                     .ok);
  }
}

TEST(Attack, GroupOverridesRespected) {
  SystemParams params{12, 8};
  AttackOptions opts;
  opts.group_b = ProcessSet{{2, 3}};
  opts.group_c = ProcessSet{{5, 6}};
  AttackReport report = attack_weak_consensus(
      params, protocols::wc_candidate_gossip_ring(2, 3), opts);
  EXPECT_TRUE(report.violation_found) << report.narrative;
}

TEST(Attack, RequiresEnoughFaultBudget) {
  SystemParams params{4, 1};
  EXPECT_THROW(attack_weak_consensus(params,
                                     protocols::wc_candidate_silent(1)),
               std::invalid_argument);
}

TEST(Lemma1Bound, Values) {
  EXPECT_EQ(lemma1_bound(8), 2u);
  EXPECT_EQ(lemma1_bound(16), 8u);
  EXPECT_EQ(lemma1_bound(32), 32u);
  EXPECT_EQ(lemma1_bound(64), 128u);
}

}  // namespace
}  // namespace ba::lowerbound
