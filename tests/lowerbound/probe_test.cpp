// The shared message-complexity probe (lowerbound/probe.h): the single
// definition both the benches and this battery use. Checks the schedule's
// shape, the probe's monotonicity in the schedule, and its determinism —
// the properties the "parallel == serial" contract leans on when probes are
// fanned across the experiment pool.

#include "lowerbound/probe.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/ba.h"

namespace ba::lowerbound {
namespace {

TEST(Probe, DefaultScheduleShape) {
  const SystemParams params{12, 8};
  const auto schedule = default_probe_schedule(params);
  ASSERT_EQ(schedule.size(), 3u);
  for (const Adversary& adv : schedule) {
    // Isolates the suffix group of t/4 = 2 processes; never exceeds t.
    EXPECT_EQ(adv.faulty.size(), 2u);
    EXPECT_LE(adv.faulty.size(), params.t);
    EXPECT_TRUE(adv.faulty.contains(10));
    EXPECT_TRUE(adv.faulty.contains(11));
  }
}

TEST(Probe, GroupSizeAtLeastOne) {
  const SystemParams params{4, 1};  // t/4 == 0: clamps to 1
  const auto schedule = default_probe_schedule(params);
  for (const Adversary& adv : schedule) {
    EXPECT_EQ(adv.faulty.size(), 1u);
  }
}

TEST(Probe, WorstDominatesFaultFreeAndGrowsWithSchedule) {
  const SystemParams params{7, 4};
  auto auth = std::make_shared<crypto::Authenticator>(0xab, params.n);
  const ProtocolFactory wc = protocols::weak_consensus_auth(auth);

  RunOptions opts;
  opts.record_trace = false;
  const std::uint64_t fault_free =
      run_all_correct(params, wc, Value::bit(0), opts)
          .messages_sent_by_correct;

  const std::uint64_t empty_schedule =
      worst_observed_messages(params, wc, Value::bit(0), {});
  EXPECT_EQ(empty_schedule, fault_free);

  const std::uint64_t full = worst_observed_messages(
      params, wc, Value::bit(0), default_probe_schedule(params));
  EXPECT_GE(full, fault_free);  // max over a superset of executions
}

TEST(Probe, Deterministic) {
  const SystemParams params{7, 4};
  auto auth = std::make_shared<crypto::Authenticator>(0xcd, params.n);
  const ProtocolFactory wc = protocols::weak_consensus_auth(auth);
  const auto schedule = default_probe_schedule(params);
  const std::uint64_t a =
      worst_observed_messages(params, wc, Value::bit(1), schedule);
  const std::uint64_t b =
      worst_observed_messages(params, wc, Value::bit(1), schedule);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ba::lowerbound
