// The streaming face of run_attack_sweep: SweepOptions::on_row plus
// service::OrderedNdjsonWriter must yield byte-identical NDJSON at every
// worker count (this is what `ba_cli sweep --out` and the campaign service
// are built on), and keep_rows=false must preserve the consistency verdict
// while dropping the O(grid) row memory.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ba.h"
#include "service/ndjson.h"

namespace ba::lowerbound {
namespace {

std::string streamed_ndjson(unsigned jobs, bool keep_rows,
                            SweepResult* result_out = nullptr) {
  std::string out;
  service::OrderedNdjsonWriter writer(
      [&](std::string_view line) {
        out.append(line);
        out.push_back('\n');
      });
  SweepOptions options;
  options.jobs = jobs;
  options.keep_rows = keep_rows;
  options.on_row = [&](std::size_t index, const SweepRow& row) {
    writer.put(index, encode_sweep_row_ndjson(row));
  };
  const SweepResult result =
      run_attack_sweep(standard_sweep_entries(), standard_sweep_grid(),
                       options);
  EXPECT_TRUE(writer.drained()) << "jobs=" << jobs;
  EXPECT_EQ(writer.emitted(), result.points);
  if (result_out != nullptr) *result_out = result;
  return out;
}

TEST(SweepStreaming, OnRowIsByteIdenticalAcrossWorkerCounts) {
  const std::string serial = streamed_ndjson(1, /*keep_rows=*/true);
  ASSERT_FALSE(serial.empty());
  for (const unsigned jobs : {2u, 4u}) {
    EXPECT_EQ(streamed_ndjson(jobs, /*keep_rows=*/true), serial)
        << "jobs=" << jobs;
  }
}

TEST(SweepStreaming, OnRowMatchesTheKeptRows) {
  SweepResult result;
  const std::string streamed = streamed_ndjson(2, /*keep_rows=*/true, &result);
  ASSERT_EQ(result.rows.size(), result.points);
  std::string from_rows;
  for (const SweepRow& row : result.rows) {
    from_rows += encode_sweep_row_ndjson(row);
    from_rows.push_back('\n');
  }
  EXPECT_EQ(streamed, from_rows);
}

TEST(SweepStreaming, DroppedRowsKeepTheVerdictAndCount) {
  SweepResult kept;
  const std::string with_rows = streamed_ndjson(2, /*keep_rows=*/true, &kept);
  SweepResult dropped;
  const std::string without_rows =
      streamed_ndjson(2, /*keep_rows=*/false, &dropped);
  EXPECT_EQ(without_rows, with_rows);
  EXPECT_TRUE(dropped.rows.empty());
  EXPECT_EQ(dropped.points, kept.points);
  EXPECT_EQ(dropped.theorem2_consistent(), kept.theorem2_consistent());
  EXPECT_TRUE(dropped.theorem2_consistent());
}

TEST(SweepStreaming, EncodedRowsAreSelfDescribing) {
  const auto entries = standard_sweep_entries();
  const std::vector<SystemParams> grid = {{12, 11}};
  const SweepResult result = run_attack_sweep(entries, grid);
  ASSERT_FALSE(result.rows.empty());
  const std::string line = encode_sweep_row_ndjson(result.rows.front());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"protocol\":"), std::string::npos);
  EXPECT_NE(line.find("\"n\":12"), std::string::npos);
  EXPECT_NE(line.find("\"t\":11"), std::string::npos);
  EXPECT_NE(line.find("\"messages\":"), std::string::npos);
  EXPECT_NE(line.find("\"bound\":"), std::string::npos);
  EXPECT_NE(line.find("\"violation\":"), std::string::npos);
}

}  // namespace
}  // namespace ba::lowerbound
