// Tests for the executable Dolev-Reischuk broadcast attack: sub-quadratic
// broadcast candidates fall to the cut construction with replay-verified
// certificates; Dolev-Strong's flooding makes it uncuttable.

#include "lowerbound/dolev_reischuk.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/signature.h"
#include "lowerbound/certificate.h"
#include "protocols/broadcast.h"
#include "protocols/dolev_strong.h"
#include "runtime/sync_system.h"

namespace ba::lowerbound {
namespace {

TEST(DolevReischuk, DirectBroadcastCandidateBroken) {
  SystemParams params{8, 3};
  auto protocol = protocols::bb_candidate_direct(0);
  BroadcastAttackReport report = attack_broadcast(
      params, protocol, 0, Value{"v0"}, Value{"v1"});
  ASSERT_TRUE(report.violation_found) << report.narrative;
  EXPECT_EQ(report.cut_size, 1u);  // the victim hears only the sender
  auto check = verify_certificate(*report.certificate, protocol);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(report.certificate->kind, ViolationKind::kAgreement);
}

TEST(DolevReischuk, DirectCandidateBrokenAcrossSizes) {
  for (std::uint32_t n : {5u, 12u, 24u}) {
    SystemParams params{n, 2};
    auto protocol = protocols::bb_candidate_direct(1);
    BroadcastAttackReport report = attack_broadcast(
        params, protocol, 1, Value::bit(0), Value::bit(1));
    ASSERT_TRUE(report.violation_found) << "n=" << n << "\n"
                                        << report.narrative;
    EXPECT_TRUE(verify_certificate(*report.certificate, protocol).ok);
  }
}

TEST(DolevReischuk, RelayRingCandidateBroken) {
  SystemParams params{10, 4};
  auto protocol = protocols::bb_candidate_relay_ring(0, 2);
  BroadcastAttackReport report = attack_broadcast(
      params, protocol, 0, Value{"a"}, Value{"b"});
  ASSERT_TRUE(report.violation_found) << report.narrative;
  // The victim hears from the sender + 2 ring predecessors.
  EXPECT_LE(report.cut_size, 3u);
  EXPECT_TRUE(verify_certificate(*report.certificate, protocol).ok);
}

TEST(DolevReischuk, DolevStrongIsUncuttable) {
  // With t < n - 1, every Dolev-Strong receiver hears from all n - 1 other
  // processes in the fault-free run (round-2 relays), so no cut fits the
  // fault budget.
  SystemParams params{8, 3};
  auto auth = std::make_shared<crypto::Authenticator>(88, 8);
  auto ds = protocols::dolev_strong_broadcast(auth, 0);
  BroadcastAttackReport report = attack_broadcast(
      params, ds, 0, Value{"v0"}, Value{"v1"});
  EXPECT_FALSE(report.violation_found) << report.narrative;
  EXPECT_EQ(report.min_in_neighbourhood, 7u);
  EXPECT_GT(report.fault_free_messages,
            static_cast<std::uint64_t>(params.t) * params.t / 4);
}

TEST(DolevReischuk, CertificateFaultBudgetRespected) {
  SystemParams params{12, 5};
  auto protocol = protocols::bb_candidate_relay_ring(0, 3);
  BroadcastAttackReport report = attack_broadcast(
      params, protocol, 0, Value::bit(0), Value::bit(1));
  if (report.violation_found) {
    EXPECT_LE(report.certificate->execution.faulty.size(), params.t);
    EXPECT_EQ(report.certificate->execution.validate(), std::nullopt);
  }
}

TEST(DolevReischuk, NarrativeExplainsFailureOnRobustProtocols) {
  SystemParams params{6, 2};
  auto auth = std::make_shared<crypto::Authenticator>(89, 6);
  auto ds = protocols::dolev_strong_broadcast(auth, 2);
  BroadcastAttackReport report = attack_broadcast(
      params, ds, 2, Value{"x"}, Value{"y"});
  EXPECT_FALSE(report.violation_found);
  EXPECT_NE(report.narrative.find("not cuttable"), std::string::npos)
      << report.narrative;
}

TEST(BroadcastCandidates, BehaveCorrectlyWithoutFaults) {
  // The candidates are honest-case-correct — that is what makes them
  // interesting targets rather than strawmen.
  SystemParams params{6, 2};
  for (auto factory : {protocols::bb_candidate_direct(0),
                       protocols::bb_candidate_relay_ring(0, 2)}) {
    std::vector<Value> proposals(6, Value{"noise"});
    proposals[0] = Value{"payload"};
    RunResult res = run_execution(params, factory, proposals,
                                  Adversary::none());
    for (ProcessId p = 0; p < 6; ++p) {
      ASSERT_TRUE(res.decisions[p].has_value());
      EXPECT_EQ(*res.decisions[p], Value{"payload"});
    }
  }
}

}  // namespace
}  // namespace ba::lowerbound
