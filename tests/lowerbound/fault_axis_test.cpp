// The sweep's fault axis: message-vs-fault curves per grid point, on both
// execution substrates, plus the byte-identity contract for legacy (axis-
// less) sweeps. The curves are the paper's point made measurable: the
// static bound stays Omega(t^2) at every actual-fault count f — observed
// cost never exceeds it, however few processes actually misbehave.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/ba.h"

namespace ba::lowerbound {
namespace {

SweepOptions axis_options(const char* kind) {
  SweepOptions options;
  options.fault_axis = faults::FaultSpec{};
  options.fault_axis->kind = *faults::find_fault_kind(kind);
  return options;
}

TEST(FaultAxis, ChartsOnePointPerFOnTheLockstepBackend) {
  const std::vector<SystemParams> grid = {{12, 11}};
  const SweepResult result =
      run_attack_sweep(standard_sweep_entries(), grid, axis_options("isolate"));
  EXPECT_EQ(result.fault_axis, "isolate:0");
  ASSERT_EQ(result.rows.size(), 4u);
  for (const SweepRow& row : result.rows) {
    // One curve point per f in 0..t, in order.
    ASSERT_EQ(row.fault_curve.size(), row.params.t + 1u) << row.protocol_name;
    for (std::uint32_t f = 0; f <= row.params.t; ++f) {
      const FaultCurvePoint& point = row.fault_curve[f];
      EXPECT_EQ(point.f, f);
      // The acceptance criterion: observed <= static bound at EVERY f.
      if (point.static_bound_f) {
        EXPECT_LE(point.messages, *point.static_bound_f)
            << row.protocol_name << " f=" << f;
      }
    }
    // The f = t bound equals the row's worst-case static bound (no
    // registered CommSpec weakens with f).
    if (row.static_bound) {
      EXPECT_EQ(row.fault_curve.back().static_bound_f, row.static_bound)
          << row.protocol_name;
    }
  }
}

TEST(FaultAxis, HoldsOnTheSimBackendToo) {
  SweepOptions options = axis_options("crash");
  options.attack.backend = engine::Registry::global().make(
      *engine::parse_backend_spec("sim:sync,1"));
  const std::vector<SystemParams> grid = {{12, 11}};
  const SweepResult result =
      run_attack_sweep(standard_sweep_entries(), grid, options);
  for (const SweepRow& row : result.rows) {
    ASSERT_EQ(row.fault_curve.size(), row.params.t + 1u) << row.protocol_name;
    for (const FaultCurvePoint& point : row.fault_curve) {
      if (point.static_bound_f) {
        EXPECT_LE(point.messages, *point.static_bound_f)
            << row.protocol_name << " f=" << point.f;
      }
    }
  }
}

TEST(FaultAxis, CurveIsDeterministicAcrossWorkerCounts) {
  const std::vector<SystemParams> grid = {{12, 11}};
  SweepOptions serial = axis_options("isolate");
  SweepOptions pooled = axis_options("isolate");
  pooled.jobs = 2;
  const SweepResult a =
      run_attack_sweep(standard_sweep_entries(), grid, serial);
  const SweepResult b =
      run_attack_sweep(standard_sweep_entries(), grid, pooled);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(encode_sweep_row_ndjson(a.rows[i]),
              encode_sweep_row_ndjson(b.rows[i]));
  }
}

TEST(FaultAxis, NonSweepableKindsAreRejected) {
  const std::vector<SystemParams> grid = {{12, 11}};
  try {
    (void)run_attack_sweep(standard_sweep_entries(), grid,
                           axis_options("fault-free"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "sweep fault axis 'fault-free': want a sweepable fault kind "
                 "(crash mute isolate silent-byz noise-byz)");
  }
  EXPECT_THROW((void)run_attack_sweep(standard_sweep_entries(), grid,
                                      axis_options("random-omissions")),
               std::runtime_error);
}

TEST(FaultAxis, LegacySweepRowsStayByteIdentical) {
  // Golden NDJSON captured from the pre-fault-axis sweep binary
  // (`ba_cli sweep --jobs 1 --grid 12:11 --out`): an axis-less sweep must
  // reproduce these bytes exactly — no fault_curve field, same field order.
  const std::vector<std::string> golden = {
      R"({"protocol":"silent-default","n":12,"t":11,"messages":0,"bound":3,"static_bound":0,"violation":true,"kind":"WeakValidity","certificate_verified":true,"certificate_bytes":1200})",
      R"({"protocol":"leader-beacon","n":12,"t":11,"messages":11,"bound":3,"static_bound":11,"violation":true,"kind":"Agreement","certificate_verified":true,"certificate_bytes":3118})",
      R"({"protocol":"gossip-ring-2","n":12,"t":11,"messages":72,"bound":3,"static_bound":72,"violation":true,"kind":"Agreement","certificate_verified":true,"certificate_bytes":11756})",
      R"({"protocol":"dolev-strong-weak","n":12,"t":11,"messages":132,"bound":3,"static_bound":275,"violation":false,"kind":"","certificate_verified":false,"certificate_bytes":0})",
  };
  const std::vector<SystemParams> grid = {{12, 11}};
  const SweepResult result =
      run_attack_sweep(standard_sweep_entries(), grid, SweepOptions{});
  ASSERT_EQ(result.rows.size(), golden.size());
  EXPECT_TRUE(result.fault_axis.empty());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(encode_sweep_row_ndjson(result.rows[i]), golden[i]);
  }
}

TEST(FaultAxis, NdjsonCarriesTheCurveOnlyWhenSwept) {
  SweepRow row;
  row.protocol_name = "x";
  row.params = {4, 1};
  const std::string bare = encode_sweep_row_ndjson(row);
  EXPECT_EQ(bare.find("fault_curve"), std::string::npos);

  row.fault_curve.push_back({0, 5, 7, true});
  row.fault_curve.push_back({1, 6, std::nullopt, false});
  EXPECT_EQ(
      encode_sweep_row_ndjson(row).substr(bare.size() - 1),
      R"(,"fault_curve":[{"f":0,"messages":5,"static_bound_f":7,"agree":true},)"
      R"({"f":1,"messages":6,"static_bound_f":null,"agree":false}]})");
}

}  // namespace
}  // namespace ba::lowerbound
