#include "lowerbound/sweep.h"

#include "protocols/weak_consensus.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ba::lowerbound {
namespace {

TEST(Sweep, StandardEntriesConsistentWithTheorem2) {
  auto result = run_attack_sweep(standard_sweep_entries(),
                                 {{12, 11}, {16, 15}});
  ASSERT_EQ(result.rows.size(), 8u);
  EXPECT_TRUE(result.theorem2_consistent());
  for (const SweepRow& row : result.rows) {
    if (row.protocol_name == "dolev-strong-weak") {
      EXPECT_FALSE(row.violation) << "n=" << row.params.n;
      EXPECT_GE(row.max_messages, row.bound);
    } else {
      EXPECT_TRUE(row.violation) << row.protocol_name;
      EXPECT_TRUE(row.certificate_verified) << row.protocol_name;
      EXPECT_FALSE(row.violation_kind.empty());
    }
  }
}

TEST(Sweep, MarkdownRendering) {
  std::vector<SweepEntry> entries;
  entries.push_back({"silent-default", [](const SystemParams&) {
                       return protocols::wc_candidate_silent(1);
                     }});
  auto result = run_attack_sweep(entries, {{12, 11}});
  std::ostringstream os;
  write_markdown(os, result);
  const std::string md = os.str();
  EXPECT_NE(md.find("| protocol | n | t |"), std::string::npos);
  EXPECT_NE(md.find("| silent-default | 12 | 11 |"), std::string::npos);
  EXPECT_NE(md.find("WeakValidity violation (verified)"), std::string::npos);
}

TEST(Sweep, ConsistencyFlagCatchesFabricatedRows) {
  SweepResult r;
  SweepRow bad;
  bad.violation = true;
  bad.certificate_verified = false;  // broken but unverified
  r.rows.push_back(bad);
  EXPECT_FALSE(r.theorem2_consistent());

  SweepResult r2;
  SweepRow cheap;
  cheap.violation = false;
  cheap.max_messages = 1;
  cheap.bound = 10;  // "survives" below the bound: inconsistent
  r2.rows.push_back(cheap);
  EXPECT_FALSE(r2.theorem2_consistent());
}

}  // namespace
}  // namespace ba::lowerbound
