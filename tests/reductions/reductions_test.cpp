// Tests for Algorithm 1 (weak consensus from any non-trivial problem),
// Algorithm 2 (any CC problem from interactive consistency), the classical
// reductions, and the zero-extra-message property (Lemma 18).

#include <gtest/gtest.h>

#include <memory>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "protocols/dolev_strong.h"
#include "protocols/eig.h"
#include "protocols/interactive_consistency.h"
#include "protocols/phase_king.h"
#include "reductions/classic.h"
#include "reductions/from_ic.h"
#include "reductions/weak_from_any.h"
#include "runtime/sync_system.h"
#include "validity/properties.h"
#include "validity/solvability.h"

namespace ba::reductions {
namespace {

void expect_weak_consensus_fault_free(const ProtocolFactory& wc,
                                      const SystemParams& params,
                                      const char* label) {
  for (int b : {0, 1}) {
    RunResult res = run_all_correct(params, wc, Value::bit(b));
    for (ProcessId p = 0; p < params.n; ++p) {
      ASSERT_TRUE(res.decisions[p].has_value()) << label;
      EXPECT_EQ(*res.decisions[p], Value::bit(b)) << label << " b=" << b;
    }
  }
}

TEST(Algorithm1, WeakFromStrongConsensus) {
  SystemParams params{4, 1};
  auto problem = validity::strong_validity(4, 1);
  std::string error;
  auto rp = derive_reduction_params(problem, params,
                                    protocols::phase_king_consensus(),
                                    &error);
  ASSERT_TRUE(rp.has_value()) << error;
  EXPECT_EQ(rp->v0, Value::bit(0));
  // c_1* forces something other than v0: a uniform-1-ish config.
  EXPECT_FALSE(problem.admissible(rp->c1_star, rp->v0));

  auto wc = weak_consensus_from_any(protocols::phase_king_consensus(), *rp);
  expect_weak_consensus_fault_free(wc, params, "weak-from-strong");
}

TEST(Algorithm1, WeakFromInteractiveConsistency) {
  SystemParams params{4, 1};
  auto problem = validity::ic_validity(4, 1);
  std::string error;
  auto rp = derive_reduction_params(problem, params,
                                    protocols::eig_interactive_consistency(),
                                    &error);
  ASSERT_TRUE(rp.has_value()) << error;
  auto wc = weak_consensus_from_any(protocols::eig_interactive_consistency(),
                                    *rp);
  expect_weak_consensus_fault_free(wc, params, "weak-from-ic");
}

TEST(Algorithm1, WeakFromByzantineBroadcast) {
  SystemParams params{4, 2};
  auto auth = std::make_shared<crypto::Authenticator>(31, 4);
  auto bb = protocols::dolev_strong_broadcast(auth, 0);
  auto problem = validity::sender_validity(4, 2, 0);
  std::string error;
  auto rp = derive_reduction_params(problem, params, bb, &error);
  ASSERT_TRUE(rp.has_value()) << error;
  auto wc = weak_consensus_from_any(bb, *rp);
  expect_weak_consensus_fault_free(wc, params, "weak-from-bb");
}

TEST(Algorithm1, ZeroExtraMessages) {
  // Lemma 18: the reduction's message complexity equals the solver's.
  SystemParams params{4, 1};
  auto problem = validity::strong_validity(4, 1);
  auto rp = derive_reduction_params(problem, params,
                                    protocols::phase_king_consensus());
  ASSERT_TRUE(rp.has_value());
  auto wc = weak_consensus_from_any(protocols::phase_king_consensus(), *rp);

  for (int b : {0, 1}) {
    const validity::InputConfig& c = b == 0 ? rp->c0 : rp->c1;
    std::vector<Value> direct_proposals(params.n);
    for (ProcessId p = 0; p < params.n; ++p) direct_proposals[p] = *c[p];
    RunResult direct =
        run_execution(params, protocols::phase_king_consensus(),
                      direct_proposals, Adversary::none());
    RunResult reduced = run_all_correct(params, wc, Value::bit(b));
    EXPECT_EQ(reduced.messages_sent_by_correct,
              direct.messages_sent_by_correct);
  }
}

TEST(Algorithm1, AgreementInheritedUnderFaults) {
  SystemParams params{7, 2};
  auto problem = validity::strong_validity(7, 2);
  auto rp = derive_reduction_params(problem, params,
                                    protocols::phase_king_consensus());
  ASSERT_TRUE(rp.has_value());
  auto wc = weak_consensus_from_any(protocols::phase_king_consensus(), *rp);

  Adversary adv;
  adv.faulty = ProcessSet{{3, 6}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_noise(55, 30);
  std::vector<Value> proposals{Value::bit(0), Value::bit(1), Value::bit(0),
                               Value::bit(1), Value::bit(1), Value::bit(0),
                               Value::bit(0)};
  RunResult res = run_execution(params, wc, proposals, adv);
  std::optional<Value> first;
  for (ProcessId p : adv.faulty.complement(7)) {
    ASSERT_TRUE(res.decisions[p].has_value());
    if (!first) first = res.decisions[p];
    EXPECT_EQ(*res.decisions[p], *first);
  }
}

TEST(Algorithm1, RejectsTrivialProblem) {
  SystemParams params{4, 1};
  auto trivial = validity::constant_validity(4, 1);
  // A solver for the trivial problem: phase king works (its decisions are
  // always admissible).
  std::string error;
  auto rp = derive_reduction_params(trivial, params,
                                    protocols::phase_king_consensus(),
                                    &error);
  // Phase king decides 0 in E_0, and 0 is admissible everywhere under the
  // constant property, so no c_1* exists.
  EXPECT_FALSE(rp.has_value());
  EXPECT_NE(error.find("trivial"), std::string::npos);
}

TEST(Algorithm2, StrongConsensusFromAuthIC) {
  SystemParams params{4, 1};
  auto auth = std::make_shared<crypto::Authenticator>(8, 4);
  auto solver = agreement_from_ic(
      validity::strong_validity(4, 1), params,
      protocols::auth_interactive_consistency(auth));

  // Strong validity fault-free: unanimous value decided.
  for (int b : {0, 1}) {
    RunResult res = run_all_correct(params, solver, Value::bit(b));
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_EQ(*res.decisions[p], Value::bit(b));
    }
  }
}

TEST(Algorithm2, StrongValidityHoldsWithByzantineFault) {
  SystemParams params{4, 1};
  auto auth = std::make_shared<crypto::Authenticator>(9, 4);
  auto solver = agreement_from_ic(
      validity::strong_validity(4, 1), params,
      protocols::auth_interactive_consistency(auth));
  Adversary adv;
  adv.faulty = ProcessSet{{2}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(3);
  RunResult res = run_execution(params, solver,
                                std::vector<Value>(4, Value::bit(1)), adv);
  for (ProcessId p : {0u, 1u, 3u}) {
    EXPECT_EQ(*res.decisions[p], Value::bit(1));
  }
}

TEST(Algorithm2, UnauthenticatedViaEig) {
  SystemParams params{4, 1};
  auto solver = agreement_from_ic(validity::strong_validity(4, 1), params,
                                  protocols::eig_interactive_consistency());
  for (int b : {0, 1}) {
    RunResult res = run_all_correct(params, solver, Value::bit(b));
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_EQ(*res.decisions[p], Value::bit(b));
    }
  }
}

TEST(Algorithm2, AnyProposedValidityEndToEnd) {
  SystemParams params{5, 2};
  auto auth = std::make_shared<crypto::Authenticator>(10, 5);
  auto problem = validity::any_proposed_validity(5, 2);
  ASSERT_TRUE(validity::satisfies_cc(problem, 5, 2));
  auto solver = agreement_from_ic(
      problem, params, protocols::auth_interactive_consistency(auth));
  std::vector<Value> proposals{Value::bit(0), Value::bit(0), Value::bit(1),
                               Value::bit(0), Value::bit(1)};
  RunResult res = run_execution(params, solver, proposals, Adversary::none());
  auto d = res.unanimous_correct_decision();
  ASSERT_TRUE(d.has_value());
  // Must be a value someone proposed — both bits were, so just agreement +
  // admissibility.
  EXPECT_TRUE(*d == Value::bit(0) || *d == Value::bit(1));
}

TEST(ClassicReductions, WeakFromStrongIsIdentity) {
  SystemParams params{4, 1};
  auto wc = weak_from_strong(protocols::phase_king_consensus());
  expect_weak_consensus_fault_free(wc, params, "weak-from-strong-classic");
}

TEST(ClassicReductions, StrongFromBroadcasts) {
  SystemParams params{4, 2};
  auto auth = std::make_shared<crypto::Authenticator>(12, 4);
  auto strong = strong_from_broadcasts([auth](ProcessId sender) {
    return protocols::dolev_strong_broadcast(auth, sender, sender);
  });
  for (int b : {0, 1}) {
    RunResult res = run_all_correct(params, strong, Value::bit(b));
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_EQ(*res.decisions[p], Value::bit(b)) << "b=" << b;
    }
  }
}

}  // namespace
}  // namespace ba::reductions
