// Tests for §5: the containment condition, triviality, the general
// solvability theorem (Theorem 4), and the Theorem 5 corollary for strong
// consensus. Also cross-checks every canned property's closed-form Γ against
// the generic enumerator.

#include "validity/solvability.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "validity/properties.h"

namespace ba::validity {
namespace {

void cross_check_gamma(const ValidityProperty& p, std::uint32_t n,
                       std::uint32_t t) {
  for_each_input_config(n, t, p.input_domain, [&](const InputConfig& c) {
    auto slow = gamma(p, t, c);
    auto fast = p.gamma_fast(c);
    EXPECT_EQ(slow.has_value(), fast.has_value())
        << p.name << " at " << c.to_value();
    if (slow && fast) {
      // Both picks must lie in the containment intersection (they may be
      // different members).
      auto inter = containment_intersection(p, t, c);
      EXPECT_NE(std::find(inter.begin(), inter.end(), *fast), inter.end())
          << p.name << " fast-gamma outside intersection at " << c.to_value();
    }
    return true;
  });
}

TEST(Gamma, FastPathsAgreeWithEnumeration) {
  cross_check_gamma(weak_validity(4, 2), 4, 2);
  cross_check_gamma(strong_validity(4, 2), 4, 2);
  cross_check_gamma(strong_validity(5, 2), 5, 2);
  cross_check_gamma(sender_validity(4, 2, 0), 4, 2);
  cross_check_gamma(sender_validity(4, 2, 3), 4, 2);
  cross_check_gamma(ic_validity(3, 1), 3, 1);
  cross_check_gamma(any_proposed_validity(4, 1), 4, 1);
  cross_check_gamma(any_proposed_validity(4, 2), 4, 2);
  cross_check_gamma(any_proposed_validity(5, 2, int_domain(3)), 5, 2);
  cross_check_gamma(constant_validity(4, 2), 4, 2);
}

TEST(Triviality, ConstantIsTrivialOthersAreNot) {
  EXPECT_TRUE(is_trivial(constant_validity(4, 1), 4, 1));
  EXPECT_FALSE(is_trivial(weak_validity(4, 1), 4, 1));
  EXPECT_FALSE(is_trivial(strong_validity(4, 1), 4, 1));
  EXPECT_FALSE(is_trivial(sender_validity(4, 1, 0), 4, 1));
  EXPECT_FALSE(is_trivial(ic_validity(3, 1), 3, 1));
  EXPECT_FALSE(is_trivial(any_proposed_validity(4, 1), 4, 1));
}

TEST(ContainmentCondition, WeakValidityAlwaysSatisfiesCC) {
  EXPECT_TRUE(satisfies_cc(weak_validity(4, 1), 4, 1));
  EXPECT_TRUE(satisfies_cc(weak_validity(4, 3), 4, 3));  // even n <= 2t
  EXPECT_TRUE(satisfies_cc(weak_validity(5, 4), 5, 4));
}

TEST(ContainmentCondition, SenderAndIcAlwaysSatisfyCC) {
  EXPECT_TRUE(satisfies_cc(sender_validity(4, 3, 0), 4, 3));
  EXPECT_TRUE(satisfies_cc(sender_validity(4, 3, 2), 4, 3));
  EXPECT_TRUE(satisfies_cc(ic_validity(3, 2), 3, 2));
  EXPECT_TRUE(satisfies_cc(ic_validity(4, 3), 4, 3));
}

TEST(ContainmentCondition, StrongConsensusThresholdAtTwoT) {
  // Theorem 5: strong consensus satisfies CC iff n > 2t.
  EXPECT_TRUE(satisfies_cc(strong_validity(5, 2), 5, 2));
  EXPECT_TRUE(satisfies_cc(strong_validity(3, 1), 3, 1));
  EXPECT_FALSE(satisfies_cc(strong_validity(4, 2), 4, 2));
  EXPECT_FALSE(satisfies_cc(strong_validity(2, 1), 2, 1));
  EXPECT_FALSE(satisfies_cc(strong_validity(6, 3), 6, 3));
}

TEST(ContainmentCondition, Theorem5WitnessIsTheHalfHalfSplit) {
  InputConfig witness;
  ASSERT_FALSE(satisfies_cc(strong_validity(4, 2), 4, 2, &witness));
  // The failing configuration must contain both a uniform-0 and a uniform-1
  // contained configuration of size >= n - t = 2.
  std::size_t zeros = 0, ones = 0;
  for (std::size_t i = 0; i < witness.n(); ++i) {
    if (witness[i].has_value()) {
      (*witness[i] == Value::bit(0) ? zeros : ones) += 1;
    }
  }
  EXPECT_GE(zeros, 2u);
  EXPECT_GE(ones, 2u);
}

TEST(ContainmentCondition, AnyProposedThresholds) {
  // Binary: CC iff n > 2t.
  EXPECT_TRUE(satisfies_cc(any_proposed_validity(5, 2), 5, 2));
  EXPECT_FALSE(satisfies_cc(any_proposed_validity(4, 2), 4, 2));
  // Ternary domain at n = 6, t = 2: the 2/2/2 full configuration defeats Γ
  // even though n > 2t.
  EXPECT_FALSE(
      satisfies_cc(any_proposed_validity(6, 2, int_domain(3)), 6, 2));
  // ... but n = 7, t = 2 ternary is fine (some value always survives).
  EXPECT_TRUE(satisfies_cc(any_proposed_validity(7, 2, int_domain(3)), 7, 2));
}

TEST(Solvability, Theorem4Verdicts) {
  // Strong consensus n = 7, t = 2: CC holds, n > 3t: solvable everywhere.
  auto v = solvability(strong_validity(7, 2), 7, 2);
  EXPECT_FALSE(v.trivial);
  EXPECT_TRUE(v.cc);
  EXPECT_TRUE(v.authenticated_solvable);
  EXPECT_TRUE(v.unauthenticated_solvable);

  // Strong consensus n = 5, t = 2: CC holds, n <= 3t: authenticated only.
  v = solvability(strong_validity(5, 2), 5, 2);
  EXPECT_TRUE(v.cc);
  EXPECT_TRUE(v.authenticated_solvable);
  EXPECT_FALSE(v.unauthenticated_solvable);

  // Strong consensus n = 4, t = 2: CC fails: unsolvable everywhere.
  v = solvability(strong_validity(4, 2), 4, 2);
  EXPECT_FALSE(v.cc);
  EXPECT_FALSE(v.authenticated_solvable);
  EXPECT_FALSE(v.unauthenticated_solvable);
  EXPECT_TRUE(v.cc_witness.has_value());

  // Byzantine broadcast n = 4, t = 3: any resilience, authenticated.
  v = solvability(sender_validity(4, 3, 0), 4, 3);
  EXPECT_TRUE(v.authenticated_solvable);
  EXPECT_FALSE(v.unauthenticated_solvable);  // n <= 3t

  // Trivial problem: solvable everywhere (zero messages).
  v = solvability(constant_validity(4, 3), 4, 3);
  EXPECT_TRUE(v.trivial);
  EXPECT_TRUE(v.authenticated_solvable);
  EXPECT_TRUE(v.unauthenticated_solvable);
}

TEST(Solvability, SummaryStringsReadable) {
  auto v = solvability(strong_validity(4, 2), 4, 2);
  EXPECT_NE(v.summary().find("CC fails"), std::string::npos);
  EXPECT_NE(v.summary().find("UNSOLVABLE"), std::string::npos);
}

TEST(ContainmentIntersection, MatchesLemma7Shape) {
  // Weak validity, full uniform-0 configuration: only 0 survives.
  auto p = weak_validity(4, 1);
  auto inter =
      containment_intersection(p, 1, InputConfig::uniform(4, Value::bit(0)));
  ASSERT_EQ(inter.size(), 1u);
  EXPECT_EQ(inter[0], Value::bit(0));

  // Weak validity, full mixed configuration: everything survives (only the
  // full uniform execution is constrained, and it is not contained here).
  inter = containment_intersection(
      p, 1,
      InputConfig::full({Value::bit(0), Value::bit(1), Value::bit(0),
                         Value::bit(0)}));
  EXPECT_EQ(inter.size(), 2u);
}

}  // namespace
}  // namespace ba::validity
