#include "validity/input_config.h"

#include <gtest/gtest.h>

#include <set>

namespace ba::validity {
namespace {

InputConfig cfg(std::vector<std::optional<Value>> slots) {
  return InputConfig{std::move(slots)};
}

TEST(InputConfig, BasicAccessors) {
  InputConfig c = cfg({Value{1}, std::nullopt, Value{3}});
  EXPECT_EQ(c.n(), 3u);
  EXPECT_EQ(c.num_correct(), 2u);
  EXPECT_FALSE(c.is_full());
  EXPECT_EQ(c.correct(), ProcessSet({0, 2}));
  EXPECT_EQ(*c[0], Value{1});
  EXPECT_FALSE(c[1].has_value());
}

TEST(InputConfig, UniformAndFull) {
  InputConfig c = InputConfig::uniform(4, Value::bit(1));
  EXPECT_TRUE(c.is_full());
  EXPECT_EQ(c.uniform_value(), Value::bit(1));
  InputConfig mixed = InputConfig::full({Value{0}, Value{1}});
  EXPECT_EQ(mixed.uniform_value(), std::nullopt);
}

TEST(InputConfig, ContainmentRelation) {
  // The paper's example (§4.2): with n = 3, [(p0,v0),(p1,v1),(p2,v2)]
  // contains [(p0,v0),(p2,v2)] but not [(p0,v0),(p2,v2')].
  InputConfig full3 = InputConfig::full({Value{"v0"}, Value{"v1"},
                                         Value{"v2"}});
  InputConfig sub = cfg({Value{"v0"}, std::nullopt, Value{"v2"}});
  InputConfig sub_bad = cfg({Value{"v0"}, std::nullopt, Value{"v2'"}});
  EXPECT_TRUE(full3.contains(sub));
  EXPECT_FALSE(full3.contains(sub_bad));
  EXPECT_FALSE(sub.contains(full3));  // containment cannot add processes
  EXPECT_TRUE(full3.contains(full3));  // reflexive
  EXPECT_TRUE(sub.contains(sub));
}

TEST(InputConfig, RestrictTo) {
  InputConfig full3 = InputConfig::full({Value{0}, Value{1}, Value{2}});
  InputConfig r = full3.restrict_to(ProcessSet{{0, 2}});
  EXPECT_EQ(r.num_correct(), 2u);
  EXPECT_TRUE(full3.contains(r));
  EXPECT_EQ(*r[2], Value{2});
  EXPECT_FALSE(r[1].has_value());
}

TEST(InputConfig, ValueRoundTrip) {
  InputConfig c = cfg({Value{7}, std::nullopt, Value{"x"}});
  auto back = InputConfig::from_value(c.to_value());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, c);
  EXPECT_EQ(InputConfig::from_value(Value{"junk"}), std::nullopt);
}

TEST(ForEachContained, EnumeratesExactlyCnt) {
  // n = 4, t = 2, c full: Cnt(c) = all restrictions keeping >= 2 slots:
  // C(4,4) + C(4,3) + C(4,2) = 1 + 4 + 6 = 11.
  InputConfig c = InputConfig::uniform(4, Value::bit(0));
  std::set<InputConfig> seen;
  for_each_contained(c, 2, [&](const InputConfig& sub) {
    EXPECT_TRUE(c.contains(sub));
    EXPECT_GE(sub.num_correct(), 2u);
    seen.insert(sub);
    return true;
  });
  EXPECT_EQ(seen.size(), 11u);
}

TEST(ForEachContained, PartialConfigsEnumerateFromTheirSize) {
  // n = 4, t = 2, |pi(c)| = 3: subsets of size 2 or 3: C(3,3)+C(3,2) = 4.
  InputConfig c = cfg({Value{0}, Value{0}, Value{0}, std::nullopt});
  int count = 0;
  for_each_contained(c, 2, [&](const InputConfig&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 4);
}

TEST(ForEachContained, EarlyStop) {
  InputConfig c = InputConfig::uniform(4, Value::bit(0));
  int count = 0;
  bool completed = for_each_contained(c, 2, [&](const InputConfig&) {
    return ++count < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 3);
}

TEST(ForEachInputConfig, CountsMatchFormula) {
  // n = 3, t = 1, binary: C(3,2)*4 + C(3,3)*8 = 12 + 8 = 20.
  std::vector<Value> domain{Value::bit(0), Value::bit(1)};
  std::set<InputConfig> seen;
  for_each_input_config(3, 1, domain, [&](const InputConfig& c) {
    EXPECT_GE(c.num_correct(), 2u);
    seen.insert(c);
    return true;
  });
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(count_input_configs(3, 1, 2), 20u);
}

TEST(ForEachInputConfig, LargerCounts) {
  EXPECT_EQ(count_input_configs(4, 2, 2), 6 * 4 + 4 * 8 + 16u);  // 72
  std::size_t count = 0;
  for_each_input_config(4, 2, {Value::bit(0), Value::bit(1)},
                        [&](const InputConfig&) {
                          ++count;
                          return true;
                        });
  EXPECT_EQ(count, 72u);
  // Ternary domain.
  EXPECT_EQ(count_input_configs(3, 1, 3), 3 * 9 + 27u);
}

TEST(ForEachInputConfig, TZeroEnumeratesOnlyFullConfigs) {
  std::size_t count = 0;
  for_each_input_config(3, 0, {Value::bit(0), Value::bit(1)},
                        [&](const InputConfig& c) {
                          EXPECT_TRUE(c.is_full());
                          ++count;
                          return true;
                        });
  EXPECT_EQ(count, 8u);
}

}  // namespace
}  // namespace ba::validity
