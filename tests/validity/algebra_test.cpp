// Tests for the validity-property algebra: the pointwise weaker-than order
// (weak consensus sits at the bottom of the non-trivial binary problems),
// conjunction, and the operational reduction order of §4.2.

#include "validity/algebra.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/signature.h"
#include "protocols/dolev_strong.h"
#include "protocols/phase_king.h"
#include "runtime/sync_system.h"
#include "reductions/weak_from_any.h"
#include "validity/properties.h"
#include "validity/solvability.h"

namespace ba::validity {
namespace {

constexpr std::uint32_t kN = 4;
constexpr std::uint32_t kT = 1;

TEST(Algebra, WeakIsWeakerThanStrong) {
  auto weak = weak_validity(kN, kT);
  auto strong = strong_validity(kN, kT);
  EXPECT_TRUE(is_weaker_equal(weak, strong, kN, kT));
  EXPECT_FALSE(is_weaker_equal(strong, weak, kN, kT));
}

TEST(Algebra, WeakIsWeakerThanSenderAndAnyProposed) {
  auto weak = weak_validity(kN, kT);
  // Sender validity has an extra bottom symbol in V_O; compare over the
  // shared binary core by constructing sender validity on the bit domain
  // only when the sender slot forces a bit.
  auto any = any_proposed_validity(kN, kT);
  EXPECT_TRUE(is_weaker_equal(weak, any, kN, kT));
  EXPECT_FALSE(is_weaker_equal(any, weak, kN, kT));
}

TEST(Algebra, ConstantIsWeakestOfAll) {
  auto constant = constant_validity(kN, kT);
  for (const auto& p :
       {weak_validity(kN, kT), strong_validity(kN, kT),
        any_proposed_validity(kN, kT)}) {
    EXPECT_TRUE(is_weaker_equal(constant, p, kN, kT)) << p.name;
    EXPECT_FALSE(is_weaker_equal(p, constant, kN, kT)) << p.name;
  }
}

TEST(Algebra, OrderIsReflexive) {
  for (const auto& p :
       {weak_validity(kN, kT), strong_validity(kN, kT),
        constant_validity(kN, kT)}) {
    EXPECT_TRUE(is_weaker_equal(p, p, kN, kT)) << p.name;
  }
}

TEST(Algebra, ConjunctionOfWeakAndAnyProposed) {
  auto conj = conjunction(weak_validity(kN, kT),
                          any_proposed_validity(kN, kT));
  // Still a proper validity property (nonempty everywhere): any-proposed
  // always offers a proposed value, and weak only constrains the unanimous
  // full configuration — where the unanimous value IS proposed.
  EXPECT_FALSE(has_empty_admissible_set(conj, kN, kT));
  // The conjunction is at least as strong as both conjuncts.
  EXPECT_TRUE(is_weaker_equal(weak_validity(kN, kT), conj, kN, kT));
  EXPECT_TRUE(is_weaker_equal(any_proposed_validity(kN, kT), conj, kN, kT));
  // And it is solvable: CC holds at n = 4 > 2t = 2.
  EXPECT_TRUE(satisfies_cc(conj, kN, kT));
}

TEST(Algebra, ContradictoryConjunctionDetected) {
  // "always decide 0" AND "always decide 1" has empty admissible sets.
  ValidityProperty zero;
  zero.name = "always-0";
  zero.input_domain = binary_domain();
  zero.output_domain = binary_domain();
  zero.admissible = [](const InputConfig&, const Value& v) {
    return v == Value::bit(0);
  };
  ValidityProperty one = zero;
  one.name = "always-1";
  one.admissible = [](const InputConfig&, const Value& v) {
    return v == Value::bit(1);
  };
  InputConfig witness;
  EXPECT_TRUE(has_empty_admissible_set(conjunction(zero, one), kN, kT,
                                       &witness));
}

TEST(Algebra, PointwiseWeakerImpliesSolverReuse) {
  // strong consensus solver (phase king) IS a weak consensus solver: every
  // execution's decisions stay admissible under the weaker property.
  // (Spot check over all full binary proposal vectors.)
  auto weak = weak_validity(kN, kT);
  SystemParams params{kN, kT};
  for (int mask = 0; mask < 16; ++mask) {
    std::vector<Value> proposals(4);
    for (int i = 0; i < 4; ++i) proposals[i] = Value::bit((mask >> i) & 1);
    ba::RunResult res = ba::run_execution(params, protocols::phase_king_consensus(),
                                  proposals, Adversary::none());
    InputConfig c = InputConfig::full(proposals);
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_TRUE(weak.admissible(c, *res.decisions[p])) << "mask=" << mask;
    }
  }
}

TEST(Algebra, ReductionOrderCoversIncomparableProblems) {
  // Sender validity (with its bottom symbol) is not pointwise comparable to
  // weak consensus — but Algorithm 1 still reduces weak consensus to it
  // (§4.2: weak consensus is the weakest in the REDUCTION order).
  SystemParams params{4, 2};
  auto auth = std::make_shared<crypto::Authenticator>(11, 4);
  auto bb = protocols::dolev_strong_broadcast(auth, 0);
  std::string error;
  auto rp = reductions::derive_reduction_params(sender_validity(4, 2, 0),
                                                params, bb, &error);
  EXPECT_TRUE(rp.has_value()) << error;
}

}  // namespace
}  // namespace ba::validity
