// Enforces the EXPERIMENTS.md claims: every "shape" the repo documents as
// reproduced is asserted here, so the benches and the write-up cannot drift
// from the code. (E4/E7/E10 shapes are enforced by attack_grid_test,
// solvability_test and sweep_test; this file covers the rest.)

#include <gtest/gtest.h>

#include <memory>

#include "core/ba.h"
#include "protocols/common.h"

namespace ba {
namespace {

// ---- E1: Figure 1 divergence pattern -----------------------------------

class FloodSum final : public protocols::DecidingProcess {
 public:
  explicit FloodSum(const ProcessContext& ctx)
      : ctx_(ctx), sum_(ctx.proposal.try_bit().value_or(0)) {}
  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r <= ctx_.params.t + 1) {
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != ctx_.self) out.push_back(Outgoing{p, Value{sum_}});
      }
    }
    return out;
  }
  void deliver(Round r, const Inbox& inbox) override {
    for (const Message& m : inbox) {
      sum_ += m.payload.is_int() ? m.payload.as_int() : 0;
    }
    sum_ += 1;
    if (r == ctx_.params.t + 1) decide(Value{sum_});
  }

 private:
  ProcessContext ctx_;
  std::int64_t sum_;
};

Round first_send_divergence(const ExecutionTrace& a, const ExecutionTrace& b,
                            ProcessId p) {
  const std::size_t rounds =
      std::max(a.procs[p].rounds.size(), b.procs[p].rounds.size());
  for (std::size_t r = 0; r < rounds; ++r) {
    static const std::vector<Message> kEmpty;
    const auto& sa =
        r < a.procs[p].rounds.size() ? a.procs[p].rounds[r].sent : kEmpty;
    const auto& sb =
        r < b.procs[p].rounds.size() ? b.procs[p].rounds[r].sent : kEmpty;
    if (sa != sb) return static_cast<Round>(r + 1);
  }
  return 0;
}

TEST(ExperimentsE1, IsolationPropagatesAtRPlus1AndRPlus2) {
  SystemParams params{12, 6};
  ProtocolFactory flood = [](const ProcessContext& ctx) -> std::unique_ptr<Process> {
    return std::make_unique<FloodSum>(ctx);
  };
  const ProcessSet g = ProcessSet::range(10, 12);
  ExecutionTrace e0 = run_all_correct(params, flood, Value::bit(1)).trace;
  for (Round r : {1u, 2u, 3u}) {
    std::vector<Value> proposals(12, Value::bit(1));
    ExecutionTrace eg =
        run_execution(params, flood, proposals, isolate_group(g, r)).trace;
    Round div_g = 0, div_gbar = 0;
    for (ProcessId p = 0; p < 12; ++p) {
      Round d = first_send_divergence(e0, eg, p);
      if (d == 0) continue;
      Round& slot = g.contains(p) ? div_g : div_gbar;
      if (slot == 0 || d < slot) slot = d;
    }
    EXPECT_EQ(div_g, r + 1) << "R=" << r;
    EXPECT_EQ(div_gbar, r + 2) << "R=" << r;
  }
}

// ---- E6: zero-extra-message reduction ----------------------------------

TEST(ExperimentsE6, Algorithm1AddsZeroMessages) {
  SystemParams params{7, 2};
  auto problem = validity::strong_validity(7, 2);
  auto rp = reductions::derive_reduction_params(
      problem, params, protocols::phase_king_consensus());
  ASSERT_TRUE(rp.has_value());
  auto wc = reductions::weak_consensus_from_any(
      protocols::phase_king_consensus(), *rp);
  for (int b : {0, 1}) {
    const validity::InputConfig& c = b == 0 ? rp->c0 : rp->c1;
    std::vector<Value> direct(params.n);
    for (ProcessId p = 0; p < params.n; ++p) direct[p] = *c[p];
    auto base = run_execution(params, protocols::phase_king_consensus(),
                              direct, Adversary::none());
    auto reduced = run_all_correct(params, wc, Value::bit(b));
    EXPECT_EQ(reduced.messages_sent_by_correct,
              base.messages_sent_by_correct);
  }
}

// ---- E9: round complexity ----------------------------------------------

TEST(ExperimentsE9, DolevStrongAlwaysPaysTPlus1Rounds) {
  for (std::uint32_t t : {2u, 4u}) {
    SystemParams params{t + 2, t};
    auto auth = std::make_shared<crypto::Authenticator>(1, params.n);
    auto bb = protocols::dolev_strong_broadcast(auth, 0);
    for (std::uint32_t f = 0; f <= t; f += t) {
      Adversary adv;
      if (f > 0) {
        adv.faulty = ProcessSet::range(1, 1 + f);
        adv.byzantine = adv.faulty;
        adv.byzantine_factory = byz_silent();
      }
      std::vector<Value> proposals(params.n, Value{"v"});
      RunResult res = run_execution(params, bb, proposals, adv);
      Round last = 0;
      for (ProcessId p = 0; p < params.n; ++p) {
        if (adv.faulty.contains(p)) continue;
        last = std::max(last, res.trace.procs[p].decision_round);
      }
      EXPECT_EQ(last, t + 1) << "t=" << t << " f=" << f;
    }
  }
}

// ---- E11: early deciding saves rounds, never messages ------------------

TEST(ExperimentsE11, EarlyDecidingRoundsTrackFButMessagesDoNot) {
  SystemParams params{12, 6};
  for (std::uint32_t f : {0u, 2u, 4u}) {
    std::vector<std::pair<ProcessId, Round>> crashes;
    for (std::uint32_t i = 0; i < f; ++i) {
      crashes.emplace_back(static_cast<ProcessId>(11 - i),
                           static_cast<Round>(i + 1));
    }
    Adversary adv = crash_schedule(crashes);
    std::vector<Value> proposals(12, Value::bit(0));
    RunResult early = run_execution(
        params, protocols::early_deciding_floodset(), proposals, adv);
    RunResult plain = run_execution(params, protocols::floodset_consensus(),
                                    proposals, adv);
    Round early_last = 0, plain_last = 0;
    for (ProcessId p = 0; p < 12; ++p) {
      if (adv.faulty.contains(p)) continue;
      early_last = std::max(early_last, early.trace.procs[p].decision_round);
      plain_last = std::max(plain_last, plain.trace.procs[p].decision_round);
    }
    EXPECT_LE(early_last, f + 2) << "f=" << f;
    EXPECT_EQ(plain_last, params.t + 1) << "f=" << f;
    EXPECT_EQ(early.messages_sent_by_correct,
              plain.messages_sent_by_correct)
        << "f=" << f;
  }
}

// ---- E12: crusader quadratic and never bit-split ------------------------

TEST(ExperimentsE12, CrusaderQuadraticAndConsistent) {
  SystemParams params{13, 4};
  RunResult res = run_all_correct(params, protocols::crusader_broadcast_bit(0),
                                  Value::bit(1));
  // (n-1) initial + n(n-1) echoes.
  EXPECT_EQ(res.messages_sent_by_correct, 12u + 13u * 12u);
}

// ---- E13: bit complexity shapes ----------------------------------------

TEST(ExperimentsE13, DolevStrongBytesPerMessageGrowWithRelayDepth) {
  auto bytes_per_msg = [](std::uint32_t n) {
    SystemParams params{n, n / 2};
    auto auth = std::make_shared<crypto::Authenticator>(7, n);
    RunResult res = run_all_correct(
        params, protocols::dolev_strong_broadcast(auth, 0), Value::bit(1));
    return static_cast<double>(
               res.trace.payload_bytes_sent_by_correct()) /
           static_cast<double>(res.trace.message_complexity());
  };
  // Relays carry 2-signature chains at every n; the per-message average is
  // dominated by them and stays roughly constant, while TOTAL bytes grow
  // quadratically.
  EXPECT_GT(bytes_per_msg(8), 0.0);

  SystemParams small{8, 4}, large{16, 8};
  auto auth_s = std::make_shared<crypto::Authenticator>(7, 8);
  auto auth_l = std::make_shared<crypto::Authenticator>(7, 16);
  auto total_s = run_all_correct(
      small, protocols::dolev_strong_broadcast(auth_s, 0), Value::bit(1));
  auto total_l = run_all_correct(
      large, protocols::dolev_strong_broadcast(auth_l, 0), Value::bit(1));
  EXPECT_GT(total_l.trace.payload_bytes_sent_by_correct(),
            3 * total_s.trace.payload_bytes_sent_by_correct());
}

TEST(ExperimentsE13, TurpinCoanMovesLongValuesOnlyInExtensionRounds) {
  SystemParams params{7, 2};
  auto bytes_with = [&](std::size_t len) {
    RunResult res = run_all_correct(params,
                                    protocols::turpin_coan_multivalued(),
                                    Value{std::string(len, 'x')});
    return res.trace.payload_bytes_sent_by_correct();
  };
  const std::uint64_t small = bytes_with(16);
  const std::uint64_t big = bytes_with(4096);
  // Growth is ~ 2 * n * (n-1) * delta_len (the two extension rounds), far
  // below what re-broadcasting the long value through 3(t+1) phase-king
  // rounds would cost.
  const std::uint64_t growth = big - small;
  EXPECT_LE(growth, 2ull * 7 * 6 * (4096 - 16) + 4096);
  EXPECT_GT(growth, 0u);
}

// ---- E14: Dolev-Reischuk dichotomy --------------------------------------

TEST(ExperimentsE14, CutDichotomy) {
  SystemParams params{16, 8};
  auto broken = protocols::bb_candidate_direct(0);
  auto report = lowerbound::attack_broadcast(params, broken, 0, Value::bit(0),
                                             Value::bit(1));
  ASSERT_TRUE(report.violation_found);
  EXPECT_EQ(report.cut_size, 1u);
  EXPECT_TRUE(
      lowerbound::verify_certificate(*report.certificate, broken).ok);

  auto auth = std::make_shared<crypto::Authenticator>(5, 16);
  auto ds = protocols::dolev_strong_broadcast(auth, 0);
  auto ds_report = lowerbound::attack_broadcast(params, ds, 0, Value::bit(0),
                                                Value::bit(1));
  EXPECT_FALSE(ds_report.violation_found);
  EXPECT_EQ(ds_report.min_in_neighbourhood, 15u);
}

}  // namespace
}  // namespace ba
