// End-to-end composition of the paper's main argument (Theorem 3):
//
//   sub-quadratic solver for ANY non-trivial problem
//     --Algorithm 1-->  sub-quadratic weak consensus
//     --Theorem 2 engine-->  verified violation certificate.
//
// And the contrapositive: genuinely correct solvers compose into weak
// consensus that the engine cannot break.

#include <gtest/gtest.h>

#include <memory>

#include "core/ba.h"

namespace ba {
namespace {

TEST(Theorem3, SubQuadraticStrongConsensusSolverYieldsBrokenWeakConsensus) {
  // The "solver": a leader beacon with leader p11, masquerading as strong
  // consensus. It passes the two fault-free probes of Table 2 (E_0 decides
  // 0, E_1 — where p11's slot in c_1 holds 1 — decides 1), so Algorithm 1
  // accepts it; being sub-quadratic, the resulting weak consensus MUST be
  // breakable, and the engine finds a machine-checkable certificate.
  SystemParams params{12, 8};
  auto fake_solver = protocols::wc_candidate_leader_beacon(/*leader=*/11);
  auto problem = validity::strong_validity(params.n, params.t);

  std::string error;
  auto rp = reductions::derive_reduction_params(problem, params, fake_solver,
                                                &error);
  ASSERT_TRUE(rp.has_value()) << error;
  ASSERT_TRUE(rp->c1[11].has_value());
  ASSERT_EQ(*rp->c1[11], Value::bit(1));  // the leader proposes 1 in E_1

  auto wc = reductions::weak_consensus_from_any(fake_solver, *rp);
  lowerbound::AttackReport report =
      lowerbound::attack_weak_consensus(params, wc);
  ASSERT_TRUE(report.violation_found) << report.narrative;
  auto check = lowerbound::verify_certificate(*report.certificate, wc);
  EXPECT_TRUE(check.ok) << check.error;
  // Sub-quadratic indeed.
  EXPECT_LT(report.max_message_complexity,
            static_cast<std::uint64_t>(params.t) * params.t);
}

TEST(Theorem3, DerivationCatchesLemma7ViolatingFakeSolvers) {
  // A beacon whose leader sits in the FILLED-with-default part of c_1
  // decides v'_0 in E_1 even though c_1 contains a configuration excluding
  // it — exactly the Lemma 7 violation the derivation sanity-checks for.
  SystemParams params{12, 8};
  auto fake_solver = protocols::wc_candidate_leader_beacon(/*leader=*/1);
  auto problem = validity::strong_validity(params.n, params.t);
  std::string error;
  auto rp = reductions::derive_reduction_params(problem, params, fake_solver,
                                                &error);
  EXPECT_FALSE(rp.has_value());
  EXPECT_NE(error.find("Lemma 7"), std::string::npos) << error;
}

TEST(Theorem3, CorrectSolversComposeIntoUnbreakableWeakConsensus) {
  struct Case {
    const char* name;
    SystemParams params;
    validity::ValidityProperty problem;
    ProtocolFactory solver;
  };
  auto auth12 = std::make_shared<crypto::Authenticator>(3, 12);
  std::vector<Case> cases;
  cases.push_back({"dolev-strong BB", SystemParams{12, 8},
                   validity::sender_validity(12, 8, 0),
                   protocols::dolev_strong_broadcast(auth12, 0)});
  cases.push_back({"auth IC", SystemParams{12, 8},
                   validity::ic_validity(12, 8),
                   protocols::auth_interactive_consistency(auth12)});

  for (const Case& c : cases) {
    std::string error;
    auto rp = reductions::derive_reduction_params(c.problem, c.params,
                                                  c.solver, &error);
    ASSERT_TRUE(rp.has_value()) << c.name << ": " << error;
    auto wc = reductions::weak_consensus_from_any(c.solver, *rp);
    lowerbound::AttackReport report =
        lowerbound::attack_weak_consensus(c.params, wc);
    EXPECT_FALSE(report.violation_found) << c.name << "\n" << report.narrative;
    EXPECT_GE(report.max_message_complexity, report.bound) << c.name;
  }
}

TEST(Theorem3, ExternalValidityCorollary1Composition) {
  // Corollary 1 route: External-Validity agreement -> weak consensus ->
  // attack survives (protocol is correct and quadratic).
  SystemParams params{12, 8};
  auto auth = std::make_shared<crypto::Authenticator>(4, params.n);
  auto ev = protocols::external_validity_agreement(
      auth, [](const Value& v) { return v.is_str(); });
  RunResult r0 = run_all_correct(params, ev, Value{"tx0"});
  auto wc = reductions::weak_from_external_validity(
      ev, Value{"tx0"}, Value{"tx1"}, *r0.unanimous_correct_decision());

  lowerbound::AttackReport report =
      lowerbound::attack_weak_consensus(params, wc);
  EXPECT_FALSE(report.violation_found) << report.narrative;
  EXPECT_GE(report.max_message_complexity, report.bound);
}

TEST(Theorem3, SolverSynthesizedByTheorem4IsAttackProof) {
  // Full circle: Theorem 4 synthesizes a solver (Algorithm 2 over IC) for a
  // CC problem; Algorithm 1 turns it into weak consensus; the Theorem 2
  // engine cannot break it.
  SystemParams params{12, 8};
  auto auth = std::make_shared<crypto::Authenticator>(5, params.n);
  AgreementProblem problem{params,
                           validity::any_proposed_validity(params.n,
                                                           params.t)};
  // n = 12 <= 2t = 16: binary any-proposed fails CC here; use sender
  // validity instead, which always satisfies CC.
  AgreementProblem bb_problem{params,
                              validity::sender_validity(params.n, params.t,
                                                        0)};
  auto solver = bb_problem.make_solver(true, auth);
  ASSERT_TRUE(solver.has_value());

  std::string error;
  auto rp = reductions::derive_reduction_params(bb_problem.property(), params,
                                                *solver, &error);
  ASSERT_TRUE(rp.has_value()) << error;
  auto wc = reductions::weak_consensus_from_any(*solver, *rp);
  lowerbound::AttackReport report =
      lowerbound::attack_weak_consensus(params, wc);
  EXPECT_FALSE(report.violation_found) << report.narrative;
  EXPECT_GE(report.max_message_complexity, report.bound);
}

}  // namespace
}  // namespace ba
