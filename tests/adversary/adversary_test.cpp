#include <gtest/gtest.h>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "protocols/common.h"
#include "runtime/sync_system.h"

namespace ba {
namespace {

class EchoBit final : public protocols::DecidingProcess {
 public:
  explicit EchoBit(const ProcessContext& ctx) : ctx_(ctx) {}
  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r <= 3) {
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != ctx_.self) out.push_back(Outgoing{p, ctx_.proposal});
      }
    }
    return out;
  }
  void deliver(Round r, const Inbox& inbox) override {
    heard_ += inbox.size();
    if (r == 3) decide(Value{static_cast<std::int64_t>(heard_)});
  }

 private:
  ProcessContext ctx_;
  std::int64_t heard_{0};
};

ProtocolFactory echo_bit() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<EchoBit>(ctx);
  };
}

TEST(RandomOmissions, DropsOnlyFaultyEndpoints) {
  SystemParams params{6, 2};
  Adversary adv = random_omissions(ProcessSet{{4, 5}}, 99, 500);
  RunResult res = run_execution(params, echo_bit(),
                                std::vector<Value>(6, Value::bit(1)), adv);
  ASSERT_EQ(res.trace.validate(), std::nullopt);
  // Correct-to-correct traffic is untouched: every correct process hears
  // everything from the other three correct ones plus whatever survives
  // from {4,5}.
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_GE(res.decisions[p]->as_int(), 3 * 3);
  }
  // Some omission actually happened at 50% drop rate across 3 rounds.
  std::uint64_t omissions = 0;
  for (ProcessId p = 0; p < 6; ++p) {
    for (const auto& re : res.trace.procs[p].rounds) {
      omissions += re.send_omitted.size() + re.receive_omitted.size();
    }
  }
  EXPECT_GT(omissions, 0u);
}

TEST(RandomOmissions, DeterministicInSeed) {
  SystemParams params{6, 2};
  Adversary a1 = random_omissions(ProcessSet{{4, 5}}, 7, 400);
  Adversary a2 = random_omissions(ProcessSet{{4, 5}}, 7, 400);
  Adversary a3 = random_omissions(ProcessSet{{4, 5}}, 8, 400);
  auto run = [&](const Adversary& adv) {
    return run_execution(params, echo_bit(),
                         std::vector<Value>(6, Value::bit(0)), adv)
        .trace;
  };
  ExecutionTrace t1 = run(a1), t2 = run(a2), t3 = run(a3);
  for (ProcessId p = 0; p < 6; ++p) {
    EXPECT_EQ(t1.procs[p], t2.procs[p]);
  }
  bool any_diff = false;
  for (ProcessId p = 0; p < 6; ++p) {
    if (!(t1.procs[p] == t3.procs[p])) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds should differ somewhere";
}

TEST(CrashSchedule, StopsSendingAtitsRound) {
  SystemParams params{4, 2};
  Adversary adv = crash_schedule({{1, 2}, {3, 1}});
  RunResult res = run_execution(params, echo_bit(),
                                std::vector<Value>(4, Value::bit(0)), adv);
  ASSERT_EQ(res.trace.validate(), std::nullopt);
  // p3 never successfully sends; p1 sends only in round 1.
  EXPECT_TRUE(res.trace.procs[3].rounds[0].sent.empty());
  EXPECT_EQ(res.trace.procs[1].rounds[0].sent.size(), 3u);
  EXPECT_TRUE(res.trace.procs[1].rounds[1].sent.empty());
  // p0 hears: round1 from {1,2}, rounds 2-3 from {2} => 2 + 1 + 1.
  EXPECT_EQ(res.decisions[0]->as_int(), 4);
}

TEST(ByzantineStrategies, LieProposalRunsHonestProtocolOnFakeInput) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{2}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_lie_proposal(echo_bit(), Value::bit(1));
  std::vector<Value> proposals(4, Value::bit(0));
  RunResult res = run_execution(params, echo_bit(), proposals, adv);
  // The liar behaves like an honest process with proposal 1: p0 receives a
  // payload 1 from it.
  bool saw_lie = false;
  for (const Message& m : res.trace.procs[0].rounds[0].received) {
    if (m.sender == 2 && m.payload == Value::bit(1)) saw_lie = true;
  }
  EXPECT_TRUE(saw_lie);
}

TEST(ByzantineStrategies, FlipBitsOnlyTargetsUpperHalf) {
  SystemParams params{4, 1};
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_flip_bits_to_upper(echo_bit(), /*pivot=*/2);
  std::vector<Value> proposals(4, Value::bit(0));
  RunResult res = run_execution(params, echo_bit(), proposals, adv);
  for (const Message& m : res.trace.procs[1].rounds[0].received) {
    if (m.sender == 0) EXPECT_EQ(m.payload, Value::bit(0));
  }
  for (const Message& m : res.trace.procs[3].rounds[0].received) {
    if (m.sender == 0) EXPECT_EQ(m.payload, Value::bit(1));
  }
}

TEST(IsolateTwoGroups, RejectsOverlap) {
  EXPECT_THROW(
      isolate_two_groups(ProcessSet{{1, 2}}, 1, ProcessSet{{2, 3}}, 1),
      std::invalid_argument);
}

TEST(IsolateTwoGroups, IndependentRounds) {
  SystemParams params{6, 2};
  Adversary adv = isolate_two_groups(ProcessSet{{4}}, 1, ProcessSet{{5}}, 3);
  RunResult res = run_execution(params, echo_bit(),
                                std::vector<Value>(6, Value::bit(0)), adv);
  // p4 hears nothing ever; p5 hears rounds 1-2 only (5 senders each).
  EXPECT_EQ(res.decisions[4]->as_int(), 0);
  EXPECT_EQ(res.decisions[5]->as_int(), 10);
}

}  // namespace
}  // namespace ba
