// The engine contract: every registered ExecutionBackend is a drop-in
// substrate for the repo's experiments. The parametrized fixture runs the
// protocol conformance set (Dolev-Strong, EIG, phase-king) and a Theorem 2
// attack-sweep grid under each backend and asserts decisions, message
// counts, and sweep rows are identical to the lockstep reference — plus the
// registry/spec-parsing surface and the RunOptions fail-fast contract.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ba.h"

namespace ba::engine {
namespace {

std::shared_ptr<crypto::Authenticator> make_auth(std::uint32_t n) {
  return std::make_shared<crypto::Authenticator>(0xba5eba11, n);
}

struct ConformanceCase {
  std::string name;
  SystemParams params;
  ProtocolFactory factory;
  std::vector<Value> proposals;
};

std::vector<ConformanceCase> conformance_cases() {
  std::vector<ConformanceCase> cases;
  {
    ConformanceCase c;
    c.name = "dolev_strong";
    c.params = SystemParams{7, 2};
    c.factory = protocols::dolev_strong_broadcast(make_auth(7), /*sender=*/0);
    c.proposals.assign(7, Value::bit(0));
    c.proposals[0] = Value{"engine-conformance"};
    cases.push_back(std::move(c));
  }
  {
    ConformanceCase c;
    c.name = "eig";
    c.params = SystemParams{7, 2};
    c.factory = protocols::eig_interactive_consistency();
    for (std::uint32_t p = 0; p < 7; ++p) {
      c.proposals.emplace_back(static_cast<std::int64_t>(p));
    }
    cases.push_back(std::move(c));
  }
  {
    ConformanceCase c;
    c.name = "phase_king";
    c.params = SystemParams{7, 2};
    c.factory = protocols::phase_king_consensus();
    for (std::uint32_t p = 0; p < 7; ++p) {
      c.proposals.push_back(Value::bit(static_cast<int>(p % 2)));
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

// ---------------------------------------------------------------------------
// Registry and spec parsing.
// ---------------------------------------------------------------------------

TEST(EngineRegistry, KnowsTheBuiltins) {
  Registry& reg = Registry::global();
  EXPECT_TRUE(reg.knows("lockstep"));
  EXPECT_TRUE(reg.knows("sim"));
  EXPECT_TRUE(reg.knows("async"));
  EXPECT_FALSE(reg.knows("warp-drive"));
  const std::vector<std::string> names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "lockstep"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sim"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "async"), names.end());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(EngineRegistry, MakeRejectsUnknownNames) {
  BackendSpec spec;
  spec.name = "warp-drive";
  EXPECT_THROW((void)Registry::global().make(spec), std::invalid_argument);
  EXPECT_THROW((void)make_backend("warp-drive"), std::invalid_argument);
}

TEST(EngineRegistry, ParsesBackendSpecs) {
  auto plain = parse_backend_spec("lockstep");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->name, "lockstep");

  auto with_model = parse_backend_spec("sim:jitter");
  ASSERT_TRUE(with_model.has_value());
  EXPECT_EQ(with_model->name, "sim");
  EXPECT_EQ(with_model->sim.model, "jitter");

  auto with_seed = parse_backend_spec("sim:gst,42");
  ASSERT_TRUE(with_seed.has_value());
  EXPECT_EQ(with_seed->name, "sim");
  EXPECT_EQ(with_seed->sim.model, "gst");
  EXPECT_EQ(with_seed->sim.seed, 42u);

  // The model token doubles as the async strategy: only the named backend
  // reads its half of the config.
  auto async_spec = parse_backend_spec("async:rr-starve,7");
  ASSERT_TRUE(async_spec.has_value());
  EXPECT_EQ(async_spec->name, "async");
  EXPECT_EQ(async_spec->async.strategy, "rr-starve");
  EXPECT_EQ(async_spec->async.seed, 7u);

  EXPECT_FALSE(parse_backend_spec("").has_value());
  EXPECT_FALSE(parse_backend_spec(":jitter").has_value());
  EXPECT_FALSE(parse_backend_spec("sim:").has_value());
  EXPECT_FALSE(parse_backend_spec("sim:jitter,").has_value());
  EXPECT_FALSE(parse_backend_spec("sim:jitter,4x2").has_value());
  EXPECT_FALSE(parse_backend_spec("async:").has_value());
  EXPECT_FALSE(parse_backend_spec("async:fifo,").has_value());
  // A seed past uint64 range is malformed, not silently wrapped.
  EXPECT_FALSE(
      parse_backend_spec("async:fifo,99999999999999999999999999").has_value());
}

// The diagnostics are part of the CLI surface (--backend forwards them to
// the user verbatim), so the exact wording is pinned: the unknown-name
// message must enumerate the registered backends and the malformed-spec
// message must restate the grammar.
TEST(EngineRegistry, UnknownBackendErrorNamesTheRegistry) {
  try {
    (void)make_backend("warp-drive");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "unknown execution backend 'warp-drive' "
                 "(registered: async | lockstep | sim)");
  }
}

TEST(EngineRegistry, MalformedSpecErrorRestatesTheGrammar) {
  for (const char* bad : {":jitter", "sim:", "sim:jitter,", "sim:jitter,4x2"}) {
    try {
      (void)make_backend(bad);
      FAIL() << "expected std::invalid_argument for '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()),
                std::string("malformed backend spec '") + bad +
                    "' (want name[:model[,seed]])")
          << bad;
    }
  }
}

TEST(EngineBackend, AsyncConfigValidationIsEager) {
  AsyncBackendConfig bad;
  bad.strategy = "telepathy";
  try {
    async::AsyncBackend backend{bad};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "AsyncBackend: unknown strategy 'telepathy' "
                 "(fifo | random | delay-decider | rr-starve)");
  }
}

TEST(EngineBackend, AsyncRefusesSynchronousProtocols) {
  const BackendHandle be = make_backend("async");
  const ConformanceCase c = conformance_cases().front();
  try {
    (void)be->run(c.params, c.factory, c.proposals, Adversary::none());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "AsyncBackend: synchronous protocols cannot run on the "
                 "async scheduler; use run_async with an async protocol "
                 "(ben-or | ben-or-broken | ben-or-local | bracha)");
  }
}

TEST(EngineBackend, AsyncCapabilitiesAndName) {
  const BackendHandle be = make_backend("async:delay-decider,3");
  EXPECT_STREQ(be->name(), "async");
  EXPECT_TRUE(be->has_capability(Capability::kTraces));
  EXPECT_TRUE(be->has_capability(Capability::kLint));
  EXPECT_FALSE(be->has_capability(Capability::kNetMetrics));
  const auto* async_be = dynamic_cast<const async::AsyncBackend*>(be.get());
  ASSERT_NE(async_be, nullptr);
  EXPECT_EQ(async_be->config().strategy, "delay-decider");
  EXPECT_EQ(async_be->config().seed, 3u);
}

TEST(EngineBackend, SimConfigValidation) {
  SimBackendConfig bad_model;
  bad_model.model = "telepathy";
  EXPECT_THROW(SimBackend{bad_model}, std::invalid_argument);

  SimBackendConfig zero_ticks;
  zero_ticks.round_ticks = 0;
  EXPECT_THROW(SimBackend{zero_ticks}, std::invalid_argument);
}

TEST(EngineBackend, CapabilitiesMatchTheSubstrate) {
  const LockstepBackend lockstep;
  EXPECT_STREQ(lockstep.name(), "lockstep");
  EXPECT_TRUE(lockstep.has_capability(Capability::kTraces));
  EXPECT_TRUE(lockstep.has_capability(Capability::kLint));
  EXPECT_FALSE(lockstep.has_capability(Capability::kNetMetrics));

  const SimBackend sim{SimBackendConfig{}};
  EXPECT_STREQ(sim.name(), "sim");
  EXPECT_TRUE(sim.has_capability(Capability::kTraces));
  EXPECT_TRUE(sim.has_capability(Capability::kLint));
  EXPECT_TRUE(sim.has_capability(Capability::kNetMetrics));

  SimBackendConfig unmetered;
  unmetered.collect_metrics = false;
  EXPECT_FALSE(SimBackend{unmetered}.has_capability(Capability::kNetMetrics));
}

TEST(EngineBackend, NetMetricsSurfaceOnlyWhereMeasured) {
  const ConformanceCase c = conformance_cases().front();
  const RunResult lockstep = LockstepBackend{}.run(
      c.params, c.factory, c.proposals, Adversary::none());
  EXPECT_FALSE(lockstep.net.has_value());

  const RunResult sim = SimBackend{SimBackendConfig{}}.run(
      c.params, c.factory, c.proposals, Adversary::none());
  ASSERT_TRUE(sim.net.has_value());
  EXPECT_EQ(sim.net->n, c.params.n);
  EXPECT_GT(sim.net->total_delivered(), 0u);

  SimBackendConfig unmetered;
  unmetered.collect_metrics = false;
  const RunResult quiet = SimBackend{unmetered}.run(
      c.params, c.factory, c.proposals, Adversary::none());
  EXPECT_FALSE(quiet.net.has_value());
}

// ---------------------------------------------------------------------------
// Backend-parametrized conformance + parity.
// ---------------------------------------------------------------------------

class BackendParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  static BackendHandle backend() { return make_backend(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(Backends, BackendParityTest,
                         ::testing::Values("lockstep", "sim"),
                         [](const auto& info) { return info.param; });

// Decisions, message counts, rounds, and quiescence must match the lockstep
// reference executor for every conformance protocol, fault-free and under
// an isolation adversary.
TEST_P(BackendParityTest, ConformanceMatchesLockstepReference) {
  const BackendHandle be = backend();
  for (const ConformanceCase& c : conformance_cases()) {
    for (const bool isolate : {false, true}) {
      const Adversary adv =
          isolate ? isolate_group(
                        ProcessSet::range(c.params.n - 2, c.params.n), 2)
                  : Adversary::none();
      const std::string label =
          c.name + (isolate ? "/isolated" : "/fault-free");
      const RunResult reference =
          run_execution(c.params, c.factory, c.proposals, adv, {});
      const RunResult got = be->run(c.params, c.factory, c.proposals, adv);
      EXPECT_EQ(got.decisions, reference.decisions) << label;
      EXPECT_EQ(got.messages_sent_by_correct,
                reference.messages_sent_by_correct)
          << label;
      EXPECT_EQ(got.messages_sent_total, reference.messages_sent_total)
          << label;
      EXPECT_EQ(got.rounds_executed, reference.rounds_executed) << label;
      EXPECT_EQ(got.quiesced, reference.quiesced) << label;
      EXPECT_EQ(encode_trace(got.trace), encode_trace(reference.trace))
          << label;
    }
  }
}

TEST_P(BackendParityTest, RunAllCorrectMatchesExplicitProposals) {
  const BackendHandle be = backend();
  const SystemParams params{7, 2};
  const ProtocolFactory factory = protocols::phase_king_consensus();
  const std::vector<Value> unanimous(params.n, Value::bit(1));
  const RunResult explicit_run =
      be->run(params, factory, unanimous, Adversary::none());
  const RunResult convenience =
      be->run_all_correct(params, factory, Value::bit(1));
  EXPECT_EQ(explicit_run.decisions, convenience.decisions);
  EXPECT_EQ(explicit_run.messages_sent_by_correct,
            convenience.messages_sent_by_correct);
}

// Satellite regression: asking for a lint report without recording a trace
// is a configuration error, caught before the run starts — on every backend.
TEST_P(BackendParityTest, LintWithoutTraceFailsFast) {
  const BackendHandle be = backend();
  const ConformanceCase c = conformance_cases().front();
  RunOptions opts;
  opts.record_trace = false;
  opts.lint_trace = true;
  EXPECT_THROW(
      (void)be->run(c.params, c.factory, c.proposals, Adversary::none(), opts),
      std::invalid_argument);
}

// The Theorem 2 attack-sweep grid under each backend: identical rows (bound,
// messages, verdicts, encoded certificates) to the lockstep reference, and —
// per the experiment-pool contract — byte-identical rows for jobs 1/2/8.
TEST_P(BackendParityTest, AttackSweepRowsMatchLockstepAcrossJobCounts) {
  const auto entries = lowerbound::standard_sweep_entries();
  const std::vector<SystemParams> grid = {{12, 11}};

  lowerbound::SweepOptions reference_options;  // lockstep, serial
  const lowerbound::SweepResult reference =
      lowerbound::run_attack_sweep(entries, grid, reference_options);
  ASSERT_EQ(reference.rows.size(), entries.size());

  for (const unsigned jobs : {1u, 2u, 8u}) {
    lowerbound::SweepOptions options;
    options.attack.backend = backend();
    options.jobs = jobs;
    const lowerbound::SweepResult got =
        lowerbound::run_attack_sweep(entries, grid, options);
    ASSERT_EQ(got.rows.size(), reference.rows.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < got.rows.size(); ++i) {
      EXPECT_EQ(got.rows[i], reference.rows[i])
          << GetParam() << " jobs=" << jobs << " row " << i << " ("
          << reference.rows[i].protocol_name << ")";
    }
  }
}

}  // namespace
}  // namespace ba::engine
