// The golden-bounds table and the lower-bound cross-check gate.
//
// The golden table pins the closed-form message/round bounds of every
// registered CommSpec: a refactor that changes a protocol's declared
// communication structure must consciously update the golden entry here.
// The cross-check tests assert both directions of the gate — the real spec
// table is consistent with the paper, and a doctored under-counting spec is
// flagged as a spec bug.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "core/ba.h"

namespace ba::statics {
namespace {

using protocols::all_comm_specs;
using protocols::find_comm_spec;

TEST(CommSpecRegistry, EveryProtocolDeclaresASpec) {
  // One entry per protocol family in src/protocols/ (correct protocols plus
  // the deliberately broken candidates) and in src/async/. Growing the
  // library should grow this count alongside a new golden entry below.
  EXPECT_EQ(all_comm_specs().size(), 25u);
  for (const CommSpec& spec : all_comm_specs()) {
    EXPECT_FALSE(spec.protocol.empty());
    EXPECT_FALSE(spec.problem.empty());
    const StaticBounds bounds = analyze(spec);
    EXPECT_EQ(bounds.protocol, spec.protocol);
    // Every declared bound must be non-trivial for a protocol that sends
    // at all: rounds 0 <=> messages 0 (only the silent candidate).
    EXPECT_EQ(bounds.messages.zero(), bounds.rounds.zero())
        << spec.protocol;
  }
}

TEST(CommSpecRegistry, NamesAndAliasesAreUnique) {
  std::set<std::string> seen;
  for (const CommSpec& spec : all_comm_specs()) {
    EXPECT_TRUE(seen.insert(spec.protocol).second) << spec.protocol;
    for (const std::string& alias : spec.aliases) {
      EXPECT_TRUE(seen.insert(alias).second) << alias;
    }
  }
}

TEST(CommSpecRegistry, EverySurfaceNameResolves) {
  // The CLI names (tools/tool_protocols.h) and the sweep entry names
  // (lowerbound::standard_sweep_entries) must all reach a spec, so the
  // budget wiring covers every runnable surface.
  for (const char* name :
       {"silent", "beacon", "gossip", "one-shot-echo", "ds-weak",
        "phase-king", "phase-king-strong", "floodset", "eig-strong",
        "silent-default", "leader-beacon", "gossip-ring-2",
        "dolev-strong-weak", "ben-or", "bracha"}) {
    EXPECT_NE(find_comm_spec(name), nullptr) << name;
  }
  EXPECT_EQ(find_comm_spec("no-such-protocol"), nullptr);
  // Aliases resolve to the same spec object as the canonical name.
  EXPECT_EQ(find_comm_spec("ds-weak"), find_comm_spec("dolev-strong-weak"));
  // The async Ben-Or variants share one communication envelope: the coin
  // flavour and the broken thresholds change decisions, not message shape.
  EXPECT_EQ(find_comm_spec("ben-or-local"), find_comm_spec("ben-or"));
  EXPECT_EQ(find_comm_spec("ben-or-broken"), find_comm_spec("ben-or"));
}

TEST(GoldenBounds, ClosedFormsMatchThePaperArithmetic) {
  const std::map<std::string, std::pair<std::string, std::string>> golden = {
      // protocol -> {messages, rounds}
      {"dolev-strong", {"2*n^2 - n - 1", "t + 1"}},
      {"dolev-strong-weak", {"2*n^2 - n - 1", "t + 1"}},
      {"phase-king-strong",
       {"2*n^2*t + 2*n^2 - n*t - n - t - 1", "3*t + 3"}},
      {"phase-king", {"2*n^2*t + 2*n^2 - n*t - n - t - 1", "3*t + 3"}},
      {"turpin-coan", {"2*n^2*t + 4*n^2 - n*t - 3*n - t - 1", "3*t + 5"}},
      {"unauth-broadcast", {"2*n^2*t + 2*n^2 - n*t - t - 2", "3*t + 4"}},
      {"eig-ic", {"n^2*t + n^2 - n*t - n", "t + 1"}},
      {"eig-strong", {"n^2*t + n^2 - n*t - n", "t + 1"}},
      {"auth-ic", {"n^2*t + n^2 - n*t - n", "t + 1"}},
      {"unauth-ic-bits", {"3*n^2*t + 4*n^2 - 3*n*t - 4*n", "3*t + 4"}},
      {"crusader", {"n^2 - 1", "2"}},
      {"gradecast", {"2*n^2 - n - 1", "3"}},
      {"floodset", {"n^2*t + n^2 - n*t - n", "t + 1"}},
      {"early-deciding-floodset", {"n^2*t + n^2 - n*t - n", "t + 1"}},
      {"external-validity",
       {"2*n^2*t + 2*n^2 - n*t - n - t - 1", "t^2 + 2*t + 1"}},
      {"approx-agreement", {"12*n^2 - 12*n", "12"}},
      {"k-set-agreement", {"n^2*t + n^2 - n*t - n", "t + 1"}},
      {"silent", {"0", "0"}},
      {"leader-beacon", {"n - 1", "1"}},
      {"gossip-ring", {"6*n", "3"}},
      {"one-shot-echo", {"n^2 - n", "1"}},
      {"bb-direct", {"n - 1", "1"}},
      {"bb-relay-ring", {"3*n - 1", "2"}},
      // Asynchronous protocols (virtual-round envelopes, src/async/).
      {"ben-or", {"128*n^2 - 128*n", "128"}},
      {"bracha", {"2*n^2 - 2*n", "3"}},
  };
  ASSERT_EQ(golden.size(), all_comm_specs().size());
  for (const CommSpec& spec : all_comm_specs()) {
    const auto it = golden.find(spec.protocol);
    ASSERT_NE(it, golden.end()) << spec.protocol;
    const StaticBounds bounds = analyze(spec);
    EXPECT_EQ(bounds.messages.to_string(), it->second.first)
        << spec.protocol;
    EXPECT_EQ(bounds.rounds.to_string(), it->second.second)
        << spec.protocol;
  }
}

TEST(GoldenBounds, OnlyEigPayloadsAreSuperpolynomial) {
  for (const CommSpec& spec : all_comm_specs()) {
    const StaticBounds bounds = analyze(spec);
    const bool is_eig =
        spec.protocol == "eig-ic" || spec.protocol == "eig-strong";
    EXPECT_EQ(bounds.payload_bytes.has_value(), !is_eig) << spec.protocol;
  }
}

TEST(Budgets, ConcreteEvaluationAtWorstCaseF) {
  const StaticBounds ds = analyze(*find_comm_spec("dolev-strong"));
  const Budget at16 = budget_at(ds, SystemParams{16, 15});
  EXPECT_EQ(at16.messages, 2u * 256 - 16 - 1);  // 495
  EXPECT_EQ(at16.rounds, 16u);
  ASSERT_TRUE(at16.payload_bytes.has_value());

  const StaticBounds pk = analyze(*find_comm_spec("phase-king"));
  EXPECT_EQ(budget_at(pk, SystemParams{4, 1}).messages, 54u);

  EXPECT_FALSE(
      budget_at(analyze(*find_comm_spec("eig-ic")), SystemParams{4, 1})
          .payload_bytes.has_value());
}

TEST(Budgets, ExplicitFEqualsTheWorstCaseAtFEqualsT) {
  // The f-axis golden criterion: for EVERY registered CommSpec, the 3-arg
  // budget_at at f = t is the value the 2-arg worst-case overload always
  // produced — threading f through statics changed no existing budget.
  const std::vector<SystemParams> grid = {{4, 1},  {7, 2},   {12, 11},
                                          {16, 5}, {32, 31}, {64, 21}};
  for (const CommSpec& spec : all_comm_specs()) {
    const StaticBounds bounds = analyze(spec);
    for (const SystemParams& params : grid) {
      const Budget worst = budget_at(bounds, params);
      const Budget at_t = budget_at(bounds, params, params.t);
      EXPECT_EQ(at_t.messages, worst.messages) << spec.protocol;
      EXPECT_EQ(at_t.rounds, worst.rounds) << spec.protocol;
      EXPECT_EQ(at_t.payload_bytes, worst.payload_bytes) << spec.protocol;
    }
  }
}

TEST(Budgets, BoundsAreMonotoneNonDecreasingInF) {
  // An adversary never gets weaker by corrupting fewer processes than its
  // budget: every declared bound must be monotone non-decreasing in f. The
  // property holds trivially today (no registered spec uses Poly::f()), but
  // it gates any future f-dependent CommSpec.
  const std::vector<SystemParams> grid = {{4, 1}, {7, 2}, {12, 11}, {32, 10}};
  for (const CommSpec& spec : all_comm_specs()) {
    const StaticBounds bounds = analyze(spec);
    for (const SystemParams& params : grid) {
      Budget prev = budget_at(bounds, params, 0);
      for (std::uint32_t f = 1; f <= params.t; ++f) {
        const Budget cur = budget_at(bounds, params, f);
        EXPECT_GE(cur.messages, prev.messages)
            << spec.protocol << " f=" << f;
        EXPECT_GE(cur.rounds, prev.rounds) << spec.protocol << " f=" << f;
        prev = cur;
      }
    }
  }
}

TEST(CrossCheck, RealSpecTableIsConsistentWithThePaper) {
  std::vector<StaticBounds> bounds;
  for (const CommSpec& spec : all_comm_specs()) bounds.push_back(analyze(spec));
  const auto findings = cross_check(bounds, standard_cross_check_grid());
  for (const auto& finding : findings) ADD_FAILURE() << finding.to_string();
}

TEST(CrossCheck, FlagsACorrectClaimingSpecBelowTheLowerBound) {
  // Doctor a spec that claims correctness while declaring one lonely
  // message: the paper says that cannot exist, so the analyzer must call
  // it a spec bug.
  CommSpec doctored = *find_comm_spec("dolev-strong");
  doctored.protocol = "doctored-subquadratic";
  doctored.blocks = {{.label = "round 1",
                      .rounds = Poly(1),
                      .patterns = {{.label = "one message",
                                    .senders = Poly(1),
                                    .receivers_per_sender = Poly(1)}}}};
  const auto findings =
      cross_check({analyze(doctored)}, standard_cross_check_grid());
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings.front().protocol, "doctored-subquadratic");
  EXPECT_LT(findings.front().static_messages, findings.front().lower_bound);
  EXPECT_NE(findings.front().detail.find("under-counts"), std::string::npos);
  EXPECT_NE(findings.front().to_string().find("t^2/32"), std::string::npos);
}

TEST(CrossCheck, AttackTargetsAndNonAgreementProblemsAreExempt) {
  EXPECT_TRUE(lower_bound_applies("weak-consensus"));
  EXPECT_TRUE(lower_bound_applies("broadcast"));
  EXPECT_FALSE(lower_bound_applies("approximate-agreement"));
  EXPECT_FALSE(lower_bound_applies("k-set-agreement"));
  // silent claims_correct == false and sends 0 messages: exempt.
  const auto findings = cross_check({analyze(*find_comm_spec("silent"))},
                                    standard_cross_check_grid());
  EXPECT_TRUE(findings.empty());
}

TEST(Writers, MarkdownAndJsonCarryTheBoundsTable) {
  std::vector<StaticBounds> bounds = {analyze(*find_comm_spec("dolev-strong")),
                                      analyze(*find_comm_spec("eig-ic"))};
  std::ostringstream md;
  write_bounds_markdown(md, bounds, SystemParams{16, 15});
  EXPECT_NE(md.str().find("| protocol | problem | claims |"),
            std::string::npos);
  EXPECT_NE(md.str().find("| dolev-strong | broadcast | correct | "
                          "2*n^2 - n - 1 | t + 1 |"),
            std::string::npos);
  EXPECT_NE(md.str().find("superpolynomial"), std::string::npos);
  EXPECT_NE(md.str().find(" 495 | 7 |"), std::string::npos);

  std::ostringstream js;
  write_bounds_json(js, bounds, SystemParams{16, 15});
  EXPECT_NE(js.str().find("\"experiment\": \"static_comm_bounds\""),
            std::string::npos);
  EXPECT_NE(js.str().find("\"messages\": \"2*n^2 - n - 1\""),
            std::string::npos);
  EXPECT_NE(js.str().find("\"messages_at\": 495"), std::string::npos);
  EXPECT_NE(js.str().find("\"payload_bytes\": null"), std::string::npos);
  EXPECT_NE(js.str().find("\"lower_bound_at\": 7"), std::string::npos);
}

}  // namespace
}  // namespace ba::statics
