// Static-vs-dynamic conformance: the soundness half of the CommSpec
// contract. For every runnable protocol, the messages correct processes
// actually send — fault-free and under the probe's isolation adversaries,
// on BOTH execution backends — must stay within the statically derived
// budget. The budget-gating tests then close the loop through the linter:
// a run given its true budget lints clean, and an intentionally
// under-budgeted run fails the budget invariant.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "core/ba.h"

namespace ba {
namespace {

struct ConformanceCase {
  const char* spec_name;
  SystemParams params;
  ProtocolFactory protocol;
  Value proposal;
};

std::vector<ConformanceCase> conformance_cases() {
  // Small systems keep the suite fast; EIG runs at n=4, t=1 where its
  // superpolynomial reports are still tiny. Authenticated protocols run at
  // (5, 2), unauthenticated ones at the minimal n > 3t point (4, 1).
  auto auth5 = std::make_shared<crypto::Authenticator>(0xc0, 5);
  std::vector<ConformanceCase> cases;
  cases.push_back({"dolev-strong", {5, 2},
                   protocols::dolev_strong_broadcast(auth5, 0),
                   Value::bit(1)});
  cases.push_back({"dolev-strong-weak", {5, 2},
                   protocols::weak_consensus_auth(auth5), Value::bit(1)});
  cases.push_back({"phase-king", {4, 1}, protocols::weak_consensus_unauth(),
                   Value::bit(1)});
  cases.push_back({"phase-king-strong", {4, 1},
                   protocols::phase_king_consensus(), Value::bit(0)});
  cases.push_back({"turpin-coan", {4, 1},
                   protocols::turpin_coan_multivalued(), Value{7}});
  cases.push_back({"unauth-broadcast", {4, 1},
                   protocols::unauth_broadcast_bit(0), Value::bit(1)});
  cases.push_back({"eig-ic", {4, 1}, protocols::eig_interactive_consistency(),
                   Value::bit(1)});
  cases.push_back({"eig-strong", {4, 1}, protocols::eig_strong_consensus(),
                   Value::bit(1)});
  cases.push_back({"auth-ic", {5, 2},
                   protocols::auth_interactive_consistency(auth5),
                   Value::bit(1)});
  cases.push_back({"unauth-ic-bits", {4, 1},
                   protocols::unauth_interactive_consistency_bits(),
                   Value::bit(1)});
  cases.push_back({"crusader", {4, 1}, protocols::crusader_broadcast_bit(0),
                   Value::bit(1)});
  cases.push_back({"gradecast", {4, 1}, protocols::gradecast_bit(0),
                   Value::bit(1)});
  cases.push_back({"floodset", {4, 1}, protocols::floodset_consensus(),
                   Value{2}});
  cases.push_back({"early-deciding-floodset", {4, 1},
                   protocols::early_deciding_floodset(), Value{2}});
  cases.push_back({"external-validity", {5, 2},
                   protocols::external_validity_agreement(
                       auth5, [](const Value& v) { return v.is_str(); }),
                   Value{"tx"}});
  cases.push_back({"approx-agreement", {4, 1},
                   protocols::approximate_agreement(1, 1024), Value{16}});
  cases.push_back({"k-set-agreement", {4, 1}, protocols::k_set_agreement(2),
                   Value{3}});
  // The attack targets declare (sub-quadratic) specs too; their budgets
  // must still cap what they send in correct-process executions.
  cases.push_back({"silent", {4, 1}, protocols::wc_candidate_silent(1),
                   Value::bit(1)});
  cases.push_back({"leader-beacon", {4, 1},
                   protocols::wc_candidate_leader_beacon(), Value::bit(1)});
  cases.push_back({"gossip-ring", {4, 1},
                   protocols::wc_candidate_gossip_ring(2, 3), Value::bit(1)});
  cases.push_back({"one-shot-echo", {4, 1},
                   protocols::wc_candidate_one_shot_echo(), Value::bit(1)});
  cases.push_back({"bb-direct", {4, 1}, protocols::bb_candidate_direct(0),
                   Value::bit(1)});
  cases.push_back({"bb-relay-ring", {4, 1},
                   protocols::bb_candidate_relay_ring(0, 2), Value::bit(1)});
  return cases;
}

statics::Budget budget_for(const char* spec_name, const SystemParams& params) {
  const statics::CommSpec* spec = protocols::find_comm_spec(spec_name);
  EXPECT_NE(spec, nullptr) << spec_name;
  return statics::budget_at(statics::analyze(*spec), params);
}

void expect_observed_within_budget(const engine::ExecutionBackend& backend) {
  for (const ConformanceCase& c : conformance_cases()) {
    const statics::Budget budget = budget_for(c.spec_name, c.params);
    const std::uint64_t worst = lowerbound::worst_observed_messages_via(
        backend, c.params, c.protocol, c.proposal,
        lowerbound::default_probe_schedule(c.params));
    EXPECT_LE(worst, budget.messages)
        << c.spec_name << " on " << backend.name()
        << ": observed exceeds the static bound — CommSpec under-counts";
  }
}

TEST(StaticConformance, ObservedMessagesWithinBudgetOnLockstep) {
  expect_observed_within_budget(engine::default_backend());
}

TEST(StaticConformance, ObservedMessagesWithinBudgetOnSim) {
  engine::BackendHandle sim = engine::make_backend("sim");
  ASSERT_NE(sim, nullptr);
  expect_observed_within_budget(*sim);
}

TEST(StaticConformance, ObservedRoundsWithinBudget) {
  // The rounds polynomial bounds *communication* rounds. Protocols that
  // terminate by quiescence detection execute one extra silent round before
  // the runtime notices nothing was sent, hence the +1 slack; protocols
  // with a fixed round count (dolev-strong) stop exactly at the bound.
  for (const ConformanceCase& c : conformance_cases()) {
    const statics::Budget budget = budget_for(c.spec_name, c.params);
    RunResult res = run_all_correct(c.params, c.protocol, c.proposal);
    EXPECT_LE(static_cast<std::uint64_t>(res.rounds_executed),
              budget.rounds + 1)
        << c.spec_name;
  }
}

// --- Budget gating through the linter -----------------------------------

TEST(BudgetGate, TrueBudgetLintsCleanOnBothBackends) {
  const SystemParams params{4, 1};
  const statics::Budget budget = budget_for("phase-king", params);
  RunOptions opts;
  opts.lint_trace = true;
  opts.message_budget = budget.messages;
  const std::vector<Value> proposals(params.n, Value::bit(1));
  for (const char* backend_name : {"lockstep", "sim"}) {
    engine::BackendHandle backend = engine::make_backend(backend_name);
    ASSERT_NE(backend, nullptr) << backend_name;
    RunResult res =
        backend->run(params, protocols::weak_consensus_unauth(), proposals,
                     Adversary::none(), opts);
    ASSERT_TRUE(res.lint.has_value()) << backend_name;
    EXPECT_TRUE(res.lint->clean())
        << backend_name << ": " << res.lint->summary();
  }
}

TEST(BudgetGate, OverBudgetTraceFailsTheLinterOnBothBackends) {
  // Phase-king at (4, 1) hits its static bound exactly (54 messages), so a
  // budget of bound - 1 makes the same execution an over-budget trace.
  const SystemParams params{4, 1};
  const statics::Budget budget = budget_for("phase-king", params);
  ASSERT_GT(budget.messages, 0u);
  RunOptions opts;
  opts.lint_trace = true;
  opts.message_budget = budget.messages - 1;
  const std::vector<Value> proposals(params.n, Value::bit(1));
  for (const char* backend_name : {"lockstep", "sim"}) {
    engine::BackendHandle backend = engine::make_backend(backend_name);
    ASSERT_NE(backend, nullptr) << backend_name;
    RunResult res =
        backend->run(params, protocols::weak_consensus_unauth(), proposals,
                     Adversary::none(), opts);
    ASSERT_TRUE(res.lint.has_value()) << backend_name;
    EXPECT_GT(res.lint->count(analysis::LintCheck::kBudget), 0u)
        << backend_name << ": over-budget trace must break the budget "
        << "invariant";
    // The other invariant families stay clean: the trace itself is fine,
    // only the budget is violated.
    EXPECT_EQ(res.lint->count(analysis::LintCheck::kConservation), 0u);
    EXPECT_EQ(res.lint->count(analysis::LintCheck::kDeterminism), 0u);
  }
}

TEST(BudgetGate, ZeroBudgetFlagsAnyProtocolThatSends) {
  const SystemParams params{4, 1};
  RunOptions opts;
  opts.lint_trace = true;
  opts.message_budget = 0;
  RunResult res = run_all_correct(
      params, protocols::wc_candidate_leader_beacon(), Value::bit(1), opts);
  ASSERT_TRUE(res.lint.has_value());
  EXPECT_GT(res.lint->count(analysis::LintCheck::kBudget), 0u);
  EXPECT_FALSE(res.lint_clean());
}

TEST(BudgetGate, SilentProtocolFitsAZeroBudget) {
  const SystemParams params{4, 1};
  const statics::Budget budget = budget_for("silent", params);
  EXPECT_EQ(budget.messages, 0u);
  RunOptions opts;
  opts.lint_trace = true;
  opts.message_budget = budget.messages;
  RunResult res = run_all_correct(params, protocols::wc_candidate_silent(1),
                                  Value::bit(1), opts);
  ASSERT_TRUE(res.lint.has_value());
  EXPECT_TRUE(res.lint->clean()) << res.lint->summary();
}

// The sweep surfaces the same comparison as a bound-vs-observed column.
TEST(SweepIntegration, RowsCarryStaticBoundsAndRespectThem) {
  lowerbound::SweepResult result = lowerbound::run_attack_sweep(
      lowerbound::standard_sweep_entries(), {{12, 11}},
      lowerbound::AttackOptions{});
  ASSERT_FALSE(result.rows.empty());
  for (const lowerbound::SweepRow& row : result.rows) {
    ASSERT_TRUE(row.static_bound.has_value()) << row.protocol_name;
    EXPECT_LE(row.max_messages, *row.static_bound) << row.protocol_name;
  }
  std::ostringstream md;
  lowerbound::write_markdown(md, result);
  EXPECT_NE(md.str().find("static bound | obs/static"), std::string::npos);
  std::ostringstream js;
  lowerbound::write_bench_json(js, result);
  EXPECT_NE(js.str().find("\"static_bound\":"), std::string::npos);
  EXPECT_NE(js.str().find("\"obs_static_ratio\":"), std::string::npos);
}

}  // namespace
}  // namespace ba
