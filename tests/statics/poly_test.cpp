// Unit tests for the symbolic polynomials underneath the static analyzer:
// arithmetic, canonical rendering, saturating evaluation — and the guard
// that keeps statics' restated Lemma 1 threshold from drifting away from
// the lowerbound library's definition.

#include <gtest/gtest.h>

#include <limits>

#include "core/ba.h"

namespace ba::statics {
namespace {

TEST(Poly, ConstantsAndVariables) {
  EXPECT_EQ(Poly(7).to_string(), "7");
  EXPECT_EQ(Poly(-3).to_string(), "-3");
  EXPECT_EQ(Poly().to_string(), "0");
  EXPECT_TRUE(Poly().zero());
  EXPECT_EQ(Poly::n().to_string(), "n");
  EXPECT_EQ(Poly::t().to_string(), "t");
  EXPECT_EQ(Poly::f().to_string(), "f");
}

TEST(Poly, ArithmeticProducesCanonicalForms) {
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  EXPECT_EQ(((n + 1) * (n - 1)).to_string(), "n^2 - 1");
  EXPECT_EQ((2 * n * n * t + n - 1).to_string(), "2*n^2*t + n - 1");
  // Dolev-Strong: (n-1) + 2n(n-1).
  EXPECT_EQ(((n - 1) + Poly(2) * n * (n - 1)).to_string(), "2*n^2 - n - 1");
  // Cancellation back to zero.
  EXPECT_TRUE((n * t - t * n).zero());
  EXPECT_EQ((n - n).to_string(), "0");
}

TEST(Poly, TermOrderIsDegreeThenVariableMajor) {
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  const Poly f = Poly::f();
  // Same total degree: n-heavy renders before t-heavy before f-heavy.
  EXPECT_EQ((f * f + n * t + t * t + n * n).to_string(),
            "n^2 + n*t + t^2 + f^2");
  // Higher degree always first, regardless of insertion order.
  EXPECT_EQ((Poly(1) + n + n * n * n).to_string(), "n^3 + n + 1");
}

TEST(Poly, EvaluationMatchesClosedForm) {
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  const Poly phase_king = (t + 1) * (2 * n * (n - 1) + (n - 1));
  // (1+1) * (2*4*3 + 3) = 2 * 27 = 54.
  EXPECT_EQ(phase_king.eval(4, 1, 1), 54);
  EXPECT_EQ(Poly::f().eval(10, 5, 3), 3);
  EXPECT_EQ(Poly(42).eval(0, 0, 0), 42);
}

TEST(Poly, EvaluationSaturatesInsteadOfOverflowing) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  const Poly huge = Poly(big) * Poly::n();
  EXPECT_EQ(huge.eval(2, 0, 0), big);  // would overflow, clamps at max
  // Counts never go negative: a bound evaluated outside its admissible
  // domain clamps at zero rather than returning a nonsense negative budget.
  EXPECT_EQ((Poly::n() - 10).eval(1, 0, 0), 0);
}

TEST(Poly, Degree) {
  EXPECT_EQ(Poly().degree(), 0u);
  EXPECT_EQ(Poly(5).degree(), 0u);
  EXPECT_EQ(Poly::n().degree(), 1u);
  EXPECT_EQ((Poly::n() * Poly::n() * Poly::t() + Poly::n()).degree(), 3u);
}

TEST(Poly, EqualityIsStructural) {
  const Poly n = Poly::n();
  EXPECT_EQ((n + 1) * (n - 1), n * n - 1);
  EXPECT_NE(n * n, n * Poly::t());
}

// statics/ sits below lowerbound/ in the layering, so it restates the
// Lemma 1 threshold locally. This is the drift guard the header promises.
TEST(StaticLemma1Bound, NeverDriftsFromLowerboundDefinition) {
  for (std::uint32_t t = 0; t <= 2048; ++t) {
    ASSERT_EQ(static_lemma1_bound(t), lowerbound::lemma1_bound(t)) << t;
  }
}

}  // namespace
}  // namespace ba::statics
