// Pins SipHasher (streaming SipHash-2-4) to the one-shot siphash24: any
// chunking of the same byte sequence, including copy-snapshot extension of a
// shared prefix, must produce the identical 64-bit digest. This is the
// property the EIG path hasher and the chain arena rely on to derive child
// digests from parent state in O(suffix).

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "crypto/siphash.h"

namespace ba::crypto {
namespace {

const SipKey kKey{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};

std::vector<std::uint8_t> random_bytes(std::mt19937_64& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(SipHasherIncremental, EmptyMatchesOneShot) {
  SipHasher h(kKey);
  EXPECT_EQ(h.digest(), siphash24(kKey, {}));
  EXPECT_EQ(h.absorbed(), 0u);
}

TEST(SipHasherIncremental, AllLengthsUpTo64SingleAbsorb) {
  std::mt19937_64 rng(0x51F0);
  for (std::size_t len = 0; len <= 64; ++len) {
    const auto data = random_bytes(rng, len);
    SipHasher h(kKey);
    h.absorb(data);
    EXPECT_EQ(h.digest(), siphash24(kKey, data)) << "len=" << len;
  }
}

TEST(SipHasherIncremental, ByteAtATimeMatchesOneShot) {
  std::mt19937_64 rng(0xB17E);
  const auto data = random_bytes(rng, 123);
  SipHasher h(kKey);
  for (std::uint8_t b : data) h.absorb({&b, 1});
  EXPECT_EQ(h.digest(), siphash24(kKey, data));
}

TEST(SipHasherIncremental, DigestIsNonDestructive) {
  std::mt19937_64 rng(0xD16E);
  const auto data = random_bytes(rng, 37);
  SipHasher h(kKey);
  h.absorb(data);
  const std::uint64_t first = h.digest();
  EXPECT_EQ(h.digest(), first);  // repeated finalization
  h.absorb_u32(42);              // still extendable afterwards
  std::vector<std::uint8_t> full = data;
  for (int i = 0; i < 4; ++i) {
    full.push_back(static_cast<std::uint8_t>((42u >> (8 * i)) & 0xff));
  }
  EXPECT_EQ(h.digest(), siphash24(kKey, full));
}

TEST(SipHasherIncremental, U32U64HelpersAreLittleEndian) {
  SipHasher h(kKey);
  h.absorb_u32(0x04030201u);
  h.absorb_u64(0x0c0b0a0908070605ULL);
  const std::vector<std::uint8_t> expect{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_EQ(h.digest(), siphash24(kKey, expect));
}

// The load-bearing property for tree-shaped keys: snapshot a prefix hasher,
// extend copies independently, and every leaf digest equals the one-shot
// hash of its full path. 10^5 random paths (random depth, random u32
// elements), each checked against siphash24 over the explicitly serialized
// path bytes.
TEST(SipHasherIncremental, RandomPathsSnapshotExtension) {
  std::mt19937_64 rng(0xEC11);
  constexpr int kPaths = 100000;
  for (int iter = 0; iter < kPaths; ++iter) {
    const std::uint32_t prefix_len = static_cast<std::uint32_t>(rng() % 6);
    const std::uint32_t suffix_len = 1 + static_cast<std::uint32_t>(rng() % 4);

    SipHasher prefix(kKey);
    std::vector<std::uint8_t> full_bytes;
    auto push_u32 = [&](std::uint32_t v) {
      for (int i = 0; i < 4; ++i) {
        full_bytes.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
      }
    };
    for (std::uint32_t d = 0; d < prefix_len; ++d) {
      const auto elem = static_cast<std::uint32_t>(rng());
      prefix.absorb_u32(elem);
      push_u32(elem);
    }

    // Copy-snapshot: the child derives from the parent's state, the parent
    // keeps extending separately; neither may perturb the other.
    SipHasher child = prefix;
    for (std::uint32_t d = 0; d < suffix_len; ++d) {
      const auto elem = static_cast<std::uint32_t>(rng());
      child.absorb_u32(elem);
      push_u32(elem);
    }
    ASSERT_EQ(child.digest(), siphash24(kKey, full_bytes)) << "iter " << iter;

    // Divergent sibling from the same snapshot.
    SipHasher sibling = prefix;
    sibling.absorb_u32(0xfeedfaceu);
    std::vector<std::uint8_t> sib_bytes(
        full_bytes.begin(),
        full_bytes.begin() + static_cast<std::ptrdiff_t>(prefix_len) * 4);
    for (int i = 0; i < 4; ++i) {
      sib_bytes.push_back(
          static_cast<std::uint8_t>((0xfeedfaceu >> (8 * i)) & 0xff));
    }
    ASSERT_EQ(sibling.digest(), siphash24(kKey, sib_bytes)) << "iter " << iter;
  }
}

TEST(SipHasherIncremental, DifferentKeysDisagree) {
  const SipKey other{0xdeadbeefULL, 0xcafebabeULL};
  SipHasher a(kKey);
  SipHasher b(other);
  a.absorb_u64(7);
  b.absorb_u64(7);
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace ba::crypto
