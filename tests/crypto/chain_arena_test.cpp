// Pins ChainArena (the arena-backed Dolev-Strong chain store) to the seed
// SigChain semantics: verify_batch accepts exactly the Values that
// SigChain::from_value + SigChain::verify accept, and to_value reproduces the
// seed encoding byte-for-byte. Also exercises the arena-specific contracts:
// node deduplication, incremental prefix bytes, and cached-negative MACs.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "crypto/signature.h"
#include "runtime/serde.h"
#include "runtime/value.h"

namespace ba::crypto {
namespace {

constexpr std::uint32_t kN = 7;

std::shared_ptr<const Authenticator> make_auth() {
  return std::make_shared<Authenticator>(0xba5eba11, kN);
}

Signer make_signer(const std::shared_ptr<const Authenticator>& auth,
                   ProcessId p) {
  return Signer{auth, p};
}

// Seed-path acceptance: parse with SigChain::from_value, then verify.
bool seed_accepts(const Authenticator& auth, const Value& v,
                  std::size_t min_len, std::optional<ProcessId> first) {
  auto chain = SigChain::from_value(v);
  if (!chain) return false;
  return chain->verify(auth, min_len, first);
}

// Builds a valid chain Value via the seed SigChain (independent producer).
Value seed_chain(const std::shared_ptr<const Authenticator>& auth,
                 const Value& value, const std::vector<ProcessId>& signers) {
  SigChain chain(value);
  for (ProcessId p : signers) chain.extend(make_signer(auth, p));
  return chain.to_value();
}

void expect_parity(ChainArena& arena, const Authenticator& auth,
                   const std::vector<Value>& candidates, std::size_t min_len,
                   std::optional<ProcessId> first, const std::string& where) {
  std::vector<const Value*> ptrs;
  ptrs.reserve(candidates.size());
  for (const Value& v : candidates) ptrs.push_back(&v);
  const std::vector<ChainArena::Accepted> got =
      arena.verify_batch(ptrs, min_len, first);

  std::vector<std::size_t> want;  // indices the seed path accepts, in order
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (seed_accepts(auth, candidates[i], min_len, first)) want.push_back(i);
  }
  ASSERT_EQ(got.size(), want.size()) << where;
  for (std::size_t k = 0; k < want.size(); ++k) {
    const auto chain = SigChain::from_value(candidates[want[k]]);
    ASSERT_TRUE(chain.has_value()) << where;
    EXPECT_EQ(got[k].value, chain->value()) << where << " accepted #" << k;
    // Round-trip: the arena re-encodes the accepted node byte-identically.
    EXPECT_EQ(encode_value(arena.to_value(got[k].node)),
              encode_value(candidates[want[k]]))
        << where << " accepted #" << k;
    EXPECT_EQ(arena.length(got[k].node), chain->length()) << where;
  }
}

TEST(ChainArena, AcceptsWhatSigChainAccepts) {
  auto auth = make_auth();
  ChainArena arena(auth);
  const Value payload{ValueVec{Value{"ds"}, Value{std::int64_t{42}}}};

  std::vector<Value> candidates;
  candidates.push_back(seed_chain(auth, payload, {0}));           // len 1
  candidates.push_back(seed_chain(auth, payload, {0, 1}));        // len 2
  candidates.push_back(seed_chain(auth, payload, {0, 1, 2, 3}));  // len 4
  candidates.push_back(seed_chain(auth, payload, {2, 1}));        // wrong first
  candidates.push_back(seed_chain(auth, payload, {}));            // empty

  for (std::size_t min_len : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}}) {
    expect_parity(arena, *auth, candidates, min_len, ProcessId{0},
                  "first=0 min_len=" + std::to_string(min_len));
    expect_parity(arena, *auth, candidates, min_len, std::nullopt,
                  "first=nullopt min_len=" + std::to_string(min_len));
  }
}

TEST(ChainArena, RejectsMalformedAndForged) {
  auto auth = make_auth();
  ChainArena arena(auth);
  const Value payload{Value{std::int64_t{7}}};

  std::vector<Value> candidates;
  // Not a vec at all.
  candidates.emplace_back(std::int64_t{3});
  // Wrong tag.
  candidates.push_back(Value{ValueVec{Value{"sig"}, payload}});
  // Chain with a non-signature element.
  candidates.push_back(
      Value{ValueVec{Value{"chain"}, payload, Value{std::int64_t{9}}}});
  // Signature with out-of-range signer (non-canonical encoding).
  candidates.push_back(Value{ValueVec{
      Value{"chain"}, payload,
      Value{ValueVec{Value{"sig"}, Value{std::int64_t{0x1'0000'0000LL}},
                     Value{std::int64_t{5}}}}}});
  // Forged MAC.
  {
    Value good = seed_chain(auth, payload, {0, 1});
    ValueVec vec = good.as_vec();
    ValueVec sig = vec[3].as_vec();
    sig[2] = Value{static_cast<std::int64_t>(sig[2].as_int() ^ 1)};
    vec[3] = Value{std::move(sig)};
    candidates.emplace_back(std::move(vec));
  }
  // Duplicate signer.
  {
    Value good = seed_chain(auth, payload, {0, 1});
    ValueVec vec = good.as_vec();
    vec.push_back(vec[2]);  // re-append signer 0's signature
    candidates.emplace_back(std::move(vec));
  }
  // Signer id >= n (unknown key).
  {
    SigChain chain(payload);
    Authenticator big(0xba5eba11, kN + 4);
    auto big_ptr = std::make_shared<Authenticator>(big);
    chain.extend(Signer{big_ptr, kN + 1});
    candidates.push_back(chain.to_value());
  }
  // A valid control row so the accepted list is non-trivial.
  candidates.push_back(seed_chain(auth, payload, {0, 3}));

  expect_parity(arena, *auth, candidates, 1, ProcessId{0}, "malformed grid");
  // Everything except the control row must have been rejected.
  std::vector<const Value*> ptrs;
  for (const Value& v : candidates) ptrs.push_back(&v);
  EXPECT_EQ(arena.verify_batch(ptrs, 1, ProcessId{0}).size(), 1u);
}

TEST(ChainArena, ExtendMatchesSeedEncodingAndDeduplicates) {
  auto auth = make_auth();
  ChainArena arena(auth);
  const Value payload{Value{"proposal"}};

  const std::uint32_t r = arena.root(payload);
  EXPECT_EQ(arena.root(payload), r);  // root interning
  EXPECT_EQ(arena.length(r), 0u);

  const std::uint32_t c1 = arena.extend(r, make_signer(auth, 2));
  const std::uint32_t c2 = arena.extend(c1, make_signer(auth, 5));
  EXPECT_EQ(arena.extend(r, make_signer(auth, 2)), c1);   // child dedup
  EXPECT_EQ(arena.extend(c1, make_signer(auth, 5)), c2);  // deeper dedup
  EXPECT_EQ(arena.length(c2), 2u);
  EXPECT_TRUE(arena.contains_signer(c2, 2));
  EXPECT_TRUE(arena.contains_signer(c2, 5));
  EXPECT_FALSE(arena.contains_signer(c2, 0));
  EXPECT_FALSE(arena.contains_signer(r, 2));

  EXPECT_EQ(encode_value(arena.to_value(c2)),
            encode_value(seed_chain(auth, payload, {2, 5})));
  EXPECT_EQ(arena.value_of(c2), payload);
}

// Re-verifying the same (or extended) chains must hit the memo: acceptance
// stays identical across repeated batches, and chains that share a prefix
// with already-verified material are still accepted/rejected correctly.
TEST(ChainArena, RepeatedAndExtendedBatchesAreStable) {
  auto auth = make_auth();
  ChainArena arena(auth);
  const Value payload{Value{std::int64_t{1}}};

  const Value len2 = seed_chain(auth, payload, {0, 1});
  const Value len3 = seed_chain(auth, payload, {0, 1, 2});
  Value forged = [&] {
    ValueVec vec = len3.as_vec();
    ValueVec sig = vec[4].as_vec();
    sig[2] = Value{static_cast<std::int64_t>(sig[2].as_int() + 1)};
    vec[4] = Value{std::move(sig)};
    return Value{std::move(vec)};
  }();

  for (int round = 0; round < 3; ++round) {
    std::vector<const Value*> batch{&len2, &len3, &forged};
    const auto accepted = arena.verify_batch(batch, 2, ProcessId{0});
    ASSERT_EQ(accepted.size(), 2u) << "round " << round;
    EXPECT_EQ(encode_value(arena.to_value(accepted[0].node)),
              encode_value(len2));
    EXPECT_EQ(encode_value(arena.to_value(accepted[1].node)),
              encode_value(len3));
  }
}

// Randomized parity sweep: mixes of valid chains, truncations, bit flips,
// and reordered signers, compared against the seed path for every
// (min_len, expected_first) combination.
TEST(ChainArena, RandomizedParitySweep) {
  auto auth = make_auth();
  std::mt19937_64 rng(0xC4A1);
  for (int trial = 0; trial < 50; ++trial) {
    ChainArena arena(auth);
    std::vector<Value> candidates;
    for (int c = 0; c < 12; ++c) {
      const Value payload{static_cast<std::int64_t>(rng() % 4)};
      const std::size_t len = rng() % 5;
      std::vector<ProcessId> signers;
      for (std::size_t i = 0; i < len; ++i) {
        signers.push_back(static_cast<ProcessId>(rng() % kN));  // dups likely
      }
      Value v = seed_chain(auth, payload, signers);
      if (len > 0 && rng() % 3 == 0) {  // corrupt one MAC
        ValueVec vec = v.as_vec();
        const std::size_t k = 2 + rng() % len;
        ValueVec sig = vec[k].as_vec();
        sig[2] = Value{static_cast<std::int64_t>(sig[2].as_int() ^ 0x10)};
        vec[k] = Value{std::move(sig)};
        v = Value{std::move(vec)};
      }
      candidates.push_back(std::move(v));
    }
    const std::size_t min_len = rng() % 4;
    std::optional<ProcessId> first;
    if (rng() % 2 == 0) first = static_cast<ProcessId>(rng() % kN);
    expect_parity(arena, *auth, candidates, min_len, first,
                  "trial " + std::to_string(trial));
  }
}

}  // namespace
}  // namespace ba::crypto
