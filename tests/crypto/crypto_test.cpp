#include <gtest/gtest.h>

#include <memory>

#include "crypto/signature.h"
#include "crypto/siphash.h"

namespace ba::crypto {
namespace {

TEST(SipHash, KnownTestVector) {
  // Reference vector from the SipHash paper (Appendix A): key 0x00..0x0f,
  // input 0x00..0x0e -> 0xa129ca6149be45e5.
  SipKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  std::vector<std::uint8_t> msg(15);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(siphash24(key, msg), 0xa129ca6149be45e5ULL);
}

TEST(SipHash, EmptyInputVector) {
  SipKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  EXPECT_EQ(siphash24(key, {}), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHash, KeySeparation) {
  std::vector<std::uint8_t> msg{1, 2, 3};
  EXPECT_NE(siphash24(SipKey{1, 2}, msg), siphash24(SipKey{1, 3}, msg));
  EXPECT_NE(derive_key(42, 0), derive_key(42, 1));
  EXPECT_NE(derive_key(42, 0), derive_key(43, 0));
  EXPECT_EQ(derive_key(42, 7), derive_key(42, 7));
}

class SignatureTest : public ::testing::Test {
 protected:
  std::shared_ptr<Authenticator> auth_ =
      std::make_shared<Authenticator>(12345, 4);
};

TEST_F(SignatureTest, SignVerifyRoundTrip) {
  Signer s0(auth_, 0);
  Value msg{"attack at dawn"};
  Signature sig = s0.sign_value(msg);
  EXPECT_EQ(sig.signer, 0u);
  EXPECT_TRUE(auth_->verify_value(sig, msg));
}

TEST_F(SignatureTest, WrongMessageFails) {
  Signer s0(auth_, 0);
  Signature sig = s0.sign_value(Value{"a"});
  EXPECT_FALSE(auth_->verify_value(sig, Value{"b"}));
}

TEST_F(SignatureTest, ForgedSignerFails) {
  Signer s0(auth_, 0);
  Signature sig = s0.sign_value(Value{"a"});
  sig.signer = 1;  // claim someone else signed it
  EXPECT_FALSE(auth_->verify_value(sig, Value{"a"}));
}

TEST_F(SignatureTest, OutOfRangeSignerFails) {
  Signature sig{99, 0};
  EXPECT_FALSE(auth_->verify_value(sig, Value{"a"}));
}

TEST_F(SignatureTest, SignatureValueEncoding) {
  Signer s2(auth_, 2);
  Signature sig = s2.sign_value(Value{7});
  auto decoded = Signature::from_value(sig.to_value());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sig);
  EXPECT_EQ(Signature::from_value(Value{"junk"}), std::nullopt);
  EXPECT_EQ(Signature::from_value(Value::vec({Value{"sig"}, Value{1}})),
            std::nullopt);
}

TEST_F(SignatureTest, ChainBuildsAndVerifies) {
  SigChain chain(Value{"v"});
  chain.extend(Signer(auth_, 1));
  chain.extend(Signer(auth_, 0));
  chain.extend(Signer(auth_, 3));
  EXPECT_TRUE(chain.verify(*auth_, 3, 1));
  EXPECT_TRUE(chain.verify(*auth_, 2, 1));
  EXPECT_FALSE(chain.verify(*auth_, 4, 1));   // too short
  EXPECT_FALSE(chain.verify(*auth_, 3, 0));   // wrong first signer
  EXPECT_TRUE(chain.contains_signer(0));
  EXPECT_FALSE(chain.contains_signer(2));
}

TEST_F(SignatureTest, ChainRejectsDuplicateSigners) {
  SigChain chain(Value{"v"});
  chain.extend(Signer(auth_, 1));
  chain.extend(Signer(auth_, 1));
  EXPECT_FALSE(chain.verify(*auth_, 2, 1));
}

TEST_F(SignatureTest, ChainRejectsTamperedValue) {
  SigChain chain(Value{"v"});
  chain.extend(Signer(auth_, 0));
  chain.extend(Signer(auth_, 1));
  Value enc = chain.to_value();
  enc.as_vec()[1] = Value{"w"};  // swap the endorsed value
  auto tampered = SigChain::from_value(enc);
  ASSERT_TRUE(tampered.has_value());
  EXPECT_FALSE(tampered->verify(*auth_, 2, 0));
}

TEST_F(SignatureTest, ChainRejectsReorderedSignatures) {
  SigChain chain(Value{"v"});
  chain.extend(Signer(auth_, 0));
  chain.extend(Signer(auth_, 1));
  Value enc = chain.to_value();
  std::swap(enc.as_vec()[2], enc.as_vec()[3]);
  auto reordered = SigChain::from_value(enc);
  ASSERT_TRUE(reordered.has_value());
  EXPECT_FALSE(reordered->verify(*auth_, 2, 1));
}

TEST_F(SignatureTest, ChainValueRoundTrip) {
  SigChain chain(Value::vec({Value{"dsv"}, Value{0}, Value{1}}));
  chain.extend(Signer(auth_, 2));
  auto decoded = SigChain::from_value(chain.to_value());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->value(), chain.value());
  EXPECT_EQ(decoded->sigs().size(), 1u);
  EXPECT_TRUE(decoded->verify(*auth_, 1, 2));
}

TEST_F(SignatureTest, DifferentRunsDifferentKeys) {
  Authenticator other(54321, 4);
  Signer s0(auth_, 0);
  Signature sig = s0.sign_value(Value{"x"});
  EXPECT_FALSE(other.verify_value(sig, Value{"x"}));
}

}  // namespace
}  // namespace ba::crypto
