// Parameterized property tests for merge (Algorithm 5 / Lemma 16) and
// swap_omission (Algorithm 4 / Lemma 15) across protocols and isolation
// rounds: for every mergeable pair the merged execution must (1) be a valid
// execution, (2) be indistinguishable from the sources for the isolated
// groups, (3) isolate both groups at their rounds — and the isolated
// processes must decide exactly as in their source executions.

#include <gtest/gtest.h>

#include <memory>

#include "core/ba.h"

namespace ba::calculus {
namespace {

struct MergeCase {
  std::string name;
  SystemParams params;
  ProtocolFactory factory;
};

std::vector<MergeCase> merge_cases() {
  auto auth = std::make_shared<crypto::Authenticator>(404, 8);
  std::vector<MergeCase> cases;
  cases.push_back({"phase_king", SystemParams{8, 2},
                   protocols::phase_king_consensus()});
  cases.push_back({"ds_weak", SystemParams{8, 2},
                   protocols::weak_consensus_auth(auth)});
  cases.push_back({"gossip", SystemParams{8, 2},
                   protocols::wc_candidate_gossip_ring(2, 3)});
  cases.push_back({"floodset", SystemParams{8, 2},
                   protocols::floodset_consensus()});
  cases.push_back({"crusader", SystemParams{8, 2},
                   protocols::crusader_broadcast_bit(0)});
  return cases;
}

class MergeProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int>> {};

TEST_P(MergeProperty, Lemma16HoldsAcrossRoundPairs) {
  const auto [case_idx, k1, dk] = GetParam();
  const MergeCase c = merge_cases()[case_idx];
  const Round kb = static_cast<Round>(k1);
  const Round kc = static_cast<Round>(k1 + dk);

  const ProcessSet b{{6u}};
  const ProcessSet grp_c{{7u}};

  auto run_isolated = [&](const ProcessSet& g, Round k) {
    return IsolatedExecution{
        run_execution(c.params, c.factory,
                      std::vector<Value>(c.params.n, Value::bit(0)),
                      isolate_group(g, k))
            .trace,
        g, k};
  };
  IsolatedExecution eb = run_isolated(b, kb);
  IsolatedExecution ec = run_isolated(grp_c, kc);
  ASSERT_TRUE(are_mergeable(eb, ec));

  ExecutionTrace merged = merge(c.params, c.factory, eb, ec);

  // Lemma 16 (1): a valid execution — well-formed per validate() and clean
  // under the full invariant lint, determinism replay included.
  EXPECT_EQ(merged.validate(), std::nullopt) << c.name;
  analysis::LintReport lint = analysis::lint_execution(merged, c.factory);
  EXPECT_TRUE(lint.clean()) << c.name << ": " << lint;
  // Lemma 16 (2): indistinguishability for the isolated groups.
  EXPECT_TRUE(merged.indistinguishable_for(6, eb.trace)) << c.name;
  EXPECT_TRUE(merged.indistinguishable_for(7, ec.trace)) << c.name;
  // ... hence identical decisions (determinism).
  EXPECT_EQ(merged.procs[6].decision, eb.trace.procs[6].decision) << c.name;
  EXPECT_EQ(merged.procs[7].decision, ec.trace.procs[7].decision) << c.name;
  // Lemma 16 (3): both groups isolated at their rounds.
  EXPECT_EQ(check_isolated(merged, b, kb), std::nullopt) << c.name;
  EXPECT_EQ(check_isolated(merged, grp_c, kc), std::nullopt) << c.name;
  // The formal A.1.6 conditions hold as well.
  EXPECT_EQ(check_execution_conditions(c.params, merged.faulty,
                                       to_behaviors(merged)),
            std::nullopt)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MergeProperty,
    ::testing::Combine(::testing::Range<std::size_t>(0, 5),
                       ::testing::Values(1, 2, 3, 4),   // k1
                       ::testing::Values(-1, 0, 1)),    // k2 - k1
    [](const auto& info) {
      const int k1 = std::get<1>(info.param);
      const int dk = std::get<2>(info.param);
      std::string name = merge_cases()[std::get<0>(info.param)].name;
      name += "_k" + std::to_string(k1);
      name += dk < 0 ? "_m1" : dk == 0 ? "_0" : "_p1";
      return name;
    });

class SwapProperty : public ::testing::TestWithParam<int> {};

TEST_P(SwapProperty, Lemma15OnGossipIsolations) {
  // Gossip with fan-out 1: each member's blame set is a single predecessor,
  // so the swap preconditions hold at every isolation round.
  const Round k = static_cast<Round>(GetParam());
  SystemParams params{8, 3};
  auto factory = protocols::wc_candidate_gossip_ring(1, 3);
  RunResult res = run_execution(params, factory,
                                std::vector<Value>(8, Value::bit(0)),
                                isolate_group(ProcessSet{{6, 7}}, k));
  for (ProcessId subject : {6u, 7u}) {
    auto pre = check_swap_preconditions(res.trace, subject);
    if (!pre.ok) continue;  // e.g. no omissions at late k
    SwapResult swapped = swap_omission(res.trace, subject);
    EXPECT_EQ(swapped.execution.validate(), std::nullopt) << "k=" << k;
    analysis::LintReport lint =
        analysis::lint_execution(swapped.execution, factory);
    EXPECT_TRUE(lint.clean()) << "k=" << k << ": " << lint;
    EXPECT_FALSE(swapped.execution.faulty.contains(subject));
    for (ProcessId p = 0; p < 8; ++p) {
      EXPECT_TRUE(res.trace.indistinguishable_for(p, swapped.execution))
          << "k=" << k << " p" << p;
      EXPECT_EQ(swapped.execution.procs[p].decision,
                res.trace.procs[p].decision);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, SwapProperty, ::testing::Range(1, 6));

}  // namespace
}  // namespace ba::calculus
