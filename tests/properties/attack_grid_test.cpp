// Attack-engine grid: TEST_P over (candidate protocol x system size),
// asserting the Theorem 2 dichotomy every time — broken candidates yield a
// replay-verified certificate, correct protocols survive with message
// complexity at or above t^2/32. Both engine routes (direct Lemma 2 probing
// and the pure merge construction) are exercised.

#include <gtest/gtest.h>

#include <memory>

#include "core/ba.h"

namespace ba::lowerbound {
namespace {

struct GridCase {
  std::string name;
  bool correct;  // should the protocol survive?
  std::function<ProtocolFactory(const SystemParams&)> make;
};

std::vector<GridCase> grid_cases() {
  std::vector<GridCase> cases;
  cases.push_back({"silent", false, [](const SystemParams&) {
                     return protocols::wc_candidate_silent(1);
                   }});
  cases.push_back({"beacon0", false, [](const SystemParams&) {
                     return protocols::wc_candidate_leader_beacon(0);
                   }});
  cases.push_back({"beacon_last", false, [](const SystemParams& p) {
                     return protocols::wc_candidate_leader_beacon(p.n - 1);
                   }});
  cases.push_back({"gossip1", false, [](const SystemParams&) {
                     return protocols::wc_candidate_gossip_ring(1, 2);
                   }});
  cases.push_back({"gossip3", false, [](const SystemParams&) {
                     return protocols::wc_candidate_gossip_ring(3, 4);
                   }});
  cases.push_back({"ds_weak", true, [](const SystemParams& p) {
                     auto auth =
                         std::make_shared<crypto::Authenticator>(77, p.n);
                     return protocols::weak_consensus_auth(auth);
                   }});
  return cases;
}

class AttackGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, bool>> {};

TEST_P(AttackGrid, Theorem2Dichotomy) {
  const std::size_t case_idx = std::get<0>(GetParam());
  const auto n = static_cast<std::uint32_t>(std::get<1>(GetParam()));
  const bool direct = std::get<2>(GetParam());
  const GridCase c = grid_cases()[case_idx];
  const SystemParams params{n, n - 1};

  AttackOptions opts;
  opts.direct_lemma2 = direct;
  ProtocolFactory protocol = c.make(params);
  AttackReport report = attack_weak_consensus(params, protocol, opts);

  if (c.correct) {
    EXPECT_FALSE(report.violation_found) << report.narrative;
    EXPECT_GE(report.max_message_complexity, report.bound);
  } else {
    ASSERT_TRUE(report.violation_found) << c.name << "\n" << report.narrative;
    auto check = verify_certificate(*report.certificate, protocol);
    EXPECT_TRUE(check.ok) << c.name << ": " << check.error;
    EXPECT_LE(report.certificate->execution.faulty.size(), params.t);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AttackGrid,
    ::testing::Combine(::testing::Range<std::size_t>(0, 6),
                       ::testing::Values(10, 14, 20),
                       ::testing::Bool()),
    [](const auto& info) {
      return grid_cases()[std::get<0>(info.param)].name + "_n" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_direct" : "_merge");
    });

}  // namespace
}  // namespace ba::lowerbound
