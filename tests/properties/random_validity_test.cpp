// Property tests over RANDOM validity properties: generate seeded random
// val : I -> 2^{V_O} \ {emptyset} tables for small (n, t), and check the §5
// pipeline end to end:
//   * triviality / CC verdicts are consistent with each other;
//   * whenever CC holds, the solver synthesized by Algorithm 2 over
//     interactive consistency (a) terminates and agrees, (b) only ever
//     decides values admissible for the actual input configuration
//     (Lemma 7's guarantee), under fault-free AND Byzantine executions;
//   * Γ really lies in the containment intersection at every configuration.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/ba.h"

namespace ba {
namespace {

constexpr std::uint32_t kN = 4;
constexpr std::uint32_t kT = 1;

/// A random validity property over binary proposals and decisions {0,1,2},
/// seeded: each input configuration maps to a random non-empty subset of the
/// output domain.
validity::ValidityProperty random_property(std::uint64_t seed) {
  validity::ValidityProperty p;
  p.name = "random-" + std::to_string(seed);
  p.input_domain = validity::binary_domain();
  p.output_domain = validity::int_domain(3);

  auto table = std::make_shared<std::map<Value, std::uint8_t>>();
  validity::for_each_input_config(
      kN, kT, p.input_domain, [&](const validity::InputConfig& c) {
        const Bytes enc = encode_value(c.to_value());
        std::uint8_t mask = static_cast<std::uint8_t>(
            crypto::siphash24(crypto::derive_key(seed, 0x7ab1e), enc) % 7 +
            1);  // 1..7: non-empty subset of 3 values
        (*table)[c.to_value()] = mask;
        return true;
      });
  p.admissible = [table](const validity::InputConfig& c, const Value& v) {
    auto it = table->find(c.to_value());
    if (it == table->end()) return true;  // out-of-model configs: anything
    if (!v.is_int() || v.as_int() < 0 || v.as_int() > 2) return false;
    return ((it->second >> v.as_int()) & 1) != 0;
  };
  return p;
}

class RandomValidity : public ::testing::TestWithParam<int> {};

TEST_P(RandomValidity, GammaLiesInContainmentIntersection) {
  auto prop = random_property(GetParam());
  validity::for_each_input_config(
      kN, kT, prop.input_domain, [&](const validity::InputConfig& c) {
        auto inter = validity::containment_intersection(prop, kT, c);
        auto g = validity::gamma(prop, kT, c);
        EXPECT_EQ(g.has_value(), !inter.empty());
        if (g) {
          EXPECT_NE(std::find(inter.begin(), inter.end(), *g), inter.end());
          // Gamma's pick is admissible for c itself (containment is
          // reflexive).
          EXPECT_TRUE(prop.admissible(c, *g));
        }
        return true;
      });
}

TEST_P(RandomValidity, VerdictInternallyConsistent) {
  auto prop = random_property(GetParam());
  auto v = validity::solvability(prop, kN, kT);
  if (v.trivial) {
    // An always-admissible value is in every containment intersection.
    EXPECT_TRUE(v.cc);
  }
  EXPECT_EQ(v.authenticated_solvable, v.trivial || v.cc);
  EXPECT_EQ(v.unauthenticated_solvable,
            v.trivial || (v.cc && kN > 3 * kT));
  if (!v.cc) {
    ASSERT_TRUE(v.cc_witness.has_value());
    EXPECT_TRUE(
        validity::containment_intersection(prop, kT, *v.cc_witness).empty());
  }
}

TEST_P(RandomValidity, SynthesizedSolverRespectsValidity) {
  auto prop = random_property(GetParam());
  AgreementProblem problem{SystemParams{kN, kT}, prop};
  auto auth = std::make_shared<crypto::Authenticator>(GetParam(), kN);
  auto solver = problem.make_solver(/*authenticated=*/true, auth);
  auto verdict = problem.analyze();
  ASSERT_EQ(solver.has_value(),
            verdict.trivial || verdict.cc);  // Theorem 4
  if (!solver) return;

  // Fault-free: every full proposal vector.
  for (int mask = 0; mask < (1 << kN); ++mask) {
    std::vector<Value> proposals(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      proposals[i] = Value::bit((mask >> i) & 1);
    }
    RunOptions lint_opts;
    lint_opts.lint_trace = true;
    RunResult res = run_execution(SystemParams{kN, kT}, *solver, proposals,
                                  Adversary::none(), lint_opts);
    ASSERT_TRUE(res.lint_clean()) << "mask=" << mask << ": " << *res.lint;
    auto d = res.unanimous_correct_decision();
    ASSERT_TRUE(d.has_value()) << "mask=" << mask;
    EXPECT_EQ(problem.check_execution(res.trace), std::nullopt)
        << "mask=" << mask;
  }

  // One Byzantine equivocator in every slot.
  for (ProcessId byz = 0; byz < kN; ++byz) {
    Adversary adv;
    adv.faulty = ProcessSet{{byz}};
    adv.byzantine = adv.faulty;
    adv.byzantine_factory = byz_equivocate_bits(5);
    std::vector<Value> proposals(kN, Value::bit(1));
    RunOptions lint_opts;
    lint_opts.lint_trace = true;
    RunResult res = run_execution(SystemParams{kN, kT}, *solver, proposals,
                                  adv, lint_opts);
    ASSERT_TRUE(res.lint_clean()) << "byz=" << byz << ": " << *res.lint;
    auto d = res.unanimous_correct_decision();
    ASSERT_TRUE(d.has_value()) << "byz=" << byz;
    EXPECT_EQ(problem.check_execution(res.trace), std::nullopt)
        << "byz=" << byz;
  }
}

TEST_P(RandomValidity, UnauthenticatedSolverViaEig) {
  auto prop = random_property(GetParam());
  AgreementProblem problem{SystemParams{kN, kT}, prop};
  auto solver = problem.make_solver(/*authenticated=*/false);
  auto verdict = problem.analyze();
  // kN = 4 > 3 * kT = 3, so CC (or triviality) decides.
  ASSERT_EQ(solver.has_value(), verdict.trivial || verdict.cc);
  if (!solver) return;
  std::vector<Value> proposals{Value::bit(0), Value::bit(1), Value::bit(1),
                               Value::bit(0)};
  RunOptions lint_opts;
  lint_opts.lint_trace = true;
  RunResult res = run_execution(SystemParams{kN, kT}, *solver, proposals,
                                Adversary::none(), lint_opts);
  ASSERT_TRUE(res.lint_clean()) << *res.lint;
  ASSERT_TRUE(res.unanimous_correct_decision().has_value());
  EXPECT_EQ(problem.check_execution(res.trace), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomValidity,
                         ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Pooled campaign: the §5 verdict-consistency checks over a much wider set
// of random validity properties, fanned across the experiment pool with
// index-derived seeds. Workers return a verdict digest (or a failure
// description); the digests double as the determinism witness — identical
// vectors at every worker count.

std::string verdict_point(std::uint64_t seed) {
  auto prop = random_property(seed);
  auto v = validity::solvability(prop, kN, kT);
  if (v.trivial && !v.cc) return prop.name + ": trivial but not CC";
  if (v.authenticated_solvable != (v.trivial || v.cc)) {
    return prop.name + ": authenticated verdict inconsistent";
  }
  if (v.unauthenticated_solvable != (v.trivial || (v.cc && kN > 3 * kT))) {
    return prop.name + ": unauthenticated verdict inconsistent";
  }
  if (!v.cc) {
    if (!v.cc_witness) return prop.name + ": missing CC witness";
    if (!validity::containment_intersection(prop, kT, *v.cc_witness).empty()) {
      return prop.name + ": CC witness has non-empty intersection";
    }
  }
  return std::string("ok t=") + (v.trivial ? "1" : "0") +
         " cc=" + (v.cc ? "1" : "0");
}

TEST(RandomValidityCampaign, PooledVerdictSweepParallelEqualsSerial) {
  constexpr std::size_t kProperties = 64;
  const std::function<std::string(std::size_t)> point = [](std::size_t i) {
    return verdict_point(parallel::derive_task_seed(0x7a11d, i));
  };

  parallel::ExperimentPool serial(1);
  const std::vector<std::string> reference = serial.map(kProperties, point);
  for (const std::string& r : reference) {
    EXPECT_EQ(r.substr(0, 2), "ok") << r;
  }

  parallel::ExperimentPool wide(8);
  EXPECT_EQ(wide.map(kProperties, point), reference);
}

}  // namespace
}  // namespace ba
