// Seeded-adversary property sweeps for the graded/relaxed primitives whose
// contracts are NOT plain agreement: crusader broadcast, gradecast, and
// approximate agreement. Each primitive's specific invariants must survive
// random omission schedules, random Byzantine placements, and isolation.

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "core/ba.h"

namespace ba {
namespace {

ProcessSet seeded_faulty(std::uint32_t n, std::uint32_t budget,
                         std::uint64_t seed, ProcessId keep_correct) {
  ProcessSet f;
  for (std::uint32_t i = 0; i < n && f.size() < budget; ++i) {
    if (i == keep_correct) continue;
    const std::uint64_t h = crypto::siphash24(
        crypto::derive_key(seed, 0xfee1),
        std::array<std::uint8_t, 1>{static_cast<std::uint8_t>(i)});
    if (h % 3 == 0) f.insert(i);
  }
  return f;
}

Adversary seeded_adversary(const SystemParams& params, std::uint64_t seed,
                           ProcessId keep_correct) {
  switch (seed % 3) {
    case 0:
      return random_omissions(
          seeded_faulty(params.n, params.t, seed, keep_correct), seed, 350);
    case 1: {
      Adversary adv;
      adv.faulty = seeded_faulty(params.n, params.t, seed, keep_correct);
      adv.byzantine = adv.faulty;
      adv.byzantine_factory = byz_equivocate_bits(10);
      return adv;
    }
    default: {
      const std::uint32_t g = 1 + seed % params.t;
      ProcessSet grp;
      for (std::uint32_t i = 0; i < g; ++i) {
        ProcessId p = (keep_correct + 1 + i) % params.n;
        if (p != keep_correct) grp.insert(p);
      }
      return isolate_group(grp, 1 + (seed / 3) % 3);
    }
  }
}

/// All primitive sweeps run with the execution-invariant linter attached.
RunOptions linted_run() {
  RunOptions opts;
  opts.lint_trace = true;
  return opts;
}

void check_lint_clean(const RunResult& res, std::uint64_t seed) {
  ASSERT_TRUE(res.lint.has_value()) << "seed=" << seed;
  EXPECT_TRUE(res.lint->clean()) << "seed=" << seed << ": " << *res.lint;
}

class PrimitiveProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrimitiveProperty, CrusaderNeverSplitsBits) {
  const std::uint64_t seed = GetParam();
  SystemParams params{10, 3};
  Adversary adv = seeded_adversary(params, seed, /*keep_correct=*/0);
  std::vector<Value> proposals(10, Value::bit(static_cast<int>(seed & 1)));
  RunResult res = run_execution(params, protocols::crusader_broadcast_bit(0),
                                proposals, adv, linted_run());
  ASSERT_EQ(res.trace.validate(), std::nullopt);
  check_lint_clean(res, seed);
  std::optional<Value> bit;
  for (ProcessId p = 0; p < 10; ++p) {
    if (adv.faulty.contains(p)) continue;
    ASSERT_TRUE(res.decisions[p].has_value());
    const Value& d = *res.decisions[p];
    if (d.is_null()) continue;
    if (!bit) {
      bit = d;
    } else {
      EXPECT_EQ(d, *bit) << "seed=" << seed;
    }
  }
}

TEST_P(PrimitiveProperty, GradecastGradeGapAndValueConsistency) {
  const std::uint64_t seed = GetParam();
  SystemParams params{10, 3};
  Adversary adv = seeded_adversary(params, seed, /*keep_correct=*/0);
  std::vector<Value> proposals(10, Value::bit(1));
  RunResult res = run_execution(params, protocols::gradecast_bit(0),
                                proposals, adv, linted_run());
  check_lint_clean(res, seed);
  int min_grade = 3, max_grade = -1;
  std::optional<Value> graded;
  for (ProcessId p = 0; p < 10; ++p) {
    if (adv.faulty.contains(p)) continue;
    ASSERT_TRUE(res.decisions[p].has_value());
    auto out = protocols::parse_gradecast(*res.decisions[p]);
    ASSERT_TRUE(out.has_value());
    min_grade = std::min(min_grade, out->grade);
    max_grade = std::max(max_grade, out->grade);
    if (out->grade >= 1) {
      if (!graded) {
        graded = out->value;
      } else {
        EXPECT_EQ(out->value, *graded) << "seed=" << seed;
      }
    }
  }
  EXPECT_LE(max_grade - min_grade, 1) << "seed=" << seed;
  // A correct sender (p0 is always kept correct) forces grade 2 everywhere
  // unless the adversary can omit toward receivers... omissions only
  // involve faulty endpoints, so correct receivers still hear everything
  // from correct processes: grade 2 for everyone correct.
  if (adv.byzantine.empty()) {
    EXPECT_EQ(min_grade, 2) << "seed=" << seed;
  }
}

TEST_P(PrimitiveProperty, ApproximateAgreementValidityAndConvergence) {
  const std::uint64_t seed = GetParam();
  SystemParams params{10, 3};
  Adversary adv = seeded_adversary(params, seed, /*keep_correct=*/0);
  std::vector<Value> proposals;
  std::int64_t lo = 1000, hi = -1000;
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto v = static_cast<std::int64_t>(
        crypto::siphash24(crypto::derive_key(seed, 0xaa),
                          std::array<std::uint8_t, 1>{
                              static_cast<std::uint8_t>(i)}) %
            1999) -
        999;
    proposals.push_back(Value{v});
    if (!adv.faulty.contains(i)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  RunResult res = run_execution(params,
                                protocols::approximate_agreement(1, 1000),
                                proposals, adv, linted_run());
  check_lint_clean(res, seed);
  std::int64_t dmin = 2000, dmax = -2000;
  for (ProcessId p = 0; p < 10; ++p) {
    if (adv.faulty.contains(p)) continue;
    ASSERT_TRUE(res.decisions[p].has_value());
    const std::int64_t d = res.decisions[p]->as_int();
    dmin = std::min(dmin, d);
    dmax = std::max(dmax, d);
  }
  EXPECT_LE(dmax - dmin, 1) << "seed=" << seed;       // epsilon-agreement
  EXPECT_GE(dmin, lo) << "seed=" << seed;             // validity
  EXPECT_LE(dmax, hi) << "seed=" << seed;
}

TEST_P(PrimitiveProperty, TurpinCoanAgreementUnderSeededAdversaries) {
  const std::uint64_t seed = GetParam();
  SystemParams params{10, 3};
  Adversary adv = seeded_adversary(params, seed, /*keep_correct=*/1);
  std::vector<Value> proposals(10, Value{"blk-" + std::to_string(seed % 4)});
  RunResult res = run_execution(params, protocols::turpin_coan_multivalued(),
                                proposals, adv, linted_run());
  check_lint_clean(res, seed);
  std::optional<Value> first;
  for (ProcessId p = 0; p < 10; ++p) {
    if (adv.faulty.contains(p)) continue;
    ASSERT_TRUE(res.decisions[p].has_value());
    if (!first) first = res.decisions[p];
    EXPECT_EQ(*res.decisions[p], *first) << "seed=" << seed;
  }
  // Unanimity among ALL processes (omission/isolation cases keep honest
  // state machines): the common value must win when the adversary is not
  // Byzantine.
  if (adv.byzantine.empty()) {
    EXPECT_EQ(*first, proposals[0]) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimitiveProperty, ::testing::Range(0, 18));

}  // namespace
}  // namespace ba
