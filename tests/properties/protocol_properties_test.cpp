// Property tests over the whole protocol zoo: for every correct protocol and
// a grid of seeded adversaries (random omissions, random Byzantine
// placements, isolation at random rounds), the protocol's contract —
// Termination, Agreement, its validity property, and trace well-formedness —
// must hold. TEST_P sweeps (protocol x adversary-seed).

#include <gtest/gtest.h>

#include <memory>

#include "core/ba.h"

namespace ba {
namespace {

struct ProtocolCase {
  std::string name;
  SystemParams params;
  ProtocolFactory factory;
  /// How to check decided values given the trace (validity).
  std::function<void(const ExecutionTrace&)> check_validity;
  /// Protocols tolerating only omission faults skip Byzantine schedules.
  bool byzantine_tolerant{true};
};

std::vector<Value> bit_proposals(std::uint32_t n, std::uint64_t seed) {
  std::vector<Value> out(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i] = Value::bit(static_cast<int>(
        crypto::siphash24(crypto::derive_key(seed, 0xb17),
                          std::array<std::uint8_t, 1>{
                              static_cast<std::uint8_t>(i)}) &
        1));
  }
  return out;
}

ProcessSet random_faulty(std::uint32_t n, std::uint32_t t,
                         std::uint64_t seed) {
  ProcessSet f;
  std::uint32_t budget = t;
  for (std::uint32_t i = 0; i < n && budget > 0; ++i) {
    const std::uint64_t h =
        crypto::siphash24(crypto::derive_key(seed, 0xfa),
                          std::array<std::uint8_t, 1>{
                              static_cast<std::uint8_t>(i)});
    if (h % 3 == 0) {
      f.insert(i);
      --budget;
    }
  }
  return f;
}

/// Every property-test execution runs with the invariant linter on: the
/// trace of every protocol in the zoo, under every adversary schedule, must
/// pass conservation, budget, determinism-replay, and quiescence checks.
RunOptions linted_run() {
  RunOptions opts;
  opts.lint_trace = true;
  return opts;
}

void check_lint_clean(const RunResult& res, const std::string& name) {
  ASSERT_TRUE(res.lint.has_value()) << name;
  EXPECT_TRUE(res.lint->clean()) << name << ": " << *res.lint;
  EXPECT_TRUE(res.lint->replayed) << name;
}

void check_agreement_and_termination(const ExecutionTrace& trace) {
  std::optional<Value> first;
  for (ProcessId p = 0; p < trace.params.n; ++p) {
    if (trace.faulty.contains(p)) continue;
    ASSERT_TRUE(trace.procs[p].decision.has_value())
        << "correct p" << p << " undecided";
    if (!first) first = trace.procs[p].decision;
    EXPECT_EQ(*trace.procs[p].decision, *first) << "p" << p;
  }
}

/// Strong validity over bits: unanimous correct proposals force the bit.
void check_strong_validity(const ExecutionTrace& trace) {
  std::optional<Value> unanimous;
  bool same = true;
  for (ProcessId p = 0; p < trace.params.n; ++p) {
    if (trace.faulty.contains(p)) continue;
    if (!unanimous) {
      unanimous = trace.procs[p].proposal;
    } else if (*unanimous != trace.procs[p].proposal) {
      same = false;
    }
  }
  if (!same || !unanimous) return;
  for (ProcessId p = 0; p < trace.params.n; ++p) {
    if (trace.faulty.contains(p)) continue;
    EXPECT_EQ(*trace.procs[p].decision, *unanimous);
  }
}

/// IC validity: the vector matches every correct process's proposal.
void check_ic_validity(const ExecutionTrace& trace) {
  for (ProcessId p = 0; p < trace.params.n; ++p) {
    if (trace.faulty.contains(p)) continue;
    const Value& d = *trace.procs[p].decision;
    ASSERT_TRUE(d.is_vec());
    ASSERT_EQ(d.as_vec().size(), trace.params.n);
    for (ProcessId q = 0; q < trace.params.n; ++q) {
      if (trace.faulty.contains(q)) continue;
      EXPECT_EQ(d.as_vec()[q], trace.procs[q].proposal)
          << "component " << q << " at p" << p;
    }
  }
}

std::vector<ProtocolCase> protocol_cases() {
  std::vector<ProtocolCase> cases;
  auto auth7 = std::make_shared<crypto::Authenticator>(1001, 7);
  auto auth4 = std::make_shared<crypto::Authenticator>(1002, 4);

  cases.push_back({"phase-king(7,2)", SystemParams{7, 2},
                   protocols::phase_king_consensus(), check_strong_validity});
  cases.push_back({"eig-strong(4,1)", SystemParams{4, 1},
                   protocols::eig_strong_consensus(), check_strong_validity});
  cases.push_back({"eig-ic(4,1)", SystemParams{4, 1},
                   protocols::eig_interactive_consistency(),
                   check_ic_validity});
  cases.push_back({"auth-ic(7,2)", SystemParams{7, 2},
                   protocols::auth_interactive_consistency(auth7),
                   check_ic_validity});
  cases.push_back({"auth-ic(4,2)", SystemParams{4, 2},
                   protocols::auth_interactive_consistency(auth4),
                   check_ic_validity});
  cases.push_back({"weak-auth(7,3)", SystemParams{7, 3},
                   protocols::weak_consensus_auth(auth7),
                   [](const ExecutionTrace&) {}});
  cases.push_back({"unauth-ic-bits(7,2)", SystemParams{7, 2},
                   protocols::unauth_interactive_consistency_bits(),
                   check_ic_validity});
  cases.push_back({"floodset(7,3)", SystemParams{7, 3},
                   protocols::floodset_consensus(),
                   [](const ExecutionTrace&) {},
                   /*byzantine_tolerant=*/false});
  cases.push_back({"early-floodset(7,3)", SystemParams{7, 3},
                   protocols::early_deciding_floodset(),
                   [](const ExecutionTrace&) {},
                   /*byzantine_tolerant=*/false});
  cases.push_back({"turpin-coan(7,2)", SystemParams{7, 2},
                   protocols::turpin_coan_multivalued(),
                   [](const ExecutionTrace&) {}});
  cases.push_back({"unauth-bb(7,2)", SystemParams{7, 2},
                   protocols::unauth_broadcast_bit(0),
                   [](const ExecutionTrace& trace) {
                     // Sender validity: a correct sender's bit is decided.
                     if (trace.faulty.contains(0)) return;
                     for (ProcessId p = 0; p < trace.params.n; ++p) {
                       if (trace.faulty.contains(p)) continue;
                       EXPECT_EQ(*trace.procs[p].decision,
                                 Value::bit(trace.procs[0]
                                                .proposal.try_bit()
                                                .value_or(0)));
                     }
                   }});
  cases.push_back(
      {"algo2-strong(4,1)", SystemParams{4, 1},
       reductions::agreement_from_ic(validity::strong_validity(4, 1),
                                     SystemParams{4, 1},
                                     protocols::eig_interactive_consistency()),
       check_strong_validity});
  return cases;
}

class ProtocolProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ProtocolProperty, RandomOmissionSchedules) {
  const auto [case_idx, seed] = GetParam();
  const ProtocolCase c = protocol_cases()[case_idx];

  ProcessSet faulty = random_faulty(c.params.n, c.params.t, seed);
  Adversary adv = random_omissions(faulty, seed, /*drop_permille=*/300);
  std::vector<Value> proposals = bit_proposals(c.params.n, seed);

  RunResult res = run_execution(c.params, c.factory, proposals, adv,
                                linted_run());
  EXPECT_EQ(res.trace.validate(), std::nullopt) << c.name;
  check_lint_clean(res, c.name);
  check_agreement_and_termination(res.trace);
  c.check_validity(res.trace);
}

TEST_P(ProtocolProperty, RandomIsolationSchedules) {
  const auto [case_idx, seed] = GetParam();
  const ProtocolCase c = protocol_cases()[case_idx];
  if (c.params.t < 1) GTEST_SKIP();

  // Isolate a random suffix group (size <= t) from a random round.
  const std::uint32_t gsz = 1 + seed % c.params.t;
  const Round from = 1 + (seed / 7) % 5;
  Adversary adv = isolate_group(
      ProcessSet::range(c.params.n - gsz, c.params.n), from);
  std::vector<Value> proposals = bit_proposals(c.params.n, seed * 31 + 7);

  RunResult res = run_execution(c.params, c.factory, proposals, adv,
                                linted_run());
  EXPECT_EQ(res.trace.validate(), std::nullopt) << c.name;
  check_lint_clean(res, c.name);
  check_agreement_and_termination(res.trace);
  c.check_validity(res.trace);
}

TEST_P(ProtocolProperty, RandomByzantinePlacements) {
  const auto [case_idx, seed] = GetParam();
  const ProtocolCase c = protocol_cases()[case_idx];
  if (!c.byzantine_tolerant) GTEST_SKIP();

  Adversary adv;
  adv.faulty = random_faulty(c.params.n, c.params.t, seed * 13 + 5);
  adv.byzantine = adv.faulty;
  switch (seed % 3) {
    case 0:
      adv.byzantine_factory = byz_silent();
      break;
    case 1:
      adv.byzantine_factory = byz_equivocate_bits(30);
      break;
    default:
      adv.byzantine_factory = byz_noise(seed, 30);
      break;
  }
  std::vector<Value> proposals = bit_proposals(c.params.n, seed * 17 + 3);

  RunResult res = run_execution(c.params, c.factory, proposals, adv,
                                linted_run());
  EXPECT_EQ(res.trace.validate(), std::nullopt) << c.name;
  check_lint_clean(res, c.name);
  check_agreement_and_termination(res.trace);
  c.check_validity(res.trace);
}

TEST_P(ProtocolProperty, DeterministicReplay) {
  // Same seed, same everything: two runs must produce identical traces.
  const auto [case_idx, seed] = GetParam();
  const ProtocolCase c = protocol_cases()[case_idx];

  ProcessSet faulty = random_faulty(c.params.n, c.params.t, seed);
  Adversary adv = random_omissions(faulty, seed, 250);
  std::vector<Value> proposals = bit_proposals(c.params.n, seed);

  RunResult a = run_execution(c.params, c.factory, proposals, adv);
  RunResult b = run_execution(c.params, c.factory, proposals, adv);
  ASSERT_EQ(a.trace.procs.size(), b.trace.procs.size());
  for (ProcessId p = 0; p < c.params.n; ++p) {
    EXPECT_EQ(a.trace.procs[p], b.trace.procs[p]) << c.name << " p" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolProperty,
    ::testing::Combine(::testing::Range<std::size_t>(0, 12),
                       ::testing::Values(1, 2, 3, 5, 8, 13)),
    [](const auto& info) {
      std::string name = protocol_cases()[std::get<0>(info.param)].name;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Pooled campaign: the same omission-schedule contract, but over full-range
// seeds derived per task index and fanned across the experiment pool. Worker
// tasks return a result string instead of asserting (gtest assertions are
// not thread-safe); the main thread asserts. Each point's string doubles as
// a digest of the execution, so re-running the campaign at a different
// worker count and comparing vectors asserts the "parallel == serial"
// contract for the property battery itself.

/// One campaign point: runs case `c` under the seed-derived omission
/// schedule and returns "ok <decision digest>", or a failure description.
std::string campaign_point(const ProtocolCase& c, std::uint64_t seed) {
  ProcessSet faulty = random_faulty(c.params.n, c.params.t, seed);
  Adversary adv = random_omissions(faulty, seed, /*drop_permille=*/300);
  std::vector<Value> proposals = bit_proposals(c.params.n, seed);
  RunResult res =
      run_execution(c.params, c.factory, proposals, adv, linted_run());
  if (auto err = res.trace.validate()) {
    return c.name + ": invalid trace: " + *err;
  }
  if (!res.lint || !res.lint->clean()) {
    return c.name + ": lint violation";
  }
  std::string digest = "ok";
  std::optional<Value> first;
  for (ProcessId p = 0; p < c.params.n; ++p) {
    if (res.trace.faulty.contains(p)) continue;
    if (!res.trace.procs[p].decision) {
      return c.name + ": correct p" + std::to_string(p) + " undecided";
    }
    if (!first) first = res.trace.procs[p].decision;
    if (*res.trace.procs[p].decision != *first) {
      return c.name + ": agreement violated at p" + std::to_string(p);
    }
    digest += " " + res.trace.procs[p].decision->to_string();
  }
  return digest;
}

TEST(ProtocolPropertyCampaign, PooledOmissionCampaignParallelEqualsSerial) {
  const auto cases = protocol_cases();
  constexpr std::size_t kSeedsPerCase = 24;
  const std::size_t total = cases.size() * kSeedsPerCase;
  const std::function<std::string(std::size_t)> point =
      [&cases](std::size_t index) {
        const ProtocolCase& c = cases[index / kSeedsPerCase];
        return campaign_point(
            c, parallel::derive_task_seed(0xca49a16, index));
      };

  parallel::ExperimentPool serial(1);
  const std::vector<std::string> reference = serial.map(total, point);
  for (const std::string& r : reference) {
    EXPECT_EQ(r.substr(0, 2), "ok") << r;
  }

  parallel::ExperimentPool wide(4);
  const std::vector<std::string> pooled = wide.map(total, point);
  EXPECT_EQ(pooled, reference);
}

}  // namespace
}  // namespace ba
