#include "runtime/serde.h"

#include <gtest/gtest.h>

namespace ba {
namespace {

TEST(Serde, PrimitivesRoundTrip) {
  BytesWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.str("hello");

  BytesReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Serde, ValueRoundTrip) {
  const std::vector<Value> cases{
      Value::null(),
      Value{true},
      Value{false},
      Value{-7},
      Value{std::int64_t{1234567890123}},
      Value{""},
      Value{"payload"},
      Value{ValueVec{}},
      Value::vec({Value{"chain"}, Value{1}, Value::vec({0, 1})}),
  };
  for (const Value& v : cases) {
    EXPECT_EQ(decode_value(encode_value(v)), v) << v;
  }
}

TEST(Serde, DistinctValuesDistinctEncodings) {
  EXPECT_NE(encode_value(Value{0}), encode_value(Value{false}));
  EXPECT_NE(encode_value(Value{"1"}), encode_value(Value{1}));
  EXPECT_NE(encode_value(Value::vec({1})), encode_value(Value::vec({1, 1})));
}

TEST(Serde, TruncatedInputThrows) {
  Bytes b = encode_value(Value{"hello world"});
  b.pop_back();
  EXPECT_THROW(decode_value(b), SerdeError);
}

TEST(Serde, TrailingBytesThrow) {
  Bytes b = encode_value(Value{1});
  b.push_back(0);
  EXPECT_THROW(decode_value(b), SerdeError);
}

TEST(Serde, BadTagThrows) {
  Bytes b{0x99};
  EXPECT_THROW(decode_value(b), SerdeError);
}

TEST(Serde, EmptyReaderReportsDone) {
  BytesReader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), SerdeError);
}

}  // namespace
}  // namespace ba
