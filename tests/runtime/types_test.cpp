#include "runtime/types.h"

#include <gtest/gtest.h>

namespace ba {
namespace {

TEST(ProcessSet, RangeAndContains) {
  ProcessSet s = ProcessSet::range(2, 5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(4));
  EXPECT_FALSE(s.contains(5));
}

TEST(ProcessSet, ConstructorDedupsAndSorts) {
  ProcessSet s{{5, 1, 3, 1, 5}};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ids(), (std::vector<ProcessId>{1, 3, 5}));
}

TEST(ProcessSet, InsertEraseIdempotent) {
  ProcessSet s;
  s.insert(4);
  s.insert(4);
  EXPECT_EQ(s.size(), 1u);
  s.erase(4);
  s.erase(4);
  EXPECT_TRUE(s.empty());
}

TEST(ProcessSet, SetAlgebra) {
  ProcessSet a{{0, 1, 2, 3}};
  ProcessSet b{{2, 3, 4}};
  EXPECT_EQ(a.set_union(b).ids(), (std::vector<ProcessId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(a.set_intersection(b).ids(), (std::vector<ProcessId>{2, 3}));
  EXPECT_EQ(a.set_difference(b).ids(), (std::vector<ProcessId>{0, 1}));
}

TEST(ProcessSet, Complement) {
  ProcessSet b{{1, 3}};
  EXPECT_EQ(b.complement(5).ids(), (std::vector<ProcessId>{0, 2, 4}));
  EXPECT_EQ(b.complement(5).complement(5), b);
}

TEST(ProcessSet, SubsetRelation) {
  ProcessSet a{{1, 2}};
  ProcessSet b{{0, 1, 2, 3}};
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(ProcessSet{}.is_subset_of(a));
}

TEST(SystemParams, Validity) {
  EXPECT_TRUE((SystemParams{4, 1}).valid());
  EXPECT_TRUE((SystemParams{4, 3}).valid());
  EXPECT_FALSE((SystemParams{4, 4}).valid());
  EXPECT_FALSE((SystemParams{0, 0}).valid());
}

}  // namespace
}  // namespace ba
