#include "runtime/sync_system.h"

#include <gtest/gtest.h>

#include "adversary/omission.h"
#include "protocols/common.h"

namespace ba {
namespace {

/// Everyone multicasts its proposal in round 1 and decides the multiset of
/// bits it saw (encoded as count of ones) in round 2.
class EchoCount final : public protocols::DecidingProcess {
 public:
  explicit EchoCount(const ProcessContext& ctx) : ctx_(ctx) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1) {
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != ctx_.self) out.push_back(Outgoing{p, ctx_.proposal});
      }
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r != 1) return;
    std::int64_t ones = ctx_.proposal.try_bit().value_or(0);
    for (const Message& m : inbox) ones += m.payload.try_bit().value_or(0);
    decide(Value{ones});
  }

 private:
  ProcessContext ctx_;
};

ProtocolFactory echo_count() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<EchoCount>(ctx);
  };
}

TEST(SyncSystem, FaultFreeDelivery) {
  SystemParams params{5, 1};
  std::vector<Value> proposals{Value::bit(1), Value::bit(0), Value::bit(1),
                               Value::bit(1), Value::bit(0)};
  RunResult res = run_execution(params, echo_count(), proposals,
                                Adversary::none());
  ASSERT_TRUE(res.quiesced);
  for (ProcessId p = 0; p < 5; ++p) {
    ASSERT_TRUE(res.decisions[p].has_value());
    EXPECT_EQ(res.decisions[p]->as_int(), 3);  // everyone sees all 3 ones
  }
  EXPECT_EQ(res.messages_sent_by_correct, 5u * 4u);
  EXPECT_EQ(res.messages_sent_total, 5u * 4u);
}

TEST(SyncSystem, MessageComplexityCountsOnlyCorrectSenders) {
  SystemParams params{4, 1};
  Adversary adv = mute_group(ProcessSet{{3}}, 1);
  RunResult res = run_execution(params, echo_count(),
                                std::vector<Value>(4, Value::bit(1)), adv);
  // p3 send-omits everything; 3 correct processes send 3 each.
  EXPECT_EQ(res.messages_sent_by_correct, 9u);
  EXPECT_EQ(res.messages_sent_total, 9u);
  // p3 still receives everything.
  EXPECT_EQ(res.decisions[3]->as_int(), 4);
  // Correct processes miss p3's bit.
  EXPECT_EQ(res.decisions[0]->as_int(), 3);
}

TEST(SyncSystem, ReceiveOmissionIsInvisibleToSender) {
  SystemParams params{4, 1};
  Adversary adv = isolate_group(ProcessSet{{2}}, 1);
  RunResult res = run_execution(params, echo_count(),
                                std::vector<Value>(4, Value::bit(1)), adv);
  // All messages are sent (sender-side) but p2 receives none.
  EXPECT_EQ(res.messages_sent_total, 12u);
  EXPECT_EQ(res.decisions[2]->as_int(), 1);  // only its own bit
  EXPECT_EQ(res.decisions[0]->as_int(), 4);
  // Trace records the omissions at the receiver.
  const auto& re = res.trace.procs[2].rounds[0];
  EXPECT_EQ(re.receive_omitted.size(), 3u);
  EXPECT_TRUE(re.received.empty());
}

TEST(SyncSystem, TraceValidates) {
  SystemParams params{4, 2};
  Adversary adv = isolate_group(ProcessSet{{2, 3}}, 1);
  RunResult res = run_execution(params, echo_count(),
                                std::vector<Value>(4, Value::bit(0)), adv);
  EXPECT_EQ(res.trace.validate(), std::nullopt);
}

TEST(SyncSystem, RejectsBadArguments) {
  SystemParams params{3, 1};
  EXPECT_THROW(run_execution(params, echo_count(), {Value{}, Value{}},
                             Adversary::none()),
               std::invalid_argument);
  Adversary too_many;
  too_many.faulty = ProcessSet{{0, 1}};
  EXPECT_THROW(run_execution(params, echo_count(),
                             std::vector<Value>(3, Value{}), too_many),
               std::invalid_argument);
  SystemParams bad{3, 3};
  EXPECT_THROW(run_execution(bad, echo_count(),
                             std::vector<Value>(3, Value{}),
                             Adversary::none()),
               std::invalid_argument);
}

TEST(SyncSystem, SelfMessagesAndDuplicatesDropped) {
  class Misbehaved final : public protocols::DecidingProcess {
   public:
    explicit Misbehaved(const ProcessContext& ctx) : ctx_(ctx) {}
    Outbox outbox_for_round(Round r) override {
      Outbox out;
      if (r == 1) {
        out.push_back(Outgoing{ctx_.self, Value{1}});       // self: dropped
        out.push_back(Outgoing{1, Value{1}});                // kept
        out.push_back(Outgoing{1, Value{2}});                // dup: dropped
        out.push_back(Outgoing{ctx_.params.n + 7, Value{1}});  // oob: dropped
      }
      return out;
    }
    void deliver(Round r, const Inbox& inbox) override {
      if (r == 1 && ctx_.self == 1) {
        decide(Value{static_cast<std::int64_t>(inbox.size())});
      } else if (r == 1) {
        decide(Value{0});
      }
    }

   private:
    ProcessContext ctx_;
  };
  SystemParams params{3, 1};
  RunResult res = run_execution(
      params,
      [](const ProcessContext& ctx) {
        return std::make_unique<Misbehaved>(ctx);
      },
      std::vector<Value>(3, Value{}), Adversary::none());
  // p1 receives exactly one message from p0 and one from p2 (the first per
  // sender), nothing else.
  EXPECT_EQ(res.decisions[1]->as_int(), 2);
  EXPECT_EQ(res.trace.validate(), std::nullopt);
}

TEST(SyncSystem, ReplayMatchesLiveRun) {
  SystemParams params{5, 2};
  Adversary adv = isolate_group(ProcessSet{{4}}, 1);
  RunResult res = run_execution(params, echo_count(),
                                std::vector<Value>(5, Value::bit(1)), adv);
  for (ProcessId p = 0; p < params.n; ++p) {
    std::vector<Inbox> inboxes;
    for (const RoundEvents& re : res.trace.procs[p].rounds) {
      inboxes.push_back(re.received);
    }
    ReplayResult replay = replay_process(params, echo_count(), p,
                                         res.trace.procs[p].proposal, inboxes);
    EXPECT_EQ(replay.decision, res.decisions[p]) << "p" << p;
  }
}

TEST(SyncSystem, MaxRoundsCapsNonQuiescentProtocols) {
  class Chatter final : public protocols::DecidingProcess {
   public:
    explicit Chatter(const ProcessContext& ctx) : ctx_(ctx) {}
    Outbox outbox_for_round(Round) override {
      return {Outgoing{(ctx_.self + 1) % ctx_.params.n, Value{1}}};
    }
    void deliver(Round, const Inbox&) override {}

   private:
    ProcessContext ctx_;
  };
  SystemParams params{3, 1};
  RunOptions opts;
  opts.max_rounds = 7;
  RunResult res = run_execution(
      params,
      [](const ProcessContext& ctx) { return std::make_unique<Chatter>(ctx); },
      std::vector<Value>(3, Value{}), Adversary::none(), opts);
  EXPECT_FALSE(res.quiesced);
  EXPECT_EQ(res.rounds_executed, 7u);
  EXPECT_EQ(res.messages_sent_total, 21u);
}

}  // namespace
}  // namespace ba
