// Seeded random-structure tests for the Value/serde layer: round-trips,
// ordering laws, and hash consistency over deeply nested random values.

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "crypto/signature.h"
#include "crypto/siphash.h"
#include "runtime/serde.h"
#include "runtime/value.h"

namespace ba {
namespace {

/// Deterministic pseudo-random value generator (seeded, bounded depth).
class ValueGen {
 public:
  explicit ValueGen(std::uint64_t seed) : seed_(seed) {}

  Value next(int max_depth = 4) {
    const std::uint64_t r = roll();
    if (max_depth == 0) return leaf(r);
    switch (r % 6) {
      case 0:
      case 1:
      case 2:
        return leaf(r);
      default: {
        const std::size_t len = roll() % 4;
        ValueVec vec;
        vec.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
          vec.push_back(next(max_depth - 1));
        }
        return Value{std::move(vec)};
      }
    }
  }

 private:
  Value leaf(std::uint64_t r) {
    switch (r % 4) {
      case 0:
        return Value::null();
      case 1:
        return Value{(r & 8) != 0};
      case 2: {
        // Difference of two full-range rolls; wrap in uint64 first — the
        // subtraction overflows int64 for about half of all pairs.
        const std::uint64_t d = roll() - roll();
        return Value{static_cast<std::int64_t>(d)};
      }
      default: {
        std::string s;
        const std::size_t len = roll() % 9;
        for (std::size_t i = 0; i < len; ++i) {
          s.push_back(static_cast<char>('a' + roll() % 26));
        }
        return Value{std::move(s)};
      }
    }
  }

  std::uint64_t roll() {
    counter_++;
    std::array<std::uint8_t, 8> buf{};
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
    }
    return crypto::siphash24(crypto::derive_key(seed_, 0xf222), buf);
  }

  std::uint64_t seed_;
  std::uint64_t counter_{0};
};

class ValueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ValueFuzz, SerdeRoundTrip) {
  ValueGen gen(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value v = gen.next();
    EXPECT_EQ(decode_value(encode_value(v)), v) << v;
  }
}

TEST_P(ValueFuzz, EqualityConsistentWithEncodingAndHash) {
  ValueGen g1(GetParam());
  ValueGen g2(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value a = g1.next();
    const Value b = g2.next();
    ASSERT_EQ(a, b);  // same seed => same stream
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(encode_value(a), encode_value(b));
  }
}

TEST_P(ValueFuzz, OrderingLaws) {
  ValueGen gen(GetParam() * 131 + 7);
  std::vector<Value> vs;
  for (int i = 0; i < 20; ++i) vs.push_back(gen.next(3));
  for (const Value& a : vs) {
    for (const Value& b : vs) {
      // Trichotomy.
      EXPECT_EQ((a < b) + (b < a) + (a == b), 1);
      // Equality iff identical encodings.
      EXPECT_EQ(a == b, encode_value(a) == encode_value(b));
      for (const Value& c : vs) {
        if (a < b && b < c) EXPECT_LT(a, c);  // transitivity
      }
    }
  }
}

TEST_P(ValueFuzz, DistinctValuesDistinctEncodings) {
  ValueGen gen(GetParam() * 977 + 3);
  std::vector<Value> vs;
  for (int i = 0; i < 40; ++i) vs.push_back(gen.next(3));
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      if (!(vs[i] == vs[j])) {
        EXPECT_NE(encode_value(vs[i]), encode_value(vs[j]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueFuzz, ::testing::Range(0, 8));

class ChainFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ChainFuzz, RandomChainsVerifyAndResistTampering) {
  const std::uint64_t seed = GetParam();
  const std::uint32_t n = 6;
  auto auth = std::make_shared<crypto::Authenticator>(seed, n);
  ValueGen gen(seed);

  for (int trial = 0; trial < 10; ++trial) {
    crypto::SigChain chain(gen.next(2));
    // Random distinct signer sequence.
    std::vector<ProcessId> order{0, 1, 2, 3, 4, 5};
    for (std::size_t i = order.size() - 1; i > 0; --i) {
      std::swap(order[i], order[(seed + trial + i) % (i + 1)]);
    }
    const std::size_t len = 1 + (seed + trial) % 5;
    for (std::size_t i = 0; i < len; ++i) {
      chain.extend(crypto::Signer(auth, order[i]));
    }
    EXPECT_TRUE(chain.verify(*auth, len, order[0]));
    EXPECT_FALSE(chain.verify(*auth, len + 1, order[0]));

    // Any single-byte tamper of the encoding must break verification (or
    // the decode).
    Bytes enc = encode_value(chain.to_value());
    Bytes bad = enc;
    bad[bad.size() / 2] ^= 0x01;
    Value decoded;
    try {
      decoded = decode_value(bad);
    } catch (const SerdeError&) {
      continue;  // tamper destroyed the framing: fine
    }
    auto reparsed = crypto::SigChain::from_value(decoded);
    if (reparsed) {
      EXPECT_FALSE(reparsed->verify(*auth, len, order[0]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace ba
