#include "runtime/message.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "protocols/common.h"

namespace ba {
namespace {

TEST(MsgKey, OrderingAndEquality) {
  MsgKey a{0, 1, 1};
  MsgKey b{0, 1, 2};
  MsgKey c{0, 2, 1};
  MsgKey d{1, 0, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_LT(a, d);
  EXPECT_EQ(a, (MsgKey{0, 1, 1}));
}

TEST(MsgKey, HashSpreadsAcrossFields) {
  std::unordered_set<std::size_t> hashes;
  std::hash<MsgKey> h;
  for (ProcessId s = 0; s < 4; ++s) {
    for (ProcessId r = 0; r < 4; ++r) {
      for (Round k = 1; k <= 4; ++k) {
        hashes.insert(h(MsgKey{s, r, k}));
      }
    }
  }
  EXPECT_GE(hashes.size(), 60u);  // 64 keys, near-collision-free
}

TEST(MsgKey, HashCollisionFreeOnDenseGrids) {
  // The pre-SipHash xor/multiply combiner collided massively on exactly
  // this shape of key set: every (sender, receiver, round) triple an
  // executor can actually produce in a sizeable run. With SipHash-2-4 a
  // dense 64 x 64 x 64 grid (262144 keys) must be collision-free — a single
  // 64-bit collision among 2^18 keys has probability ~2^-29.
  std::unordered_set<std::size_t> hashes;
  std::hash<MsgKey> h;
  for (ProcessId s = 0; s < 64; ++s) {
    for (ProcessId r = 0; r < 64; ++r) {
      for (Round k = 1; k <= 64; ++k) {
        hashes.insert(h(MsgKey{s, r, k}));
      }
    }
  }
  EXPECT_EQ(hashes.size(), 64u * 64u * 64u);
}

TEST(MsgKey, HashIsDeterministicAcrossCalls) {
  std::hash<MsgKey> h;
  const MsgKey k{3, 7, 11};
  EXPECT_EQ(h(k), h(MsgKey{3, 7, 11}));
  EXPECT_NE(h(k), h(MsgKey{7, 3, 11}));  // field order matters
}

TEST(Message, KeyProjectionIgnoresPayload) {
  Message m1{2, 3, 5, Value{"a"}};
  Message m2{2, 3, 5, Value{"b"}};
  EXPECT_EQ(m1.key(), m2.key());
  EXPECT_NE(m1, m2);
  EXPECT_LT(m1, m2);  // tie broken by payload
}

TEST(Message, StreamFormat) {
  std::ostringstream os;
  os << Message{1, 2, 3, Value::bit(1)};
  EXPECT_EQ(os.str(), "msg(p1->p2@r3: 1)");
}

TEST(PayloadHelpers, TaggedFieldRoundTrip) {
  using protocols::field;
  using protocols::has_tag;
  using protocols::tagged;
  Value v = tagged("hello", {Value{1}, Value{"x"}});
  EXPECT_TRUE(has_tag(v, "hello"));
  EXPECT_FALSE(has_tag(v, "world"));
  EXPECT_FALSE(has_tag(Value{"hello"}, "hello"));
  ASSERT_NE(field(v, 0), nullptr);
  EXPECT_EQ(*field(v, 0), Value{1});
  ASSERT_NE(field(v, 1), nullptr);
  EXPECT_EQ(*field(v, 1), Value{"x"});
  EXPECT_EQ(field(v, 2), nullptr);  // out of range
}

TEST(PayloadHelpers, EmptyTagged) {
  Value v = protocols::tagged("empty", {});
  EXPECT_TRUE(protocols::has_tag(v, "empty"));
  EXPECT_EQ(protocols::field(v, 0), nullptr);
}

}  // namespace
}  // namespace ba
