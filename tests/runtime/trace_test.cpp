#include "runtime/trace.h"

#include <gtest/gtest.h>

#include "adversary/omission.h"
#include "protocols/common.h"
#include "runtime/sync_system.h"

namespace ba {
namespace {

class Broadcaster final : public protocols::DecidingProcess {
 public:
  explicit Broadcaster(const ProcessContext& ctx) : ctx_(ctx) {}
  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r <= 2) {
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != ctx_.self) out.push_back(Outgoing{p, ctx_.proposal});
      }
    }
    return out;
  }
  void deliver(Round r, const Inbox& inbox) override {
    if (r == 2) {
      decide(Value{static_cast<std::int64_t>(inbox.size())});
    }
  }

 private:
  ProcessContext ctx_;
};

ProtocolFactory broadcaster() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<Broadcaster>(ctx);
  };
}

ExecutionTrace make_trace(const Adversary& adv, std::uint32_t n = 4,
                          std::uint32_t t = 2) {
  SystemParams params{n, t};
  return run_execution(params, broadcaster(),
                       std::vector<Value>(n, Value::bit(0)), adv)
      .trace;
}

TEST(Trace, MessageComplexityExcludesFaulty) {
  ExecutionTrace e = make_trace(mute_group(ProcessSet{{0}}, 1));
  // 3 correct processes, 3 receivers each, 2 rounds.
  EXPECT_EQ(e.message_complexity(), 18u);
  EXPECT_EQ(e.total_messages_sent(), 18u);  // p0's sends were all omitted
}

TEST(Trace, ReceiveOmittedFromFiltersSenders) {
  ExecutionTrace e = make_trace(isolate_group(ProcessSet{{3}}, 2));
  // Round 1 delivered; round 2 messages from {0,1,2} to p3 are omitted.
  auto from_01 = e.receive_omitted_from(3, ProcessSet{{0, 1}});
  EXPECT_EQ(from_01.size(), 2u);
  auto from_all = e.receive_omitted_from(3, ProcessSet::all(4));
  EXPECT_EQ(from_all.size(), 3u);
}

TEST(Trace, IndistinguishabilityDetectsDifferentInboxes) {
  ExecutionTrace a = make_trace(Adversary::none());
  ExecutionTrace b = make_trace(isolate_group(ProcessSet{{3}}, 2));
  EXPECT_TRUE(a.indistinguishable_for(0, a));
  // p0's received messages are identical in both runs (isolation only
  // affects what p3 receives; p3 sends the same things either way).
  EXPECT_TRUE(a.indistinguishable_for(0, b));
  // p3 receives strictly less in b.
  EXPECT_FALSE(a.indistinguishable_for(3, b));
}

TEST(Trace, UnanimousCorrectDecision) {
  ExecutionTrace e = make_trace(Adversary::none());
  auto d = e.unanimous_correct_decision();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->as_int(), 3);
}

TEST(Trace, ValidateCatchesCorruptedTraces) {
  ExecutionTrace e = make_trace(Adversary::none());
  ASSERT_EQ(e.validate(), std::nullopt);

  {
    ExecutionTrace bad = e;
    // Claim a message that was never sent.
    bad.procs[0].rounds[0].received.push_back(
        Message{2, 0, 1, Value{"forged"}});
    EXPECT_NE(bad.validate(), std::nullopt);
  }
  {
    ExecutionTrace bad = e;
    // A correct process cannot receive-omit.
    Message m = bad.procs[0].rounds[0].received.back();
    bad.procs[0].rounds[0].received.pop_back();
    bad.procs[0].rounds[0].receive_omitted.push_back(m);
    EXPECT_NE(bad.validate(), std::nullopt);
  }
  {
    ExecutionTrace bad = e;
    // Tamper with a payload on the receive side.
    bad.procs[1].rounds[0].received[0].payload = Value{"tampered"};
    EXPECT_NE(bad.validate(), std::nullopt);
  }
  {
    ExecutionTrace bad = e;
    bad.faulty = ProcessSet{{0, 1, 2}};  // exceeds t = 2
    EXPECT_NE(bad.validate(), std::nullopt);
  }
}

TEST(Trace, ValidateAcceptsOmissionFaults) {
  EXPECT_EQ(make_trace(isolate_group(ProcessSet{{2, 3}}, 1)).validate(),
            std::nullopt);
  EXPECT_EQ(make_trace(mute_group(ProcessSet{{1}}, 2)).validate(),
            std::nullopt);
  EXPECT_EQ(make_trace(partition_from(ProcessSet{{2, 3}}, 2)).validate(),
            std::nullopt);
}

}  // namespace
}  // namespace ba
