// Direct unit tests for outbox normalization (A.1.1 well-formedness: at most
// one message per ordered pair per round, no self-sends) and its
// allocation-reusing form, plus the RoundScratch fault lookup tables.

#include "runtime/sync_system.h"

#include <gtest/gtest.h>

#include <vector>

#include "runtime/fault.h"

namespace ba {
namespace {

std::vector<ProcessId> receivers(const std::vector<Message>& msgs) {
  std::vector<ProcessId> out;
  out.reserve(msgs.size());
  for (const Message& m : msgs) out.push_back(m.receiver);
  return out;
}

TEST(NormalizeOutbox, DropsSelfSends) {
  const Outbox out{{1, Value{10}}, {2, Value{20}}, {1, Value{11}}};
  const auto msgs = normalize_outbox(out, /*self=*/1, /*r=*/3, /*n=*/4);
  EXPECT_EQ(receivers(msgs), (std::vector<ProcessId>{2}));
  EXPECT_EQ(msgs[0].sender, 1u);
  EXPECT_EQ(msgs[0].round, 3u);
  EXPECT_EQ(msgs[0].payload, Value{20});
}

TEST(NormalizeOutbox, DropsOutOfRangeReceivers) {
  const Outbox out{{4, Value{1}}, {100, Value{2}}, {3, Value{3}},
                   {kNoProcess, Value{4}}};
  const auto msgs = normalize_outbox(out, /*self=*/0, /*r=*/1, /*n=*/4);
  EXPECT_EQ(receivers(msgs), (std::vector<ProcessId>{3}));
}

TEST(NormalizeOutbox, DuplicateReceiverKeepsFirstOccurrence) {
  const Outbox out{{2, Value{"first"}}, {2, Value{"second"}},
                   {2, Value{"third"}}};
  const auto msgs = normalize_outbox(out, /*self=*/0, /*r=*/1, /*n=*/4);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].payload, Value{"first"});
}

TEST(NormalizeOutbox, OutputSortedByReceiver) {
  const Outbox out{{3, Value{3}}, {1, Value{1}}, {2, Value{2}},
                   {1, Value{"dup"}}};
  const auto msgs = normalize_outbox(out, /*self=*/0, /*r=*/1, /*n=*/4);
  EXPECT_EQ(receivers(msgs), (std::vector<ProcessId>{1, 2, 3}));
  EXPECT_EQ(msgs[0].payload, Value{1});  // first occurrence, not "dup"
}

TEST(NormalizeOutbox, EmptyOutbox) {
  EXPECT_TRUE(normalize_outbox({}, 0, 1, 4).empty());
}

TEST(NormalizeOutboxInto, MatchesAllocatingFormAndRestoresBitmap) {
  const Outbox out{{5, Value{5}}, {0, Value{0}}, {2, Value{2}},
                   {2, Value{"dup"}}, {7, Value{"oob"}}, {3, Value{3}}};
  std::vector<std::uint8_t> seen(6, 0);
  std::vector<Message> msgs;
  normalize_outbox_into(out, /*self=*/3, /*r=*/2, /*n=*/6, seen, msgs);
  EXPECT_EQ(msgs, normalize_outbox(out, 3, 2, 6));
  // Contract: the dedup bitmap is handed back all-zero so the next call can
  // reuse it without a wipe.
  EXPECT_EQ(seen, std::vector<std::uint8_t>(6, 0));
}

TEST(NormalizeOutboxInto, ReusableAcrossCallsAndClearsOutput) {
  std::vector<std::uint8_t> seen(4, 0);
  std::vector<Message> msgs;
  normalize_outbox_into({{1, Value{1}}, {2, Value{2}}}, 0, 1, 4, seen, msgs);
  ASSERT_EQ(msgs.size(), 2u);
  // Stale contents must not leak into the next round's normalization.
  normalize_outbox_into({{3, Value{3}}}, 0, 2, 4, seen, msgs);
  EXPECT_EQ(receivers(msgs), (std::vector<ProcessId>{3}));
  EXPECT_EQ(msgs[0].round, 2u);
  normalize_outbox_into({}, 0, 3, 4, seen, msgs);
  EXPECT_TRUE(msgs.empty());
}

TEST(RoundScratch, FaultTablesResolveOncePerRun) {
  Adversary adv;
  adv.faulty = ProcessSet{{1, 2}};
  adv.byzantine = ProcessSet{{2}};
  adv.byzantine_factory = [](const ProcessContext&) -> std::unique_ptr<Process> {
    return nullptr;  // tables are computed without instantiating replicas
  };
  adv.send_omit = [](const MsgKey&) { return true; };
  adv.receive_omit = [](const MsgKey&) { return true; };

  RoundScratch scratch;
  scratch.prepare(adv, /*n=*/4, /*record_trace=*/true);
  EXPECT_EQ(scratch.faulty, (std::vector<std::uint8_t>{0, 1, 1, 0}));
  // Send omissions apply to faulty non-Byzantine senders only.
  EXPECT_EQ(scratch.may_drop_send, (std::vector<std::uint8_t>{0, 1, 0, 0}));
  // Receive omissions apply to every faulty receiver, Byzantine included.
  EXPECT_EQ(scratch.may_drop_receive,
            (std::vector<std::uint8_t>{0, 1, 1, 0}));
  EXPECT_EQ(scratch.outs.size(), 4u);
  EXPECT_EQ(scratch.inboxes.size(), 4u);
  EXPECT_EQ(scratch.events.size(), 4u);
  EXPECT_EQ(scratch.seen, std::vector<std::uint8_t>(4, 0));

  // Without omission predicates the drop tables are all-zero (the hot loop
  // never consults the std::function predicates), and tracing off means no
  // event staging.
  RoundScratch bare;
  bare.prepare(Adversary::none(), /*n=*/3, /*record_trace=*/false);
  EXPECT_EQ(bare.may_drop_send, std::vector<std::uint8_t>(3, 0));
  EXPECT_EQ(bare.may_drop_receive, std::vector<std::uint8_t>(3, 0));
  EXPECT_TRUE(bare.events.empty());
}

}  // namespace
}  // namespace ba
