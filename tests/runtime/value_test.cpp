#include "runtime/value.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace ba {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v, Value::null());
}

TEST(Value, BitConstruction) {
  EXPECT_EQ(Value::bit(0).try_bit(), 0);
  EXPECT_EQ(Value::bit(1).try_bit(), 1);
  EXPECT_EQ(Value::bit(7).try_bit(), 1);  // nonzero coerces to 1
}

TEST(Value, TryBitOnInts) {
  EXPECT_EQ(Value{0}.try_bit(), 0);
  EXPECT_EQ(Value{1}.try_bit(), 1);
  EXPECT_EQ(Value{2}.try_bit(), std::nullopt);
  EXPECT_EQ(Value{"x"}.try_bit(), std::nullopt);
  EXPECT_EQ(Value::null().try_bit(), std::nullopt);
}

TEST(Value, KindsAreDistinct) {
  EXPECT_NE(Value::null(), Value{false});
  EXPECT_NE(Value{false}, Value{0});
  EXPECT_NE(Value{0}, Value{"0"});
  EXPECT_NE(Value{"0"}, Value{ValueVec{Value{"0"}}});
}

TEST(Value, OrderingIsTotalAndConsistent) {
  std::vector<Value> vs{
      Value::null(),        Value{false},       Value{true},
      Value{-3},            Value{0},           Value{42},
      Value{""},            Value{"abc"},       Value{"abd"},
      Value{ValueVec{}},    Value::vec({1, 2}), Value::vec({1, 2, 3}),
      Value::vec({1, 3}),
  };
  for (const Value& a : vs) {
    EXPECT_EQ(a <=> a, std::strong_ordering::equal);
    for (const Value& b : vs) {
      const bool lt = a < b;
      const bool gt = b < a;
      const bool eq = a == b;
      EXPECT_EQ(lt + gt + eq, 1) << a << " vs " << b;
    }
  }
  std::set<Value> s(vs.begin(), vs.end());
  EXPECT_EQ(s.size(), vs.size());
}

TEST(Value, HashDistinguishesCommonValues) {
  std::unordered_set<std::size_t> hashes;
  hashes.insert(Value::null().hash());
  hashes.insert(Value{false}.hash());
  hashes.insert(Value{true}.hash());
  hashes.insert(Value{0}.hash());
  hashes.insert(Value{1}.hash());
  hashes.insert(Value{"a"}.hash());
  hashes.insert(Value::vec({0, 1}).hash());
  EXPECT_GE(hashes.size(), 6u);  // no mass collision
}

TEST(Value, EqualValuesHashEqual) {
  const Value a = Value::vec({Value{"x"}, Value{3}, Value::vec({0})});
  const Value b = Value::vec({Value{"x"}, Value{3}, Value::vec({0})});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value::null().to_string(), "_");
  EXPECT_EQ(Value{true}.to_string(), "1");
  EXPECT_EQ(Value{42}.to_string(), "42");
  EXPECT_EQ(Value{"hi"}.to_string(), "\"hi\"");
  EXPECT_EQ(Value::vec({1, 2}).to_string(), "[1,2]");
}

TEST(Value, NestedVectorAccess) {
  Value v = Value::vec({Value{"tag"}, Value::vec({7, 8})});
  ASSERT_TRUE(v.is_vec());
  ASSERT_EQ(v.as_vec().size(), 2u);
  EXPECT_EQ(v.as_vec()[1].as_vec()[0].as_int(), 7);
}

}  // namespace
}  // namespace ba
