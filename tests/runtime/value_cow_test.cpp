// Copy-on-write semantics of Value (docs/RUNTIME_PERF.md): copies share the
// payload representation; mutation through non-const as_vec() un-shares and
// never aliases into copies; hashes, ordering, and canonical encoding are
// bit-for-bit what the pre-COW (deep-copying variant) representation
// produced.

#include "runtime/value.h"

#include <gtest/gtest.h>

#include <utility>

#include "runtime/serde.h"

namespace ba {
namespace {

// Reference implementation of the seed's hash: kind-seeded boost-style
// combine. Any deviation here is a silent break of every hash-keyed
// container and of cross-version trace comparisons.
std::size_t ref_combine(std::size_t seed, std::size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

std::size_t ref_hash(const Value& v) {
  std::size_t seed = static_cast<std::size_t>(v.kind());
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
      seed = ref_combine(seed, std::hash<bool>{}(v.as_bool()));
      break;
    case Value::Kind::kInt:
      seed = ref_combine(seed, std::hash<std::int64_t>{}(v.as_int()));
      break;
    case Value::Kind::kStr:
      seed = ref_combine(seed, std::hash<std::string>{}(v.as_str()));
      break;
    case Value::Kind::kVec:
      for (const Value& e : v.as_vec()) seed = ref_combine(seed, ref_hash(e));
      break;
  }
  return seed;
}

TEST(ValueCow, CopiesSharePayloadRepresentation) {
  const Value s{"shared-string"};
  const Value s2 = s;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(s.shares_rep_with(s2));
  EXPECT_EQ(&s.as_str(), &s2.as_str());  // literally the same bytes

  const Value v = Value::vec({1, 2, 3});
  const Value v2 = v;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(v.shares_rep_with(v2));
  EXPECT_EQ(&v.as_vec(), &v2.as_vec());

  // Scalars have no shared payload to speak of.
  EXPECT_FALSE(Value{1}.shares_rep_with(Value{1}));
  // Distinct constructions never share.
  EXPECT_FALSE(Value{"x"}.shares_rep_with(Value{"x"}));
}

TEST(ValueCow, MutationThroughAsVecDoesNotAlias) {
  Value a = Value::vec({1, 2});
  Value b = a;
  ASSERT_TRUE(a.shares_rep_with(b));

  a.as_vec().push_back(Value{3});
  EXPECT_FALSE(a.shares_rep_with(b));
  EXPECT_EQ(a, Value::vec({1, 2, 3}));
  EXPECT_EQ(b, Value::vec({1, 2}));  // the copy is untouched

  // And the other direction: mutating the copy leaves the original alone.
  Value c = b;
  c.as_vec()[0] = Value{"swapped"};
  EXPECT_EQ(b, Value::vec({1, 2}));
  EXPECT_EQ(c, Value::vec({Value{"swapped"}, Value{2}}));
}

TEST(ValueCow, NestedMutationUnsharesOnlyThePathTouched) {
  Value a = Value::vec({Value::vec({1, 2}), Value{"leaf"}});
  Value b = a;
  a.as_vec()[0].as_vec().push_back(Value{3});
  EXPECT_EQ(b, Value::vec({Value::vec({1, 2}), Value{"leaf"}}));
  EXPECT_EQ(a, Value::vec({Value::vec({1, 2, 3}), Value{"leaf"}}));
  // The untouched string leaf is still shared between the two trees.
  EXPECT_TRUE(a.as_vec()[1].shares_rep_with(b.as_vec()[1]));
}

TEST(ValueCow, UnsharedMutationIsInPlace) {
  Value a = Value::vec({1});
  const ValueVec* before = &std::as_const(a).as_vec();
  a.as_vec().push_back(Value{2});  // sole owner: no clone
  EXPECT_EQ(&std::as_const(a).as_vec(), before);
}

TEST(ValueCow, MovedFromValueIsNull) {
  Value a{"payload"};
  const Value b = std::move(a);
  EXPECT_EQ(b, Value{"payload"});
  // NOLINTNEXTLINE(bugprone-use-after-move): moved-from state is the contract
  EXPECT_TRUE(a.is_null());
  Value c = Value::vec({1});
  Value d;
  d = std::move(c);
  // NOLINTNEXTLINE(bugprone-use-after-move)
  EXPECT_TRUE(c.is_null());
  EXPECT_EQ(d, Value::vec({1}));
}

TEST(ValueCow, HashMatchesSeedAlgorithm) {
  const std::vector<Value> samples{
      Value::null(),
      Value{false},
      Value{true},
      Value{0},
      Value{-7},
      Value{""},
      Value{"abc"},
      Value{ValueVec{}},
      Value::vec({1, 2, 3}),
      Value::vec({Value{"x"}, Value::vec({Value{"y"}, Value{4}}),
                  Value::null()}),
  };
  for (const Value& v : samples) {
    EXPECT_EQ(v.hash(), ref_hash(v)) << v;
    EXPECT_EQ(v.hash(), ref_hash(v)) << v << " (cached second call)";
  }
}

TEST(ValueCow, HashCacheSurvivesSharingAndInvalidatesOnMutation) {
  Value a = Value::vec({Value{"deep"}, Value::vec({1, 2})});
  const std::size_t h = a.hash();
  const Value b = a;          // share the (now hash-cached) payload
  EXPECT_EQ(b.hash(), h);

  a.as_vec().push_back(Value{9});  // un-share + mutate
  EXPECT_EQ(a.hash(), ref_hash(a));
  EXPECT_NE(a.hash(), h);
  EXPECT_EQ(b.hash(), h) << "copy's cached hash must be unaffected";

  // Mutating again through a still-held reference must be reflected: a
  // mutably-exposed payload is never hash-cached.
  ValueVec& elems = a.as_vec();
  (void)a.hash();
  elems.pop_back();
  EXPECT_EQ(a.hash(), ref_hash(a));
  EXPECT_EQ(a.hash(), h) << "back to the original contents, original hash";
}

TEST(ValueCow, OrderingUnchangedBySharing) {
  const Value a = Value::vec({1, 2});
  const Value shared = a;
  const Value equal_but_distinct = Value::vec({1, 2});
  EXPECT_EQ(a <=> shared, std::strong_ordering::equal);
  EXPECT_EQ(a <=> equal_but_distinct, std::strong_ordering::equal);
  EXPECT_LT(a, Value::vec({1, 3}));
  EXPECT_LT(Value{"ab"}, Value{"ac"});
  const Value s{"same"};
  const Value s2 = s;
  EXPECT_EQ(s <=> s2, std::strong_ordering::equal);
}

TEST(ValueCow, SerdeBytesIdenticalToSeedEncoding) {
  // Golden bytes computed from the seed encoder: kind tag u8, then the
  // little-endian payload encoding.
  const Value v{"hi"};
  const Bytes expected_str{3, 2, 0, 0, 0, 0, 0, 0, 0, 'h', 'i'};
  EXPECT_EQ(encode_value(v), expected_str);

  const Value vec = Value::vec({Value{true}, Value{"hi"}});
  const Bytes expected_vec{4, 2, 0, 0, 0, 0, 0, 0, 0,  // kVec, 2 elements
                           1, 1,                        // kBool true
                           3, 2, 0, 0, 0, 0, 0, 0, 0, 'h', 'i'};
  EXPECT_EQ(encode_value(vec), expected_vec);

  // Sharing and un-sharing never change the canonical encoding.
  Value a = Value::vec({Value{"x"}, Value{42}});
  const Value b = a;
  EXPECT_EQ(encode_value(a), encode_value(b));
  a.as_vec().push_back(Value::null());
  a.as_vec().pop_back();  // contents restored; representation now unshared
  EXPECT_EQ(encode_value(a), encode_value(b));
  EXPECT_EQ(decode_value(encode_value(a)), a);
}

}  // namespace
}  // namespace ba
