#include "runtime/trace_io.h"

#include <gtest/gtest.h>

#include "adversary/omission.h"
#include "analysis/lint.h"
#include "lowerbound/attack.h"
#include "lowerbound/certificate_io.h"
#include "protocols/phase_king.h"
#include "protocols/weak_consensus.h"
#include "runtime/sync_system.h"

namespace ba {
namespace {

ExecutionTrace sample_trace() {
  SystemParams params{5, 2};
  return run_execution(params, protocols::phase_king_consensus(),
                       std::vector<Value>(5, Value::bit(1)),
                       isolate_group(ProcessSet{{3, 4}}, 2))
      .trace;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  ExecutionTrace original = sample_trace();
  auto restored = trace_from_value(trace_to_value(original));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->params.n, original.params.n);
  EXPECT_EQ(restored->params.t, original.params.t);
  EXPECT_EQ(restored->faulty, original.faulty);
  EXPECT_EQ(restored->rounds, original.rounds);
  EXPECT_EQ(restored->quiesced, original.quiesced);
  ASSERT_EQ(restored->procs.size(), original.procs.size());
  for (std::size_t p = 0; p < original.procs.size(); ++p) {
    EXPECT_EQ(restored->procs[p], original.procs[p]) << "p" << p;
  }
  // A round-tripped trace still validates.
  EXPECT_EQ(restored->validate(), std::nullopt);
}

TEST(TraceIo, BytesRoundTrip) {
  ExecutionTrace original = sample_trace();
  Bytes bytes = encode_trace(original);
  auto restored = decode_trace(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->procs[0], original.procs[0]);
  EXPECT_EQ(restored->message_complexity(), original.message_complexity());
}

TEST(TraceIo, GarbageRejected) {
  EXPECT_EQ(trace_from_value(Value{"nope"}), std::nullopt);
  EXPECT_EQ(decode_trace(Bytes{1, 2, 3}), std::nullopt);
  Bytes truncated = encode_trace(sample_trace());
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(decode_trace(truncated), std::nullopt);
}

TEST(TraceIo, RejectionsComeWithDiagnostics) {
  std::string error;
  EXPECT_EQ(trace_from_value(Value{"nope"}, &error), std::nullopt);
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_EQ(decode_trace(Bytes{9, 9, 9}, &error), std::nullopt);
  EXPECT_NE(error.find("serde"), std::string::npos) << error;
}

TEST(TraceIo, RejectsOutOfRangeIntegers) {
  Value good = trace_to_value(sample_trace());

  // Negative n.
  Value bad = good;
  bad.as_vec()[1] = Value{static_cast<std::int64_t>(-5)};
  std::string error;
  EXPECT_EQ(trace_from_value(bad, &error), std::nullopt);
  EXPECT_FALSE(error.empty());

  // t >= n (invalid system parameters).
  bad = good;
  bad.as_vec()[2] = Value{static_cast<std::int64_t>(99)};
  error.clear();
  EXPECT_EQ(trace_from_value(bad, &error), std::nullopt);
  EXPECT_NE(error.find("invalid params"), std::string::npos) << error;

  // Faulty id beyond n: previously this wrapped silently.
  bad = good;
  bad.as_vec()[3] = Value{ValueVec{Value{static_cast<std::int64_t>(1) << 40}}};
  error.clear();
  EXPECT_EQ(trace_from_value(bad, &error), std::nullopt);
  EXPECT_FALSE(error.empty());

  bad = good;
  bad.as_vec()[3] = Value{ValueVec{Value{static_cast<std::int64_t>(7)}}};
  EXPECT_EQ(trace_from_value(bad), std::nullopt) << "faulty id 7 in an n=5 system";
}

TEST(TraceIo, RejectsMessagesNamingForeignProcesses) {
  ExecutionTrace trace = sample_trace();
  Value v = trace_to_value(trace);
  // Reach into p0's first recorded round and corrupt a sent message's
  // receiver to a process outside the system.
  ValueVec& procs = v.as_vec()[6].as_vec();
  ValueVec& rounds = procs[0].as_vec()[3].as_vec();
  ASSERT_FALSE(rounds.empty());
  ValueVec& sent = rounds[0].as_vec()[0].as_vec();
  ASSERT_FALSE(sent.empty());
  sent[0].as_vec()[1] = Value{static_cast<std::int64_t>(12345)};
  std::string error;
  EXPECT_EQ(trace_from_value(v, &error), std::nullopt);
  EXPECT_NE(error.find("receiver"), std::string::npos) << error;
}

TEST(TraceIo, RejectsWrongProcessCount) {
  Value v = trace_to_value(sample_trace());
  v.as_vec()[6].as_vec().pop_back();
  std::string error;
  EXPECT_EQ(trace_from_value(v, &error), std::nullopt);
  EXPECT_NE(error.find("process trace"), std::string::npos) << error;
}

TEST(TraceIo, DecodedTraceSurvivesTheLinter) {
  // Decode-then-lint is the tools/lint_trace pipeline; a round-tripped
  // genuine trace must lint clean structurally.
  Bytes bytes = encode_trace(sample_trace());
  auto restored = decode_trace(bytes);
  ASSERT_TRUE(restored.has_value());
  auto report = analysis::lint_trace(*restored);
  EXPECT_TRUE(report.clean()) << report;
}

TEST(TraceIoV2, ProvenanceRoundTrips) {
  ExecutionTrace original = sample_trace();
  const Value provenance = Value::vec(
      {Value{"sim"}, Value{"jitter"}, Value{static_cast<std::int64_t>(42)}});
  Bytes bytes = encode_trace_with_provenance(original, provenance);

  Value got = Value::null();
  auto restored = decode_trace(bytes, nullptr, &got);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->procs[0], original.procs[0]);
  EXPECT_EQ(got, provenance);
}

TEST(TraceIoV2, ScalarProvenanceIsWrappedInAVector) {
  Value v = trace_to_value_with_provenance(sample_trace(), Value{"sim"});
  ASSERT_EQ(v.as_vec().size(), 8u);
  ASSERT_TRUE(v.as_vec()[7].is_vec());
  Value got = Value::null();
  ASSERT_TRUE(trace_from_value(v, nullptr, &got).has_value());
  EXPECT_EQ(got, Value::vec({Value{"sim"}}));
}

TEST(TraceIoV2, V1TracesYieldNullProvenance) {
  Bytes bytes = encode_trace(sample_trace());
  Value got = Value{"sentinel"};
  auto restored = decode_trace(bytes, nullptr, &got);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(got, Value::null());
}

TEST(TraceIoV2, NonVectorProvenanceFieldRejected) {
  Value v = trace_to_value(sample_trace());
  v.as_vec().push_back(Value{"not-a-vector"});
  std::string error;
  EXPECT_EQ(trace_from_value(v, &error), std::nullopt);
  EXPECT_NE(error.find("provenance"), std::string::npos) << error;
}

TEST(TraceIoV2, NineFieldTraceRejected) {
  Value v = trace_to_value_with_provenance(sample_trace(), Value{ValueVec{}});
  v.as_vec().push_back(Value{ValueVec{}});
  EXPECT_EQ(trace_from_value(v), std::nullopt);
}

TEST(TraceIoV2, V2TraceStillSurvivesTheLinter) {
  Bytes bytes = encode_trace_with_provenance(
      sample_trace(), Value::vec({Value{"sim"}}));
  auto restored = decode_trace(bytes);
  ASSERT_TRUE(restored.has_value());
  auto report = analysis::lint_trace(*restored);
  EXPECT_TRUE(report.clean()) << report;
}

TEST(CertificateIo, RoundTrippedCertificateStillVerifies) {
  SystemParams params{12, 8};
  auto protocol = protocols::wc_candidate_leader_beacon();
  auto report = lowerbound::attack_weak_consensus(params, protocol);
  ASSERT_TRUE(report.certificate.has_value());

  Bytes bytes = lowerbound::encode_certificate(*report.certificate);
  auto restored = lowerbound::decode_certificate(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->kind, report.certificate->kind);
  EXPECT_EQ(restored->witness_a, report.certificate->witness_a);
  EXPECT_EQ(restored->narrative, report.certificate->narrative);

  auto check = lowerbound::verify_certificate(*restored, protocol);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(CertificateIo, TamperedBytesDoNotVerify) {
  SystemParams params{12, 8};
  auto protocol = protocols::wc_candidate_gossip_ring(2, 3);
  auto report = lowerbound::attack_weak_consensus(params, protocol);
  ASSERT_TRUE(report.certificate.has_value());

  Value v = lowerbound::certificate_to_value(*report.certificate);
  // Swap the witnesses.
  std::swap(v.as_vec()[3], v.as_vec()[4]);
  auto tampered = lowerbound::certificate_from_value(v);
  // Either the decode rejects it or the verification does.
  if (tampered) {
    auto check = lowerbound::verify_certificate(*tampered, protocol);
    // witness_a/b swap keeps an Agreement pair valid (symmetric), so allow
    // ok here — but a kind flip must fail:
    Value v2 = lowerbound::certificate_to_value(*report.certificate);
    v2.as_vec()[1] = Value{static_cast<std::int64_t>(
        report.certificate->kind == lowerbound::ViolationKind::kAgreement
            ? 2
            : 0)};
    auto flipped = lowerbound::certificate_from_value(v2);
    ASSERT_TRUE(flipped.has_value());
    EXPECT_FALSE(lowerbound::verify_certificate(*flipped, protocol).ok);
  }
}

TEST(BitComplexity, CountsPayloadBytes) {
  SystemParams params{4, 1};
  RunResult res = run_all_correct(params, protocols::phase_king_consensus(),
                                  Value::bit(0));
  const std::uint64_t bytes = res.trace.payload_bytes_sent_by_correct();
  const std::uint64_t msgs = res.trace.message_complexity();
  // Every message carries at least one payload byte, and phase-king payloads
  // are small tagged vectors (well under 64 bytes).
  EXPECT_GE(bytes, msgs);
  EXPECT_LE(bytes, msgs * 64);
}

}  // namespace
}  // namespace ba
