// Regression coverage for the executor's per-run scratch buffers,
// specifically the restore-on-exit dedup bitmap of normalize_outbox_into:
// the bitmap must be all-zero after every call (including calls that drop
// duplicates, self-sends, and out-of-range receivers), so back-to-back
// run_execution calls — and the simulator, which shares RoundScratch —
// never leak state between rounds or runs.

#include <gtest/gtest.h>

#include <vector>

#include "core/ba.h"

namespace ba {
namespace {

bool all_zero(const std::vector<std::uint8_t>& v) {
  for (std::uint8_t b : v) {
    if (b != 0) return false;
  }
  return true;
}

TEST(RoundScratch, SeenBitmapRestoredAfterCleanOutbox) {
  const std::uint32_t n = 8;
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<Message> msgs;
  Outbox out;
  for (ProcessId p = 0; p < n; ++p) {
    if (p != 3) out.push_back(Outgoing{p, Value::bit(1)});
  }
  normalize_outbox_into(out, /*self=*/3, /*r=*/1, n, seen, msgs);
  EXPECT_EQ(msgs.size(), n - 1);
  EXPECT_TRUE(all_zero(seen));
}

TEST(RoundScratch, SeenBitmapRestoredWithDuplicatesSelfAndOutOfRange) {
  const std::uint32_t n = 6;
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<Message> msgs;
  Outbox out;
  out.push_back(Outgoing{2, Value::bit(0)});
  out.push_back(Outgoing{2, Value::bit(1)});   // duplicate: dropped
  out.push_back(Outgoing{0, Value::bit(0)});   // self: dropped
  out.push_back(Outgoing{6, Value::bit(0)});   // >= n: dropped
  out.push_back(Outgoing{99, Value::bit(0)});  // >= n: dropped
  out.push_back(Outgoing{5, Value::bit(1)});
  normalize_outbox_into(out, /*self=*/0, /*r=*/2, n, seen, msgs);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].receiver, 2u);  // sorted by receiver
  EXPECT_EQ(msgs[1].receiver, 5u);
  EXPECT_EQ(msgs[0].payload, Value::bit(0));  // first write wins
  EXPECT_TRUE(all_zero(seen));
}

// A dirty bitmap would make the *next* call drop legitimate messages; the
// regression shape is two calls sharing one bitmap.
TEST(RoundScratch, SharedBitmapAcrossConsecutiveCalls) {
  const std::uint32_t n = 4;
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<Message> msgs;
  Outbox first{Outgoing{1, Value::bit(1)}, Outgoing{2, Value::bit(1)}};
  normalize_outbox_into(first, 0, 1, n, seen, msgs);
  EXPECT_EQ(msgs.size(), 2u);

  Outbox second{Outgoing{1, Value::bit(0)}, Outgoing{3, Value::bit(0)}};
  normalize_outbox_into(second, 2, 1, n, seen, msgs);
  ASSERT_EQ(msgs.size(), 2u);  // receiver 1 must NOT be filtered
  EXPECT_EQ(msgs[0].receiver, 1u);
  EXPECT_EQ(msgs[1].receiver, 3u);
  EXPECT_TRUE(all_zero(seen));
}

TEST(RoundScratch, PrepareResetsFaultTablesBetweenAdversaries) {
  const std::uint32_t n = 5;
  RoundScratch scratch;
  const Adversary iso = isolate_group(ProcessSet::range(3, 5), 1);
  scratch.prepare(iso, n, /*record_trace=*/true);
  EXPECT_NE(scratch.faulty[3], 0);
  EXPECT_NE(scratch.faulty[4], 0);
  EXPECT_EQ(scratch.faulty[0], 0);

  // Re-preparing with a benign adversary must clear every table — stale
  // drop flags would re-apply the previous run's omissions.
  scratch.prepare(Adversary::none(), n, /*record_trace=*/true);
  EXPECT_TRUE(all_zero(scratch.faulty));
  EXPECT_TRUE(all_zero(scratch.may_drop_send));
  EXPECT_TRUE(all_zero(scratch.may_drop_receive));
  EXPECT_TRUE(all_zero(scratch.seen));
}

// End-to-end regression: identical back-to-back executions. Any scratch
// state surviving a run (bitmap bits, stale events, drop tables) would make
// the second run diverge.
TEST(RoundScratch, BackToBackExecutionsAreIdentical) {
  const SystemParams params{7, 2};
  const ProtocolFactory factory = protocols::phase_king_consensus();
  std::vector<Value> proposals;
  for (std::uint32_t p = 0; p < params.n; ++p) {
    proposals.push_back(Value::bit(static_cast<int>(p % 2)));
  }
  const Adversary adv = isolate_group(ProcessSet::range(5, 7), 2);

  const RunResult a = run_execution(params, factory, proposals, adv, {});
  const RunResult b = run_execution(params, factory, proposals, adv, {});
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.messages_sent_total, b.messages_sent_total);
  EXPECT_EQ(encode_trace(a.trace), encode_trace(b.trace));

  // And the same through the simulator, which reuses RoundScratch across
  // its event loop.
  const RunResult c = sim::run_execution_sim(params, factory, proposals, adv);
  const RunResult d = sim::run_execution_sim(params, factory, proposals, adv);
  EXPECT_EQ(encode_trace(c.trace), encode_trace(d.trace));
  EXPECT_EQ(encode_trace(a.trace), encode_trace(c.trace));
}

}  // namespace
}  // namespace ba
