#pragma once

// `Value` is the universal, comparable, hashable datum used for proposals,
// decisions, and message payloads across the library.
//
// The paper works with (potentially infinite) proposal/decision sets V_I and
// V_O; concrete experiments only ever need a small recursive value universe:
// null (the "no decision yet" / bottom symbol), booleans/bits, integers,
// strings (transactions, signatures as bytes), and vectors (interactive-
// consistency decisions are vectors of n entries).

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace ba {

class Value;
using ValueVec = std::vector<Value>;

class Value {
 public:
  enum class Kind : std::uint8_t { kNull = 0, kBool, kInt, kStr, kVec };

  Value() : rep_(std::monostate{}) {}
  Value(bool b) : rep_(b) {}                           // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) : rep_(i) {}                   // NOLINT
  Value(int i) : rep_(static_cast<std::int64_t>(i)) {} // NOLINT
  Value(std::string s) : rep_(std::move(s)) {}         // NOLINT
  Value(const char* s) : rep_(std::string(s)) {}       // NOLINT
  Value(ValueVec v) : rep_(std::move(v)) {}            // NOLINT

  static Value null() { return Value{}; }
  static Value bit(int b) { return Value{b != 0}; }
  static Value vec(std::initializer_list<Value> elems) {
    return Value{ValueVec(elems)};
  }

  [[nodiscard]] Kind kind() const {
    return static_cast<Kind>(rep_.index());
  }
  [[nodiscard]] bool is_null() const { return kind() == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind() == Kind::kBool; }
  [[nodiscard]] bool is_int() const { return kind() == Kind::kInt; }
  [[nodiscard]] bool is_str() const { return kind() == Kind::kStr; }
  [[nodiscard]] bool is_vec() const { return kind() == Kind::kVec; }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(rep_); }
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(rep_);
  }
  [[nodiscard]] const std::string& as_str() const {
    return std::get<std::string>(rep_);
  }
  [[nodiscard]] const ValueVec& as_vec() const {
    return std::get<ValueVec>(rep_);
  }
  [[nodiscard]] ValueVec& as_vec() { return std::get<ValueVec>(rep_); }

  /// Interpret a kBool or kInt value as a binary bit; nullopt otherwise.
  [[nodiscard]] std::optional<int> try_bit() const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend std::strong_ordering operator<=>(const Value& a, const Value& b);

 private:
  using Rep =
      std::variant<std::monostate, bool, std::int64_t, std::string, ValueVec>;
  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace ba

template <>
struct std::hash<ba::Value> {
  std::size_t operator()(const ba::Value& v) const { return v.hash(); }
};
