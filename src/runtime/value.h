#pragma once

// `Value` is the universal, comparable, hashable datum used for proposals,
// decisions, and message payloads across the library.
//
// The paper works with (potentially infinite) proposal/decision sets V_I and
// V_O; concrete experiments only ever need a small recursive value universe:
// null (the "no decision yet" / bottom symbol), booleans/bits, integers,
// strings (transactions, signatures as bytes), and vectors (interactive-
// consistency decisions are vectors of n entries).
//
// Representation: the string and vector arms are copy-on-write. Copying a
// Value copies a refcounted pointer to an immutable shared payload, so the
// runtime's fan-out of one payload to n - 1 receivers costs n - 1 refcount
// bumps instead of n - 1 deep copies (see docs/RUNTIME_PERF.md). The
// external value semantics are unchanged:
//   * equality / ordering / hashing compare payload *contents* (with a
//     same-payload fast path), never identity;
//   * the non-const `as_vec()` accessor un-shares (clones) the payload when
//     it is shared, so mutating one Value never changes another.
// The one sharpened contract: the reference returned by non-const `as_vec()`
// is invalidated by copying or hashing-relevant re-sharing of the Value it
// came from — copy the Value first, then mutate, never the other way round
// while holding the reference.
//
// Shared payloads memoize their hash (computed lazily, cached in a relaxed
// atomic). A payload that has ever been exposed through non-const `as_vec()`
// is permanently excluded from caching: a live mutable reference could
// change it at any time.

#include <atomic>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace ba {

class Value;
using ValueVec = std::vector<Value>;

class Value {
 public:
  enum class Kind : std::uint8_t { kNull = 0, kBool, kInt, kStr, kVec };

  Value() : rep_(std::monostate{}) {}
  Value(bool b) : rep_(b) {}                           // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) : rep_(i) {}                   // NOLINT
  Value(int i) : rep_(static_cast<std::int64_t>(i)) {} // NOLINT
  Value(std::string s);                                // NOLINT
  Value(const char* s);                                // NOLINT
  Value(ValueVec v);                                   // NOLINT

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  // A moved-from Value must stay usable (the seed representation left an
  // empty string/vector behind); reset the source to null rather than
  // leaving it holding a dead shared-payload handle.
  Value(Value&& o) noexcept : rep_(std::move(o.rep_)) {
    o.rep_ = std::monostate{};
  }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      rep_ = std::move(o.rep_);
      o.rep_ = std::monostate{};
    }
    return *this;
  }
  ~Value() = default;

  static Value null() { return Value{}; }
  static Value bit(int b) { return Value{b != 0}; }
  static Value vec(std::initializer_list<Value> elems) {
    return Value{ValueVec(elems)};
  }

  [[nodiscard]] Kind kind() const {
    return static_cast<Kind>(rep_.index());
  }
  [[nodiscard]] bool is_null() const { return kind() == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind() == Kind::kBool; }
  [[nodiscard]] bool is_int() const { return kind() == Kind::kInt; }
  [[nodiscard]] bool is_str() const { return kind() == Kind::kStr; }
  [[nodiscard]] bool is_vec() const { return kind() == Kind::kVec; }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(rep_); }
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(rep_);
  }
  [[nodiscard]] const std::string& as_str() const;
  [[nodiscard]] const ValueVec& as_vec() const;
  /// Mutable access; clones the payload first when it is shared with other
  /// Values (copy-on-write), so mutation never aliases into copies.
  [[nodiscard]] ValueVec& as_vec();

  /// Interpret a kBool or kInt value as a binary bit; nullopt otherwise.
  [[nodiscard]] std::optional<int> try_bit() const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t hash() const;

  /// True iff this and `other` share the same payload object (always true
  /// after a copy, until one side is mutated). Identity-level introspection
  /// for tests and diagnostics; never part of value semantics.
  [[nodiscard]] bool shares_rep_with(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b);
  friend std::strong_ordering operator<=>(const Value& a, const Value& b);

 private:
  struct StrRep;
  struct VecRep;
  using StrPtr = std::shared_ptr<const StrRep>;
  using VecPtr = std::shared_ptr<VecRep>;
  using Rep =
      std::variant<std::monostate, bool, std::int64_t, StrPtr, VecPtr>;
  Rep rep_;
};

/// Immutable shared string payload. Strings have no mutating accessor, so
/// the lazily computed hash cache is always valid once set.
struct Value::StrRep {
  std::string str;
  /// 0 = not computed yet (a true hash of 0 is simply never cached).
  mutable std::atomic<std::size_t> cached_hash{0};

  explicit StrRep(std::string s) : str(std::move(s)) {}
};

/// Shared vector payload. Immutable while shared; non-const `as_vec()`
/// un-shares it and marks it permanently uncacheable (a mutable reference to
/// `elems` may still be live at any later point).
struct Value::VecRep {
  ValueVec elems;
  mutable std::atomic<std::size_t> cached_hash{0};
  bool hash_cacheable{true};

  VecRep() = default;
  explicit VecRep(ValueVec e) : elems(std::move(e)) {}
  // Clone used by copy-on-write: element Values are copied (refcount bumps,
  // not deep copies); the clone starts with a fresh, empty hash cache.
  VecRep(const VecRep& o) : elems(o.elems) {}
  VecRep& operator=(const VecRep&) = delete;
};

inline Value::Value(std::string s)
    : rep_(std::make_shared<const StrRep>(std::move(s))) {}
inline Value::Value(const char* s)
    : rep_(std::make_shared<const StrRep>(std::string(s))) {}
inline Value::Value(ValueVec v)
    : rep_(std::make_shared<VecRep>(std::move(v))) {}

inline const std::string& Value::as_str() const {
  return std::get<StrPtr>(rep_)->str;
}
inline const ValueVec& Value::as_vec() const {
  return std::get<VecPtr>(rep_)->elems;
}

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace ba

template <>
struct std::hash<ba::Value> {
  std::size_t operator()(const ba::Value& v) const { return v.hash(); }
};
