#include "runtime/trace_io.h"

namespace ba {
namespace {

Value message_to_value(const Message& m) {
  return Value{ValueVec{Value{static_cast<std::int64_t>(m.sender)},
                        Value{static_cast<std::int64_t>(m.receiver)},
                        Value{static_cast<std::int64_t>(m.round)},
                        m.payload}};
}

std::optional<Message> message_from_value(const Value& v) {
  if (!v.is_vec() || v.as_vec().size() != 4) return std::nullopt;
  const ValueVec& f = v.as_vec();
  if (!f[0].is_int() || !f[1].is_int() || !f[2].is_int()) return std::nullopt;
  return Message{static_cast<ProcessId>(f[0].as_int()),
                 static_cast<ProcessId>(f[1].as_int()),
                 static_cast<Round>(f[2].as_int()), f[3]};
}

Value messages_to_value(const std::vector<Message>& ms) {
  ValueVec out;
  out.reserve(ms.size());
  for (const Message& m : ms) out.push_back(message_to_value(m));
  return Value{std::move(out)};
}

std::optional<std::vector<Message>> messages_from_value(const Value& v) {
  if (!v.is_vec()) return std::nullopt;
  std::vector<Message> out;
  out.reserve(v.as_vec().size());
  for (const Value& e : v.as_vec()) {
    auto m = message_from_value(e);
    if (!m) return std::nullopt;
    out.push_back(std::move(*m));
  }
  return out;
}

}  // namespace

Value trace_to_value(const ExecutionTrace& trace) {
  ValueVec procs;
  procs.reserve(trace.procs.size());
  for (const ProcessTrace& pt : trace.procs) {
    ValueVec rounds;
    rounds.reserve(pt.rounds.size());
    for (const RoundEvents& re : pt.rounds) {
      rounds.push_back(Value{ValueVec{
          messages_to_value(re.sent), messages_to_value(re.send_omitted),
          messages_to_value(re.received),
          messages_to_value(re.receive_omitted)}});
    }
    procs.push_back(Value{ValueVec{
        pt.proposal,
        pt.decision ? Value{ValueVec{*pt.decision}} : Value{ValueVec{}},
        Value{static_cast<std::int64_t>(pt.decision_round)},
        Value{std::move(rounds)}}});
  }
  ValueVec faulty;
  for (ProcessId p : trace.faulty) {
    faulty.emplace_back(static_cast<std::int64_t>(p));
  }
  return Value{ValueVec{Value{"trace"},
                        Value{static_cast<std::int64_t>(trace.params.n)},
                        Value{static_cast<std::int64_t>(trace.params.t)},
                        Value{std::move(faulty)},
                        Value{static_cast<std::int64_t>(trace.rounds)},
                        Value{trace.quiesced}, Value{std::move(procs)}}};
}

std::optional<ExecutionTrace> trace_from_value(const Value& v) {
  if (!v.is_vec() || v.as_vec().size() != 7) return std::nullopt;
  const ValueVec& f = v.as_vec();
  if (!f[0].is_str() || f[0].as_str() != "trace" || !f[1].is_int() ||
      !f[2].is_int() || !f[3].is_vec() || !f[4].is_int() || !f[5].is_bool() ||
      !f[6].is_vec()) {
    return std::nullopt;
  }
  ExecutionTrace trace;
  trace.params.n = static_cast<std::uint32_t>(f[1].as_int());
  trace.params.t = static_cast<std::uint32_t>(f[2].as_int());
  for (const Value& e : f[3].as_vec()) {
    if (!e.is_int()) return std::nullopt;
    trace.faulty.insert(static_cast<ProcessId>(e.as_int()));
  }
  trace.rounds = static_cast<Round>(f[4].as_int());
  trace.quiesced = f[5].as_bool();

  for (const Value& pv : f[6].as_vec()) {
    if (!pv.is_vec() || pv.as_vec().size() != 4) return std::nullopt;
    const ValueVec& pf = pv.as_vec();
    ProcessTrace pt;
    pt.proposal = pf[0];
    if (!pf[1].is_vec()) return std::nullopt;
    if (!pf[1].as_vec().empty()) pt.decision = pf[1].as_vec()[0];
    if (!pf[2].is_int()) return std::nullopt;
    pt.decision_round = static_cast<Round>(pf[2].as_int());
    if (!pf[3].is_vec()) return std::nullopt;
    for (const Value& rv : pf[3].as_vec()) {
      if (!rv.is_vec() || rv.as_vec().size() != 4) return std::nullopt;
      RoundEvents re;
      auto sent = messages_from_value(rv.as_vec()[0]);
      auto send_omitted = messages_from_value(rv.as_vec()[1]);
      auto received = messages_from_value(rv.as_vec()[2]);
      auto receive_omitted = messages_from_value(rv.as_vec()[3]);
      if (!sent || !send_omitted || !received || !receive_omitted) {
        return std::nullopt;
      }
      re.sent = std::move(*sent);
      re.send_omitted = std::move(*send_omitted);
      re.received = std::move(*received);
      re.receive_omitted = std::move(*receive_omitted);
      pt.rounds.push_back(std::move(re));
    }
    trace.procs.push_back(std::move(pt));
  }
  if (trace.procs.size() != trace.params.n) return std::nullopt;
  return trace;
}

Bytes encode_trace(const ExecutionTrace& trace) {
  return encode_value(trace_to_value(trace));
}

std::optional<ExecutionTrace> decode_trace(
    std::span<const std::uint8_t> bytes) {
  try {
    return trace_from_value(decode_value(bytes));
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace ba
