#include "runtime/trace_io.h"

#include <limits>
#include <sstream>

namespace ba {
namespace {

/// Records the first decode failure; later failures keep the original
/// diagnostic (the root cause is what the caller wants to see).
class Diag {
 public:
  explicit Diag(std::string* out) : out_(out) {}

  template <typename... Parts>
  std::nullopt_t fail(Parts&&... parts) {
    if (out_ != nullptr && out_->empty()) {
      std::ostringstream os;
      (os << ... << parts);
      *out_ = os.str();
    }
    return std::nullopt;
  }

 private:
  std::string* out_;
};

/// Narrow an int field to uint32, rejecting negatives and overflow instead
/// of letting the cast wrap.
std::optional<std::uint32_t> checked_u32(const Value& v) {
  if (!v.is_int()) return std::nullopt;
  const std::int64_t i = v.as_int();
  if (i < 0 || i > std::numeric_limits<std::uint32_t>::max()) {
    return std::nullopt;
  }
  return static_cast<std::uint32_t>(i);
}

Value message_to_value(const Message& m) {
  return Value{ValueVec{Value{static_cast<std::int64_t>(m.sender)},
                        Value{static_cast<std::int64_t>(m.receiver)},
                        Value{static_cast<std::int64_t>(m.round)},
                        m.payload}};
}

/// Decodes one message. `n` bounds the process ids: a trace can only carry
/// messages between processes of its own system.
std::optional<Message> message_from_value(const Value& v, std::uint32_t n,
                                          Diag& diag) {
  if (!v.is_vec() || v.as_vec().size() != 4) {
    return diag.fail("message: expected a 4-field vector");
  }
  const ValueVec& f = v.as_vec();
  const auto sender = checked_u32(f[0]);
  const auto receiver = checked_u32(f[1]);
  const auto round = checked_u32(f[2]);
  if (!sender || !receiver || !round) {
    return diag.fail("message: sender/receiver/round must be in [0, 2^32)");
  }
  if (*sender >= n) return diag.fail("message: sender ", *sender, " >= n=", n);
  if (*receiver >= n) {
    return diag.fail("message: receiver ", *receiver, " >= n=", n);
  }
  return Message{*sender, *receiver, *round, f[3]};
}

Value messages_to_value(const std::vector<Message>& ms) {
  ValueVec out;
  out.reserve(ms.size());
  for (const Message& m : ms) out.push_back(message_to_value(m));
  return Value{std::move(out)};
}

std::optional<std::vector<Message>> messages_from_value(const Value& v,
                                                        std::uint32_t n,
                                                        Diag& diag) {
  if (!v.is_vec()) return diag.fail("message set: expected a vector");
  std::vector<Message> out;
  out.reserve(v.as_vec().size());
  for (const Value& e : v.as_vec()) {
    auto m = message_from_value(e, n, diag);
    if (!m) return std::nullopt;
    out.push_back(std::move(*m));
  }
  return out;
}

}  // namespace

Value trace_to_value(const ExecutionTrace& trace) {
  ValueVec procs;
  procs.reserve(trace.procs.size());
  for (const ProcessTrace& pt : trace.procs) {
    ValueVec rounds;
    rounds.reserve(pt.rounds.size());
    for (const RoundEvents& re : pt.rounds) {
      rounds.push_back(Value{ValueVec{
          messages_to_value(re.sent), messages_to_value(re.send_omitted),
          messages_to_value(re.received),
          messages_to_value(re.receive_omitted)}});
    }
    procs.push_back(Value{ValueVec{
        pt.proposal,
        pt.decision ? Value{ValueVec{*pt.decision}} : Value{ValueVec{}},
        Value{static_cast<std::int64_t>(pt.decision_round)},
        Value{std::move(rounds)}}});
  }
  ValueVec faulty;
  for (ProcessId p : trace.faulty) {
    faulty.emplace_back(static_cast<std::int64_t>(p));
  }
  return Value{ValueVec{Value{"trace"},
                        Value{static_cast<std::int64_t>(trace.params.n)},
                        Value{static_cast<std::int64_t>(trace.params.t)},
                        Value{std::move(faulty)},
                        Value{static_cast<std::int64_t>(trace.rounds)},
                        Value{trace.quiesced}, Value{std::move(procs)}}};
}

Value trace_to_value_with_provenance(const ExecutionTrace& trace,
                                     const Value& provenance) {
  Value v = trace_to_value(trace);
  ValueVec fields = v.as_vec();
  // The provenance slot is constrained to a vector so a corrupted stream
  // cannot smuggle arbitrary scalars into an "ignored" field unnoticed.
  fields.push_back(provenance.is_vec() ? provenance
                                       : Value{ValueVec{provenance}});
  return Value{std::move(fields)};
}

std::optional<ExecutionTrace> trace_from_value(const Value& v,
                                               std::string* error,
                                               Value* provenance) {
  Diag diag(error);
  if (!v.is_vec() ||
      (v.as_vec().size() != 7 && v.as_vec().size() != 8)) {
    return diag.fail("trace: expected a 7-field (v1) or 8-field (v2) vector");
  }
  const ValueVec& f = v.as_vec();
  if (f.size() == 8) {
    // v2 provenance extension: shape-checked, contents deliberately opaque
    // (future producers may add fields without breaking this decoder).
    if (!f[7].is_vec()) {
      return diag.fail("trace: v2 provenance field must be a vector");
    }
    if (provenance != nullptr) *provenance = f[7];
  } else if (provenance != nullptr) {
    *provenance = Value::null();
  }
  if (!f[0].is_str() || f[0].as_str() != "trace") {
    return diag.fail("trace: missing 'trace' tag");
  }
  if (!f[3].is_vec() || !f[5].is_bool() || !f[6].is_vec()) {
    return diag.fail("trace: malformed field types");
  }
  ExecutionTrace trace;
  const auto n = checked_u32(f[1]);
  const auto t = checked_u32(f[2]);
  if (!n || !t) return diag.fail("trace: n/t must be in [0, 2^32)");
  trace.params.n = *n;
  trace.params.t = *t;
  if (!trace.params.valid()) {
    return diag.fail("trace: invalid params n=", *n, " t=", *t,
                     " (need n > 0 and t < n)");
  }
  for (const Value& e : f[3].as_vec()) {
    const auto p = checked_u32(e);
    if (!p) return diag.fail("trace: faulty id must be in [0, 2^32)");
    if (*p >= *n) return diag.fail("trace: faulty id ", *p, " >= n=", *n);
    trace.faulty.insert(*p);
  }
  const auto rounds = checked_u32(f[4]);
  if (!rounds) return diag.fail("trace: round count must be in [0, 2^32)");
  trace.rounds = *rounds;
  trace.quiesced = f[5].as_bool();

  if (f[6].as_vec().size() != *n) {
    return diag.fail("trace: ", f[6].as_vec().size(),
                     " process trace(s) for n=", *n);
  }
  for (const Value& pv : f[6].as_vec()) {
    if (!pv.is_vec() || pv.as_vec().size() != 4) {
      return diag.fail("process trace: expected a 4-field vector");
    }
    const ValueVec& pf = pv.as_vec();
    ProcessTrace pt;
    pt.proposal = pf[0];
    if (!pf[1].is_vec() || pf[1].as_vec().size() > 1) {
      return diag.fail("process trace: decision must be a 0/1-element vector");
    }
    if (!pf[1].as_vec().empty()) pt.decision = pf[1].as_vec()[0];
    const auto decision_round = checked_u32(pf[2]);
    if (!decision_round) {
      return diag.fail("process trace: decision round must be in [0, 2^32)");
    }
    pt.decision_round = *decision_round;
    if (!pf[3].is_vec()) {
      return diag.fail("process trace: rounds must be a vector");
    }
    for (const Value& rv : pf[3].as_vec()) {
      if (!rv.is_vec() || rv.as_vec().size() != 4) {
        return diag.fail("round events: expected a 4-field vector");
      }
      RoundEvents re;
      auto sent = messages_from_value(rv.as_vec()[0], *n, diag);
      auto send_omitted = messages_from_value(rv.as_vec()[1], *n, diag);
      auto received = messages_from_value(rv.as_vec()[2], *n, diag);
      auto receive_omitted = messages_from_value(rv.as_vec()[3], *n, diag);
      if (!sent || !send_omitted || !received || !receive_omitted) {
        return std::nullopt;
      }
      re.sent = std::move(*sent);
      re.send_omitted = std::move(*send_omitted);
      re.received = std::move(*received);
      re.receive_omitted = std::move(*receive_omitted);
      pt.rounds.push_back(std::move(re));
    }
    trace.procs.push_back(std::move(pt));
  }
  return trace;
}

Bytes encode_trace(const ExecutionTrace& trace) {
  return encode_value(trace_to_value(trace));
}

Bytes encode_trace_with_provenance(const ExecutionTrace& trace,
                                   const Value& provenance) {
  return encode_value(trace_to_value_with_provenance(trace, provenance));
}

std::optional<ExecutionTrace> decode_trace(std::span<const std::uint8_t> bytes,
                                           std::string* error,
                                           Value* provenance) {
  try {
    return trace_from_value(decode_value(bytes), error, provenance);
  } catch (const SerdeError& e) {
    if (error != nullptr && error->empty()) {
      *error = std::string("serde: ") + e.what();
    }
    return std::nullopt;
  }
}

}  // namespace ba
