#pragma once

// Messages. Per Appendix A.1.1 of the paper, a message is identified by its
// (sender, receiver, round) triple — each process sends at most one message to
// any specific process in a single round, and no process sends to itself.
// The payload travels alongside the identity; two executions are
// indistinguishable to a process only if it receives *identical* messages
// (identity and payload) in every round.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "runtime/types.h"
#include "runtime/value.h"

namespace ba {

/// The paper's message identity (A.1.1): m.sender, m.receiver, m.round.
struct MsgKey {
  ProcessId sender{kNoProcess};
  ProcessId receiver{kNoProcess};
  Round round{kNoRound};

  friend auto operator<=>(const MsgKey&, const MsgKey&) = default;
};

struct Message {
  ProcessId sender{kNoProcess};
  ProcessId receiver{kNoProcess};
  Round round{kNoRound};
  Value payload;

  [[nodiscard]] MsgKey key() const { return {sender, receiver, round}; }

  friend bool operator==(const Message&, const Message&) = default;
  friend std::strong_ordering operator<=>(const Message& a, const Message& b) {
    if (auto c = a.key() <=> b.key(); c != std::strong_ordering::equal) {
      return c;
    }
    return a.payload <=> b.payload;
  }
};

std::ostream& operator<<(std::ostream& os, const Message& m);

/// A message a process hands to the runtime for sending this round; the
/// runtime fills in sender and round.
struct Outgoing {
  ProcessId to{kNoProcess};
  Value payload;
};

using Inbox = std::vector<Message>;
using Outbox = std::vector<Outgoing>;

}  // namespace ba

// SipHash-2-4 over the little-endian (sender, receiver, round) encoding,
// under a fixed domain-separation key (defined in message.cpp). The previous
// ad-hoc xor/multiply combiner collided heavily on dense grids of message
// identities — see MessageKeyHash tests in tests/runtime/message_test.cpp.
template <>
struct std::hash<ba::MsgKey> {
  std::size_t operator()(const ba::MsgKey& k) const;
};
