#pragma once

// Canonical binary serialization. Used to derive signing bytes for the
// authentication substrate and stable hashes for execution comparison.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/value.h"

namespace ba {

using Bytes = std::vector<std::uint8_t>;

class BytesWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s);
  void bytes(const Bytes& b);
  void value(const Value& v);

  [[nodiscard]] const Bytes& data() const { return out_; }
  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

class SerdeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BytesReader {
 public:
  explicit BytesReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str();
  Bytes bytes();
  Value value();

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t k);

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

/// Canonical byte encoding of a value (round-trips via BytesReader::value).
Bytes encode_value(const Value& v);
Value decode_value(std::span<const std::uint8_t> data);

}  // namespace ba
