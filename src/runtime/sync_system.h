#pragma once

// The synchronous round executor (§2). In each round every process
// (1) computes locally, (2) sends messages, (3) receives the messages sent to
// it in the round, subject to the adversary's omission faults. Channels are
// authenticated: the inbox exposes true sender identities.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/lint.h"
#include "runtime/fault.h"
#include "runtime/message.h"
#include "runtime/net_metrics.h"
#include "runtime/process.h"
#include "runtime/trace.h"
#include "runtime/types.h"

namespace ba {

struct RunOptions {
  /// Hard cap on executed rounds (protects against non-quiescent protocols).
  Round max_rounds{1000};
  /// Record full per-round event traces (required by the execution calculus;
  /// switch off for large-n complexity benchmarks).
  bool record_trace{true};
  /// Stop once the system is quiescent: all replicas report quiescent() and
  /// no message was sent this round.
  bool stop_on_quiescence{true};
  /// Lint the recorded trace against the execution-invariant checks of
  /// src/analysis (conservation, budget, determinism replay, quiescence) and
  /// attach the report to RunResult::lint. Requires record_trace: executors
  /// throw std::invalid_argument on lint_trace without record_trace rather
  /// than silently linting an empty trace.
  bool lint_trace{false};
  /// Statically derived message budget for the protocol under test
  /// (statics::budget_at at this run's (n, t)). Forwarded to the linter's
  /// budget invariant; only meaningful with lint_trace.
  std::optional<std::uint64_t> message_budget;
};

struct RunResult {
  ExecutionTrace trace;  // events empty when !record_trace; metadata filled
  std::vector<std::optional<Value>> decisions;
  std::uint64_t messages_sent_by_correct{0};
  std::uint64_t messages_sent_total{0};
  Round rounds_executed{0};
  bool quiesced{false};
  /// Present iff RunOptions::lint_trace was set: the invariant-lint verdict
  /// for this execution, so callers (benches, tests) can assert clean traces
  /// without re-running the linter.
  std::optional<analysis::LintReport> lint;
  /// Per-link network metrics, filled by backends that measure the network
  /// (engine::Capability::kNetMetrics — today the discrete-event simulator
  /// with metrics collection on). The lockstep executor leaves it empty:
  /// it has no notion of intra-round delivery timing.
  std::optional<NetMetrics> net;

  [[nodiscard]] bool lint_clean() const { return !lint || lint->clean(); }

  [[nodiscard]] std::optional<Value> unanimous_correct_decision() const {
    return trace.unanimous_correct_decision();
  }
};

/// Runs one execution of `protocol` among n processes with the given
/// proposals (size n; proposals of faulty-Byzantine processes are still used
/// to construct their replicas and may be ignored by the strategy).
RunResult run_execution(const SystemParams& params,
                        const ProtocolFactory& protocol,
                        const std::vector<Value>& proposals,
                        const Adversary& adversary,
                        const RunOptions& options = {});

/// Convenience: fault-free execution where everyone proposes `v`.
RunResult run_all_correct(const SystemParams& params,
                          const ProtocolFactory& protocol, const Value& v,
                          const RunOptions& options = {});

/// Replays process `p`'s deterministic state machine against a fixed receive
/// history (one inbox per round, each sorted by sender) and returns the
/// outboxes it produces per round plus its decision. This is the
// "determinism" device used throughout Appendix A: identical receive
/// histories force identical behaviour.
struct ReplayResult {
  std::vector<Outbox> outboxes;  // outboxes[r - 1] = sends in round r
  std::optional<Value> decision;
  Round decision_round{kNoRound};
  bool quiescent{false};
};
ReplayResult replay_process(const SystemParams& params,
                            const ProtocolFactory& protocol, ProcessId p,
                            const Value& proposal,
                            const std::vector<Inbox>& inboxes);

/// Turns a raw outbox into well-formed round-`r` messages from `self`:
/// drops self-sends and out-of-range receivers and keeps the first message
/// per receiver (the model allows at most one, A.1.1). Sorted by receiver.
std::vector<Message> normalize_outbox(const Outbox& out, ProcessId self,
                                      Round r, std::uint32_t n);

/// Allocation-reusing form of `normalize_outbox`: writes the normalized
/// messages into `msgs` (cleared first; capacity retained) and uses `seen`
/// as the receiver-dedup bitmap instead of a per-call std::set. `seen` must
/// be all-zero with size >= n on entry; it is restored to all-zero on exit.
void normalize_outbox_into(const Outbox& out, ProcessId self, Round r,
                           std::uint32_t n, std::vector<std::uint8_t>& seen,
                           std::vector<Message>& msgs);

/// Sorts an inbox by sender (the canonical delivery order). The lockstep
/// executor's routing produces sorted inboxes by construction (and only
/// asserts); this is for callers that assemble inboxes in arbitrary order —
/// `replay_process`, the execution calculus, and the simulator's
/// jitter-dependent arrival path.
void sort_inbox(Inbox& inbox);

/// Per-run scratch space for the executor's round loop: outbox/inbox
/// buffers, trace-event staging, the dedup bitmap for
/// `normalize_outbox_into`, and per-process fault lookup tables that let the
/// hot path skip the adversary's std::function predicates entirely for
/// fault-free processes. Everything is allocated once in `prepare` and
/// cleared (capacity retained) each round, so a steady-state round performs
/// no heap allocation of its own when traces are off.
struct RoundScratch {
  std::vector<std::vector<Message>> outs;  // outs[p]: p's normalized sends
  std::vector<Inbox> inboxes;
  std::vector<RoundEvents> events;         // staging; only when tracing
  std::vector<std::uint8_t> seen;          // receiver-dedup bitmap, size n
  std::vector<std::uint8_t> faulty;        // faulty[p] != 0 iff p is faulty
  // drop tables: nonzero iff the corresponding omission predicate exists
  // AND the process is eligible (send: faulty non-Byzantine sender;
  // receive: faulty receiver). The predicate itself is consulted only when
  // the table says it can matter.
  std::vector<std::uint8_t> may_drop_send;
  std::vector<std::uint8_t> may_drop_receive;

  void prepare(const Adversary& adversary, std::uint32_t n,
               bool record_trace);
};

}  // namespace ba
