#pragma once

// The deterministic state-machine interface (paper A.1.3).
//
// The paper's transition function is A(s, M^R) = (s', M^S): the state at the
// start of a round plus the messages received in that round determine the
// next state and the messages sent in the *next* round. Round-1 messages are
// a pure function of the initial state (proposal).
//
// We express the same model with a two-phase interface:
//   * `outbox_for_round(r)`  — messages to send in round r, a deterministic
//     function of the state at the start of round r;
//   * `deliver(r, inbox)`    — messages received in round r; advances the
//     state to the start of round r + 1.
// The runtime owns every side effect (omission, delivery, accounting), so a
// protocol implementation is a pure state machine and can be re-run on any
// receive-history — exactly what the Appendix-A constructions (swap_omission,
// merge) require.

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "runtime/message.h"
#include "runtime/types.h"
#include "runtime/value.h"

namespace ba {

class Process {
 public:
  virtual ~Process() = default;

  /// Messages this process sends in round `r` (1-based). Must be
  /// deterministic in the state at the start of round r. At most one message
  /// per receiver; never to self (the runtime enforces both).
  virtual Outbox outbox_for_round(Round r) = 0;

  /// Messages received in round `r`. Advances state to the start of round
  /// r + 1. The inbox is sorted by sender and contains at most one message
  /// per sender.
  virtual void deliver(Round r, const Inbox& inbox) = 0;

  /// The decision, if the process has decided (decisions are permanent).
  [[nodiscard]] virtual std::optional<Value> decision() const = 0;

  /// True once the process will provably never send another message
  /// regardless of future inboxes. Used to detect quiescence so finite
  /// prefixes stand in for the paper's infinite executions.
  [[nodiscard]] virtual bool quiescent() const { return decision().has_value(); }
};

/// Everything a protocol instance needs to know at construction time.
struct ProcessContext {
  SystemParams params;
  ProcessId self{kNoProcess};
  Value proposal;
};

/// A protocol is a factory of deterministic process replicas. Factories must
/// be pure: two processes constructed from equal contexts behave identically
/// on equal receive-histories.
using ProtocolFactory =
    std::function<std::unique_ptr<Process>(const ProcessContext&)>;

/// Descriptive bundle used by benches/examples.
struct Protocol {
  std::string name;
  ProtocolFactory factory;
  /// Smallest n this protocol supports for a given t (e.g. 3t+1), or 0 if any
  /// n > t works.
  std::function<std::uint32_t(std::uint32_t t)> min_n;
};

}  // namespace ba
