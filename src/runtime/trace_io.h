#pragma once

// Serialization of execution traces (and, in lowerbound/certificate_io.h,
// violation certificates) to the library's canonical byte format. Lets a
// counterexample found by the attack engine be stored, shipped, and
// re-verified elsewhere — the certificate is meaningful precisely because
// anyone can replay it.
//
// Decoding is defensive: traces arrive from disk or the network, so every
// integer field is range-checked before it is narrowed and every structural
// claim (process counts, set membership) is verified. Malformed input yields
// nullopt plus, when requested, a diagnostic naming the offending field —
// never undefined behaviour or a silently wrapped value.

#include <optional>
#include <string>

#include "runtime/serde.h"
#include "runtime/trace.h"

namespace ba {

/// Encodes the full trace (params, faulty set, per-process proposals,
/// per-round event sets, decisions, quiescence flag).
Value trace_to_value(const ExecutionTrace& trace);

/// Decodes a trace, rejecting out-of-range ids/rounds and shape mismatches.
/// On rejection returns nullopt and, if `error` is non-null, stores a
/// one-line explanation.
std::optional<ExecutionTrace> trace_from_value(const Value& v,
                                               std::string* error = nullptr);

Bytes encode_trace(const ExecutionTrace& trace);
std::optional<ExecutionTrace> decode_trace(std::span<const std::uint8_t> bytes,
                                           std::string* error = nullptr);

}  // namespace ba
