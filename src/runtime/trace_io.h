#pragma once

// Serialization of execution traces (and, in lowerbound/certificate_io.h,
// violation certificates) to the library's canonical byte format. Lets a
// counterexample found by the attack engine be stored, shipped, and
// re-verified elsewhere — the certificate is meaningful precisely because
// anyone can replay it.
//
// Decoding is defensive: traces arrive from disk or the network, so every
// integer field is range-checked before it is narrowed and every structural
// claim (process counts, set membership) is verified. Malformed input yields
// nullopt plus, when requested, a diagnostic naming the offending field —
// never undefined behaviour or a silently wrapped value.

#include <optional>
#include <string>

#include "runtime/serde.h"
#include "runtime/trace.h"

namespace ba {

/// Encodes the full trace (params, faulty set, per-process proposals,
/// per-round event sets, decisions, quiescence flag).
Value trace_to_value(const ExecutionTrace& trace);

/// Schema-v2 encoding: the v1 fields plus a trailing provenance vector
/// (producer name, link model, seeds — free-form). Decoders treat the
/// extension defensively: v1 readers never see it, and trace_from_value
/// accepts both widths, validating the provenance slot's shape but never
/// its contents. Written by trace producers other than the lockstep
/// executor (the sim CLI's --save-trace), so audits can tell substrates
/// apart without forking the format.
Value trace_to_value_with_provenance(const ExecutionTrace& trace,
                                     const Value& provenance);

/// Decodes a trace, rejecting out-of-range ids/rounds and shape mismatches.
/// Accepts both the 7-field v1 layout and the 8-field v2 layout (trailing
/// provenance vector). On rejection returns nullopt and, if `error` is
/// non-null, stores a one-line explanation. If `provenance` is non-null it
/// receives the v2 provenance vector (null Value for v1 traces).
std::optional<ExecutionTrace> trace_from_value(const Value& v,
                                               std::string* error = nullptr,
                                               Value* provenance = nullptr);

Bytes encode_trace(const ExecutionTrace& trace);
Bytes encode_trace_with_provenance(const ExecutionTrace& trace,
                                   const Value& provenance);
std::optional<ExecutionTrace> decode_trace(std::span<const std::uint8_t> bytes,
                                           std::string* error = nullptr,
                                           Value* provenance = nullptr);

}  // namespace ba
