#pragma once

// Serialization of execution traces (and, in lowerbound/certificate_io.h,
// violation certificates) to the library's canonical byte format. Lets a
// counterexample found by the attack engine be stored, shipped, and
// re-verified elsewhere — the certificate is meaningful precisely because
// anyone can replay it.

#include <optional>

#include "runtime/serde.h"
#include "runtime/trace.h"

namespace ba {

/// Encodes the full trace (params, faulty set, per-process proposals,
/// per-round event sets, decisions, quiescence flag).
Value trace_to_value(const ExecutionTrace& trace);
std::optional<ExecutionTrace> trace_from_value(const Value& v);

Bytes encode_trace(const ExecutionTrace& trace);
std::optional<ExecutionTrace> decode_trace(
    std::span<const std::uint8_t> bytes);

}  // namespace ba
