#include "runtime/types.h"

#include <algorithm>
#include <cassert>

namespace ba {

ProcessSet::ProcessSet(std::vector<ProcessId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

ProcessSet ProcessSet::range(ProcessId begin, ProcessId end) {
  ProcessSet s;
  s.ids_.reserve(end > begin ? end - begin : 0);
  for (ProcessId i = begin; i < end; ++i) s.ids_.push_back(i);
  return s;
}

void ProcessSet::insert(ProcessId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) ids_.insert(it, id);
}

void ProcessSet::erase(ProcessId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) ids_.erase(it);
}

bool ProcessSet::contains(ProcessId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

ProcessSet ProcessSet::set_union(const ProcessSet& other) const {
  ProcessSet out;
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

ProcessSet ProcessSet::set_intersection(const ProcessSet& other) const {
  ProcessSet out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

ProcessSet ProcessSet::set_difference(const ProcessSet& other) const {
  ProcessSet out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

ProcessSet ProcessSet::complement(std::uint32_t n) const {
  return all(n).set_difference(*this);
}

bool ProcessSet::is_subset_of(const ProcessSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

}  // namespace ba
