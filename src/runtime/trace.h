#pragma once

// Execution traces: the observable content of an execution, recorded per
// process per round, in exactly the vocabulary of Appendix A.1.4–A.1.6
// (sent / send-omitted / received / receive-omitted message sets, states
// being implicit in the deterministic protocol + receive history).
//
// Traces are the common currency between the runtime, the execution calculus
// (swap_omission / merge), and the lower-bound attack engine.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "runtime/message.h"
#include "runtime/types.h"
#include "runtime/value.h"

namespace ba {

/// One round of one process, as seen by an omniscient observer (a fragment,
/// A.1.4, minus the state — states are recoverable by determinism).
struct RoundEvents {
  std::vector<Message> sent;
  std::vector<Message> send_omitted;
  std::vector<Message> received;
  std::vector<Message> receive_omitted;

  friend bool operator==(const RoundEvents&, const RoundEvents&) = default;
};

/// The behaviour of one process across the whole (finite prefix of an)
/// execution (A.1.5).
struct ProcessTrace {
  Value proposal;
  std::vector<RoundEvents> rounds;  // rounds[r - 1] is round r
  std::optional<Value> decision;
  Round decision_round{kNoRound};

  [[nodiscard]] const RoundEvents& round(Round r) const {
    return rounds.at(r - 1);
  }

  friend bool operator==(const ProcessTrace&, const ProcessTrace&) = default;
};

/// A (finite prefix standing in for an infinite) execution (A.1.6).
struct ExecutionTrace {
  SystemParams params;
  ProcessSet faulty;
  std::vector<ProcessTrace> procs;
  Round rounds{0};
  /// True if the run reached quiescence (every process provably silent
  /// forever after), so this finite prefix determines the infinite execution.
  bool quiesced{false};

  [[nodiscard]] ProcessSet correct() const {
    return faulty.complement(params.n);
  }

  /// Paper §2: number of messages sent by correct processes over the whole
  /// execution.
  [[nodiscard]] std::uint64_t message_complexity() const;

  /// Bit complexity: total canonical-encoding bytes of payloads sent by
  /// correct processes (the metric of the related-work bit-complexity
  /// results, e.g. [12, 20, 34, 41]). Multiply by 8 for bits.
  [[nodiscard]] std::uint64_t payload_bytes_sent_by_correct() const;

  /// All messages sent by anyone (diagnostics).
  [[nodiscard]] std::uint64_t total_messages_sent() const;

  /// Messages sent by processes in `senders` and receive-omitted by `p`
  /// (the paper's M_{X -> p} when `senders` = X).
  [[nodiscard]] std::vector<Message> receive_omitted_from(
      ProcessId p, const ProcessSet& senders) const;

  /// Indistinguishability (§3): process p cannot tell this execution from
  /// `other` iff it has the same proposal and receives identical messages in
  /// every round of both.
  [[nodiscard]] bool indistinguishable_for(ProcessId p,
                                           const ExecutionTrace& other) const;

  /// Structural well-formedness per A.1.6: send-validity, receive-validity,
  /// omission-validity, |F| <= t, at-most-one message per ordered pair and
  /// round, no self-messages. Returns an explanation on failure.
  [[nodiscard]] std::optional<std::string> validate() const;

  /// The decision of the correct processes if they all decided the same
  /// value; nullopt if any correct process is undecided or two disagree.
  [[nodiscard]] std::optional<Value> unanimous_correct_decision() const;
};

std::ostream& operator<<(std::ostream& os, const ExecutionTrace& t);

}  // namespace ba
