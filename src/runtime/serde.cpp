#include "runtime/serde.h"

namespace ba {

void BytesWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back((v >> (8 * i)) & 0xff);
}

void BytesWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back((v >> (8 * i)) & 0xff);
}

void BytesWriter::str(const std::string& s) {
  u64(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

void BytesWriter::bytes(const Bytes& b) {
  u64(b.size());
  out_.insert(out_.end(), b.begin(), b.end());
}

void BytesWriter::value(const Value& v) {
  u8(static_cast<std::uint8_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
      u8(v.as_bool() ? 1 : 0);
      break;
    case Value::Kind::kInt:
      i64(v.as_int());
      break;
    case Value::Kind::kStr:
      str(v.as_str());
      break;
    case Value::Kind::kVec:
      u64(v.as_vec().size());
      for (const Value& e : v.as_vec()) value(e);
      break;
  }
}

void BytesReader::need(std::size_t k) {
  if (remaining() < k) throw SerdeError("truncated input");
}

std::uint8_t BytesReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t BytesReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t BytesReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::string BytesReader::str() {
  std::uint64_t len = u64();
  need(len);
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return s;
}

Bytes BytesReader::bytes() {
  std::uint64_t len = u64();
  need(len);
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return b;
}

Value BytesReader::value() {
  auto kind = static_cast<Value::Kind>(u8());
  switch (kind) {
    case Value::Kind::kNull:
      return Value::null();
    case Value::Kind::kBool:
      return Value{u8() != 0};
    case Value::Kind::kInt:
      return Value{i64()};
    case Value::Kind::kStr:
      return Value{str()};
    case Value::Kind::kVec: {
      std::uint64_t len = u64();
      // Each element takes at least one byte: reject corrupted length
      // fields before any allocation is attempted.
      if (len > remaining()) throw SerdeError("vector length exceeds input");
      ValueVec vec;
      vec.reserve(len);
      for (std::uint64_t i = 0; i < len; ++i) vec.push_back(value());
      return Value{std::move(vec)};
    }
  }
  throw SerdeError("bad value tag");
}

Bytes encode_value(const Value& v) {
  BytesWriter w;
  w.value(v);
  return w.take();
}

Value decode_value(std::span<const std::uint8_t> data) {
  BytesReader r(data);
  Value v = r.value();
  if (!r.done()) throw SerdeError("trailing bytes");
  return v;
}

}  // namespace ba
