#include "runtime/sync_system.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace ba {

std::vector<Message> normalize_outbox(const Outbox& out, ProcessId self,
                                      Round r, std::uint32_t n) {
  std::vector<Message> msgs;
  std::set<ProcessId> seen;
  for (const Outgoing& o : out) {
    if (o.to == self || o.to >= n) continue;
    if (!seen.insert(o.to).second) continue;
    msgs.push_back(Message{self, o.to, r, o.payload});
  }
  std::sort(msgs.begin(), msgs.end(),
            [](const Message& a, const Message& b) {
              return a.receiver < b.receiver;
            });
  return msgs;
}

void sort_inbox(Inbox& inbox) {
  std::sort(inbox.begin(), inbox.end(), [](const Message& a, const Message& b) {
    return a.sender < b.sender;
  });
}

RunResult run_execution(const SystemParams& params,
                        const ProtocolFactory& protocol,
                        const std::vector<Value>& proposals,
                        const Adversary& adversary,
                        const RunOptions& options) {
  if (!params.valid()) throw std::invalid_argument("invalid SystemParams");
  if (proposals.size() != params.n) {
    throw std::invalid_argument("proposals.size() != n");
  }
  if (adversary.faulty.size() > params.t) {
    throw std::invalid_argument("|faulty| > t");
  }
  if (!adversary.byzantine.is_subset_of(adversary.faulty)) {
    throw std::invalid_argument("byzantine set must be a subset of faulty");
  }
  if (!adversary.byzantine.empty() && !adversary.byzantine_factory) {
    throw std::invalid_argument("byzantine set without byzantine_factory");
  }

  const std::uint32_t n = params.n;
  std::vector<std::unique_ptr<Process>> replicas(n);
  for (ProcessId p = 0; p < n; ++p) {
    ProcessContext ctx{params, p, proposals[p]};
    replicas[p] = adversary.is_byzantine(p) ? adversary.byzantine_factory(ctx)
                                            : protocol(ctx);
    if (!replicas[p]) throw std::runtime_error("factory returned null");
  }

  RunResult result;
  result.decisions.assign(n, std::nullopt);
  result.trace.params = params;
  result.trace.faulty = adversary.faulty;
  result.trace.procs.resize(n);
  for (ProcessId p = 0; p < n; ++p) result.trace.procs[p].proposal = proposals[p];

  for (Round r = 1; r <= options.max_rounds; ++r) {
    // Phase 1: compute all outboxes from states at the start of round r.
    std::vector<std::vector<Message>> outs(n);
    std::uint64_t sent_this_round = 0;
    for (ProcessId p = 0; p < n; ++p) {
      outs[p] = normalize_outbox(replicas[p]->outbox_for_round(r), p, r, n);
    }

    // Phase 2: apply send omissions, route to inboxes, apply receive
    // omissions.
    std::vector<Inbox> inboxes(n);
    std::vector<RoundEvents> events(options.record_trace ? n : 0);
    for (ProcessId p = 0; p < n; ++p) {
      for (Message& m : outs[p]) {
        if (adversary.drops_send(m.key())) {
          if (options.record_trace) events[p].send_omitted.push_back(m);
          continue;
        }
        ++sent_this_round;
        ++result.messages_sent_total;
        if (!adversary.is_faulty(p)) ++result.messages_sent_by_correct;
        if (options.record_trace) events[p].sent.push_back(m);
        if (adversary.drops_receive(m.key())) {
          if (options.record_trace) {
            events[m.receiver].receive_omitted.push_back(m);
          }
          continue;
        }
        inboxes[m.receiver].push_back(m);
      }
    }

    // Phase 3: deliver.
    for (ProcessId p = 0; p < n; ++p) {
      sort_inbox(inboxes[p]);
      if (options.record_trace) {
        events[p].received = inboxes[p];
      }
      replicas[p]->deliver(r, inboxes[p]);
      if (!result.decisions[p].has_value()) {
        if (auto d = replicas[p]->decision()) {
          result.decisions[p] = d;
          result.trace.procs[p].decision = d;
          result.trace.procs[p].decision_round = r;
        }
      }
    }
    if (options.record_trace) {
      for (ProcessId p = 0; p < n; ++p) {
        result.trace.procs[p].rounds.push_back(std::move(events[p]));
      }
    }
    result.rounds_executed = r;
    result.trace.rounds = r;

    if (options.stop_on_quiescence && sent_this_round == 0) {
      bool all_quiescent = true;
      for (ProcessId p = 0; p < n; ++p) {
        if (!replicas[p]->quiescent()) {
          all_quiescent = false;
          break;
        }
      }
      if (all_quiescent) {
        result.quiesced = true;
        result.trace.quiesced = true;
        break;
      }
    }
  }
  if (options.lint_trace && options.record_trace) {
    // Correct processes are replayed with the honest factory; faulty ones
    // (possibly Byzantine) are exempt from the determinism check.
    result.lint = analysis::lint_execution(result.trace, protocol);
  }
  return result;
}

RunResult run_all_correct(const SystemParams& params,
                          const ProtocolFactory& protocol, const Value& v,
                          const RunOptions& options) {
  std::vector<Value> proposals(params.n, v);
  return run_execution(params, protocol, proposals, Adversary::none(),
                       options);
}

ReplayResult replay_process(const SystemParams& params,
                            const ProtocolFactory& protocol, ProcessId p,
                            const Value& proposal,
                            const std::vector<Inbox>& inboxes) {
  ProcessContext ctx{params, p, proposal};
  std::unique_ptr<Process> replica = protocol(ctx);
  ReplayResult result;
  result.outboxes.reserve(inboxes.size());
  for (std::size_t r = 0; r < inboxes.size(); ++r) {
    const Round round = static_cast<Round>(r + 1);
    result.outboxes.push_back(replica->outbox_for_round(round));
    Inbox inbox = inboxes[r];
    sort_inbox(inbox);
    replica->deliver(round, inbox);
    if (!result.decision.has_value()) {
      if (auto d = replica->decision()) {
        result.decision = d;
        result.decision_round = round;
      }
    }
  }
  result.quiescent = replica->quiescent();
  return result;
}

}  // namespace ba
