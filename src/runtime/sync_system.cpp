#include "runtime/sync_system.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ba {

namespace {

[[maybe_unused]] bool inbox_sorted_by_sender(const Inbox& inbox) {
  return std::is_sorted(inbox.begin(), inbox.end(),
                        [](const Message& a, const Message& b) {
                          return a.sender < b.sender;
                        });
}

}  // namespace

void normalize_outbox_into(const Outbox& out, ProcessId self, Round r,
                           std::uint32_t n, std::vector<std::uint8_t>& seen,
                           std::vector<Message>& msgs) {
  assert(seen.size() >= n);
  msgs.clear();
  for (const Outgoing& o : out) {
    if (o.to == self || o.to >= n) continue;
    if (seen[o.to] != 0) continue;
    seen[o.to] = 1;
    msgs.push_back(Message{self, o.to, r, o.payload});
  }
  // Restore the bitmap to all-zero by visiting only the receivers just
  // marked — cheaper than an O(n) wipe when outboxes are sparse.
  for (const Message& m : msgs) seen[m.receiver] = 0;
  std::sort(msgs.begin(), msgs.end(),
            [](const Message& a, const Message& b) {
              return a.receiver < b.receiver;
            });
}

std::vector<Message> normalize_outbox(const Outbox& out, ProcessId self,
                                      Round r, std::uint32_t n) {
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<Message> msgs;
  normalize_outbox_into(out, self, r, n, seen, msgs);
  return msgs;
}

void sort_inbox(Inbox& inbox) {
  std::sort(inbox.begin(), inbox.end(), [](const Message& a, const Message& b) {
    return a.sender < b.sender;
  });
}

void RoundScratch::prepare(const Adversary& adversary, std::uint32_t n,
                           bool record_trace) {
  outs.resize(n);
  inboxes.resize(n);
  events.resize(record_trace ? n : 0);
  seen.assign(n, 0);
  faulty.assign(n, 0);
  may_drop_send.assign(n, 0);
  may_drop_receive.assign(n, 0);
  for (ProcessId p = 0; p < n; ++p) {
    const bool f = adversary.is_faulty(p);
    faulty[p] = f ? 1 : 0;
    may_drop_send[p] =
        (adversary.send_omit && f && !adversary.is_byzantine(p)) ? 1 : 0;
    may_drop_receive[p] = (adversary.receive_omit && f) ? 1 : 0;
  }
}

RunResult run_execution(const SystemParams& params,
                        const ProtocolFactory& protocol,
                        const std::vector<Value>& proposals,
                        const Adversary& adversary,
                        const RunOptions& options) {
  if (!params.valid()) throw std::invalid_argument("invalid SystemParams");
  if (proposals.size() != params.n) {
    throw std::invalid_argument("proposals.size() != n");
  }
  if (adversary.faulty.size() > params.t) {
    throw std::invalid_argument("|faulty| > t");
  }
  if (!adversary.byzantine.is_subset_of(adversary.faulty)) {
    throw std::invalid_argument("byzantine set must be a subset of faulty");
  }
  if (!adversary.byzantine.empty() && !adversary.byzantine_factory) {
    throw std::invalid_argument("byzantine set without byzantine_factory");
  }
  if (options.lint_trace && !options.record_trace) {
    throw std::invalid_argument(
        "RunOptions::lint_trace requires record_trace: there is no trace to "
        "lint when recording is off");
  }

  const std::uint32_t n = params.n;
  std::vector<std::unique_ptr<Process>> replicas(n);
  for (ProcessId p = 0; p < n; ++p) {
    ProcessContext ctx{params, p, proposals[p]};
    replicas[p] = adversary.is_byzantine(p) ? adversary.byzantine_factory(ctx)
                                            : protocol(ctx);
    if (!replicas[p]) throw std::runtime_error("factory returned null");
  }

  RunResult result;
  result.decisions.assign(n, std::nullopt);
  result.trace.params = params;
  result.trace.faulty = adversary.faulty;
  result.trace.procs.resize(n);
  for (ProcessId p = 0; p < n; ++p) result.trace.procs[p].proposal = proposals[p];

  const bool tracing = options.record_trace;
  RoundScratch scratch;
  scratch.prepare(adversary, n, tracing);

  for (Round r = 1; r <= options.max_rounds; ++r) {
    // Phase 1: compute all outboxes from states at the start of round r,
    // and reset the per-round buffers (capacity is retained).
    std::uint64_t sent_this_round = 0;
    for (ProcessId p = 0; p < n; ++p) {
      normalize_outbox_into(replicas[p]->outbox_for_round(r), p, r, n,
                            scratch.seen, scratch.outs[p]);
      scratch.inboxes[p].clear();
      if (tracing) {
        RoundEvents& ev = scratch.events[p];
        ev.sent.clear();
        ev.send_omitted.clear();
        ev.received.clear();
        ev.receive_omitted.clear();
      }
    }

    // Phase 2: apply send omissions, route to inboxes, apply receive
    // omissions. The omission predicates are std::function indirections;
    // the scratch lookup tables let fault-free processes (the common case)
    // skip them entirely.
    for (ProcessId p = 0; p < n; ++p) {
      const bool correct_sender = scratch.faulty[p] == 0;
      const bool check_send = scratch.may_drop_send[p] != 0;
      for (Message& m : scratch.outs[p]) {
        if (check_send && adversary.send_omit(m.key())) {
          if (tracing) scratch.events[p].send_omitted.push_back(m);
          continue;
        }
        ++sent_this_round;
        ++result.messages_sent_total;
        if (correct_sender) ++result.messages_sent_by_correct;
        if (tracing) scratch.events[p].sent.push_back(m);
        if (scratch.may_drop_receive[m.receiver] != 0 &&
            adversary.receive_omit(m.key())) {
          if (tracing) {
            scratch.events[m.receiver].receive_omitted.push_back(m);
          }
          continue;
        }
        scratch.inboxes[m.receiver].push_back(m);
      }
    }

    // Phase 3: deliver. Routing visits senders in ascending order and each
    // sender contributes at most one message per receiver, so every inbox is
    // already in canonical (sender-sorted) delivery order — no per-round
    // sort.
    for (ProcessId p = 0; p < n; ++p) {
      Inbox& inbox = scratch.inboxes[p];
      assert(inbox_sorted_by_sender(inbox));
      if (tracing) {
        scratch.events[p].received = inbox;
      }
      replicas[p]->deliver(r, inbox);
      if (!result.decisions[p].has_value()) {
        if (auto d = replicas[p]->decision()) {
          result.decisions[p] = d;
          result.trace.procs[p].decision = d;
          result.trace.procs[p].decision_round = r;
        }
      }
    }
    if (tracing) {
      for (ProcessId p = 0; p < n; ++p) {
        result.trace.procs[p].rounds.push_back(std::move(scratch.events[p]));
      }
    }
    result.rounds_executed = r;
    result.trace.rounds = r;

    if (options.stop_on_quiescence && sent_this_round == 0) {
      bool all_quiescent = true;
      for (ProcessId p = 0; p < n; ++p) {
        if (!replicas[p]->quiescent()) {
          all_quiescent = false;
          break;
        }
      }
      if (all_quiescent) {
        result.quiesced = true;
        result.trace.quiesced = true;
        break;
      }
    }
  }
  if (options.lint_trace) {
    // Correct processes are replayed with the honest factory; faulty ones
    // (possibly Byzantine) are exempt from the determinism check.
    analysis::LintOptions lint_options;
    lint_options.message_budget = options.message_budget;
    result.lint =
        analysis::lint_execution(result.trace, protocol, lint_options);
  }
  return result;
}

RunResult run_all_correct(const SystemParams& params,
                          const ProtocolFactory& protocol, const Value& v,
                          const RunOptions& options) {
  std::vector<Value> proposals(params.n, v);
  return run_execution(params, protocol, proposals, Adversary::none(),
                       options);
}

ReplayResult replay_process(const SystemParams& params,
                            const ProtocolFactory& protocol, ProcessId p,
                            const Value& proposal,
                            const std::vector<Inbox>& inboxes) {
  ProcessContext ctx{params, p, proposal};
  std::unique_ptr<Process> replica = protocol(ctx);
  ReplayResult result;
  result.outboxes.reserve(inboxes.size());
  Inbox inbox;  // reused across rounds; assign() keeps the capacity
  for (std::size_t r = 0; r < inboxes.size(); ++r) {
    const Round round = static_cast<Round>(r + 1);
    result.outboxes.push_back(replica->outbox_for_round(round));
    inbox.assign(inboxes[r].begin(), inboxes[r].end());
    sort_inbox(inbox);
    replica->deliver(round, inbox);
    if (!result.decision.has_value()) {
      if (auto d = replica->decision()) {
        result.decision = d;
        result.decision_round = round;
      }
    }
  }
  result.quiescent = replica->quiescent();
  return result;
}

}  // namespace ba
