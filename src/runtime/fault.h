#pragma once

// Fault injection. The static adversary corrupts up to t processes before the
// run (§2). Corrupted processes either
//   * follow their state machine but drop messages (omission model, §3) —
//     controlled here by send/receive-omission predicates over message
//     identities; or
//   * behave arbitrarily (Byzantine model) — expressed by substituting a
//     different `Process` implementation for the corrupted replica.
//
// Omission-faulty processes are unaware of their own omissions: predicates
// are evaluated by the runtime, never visible to the state machine.

#include <functional>
#include <memory>

#include "runtime/message.h"
#include "runtime/process.h"
#include "runtime/types.h"

namespace ba {

/// Predicate over message identities; true means "omit".
using OmitPredicate = std::function<bool(const MsgKey&)>;

/// Full adversary specification for one execution.
struct Adversary {
  /// The corrupted set F, |F| <= t.
  ProcessSet faulty;

  /// Send-omission faults: consulted only when the *sender* is faulty.
  OmitPredicate send_omit;
  /// Receive-omission faults: consulted only when the *receiver* is faulty.
  OmitPredicate receive_omit;

  /// Byzantine behaviour override: replicas for these processes are built by
  /// `byzantine_factory` instead of the honest protocol factory. Must be a
  /// subset of `faulty`. Byzantine replicas are exempt from the omission
  /// predicates (they already control their own sends).
  ProcessSet byzantine;
  ProtocolFactory byzantine_factory;

  [[nodiscard]] static Adversary none() { return {}; }

  [[nodiscard]] bool is_faulty(ProcessId p) const {
    return faulty.contains(p);
  }
  [[nodiscard]] bool is_byzantine(ProcessId p) const {
    return byzantine.contains(p);
  }
  [[nodiscard]] bool drops_send(const MsgKey& k) const {
    return send_omit && is_faulty(k.sender) && !is_byzantine(k.sender) &&
           send_omit(k);
  }
  [[nodiscard]] bool drops_receive(const MsgKey& k) const {
    return receive_omit && is_faulty(k.receiver) && receive_omit(k);
  }
};

}  // namespace ba
