#pragma once

// Per-link / per-process network metrics, shared by every execution backend.
//
// The trace (runtime/trace.h) records *which* messages moved; the metrics
// record *how* the network moved them: per-link message and byte counters,
// a delivery-latency histogram in logical ticks, and reorder/drop/late
// accounting. Everything is plain counters — deterministic, mergeable, and
// cheap enough to leave on by default.
//
// These types were born in src/sim/ (the discrete-event simulator is the
// producer that measures real latencies), but they live here so that
// `RunResult::net` (sync_system.h) can surface them through the backend
// seam (src/engine/) without making the runtime depend on the simulator.
// src/sim/metrics.h re-exports them under the ba::sim namespace.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/types.h"

namespace ba {

/// Power-of-two bucketed latency histogram: bucket i counts deliveries with
/// latency in [2^i, 2^(i+1)) ticks (bucket 0 additionally catches 0).
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 20;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count{0};
  std::uint64_t min{0};
  std::uint64_t max{0};
  std::uint64_t sum{0};

  void record(std::uint64_t latency);
  /// Upper edge of the first bucket whose cumulative share reaches `p`
  /// (p in [0, 1]); 0 when empty. A coarse but deterministic quantile.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double p) const;

  friend bool operator==(const LatencyHistogram&,
                         const LatencyHistogram&) = default;
};

struct LinkStats {
  std::uint64_t delivered{0};
  std::uint64_t payload_bytes{0};  // canonical-encoding bytes delivered
  std::uint64_t dropped{0};        // omission faults (send or receive)
  std::uint64_t late{0};           // missed the round boundary (pre-GST)

  friend bool operator==(const LinkStats&, const LinkStats&) = default;
};

struct NetMetrics {
  std::uint32_t n{0};
  std::vector<LinkStats> links;          // n*n, row-major by sender
  std::vector<std::uint64_t> sent_by;    // accepted sends per process
  std::vector<std::uint64_t> delivered_to;
  LatencyHistogram latency;
  std::uint64_t deliveries{0};
  /// Deliveries that arrived out of canonical (ascending-sender) order
  /// within their (receiver, round) — the observable effect of jitter.
  std::uint64_t reordered{0};

  void reset(std::uint32_t system_size);

  [[nodiscard]] LinkStats& link(ProcessId sender, ProcessId receiver) {
    return links[static_cast<std::size_t>(sender) * n + receiver];
  }
  [[nodiscard]] const LinkStats& link(ProcessId sender,
                                      ProcessId receiver) const {
    return links[static_cast<std::size_t>(sender) * n + receiver];
  }

  [[nodiscard]] std::uint64_t total_delivered() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  [[nodiscard]] std::uint64_t total_late() const;
  [[nodiscard]] std::uint64_t total_payload_bytes() const;

  /// One-line human summary for CLI output.
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const NetMetrics&, const NetMetrics&) = default;
};

}  // namespace ba
