#include "runtime/net_metrics.h"

#include <bit>
#include <sstream>

namespace ba {

void LatencyHistogram::record(std::uint64_t latency) {
  std::size_t bucket =
      latency == 0 ? 0 : static_cast<std::size_t>(std::bit_width(latency) - 1);
  bucket = std::min(bucket, kBuckets - 1);
  ++buckets[bucket];
  if (count == 0 || latency < min) min = latency;
  if (latency > max) max = latency;
  sum += latency;
  ++count;
}

std::uint64_t LatencyHistogram::quantile_upper_bound(double p) const {
  if (count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > target || seen == count) {
      return (std::uint64_t{1} << (i + 1)) - 1;
    }
  }
  return max;
}

void NetMetrics::reset(std::uint32_t system_size) {
  n = system_size;
  links.assign(static_cast<std::size_t>(n) * n, LinkStats{});
  sent_by.assign(n, 0);
  delivered_to.assign(n, 0);
  latency = LatencyHistogram{};
  deliveries = 0;
  reordered = 0;
}

std::uint64_t NetMetrics::total_delivered() const {
  std::uint64_t total = 0;
  for (const LinkStats& l : links) total += l.delivered;
  return total;
}

std::uint64_t NetMetrics::total_dropped() const {
  std::uint64_t total = 0;
  for (const LinkStats& l : links) total += l.dropped;
  return total;
}

std::uint64_t NetMetrics::total_late() const {
  std::uint64_t total = 0;
  for (const LinkStats& l : links) total += l.late;
  return total;
}

std::uint64_t NetMetrics::total_payload_bytes() const {
  std::uint64_t total = 0;
  for (const LinkStats& l : links) total += l.payload_bytes;
  return total;
}

std::string NetMetrics::summary() const {
  std::ostringstream os;
  os << "delivered " << total_delivered() << " (" << total_payload_bytes()
     << " payload bytes), dropped " << total_dropped() << ", late "
     << total_late() << ", reordered " << reordered;
  if (latency.count > 0) {
    os << "; latency ticks min " << latency.min << " p50<="
       << latency.quantile_upper_bound(0.5) << " p99<="
       << latency.quantile_upper_bound(0.99) << " max " << latency.max;
  }
  return os.str();
}

}  // namespace ba
