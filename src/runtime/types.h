#pragma once

// Basic vocabulary types for the synchronous Byzantine-agreement runtime.
//
// The model follows §2 and Appendix A.1 of "All Byzantine Agreement Problems
// are Expensive" (PODC 2024): a static system Pi = {p_0, ..., p_{n-1}} of
// deterministic state machines advancing in synchronous rounds 1, 2, ...

#include <cstdint>
#include <limits>
#include <vector>

namespace ba {

/// Index of a process in the static system Pi. 0-based.
using ProcessId = std::uint32_t;

/// Synchronous round number. Rounds are 1-based as in the paper; round 0 is
/// used as a sentinel meaning "before the execution starts".
using Round = std::uint32_t;

inline constexpr Round kNoRound = 0;
inline constexpr ProcessId kNoProcess =
    std::numeric_limits<ProcessId>::max();

/// System-size parameters: n processes, at most t < n faulty.
struct SystemParams {
  std::uint32_t n{0};
  std::uint32_t t{0};

  [[nodiscard]] bool valid() const { return n > 0 && t < n; }

  friend bool operator==(const SystemParams&, const SystemParams&) = default;
};

/// A set of process ids, kept sorted and unique. Small systems dominate the
/// experiments, so a sorted vector beats a node-based set.
class ProcessSet {
 public:
  ProcessSet() = default;
  explicit ProcessSet(std::vector<ProcessId> ids);

  static ProcessSet range(ProcessId begin, ProcessId end);  // [begin, end)
  static ProcessSet all(std::uint32_t n) { return range(0, n); }

  void insert(ProcessId id);
  void erase(ProcessId id);
  [[nodiscard]] bool contains(ProcessId id) const;
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }

  [[nodiscard]] ProcessSet set_union(const ProcessSet& other) const;
  [[nodiscard]] ProcessSet set_intersection(const ProcessSet& other) const;
  [[nodiscard]] ProcessSet set_difference(const ProcessSet& other) const;
  /// Complement with respect to a system of n processes (paper notation G-bar).
  [[nodiscard]] ProcessSet complement(std::uint32_t n) const;

  [[nodiscard]] bool is_subset_of(const ProcessSet& other) const;

  [[nodiscard]] auto begin() const { return ids_.begin(); }
  [[nodiscard]] auto end() const { return ids_.end(); }
  [[nodiscard]] const std::vector<ProcessId>& ids() const { return ids_; }

  friend bool operator==(const ProcessSet&, const ProcessSet&) = default;

 private:
  std::vector<ProcessId> ids_;
};

}  // namespace ba
