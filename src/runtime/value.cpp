#include "runtime/value.h"

#include <ostream>
#include <sstream>

namespace ba {
namespace {

std::size_t hash_combine(std::size_t seed, std::size_t h) {
  // Boost-style combiner; good enough for container keying.
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::optional<int> Value::try_bit() const {
  if (is_bool()) return as_bool() ? 1 : 0;
  if (is_int() && (as_int() == 0 || as_int() == 1)) {
    return static_cast<int>(as_int());
  }
  return std::nullopt;
}

std::string Value::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::size_t Value::hash() const {
  std::size_t seed = static_cast<std::size_t>(kind());
  switch (kind()) {
    case Kind::kNull:
      break;
    case Kind::kBool:
      seed = hash_combine(seed, std::hash<bool>{}(as_bool()));
      break;
    case Kind::kInt:
      seed = hash_combine(seed, std::hash<std::int64_t>{}(as_int()));
      break;
    case Kind::kStr:
      seed = hash_combine(seed, std::hash<std::string>{}(as_str()));
      break;
    case Kind::kVec:
      for (const Value& e : as_vec()) seed = hash_combine(seed, e.hash());
      break;
  }
  return seed;
}

std::strong_ordering operator<=>(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return a.kind() <=> b.kind();
  switch (a.kind()) {
    case Value::Kind::kNull:
      return std::strong_ordering::equal;
    case Value::Kind::kBool:
      return a.as_bool() <=> b.as_bool();
    case Value::Kind::kInt:
      return a.as_int() <=> b.as_int();
    case Value::Kind::kStr:
      return a.as_str().compare(b.as_str()) <=> 0;
    case Value::Kind::kVec: {
      const ValueVec& va = a.as_vec();
      const ValueVec& vb = b.as_vec();
      for (std::size_t i = 0; i < va.size() && i < vb.size(); ++i) {
        auto c = va[i] <=> vb[i];
        if (c != std::strong_ordering::equal) return c;
      }
      return va.size() <=> vb.size();
    }
  }
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      return os << "_";
    case Value::Kind::kBool:
      return os << (v.as_bool() ? "1" : "0");
    case Value::Kind::kInt:
      return os << v.as_int();
    case Value::Kind::kStr:
      return os << '"' << v.as_str() << '"';
    case Value::Kind::kVec: {
      os << '[';
      bool first = true;
      for (const Value& e : v.as_vec()) {
        if (!first) os << ',';
        first = false;
        os << e;
      }
      return os << ']';
    }
  }
  return os;
}

}  // namespace ba
