#include "runtime/value.h"

#include <ostream>
#include <sstream>

namespace ba {
namespace {

std::size_t hash_combine(std::size_t seed, std::size_t h) {
  // Boost-style combiner; good enough for container keying. Kept bit-for-bit
  // identical to the pre-COW representation so cached hashes are observably
  // the same values the seed computed.
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

ValueVec& Value::as_vec() {
  VecPtr& p = std::get<VecPtr>(rep_);
  if (p.use_count() > 1) p = std::make_shared<VecRep>(*p);
  // From here the caller holds a mutable reference into the payload, which
  // can change at any later point: drop the cached hash and never cache on
  // this payload object again.
  p->cached_hash.store(0, std::memory_order_relaxed);
  p->hash_cacheable = false;
  return p->elems;
}

bool Value::shares_rep_with(const Value& other) const {
  if (rep_.index() != other.rep_.index()) return false;
  if (is_str()) return std::get<StrPtr>(rep_) == std::get<StrPtr>(other.rep_);
  if (is_vec()) return std::get<VecPtr>(rep_) == std::get<VecPtr>(other.rep_);
  return false;
}

std::optional<int> Value::try_bit() const {
  if (is_bool()) return as_bool() ? 1 : 0;
  if (is_int() && (as_int() == 0 || as_int() == 1)) {
    return static_cast<int>(as_int());
  }
  return std::nullopt;
}

std::string Value::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::size_t Value::hash() const {
  std::size_t seed = static_cast<std::size_t>(kind());
  switch (kind()) {
    case Kind::kNull:
      break;
    case Kind::kBool:
      seed = hash_combine(seed, std::hash<bool>{}(as_bool()));
      break;
    case Kind::kInt:
      seed = hash_combine(seed, std::hash<std::int64_t>{}(as_int()));
      break;
    case Kind::kStr: {
      const StrRep& rep = *std::get<StrPtr>(rep_);
      std::size_t h = rep.cached_hash.load(std::memory_order_relaxed);
      if (h == 0) {
        h = hash_combine(seed, std::hash<std::string>{}(rep.str));
        if (h != 0) rep.cached_hash.store(h, std::memory_order_relaxed);
      }
      return h;
    }
    case Kind::kVec: {
      const VecRep& rep = *std::get<VecPtr>(rep_);
      if (rep.hash_cacheable) {
        const std::size_t h = rep.cached_hash.load(std::memory_order_relaxed);
        if (h != 0) return h;
      }
      for (const Value& e : rep.elems) seed = hash_combine(seed, e.hash());
      if (rep.hash_cacheable && seed != 0) {
        rep.cached_hash.store(seed, std::memory_order_relaxed);
      }
      break;
    }
  }
  return seed;
}

bool operator==(const Value& a, const Value& b) {
  if (a.rep_.index() != b.rep_.index()) return false;
  switch (a.kind()) {
    case Value::Kind::kNull:
      return true;
    case Value::Kind::kBool:
      return a.as_bool() == b.as_bool();
    case Value::Kind::kInt:
      return a.as_int() == b.as_int();
    case Value::Kind::kStr: {
      const auto& pa = std::get<Value::StrPtr>(a.rep_);
      const auto& pb = std::get<Value::StrPtr>(b.rep_);
      return pa == pb || pa->str == pb->str;
    }
    case Value::Kind::kVec: {
      const auto& pa = std::get<Value::VecPtr>(a.rep_);
      const auto& pb = std::get<Value::VecPtr>(b.rep_);
      return pa == pb || pa->elems == pb->elems;
    }
  }
  return false;
}

std::strong_ordering operator<=>(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return a.kind() <=> b.kind();
  switch (a.kind()) {
    case Value::Kind::kNull:
      return std::strong_ordering::equal;
    case Value::Kind::kBool:
      return a.as_bool() <=> b.as_bool();
    case Value::Kind::kInt:
      return a.as_int() <=> b.as_int();
    case Value::Kind::kStr:
      if (std::get<Value::StrPtr>(a.rep_) == std::get<Value::StrPtr>(b.rep_)) {
        return std::strong_ordering::equal;
      }
      return a.as_str().compare(b.as_str()) <=> 0;
    case Value::Kind::kVec: {
      if (std::get<Value::VecPtr>(a.rep_) == std::get<Value::VecPtr>(b.rep_)) {
        return std::strong_ordering::equal;
      }
      const ValueVec& va = a.as_vec();
      const ValueVec& vb = b.as_vec();
      for (std::size_t i = 0; i < va.size() && i < vb.size(); ++i) {
        auto c = va[i] <=> vb[i];
        if (c != std::strong_ordering::equal) return c;
      }
      return va.size() <=> vb.size();
    }
  }
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      return os << "_";
    case Value::Kind::kBool:
      return os << (v.as_bool() ? "1" : "0");
    case Value::Kind::kInt:
      return os << v.as_int();
    case Value::Kind::kStr:
      return os << '"' << v.as_str() << '"';
    case Value::Kind::kVec: {
      os << '[';
      bool first = true;
      for (const Value& e : v.as_vec()) {
        if (!first) os << ',';
        first = false;
        os << e;
      }
      return os << ']';
    }
  }
  return os;
}

}  // namespace ba
