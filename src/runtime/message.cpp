#include "runtime/message.h"

#include <array>
#include <ostream>

#include "crypto/siphash.h"

namespace ba {

std::ostream& operator<<(std::ostream& os, const Message& m) {
  return os << "msg(p" << m.sender << "->p" << m.receiver << "@r" << m.round
            << ": " << m.payload << ")";
}

}  // namespace ba

std::size_t std::hash<ba::MsgKey>::operator()(const ba::MsgKey& k) const {
  // Fixed domain-separation key: message-identity hashing is container
  // keying, not authentication, so it needs no secrecy — only the uniform
  // 64-bit mixing SipHash-2-4 provides over dense (sender, receiver, round)
  // grids.
  static constexpr ba::crypto::SipKey kKey{0x6d73676b65792e31ULL,
                                           0xba2718281828459aULL};
  std::array<std::uint8_t, 12> le{};
  for (std::size_t i = 0; i < 4; ++i) {
    le[i] = static_cast<std::uint8_t>((k.sender >> (8 * i)) & 0xff);
    le[4 + i] = static_cast<std::uint8_t>((k.receiver >> (8 * i)) & 0xff);
    le[8 + i] = static_cast<std::uint8_t>((k.round >> (8 * i)) & 0xff);
  }
  return static_cast<std::size_t>(ba::crypto::siphash24(kKey, le));
}
