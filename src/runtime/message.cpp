#include "runtime/message.h"

#include <ostream>

namespace ba {

std::ostream& operator<<(std::ostream& os, const Message& m) {
  return os << "msg(p" << m.sender << "->p" << m.receiver << "@r" << m.round
            << ": " << m.payload << ")";
}

}  // namespace ba
