#include "runtime/trace.h"

#include "runtime/serde.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

namespace ba {

std::uint64_t ExecutionTrace::message_complexity() const {
  std::uint64_t count = 0;
  for (ProcessId p = 0; p < params.n; ++p) {
    if (faulty.contains(p)) continue;
    for (const RoundEvents& re : procs[p].rounds) count += re.sent.size();
  }
  return count;
}

std::uint64_t ExecutionTrace::payload_bytes_sent_by_correct() const {
  std::uint64_t bytes = 0;
  for (ProcessId p = 0; p < params.n; ++p) {
    if (faulty.contains(p)) continue;
    for (const RoundEvents& re : procs[p].rounds) {
      for (const Message& m : re.sent) {
        bytes += encode_value(m.payload).size();
      }
    }
  }
  return bytes;
}

std::uint64_t ExecutionTrace::total_messages_sent() const {
  std::uint64_t count = 0;
  for (const ProcessTrace& pt : procs) {
    for (const RoundEvents& re : pt.rounds) count += re.sent.size();
  }
  return count;
}

std::vector<Message> ExecutionTrace::receive_omitted_from(
    ProcessId p, const ProcessSet& senders) const {
  std::vector<Message> out;
  for (const RoundEvents& re : procs.at(p).rounds) {
    for (const Message& m : re.receive_omitted) {
      if (senders.contains(m.sender)) out.push_back(m);
    }
  }
  return out;
}

bool ExecutionTrace::indistinguishable_for(ProcessId p,
                                           const ExecutionTrace& other) const {
  const ProcessTrace& a = procs.at(p);
  const ProcessTrace& b = other.procs.at(p);
  if (a.proposal != b.proposal) return false;
  const std::size_t rounds_a = a.rounds.size();
  const std::size_t rounds_b = b.rounds.size();
  for (std::size_t r = 0; r < std::max(rounds_a, rounds_b); ++r) {
    // Beyond a quiesced prefix, receive sets are empty forever.
    static const std::vector<Message> kEmpty;
    const auto& ra = r < rounds_a ? a.rounds[r].received : kEmpty;
    const auto& rb = r < rounds_b ? b.rounds[r].received : kEmpty;
    if (ra != rb) return false;
  }
  return true;
}

std::optional<std::string> ExecutionTrace::validate() const {
  auto fail = [](const std::string& why) {
    return std::optional<std::string>{why};
  };
  if (procs.size() != params.n) return fail("wrong number of process traces");
  if (faulty.size() > params.t) return fail("|F| > t");

  // Index every successfully sent message by identity.
  std::map<MsgKey, Value> sent_index;
  for (ProcessId p = 0; p < params.n; ++p) {
    std::set<MsgKey> seen_out;
    for (std::size_t r = 0; r < procs[p].rounds.size(); ++r) {
      const Round round = static_cast<Round>(r + 1);
      const RoundEvents& re = procs[p].rounds[r];
      for (const auto* bucket : {&re.sent, &re.send_omitted}) {
        for (const Message& m : *bucket) {
          if (m.sender != p) return fail("sent message with wrong sender");
          if (m.round != round) return fail("sent message with wrong round");
          if (m.receiver == p) return fail("self-message");
          if (m.receiver >= params.n) return fail("receiver out of range");
          if (!seen_out.insert(m.key()).second) {
            return fail("two messages to one receiver in one round");
          }
        }
      }
      for (const Message& m : re.sent) sent_index.emplace(m.key(), m.payload);
      if (!re.send_omitted.empty() && !faulty.contains(p)) {
        return fail("correct process send-omitted (omission-validity)");
      }
      if (!re.receive_omitted.empty() && !faulty.contains(p)) {
        return fail("correct process receive-omitted (omission-validity)");
      }
    }
  }

  // Receive-validity: everything received or receive-omitted was sent, with
  // the same payload; at most one inbound message per sender per round.
  std::set<MsgKey> consumed;
  for (ProcessId p = 0; p < params.n; ++p) {
    for (std::size_t r = 0; r < procs[p].rounds.size(); ++r) {
      const Round round = static_cast<Round>(r + 1);
      const RoundEvents& re = procs[p].rounds[r];
      for (const auto* bucket : {&re.received, &re.receive_omitted}) {
        for (const Message& m : *bucket) {
          if (m.receiver != p) return fail("inbound message with wrong receiver");
          if (m.round != round) return fail("inbound message with wrong round");
          auto it = sent_index.find(m.key());
          if (it == sent_index.end()) {
            return fail("message received but never sent (receive-validity)");
          }
          if (it->second != m.payload) return fail("payload mismatch");
          if (!consumed.insert(m.key()).second) {
            return fail("message both received and receive-omitted");
          }
        }
      }
    }
  }

  // Send-validity: every successfully sent message is received or
  // receive-omitted by its target (if the trace extends that far).
  for (const auto& [key, payload] : sent_index) {
    if (key.round > procs[key.receiver].rounds.size()) continue;
    if (!consumed.contains(key)) {
      return fail("message sent but neither received nor receive-omitted");
    }
  }
  return std::nullopt;
}

std::optional<Value> ExecutionTrace::unanimous_correct_decision() const {
  std::optional<Value> decision;
  for (ProcessId p = 0; p < params.n; ++p) {
    if (faulty.contains(p)) continue;
    if (!procs[p].decision.has_value()) return std::nullopt;
    if (!decision) {
      decision = procs[p].decision;
    } else if (*decision != *procs[p].decision) {
      return std::nullopt;
    }
  }
  return decision;
}

std::ostream& operator<<(std::ostream& os, const ExecutionTrace& t) {
  os << "execution(n=" << t.params.n << ", t=" << t.params.t
     << ", rounds=" << t.rounds << ", faulty={";
  bool first = true;
  for (ProcessId p : t.faulty) {
    if (!first) os << ',';
    first = false;
    os << 'p' << p;
  }
  os << "}, msgs(correct)=" << t.message_complexity() << ")";
  for (ProcessId p = 0; p < t.params.n; ++p) {
    os << "\n  p" << p << " proposes " << t.procs[p].proposal << " decides ";
    if (t.procs[p].decision) {
      os << *t.procs[p].decision << " @r" << t.procs[p].decision_round;
    } else {
      os << "<undecided>";
    }
  }
  return os;
}

}  // namespace ba
