#pragma once

// Deterministic thread-pool experiment runner.
//
// Every evaluation artifact in this repo (the Theorem 2 attack sweep, the
// figure benches, the property campaigns) is a grid of *independent* pure
// tasks: a task is a function of its grid index only, never of the
// scheduling order. ExperimentPool exploits that shape:
//
//   * a FIXED worker count (no work stealing, no dynamic resizing): workers
//     pull task indices from a single monotone ticket counter, so which
//     thread runs a task is the only nondeterminism — and tasks are barred
//     from caring by construction;
//   * ORDERED collection: results are written into a slot preallocated per
//     task index, so the collected vector is index-ordered regardless of
//     completion order;
//   * per-task SEEDS (parallel/seed.h) are derived from the task index
//     alone, never from thread ids, clocks, or scheduling.
//
// Together these give the contract the reproducibility battery in
// tests/parallel/ asserts mechanically: running a grid with jobs = 1 and
// jobs = N produces bit-identical result vectors. See docs/PARALLEL.md.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ba::parallel {

/// Resolves a user-facing jobs knob: 0 means "hardware concurrency"
/// (at least 1); any other value is taken literally.
unsigned resolve_jobs(unsigned jobs);

class ExperimentPool {
 public:
  /// Spawns `resolve_jobs(jobs)` worker threads immediately; they idle until
  /// tasks are submitted.
  explicit ExperimentPool(unsigned jobs = 0);
  ~ExperimentPool();

  ExperimentPool(const ExperimentPool&) = delete;
  ExperimentPool& operator=(const ExperimentPool&) = delete;

  /// The resolved worker count.
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Enqueues one task of the current batch and returns its index. Tasks
  /// must be independent: they may not observe scheduling order or other
  /// tasks' effects. Must not be called from inside a task.
  std::size_t submit(std::function<void()> task);

  /// Blocks until every submitted task has run, then resets the batch. If
  /// any tasks threw, the exception of the LOWEST task index is rethrown
  /// (deterministic regardless of completion order); the pool remains
  /// usable for further batches either way.
  void collect();

  /// Runs `fn(i)` for every i in [0, count) across the workers and returns
  /// the results in index order. T must be default-constructible (slots are
  /// preallocated so writes are ordered by index, not by completion).
  template <typename T>
  std::vector<T> map(std::size_t count,
                     const std::function<T(std::size_t)>& fn) {
    std::vector<T> out(count);
    for (std::size_t i = 0; i < count; ++i) {
      submit([&out, &fn, i] { out[i] = fn(i); });
    }
    collect();
    return out;
  }

 private:
  void worker_loop();

  unsigned jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for tasks or shutdown
  std::condition_variable done_cv_;  // collect() waits for batch completion
  std::vector<std::function<void()>> tasks_;
  std::vector<std::exception_ptr> errors_;  // slot per task, null when clean
  std::size_t next_{0};       // next task index to hand out
  std::size_t completed_{0};  // tasks finished in the current batch
  bool stop_{false};
};

}  // namespace ba::parallel
