#include "parallel/seed.h"

#include <array>

#include "crypto/siphash.h"

namespace ba::parallel {
namespace {

/// Domain separation from the other derive_key contexts in the tree.
constexpr std::uint64_t kTaskSeedContext = 0x7a5c5eedULL;

}  // namespace

std::uint64_t derive_task_seed(std::uint64_t master_seed,
                               std::uint64_t task_index) {
  const crypto::SipKey key = crypto::derive_key(master_seed, kTaskSeedContext);
  std::array<std::uint8_t, 8> le{};
  for (std::size_t i = 0; i < 8; ++i) {
    le[i] = static_cast<std::uint8_t>((task_index >> (8 * i)) & 0xff);
  }
  return crypto::siphash24(key, le);
}

void derive_task_seed_block(std::uint64_t master_seed, std::uint64_t first,
                            std::span<std::uint64_t> out) {
  if (out.empty()) return;
  // One key derivation and one initialized hasher for the whole block; each
  // index extends a copy of the shared prefix state. SipHasher::digest() is
  // bit-identical to the one-shot siphash24 over the same absorbed bytes
  // (tests/crypto/siphash_incremental_test.cpp), and absorb_u64 absorbs the
  // same 8 little-endian bytes the reference path hashes.
  const crypto::SipKey key = crypto::derive_key(master_seed, kTaskSeedContext);
  const crypto::SipHasher base(key);
  for (std::size_t i = 0; i < out.size(); ++i) {
    crypto::SipHasher h = base;
    h.absorb_u64(first + i);
    out[i] = h.digest();
  }
}

std::vector<std::uint64_t> derive_task_seeds(std::uint64_t master_seed,
                                             std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  derive_task_seed_block(master_seed, 0, seeds);
  return seeds;
}

}  // namespace ba::parallel
