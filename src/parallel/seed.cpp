#include "parallel/seed.h"

#include <array>

#include "crypto/siphash.h"

namespace ba::parallel {

std::uint64_t derive_task_seed(std::uint64_t master_seed,
                               std::uint64_t task_index) {
  // Domain-separate from the other derive_key contexts in the tree.
  const crypto::SipKey key = crypto::derive_key(master_seed, 0x7a5c5eedULL);
  std::array<std::uint8_t, 8> le{};
  for (std::size_t i = 0; i < 8; ++i) {
    le[i] = static_cast<std::uint8_t>((task_index >> (8 * i)) & 0xff);
  }
  return crypto::siphash24(key, le);
}

std::vector<std::uint64_t> derive_task_seeds(std::uint64_t master_seed,
                                             std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) {
    seeds[i] = derive_task_seed(master_seed, i);
  }
  return seeds;
}

}  // namespace ba::parallel
