#include "parallel/experiment_pool.h"

#include <utility>

namespace ba::parallel {

unsigned resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ExperimentPool::ExperimentPool(unsigned jobs) : jobs_(resolve_jobs(jobs)) {
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ExperimentPool::~ExperimentPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ExperimentPool::submit(std::function<void()> task) {
  std::size_t index = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = tasks_.size();
    tasks_.push_back(std::move(task));
    errors_.emplace_back();
  }
  work_cv_.notify_one();
  return index;
}

void ExperimentPool::collect() {
  std::exception_ptr first_error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return completed_ == tasks_.size(); });
    for (const std::exception_ptr& e : errors_) {
      if (e) {
        first_error = e;
        break;
      }
    }
    tasks_.clear();
    errors_.clear();
    next_ = 0;
    completed_ = 0;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ExperimentPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || next_ < tasks_.size(); });
    if (stop_) return;
    const std::size_t index = next_++;
    // The task reference stays valid while unlocked: tasks_ only grows
    // during a batch and collect() clears it only after completed_ catches
    // up — but submit() may reallocate the vector, so take a copy.
    std::function<void()> task = tasks_[index];
    lock.unlock();
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error) errors_[index] = error;
    ++completed_;
    if (completed_ == tasks_.size()) done_cv_.notify_all();
  }
}

}  // namespace ba::parallel
