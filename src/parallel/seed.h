#pragma once

// Per-task seed derivation for parallel experiment grids.
//
// A campaign that randomizes per grid point (adversary schedules, proposal
// vectors, random validity tables) must derive each point's seed from the
// point's INDEX, never from the order in which a thread pool happens to run
// the points — otherwise "parallel == serial" breaks silently. We derive
// seeds with SipHash-2-4 keyed off the campaign's master seed, which also
// gives collision-freeness in practice across grids far larger than
// anything we run (tested to 1e5 tasks in tests/parallel/).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ba::parallel {

/// The seed for task `task_index` of a campaign keyed by `master_seed`.
/// A pure function of its two arguments: independent of worker count,
/// scheduling order, and everything else.
std::uint64_t derive_task_seed(std::uint64_t master_seed,
                               std::uint64_t task_index);

/// Seeds for tasks 0..count-1, in index order.
std::vector<std::uint64_t> derive_task_seeds(std::uint64_t master_seed,
                                             std::size_t count);

}  // namespace ba::parallel
