#pragma once

// Per-task seed derivation for parallel experiment grids.
//
// A campaign that randomizes per grid point (adversary schedules, proposal
// vectors, random validity tables) must derive each point's seed from the
// point's INDEX, never from the order in which a thread pool happens to run
// the points — otherwise "parallel == serial" breaks silently. We derive
// seeds with SipHash-2-4 keyed off the campaign's master seed, which also
// gives collision-freeness in practice across grids far larger than
// anything we run (tested to 1e5 tasks in tests/parallel/).
//
// Two derivation paths produce bit-identical seeds (pinned by
// tests/parallel/seed_block_test.cpp):
//   * `derive_task_seed`       — the reference: one keyed one-shot hash per
//     index;
//   * `derive_task_seed_block` — the batch path used by the campaign
//     service's shard workers and `derive_task_seeds`: the SipKey and the
//     keyed hasher's initial state are derived ONCE per index block, and
//     each index extends a copy of that shared prefix state. For a block of
//     k seeds this does one key derivation instead of k, and no per-task
//     hasher setup.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ba::parallel {

/// The seed for task `task_index` of a campaign keyed by `master_seed`.
/// A pure function of its two arguments: independent of worker count,
/// scheduling order, and everything else.
std::uint64_t derive_task_seed(std::uint64_t master_seed,
                               std::uint64_t task_index);

/// Batch derivation: fills `out[i]` with the seed for task `first + i`,
/// deriving the keyed stream once for the whole block. Bit-identical to
/// calling `derive_task_seed(master_seed, first + i)` per slot.
void derive_task_seed_block(std::uint64_t master_seed, std::uint64_t first,
                            std::span<std::uint64_t> out);

/// Seeds for tasks 0..count-1, in index order (batch path).
std::vector<std::uint64_t> derive_task_seeds(std::uint64_t master_seed,
                                             std::size_t count);

}  // namespace ba::parallel
