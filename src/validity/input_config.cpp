#include "validity/input_config.h"

#include <algorithm>

namespace ba::validity {

InputConfig InputConfig::full(std::vector<Value> proposals) {
  std::vector<std::optional<Value>> slots;
  slots.reserve(proposals.size());
  for (Value& v : proposals) slots.emplace_back(std::move(v));
  return InputConfig{std::move(slots)};
}

InputConfig InputConfig::uniform(std::uint32_t n, const Value& v) {
  return full(std::vector<Value>(n, v));
}

ProcessSet InputConfig::correct() const {
  ProcessSet s;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].has_value()) s.insert(static_cast<ProcessId>(i));
  }
  return s;
}

std::size_t InputConfig::num_correct() const {
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const auto& s) { return s.has_value(); }));
}

bool InputConfig::contains(const InputConfig& other) const {
  if (n() != other.n()) return false;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!other.slots_[i].has_value()) continue;
    if (!slots_[i].has_value() || *slots_[i] != *other.slots_[i]) return false;
  }
  return true;
}

InputConfig InputConfig::restrict_to(const ProcessSet& keep) const {
  InputConfig out = *this;
  for (std::size_t i = 0; i < out.slots_.size(); ++i) {
    if (!keep.contains(static_cast<ProcessId>(i))) out.slots_[i].reset();
  }
  return out;
}

std::optional<Value> InputConfig::uniform_value() const {
  std::optional<Value> seen;
  for (const auto& s : slots_) {
    if (!s.has_value()) continue;
    if (!seen) {
      seen = s;
    } else if (*seen != *s) {
      return std::nullopt;
    }
  }
  return seen;
}

Value InputConfig::to_value() const {
  ValueVec out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) {
    if (s.has_value()) {
      out.push_back(Value{ValueVec{Value{"c"}, *s}});
    } else {
      out.push_back(Value{ValueVec{Value{"f"}}});
    }
  }
  return Value{std::move(out)};
}

std::optional<InputConfig> InputConfig::from_value(const Value& v) {
  if (!v.is_vec()) return std::nullopt;
  std::vector<std::optional<Value>> slots;
  slots.reserve(v.as_vec().size());
  for (const Value& e : v.as_vec()) {
    if (!e.is_vec() || e.as_vec().empty() || !e.as_vec()[0].is_str()) {
      return std::nullopt;
    }
    const std::string& tag = e.as_vec()[0].as_str();
    if (tag == "c" && e.as_vec().size() == 2) {
      slots.emplace_back(e.as_vec()[1]);
    } else if (tag == "f" && e.as_vec().size() == 1) {
      slots.emplace_back(std::nullopt);
    } else {
      return std::nullopt;
    }
  }
  return InputConfig{std::move(slots)};
}

bool operator<(const InputConfig& a, const InputConfig& b) {
  return a.to_value() < b.to_value();
}

bool for_each_contained(const InputConfig& c, std::uint32_t t,
                        const std::function<bool(const InputConfig&)>& fn) {
  const ProcessSet correct = c.correct();
  const std::size_t x = correct.size();
  const std::size_t n = c.n();
  if (n < static_cast<std::size_t>(t)) return true;
  const std::size_t min_keep = n - t;
  if (x < min_keep) return true;  // c itself is malformed; nothing contained
  const std::size_t max_drop = x - min_keep;

  // Enumerate subsets of pi(c) to drop, of size 0..max_drop.
  const std::vector<ProcessId>& ids = correct.ids();
  std::vector<std::size_t> chosen;  // indices into ids to drop

  std::function<bool(std::size_t, std::size_t)> rec =
      [&](std::size_t start, std::size_t remaining) -> bool {
    if (remaining == 0) {
      ProcessSet keep = correct;
      for (std::size_t idx : chosen) keep.erase(ids[idx]);
      return fn(c.restrict_to(keep));
    }
    for (std::size_t i = start; i + remaining <= ids.size(); ++i) {
      chosen.push_back(i);
      const bool cont = rec(i + 1, remaining - 1);
      chosen.pop_back();
      if (!cont) return false;
    }
    return true;
  };

  for (std::size_t drop = 0; drop <= max_drop; ++drop) {
    if (!rec(0, drop)) return false;
  }
  return true;
}

bool for_each_input_config(std::uint32_t n, std::uint32_t t,
                           const std::vector<Value>& input_domain,
                           const std::function<bool(const InputConfig&)>& fn) {
  // Choose the correct set (size >= n - t), then assign proposals.
  std::vector<std::optional<Value>> slots(n);

  std::function<bool(std::uint32_t, std::uint32_t)> assign =
      [&](std::uint32_t i, std::uint32_t correct_left) -> bool {
    if (i == n) {
      return correct_left == 0 ? fn(InputConfig{slots}) : true;
    }
    const std::uint32_t remaining = n - i;
    // Option 1: process i faulty (only if enough slots remain).
    if (remaining > correct_left) {
      slots[i].reset();
      if (!assign(i + 1, correct_left)) return false;
    }
    // Option 2: process i correct with each possible proposal.
    if (correct_left > 0) {
      for (const Value& v : input_domain) {
        slots[i] = v;
        if (!assign(i + 1, correct_left - 1)) return false;
      }
      slots[i].reset();
    }
    return true;
  };

  for (std::uint32_t x = n - t; x <= n; ++x) {
    if (!assign(0, x)) return false;
  }
  return true;
}

std::uint64_t count_input_configs(std::uint32_t n, std::uint32_t t,
                                  std::size_t domain_size) {
  auto binom = [](std::uint64_t a, std::uint64_t b) {
    if (b > a) return std::uint64_t{0};
    std::uint64_t r = 1;
    for (std::uint64_t i = 0; i < b; ++i) r = r * (a - i) / (i + 1);
    return r;
  };
  std::uint64_t total = 0;
  for (std::uint32_t x = n - t; x <= n; ++x) {
    std::uint64_t pw = 1;
    for (std::uint32_t i = 0; i < x; ++i) pw *= domain_size;
    total += binom(n, x) * pw;
  }
  return total;
}

}  // namespace ba::validity
