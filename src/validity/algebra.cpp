#include "validity/algebra.h"

namespace ba::validity {

bool is_weaker_equal(const ValidityProperty& weaker,
                     const ValidityProperty& stronger, std::uint32_t n,
                     std::uint32_t t) {
  bool holds = true;
  for_each_input_config(n, t, stronger.input_domain,
                        [&](const InputConfig& c) {
                          for (const Value& v : stronger.output_domain) {
                            if (stronger.admissible(c, v) &&
                                !weaker.admissible(c, v)) {
                              holds = false;
                              return false;
                            }
                          }
                          return true;
                        });
  return holds;
}

ValidityProperty conjunction(const ValidityProperty& a,
                             const ValidityProperty& b) {
  ValidityProperty out;
  out.name = a.name + " AND " + b.name;
  out.input_domain = a.input_domain;
  out.output_domain = a.output_domain;
  out.admissible = [fa = a.admissible, fb = b.admissible](
                       const InputConfig& c, const Value& v) {
    return fa(c, v) && fb(c, v);
  };
  return out;
}

bool has_empty_admissible_set(const ValidityProperty& val, std::uint32_t n,
                              std::uint32_t t, InputConfig* witness) {
  bool empty_found = false;
  for_each_input_config(n, t, val.input_domain, [&](const InputConfig& c) {
    for (const Value& v : val.output_domain) {
      if (val.admissible(c, v)) return true;  // non-empty, keep going
    }
    empty_found = true;
    if (witness) *witness = c;
    return false;
  });
  return empty_found;
}

}  // namespace ba::validity
