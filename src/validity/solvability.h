#pragma once

// §5: the containment condition (Definition 3) and the general solvability
// theorem (Theorem 4).
//
//   * A problem is trivial iff some decision is admissible for every input
//     configuration.
//   * Γ(c) must pick a value admissible for all of Cnt(c) (Lemma 7 says any
//     solving algorithm implicitly computes such a value).
//   * Theorem 4: non-trivial P is authenticated-solvable iff CC holds, and
//     unauthenticated-solvable iff CC holds and n > 3t.
//
// Everything here is exact enumeration over the finite domains of the
// property — Turing-computability made literal.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "validity/property.h"

namespace ba::validity {

/// The intersection over the containment set (Lemma 7's right-hand side):
/// all v in V_O admissible for every c' in Cnt(c).
std::vector<Value> containment_intersection(const ValidityProperty& val,
                                            std::uint32_t t,
                                            const InputConfig& c);

/// Γ(c) by enumeration: the first member of the containment intersection, or
/// nullopt when it is empty (CC fails at c).
std::optional<Value> gamma(const ValidityProperty& val, std::uint32_t t,
                           const InputConfig& c);

/// Triviality: exists v' admissible for every c in I.
bool is_trivial(const ValidityProperty& val, std::uint32_t n, std::uint32_t t);

/// The containment condition: Γ(c) exists for every c in I. When it fails,
/// `witness` (if non-null) receives a configuration with empty intersection.
bool satisfies_cc(const ValidityProperty& val, std::uint32_t n,
                  std::uint32_t t, InputConfig* witness = nullptr);

struct SolvabilityVerdict {
  bool trivial{false};
  bool cc{false};
  bool authenticated_solvable{false};
  bool unauthenticated_solvable{false};
  /// A configuration where CC fails, when it does.
  std::optional<InputConfig> cc_witness;

  [[nodiscard]] std::string summary() const;
};

/// Theorem 4, plus the convention that trivial problems are solvable with
/// zero messages in both settings.
SolvabilityVerdict solvability(const ValidityProperty& val, std::uint32_t n,
                               std::uint32_t t);

}  // namespace ba::validity
