#pragma once

// An algebra over validity properties, formalizing the "landscape" talk of
// §4.2: which problems are weaker/stronger than which, and how properties
// compose.
//
//   * `is_weaker_equal(a, b)`: problem a is weaker than (or equal to) b iff
//     a admits every decision b admits at every configuration —
//     val_a(c) ⊇ val_b(c) for all c. Any solver of b then solves a verbatim
//     (no reduction needed). The paper's headline structural claim — weak
//     consensus is the WEAKEST non-trivial problem — is about the reduction
//     order (Algorithm 1), which is coarser than this pointwise order; both
//     are exposed here.
//   * `conjunction(a, b)`: admissible iff admissible under both (the
//     intersection problem); may fail the non-emptiness requirement, which
//     `has_empty_admissible_set` reports.
//   * `reduction_exists(problem, params, solver)`: the operational order of
//     §4.2 — Algorithm 1 parameters are derivable from this solver, i.e.
//     weak consensus reduces to the problem at zero cost.

#include <optional>

#include "runtime/process.h"
#include "validity/property.h"

namespace ba::validity {

/// Pointwise order: every decision admissible under `stronger` is admissible
/// under `weaker`, at every input configuration (enumerated exactly).
/// Requires identical input/output domains.
bool is_weaker_equal(const ValidityProperty& weaker,
                     const ValidityProperty& stronger, std::uint32_t n,
                     std::uint32_t t);

/// The intersection problem: val(c) = val_a(c) ∩ val_b(c).
/// Input/output domains must match.
ValidityProperty conjunction(const ValidityProperty& a,
                             const ValidityProperty& b);

/// True iff some configuration has an empty admissible set (making the
/// property malformed as a validity property — val must map to non-empty
/// sets).
bool has_empty_admissible_set(const ValidityProperty& val, std::uint32_t n,
                              std::uint32_t t,
                              InputConfig* witness = nullptr);

}  // namespace ba::validity
