#include "validity/properties.h"

#include <map>

namespace ba::validity {
namespace {

/// Count of slots in c equal to v.
std::size_t count_of(const InputConfig& c, const Value& v) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < c.n(); ++i) {
    if (c[i].has_value() && *c[i] == v) ++k;
  }
  return k;
}

}  // namespace

std::vector<Value> binary_domain() { return {Value::bit(0), Value::bit(1)}; }

std::vector<Value> int_domain(std::size_t k) {
  std::vector<Value> d;
  d.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    d.emplace_back(static_cast<std::int64_t>(i));
  }
  return d;
}

ValidityProperty weak_validity(std::uint32_t n, std::uint32_t /*t*/,
                               std::vector<Value> domain) {
  ValidityProperty p;
  p.name = "weak-validity";
  p.input_domain = domain;
  p.output_domain = domain;
  p.admissible = [n](const InputConfig& c, const Value& v) {
    if (c.num_correct() == n) {
      if (auto u = c.uniform_value()) return v == *u;
    }
    return true;
  };
  p.gamma_fast = [n, domain](const InputConfig& c) -> std::optional<Value> {
    // Only the full uniform configuration constrains anything, and Cnt(c)
    // contains a full configuration only if c is full (containment cannot
    // add processes).
    if (c.num_correct() == n) {
      if (auto u = c.uniform_value()) return *u;
    }
    return domain.front();
  };
  return p;
}

ValidityProperty strong_validity(std::uint32_t n, std::uint32_t t,
                                 std::vector<Value> domain) {
  ValidityProperty p;
  p.name = "strong-validity";
  p.input_domain = domain;
  p.output_domain = domain;
  p.admissible = [](const InputConfig& c, const Value& v) {
    if (auto u = c.uniform_value()) return v == *u;
    return true;
  };
  p.gamma_fast = [n, t, domain](const InputConfig& c) -> std::optional<Value> {
    // A contained configuration is uniform in w iff c holds >= n - t slots
    // equal to w. Each such w is forced; two distinct forced values make the
    // intersection empty.
    std::optional<Value> forced;
    for (const Value& w : domain) {
      if (count_of(c, w) >= n - t) {
        if (forced && *forced != w) return std::nullopt;
        forced = w;
      }
    }
    return forced ? *forced : domain.front();
  };
  return p;
}

ValidityProperty sender_validity(std::uint32_t n, std::uint32_t t,
                                 ProcessId sender, std::vector<Value> domain) {
  ValidityProperty p;
  p.name = "sender-validity(p" + std::to_string(sender) + ")";
  p.input_domain = domain;
  // Decisions: a proposal value, or bottom (the "sender exposed" symbol).
  p.output_domain = domain;
  p.output_domain.push_back(Value::null());
  p.admissible = [sender](const InputConfig& c, const Value& v) {
    if (c[sender].has_value()) return v == *c[sender];
    return true;
  };
  p.gamma_fast = [sender](const InputConfig& c) -> std::optional<Value> {
    // Configurations containing the sender all force the sender's value;
    // configurations without it allow anything — so the sender's value (or
    // bottom when the sender is faulty) always works.
    if (c[sender].has_value()) return *c[sender];
    return Value::null();
  };
  (void)n;
  (void)t;
  return p;
}

ValidityProperty ic_validity(std::uint32_t n, std::uint32_t t,
                             std::vector<Value> domain) {
  ValidityProperty p;
  p.name = "ic-validity";
  p.input_domain = domain;
  // V_O = I_n, encoded the way the IC protocols decide: a plain vector of n
  // values. (Faulty components may carry anything; only the correct slots
  // are constrained by IC-Validity.) For enumeration purposes the output
  // domain lists all domain^n vectors.
  std::vector<Value> outs;
  std::vector<Value> current(n, domain.front());
  std::function<void(std::uint32_t)> gen = [&](std::uint32_t i) {
    if (i == n) {
      outs.emplace_back(ValueVec(current.begin(), current.end()));
      return;
    }
    for (const Value& v : domain) {
      current[i] = v;
      gen(i + 1);
    }
  };
  gen(0);
  p.output_domain = std::move(outs);
  p.admissible = [n](const InputConfig& c, const Value& v) {
    // IC-Validity: a vector of n entries matching c on every correct slot.
    if (!v.is_vec() || v.as_vec().size() != n) return false;
    for (std::size_t i = 0; i < n; ++i) {
      if (c[i].has_value() && v.as_vec()[i] != *c[i]) return false;
    }
    return true;
  };
  p.gamma_fast = [n, domain](const InputConfig& c) -> std::optional<Value> {
    // Any full extension of c contains every configuration c contains.
    ValueVec ext(n, domain.front());
    for (std::size_t i = 0; i < n; ++i) {
      if (c[i].has_value()) ext[i] = *c[i];
    }
    return Value{std::move(ext)};
  };
  (void)t;
  return p;
}

ValidityProperty any_proposed_validity(std::uint32_t n, std::uint32_t t,
                                       std::vector<Value> domain) {
  ValidityProperty p;
  p.name = "any-proposed-validity";
  p.input_domain = domain;
  p.output_domain = domain;
  p.admissible = [](const InputConfig& c, const Value& v) {
    return count_of(c, v) > 0;
  };
  p.gamma_fast = [n, t, domain](const InputConfig& c) -> std::optional<Value> {
    // Γ(c) must be present in every contained configuration, i.e. survive
    // dropping any |pi(c)| - (n - t) slots: count(w) must exceed that.
    const std::size_t max_drop = c.num_correct() - (n - t);
    for (const Value& w : domain) {
      if (count_of(c, w) > max_drop) return w;
    }
    return std::nullopt;
  };
  return p;
}

ValidityProperty constant_validity(std::uint32_t n, std::uint32_t t,
                                   std::vector<Value> domain) {
  ValidityProperty p;
  p.name = "constant-validity";
  p.input_domain = domain;
  p.output_domain = domain;
  p.admissible = [](const InputConfig&, const Value&) { return true; };
  p.gamma_fast = [domain](const InputConfig&) -> std::optional<Value> {
    return domain.front();
  };
  (void)n;
  (void)t;
  return p;
}

}  // namespace ba::validity
