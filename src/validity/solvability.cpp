#include "validity/solvability.h"

#include <sstream>

namespace ba::validity {

std::vector<Value> containment_intersection(const ValidityProperty& val,
                                            std::uint32_t t,
                                            const InputConfig& c) {
  std::vector<Value> alive = val.output_domain;
  for_each_contained(c, t, [&](const InputConfig& contained) {
    std::erase_if(alive, [&](const Value& v) {
      return !val.admissible(contained, v);
    });
    return !alive.empty();  // stop early once empty
  });
  return alive;
}

std::optional<Value> gamma(const ValidityProperty& val, std::uint32_t t,
                           const InputConfig& c) {
  std::vector<Value> inter = containment_intersection(val, t, c);
  if (inter.empty()) return std::nullopt;
  return inter.front();
}

bool is_trivial(const ValidityProperty& val, std::uint32_t n,
                std::uint32_t t) {
  for (const Value& v : val.output_domain) {
    bool always = true;
    for_each_input_config(n, t, val.input_domain, [&](const InputConfig& c) {
      if (!val.admissible(c, v)) {
        always = false;
        return false;
      }
      return true;
    });
    if (always) return true;
  }
  return false;
}

bool satisfies_cc(const ValidityProperty& val, std::uint32_t n,
                  std::uint32_t t, InputConfig* witness) {
  bool ok = true;
  for_each_input_config(n, t, val.input_domain, [&](const InputConfig& c) {
    if (!gamma(val, t, c).has_value()) {
      ok = false;
      if (witness) *witness = c;
      return false;
    }
    return true;
  });
  return ok;
}

std::string SolvabilityVerdict::summary() const {
  std::ostringstream os;
  os << (trivial ? "trivial" : "non-trivial") << ", CC "
     << (cc ? "holds" : "fails") << ", authenticated: "
     << (authenticated_solvable ? "solvable" : "UNSOLVABLE")
     << ", unauthenticated: "
     << (unauthenticated_solvable ? "solvable" : "UNSOLVABLE");
  return os.str();
}

SolvabilityVerdict solvability(const ValidityProperty& val, std::uint32_t n,
                               std::uint32_t t) {
  SolvabilityVerdict v;
  v.trivial = is_trivial(val, n, t);
  InputConfig witness;
  v.cc = satisfies_cc(val, n, t, &witness);
  if (!v.cc) v.cc_witness = witness;
  if (v.trivial) {
    // Decide the always-admissible value with zero communication.
    v.authenticated_solvable = true;
    v.unauthenticated_solvable = true;
  } else {
    v.authenticated_solvable = v.cc;                 // Theorem 4(a)
    v.unauthenticated_solvable = v.cc && n > 3 * t;  // Theorem 4(b)
  }
  return v;
}

}  // namespace ba::validity
