#pragma once

// Canned validity properties — the agreement-problem zoo of the paper's
// introduction, each expressed in the §4.1 formalism:
//
//   * Weak Validity        (weak consensus [28, 37, 79, 101])
//   * Strong Validity      (strong consensus [37, 45, 78])
//   * Sender Validity      (Byzantine broadcast [11, 88, 96, 98])
//   * IC-Validity          (interactive consistency [18, 54, 78])
//   * Any-Proposed Validity (decide a value some correct process proposed)
//   * Constant Validity    (every value always admissible — the trivial one)
//
// Each ships a closed-form Γ (gamma_fast) which tests cross-check against
// the generic enumerator in validity/solvability.h.

#include <cstdint>

#include "validity/property.h"

namespace ba::validity {

/// {0, 1} as Values.
std::vector<Value> binary_domain();
/// {0, 1, ..., k-1} as Values.
std::vector<Value> int_domain(std::size_t k);

ValidityProperty weak_validity(std::uint32_t n, std::uint32_t t,
                               std::vector<Value> domain = binary_domain());

ValidityProperty strong_validity(std::uint32_t n, std::uint32_t t,
                                 std::vector<Value> domain = binary_domain());

ValidityProperty sender_validity(std::uint32_t n, std::uint32_t t,
                                 ProcessId sender,
                                 std::vector<Value> domain = binary_domain());

/// V_O = I_n (full input configurations, encoded via InputConfig::to_value).
ValidityProperty ic_validity(std::uint32_t n, std::uint32_t t,
                             std::vector<Value> domain = binary_domain());

/// The decided value must have been proposed by a correct process.
ValidityProperty any_proposed_validity(
    std::uint32_t n, std::uint32_t t,
    std::vector<Value> domain = binary_domain());

/// Trivial: everything is always admissible.
ValidityProperty constant_validity(std::uint32_t n, std::uint32_t t,
                                   std::vector<Value> domain = binary_domain());

}  // namespace ba::validity
