#pragma once

// Validity properties (§4.1): val : I -> 2^{V_O} \ {∅}. A property is
// represented by finite proposal/decision domains plus an admissibility
// predicate; finiteness makes triviality, the containment condition and Γ
// Turing-computable by enumeration (Definition 3 only requires
// computability — the canned properties also ship closed-form Γs, which the
// tests cross-check against the enumerator).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runtime/value.h"
#include "validity/input_config.h"

namespace ba::validity {

struct ValidityProperty {
  std::string name;
  /// V_I: the finite proposal domain experiments run over.
  std::vector<Value> input_domain;
  /// V_O: the finite decision domain.
  std::vector<Value> output_domain;
  /// v' in val(c)?
  std::function<bool(const InputConfig& c, const Value& v)> admissible;

  /// Optional closed-form Γ (fast path); must agree with the enumerated one.
  std::function<std::optional<Value>(const InputConfig& c)> gamma_fast;

  [[nodiscard]] std::vector<Value> admissible_set(const InputConfig& c) const {
    std::vector<Value> out;
    for (const Value& v : output_domain) {
      if (admissible(c, v)) out.push_back(v);
    }
    return out;
  }
};

}  // namespace ba::validity
