#pragma once

// Input configurations (§4.1): an assignment of proposals to the correct
// processes. A configuration over a system of n processes with at most t
// faults has x slots filled, n - t <= x <= n; an empty slot (nullopt) means
// the process is faulty in the corresponding executions.

#include <functional>
#include <optional>
#include <vector>

#include "runtime/types.h"
#include "runtime/value.h"

namespace ba::validity {

class InputConfig {
 public:
  InputConfig() = default;
  explicit InputConfig(std::vector<std::optional<Value>> slots)
      : slots_(std::move(slots)) {}

  /// A configuration with all n processes correct (c in I_n).
  static InputConfig full(std::vector<Value> proposals);
  /// All n processes correct, all proposing `v`.
  static InputConfig uniform(std::uint32_t n, const Value& v);

  [[nodiscard]] std::size_t n() const { return slots_.size(); }
  [[nodiscard]] const std::optional<Value>& operator[](std::size_t i) const {
    return slots_[i];
  }
  [[nodiscard]] std::optional<Value>& operator[](std::size_t i) {
    return slots_[i];
  }

  /// pi(c): the set of correct processes.
  [[nodiscard]] ProcessSet correct() const;
  [[nodiscard]] std::size_t num_correct() const;
  [[nodiscard]] bool is_full() const { return num_correct() == n(); }

  /// The containment relation: *this ⊒ other iff pi(other) ⊆ pi(*this) and
  /// proposals coincide on pi(other).
  [[nodiscard]] bool contains(const InputConfig& other) const;

  /// Restriction of this configuration to the processes in `keep`
  /// (slots outside `keep` become empty).
  [[nodiscard]] InputConfig restrict_to(const ProcessSet& keep) const;

  /// Do all filled slots hold the same value? Returns it if so and the
  /// configuration is non-empty.
  [[nodiscard]] std::optional<Value> uniform_value() const;

  /// Encodes as a Value (vector of ["c", v] / ["f"] slots) — used when a
  /// decision *is* an input configuration (interactive consistency).
  [[nodiscard]] Value to_value() const;
  static std::optional<InputConfig> from_value(const Value& v);

  friend bool operator==(const InputConfig&, const InputConfig&) = default;
  /// Lexicographic order so configurations can key ordered containers.
  friend bool operator<(const InputConfig& a, const InputConfig& b);

 private:
  std::vector<std::optional<Value>> slots_;
};

/// Enumerates Cnt(c) = { c' | c ⊒ c' , |pi(c')| >= n - t }, invoking `fn` on
/// each (including c itself). Stops early if `fn` returns false. Returns
/// false iff stopped early.
bool for_each_contained(const InputConfig& c, std::uint32_t t,
                        const std::function<bool(const InputConfig&)>& fn);

/// Enumerates every input configuration in I over the finite proposal domain
/// `input_domain` for an (n, t) system. Stops early if `fn` returns false.
bool for_each_input_config(std::uint32_t n, std::uint32_t t,
                           const std::vector<Value>& input_domain,
                           const std::function<bool(const InputConfig&)>& fn);

/// |I| for the given parameters (to size experiments).
std::uint64_t count_input_configs(std::uint32_t n, std::uint32_t t,
                                  std::size_t domain_size);

}  // namespace ba::validity
