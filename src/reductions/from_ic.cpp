#include "reductions/from_ic.h"

#include <algorithm>
#include <utility>

#include "protocols/adapters.h"
#include "validity/solvability.h"

namespace ba::reductions {

ProtocolFactory agreement_from_ic(validity::ValidityProperty problem,
                                  SystemParams params, ProtocolFactory ic) {
  auto decision_map = [problem = std::move(problem),
                       params](const Value& ic_decision) -> Value {
    // The IC protocols decide a plain vector of n values; coerce it into a
    // full input configuration over the problem's domain (exposed senders'
    // bottom components map to the first domain value — any filling of the
    // faulty slots is sound because vec ⊒ c is preserved on correct slots).
    std::vector<Value> entries(params.n, problem.input_domain.front());
    if (ic_decision.is_vec() && ic_decision.as_vec().size() == params.n) {
      for (std::uint32_t i = 0; i < params.n; ++i) {
        const Value& e = ic_decision.as_vec()[i];
        if (std::find(problem.input_domain.begin(),
                      problem.input_domain.end(),
                      e) != problem.input_domain.end()) {
          entries[i] = e;
        }
      }
    }
    const auto vec = validity::InputConfig::full(entries);
    if (problem.gamma_fast) {
      if (auto g = problem.gamma_fast(vec)) return *g;
    }
    if (auto g = validity::gamma(problem, params.t, vec)) return *g;
    // CC was a precondition; fall back to a fixed value so the reduction
    // stays deterministic even when misused.
    return problem.output_domain.front();
  };
  return protocols::map_protocol(std::move(ic), /*proposal_map=*/nullptr,
                                 decision_map);
}

}  // namespace ba::reductions
