#pragma once

// Classical cross-problem reductions ([17, 82], §6) used as cross-checks and
// baselines:
//  * weak consensus from strong consensus (Strong Validity ⇒ Weak Validity);
//  * strong consensus (binary) from Byzantine broadcast: broadcast p_0's
//    value... — NOT valid in general; the honest reduction is via n
//    broadcasts (majority), provided here;
//  * Corollary 1: weak consensus from an External-Validity agreement
//    algorithm that has two fault-free executions deciding differently.

#include <memory>

#include "crypto/signature.h"
#include "runtime/process.h"

namespace ba::reductions {

/// Strong Validity implies Weak Validity, so any strong-consensus protocol
/// already solves weak consensus (identity wrapper, zero extra messages).
ProtocolFactory weak_from_strong(ProtocolFactory strong);

/// Binary strong consensus from n parallel broadcast instances: every
/// process broadcasts its bit; decide the majority of delivered bits
/// (bottoms count as 0). Honest majority of broadcasts carries Strong
/// Validity. `make_broadcast(sender)` builds one instance.
ProtocolFactory strong_from_broadcasts(
    std::function<ProtocolFactory(ProcessId sender)> make_broadcast);

/// Corollary 1 (§4.3): a weak-consensus protocol built from an
/// External-Validity agreement algorithm with two fault-free executions
/// deciding differently. `proposal0`/`proposal1` are the unanimous proposals
/// of those executions; `decision0` is the value decided when everyone
/// proposes `proposal0`.
ProtocolFactory weak_from_external_validity(ProtocolFactory external,
                                            Value proposal0, Value proposal1,
                                            Value decision0);

}  // namespace ba::reductions
