#include "reductions/weak_from_any.h"

#include <utility>

#include "protocols/adapters.h"
#include "runtime/sync_system.h"
#include "validity/solvability.h"

namespace ba::reductions {
namespace {

std::optional<Value> run_full_config(const SystemParams& params,
                                     const ProtocolFactory& solver,
                                     const validity::InputConfig& c,
                                     Round max_rounds) {
  std::vector<Value> proposals(params.n);
  for (ProcessId p = 0; p < params.n; ++p) proposals[p] = *c[p];
  RunOptions opts;
  opts.max_rounds = max_rounds;
  RunResult res = run_execution(params, solver, proposals, Adversary::none(),
                                opts);
  return res.unanimous_correct_decision();
}

}  // namespace

std::optional<ReductionParams> derive_reduction_params(
    const validity::ValidityProperty& problem, const SystemParams& params,
    const ProtocolFactory& solver, std::string* error, Round max_rounds) {
  auto fail = [&](const std::string& why) -> std::optional<ReductionParams> {
    if (error) *error = why;
    return std::nullopt;
  };

  ReductionParams out;
  // c_0: the full configuration where everyone proposes the first domain
  // value; E_0 determines v'_0.
  out.c0 = validity::InputConfig::uniform(params.n,
                                          problem.input_domain.front());
  auto v0 = run_full_config(params, solver, out.c0, max_rounds);
  if (!v0) return fail("solver undecided or disagreeing in E_0");
  out.v0 = *v0;

  // c_1*: any configuration for which v'_0 is inadmissible; exists iff the
  // problem is non-trivial *at* v'_0 (if v'_0 is always admissible the
  // problem may still be non-trivial elsewhere, but then A itself would be
  // exploiting triviality of v'_0 — flag it).
  bool found = false;
  validity::for_each_input_config(
      params.n, params.t, problem.input_domain,
      [&](const validity::InputConfig& c) {
        if (!problem.admissible(c, out.v0)) {
          out.c1_star = c;
          found = true;
          return false;
        }
        return true;
      });
  if (!found) {
    return fail("v'_0 is admissible everywhere (problem trivial at v'_0)");
  }

  // c_1: a full extension of c_1* (containment is reflexive, so filling the
  // empty slots with anything works; we use the first domain value).
  out.c1 = out.c1_star;
  for (std::size_t i = 0; i < out.c1.n(); ++i) {
    if (!out.c1[i].has_value()) out.c1[i] = problem.input_domain.front();
  }

  // Sanity (Lemma 17): E_1 decides v'_1 != v'_0.
  auto v1 = run_full_config(params, solver, out.c1, max_rounds);
  if (!v1) return fail("solver undecided or disagreeing in E_1");
  if (*v1 == out.v0) {
    return fail(
        "solver decided v'_0 in E_1 although v'_0 is inadmissible for the "
        "contained c_1* (Lemma 7 violation — solver does not solve the "
        "problem)");
  }
  return out;
}

ProtocolFactory weak_consensus_from_any(ProtocolFactory solver,
                                        ReductionParams params) {
  auto proposal_map = [params](ProcessId self, const Value& b) -> Value {
    const int bit = b.try_bit().value_or(1);
    const validity::InputConfig& c = (bit == 0) ? params.c0 : params.c1;
    return *c[self];
  };
  auto decision_map = [v0 = params.v0](const Value& d) -> Value {
    return Value::bit(d == v0 ? 0 : 1);
  };
  return protocols::map_protocol(std::move(solver), proposal_map,
                                 decision_map);
}

}  // namespace ba::reductions
