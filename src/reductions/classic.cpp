#include "reductions/classic.h"

#include <utility>

#include "protocols/adapters.h"
#include "protocols/parallel.h"

namespace ba::reductions {

ProtocolFactory weak_from_strong(ProtocolFactory strong) {
  return protocols::map_protocol(std::move(strong), nullptr, nullptr);
}

ProtocolFactory strong_from_broadcasts(
    std::function<ProtocolFactory(ProcessId sender)> make_broadcast) {
  return [make_broadcast =
              std::move(make_broadcast)](const ProcessContext& ctx) {
    const std::uint32_t n = ctx.params.n;
    return protocols::parallel_composition(
        n,
        [make_broadcast](std::size_t instance, const ProcessContext& inner) {
          return make_broadcast(static_cast<ProcessId>(instance))(inner);
        },
        [](const std::vector<Value>& decisions) {
          std::size_t ones = 0;
          for (const Value& d : decisions) {
            if (d.try_bit().value_or(0) == 1) ++ones;
          }
          return Value::bit(2 * ones > decisions.size() ? 1 : 0);
        })(ctx);
  };
}

ProtocolFactory weak_from_external_validity(ProtocolFactory external,
                                            Value proposal0, Value proposal1,
                                            Value decision0) {
  auto proposal_map = [proposal0 = std::move(proposal0),
                       proposal1 = std::move(proposal1)](
                          ProcessId, const Value& b) -> Value {
    return b.try_bit().value_or(1) == 0 ? proposal0 : proposal1;
  };
  auto decision_map = [decision0 = std::move(decision0)](const Value& d) {
    return Value::bit(d == decision0 ? 0 : 1);
  };
  return protocols::map_protocol(std::move(external), proposal_map,
                                 decision_map);
}

}  // namespace ba::reductions
