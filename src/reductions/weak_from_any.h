#pragma once

// Algorithm 1 (§4.2): the zero-message reduction from weak consensus to ANY
// solvable non-trivial agreement problem P. This is the reduction that
// generalizes the Omega(t^2) bound from weak consensus to everything.
//
// Construction (Table 2):
//   c_0  — any full input configuration; E_0 the fault-free execution of the
//          solving algorithm A with proposals c_0; v'_0 its decision.
//   c_1* — a configuration with v'_0 not admissible (exists: P non-trivial).
//   c_1  — a full extension of c_1*; E_1 decides v'_1 != v'_0 (Lemma 7).
// The reduction: propose 0 -> feed proposal(c_0[i]) into A; propose 1 -> feed
// proposal(c_1[i]). Decide 0 iff A decided v'_0. Zero additional messages
// (Lemma 18).

#include <optional>
#include <string>

#include "runtime/process.h"
#include "validity/property.h"

namespace ba::reductions {

struct ReductionParams {
  validity::InputConfig c0;
  validity::InputConfig c1;
  Value v0;  // the decision of the fault-free execution on c0

  /// For reporting: the witness configuration c_1* with v0 inadmissible.
  validity::InputConfig c1_star;
};

/// Derives the Table 2 parameters for `problem` solved by `solver`, by
/// actually running the two fault-free executions (E_0 and E_1). Returns
/// nullopt if the problem is trivial (no c_1* exists) or the solver
/// misbehaves (undecided / decides inadmissibly), with `error` explaining.
std::optional<ReductionParams> derive_reduction_params(
    const validity::ValidityProperty& problem, const SystemParams& params,
    const ProtocolFactory& solver, std::string* error = nullptr,
    Round max_rounds = 10000);

/// Algorithm 1 itself: a weak-consensus protocol that sends exactly the
/// messages `solver` sends.
ProtocolFactory weak_consensus_from_any(ProtocolFactory solver,
                                        ReductionParams params);

}  // namespace ba::reductions
