#pragma once

// Algorithm 2 (§5.2.2): solving any non-trivial agreement problem that
// satisfies the containment condition, on top of interactive consistency.
//
// propose(v)  -> IC.propose(v)
// IC.decide(vec in I_n) -> decide Γ(vec)
//
// IC-Validity guarantees vec ⊒ c (the real input configuration), and CC
// guarantees Γ(vec) ∈ val(c') for every c' ⊑ vec — in particular for c.

#include "runtime/process.h"
#include "validity/property.h"

namespace ba::reductions {

/// `ic` must solve interactive consistency over `problem.input_domain`
/// (decisions encode a vector of n values; components of exposed senders may
/// be bottom/null and are coerced into the domain before applying Γ).
/// Γ is `problem.gamma_fast` when available, otherwise the enumerated gamma.
ProtocolFactory agreement_from_ic(validity::ValidityProperty problem,
                                  SystemParams params, ProtocolFactory ic);

}  // namespace ba::reductions
