#include "calculus/swap_omission.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace ba::calculus {
namespace {

std::set<MsgKey> all_receive_omitted(const ProcessTrace& pt) {
  std::set<MsgKey> keys;
  for (const RoundEvents& re : pt.rounds) {
    for (const Message& m : re.receive_omitted) keys.insert(m.key());
  }
  return keys;
}

bool any_send_omitted(const ProcessTrace& pt) {
  for (const RoundEvents& re : pt.rounds) {
    if (!re.send_omitted.empty()) return true;
  }
  return false;
}

}  // namespace

SwapResult swap_omission(const ExecutionTrace& e, ProcessId p_i) {
  // Line 2: M <- all messages receive-omitted by p_i.
  const std::set<MsgKey> m_set = all_receive_omitted(e.procs.at(p_i));

  SwapResult out;
  out.subject = p_i;
  out.execution = e;
  ExecutionTrace& ep = out.execution;
  ProcessSet new_faulty;  // line 3

  for (ProcessId z = 0; z < e.params.n; ++z) {
    ProcessTrace& pt = ep.procs[z];
    bool faulty = false;
    for (RoundEvents& re : pt.rounds) {
      // Move each sent message in M to send-omitted (lines 7-9).
      std::vector<Message> still_sent;
      for (Message& m : re.sent) {
        if (m_set.contains(m.key())) {
          re.send_omitted.push_back(m);
        } else {
          still_sent.push_back(m);
        }
      }
      re.sent = std::move(still_sent);
      // Remove M from receive-omissions (only p_i has them; line 9).
      std::erase_if(re.receive_omitted, [&](const Message& m) {
        return m_set.contains(m.key());
      });
      if (!re.send_omitted.empty() || !re.receive_omitted.empty()) {
        faulty = true;  // line 10
      }
    }
    if (faulty) new_faulty.insert(z);  // line 11
  }
  ep.faulty = new_faulty;
  return out;
}

SwapPreconditions check_swap_preconditions(const ExecutionTrace& e,
                                           ProcessId p_i) {
  SwapPreconditions pre;
  const ProcessTrace& pt = e.procs.at(p_i);

  if (any_send_omitted(pt)) {
    pre.error = "subject commits send-omissions";
    return pre;
  }

  // Blame set S: senders of messages p_i receive-omitted.
  ProcessSet blame;
  std::set<MsgKey> m_set = all_receive_omitted(pt);
  for (const MsgKey& k : m_set) blame.insert(k.sender);

  // Predicted F': every process that still commits an omission after the
  // swap. That is: (old faulty minus p_i if p_i only had those omissions)
  // union blame — computed exactly by simulating the membership test.
  ProcessSet predicted;
  for (ProcessId z = 0; z < e.params.n; ++z) {
    bool faulty = false;
    for (const RoundEvents& re : e.procs[z].rounds) {
      for (const Message& m : re.sent) {
        if (m_set.contains(m.key())) faulty = true;  // will send-omit
      }
      if (!re.send_omitted.empty()) faulty = true;
      for (const Message& m : re.receive_omitted) {
        if (!m_set.contains(m.key())) faulty = true;  // keeps an omission
      }
    }
    if (faulty) predicted.insert(z);
  }
  if (predicted.size() > e.params.t) {
    std::ostringstream os;
    os << "|F'| = " << predicted.size() << " exceeds t = " << e.params.t;
    pre.error = os.str();
    return pre;
  }
  if (predicted.contains(p_i)) {
    pre.error = "subject still faulty after swap";
    return pre;
  }

  // Witness: a process correct in E, distinct from p_i, none of whose sent
  // messages were omitted by p_i (so it is correct in E' too).
  for (ProcessId h = 0; h < e.params.n; ++h) {
    if (h == p_i || e.faulty.contains(h) || predicted.contains(h)) continue;
    pre.ok = true;
    pre.witness_correct = h;
    pre.new_faulty = predicted;
    return pre;
  }
  pre.error = "no correct witness process survives the swap";
  return pre;
}

}  // namespace ba::calculus
