#pragma once

// Algorithm 4 (procedure swap_omission) and the Lemma 15 side conditions.
//
// swap_omission(E, p_i) rewrites execution E so that every message p_i
// receive-omitted becomes *send-omitted by its sender* instead. The receive
// histories of all processes are untouched, so E' is indistinguishable from E
// to everyone — but p_i is now *correct* in E'. This is the device that turns
// "an isolated process disagreed" into "a correct process disagreed",
// producing a checkable counterexample execution.

#include <optional>
#include <string>

#include "runtime/trace.h"
#include "runtime/types.h"

namespace ba::calculus {

struct SwapResult {
  ExecutionTrace execution;  // E' with the recomputed faulty set F'
  /// The process the swap was performed for (correct in E').
  ProcessId subject{kNoProcess};
};

/// Algorithm 4. The returned trace carries the recomputed faulty set F' =
/// { p_z | p_z still commits an omission in E' }. Callers must check the
/// Lemma 15 preconditions (|F'| <= t etc.) — see `check_swap_preconditions`.
SwapResult swap_omission(const ExecutionTrace& e, ProcessId p_i);

/// Lemma 15 preconditions, evaluated on E (before the swap):
///  * p_i never send-omits in E;
///  * the blame set S (senders of p_i's receive-omitted messages) together
///    with the other faulty processes stays within t;
///  * some process p_h != p_i is correct in E and sent nothing p_i omitted
///    (so p_h stays correct in E').
/// Returns such a witness p_h on success, or an error string.
struct SwapPreconditions {
  bool ok{false};
  std::string error;
  ProcessId witness_correct{kNoProcess};  // the paper's p_h / p_X
  ProcessSet new_faulty;                  // predicted F'
};
SwapPreconditions check_swap_preconditions(const ExecutionTrace& e,
                                           ProcessId p_i);

}  // namespace ba::calculus
