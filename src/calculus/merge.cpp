#include "calculus/merge.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "runtime/sync_system.h"

namespace ba::calculus {
namespace {

bool same_proposals(const ExecutionTrace& a, const ExecutionTrace& b) {
  if (a.procs.size() != b.procs.size()) return false;
  for (std::size_t i = 0; i < a.procs.size(); ++i) {
    if (a.procs[i].proposal != b.procs[i].proposal) return false;
  }
  return true;
}

}  // namespace

bool are_mergeable(const IsolatedExecution& eb, const IsolatedExecution& ec) {
  if (!eb.group.set_intersection(ec.group).empty()) return false;
  if (eb.from_round == 1 && ec.from_round == 1) return true;
  const auto k1 = static_cast<std::int64_t>(eb.from_round);
  const auto k2 = static_cast<std::int64_t>(ec.from_round);
  return std::abs(k1 - k2) <= 1 && same_proposals(eb.trace, ec.trace);
}

ExecutionTrace merge(const SystemParams& params,
                     const ProtocolFactory& protocol,
                     const IsolatedExecution& eb, const IsolatedExecution& ec,
                     Round max_rounds) {
  if (!are_mergeable(eb, ec)) {
    throw std::invalid_argument("executions are not mergeable");
  }
  const std::uint32_t n = params.n;
  const ProcessSet& b = eb.group;
  const ProcessSet& c = ec.group;
  if (b.size() + c.size() > params.t) {
    throw std::invalid_argument("|B| + |C| > t");
  }

  // Proposals: C takes its proposal from the C-execution, everyone else from
  // the B-execution (lines 4-7 of Algorithm 5).
  std::vector<Value> proposals(n);
  for (ProcessId p = 0; p < n; ++p) {
    proposals[p] =
        c.contains(p) ? ec.trace.procs[p].proposal : eb.trace.procs[p].proposal;
  }

  std::vector<std::unique_ptr<Process>> replicas(n);
  for (ProcessId p = 0; p < n; ++p) {
    replicas[p] = protocol(ProcessContext{params, p, proposals[p]});
  }

  ExecutionTrace out;
  out.params = params;
  out.faulty = b.set_union(c);
  out.procs.resize(n);
  for (ProcessId p = 0; p < n; ++p) out.procs[p].proposal = proposals[p];

  auto recorded_received = [&](const ExecutionTrace& src, ProcessId p,
                               Round r) -> Inbox {
    if (r > src.procs[p].rounds.size()) return {};
    return src.procs[p].round(r).received;
  };

  for (Round r = 1; r <= max_rounds; ++r) {
    // Everyone's sends this round (line 19 computes them from live state
    // machines; round-1 sends are the M_i^0 / M_i^b of the construction).
    std::vector<std::vector<Message>> outs(n);
    std::size_t sent_count = 0;
    for (ProcessId p = 0; p < n; ++p) {
      outs[p] = normalize_outbox(replicas[p]->outbox_for_round(r), p, r, n);
      sent_count += outs[p].size();
    }

    // Route: to_i = messages addressed to p_i this round (line 10).
    std::vector<Inbox> to(n);
    for (ProcessId p = 0; p < n; ++p) {
      for (const Message& m : outs[p]) to[m.receiver].push_back(m);
    }

    for (ProcessId p = 0; p < n; ++p) {
      Inbox received;
      if (b.contains(p)) {
        received = recorded_received(eb.trace, p, r);  // line 15
      } else if (c.contains(p)) {
        received = recorded_received(ec.trace, p, r);  // line 16
      } else {
        received = to[p];  // line 13-14: A receives everything
      }
      sort_inbox(received);

      RoundEvents ev;
      ev.sent = outs[p];
      ev.received = received;
      if (b.contains(p) || c.contains(p)) {
        // receive-omitted = to_i \ received (line 17).
        for (const Message& m : to[p]) {
          bool found = false;
          for (const Message& g : received) {
            if (g.key() == m.key()) {
              found = true;
              break;
            }
          }
          if (!found) ev.receive_omitted.push_back(m);
        }
      }
      out.procs[p].rounds.push_back(std::move(ev));

      replicas[p]->deliver(r, received);  // line 18
      if (!out.procs[p].decision.has_value()) {
        if (auto d = replicas[p]->decision()) {
          out.procs[p].decision = d;
          out.procs[p].decision_round = r;
        }
      }
    }
    out.rounds = r;

    if (sent_count == 0) {
      bool all_quiescent = true;
      for (ProcessId p = 0; p < n; ++p) {
        if (!replicas[p]->quiescent()) {
          all_quiescent = false;
          break;
        }
      }
      // Run at least as far as both source traces so replayed receive sets
      // are exhausted before declaring quiescence.
      const Round horizon = std::max(eb.trace.rounds, ec.trace.rounds);
      if (all_quiescent && r >= horizon) {
        out.quiesced = true;
        break;
      }
    }
  }
  return out;
}

}  // namespace ba::calculus
