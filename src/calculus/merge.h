#pragma once

// Definition 2 (mergeable executions) and Algorithm 5 (procedure merge).
//
// merge() takes two isolated executions — group B isolated from round k1 and
// group C isolated from round k2 — and builds the execution E* in which both
// are isolated simultaneously:
//   * every process in B (resp. C) receives exactly what it received in the
//     B-execution (resp. C-execution), so by determinism it behaves
//     identically and cannot distinguish E* from its original execution;
//   * every process in A = Pi \ (B u C) is correct and receives everything
//     addressed to it.
// This is the construction behind Lemma 3 and Figure 2.

#include <optional>
#include <string>

#include "runtime/process.h"
#include "runtime/trace.h"
#include "runtime/types.h"

namespace ba::calculus {

/// An execution in which one group is isolated from one round onward.
struct IsolatedExecution {
  ExecutionTrace trace;
  ProcessSet group;  // the isolated group (B or C)
  Round from_round{1};
};

/// Definition 2, stated over proposal vectors rather than a single bit so the
/// 0/1-relabelled symmetric case works too: executions are mergeable iff
/// both isolation rounds are 1, or |k1 - k2| <= 1 and both executions assign
/// every process the same proposal.
bool are_mergeable(const IsolatedExecution& eb, const IsolatedExecution& ec);

/// Algorithm 5. `protocol` must be the factory both input executions were
/// produced with. The merged execution assigns each process in C its
/// proposal from `ec` and every other process its proposal from `eb`.
/// Runs to quiescence or `max_rounds`.
ExecutionTrace merge(const SystemParams& params,
                     const ProtocolFactory& protocol,
                     const IsolatedExecution& eb, const IsolatedExecution& ec,
                     Round max_rounds = 1000);

}  // namespace ba::calculus
