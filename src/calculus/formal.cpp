#include "calculus/formal.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "runtime/sync_system.h"

namespace ba::calculus {
namespace {

void append(std::vector<Message>& out, const std::vector<Message>& in) {
  out.insert(out.end(), in.begin(), in.end());
}

}  // namespace

std::vector<Message> Behavior::all_sent() const {
  std::vector<Message> out;
  for (const Fragment& f : fragments) append(out, f.sent);
  return out;
}

std::vector<Message> Behavior::all_send_omitted() const {
  std::vector<Message> out;
  for (const Fragment& f : fragments) append(out, f.send_omitted);
  return out;
}

std::vector<Message> Behavior::all_receive_omitted() const {
  std::vector<Message> out;
  for (const Fragment& f : fragments) append(out, f.receive_omitted);
  return out;
}

std::optional<int> check_fragment(const Fragment& f, ProcessId p, Round k) {
  // (1) s.process = p_i
  if (f.state.process != p) return 1;
  // (2) s.round = k
  if (f.state.round != k) return 2;
  // (3) every message has round k
  for (const auto* bucket :
       {&f.sent, &f.send_omitted, &f.received, &f.receive_omitted}) {
    for (const Message& m : *bucket) {
      if (m.round != k) return 3;
    }
  }
  auto keys = [](const std::vector<Message>& ms) {
    std::set<MsgKey> out;
    for (const Message& m : ms) out.insert(m.key());
    return out;
  };
  // (4) M^S and M^SO disjoint
  {
    std::set<MsgKey> s = keys(f.sent);
    for (const Message& m : f.send_omitted) {
      if (s.contains(m.key())) return 4;
    }
  }
  // (5) M^R and M^RO disjoint
  {
    std::set<MsgKey> r = keys(f.received);
    for (const Message& m : f.receive_omitted) {
      if (r.contains(m.key())) return 5;
    }
  }
  // (6) outbound messages have sender p
  for (const auto* bucket : {&f.sent, &f.send_omitted}) {
    for (const Message& m : *bucket) {
      if (m.sender != p) return 6;
    }
  }
  // (7) inbound messages have receiver p
  for (const auto* bucket : {&f.received, &f.receive_omitted}) {
    for (const Message& m : *bucket) {
      if (m.receiver != p) return 7;
    }
  }
  // (8) no self-messages anywhere
  for (const auto* bucket :
       {&f.sent, &f.send_omitted, &f.received, &f.receive_omitted}) {
    for (const Message& m : *bucket) {
      if (m.sender == m.receiver) return 8;
    }
  }
  // (9) at most one outbound message per receiver
  {
    std::set<ProcessId> receivers;
    for (const auto* bucket : {&f.sent, &f.send_omitted}) {
      for (const Message& m : *bucket) {
        if (!receivers.insert(m.receiver).second) return 9;
      }
    }
  }
  // (10) at most one inbound message per sender
  {
    std::set<ProcessId> senders;
    for (const auto* bucket : {&f.received, &f.receive_omitted}) {
      for (const Message& m : *bucket) {
        if (!senders.insert(m.sender).second) return 10;
      }
    }
  }
  return std::nullopt;
}

std::optional<int> check_behavior_static(const Behavior& b) {
  // (1) each FR^j is a j-round fragment of p_i.
  for (std::size_t j = 0; j < b.fragments.size(); ++j) {
    if (check_fragment(b.fragments[j], b.process,
                       static_cast<Round>(j + 1))) {
      return 1;
    }
  }
  if (b.fragments.empty()) return std::nullopt;
  // (2) the initial state is an initial state: round 1, no decision yet.
  // (Generalized from the paper's binary 0_i/1_i to arbitrary proposals.)
  if (b.fragments[0].state.decision.has_value()) return 2;
  // (3)/(4) round-1 sends are a function of the initial state alone — this
  // is part of the transition check; statically we require nothing more.
  // (5) the proposal never changes.
  for (const Fragment& f : b.fragments) {
    if (f.state.proposal != b.fragments[0].state.proposal) return 5;
  }
  // (6) decisions are sticky: once set, identical forever after.
  std::optional<Value> decided;
  for (const Fragment& f : b.fragments) {
    if (decided.has_value()) {
      if (f.state.decision != decided) return 6;
    } else if (f.state.decision.has_value()) {
      decided = f.state.decision;
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_behavior_transitions(
    const Behavior& b, const SystemParams& params,
    const ProtocolFactory& protocol) {
  std::vector<Inbox> inboxes;
  inboxes.reserve(b.fragments.size());
  for (const Fragment& f : b.fragments) inboxes.push_back(f.received);

  ProcessContext ctx{params, b.process, b.fragments.at(0).state.proposal};
  std::unique_ptr<Process> replica = protocol(ctx);

  for (std::size_t j = 0; j < b.fragments.size(); ++j) {
    const Round round = static_cast<Round>(j + 1);
    // Sends of round j+1 must equal M^S u M^SO recorded there.
    std::vector<Message> produced = normalize_outbox(
        replica->outbox_for_round(round), b.process, round, params.n);
    std::vector<Message> recorded = b.fragments[j].sent;
    append(recorded, b.fragments[j].send_omitted);
    std::sort(produced.begin(), produced.end());
    std::sort(recorded.begin(), recorded.end());
    if (produced != recorded) {
      std::ostringstream os;
      os << "transition mismatch at p" << b.process << " round " << round
         << ": recorded sends differ from A(s, M^R)";
      return os.str();
    }
    // Decision recorded at the START of round j+1 must match the replica's
    // decision before delivering round j+1 messages.
    if (replica->decision() != b.fragments[j].state.decision) {
      std::ostringstream os;
      os << "decision mismatch at p" << b.process << " start of round "
         << round;
      return os.str();
    }
    Inbox inbox = inboxes[j];
    sort_inbox(inbox);
    replica->deliver(round, inbox);
  }
  return std::nullopt;
}

std::vector<Behavior> to_behaviors(const ExecutionTrace& trace) {
  std::vector<Behavior> out;
  out.reserve(trace.procs.size());
  for (ProcessId p = 0; p < trace.params.n; ++p) {
    const ProcessTrace& pt = trace.procs[p];
    Behavior b;
    b.process = p;
    std::optional<Value> decision;
    for (std::size_t j = 0; j < pt.rounds.size(); ++j) {
      // The state at the START of round j+1: decision is whatever was
      // decided strictly before round j+1.
      if (pt.decision.has_value() && pt.decision_round < j + 1) {
        decision = pt.decision;
      }
      Fragment f;
      f.state = FormalState{p, static_cast<Round>(j + 1), pt.proposal,
                            decision};
      f.sent = pt.rounds[j].sent;
      f.send_omitted = pt.rounds[j].send_omitted;
      f.received = pt.rounds[j].received;
      f.receive_omitted = pt.rounds[j].receive_omitted;
      b.fragments.push_back(std::move(f));
    }
    out.push_back(std::move(b));
  }
  return out;
}

std::optional<std::string> check_execution_conditions(
    const SystemParams& params, const ProcessSet& faulty,
    const std::vector<Behavior>& behaviors) {
  auto fail = [](const std::string& s) {
    return std::optional<std::string>{s};
  };
  // Faulty processes.
  if (faulty.size() > params.t) return fail("faulty-processes: |F| > t");
  // Composition (static part).
  if (behaviors.size() != params.n) {
    return fail("composition: wrong number of behaviors");
  }
  for (ProcessId p = 0; p < params.n; ++p) {
    if (behaviors[p].process != p) return fail("composition: wrong process");
    if (check_behavior_static(behaviors[p])) {
      std::ostringstream os;
      os << "composition: behavior of p" << p << " malformed";
      return fail(os.str());
    }
  }
  // Index sends.
  std::map<MsgKey, Value> sent_index;
  for (const Behavior& b : behaviors) {
    for (const Message& m : b.all_sent()) sent_index.emplace(m.key(), m.payload);
  }
  // Send-validity: every sent message is received or receive-omitted by its
  // target in the same round.
  for (const auto& [key, payload] : sent_index) {
    const Behavior& r = behaviors[key.receiver];
    if (key.round > r.rounds()) continue;  // beyond horizon
    bool found = false;
    for (const auto* bucket :
         {&r.received(key.round), &r.receive_omitted(key.round)}) {
      for (const Message& m : *bucket) {
        if (m.key() == key) found = true;
      }
    }
    if (!found) return fail("send-validity violated");
  }
  // Receive-validity: everything received / receive-omitted was sent.
  for (const Behavior& b : behaviors) {
    for (std::size_t j = 1; j <= b.rounds(); ++j) {
      for (const auto* bucket : {&b.received(static_cast<Round>(j)),
                                 &b.receive_omitted(static_cast<Round>(j))}) {
        for (const Message& m : *bucket) {
          auto it = sent_index.find(m.key());
          if (it == sent_index.end() || it->second != m.payload) {
            return fail("receive-validity violated");
          }
        }
      }
    }
  }
  // Omission-validity: omissions only at faulty processes.
  for (const Behavior& b : behaviors) {
    if ((!b.all_send_omitted().empty() || !b.all_receive_omitted().empty()) &&
        !faulty.contains(b.process)) {
      return fail("omission-validity violated");
    }
  }
  return std::nullopt;
}

}  // namespace ba::calculus
