#include "calculus/isolation.h"

#include <sstream>

namespace ba::calculus {

std::optional<std::string> check_isolated(const ExecutionTrace& trace,
                                          const ProcessSet& g,
                                          Round from_round) {
  auto fail = [](const std::string& why) {
    return std::optional<std::string>{why};
  };
  for (ProcessId p : g) {
    if (!trace.faulty.contains(p)) {
      std::ostringstream os;
      os << "p" << p << " in isolated group but not faulty";
      return fail(os.str());
    }
    const ProcessTrace& pt = trace.procs.at(p);
    for (std::size_t r = 0; r < pt.rounds.size(); ++r) {
      const Round round = static_cast<Round>(r + 1);
      const RoundEvents& re = pt.rounds[r];
      if (!re.send_omitted.empty()) {
        std::ostringstream os;
        os << "p" << p << " send-omits in round " << round;
        return fail(os.str());
      }
      for (const Message& m : re.receive_omitted) {
        if (g.contains(m.sender) || round < from_round) {
          std::ostringstream os;
          os << "p" << p << " receive-omits " << m
             << " which isolation does not prescribe";
          return fail(os.str());
        }
      }
      for (const Message& m : re.received) {
        if (!g.contains(m.sender) && round >= from_round) {
          std::ostringstream os;
          os << "p" << p << " received " << m
             << " which isolation requires it to omit";
          return fail(os.str());
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Round> isolation_round(const ExecutionTrace& trace,
                                     const ProcessSet& g) {
  // Isolation from round k requires: no member receives an outside message in
  // any round >= k, every outside message in rounds >= k is receive-omitted,
  // no other omissions. Find the latest outside message received, then check.
  Round earliest_valid = 1;
  for (ProcessId p : g) {
    const ProcessTrace& pt = trace.procs.at(p);
    for (std::size_t r = 0; r < pt.rounds.size(); ++r) {
      const Round round = static_cast<Round>(r + 1);
      for (const Message& m : pt.rounds[r].received) {
        if (!g.contains(m.sender)) {
          earliest_valid = std::max(earliest_valid, round + 1);
        }
      }
    }
  }
  if (check_isolated(trace, g, earliest_valid) == std::nullopt) {
    return earliest_valid;
  }
  return std::nullopt;
}

}  // namespace ba::calculus
