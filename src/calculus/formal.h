#pragma once

// The Appendix-A objects as explicit, checkable data: states (A.1.2),
// fragments (A.1.4) with their ten well-formedness conditions, behaviors
// (A.1.5) with their seven conditions, and executions-as-behavior-tuples
// (A.1.6) with the four validity guarantees.
//
// The runtime's `ExecutionTrace` is the operational representation; this
// module is the *formal* one: `to_behaviors` lifts a trace into behaviors,
// `check_fragment` / `check_behavior` / `check_execution_conditions` verify
// the exact numbered conditions from the paper, and the determinism
// condition (7) — s^{j+1}, M^{S(j+1)} = A(s^j, M^{R(j)}) — is discharged by
// replaying the protocol's state machine.
//
// This layer exists so the proof-level statements ("FR' is a k-round
// fragment of p_i", Lemmas 11-14) have direct, testable counterparts.

#include <optional>
#include <string>
#include <vector>

#include "runtime/message.h"
#include "runtime/process.h"
#include "runtime/trace.h"
#include "runtime/types.h"

namespace ba::calculus {

/// A.1.2: the externally visible part of a process state at the start of a
/// round. (The internal protocol state is carried by determinism: proposal +
/// receive history determine it.)
struct FormalState {
  ProcessId process{kNoProcess};
  Round round{kNoRound};
  Value proposal;                  // s.proposal (generalized beyond bits)
  std::optional<Value> decision;   // s.decision (nullopt = bottom)

  friend bool operator==(const FormalState&, const FormalState&) = default;
};

/// A.1.4: a k-round fragment (s, M^S, M^SO, M^R, M^RO) of a process.
struct Fragment {
  FormalState state;
  std::vector<Message> sent;             // M^S
  std::vector<Message> send_omitted;     // M^SO
  std::vector<Message> received;         // M^R
  std::vector<Message> receive_omitted;  // M^RO

  friend bool operator==(const Fragment&, const Fragment&) = default;
};

/// A.1.5: a k-round behavior of a process = its fragments for rounds 1..k.
struct Behavior {
  ProcessId process{kNoProcess};
  std::vector<Fragment> fragments;

  [[nodiscard]] std::size_t rounds() const { return fragments.size(); }

  // The paper's accessor functions (Functions table, Appendix A).
  [[nodiscard]] const FormalState& state(Round j) const {
    return fragments.at(j - 1).state;
  }
  [[nodiscard]] const std::vector<Message>& sent(Round j) const {
    return fragments.at(j - 1).sent;
  }
  [[nodiscard]] const std::vector<Message>& send_omitted(Round j) const {
    return fragments.at(j - 1).send_omitted;
  }
  [[nodiscard]] const std::vector<Message>& received(Round j) const {
    return fragments.at(j - 1).received;
  }
  [[nodiscard]] const std::vector<Message>& receive_omitted(Round j) const {
    return fragments.at(j - 1).receive_omitted;
  }
  [[nodiscard]] std::vector<Message> all_sent() const;
  [[nodiscard]] std::vector<Message> all_send_omitted() const;
  [[nodiscard]] std::vector<Message> all_receive_omitted() const;

  friend bool operator==(const Behavior&, const Behavior&) = default;
};

/// Checks the ten conditions of A.1.4 for `f` as a `k`-round fragment of
/// process `p`. Returns the number (1-10) of the first violated condition,
/// or nullopt if all hold.
std::optional<int> check_fragment(const Fragment& f, ProcessId p, Round k);

/// Checks the non-transition conditions of A.1.5 ((1)-(6)): fragments are
/// per-round well-formed, the proposal is constant, decisions are sticky
/// once made. Condition (7) — the A(s, M^R) transitions — is checked
/// separately because it needs the protocol. Returns the first violated
/// condition number or nullopt.
std::optional<int> check_behavior_static(const Behavior& b);

/// Condition (7) of A.1.5: replays `protocol` over the behavior's receive
/// history and verifies that the recorded sends (M^S u M^SO per round) and
/// decision evolution match the state machine exactly.
std::optional<std::string> check_behavior_transitions(
    const Behavior& b, const SystemParams& params,
    const ProtocolFactory& protocol);

/// Lifts a recorded trace into the formal representation.
std::vector<Behavior> to_behaviors(const ExecutionTrace& trace);

/// A.1.6: the four execution guarantees over a tuple of behaviors —
/// Faulty processes (|F| <= t), Composition (each B_j a behavior of p_j,
/// static part), Send-validity, Receive-validity, Omission-validity.
/// Returns a description of the first violated guarantee or nullopt.
std::optional<std::string> check_execution_conditions(
    const SystemParams& params, const ProcessSet& faulty,
    const std::vector<Behavior>& behaviors);

}  // namespace ba::calculus
