#pragma once

// Definition 1 (isolation) as a *predicate on traces*: the adversary module
// constructs isolated executions; this module verifies, after the fact, that
// a recorded execution really isolates a group — the checks the Appendix-A
// proofs rely on.

#include <optional>
#include <string>

#include "runtime/trace.h"
#include "runtime/types.h"

namespace ba::calculus {

/// Checks Definition 1 for group `g` from round `from_round` in `trace`:
/// every member of g is faulty, send-omits nothing, and receive-omits a
/// message m iff m.sender is outside g and m.round >= from_round.
/// Returns an explanation if the property fails, nullopt if it holds.
std::optional<std::string> check_isolated(const ExecutionTrace& trace,
                                          const ProcessSet& g,
                                          Round from_round);

/// The earliest round from which `g` is isolated in `trace`, or nullopt if g
/// is not isolated from any round (up to the trace horizon).
std::optional<Round> isolation_round(const ExecutionTrace& trace,
                                     const ProcessSet& g);

}  // namespace ba::calculus
