#include "adversary/omission.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "crypto/siphash.h"

namespace ba {
namespace {

bool coin(std::uint64_t seed, const MsgKey& k, std::uint32_t permille,
          std::uint8_t salt) {
  const std::array<std::uint8_t, 13> buf{
      static_cast<std::uint8_t>(k.sender),
      static_cast<std::uint8_t>(k.sender >> 8),
      static_cast<std::uint8_t>(k.sender >> 16),
      static_cast<std::uint8_t>(k.sender >> 24),
      static_cast<std::uint8_t>(k.receiver),
      static_cast<std::uint8_t>(k.receiver >> 8),
      static_cast<std::uint8_t>(k.receiver >> 16),
      static_cast<std::uint8_t>(k.receiver >> 24),
      static_cast<std::uint8_t>(k.round),
      static_cast<std::uint8_t>(k.round >> 8),
      static_cast<std::uint8_t>(k.round >> 16),
      static_cast<std::uint8_t>(k.round >> 24),
      salt,
  };
  return crypto::siphash24(crypto::derive_key(seed, 0x0b5e551015), buf) %
             1000 <
         permille;
}

}  // namespace

Adversary isolate_group(const ProcessSet& g, Round from_round) {
  Adversary adv;
  adv.faulty = g;
  adv.receive_omit = [g, from_round](const MsgKey& k) {
    return k.round >= from_round && g.contains(k.receiver) &&
           !g.contains(k.sender);
  };
  return adv;
}

Adversary isolate_two_groups(const ProcessSet& b, Round kb,
                             const ProcessSet& c, Round kc) {
  if (!b.set_intersection(c).empty()) {
    throw std::invalid_argument("isolated groups must be disjoint");
  }
  Adversary adv;
  adv.faulty = b.set_union(c);
  adv.receive_omit = [b, kb, c, kc](const MsgKey& k) {
    if (b.contains(k.receiver)) {
      return k.round >= kb && !b.contains(k.sender);
    }
    if (c.contains(k.receiver)) {
      return k.round >= kc && !c.contains(k.sender);
    }
    return false;
  };
  return adv;
}

Adversary send_omit_messages(const ProcessSet& faulty,
                             std::vector<MsgKey> dropped) {
  std::sort(dropped.begin(), dropped.end());
  Adversary adv;
  adv.faulty = faulty;
  adv.send_omit = [dropped = std::move(dropped)](const MsgKey& k) {
    return std::binary_search(dropped.begin(), dropped.end(), k);
  };
  return adv;
}

Adversary mute_group(const ProcessSet& g, Round from_round) {
  Adversary adv;
  adv.faulty = g;
  adv.send_omit = [g, from_round](const MsgKey& k) {
    return k.round >= from_round && g.contains(k.sender);
  };
  return adv;
}

Adversary partition_from(const ProcessSet& faulty_side, Round from_round) {
  Adversary adv;
  adv.faulty = faulty_side;
  adv.send_omit = [faulty_side, from_round](const MsgKey& k) {
    return k.round >= from_round && faulty_side.contains(k.sender) &&
           !faulty_side.contains(k.receiver);
  };
  adv.receive_omit = [faulty_side, from_round](const MsgKey& k) {
    return k.round >= from_round && faulty_side.contains(k.receiver) &&
           !faulty_side.contains(k.sender);
  };
  return adv;
}

Adversary random_omissions(const ProcessSet& faulty, std::uint64_t seed,
                           std::uint32_t drop_permille) {
  Adversary adv;
  adv.faulty = faulty;
  adv.send_omit = [faulty, seed, drop_permille](const MsgKey& k) {
    return faulty.contains(k.sender) && coin(seed, k, drop_permille, 0);
  };
  adv.receive_omit = [faulty, seed, drop_permille](const MsgKey& k) {
    // When the sender is also faulty and already send-omitted this message,
    // the runtime never consults the receive predicate (the message was not
    // sent), so no double-omission can occur.
    return faulty.contains(k.receiver) && coin(seed, k, drop_permille, 1);
  };
  return adv;
}

Adversary crash_schedule(std::vector<std::pair<ProcessId, Round>> crashes) {
  Adversary adv;
  for (const auto& [p, r] : crashes) adv.faulty.insert(p);
  std::sort(crashes.begin(), crashes.end());
  adv.send_omit = [crashes = std::move(crashes)](const MsgKey& k) {
    for (const auto& [p, r] : crashes) {
      if (p == k.sender) return k.round >= r;
    }
    return false;
  };
  return adv;
}

}  // namespace ba
