#pragma once

// Byzantine strategies: arbitrary-behaviour replicas substituted for
// corrupted processes. Each strategy is a `ProtocolFactory` so the runtime
// treats it exactly like a protocol. Strategies may wrap the honest protocol
// (to deviate selectively) — the wrapped replica is constructed through the
// same factory, so the strategy stays deterministic and replayable.

#include <cstdint>

#include "runtime/fault.h"
#include "runtime/process.h"

namespace ba {

/// Never sends anything; never decides. (Fail-stop from round 1.)
ProtocolFactory byz_silent();

/// Follows the honest protocol until (and excluding) round `crash_round`,
/// then goes permanently silent.
ProtocolFactory byz_crash_at(ProtocolFactory honest, Round crash_round);

/// Sends proposal bit 0 to the lower half of the process space and bit 1 to
/// the upper half, every round up to `rounds`. A canonical equivocator for
/// broadcast tests.
ProtocolFactory byz_equivocate_bits(Round rounds);

/// Runs the honest protocol but flips every payload that parses as a bit on
/// outgoing messages addressed to processes with id >= `pivot`.
ProtocolFactory byz_flip_bits_to_upper(ProtocolFactory honest,
                                       ProcessId pivot);

/// Deterministic noise: sends pseudo-random bits to pseudo-randomly chosen
/// receivers each round (seeded by self id and round). Stress-tests parsers.
ProtocolFactory byz_noise(std::uint64_t seed, Round rounds);

/// Follows the honest protocol, but lies about its proposal: replaces it
/// with `fake` when constructing the inner replica.
ProtocolFactory byz_lie_proposal(ProtocolFactory honest, Value fake);

}  // namespace ba
