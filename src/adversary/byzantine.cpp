#include "adversary/byzantine.h"

#include <memory>
#include <utility>

#include "crypto/siphash.h"

namespace ba {
namespace {

class SilentProcess final : public Process {
 public:
  Outbox outbox_for_round(Round) override { return {}; }
  void deliver(Round, const Inbox&) override {}
  [[nodiscard]] std::optional<Value> decision() const override {
    return std::nullopt;
  }
  [[nodiscard]] bool quiescent() const override { return true; }
};

class CrashAtProcess final : public Process {
 public:
  CrashAtProcess(std::unique_ptr<Process> inner, Round crash_round)
      : inner_(std::move(inner)), crash_round_(crash_round) {}

  Outbox outbox_for_round(Round r) override {
    if (r >= crash_round_) return {};
    return inner_->outbox_for_round(r);
  }
  void deliver(Round r, const Inbox& inbox) override {
    if (r < crash_round_) inner_->deliver(r, inbox);
  }
  [[nodiscard]] std::optional<Value> decision() const override {
    return std::nullopt;
  }
  [[nodiscard]] bool quiescent() const override { return true; }

 private:
  std::unique_ptr<Process> inner_;
  Round crash_round_;
};

class EquivocateBitsProcess final : public Process {
 public:
  EquivocateBitsProcess(const ProcessContext& ctx, Round rounds)
      : n_(ctx.params.n), rounds_(rounds) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r > rounds_) return out;
    for (ProcessId p = 0; p < n_; ++p) {
      out.push_back(Outgoing{p, Value::bit(p < n_ / 2 ? 0 : 1)});
    }
    return out;
  }
  void deliver(Round, const Inbox&) override {}
  [[nodiscard]] std::optional<Value> decision() const override {
    return std::nullopt;
  }
  [[nodiscard]] bool quiescent() const override { return true; }

 private:
  std::uint32_t n_;
  Round rounds_;
};

class FlipBitsProcess final : public Process {
 public:
  FlipBitsProcess(std::unique_ptr<Process> inner, ProcessId pivot)
      : inner_(std::move(inner)), pivot_(pivot) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out = inner_->outbox_for_round(r);
    for (Outgoing& o : out) {
      if (o.to >= pivot_) {
        if (auto b = o.payload.try_bit()) o.payload = Value::bit(1 - *b);
      }
    }
    return out;
  }
  void deliver(Round r, const Inbox& inbox) override {
    inner_->deliver(r, inbox);
  }
  [[nodiscard]] std::optional<Value> decision() const override {
    return std::nullopt;
  }
  [[nodiscard]] bool quiescent() const override { return inner_->quiescent(); }

 private:
  std::unique_ptr<Process> inner_;
  ProcessId pivot_;
};

class NoiseProcess final : public Process {
 public:
  NoiseProcess(const ProcessContext& ctx, std::uint64_t seed, Round rounds)
      : n_(ctx.params.n), self_(ctx.self), seed_(seed), rounds_(rounds) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r > rounds_) return out;
    for (ProcessId p = 0; p < n_; ++p) {
      const std::uint64_t h = crypto::siphash24(
          crypto::derive_key(seed_, self_),
          std::array<std::uint8_t, 8>{
              static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(r >> 8),
              static_cast<std::uint8_t>(p), static_cast<std::uint8_t>(p >> 8),
              0, 0, 0, 0});
      if (h % 3 == 0) continue;  // sometimes stay silent
      out.push_back(Outgoing{p, Value::bit(static_cast<int>(h & 1))});
    }
    return out;
  }
  void deliver(Round, const Inbox&) override {}
  [[nodiscard]] std::optional<Value> decision() const override {
    return std::nullopt;
  }
  [[nodiscard]] bool quiescent() const override { return true; }

 private:
  std::uint32_t n_;
  ProcessId self_;
  std::uint64_t seed_;
  Round rounds_;
};

}  // namespace

ProtocolFactory byz_silent() {
  return [](const ProcessContext&) { return std::make_unique<SilentProcess>(); };
}

ProtocolFactory byz_crash_at(ProtocolFactory honest, Round crash_round) {
  return [honest = std::move(honest), crash_round](const ProcessContext& ctx) {
    return std::make_unique<CrashAtProcess>(honest(ctx), crash_round);
  };
}

ProtocolFactory byz_equivocate_bits(Round rounds) {
  return [rounds](const ProcessContext& ctx) {
    return std::make_unique<EquivocateBitsProcess>(ctx, rounds);
  };
}

ProtocolFactory byz_flip_bits_to_upper(ProtocolFactory honest,
                                       ProcessId pivot) {
  return [honest = std::move(honest), pivot](const ProcessContext& ctx) {
    return std::make_unique<FlipBitsProcess>(honest(ctx), pivot);
  };
}

ProtocolFactory byz_noise(std::uint64_t seed, Round rounds) {
  return [seed, rounds](const ProcessContext& ctx) {
    return std::make_unique<NoiseProcess>(ctx, seed, rounds);
  };
}

ProtocolFactory byz_lie_proposal(ProtocolFactory honest, Value fake) {
  return [honest = std::move(honest), fake = std::move(fake)](
             const ProcessContext& ctx) {
    ProcessContext lied = ctx;
    lied.proposal = fake;
    return honest(lied);
  };
}

}  // namespace ba
