#pragma once

// Omission-fault schedules (§3). Builders return `Adversary` values for the
// runtime. The central one is *isolation* (Definition 1): a group G of at
// most t processes receive-omits, from round k onward, every message sent to
// it from outside G — and commits no other fault.

#include <vector>

#include "runtime/fault.h"
#include "runtime/message.h"
#include "runtime/types.h"

namespace ba {

/// Definition 1: group `g` isolated from round `from_round` (inclusive).
/// Every p in g receive-omits m iff m.sender is outside g and
/// m.round >= from_round; nothing is ever send-omitted.
Adversary isolate_group(const ProcessSet& g, Round from_round);

/// Two groups isolated independently (used by merged executions, Fig. 2):
/// b isolated from round kb, c isolated from round kc. b and c must be
/// disjoint.
Adversary isolate_two_groups(const ProcessSet& b, Round kb,
                             const ProcessSet& c, Round kc);

/// Send-omission of an explicit set of message identities (the result of
/// swap_omission constructions: senders take the blame for drops).
Adversary send_omit_messages(const ProcessSet& faulty,
                             std::vector<MsgKey> dropped);

/// Crash-like omission: members of `g` send-omit everything from
/// `from_round` on (still receive). Models fail-silent processes inside the
/// omission model.
Adversary mute_group(const ProcessSet& g, Round from_round);

/// Drops each direction of communication between the two halves of a
/// partition from `from_round` on, blamed on `faulty_side` (receive-omission
/// by that side plus send-omission by that side). Used in partition tests.
Adversary partition_from(const ProcessSet& faulty_side, Round from_round);

/// Pseudo-random omission schedule for property tests: every message whose
/// faulty endpoint is in `faulty` is independently send-omitted (when the
/// sender is faulty) or receive-omitted (when the receiver is faulty) with
/// probability `drop_permille`/1000, deterministically derived from `seed`
/// and the message identity via SipHash. A message with both endpoints
/// faulty can only be send-omitted (never both, preserving trace validity).
Adversary random_omissions(const ProcessSet& faulty, std::uint64_t seed,
                           std::uint32_t drop_permille);

/// Crash schedule: each listed process stops sending from its round onward
/// (send-omission of everything). The classic crash-failure adversary used
/// by the FloodSet / early-deciding experiments.
Adversary crash_schedule(std::vector<std::pair<ProcessId, Round>> crashes);

}  // namespace ba
