#pragma once

// Link models for the discrete-event network simulator (src/sim/).
//
// A link model is a pure, seeded function from a message identity to a
// delivery latency in logical ticks — no wall clock, no global RNG state —
// so a simulation is a deterministic function of (inputs, model, seed).
// Three models cover the settings the repo targets:
//
//   * synchronous        — every message takes a fixed Δ ticks. With zero
//     jitter this is exactly the lockstep executor of runtime/sync_system:
//     the SyncAdapter parity tests assert bit-identical traces;
//   * jitter             — latency sampled per message identity from
//     [min, max] via SipHash. Bounded by the round length ("within model
//     bounds"), so jitter reorders deliveries *inside* a round and shows up
//     in the latency/reorder metrics but never changes the round-level
//     trace;
//   * partial synchrony  — a designated lag group experiences unbounded
//     (sampled) delays on inbound cross-group links before a global
//     stabilization round (GST); from GST on, delivery is bounded by Δ
//     again. A pre-GST latency that overshoots the sender's round boundary
//     makes the message *late*: the round-based state machines can never
//     see it, so the simulator records it as receive-omitted. To keep such
//     traces valid for the analysis linter (budget: every omission is
//     attributable to a faulty endpoint), the lag group must be declared
//     faulty — `required_faulty()` names the set and `simulate` enforces
//     the declaration.

#include <cstdint>

#include "runtime/message.h"
#include "runtime/types.h"

namespace ba::sim {

/// Logical simulation time, in abstract ticks. Round r of the synchronous
/// abstraction spans ((r-1)*round_ticks, r*round_ticks]: messages are sent
/// at the open end and must arrive by the closed end to be delivered in r.
using SimTime = std::uint64_t;

struct LinkModel {
  enum class Kind : std::uint8_t { kSynchronous, kJitter, kPartialSynchrony };

  Kind kind{Kind::kSynchronous};
  /// Latency bounds in ticks. 0 means "the full round" (resolved against
  /// the configured round length at sampling time).
  SimTime min_latency{0};
  SimTime max_latency{0};
  /// Seed for the per-message SipHash latency sampler (jitter / pre-GST).
  std::uint64_t seed{0};
  /// Partial synchrony only: the lagging receivers and the first round with
  /// bounded delivery.
  ProcessSet lag_group;
  Round gst_round{1};

  /// Fixed-Δ synchronous network. latency 0 = exactly one round.
  static LinkModel synchronous(SimTime latency = 0);
  /// Per-message latency in [min, max] ticks (clamped to the round length).
  static LinkModel jitter(SimTime min, SimTime max, std::uint64_t seed);
  /// Messages into `lag` from outside it are sampled in [1, 2*round] before
  /// round `gst` (≈ half get lost to the round boundary); all other traffic,
  /// and all traffic from `gst` on, takes `post_latency` (0 = one round).
  static LinkModel partial_synchrony(ProcessSet lag, Round gst,
                                     std::uint64_t seed,
                                     SimTime post_latency = 0);

  /// Delivery latency for message `k` in ticks, possibly > `round_ticks`
  /// (late). Pure and deterministic in (model, k).
  [[nodiscard]] SimTime latency(const MsgKey& k, SimTime round_ticks) const;

  /// Processes this model can force omissions onto (late pre-GST messages).
  /// The simulator requires them to be declared faulty by the adversary so
  /// the emitted trace stays budget-clean under the analysis linter.
  [[nodiscard]] const ProcessSet& required_faulty() const;

  [[nodiscard]] const char* name() const;
};

}  // namespace ba::sim
