#pragma once

// The deterministic discrete-event network simulator.
//
// Where runtime/sync_system.cpp advances the whole system in lockstep
// rounds, the simulator runs the *network* as a seeded priority-queue event
// loop over logical time: every message is an individually scheduled
// delivery event whose latency comes from a link model (sim/link.h) plus
// fault-plan delay (sim/fault.h). The round abstraction the paper's state
// machines need (A.1.3) is preserved by two control events per round:
//
//   RoundStart(r) at (r-1)*Δ   every process computes its round-r outbox;
//                              each message gets a sampled latency and is
//                              scheduled as a Deliver event (or recorded as
//                              an omission — adversary drop or model-late);
//   Deliver(m)    at send+lat  m lands in its receiver's pending inbox;
//                              per-link counters and the latency histogram
//                              advance here;
//   RoundEnd(r)   at r*Δ       pending inboxes are sorted into canonical
//                              (ascending-sender) order and delivered.
//
// Determinism contract: events are totally ordered by (time, phase, seq) —
// Deliver < RoundEnd < RoundStart at equal times, seq a monotone insertion
// counter — and every latency is a pure SipHash function of the message
// identity, so a simulation is a deterministic function of its arguments.
// No wall clock, no global RNG, no iteration over unordered containers.
//
// Faults flow through the static-adversary machinery (runtime/fault.h,
// src/adversary/): the FaultPlan compiles to omission predicates, and
// model-late messages (partial synchrony before GST) are recorded as
// receive omissions blamed on the lagging — declared-faulty — receiver.
// The emitted ExecutionTrace is therefore indistinguishable in vocabulary
// from a lockstep trace, and the src/analysis lint invariants
// (conservation, budget, determinism, quiescence) apply unchanged.
//
// Parity guarantee (tested in tests/sim/sim_parity_test.cpp): under the
// zero-jitter synchronous model with no fault plan, `simulate` produces
// decisions, message counts, and full traces bit-identical to
// `run_execution` for any protocol and adversary.

#include <cstdint>
#include <optional>
#include <vector>

#include "runtime/fault.h"
#include "runtime/process.h"
#include "runtime/sync_system.h"
#include "sim/fault.h"
#include "sim/link.h"
#include "sim/metrics.h"

namespace ba::sim {

struct SimConfig {
  LinkModel link{};
  /// Logical length of one round, in ticks. Latencies are resolved against
  /// this (0-latency models mean "the full round").
  SimTime round_ticks{256};
  Round max_rounds{1000};
  bool record_trace{true};
  bool stop_on_quiescence{true};
  /// Lint the recorded trace with the analysis linter and attach the report
  /// to the embedded RunResult. Requires record_trace: `simulate` throws
  /// std::invalid_argument on lint_trace without record_trace.
  bool lint_trace{false};
  /// Statically derived message budget forwarded to the linter's budget
  /// invariant (see RunOptions::message_budget).
  std::optional<std::uint64_t> message_budget;
  bool collect_metrics{true};
};

struct SimResult {
  /// Same contract as run_execution's result: trace, decisions, message
  /// counts, rounds, quiescence, optional lint report.
  RunResult run;
  NetMetrics metrics;
  /// Events popped from the queue (RoundStart + Deliver + RoundEnd).
  std::uint64_t events_processed{0};
  /// Logical time at which the simulation stopped.
  SimTime end_time{0};
};

/// Runs one simulated execution. The effective adversary is
/// `plan.apply_to(adversary)` with the link model's required_faulty() set
/// added; throws std::invalid_argument if the combined faulty set exceeds t
/// or the plan references out-of-range processes.
SimResult simulate(const SystemParams& params, const ProtocolFactory& protocol,
                   const std::vector<Value>& proposals,
                   const Adversary& adversary, const FaultPlan& plan,
                   const SimConfig& config = {});

/// Fault-plan-free convenience overload.
SimResult simulate(const SystemParams& params, const ProtocolFactory& protocol,
                   const std::vector<Value>& proposals,
                   const Adversary& adversary, const SimConfig& config = {});

}  // namespace ba::sim
