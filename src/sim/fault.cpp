#include "sim/fault.h"

#include <algorithm>
#include <stdexcept>

namespace ba::sim {

FaultPlan& FaultPlan::drop_link(ProcessId sender, ProcessId receiver,
                                Round from, Round until) {
  if (sender == receiver) {
    throw std::invalid_argument("drop_link: no self-links");
  }
  drops_.push_back({sender, receiver, from, until});
  return *this;
}

FaultPlan& FaultPlan::delay_link(ProcessId sender, ProcessId receiver,
                                 SimTime ticks, Round from, Round until) {
  if (sender == receiver) {
    throw std::invalid_argument("delay_link: no self-links");
  }
  delays_.push_back({{sender, receiver, from, until}, ticks});
  return *this;
}

FaultPlan& FaultPlan::partition(const ProcessSet& side, Round from,
                                Round until) {
  if (side.empty()) throw std::invalid_argument("partition: empty side");
  partitions_.push_back({side, from, until});
  return *this;
}

FaultPlan& FaultPlan::crash(ProcessId p, Round at) {
  crashes_.push_back({p, at, kForever});
  return *this;
}

FaultPlan& FaultPlan::crash_recover(ProcessId p, Round at, Round recover) {
  if (recover <= at) {
    throw std::invalid_argument("crash_recover: recover must be after crash");
  }
  crashes_.push_back({p, at, recover});
  return *this;
}

bool FaultPlan::empty() const {
  return drops_.empty() && delays_.empty() && crashes_.empty() &&
         partitions_.empty();
}

ProcessSet FaultPlan::blamed() const {
  ProcessSet out;
  for (const LinkWindow& w : drops_) out.insert(w.sender);
  for (const CrashWindow& c : crashes_) out.insert(c.p);
  for (const PartitionWindow& pw : partitions_) {
    for (ProcessId p : pw.side) out.insert(p);
  }
  return out;
}

Adversary FaultPlan::apply_to(const Adversary& base) const {
  if (empty()) return base;
  Adversary adv = base;
  adv.faulty = base.faulty.set_union(blamed());

  // The plan's drop tests are captured by value: the plan object need not
  // outlive the adversary.
  auto plan_send = [drops = drops_, crashes = crashes_,
                    partitions = partitions_](const MsgKey& k) {
    for (const LinkWindow& w : drops) {
      if (w.covers(k)) return true;
    }
    for (const CrashWindow& c : crashes) {
      if (c.p == k.sender && k.round >= c.at && k.round < c.recover) {
        return true;
      }
    }
    for (const PartitionWindow& pw : partitions) {
      if (k.round >= pw.from && k.round <= pw.until &&
          pw.side.contains(k.sender) && !pw.side.contains(k.receiver)) {
        return true;
      }
    }
    return false;
  };
  auto plan_receive = [partitions = partitions_](const MsgKey& k) {
    for (const PartitionWindow& pw : partitions) {
      if (k.round >= pw.from && k.round <= pw.until &&
          pw.side.contains(k.receiver) && !pw.side.contains(k.sender)) {
        return true;
      }
    }
    return false;
  };

  if (base.send_omit) {
    adv.send_omit = [prev = base.send_omit, plan_send](const MsgKey& k) {
      return plan_send(k) || prev(k);
    };
  } else {
    adv.send_omit = plan_send;
  }
  if (base.receive_omit) {
    adv.receive_omit = [prev = base.receive_omit,
                        plan_receive](const MsgKey& k) {
      return plan_receive(k) || prev(k);
    };
  } else if (!partitions_.empty()) {
    adv.receive_omit = plan_receive;
  }
  return adv;
}

SimTime FaultPlan::extra_delay(const MsgKey& k) const {
  SimTime extra = 0;
  for (const DelayWindow& d : delays_) {
    if (d.link.covers(k)) extra += d.ticks;
  }
  return extra;
}

bool FaultPlan::valid_for(std::uint32_t n) const {
  const auto in_range = [n](ProcessId p) { return p < n; };
  for (const LinkWindow& w : drops_) {
    if (!in_range(w.sender) || !in_range(w.receiver)) return false;
  }
  for (const DelayWindow& d : delays_) {
    if (!in_range(d.link.sender) || !in_range(d.link.receiver)) return false;
  }
  for (const CrashWindow& c : crashes_) {
    if (!in_range(c.p)) return false;
  }
  for (const PartitionWindow& pw : partitions_) {
    if (!std::all_of(pw.side.begin(), pw.side.end(), in_range)) return false;
  }
  return true;
}

}  // namespace ba::sim
