#include "sim/simulator.h"

#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "analysis/lint.h"
#include "runtime/serde.h"

namespace ba::sim {
namespace {

// Phase breaks ties at equal logical times: all deliveries due at a round
// boundary land before the round ends, and the next round starts last.
enum : std::uint8_t { kPhaseDeliver = 0, kPhaseRoundEnd = 1, kPhaseRoundStart = 2 };

struct Event {
  SimTime time{0};
  std::uint8_t phase{kPhaseDeliver};
  std::uint64_t seq{0};
  Round round{kNoRound};  // control events
  Message msg;            // kPhaseDeliver
  SimTime latency{0};     // kPhaseDeliver: for the histogram
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return std::tie(a.time, a.phase, a.seq) > std::tie(b.time, b.phase, b.seq);
  }
};

Event control_event(SimTime time, std::uint8_t phase, Round round) {
  Event ev;
  ev.time = time;
  ev.phase = phase;
  ev.round = round;
  return ev;
}

Event deliver_event(SimTime time, Round round, Message msg, SimTime latency) {
  Event ev;
  ev.time = time;
  ev.phase = kPhaseDeliver;
  ev.round = round;
  ev.msg = std::move(msg);
  ev.latency = latency;
  return ev;
}

}  // namespace

SimResult simulate(const SystemParams& params, const ProtocolFactory& protocol,
                   const std::vector<Value>& proposals,
                   const Adversary& adversary, const FaultPlan& plan,
                   const SimConfig& config) {
  if (!params.valid()) throw std::invalid_argument("invalid SystemParams");
  if (proposals.size() != params.n) {
    throw std::invalid_argument("proposals.size() != n");
  }
  if (config.round_ticks == 0) {
    throw std::invalid_argument("round_ticks must be >= 1");
  }
  if (!plan.valid_for(params.n)) {
    throw std::invalid_argument("fault plan references processes >= n");
  }
  if (config.lint_trace && !config.record_trace) {
    throw std::invalid_argument(
        "SimConfig::lint_trace requires record_trace: there is no trace to "
        "lint when recording is off");
  }

  // Compile the fault plan into the static adversary and fold in the link
  // model's lag group, so every drop the simulation can produce is an
  // omission attributable to a declared-faulty process.
  Adversary adv = plan.apply_to(adversary);
  const ProcessSet& lag = config.link.required_faulty();
  if (!lag.empty()) adv.faulty = adv.faulty.set_union(lag);
  if (adv.faulty.size() > params.t) {
    throw std::invalid_argument(
        "combined faulty set (adversary + plan + link lag group) exceeds t");
  }
  if (!adv.byzantine.is_subset_of(adv.faulty)) {
    throw std::invalid_argument("byzantine set must be a subset of faulty");
  }
  if (!adv.byzantine.empty() && !adv.byzantine_factory) {
    throw std::invalid_argument("byzantine set without byzantine_factory");
  }

  const std::uint32_t n = params.n;
  std::vector<std::unique_ptr<Process>> replicas(n);
  for (ProcessId p = 0; p < n; ++p) {
    ProcessContext ctx{params, p, proposals[p]};
    replicas[p] = adv.is_byzantine(p) ? adv.byzantine_factory(ctx)
                                      : protocol(ctx);
    if (!replicas[p]) throw std::runtime_error("factory returned null");
  }

  SimResult out;
  RunResult& result = out.run;
  result.decisions.assign(n, std::nullopt);
  result.trace.params = params;
  result.trace.faulty = adv.faulty;
  result.trace.procs.resize(n);
  for (ProcessId p = 0; p < n; ++p) {
    result.trace.procs[p].proposal = proposals[p];
  }
  const bool tracing = config.record_trace;
  const bool metering = config.collect_metrics;
  out.metrics.reset(n);

  RoundScratch scratch;
  scratch.prepare(adv, n, tracing);

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  std::uint64_t seq = 0;
  const auto push = [&queue, &seq](Event ev) {
    ev.seq = seq++;
    queue.push(std::move(ev));
  };
  const SimTime dt = config.round_ticks;
  if (config.max_rounds >= 1) {
    push(control_event(0, kPhaseRoundStart, 1));
  }

  std::uint64_t sent_in_round = 0;
  // Last sender delivered per receiver within the current round, for the
  // reorder metric (kNoProcess = nothing arrived yet this round).
  std::vector<ProcessId> last_sender(n, kNoProcess);

  while (!queue.empty()) {
    Event ev = queue.top();
    queue.pop();
    ++out.events_processed;
    out.end_time = ev.time;

    switch (ev.phase) {
      case kPhaseRoundStart: {
        const Round r = ev.round;
        const SimTime round_start = SimTime{r - 1} * dt;
        sent_in_round = 0;
        // Outbox computation mirrors run_execution phase 1 exactly: every
        // process's round-r sends are a function of its state at the start
        // of round r, normalized before any routing happens.
        for (ProcessId p = 0; p < n; ++p) {
          normalize_outbox_into(replicas[p]->outbox_for_round(r), p, r, n,
                                scratch.seen, scratch.outs[p]);
          scratch.inboxes[p].clear();
          last_sender[p] = kNoProcess;
          if (tracing) {
            RoundEvents& re = scratch.events[p];
            re.sent.clear();
            re.send_omitted.clear();
            re.received.clear();
            re.receive_omitted.clear();
          }
        }
        // Routing: omissions are decided now (predicates over message
        // identities are time-invariant), in ascending-sender order so the
        // staged trace events match the lockstep executor's canonical
        // order; surviving messages become Deliver events at
        // round_start + latency.
        for (ProcessId p = 0; p < n; ++p) {
          const bool correct_sender = scratch.faulty[p] == 0;
          const bool check_send = scratch.may_drop_send[p] != 0;
          for (Message& m : scratch.outs[p]) {
            if (check_send && adv.send_omit(m.key())) {
              if (tracing) scratch.events[p].send_omitted.push_back(m);
              if (metering) ++out.metrics.link(p, m.receiver).dropped;
              continue;
            }
            ++sent_in_round;
            ++result.messages_sent_total;
            if (correct_sender) ++result.messages_sent_by_correct;
            if (tracing) scratch.events[p].sent.push_back(m);
            if (metering) ++out.metrics.sent_by[p];
            if (scratch.may_drop_receive[m.receiver] != 0 &&
                adv.receive_omit(m.key())) {
              if (tracing) {
                scratch.events[m.receiver].receive_omitted.push_back(m);
              }
              if (metering) ++out.metrics.link(p, m.receiver).dropped;
              continue;
            }
            SimTime lat = config.link.latency(m.key(), dt);
            if (lat <= dt) {
              // Fault-plan delay stays within model bounds: it can push a
              // delivery to the round boundary but never past it.
              lat = std::min(lat + plan.extra_delay(m.key()), dt);
              push(deliver_event(round_start + lat, r, m, lat));
            } else {
              // Late: the round-based state machine can never see this
              // message — it is an omission pinned on the (declared
              // faulty) lagging receiver.
              if (tracing) {
                scratch.events[m.receiver].receive_omitted.push_back(m);
              }
              if (metering) ++out.metrics.link(p, m.receiver).late;
            }
          }
        }
        push(control_event(SimTime{r} * dt, kPhaseRoundEnd, r));
        break;
      }

      case kPhaseDeliver: {
        Message& m = ev.msg;
        if (metering) {
          LinkStats& l = out.metrics.link(m.sender, m.receiver);
          ++l.delivered;
          l.payload_bytes += encode_value(m.payload).size();
          ++out.metrics.delivered_to[m.receiver];
          ++out.metrics.deliveries;
          out.metrics.latency.record(ev.latency);
          if (last_sender[m.receiver] != kNoProcess &&
              m.sender < last_sender[m.receiver]) {
            ++out.metrics.reordered;
          }
          last_sender[m.receiver] = m.sender;
        }
        scratch.inboxes[m.receiver].push_back(std::move(m));
        break;
      }

      case kPhaseRoundEnd: {
        const Round r = ev.round;
        for (ProcessId p = 0; p < n; ++p) {
          Inbox& inbox = scratch.inboxes[p];
          // Arrival order is jitter-dependent; delivery order is canonical.
          sort_inbox(inbox);
          if (tracing) scratch.events[p].received = inbox;
          replicas[p]->deliver(r, inbox);
          if (!result.decisions[p].has_value()) {
            if (auto d = replicas[p]->decision()) {
              result.decisions[p] = d;
              result.trace.procs[p].decision = d;
              result.trace.procs[p].decision_round = r;
            }
          }
        }
        if (tracing) {
          for (ProcessId p = 0; p < n; ++p) {
            result.trace.procs[p].rounds.push_back(
                std::move(scratch.events[p]));
          }
        }
        result.rounds_executed = r;
        result.trace.rounds = r;

        bool stop = false;
        if (config.stop_on_quiescence && sent_in_round == 0) {
          bool all_quiescent = true;
          for (ProcessId p = 0; p < n; ++p) {
            if (!replicas[p]->quiescent()) {
              all_quiescent = false;
              break;
            }
          }
          if (all_quiescent) {
            result.quiesced = true;
            result.trace.quiesced = true;
            stop = true;
          }
        }
        if (!stop && r < config.max_rounds) {
          push(control_event(SimTime{r} * dt, kPhaseRoundStart, r + 1));
        }
        break;
      }

      default:
        throw std::logic_error("unknown event phase");
    }
  }

  if (config.lint_trace) {
    analysis::LintOptions lint_options;
    lint_options.message_budget = config.message_budget;
    result.lint =
        analysis::lint_execution(result.trace, protocol, lint_options);
  }
  // Surface the network observations through the backend-neutral seam
  // (engine::ExecutionBackend consumers read RunResult::net; SimResult
  // keeps its own copy for the simulator-native callers).
  if (metering) result.net = out.metrics;
  return out;
}

SimResult simulate(const SystemParams& params, const ProtocolFactory& protocol,
                   const std::vector<Value>& proposals,
                   const Adversary& adversary, const SimConfig& config) {
  return simulate(params, protocol, proposals, adversary, FaultPlan{}, config);
}

}  // namespace ba::sim
