#include "sim/link.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "crypto/siphash.h"

namespace ba::sim {
namespace {

/// Deterministic per-message sample in [lo, hi] (inclusive), keyed by the
/// message identity under a sim-specific domain-separation context.
SimTime sample(std::uint64_t seed, const MsgKey& k, SimTime lo, SimTime hi) {
  if (hi <= lo) return lo;
  const std::array<std::uint8_t, 12> buf{
      static_cast<std::uint8_t>(k.sender),
      static_cast<std::uint8_t>(k.sender >> 8),
      static_cast<std::uint8_t>(k.sender >> 16),
      static_cast<std::uint8_t>(k.sender >> 24),
      static_cast<std::uint8_t>(k.receiver),
      static_cast<std::uint8_t>(k.receiver >> 8),
      static_cast<std::uint8_t>(k.receiver >> 16),
      static_cast<std::uint8_t>(k.receiver >> 24),
      static_cast<std::uint8_t>(k.round),
      static_cast<std::uint8_t>(k.round >> 8),
      static_cast<std::uint8_t>(k.round >> 16),
      static_cast<std::uint8_t>(k.round >> 24),
  };
  const std::uint64_t h =
      crypto::siphash24(crypto::derive_key(seed, 0x51u /* 'sim' link */), buf);
  return lo + h % (hi - lo + 1);
}

const ProcessSet kEmptySet;

}  // namespace

LinkModel LinkModel::synchronous(SimTime latency) {
  LinkModel m;
  m.kind = Kind::kSynchronous;
  m.min_latency = latency;
  m.max_latency = latency;
  return m;
}

LinkModel LinkModel::jitter(SimTime min, SimTime max, std::uint64_t seed) {
  if (min > max) throw std::invalid_argument("jitter: min > max");
  LinkModel m;
  m.kind = Kind::kJitter;
  m.min_latency = min;
  m.max_latency = max;
  m.seed = seed;
  return m;
}

LinkModel LinkModel::partial_synchrony(ProcessSet lag, Round gst,
                                       std::uint64_t seed,
                                       SimTime post_latency) {
  if (gst == kNoRound) throw std::invalid_argument("gst must be a round >= 1");
  LinkModel m;
  m.kind = Kind::kPartialSynchrony;
  m.lag_group = std::move(lag);
  m.gst_round = gst;
  m.seed = seed;
  m.min_latency = post_latency;
  m.max_latency = post_latency;
  return m;
}

SimTime LinkModel::latency(const MsgKey& k, SimTime round_ticks) const {
  // A latency of 0 resolves to "the full round": arrival exactly at the
  // round boundary, the synchronous-model reading of Δ = round length.
  const auto resolve = [round_ticks](SimTime lat) {
    if (lat == 0) return round_ticks;
    return std::min(lat, round_ticks);
  };
  switch (kind) {
    case Kind::kSynchronous:
      return resolve(min_latency);
    case Kind::kJitter: {
      const SimTime lo = std::max<SimTime>(1, std::min(min_latency,
                                                       round_ticks));
      const SimTime hi = resolve(max_latency);
      return sample(seed, k, lo, hi);
    }
    case Kind::kPartialSynchrony: {
      const bool lagging = k.round < gst_round &&
                           lag_group.contains(k.receiver) &&
                           !lag_group.contains(k.sender);
      if (!lagging) return resolve(min_latency);
      // Pre-GST cross-group delivery: sampled beyond the synchrony bound.
      // Anything past round_ticks is late and becomes a receive omission.
      return sample(seed, k, 1, 2 * round_ticks);
    }
  }
  return round_ticks;  // unreachable
}

const ProcessSet& LinkModel::required_faulty() const {
  return kind == Kind::kPartialSynchrony ? lag_group : kEmptySet;
}

const char* LinkModel::name() const {
  switch (kind) {
    case Kind::kSynchronous: return "synchronous";
    case Kind::kJitter: return "jitter";
    case Kind::kPartialSynchrony: return "partial-synchrony";
  }
  return "?";
}

}  // namespace ba::sim
