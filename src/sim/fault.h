#pragma once

// Fault-injection plans for the simulator.
//
// A FaultPlan is a declarative schedule of network-level faults — link
// outages, per-link extra delay, partitions, crashes and crash-recoveries —
// that compiles down to the repo's static-adversary vocabulary
// (runtime/fault.h) plus per-link timing adjustments. Compiling instead of
// bypassing the Adversary keeps every simulated execution inside the
// paper's model: each injected drop is an omission attributable to a
// declared-faulty endpoint, so the traces the simulator emits satisfy the
// analysis linter's conservation and budget invariants unchanged.
//
// Blame discipline (matches src/adversary/omission.cpp):
//   * link outages and crashes are send-omissions blamed on the sender;
//   * partitions cut both directions, blamed entirely on the chosen side
//     (send-omission outbound, receive-omission inbound) — exactly
//     `partition_from`, but windowed to a round interval;
//   * extra delay is clamped to the round boundary ("within model bounds"),
//     so it reorders deliveries and shows up in latency metrics without
//     ever turning into an unattributable loss.

#include <cstdint>
#include <vector>

#include "runtime/fault.h"
#include "runtime/message.h"
#include "runtime/types.h"
#include "sim/link.h"

namespace ba::sim {

/// Sentinel for "until forever" round windows.
inline constexpr Round kForever = std::numeric_limits<Round>::max();

class FaultPlan {
 public:
  /// Drop every message sender->receiver in rounds [from, until].
  FaultPlan& drop_link(ProcessId sender, ProcessId receiver, Round from = 1,
                       Round until = kForever);
  /// Add `ticks` latency to sender->receiver in rounds [from, until]
  /// (clamped to the round boundary at delivery-scheduling time).
  FaultPlan& delay_link(ProcessId sender, ProcessId receiver, SimTime ticks,
                        Round from = 1, Round until = kForever);
  /// Cut both directions between `side` and its complement in rounds
  /// [from, until], blamed on `side`.
  FaultPlan& partition(const ProcessSet& side, Round from = 1,
                       Round until = kForever);
  /// Crash: p send-omits everything from round `at` on.
  FaultPlan& crash(ProcessId p, Round at);
  /// Crash-recovery: p send-omits everything in rounds [at, recover).
  FaultPlan& crash_recover(ProcessId p, Round at, Round recover);

  [[nodiscard]] bool empty() const;

  /// The processes the plan blames its drops on. `simulate` requires them
  /// (plus the link model's required_faulty) to fit the adversary budget.
  [[nodiscard]] ProcessSet blamed() const;

  /// Merges the plan's drops into `base`: union of faulty sets, omission
  /// predicates extended with the plan's windows. The base predicates keep
  /// their original eligibility rules (consulted by the runtime only for
  /// faulty endpoints).
  [[nodiscard]] Adversary apply_to(const Adversary& base) const;

  /// Extra delivery latency for message `k` (0 when no delay window
  /// matches; windows on the same link accumulate).
  [[nodiscard]] SimTime extra_delay(const MsgKey& k) const;

  /// All referenced process ids are < n.
  [[nodiscard]] bool valid_for(std::uint32_t n) const;

 private:
  struct LinkWindow {
    ProcessId sender{kNoProcess};
    ProcessId receiver{kNoProcess};
    Round from{1};
    Round until{kForever};
    [[nodiscard]] bool covers(const MsgKey& k) const {
      return k.sender == sender && k.receiver == receiver && k.round >= from &&
             k.round <= until;
    }
  };
  struct DelayWindow {
    LinkWindow link;
    SimTime ticks{0};
  };
  struct CrashWindow {
    ProcessId p{kNoProcess};
    Round at{1};
    Round recover{kForever};  // exclusive; kForever = never recovers
  };
  struct PartitionWindow {
    ProcessSet side;
    Round from{1};
    Round until{kForever};
  };

  std::vector<LinkWindow> drops_;
  std::vector<DelayWindow> delays_;
  std::vector<CrashWindow> crashes_;
  std::vector<PartitionWindow> partitions_;
};

}  // namespace ba::sim
