#include "sim/sync_adapter.h"

#include <utility>

namespace ba::sim {

SimConfig sync_config(const RunOptions& options) {
  SimConfig config;
  config.link = LinkModel::synchronous();
  config.round_ticks = 1;
  config.max_rounds = options.max_rounds;
  config.record_trace = options.record_trace;
  config.stop_on_quiescence = options.stop_on_quiescence;
  config.lint_trace = options.lint_trace;
  config.message_budget = options.message_budget;
  config.collect_metrics = false;
  return config;
}

RunResult run_execution_sim(const SystemParams& params,
                            const ProtocolFactory& protocol,
                            const std::vector<Value>& proposals,
                            const Adversary& adversary,
                            const RunOptions& options) {
  SimResult res =
      simulate(params, protocol, proposals, adversary, sync_config(options));
  return std::move(res.run);
}

}  // namespace ba::sim
