#pragma once

// SyncAdapter: the lockstep-parity bridge between the discrete-event
// simulator and the synchronous round executor.
//
// `run_execution_sim` accepts exactly the arguments of
// `run_execution` (runtime/sync_system.h) and runs them through the
// simulator under the zero-jitter synchronous link model. The contract —
// asserted protocol-by-protocol in tests/sim/sim_parity_test.cpp — is
// bit-identical output: same decisions, same message counts, same full
// event trace, same quiescence verdict. This is the executable proof that
// the event-loop substrate implements the paper's synchronous model (§2),
// not an approximation of it, and it makes the simulator a drop-in
// executor for every experiment in the repo.

#include <vector>

#include "runtime/sync_system.h"
#include "sim/simulator.h"

namespace ba::sim {

/// Runs one execution through the simulator's synchronous model with
/// semantics identical to `run_execution`.
RunResult run_execution_sim(const SystemParams& params,
                            const ProtocolFactory& protocol,
                            const std::vector<Value>& proposals,
                            const Adversary& adversary,
                            const RunOptions& options = {});

/// Translates lockstep RunOptions into the equivalent SimConfig (zero
/// jitter, one tick per round, metrics off — the pure parity substrate).
SimConfig sync_config(const RunOptions& options);

}  // namespace ba::sim
