#pragma once

// Per-link / per-process network metrics collected by the simulator.
//
// The metric types themselves moved to runtime/net_metrics.h so that every
// execution backend can surface them through `RunResult::net`
// (src/engine/); this header re-exports them under ba::sim for the
// simulator-facing code and the existing callers.

#include "runtime/net_metrics.h"
#include "sim/link.h"

namespace ba::sim {

using LatencyHistogram = ba::LatencyHistogram;
using LinkStats = ba::LinkStats;
using NetMetrics = ba::NetMetrics;

}  // namespace ba::sim
