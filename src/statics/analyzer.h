#pragma once

// The static communication-complexity analyzer: folds protocol CommSpecs
// (statics/comm_spec.h) into closed-form worst-case bounds, cross-checks
// them against the paper's lower bounds, and derives the concrete per-(n, t)
// budgets that gate the dynamic A.1 linter.
//
// The cross-check direction matters: the paper proves every Byzantine
// agreement problem costs Omega(t^2) messages (Theorem 2/3, Dolev-Reischuk
// style), so a protocol that CLAIMS correctness while its static bound dips
// below the t^2/32 threshold is reporting a spec bug — not a breakthrough.
// The deliberately sub-quadratic attack targets are exempt
// (CommSpec::claims_correct == false), as are problem classes without the
// Agreement property (approximate agreement, k-set agreement: §7 explicitly
// leaves them outside the theorem).
//
// Nothing here executes a protocol. The bridge to dynamic observation is the
// budget: `budget_at` evaluates the message polynomial at a concrete
// (n, t, f) point, and the linter's budget invariant
// (analysis/lint.h, LintOptions::message_budget) fails any trace whose
// correct processes sent more than the static bound allows.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "runtime/types.h"
#include "statics/comm_spec.h"
#include "statics/poly.h"

namespace ba::statics {

/// Closed-form worst-case bounds of one protocol, as polynomials in n, t, f.
struct StaticBounds {
  std::string protocol;
  std::string problem;
  bool claims_correct{true};
  std::string resilience;
  /// Messages sent by processes following the protocol, any execution.
  Poly messages;
  /// Worst-case termination round.
  Poly rounds;
  /// Canonical-encoding payload bytes; nullopt when superpolynomial (EIG).
  std::optional<Poly> payload_bytes;
  std::string notes;
};

/// Folds a spec into its closed-form bounds.
[[nodiscard]] StaticBounds analyze(const CommSpec& spec);

/// Concrete budgets at one (n, t, f) point.
struct Budget {
  std::uint64_t messages{0};
  std::uint64_t rounds{0};
  /// nullopt when the bytes bound is superpolynomial.
  std::optional<std::uint64_t> payload_bytes;
};

/// Evaluates the bounds at an explicit actual-fault count f <= t. The
/// paper's lower bound is a statement about small f (Ω(t²) messages even
/// when few processes actually misbehave), so f is a first-class axis here:
/// fault-axis sweeps chart budget_at(bounds, params, f) for f in 0..t
/// against observed cost. Bounds must be monotone non-decreasing in f
/// (property-tested in tests/statics/bounds_test.cpp) — an adversary never
/// gets weaker by corrupting fewer processes than its budget.
[[nodiscard]] Budget budget_at(const StaticBounds& bounds,
                               const SystemParams& params, std::uint32_t f);

/// The worst case f = t: what the dynamic linter's budget invariant gates
/// every run against (the omission model cannot make correct processes send
/// more with fewer actual faults than the structural cap already allows).
[[nodiscard]] Budget budget_at(const StaticBounds& bounds,
                               const SystemParams& params);

/// The Lemma 1 threshold t^2/32, restated here because statics sits below
/// lowerbound/ in the layering. Mirrors lowerbound::lemma1_bound; the
/// statics test suite asserts the two never drift.
[[nodiscard]] inline std::uint64_t static_lemma1_bound(std::uint32_t t) {
  return static_cast<std::uint64_t>(t) * t / 32;
}

/// Whether the paper's Omega(t^2) lower bound covers this problem class
/// (it needs the Agreement property; approximate and k-set agreement are
/// outside it, §7).
[[nodiscard]] bool lower_bound_applies(const std::string& problem);

/// One lower-bound cross-check failure: a correctness-claiming protocol
/// whose static bound dips below the threshold at a concrete point.
struct CrossCheckFinding {
  std::string protocol;
  SystemParams params;
  std::uint64_t static_messages{0};
  std::uint64_t lower_bound{0};
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

/// Evaluates every bound at every grid point and reports the specs that
/// violate the lower bound they are subject to. An empty result means the
/// spec table is consistent with the paper.
[[nodiscard]] std::vector<CrossCheckFinding> cross_check(
    const std::vector<StaticBounds>& bounds,
    const std::vector<SystemParams>& grid);

/// The default cross-check grid: maximal-t and n > 3t points across a range
/// of sizes, covering both resilience regimes.
[[nodiscard]] std::vector<SystemParams> standard_cross_check_grid();

/// Renders the bounds as a GitHub-flavored markdown table; when `at` is
/// given, adds concrete budget columns evaluated at that point.
void write_bounds_markdown(std::ostream& os,
                           const std::vector<StaticBounds>& bounds,
                           const std::optional<SystemParams>& at);

/// Machine-readable form: one object per protocol with the closed forms as
/// strings and, when `at` is given, the concrete budgets.
void write_bounds_json(std::ostream& os,
                       const std::vector<StaticBounds>& bounds,
                       const std::optional<SystemParams>& at);

}  // namespace ba::statics
