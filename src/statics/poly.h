#pragma once

// Symbolic polynomials over the system parameters n, t, f — the closed-form
// currency of the static communication-complexity analyzer.
//
// A `Poly` is a sum of integer-coefficient monomials n^a * t^b * f^c. The
// analyzer builds bounds by ordinary arithmetic on these (e.g. the
// phase-king message bound (t + 1) * (2n(n-1) + (n-1)) is literally that
// expression over `Poly::n()` / `Poly::t()`), renders them canonically for
// the golden-bounds table, and evaluates them at concrete (n, t, f) points
// to derive the per-run budgets the dynamic linter enforces.
//
// Evaluation saturates at INT64_MAX instead of overflowing: a budget that
// clamps is still a sound upper bound, and the analyzer never needs exact
// values that large.

#include <cstdint>
#include <string>
#include <vector>

namespace ba::statics {

/// One monomial n^a * t^b * f^c (exponents only; the coefficient lives in
/// the Poly term list).
struct Monomial {
  std::uint8_t n_exp{0};
  std::uint8_t t_exp{0};
  std::uint8_t f_exp{0};

  [[nodiscard]] unsigned total_degree() const {
    return static_cast<unsigned>(n_exp) + t_exp + f_exp;
  }
  friend bool operator==(const Monomial&, const Monomial&) = default;
};

/// Canonical term order: total degree descending, then n-heavy before
/// t-heavy before f-heavy — so "n^2 + n*t + t + 1" always renders that way.
[[nodiscard]] bool monomial_before(const Monomial& a, const Monomial& b);

class Poly {
 public:
  Poly() = default;
  /// The constant polynomial `c`.
  explicit Poly(std::int64_t c);

  /// The variables.
  static Poly n();
  static Poly t();
  static Poly f();

  Poly& operator+=(const Poly& other);
  Poly& operator-=(const Poly& other);
  Poly& operator*=(const Poly& other);

  friend Poly operator+(Poly a, const Poly& b) { return a += b; }
  friend Poly operator-(Poly a, const Poly& b) { return a -= b; }
  friend Poly operator*(Poly a, const Poly& b) { return a *= b; }
  friend Poly operator+(Poly a, std::int64_t c) { return a += Poly(c); }
  friend Poly operator-(Poly a, std::int64_t c) { return a -= Poly(c); }
  friend Poly operator*(Poly a, std::int64_t c) { return a *= Poly(c); }
  friend Poly operator+(std::int64_t c, Poly a) { return a += Poly(c); }
  friend Poly operator*(std::int64_t c, Poly a) { return a *= Poly(c); }

  /// Evaluates at a concrete point, saturating at INT64_MAX (and clamping
  /// below at 0: a bound is a count, and every spec polynomial is
  /// non-negative over its admissible domain t < n, f <= t).
  [[nodiscard]] std::int64_t eval(std::int64_t n_value, std::int64_t t_value,
                                  std::int64_t f_value) const;

  /// Canonical rendering, e.g. "2*n^2*t + n - 1"; "0" for the zero poly.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool zero() const { return terms_.empty(); }
  /// Highest total degree among the terms (0 for constants and zero).
  [[nodiscard]] unsigned degree() const;

  friend bool operator==(const Poly&, const Poly&) = default;

 private:
  void add_term(const Monomial& m, std::int64_t coeff);

  /// Sorted by `monomial_before`; coefficients are never zero.
  std::vector<std::pair<Monomial, std::int64_t>> terms_;
};

}  // namespace ba::statics
