#include "statics/poly.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace ba::statics {
namespace {

/// Saturating accumulate in 128-bit then clamp to [0, INT64_MAX].
std::int64_t clamp128(__int128 v) {
  if (v < 0) return 0;
  if (v > static_cast<__int128>(std::numeric_limits<std::int64_t>::max())) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return static_cast<std::int64_t>(v);
}

__int128 pow128(std::int64_t base, unsigned exp) {
  __int128 out = 1;
  for (unsigned i = 0; i < exp; ++i) {
    out *= base;
    // n, t, f are system sizes (well under 2^32) and exponents are tiny, so
    // this cannot overflow 128 bits for any spec the analyzer builds.
  }
  return out;
}

}  // namespace

bool monomial_before(const Monomial& a, const Monomial& b) {
  if (a.total_degree() != b.total_degree()) {
    return a.total_degree() > b.total_degree();
  }
  if (a.n_exp != b.n_exp) return a.n_exp > b.n_exp;
  if (a.t_exp != b.t_exp) return a.t_exp > b.t_exp;
  return a.f_exp > b.f_exp;
}

Poly::Poly(std::int64_t c) {
  if (c != 0) terms_.emplace_back(Monomial{}, c);
}

Poly Poly::n() {
  Poly p;
  p.terms_.emplace_back(Monomial{1, 0, 0}, 1);
  return p;
}

Poly Poly::t() {
  Poly p;
  p.terms_.emplace_back(Monomial{0, 1, 0}, 1);
  return p;
}

Poly Poly::f() {
  Poly p;
  p.terms_.emplace_back(Monomial{0, 0, 1}, 1);
  return p;
}

void Poly::add_term(const Monomial& m, std::int64_t coeff) {
  if (coeff == 0) return;
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), m,
      [](const auto& term, const Monomial& key) {
        return monomial_before(term.first, key);
      });
  if (it != terms_.end() && it->first == m) {
    it->second += coeff;
    if (it->second == 0) terms_.erase(it);
  } else {
    terms_.insert(it, {m, coeff});
  }
}

Poly& Poly::operator+=(const Poly& other) {
  for (const auto& [m, c] : other.terms_) add_term(m, c);
  return *this;
}

Poly& Poly::operator-=(const Poly& other) {
  for (const auto& [m, c] : other.terms_) add_term(m, -c);
  return *this;
}

Poly& Poly::operator*=(const Poly& other) {
  std::vector<std::pair<Monomial, std::int64_t>> lhs = std::move(terms_);
  terms_.clear();
  for (const auto& [ma, ca] : lhs) {
    for (const auto& [mb, cb] : other.terms_) {
      const Monomial m{static_cast<std::uint8_t>(ma.n_exp + mb.n_exp),
                       static_cast<std::uint8_t>(ma.t_exp + mb.t_exp),
                       static_cast<std::uint8_t>(ma.f_exp + mb.f_exp)};
      add_term(m, ca * cb);
    }
  }
  return *this;
}

std::int64_t Poly::eval(std::int64_t n_value, std::int64_t t_value,
                        std::int64_t f_value) const {
  __int128 sum = 0;
  for (const auto& [m, c] : terms_) {
    sum += static_cast<__int128>(c) * pow128(n_value, m.n_exp) *
           pow128(t_value, m.t_exp) * pow128(f_value, m.f_exp);
  }
  return clamp128(sum);
}

std::string Poly::to_string() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& [m, c] : terms_) {
    const std::int64_t mag = c < 0 ? -c : c;
    if (first) {
      if (c < 0) os << "-";
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    first = false;
    const bool has_vars = m.total_degree() > 0;
    if (mag != 1 || !has_vars) os << mag;
    bool star = mag != 1 || !has_vars;
    const auto var = [&](const char* name, std::uint8_t exp) {
      if (exp == 0) return;
      if (star) os << "*";
      os << name;
      if (exp > 1) os << "^" << static_cast<int>(exp);
      star = true;
    };
    var("n", m.n_exp);
    var("t", m.t_exp);
    var("f", m.f_exp);
  }
  return os.str();
}

unsigned Poly::degree() const {
  unsigned deg = 0;
  for (const auto& term : terms_) {
    deg = std::max(deg, term.first.total_degree());
  }
  return deg;
}

}  // namespace ba::statics
