#pragma once

// CommSpec — the declarative round-structure IR of the static
// communication-complexity analyzer (src/statics/).
//
// Each protocol in src/protocols/ declares one CommSpec: a list of round
// blocks, each spanning a symbolic number of rounds and carrying the message
// patterns active in those rounds (how many processes send, to how many
// receivers, with what payload size class, at what signature-chain depth).
// The spec never executes anything — it is the protocol author's statement
// of the WORST-CASE communication structure, in the same vocabulary the
// paper's upper-bound arguments use ("the sender multicasts", "every process
// relays at most two values", "backers multicast their bit").
//
// The analyzer (statics/analyzer.h) folds a spec into closed-form bounds
// (messages / payload bytes / rounds as polynomials in n, t, f), cross-checks
// them against the paper's lower bounds, and evaluates them into the concrete
// per-(n, t) budgets that gate the dynamic A.1 linter.
//
// Soundness contract: every pattern bounds the messages CORRECT processes
// send in ANY execution (Byzantine peers included), because that is the
// quantity the paper counts (§2) and the dynamic linter compares against.
// Over-approximation is fine (a loose bound is still a bound); an
// under-approximation is a spec bug that the conformance suite
// (tests/statics/) catches by running the protocol on both backends.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "statics/poly.h"

namespace ba::statics {

/// Worst-case payload size class of a message pattern. The analyzer maps
/// each class to a canonical-encoding byte envelope (see
/// `payload_byte_bound`); classes whose encoding grows faster than any
/// polynomial (the EIG report tree) yield an unbounded-bytes verdict.
enum class PayloadClass : std::uint8_t {
  kBit,             // a tagged bit
  kValue,           // one opaque Value of bounded size
  kValueSet,        // up to n values (FloodSet sets, IC vectors)
  kSignatureChain,  // value + chain of `sig_depth` signatures
  kEigReport,       // EIG level report: O(n^t) entries — superpolynomial
};

[[nodiscard]] const char* to_string(PayloadClass payload);

/// Canonical-encoding byte envelope for one payload of `payload` class,
/// bundled `copies` times (parallel composition ships `copies` sub-payloads
/// per wire message). nullopt for superpolynomial classes.
[[nodiscard]] std::optional<Poly> payload_byte_bound(PayloadClass payload,
                                                     const Poly& sig_depth,
                                                     const Poly& copies);

/// One message pattern: `senders` processes each send to
/// `receivers_per_sender` receivers. By default the pattern fires once per
/// round of its block; `per_block` patterns fire at most `senders` times over
/// the WHOLE block regardless of its round count (Dolev-Strong relays: each
/// process relays at most two values over the entire execution).
struct MessagePattern {
  std::string label;
  Poly senders;
  Poly receivers_per_sender;
  PayloadClass payload{PayloadClass::kValue};
  /// kSignatureChain only: chain length bound.
  Poly sig_depth{};
  /// Sub-payloads bundled per wire message (parallel composition).
  Poly payload_copies{Poly(1)};
  bool per_block{false};
};

/// A contiguous block of `rounds` rounds sharing the same active patterns.
struct RoundBlock {
  std::string label;
  Poly rounds;
  std::vector<MessagePattern> patterns;
};

/// The full static declaration of one protocol's communication structure.
struct CommSpec {
  /// Stable registry name (matches the CLI / sweep surface).
  std::string protocol;
  /// Alternate names the surfaces use for the same construction
  /// (e.g. the CLI's "beacon" for the sweep's "leader-beacon").
  std::vector<std::string> aliases;
  /// Problem class tag: "weak-consensus", "strong-consensus", "broadcast",
  /// "interactive-consistency", "crusader-broadcast", "graded-broadcast",
  /// "crash-consensus", "approximate-agreement", "k-set-agreement".
  std::string problem;
  /// False for the deliberately broken sub-quadratic attack targets: they
  /// are exempt from the lower-bound cross-check (their whole point is to
  /// dip below the bound and get broken by the Theorem 2 engine).
  bool claims_correct{true};
  /// Resilience condition, documentation only ("t < n", "n > 3t").
  std::string resilience;
  /// Worst-case termination round.
  Poly rounds;
  std::vector<RoundBlock> blocks;
  std::string notes;
};

/// Total-message bound of one block: per-round patterns contribute
/// rounds * senders * receivers, per-block patterns senders * receivers.
[[nodiscard]] Poly block_message_bound(const RoundBlock& block);

/// Total-message bound of the whole spec (sum over blocks).
[[nodiscard]] Poly spec_message_bound(const CommSpec& spec);

/// Total payload-byte bound; nullopt as soon as any pattern's payload class
/// is superpolynomial.
[[nodiscard]] std::optional<Poly> spec_payload_byte_bound(const CommSpec& spec);

}  // namespace ba::statics
