#include "statics/analyzer.h"

#include <ostream>
#include <sstream>

namespace ba::statics {
namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

StaticBounds analyze(const CommSpec& spec) {
  StaticBounds bounds;
  bounds.protocol = spec.protocol;
  bounds.problem = spec.problem;
  bounds.claims_correct = spec.claims_correct;
  bounds.resilience = spec.resilience;
  bounds.messages = spec_message_bound(spec);
  bounds.rounds = spec.rounds;
  bounds.payload_bytes = spec_payload_byte_bound(spec);
  bounds.notes = spec.notes;
  return bounds;
}

Budget budget_at(const StaticBounds& bounds, const SystemParams& params,
                 std::uint32_t f) {
  const auto n = static_cast<std::int64_t>(params.n);
  const auto t = static_cast<std::int64_t>(params.t);
  const auto fv = static_cast<std::int64_t>(f);
  Budget budget;
  budget.messages =
      static_cast<std::uint64_t>(bounds.messages.eval(n, t, fv));
  budget.rounds = static_cast<std::uint64_t>(bounds.rounds.eval(n, t, fv));
  if (bounds.payload_bytes) {
    budget.payload_bytes =
        static_cast<std::uint64_t>(bounds.payload_bytes->eval(n, t, fv));
  }
  return budget;
}

Budget budget_at(const StaticBounds& bounds, const SystemParams& params) {
  return budget_at(bounds, params, params.t);
}

bool lower_bound_applies(const std::string& problem) {
  // The Theorem 2/3 machinery needs the Agreement property; the paper's §7
  // names approximate and k-set agreement as the problems outside it.
  return problem != "approximate-agreement" && problem != "k-set-agreement";
}

std::string CrossCheckFinding::to_string() const {
  std::ostringstream os;
  os << protocol << " at n=" << params.n << " t=" << params.t
     << ": static bound " << static_messages << " < t^2/32 = " << lower_bound
     << " (" << detail << ")";
  return os.str();
}

std::vector<CrossCheckFinding> cross_check(
    const std::vector<StaticBounds>& bounds,
    const std::vector<SystemParams>& grid) {
  std::vector<CrossCheckFinding> findings;
  for (const StaticBounds& b : bounds) {
    if (!b.claims_correct || !lower_bound_applies(b.problem)) continue;
    for (const SystemParams& params : grid) {
      if (!params.valid()) continue;
      const std::uint64_t lower = static_lemma1_bound(params.t);
      const Budget budget = budget_at(b, params);
      if (budget.messages < lower) {
        CrossCheckFinding finding;
        finding.protocol = b.protocol;
        finding.params = params;
        finding.static_messages = budget.messages;
        finding.lower_bound = lower;
        finding.detail =
            "a correct " + b.problem +
            " protocol cannot beat the paper's lower bound — the CommSpec "
            "under-counts its communication (spec bug, not a breakthrough)";
        findings.push_back(std::move(finding));
      }
    }
  }
  return findings;
}

std::vector<SystemParams> standard_cross_check_grid() {
  // Maximal-t points stress authenticated (t < n) protocols; n > 3t points
  // stress the unauthenticated regime. Sizes span the sweep/bench range.
  return {{8, 7},  {12, 11}, {16, 15}, {32, 31}, {64, 63},
          {16, 5}, {32, 10}, {64, 21}, {128, 42}};
}

void write_bounds_markdown(std::ostream& os,
                           const std::vector<StaticBounds>& bounds,
                           const std::optional<SystemParams>& at) {
  os << "| protocol | problem | claims | messages | rounds | payload bytes |";
  if (at) os << " msgs@(n,t) | t^2/32 |";
  os << "\n|---|---|---|---|---|---|";
  if (at) os << "---|---|";
  os << "\n";
  for (const StaticBounds& b : bounds) {
    os << "| " << b.protocol << " | " << b.problem << " | "
       << (b.claims_correct ? "correct" : "attack-target") << " | "
       << b.messages.to_string() << " | " << b.rounds.to_string() << " | "
       << (b.payload_bytes ? b.payload_bytes->to_string() : "superpolynomial")
       << " |";
    if (at) {
      const Budget budget = budget_at(b, *at);
      os << " " << budget.messages << " | " << static_lemma1_bound(at->t)
         << " |";
    }
    os << "\n";
  }
}

void write_bounds_json(std::ostream& os,
                       const std::vector<StaticBounds>& bounds,
                       const std::optional<SystemParams>& at) {
  os << "{\n  \"experiment\": \"static_comm_bounds\",\n";
  if (at) {
    os << "  \"n\": " << at->n << ",\n  \"t\": " << at->t << ",\n";
  }
  os << "  \"protocols\": [\n";
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const StaticBounds& b = bounds[i];
    os << "    {\"protocol\": \"";
    json_escape(os, b.protocol);
    os << "\", \"problem\": \"";
    json_escape(os, b.problem);
    os << "\", \"claims_correct\": " << (b.claims_correct ? "true" : "false")
       << ", \"messages\": \"";
    json_escape(os, b.messages.to_string());
    os << "\", \"rounds\": \"";
    json_escape(os, b.rounds.to_string());
    os << "\", \"payload_bytes\": ";
    if (b.payload_bytes) {
      os << "\"";
      json_escape(os, b.payload_bytes->to_string());
      os << "\"";
    } else {
      os << "null";
    }
    if (at) {
      const Budget budget = budget_at(b, *at);
      os << ", \"messages_at\": " << budget.messages
         << ", \"rounds_at\": " << budget.rounds << ", \"payload_bytes_at\": ";
      if (budget.payload_bytes) {
        os << *budget.payload_bytes;
      } else {
        os << "null";
      }
      os << ", \"lower_bound_at\": " << static_lemma1_bound(at->t);
    }
    os << "}" << (i + 1 < bounds.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace ba::statics
