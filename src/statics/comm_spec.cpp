#include "statics/comm_spec.h"

namespace ba::statics {

const char* to_string(PayloadClass payload) {
  switch (payload) {
    case PayloadClass::kBit:
      return "bit";
    case PayloadClass::kValue:
      return "value";
    case PayloadClass::kValueSet:
      return "value-set";
    case PayloadClass::kSignatureChain:
      return "signature-chain";
    case PayloadClass::kEigReport:
      return "eig-report";
  }
  return "unknown";
}

std::optional<Poly> payload_byte_bound(PayloadClass payload,
                                       const Poly& sig_depth,
                                       const Poly& copies) {
  // Canonical-encoding envelopes (runtime/serde.h): generous constants so a
  // class bound dominates every concrete encoding the runtime produces.
  //   bit        tagged ["tag", b]                      <= 32 bytes
  //   value      tagged value of bounded nesting        <= 64 bytes
  //   value-set  up to n bounded values + framing       <= 64*n + 32
  //   sig-chain  value + depth * (signer id + MAC)      <= 64*depth + 64
  Poly per_payload;
  switch (payload) {
    case PayloadClass::kBit:
      per_payload = Poly(32);
      break;
    case PayloadClass::kValue:
      per_payload = Poly(64);
      break;
    case PayloadClass::kValueSet:
      per_payload = Poly(64) * Poly::n() + Poly(32);
      break;
    case PayloadClass::kSignatureChain:
      per_payload = Poly(64) * sig_depth + Poly(64);
      break;
    case PayloadClass::kEigReport:
      // Level-r reports carry O(n^r) entries — no polynomial envelope.
      return std::nullopt;
  }
  return copies * per_payload;
}

Poly block_message_bound(const RoundBlock& block) {
  Poly total;
  for (const MessagePattern& pattern : block.patterns) {
    Poly occurrences = pattern.senders * pattern.receivers_per_sender;
    if (!pattern.per_block) occurrences *= block.rounds;
    total += occurrences;
  }
  return total;
}

Poly spec_message_bound(const CommSpec& spec) {
  Poly total;
  for (const RoundBlock& block : spec.blocks) {
    total += block_message_bound(block);
  }
  return total;
}

std::optional<Poly> spec_payload_byte_bound(const CommSpec& spec) {
  Poly total;
  for (const RoundBlock& block : spec.blocks) {
    for (const MessagePattern& pattern : block.patterns) {
      const std::optional<Poly> per_message = payload_byte_bound(
          pattern.payload, pattern.sig_depth, pattern.payload_copies);
      if (!per_message) return std::nullopt;
      Poly occurrences = pattern.senders * pattern.receivers_per_sender;
      if (!pattern.per_block) occurrences *= block.rounds;
      total += occurrences * *per_message;
    }
  }
  return total;
}

}  // namespace ba::statics
