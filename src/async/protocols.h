#pragma once

// Registry of the asynchronous protocols, keyed by the stable names the CLI
// and tests use. Mirrors the synchronous protocol registry surface
// (src/protocols/) in miniature: a sorted list, a lookup, and a " | "-joined
// name string shared by every error message enumerating the choices.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "async/async_process.h"

namespace ba::async {

struct AsyncProtocolInfo {
  /// Stable registry name.
  std::string name;
  /// One-line description for CLI listings.
  std::string summary;
  /// True when the protocol consumes the coin seed (Ben-Or variants); the
  /// seed is ignored by deterministic protocols (Bracha).
  bool randomized{false};
  /// True for the deliberately unsound variants kept as exploration /
  /// certificate targets — excluded from "all protocols are safe" sweeps.
  bool deliberately_broken{false};
  /// Builds the honest replica factory for a given coin seed.
  std::function<AsyncProtocolFactory(std::uint64_t coin_seed)> make;
};

/// All registered async protocols, sorted by name:
/// ben-or (ideal coin), ben-or-broken (unsound thresholds, ideal coin),
/// ben-or-local (per-process local coin), bracha.
[[nodiscard]] const std::vector<AsyncProtocolInfo>& async_protocols();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const AsyncProtocolInfo* find_async_protocol(
    const std::string& name);

/// The registered names, sorted, joined by " | " — shared by every error
/// message and usage string that enumerates them.
[[nodiscard]] const char* async_protocol_list();

}  // namespace ba::async
