#pragma once

// The asynchronous adversarial-scheduler substrate behind the engine seam.
//
// AsyncBackend registers as "async" (engine/registry.h, spec syntax
// `async[:strategy[,seed]]`) so drivers discover and configure it
// uniformly. It deliberately REFUSES the synchronous `run` entry point:
// round-based protocols assume lockstep delivery and would deadlock or
// silently degenerate under single-message scheduling, so the backend
// throws a readable error instead of guessing. The native entry point is
// `run_async_protocol`, taking an async protocol factory
// (async/async_process.h) — the CLI's explore command and the async tests
// drive it directly, constructing a fresh scheduler per run so the backend
// stays a pure, shareable function of its arguments.

#include <cstdint>
#include <vector>

#include "async/async_system.h"
#include "engine/backend.h"

namespace ba::async {

class AsyncBackend final : public engine::ExecutionBackend {
 public:
  /// Validates config.strategy eagerly (throws std::invalid_argument naming
  /// the known strategies), so a bad `--backend async:...` spec fails at
  /// construction, not mid-campaign.
  explicit AsyncBackend(const engine::AsyncBackendConfig& config);

  /// Always throws std::invalid_argument: synchronous protocols have no
  /// meaningful execution under an adversarial single-message scheduler.
  [[nodiscard]] RunResult run(const SystemParams& params,
                              const ProtocolFactory& protocol,
                              const std::vector<Value>& proposals,
                              const Adversary& adversary,
                              const RunOptions& options = {}) const override;

  /// Runs one asynchronous execution under a fresh scheduler built from
  /// this backend's (strategy, seed) config. Pure and thread-safe.
  [[nodiscard]] AsyncRunResult run_async_protocol(
      const SystemParams& params, const AsyncProtocolFactory& protocol,
      const std::vector<Value>& proposals, const AsyncAdversary& adversary,
      const AsyncRunOptions& options = {}) const;

  [[nodiscard]] const char* name() const override { return "async"; }
  [[nodiscard]] engine::Capabilities capabilities() const override {
    return engine::kTraces | engine::kLint;
  }

  [[nodiscard]] const engine::AsyncBackendConfig& config() const {
    return config_;
  }

 private:
  engine::AsyncBackendConfig config_;
};

}  // namespace ba::async
