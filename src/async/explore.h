#pragma once

// Bounded schedule exploration for the asynchronous executor.
//
// In the async model an execution is fully determined by (protocol,
// proposals, faults, coin seed, delivery schedule); this module quantifies
// over the LAST coordinate. Two modes:
//
//   * exhaustive — enumerate every delivery order for the first `depth`
//     deliveries (branching over the distinct in-flight messages at each
//     step; messages identical as (sender, receiver, payload) lead to
//     indistinguishable continuations and are branched once) and complete
//     each prefix deterministically with the task's completion strategy.
//     For small n and depth this visits an exhaustive cover of the
//     reachable prefix tree — the executable analogue of letting TLC
//     enumerate the Ben_or83 / aba_asyn_byz next-state relations.
//   * sampling — run `samples` schedules, schedule i driven by a random
//     scheduler seeded with derive_task_seed(seed, start_index + i). Seeded,
//     deterministic, resumable: the (seed, index) pair pins each schedule,
//     so a campaign can be split across invocations via start_index.
//
// Every explored schedule is checked against the binary-consensus safety
// conjunction (agreement + validity + integrity). The first violation in
// deterministic enumeration order is minimized — shortest violating prefix,
// then greedy single-choice removal — into a ScheduleCertificate that
// `replay_certificate` (and `ba_cli explore --replay`) reproduces exactly.
//
// Determinism contract: reports are byte-identical for jobs in {1, 2, 8}.
// Parallelism partitions work at deterministic boundaries (top-level
// branches / sample indices) via ExperimentPool and merges in index order;
// within a partition, exploration is sequential.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "async/async_system.h"
#include "runtime/types.h"

namespace ba::async {

/// The fixed coordinates of one exploration campaign.
struct ExploreTask {
  /// Async protocol registry name (async/protocols.h).
  std::string protocol{"ben-or"};
  SystemParams params{};
  /// Proposal bits, one per process (0/1).
  std::vector<int> proposals;
  /// Crash-from-start processes (must have size <= t).
  ProcessSet faulty;
  std::uint64_t coin_seed{1};
  /// Strategy completing each explored prefix to quiescence
  /// (scheduler_strategy_list()); fifo keeps enumeration order canonical.
  std::string completion_strategy{"fifo"};
  std::uint64_t completion_seed{1};
  /// Per-run delivery cap forwarded to the executor.
  std::uint64_t max_deliveries{100000};
};

struct ExploreOptions {
  /// true: exhaustive prefix enumeration; false: seeded sampling.
  bool exhaustive{false};
  /// Exhaustive mode: branching depth (deliveries enumerated per schedule).
  std::uint32_t depth{4};
  /// Sampling mode: number of schedules this invocation runs.
  std::uint64_t samples{64};
  /// Sampling mode: campaign master seed.
  std::uint64_t seed{1};
  /// Sampling mode: index of the first schedule (resume point).
  std::uint64_t start_index{0};
  /// Worker threads (0 = hardware concurrency). Results are identical for
  /// any value.
  std::uint32_t jobs{1};
};

/// A replayable witness of one safety violation: the full run coordinates
/// plus the minimized scripted-choice prefix. Completion beyond the prefix
/// uses the recorded strategy, so replay is exact.
struct ScheduleCertificate {
  std::string protocol;
  SystemParams params{};
  std::vector<int> proposals;
  ProcessSet faulty;
  std::uint64_t coin_seed{1};
  std::string completion_strategy{"fifo"};
  std::uint64_t completion_seed{1};
  std::uint64_t max_deliveries{100000};
  std::vector<std::uint32_t> choices;
  /// Violated property: "agreement" | "validity" | "integrity".
  std::string property;
  /// Human-readable account of the violating decisions.
  std::string detail;

  /// Line-oriented text form (stable; versioned header "ba-async-cert v1").
  [[nodiscard]] std::string encode() const;
  /// Parses `encode` output. Throws std::invalid_argument with a
  /// line-numbered message on malformed input.
  static ScheduleCertificate decode(const std::string& text);
};

struct ExploreReport {
  /// Complete schedules executed and checked.
  std::uint64_t schedules{0};
  /// Total deliveries across all complete schedules.
  std::uint64_t deliveries{0};
  /// Schedules on which every run quiesced.
  std::uint64_t quiesced{0};
  /// Schedules on which all correct processes decided.
  std::uint64_t all_decided{0};
  /// Safety violations found (first one per top-level partition; a clean
  /// protocol reports 0).
  std::uint64_t violations{0};
  /// Minimized certificate of the first violation in enumeration order.
  std::optional<ScheduleCertificate> certificate;
  /// Order-sensitive digest of every explored schedule's choices, decisions
  /// and counters — the jobs-independence battery compares these.
  std::uint64_t digest{0};
  /// Sampling mode: start_index + samples (pass as the next start_index).
  std::uint64_t next_index{0};
};

/// Checks the binary-consensus safety conjunction on one run's decisions:
/// integrity (every correct decision is a bit), agreement (correct
/// decisions pairwise equal), validity (every correct decision equals some
/// correct process's proposal). Returns the violated property + detail, or
/// nullopt when safe. Undecided processes are permissible (liveness is
/// quantified separately).
struct SafetyViolation {
  std::string property;
  std::string detail;
};
[[nodiscard]] std::optional<SafetyViolation> binary_consensus_safety(
    const SystemParams& params, const std::vector<int>& proposals,
    const ProcessSet& faulty,
    const std::vector<std::optional<Value>>& decisions);

/// Runs one exploration campaign. Throws std::invalid_argument on an
/// unknown protocol/strategy or malformed task (proposal count, |faulty|).
[[nodiscard]] ExploreReport explore(const ExploreTask& task,
                                    const ExploreOptions& options);

/// Re-executes a certificate's schedule and returns the run (trace
/// recorded). The caller re-checks safety via binary_consensus_safety to
/// confirm the violation reproduces.
[[nodiscard]] AsyncRunResult replay_certificate(
    const ScheduleCertificate& cert, const AsyncRunOptions& options = {});

}  // namespace ba::async
