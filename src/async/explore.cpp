#include "async/explore.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "async/protocols.h"
#include "async/scheduler.h"
#include "parallel/experiment_pool.h"
#include "parallel/seed.h"

namespace ba::async {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Resolved, validated form of an ExploreTask, shared read-only across
/// workers (the factory builds a fresh replica per process per run).
struct TaskContext {
  ExploreTask task;
  AsyncProtocolFactory factory;
  std::vector<Value> proposal_values;
  AsyncAdversary adversary;
};

TaskContext resolve(const ExploreTask& task) {
  const AsyncProtocolInfo* info = find_async_protocol(task.protocol);
  if (info == nullptr) {
    throw std::invalid_argument("explore: unknown async protocol '" +
                                task.protocol + "' (" + async_protocol_list() +
                                ")");
  }
  if (!task.params.valid()) {
    throw std::invalid_argument("explore: invalid SystemParams");
  }
  if (task.proposals.size() != task.params.n) {
    throw std::invalid_argument("explore: need exactly n proposal bits");
  }
  if (task.faulty.size() > task.params.t) {
    throw std::invalid_argument("explore: |faulty| exceeds t");
  }
  if (!scheduler_strategy_known(task.completion_strategy)) {
    throw std::invalid_argument("explore: unknown completion strategy '" +
                                task.completion_strategy + "' (" +
                                scheduler_strategy_list() + ")");
  }
  TaskContext ctx{task, info->make(task.coin_seed), {}, {}};
  ctx.proposal_values.reserve(task.params.n);
  for (const int b : task.proposals) {
    ctx.proposal_values.push_back(Value::bit(b));
  }
  ctx.adversary.faulty = task.faulty;
  return ctx;
}

/// Runs one schedule: scripted `choices` first, then the task's completion
/// strategy to quiescence (or to `stop_after` deliveries for probes).
AsyncRunResult run_schedule(const TaskContext& ctx,
                            std::vector<std::uint32_t> choices,
                            std::optional<std::uint64_t> stop_after,
                            bool capture_pending) {
  ScriptedScheduler scheduler(
      std::move(choices),
      make_scheduler(ctx.task.completion_strategy, ctx.task.completion_seed,
                     ctx.task.params.n));
  AsyncRunOptions options;
  options.max_deliveries = ctx.task.max_deliveries;
  options.stop_after = stop_after;
  options.record_trace = false;
  options.capture_pending = capture_pending;
  return run_async(ctx.task.params, ctx.factory, ctx.proposal_values,
                   ctx.adversary, scheduler, options);
}

std::optional<SafetyViolation> check(const TaskContext& ctx,
                                     const AsyncRunResult& result) {
  return binary_consensus_safety(ctx.task.params, ctx.task.proposals,
                                 ctx.task.faulty, result.run.decisions);
}

/// Order-sensitive fingerprint of one complete schedule: the full delivery
/// order, every decision, and the run counters.
std::uint64_t schedule_digest(const AsyncRunResult& result) {
  std::uint64_t d = mix64(result.schedule.size());
  for (const std::uint32_t c : result.schedule) d = mix64(d ^ c);
  for (const std::optional<Value>& dec : result.run.decisions) {
    const std::uint64_t code =
        dec ? (dec->try_bit() ? static_cast<std::uint64_t>(*dec->try_bit())
                              : 3u)
            : 2u;
    d = mix64(d ^ code);
  }
  d = mix64(d ^ result.deliveries);
  return mix64(d ^ (result.run.quiesced ? 1u : 0u));
}

bool all_correct_decided(const TaskContext& ctx,
                         const std::vector<std::optional<Value>>& decisions) {
  for (ProcessId p = 0; p < ctx.task.params.n; ++p) {
    if (!ctx.adversary.is_faulty(p) && !decisions[p]) return false;
  }
  return true;
}

/// Per-partition accumulator (one top-level branch in exhaustive mode, one
/// sample index in sampling mode). Merged strictly in partition order.
struct PartitionResult {
  std::uint64_t schedules{0};
  std::uint64_t deliveries{0};
  std::uint64_t quiesced{0};
  std::uint64_t all_decided{0};
  std::uint64_t violations{0};
  std::vector<std::uint64_t> digests;  // per-schedule, enumeration order
  bool has_violation{false};
  std::vector<std::uint32_t> violating_choices;
  SafetyViolation violation{};
};

void record_leaf(const TaskContext& ctx, const AsyncRunResult& result,
                 const std::vector<std::uint32_t>& choices,
                 PartitionResult& out) {
  out.schedules++;
  out.deliveries += result.deliveries;
  if (result.run.quiesced) out.quiesced++;
  if (all_correct_decided(ctx, result.run.decisions)) out.all_decided++;
  out.digests.push_back(schedule_digest(result));
  if (const auto violation = check(ctx, result)) {
    out.violations++;
    out.has_violation = true;
    out.violating_choices = choices;
    out.violation = *violation;
  }
}

/// Distinct-delivery candidates at one node: pending indices, first
/// occurrence per (sender, receiver, payload). Delivering either of two
/// identical in-flight messages yields indistinguishable continuations.
std::vector<std::uint32_t> branch_candidates(
    const std::vector<PendingMessage>& pending) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    bool duplicate = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (pending[j].sender == pending[i].sender &&
          pending[j].receiver == pending[i].receiver &&
          pending[j].payload == pending[i].payload) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

/// Depth-first enumeration under one fixed prefix. Stops the partition at
/// its first violation (deterministic: enumeration order is fixed), so the
/// explored-schedule set is identical for every jobs value.
void dfs(const TaskContext& ctx, std::uint32_t depth,
         std::vector<std::uint32_t>& prefix, PartitionResult& out) {
  if (out.has_violation) return;
  if (prefix.size() < depth) {
    AsyncRunResult probe =
        run_schedule(ctx, prefix, prefix.size(), /*capture_pending=*/true);
    if (!probe.pending.empty()) {
      for (const std::uint32_t c : branch_candidates(probe.pending)) {
        prefix.push_back(c);
        dfs(ctx, depth, prefix, out);
        prefix.pop_back();
        if (out.has_violation) return;
      }
      return;
    }
    // The prefix already drives the run to quiescence — it is a complete
    // schedule of its own.
  }
  const AsyncRunResult result =
      run_schedule(ctx, prefix, std::nullopt, /*capture_pending=*/false);
  record_leaf(ctx, result, prefix, out);
}

/// Shortest violating prefix, then greedy single-choice removal. Every
/// candidate is re-run from scratch; the certificate must stay violating
/// under its own completion strategy by construction.
std::vector<std::uint32_t> minimize(const TaskContext& ctx,
                                    std::vector<std::uint32_t> choices) {
  const auto violates = [&](const std::vector<std::uint32_t>& c) {
    return check(ctx, run_schedule(ctx, c, std::nullopt, false)).has_value();
  };
  for (std::size_t len = 0; len < choices.size(); ++len) {
    if (violates({choices.begin(),
                  choices.begin() + static_cast<std::ptrdiff_t>(len)})) {
      choices.resize(len);
      break;
    }
  }
  if (choices.size() <= 64) {
    std::size_t i = 0;
    while (i < choices.size()) {
      std::vector<std::uint32_t> without = choices;
      without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
      if (violates(without)) {
        choices = std::move(without);
      } else {
        ++i;
      }
    }
  }
  return choices;
}

ScheduleCertificate make_certificate(const TaskContext& ctx,
                                     std::vector<std::uint32_t> choices) {
  choices = minimize(ctx, std::move(choices));
  const AsyncRunResult result =
      run_schedule(ctx, choices, std::nullopt, false);
  const auto violation = check(ctx, result);
  ScheduleCertificate cert;
  cert.protocol = ctx.task.protocol;
  cert.params = ctx.task.params;
  cert.proposals = ctx.task.proposals;
  cert.faulty = ctx.task.faulty;
  cert.coin_seed = ctx.task.coin_seed;
  cert.completion_strategy = ctx.task.completion_strategy;
  cert.completion_seed = ctx.task.completion_seed;
  cert.max_deliveries = ctx.task.max_deliveries;
  cert.choices = std::move(choices);
  // `violation` is non-null by minimize's invariant; guard anyway so a
  // logic error surfaces as a readable certificate, not a crash.
  cert.property = violation ? violation->property : "unknown";
  cert.detail = violation ? violation->detail : "minimization lost violation";
  return cert;
}

ExploreReport merge(const TaskContext& ctx,
                    const std::vector<PartitionResult>& parts) {
  ExploreReport report;
  std::uint64_t digest = 0x9e3779b97f4a7c15ull;
  const PartitionResult* first_violating = nullptr;
  for (const PartitionResult& part : parts) {
    report.schedules += part.schedules;
    report.deliveries += part.deliveries;
    report.quiesced += part.quiesced;
    report.all_decided += part.all_decided;
    report.violations += part.violations;
    for (const std::uint64_t d : part.digests) digest = mix64(digest ^ d);
    if (first_violating == nullptr && part.has_violation) {
      first_violating = &part;
    }
  }
  report.digest = digest;
  if (first_violating != nullptr) {
    report.certificate =
        make_certificate(ctx, first_violating->violating_choices);
  }
  return report;
}

}  // namespace

std::optional<SafetyViolation> binary_consensus_safety(
    const SystemParams& params, const std::vector<int>& proposals,
    const ProcessSet& faulty,
    const std::vector<std::optional<Value>>& decisions) {
  ProcessId first_decider = kNoProcess;
  for (ProcessId p = 0; p < params.n; ++p) {
    if (faulty.contains(p) || !decisions[p]) continue;
    const std::optional<int> bit = decisions[p]->try_bit();
    if (!bit) {
      return SafetyViolation{
          "integrity", "process " + std::to_string(p) +
                           " decided the non-bit value " +
                           decisions[p]->to_string()};
    }
    if (first_decider == kNoProcess) {
      first_decider = p;
    } else if (*decisions[first_decider]->try_bit() != *bit) {
      return SafetyViolation{
          "agreement",
          "process " + std::to_string(first_decider) + " decided " +
              std::to_string(*decisions[first_decider]->try_bit()) +
              " but process " + std::to_string(p) + " decided " +
              std::to_string(*bit)};
    }
    bool proposed = false;
    for (ProcessId q = 0; q < params.n; ++q) {
      if (!faulty.contains(q) && proposals[q] == *bit) {
        proposed = true;
        break;
      }
    }
    if (!proposed) {
      return SafetyViolation{
          "validity", "process " + std::to_string(p) + " decided " +
                          std::to_string(*bit) +
                          ", which no correct process proposed"};
    }
  }
  return std::nullopt;
}

ExploreReport explore(const ExploreTask& task, const ExploreOptions& options) {
  const TaskContext ctx = resolve(task);
  parallel::ExperimentPool pool(options.jobs);
  std::vector<PartitionResult> parts;

  if (options.exhaustive) {
    // Partition at the root's first-choice branches; each branch explores
    // sequentially, so the merged result is independent of the jobs knob.
    AsyncRunResult root = run_schedule(ctx, {}, std::uint64_t{0},
                                       /*capture_pending=*/true);
    const std::vector<std::uint32_t> branches =
        options.depth == 0 ? std::vector<std::uint32_t>{}
                           : branch_candidates(root.pending);
    if (branches.empty()) {
      PartitionResult only;
      std::vector<std::uint32_t> prefix;
      dfs(ctx, options.depth, prefix, only);
      parts.push_back(std::move(only));
    } else {
      parts = pool.map<PartitionResult>(
          branches.size(), [&](std::size_t i) {
            PartitionResult part;
            std::vector<std::uint32_t> prefix{branches[i]};
            dfs(ctx, options.depth, prefix, part);
            return part;
          });
    }
  } else {
    parts = pool.map<PartitionResult>(
        static_cast<std::size_t>(options.samples), [&](std::size_t i) {
          const std::uint64_t index = options.start_index + i;
          const std::uint64_t seed =
              parallel::derive_task_seed(options.seed, index);
          auto scheduler = make_scheduler("random", seed, task.params.n);
          AsyncRunOptions run_options;
          run_options.max_deliveries = task.max_deliveries;
          run_options.record_trace = false;
          AsyncRunResult result =
              run_async(ctx.task.params, ctx.factory, ctx.proposal_values,
                        ctx.adversary, *scheduler, run_options);
          PartitionResult part;
          record_leaf(ctx, result, result.schedule, part);
          return part;
        });
  }

  ExploreReport report = merge(ctx, parts);
  report.next_index = options.exhaustive
                          ? 0
                          : options.start_index + options.samples;
  return report;
}

AsyncRunResult replay_certificate(const ScheduleCertificate& cert,
                                  const AsyncRunOptions& options) {
  ExploreTask task;
  task.protocol = cert.protocol;
  task.params = cert.params;
  task.proposals = cert.proposals;
  task.faulty = cert.faulty;
  task.coin_seed = cert.coin_seed;
  task.completion_strategy = cert.completion_strategy;
  task.completion_seed = cert.completion_seed;
  task.max_deliveries = cert.max_deliveries;
  const TaskContext ctx = resolve(task);
  ScriptedScheduler scheduler(
      cert.choices, make_scheduler(cert.completion_strategy,
                                   cert.completion_seed, cert.params.n));
  return run_async(ctx.task.params, ctx.factory, ctx.proposal_values,
                   ctx.adversary, scheduler, options);
}

std::string ScheduleCertificate::encode() const {
  std::ostringstream os;
  os << "ba-async-cert v1\n";
  os << "protocol " << protocol << "\n";
  os << "n " << params.n << "\n";
  os << "t " << params.t << "\n";
  os << "proposals";
  for (const int b : proposals) os << ' ' << b;
  os << "\nfaulty";
  for (const ProcessId p : faulty) os << ' ' << p;
  os << "\ncoin-seed " << coin_seed << "\n";
  os << "completion " << completion_strategy << ' ' << completion_seed << "\n";
  os << "max-deliveries " << max_deliveries << "\n";
  os << "choices";
  for (const std::uint32_t c : choices) os << ' ' << c;
  os << "\nproperty " << property << "\n";
  os << "detail " << detail << "\n";
  return os.str();
}

namespace {

[[noreturn]] void cert_error(std::size_t line, const std::string& what) {
  throw std::invalid_argument("certificate line " + std::to_string(line) +
                              ": " + what);
}

/// Reads one line, checks its leading keyword, and returns the remainder
/// stream.
std::istringstream cert_line(std::istream& in, std::size_t line,
                             const std::string& keyword) {
  std::string text;
  if (!std::getline(in, text)) cert_error(line, "missing '" + keyword + "'");
  std::istringstream fields(text);
  std::string head;
  fields >> head;
  if (head != keyword) {
    cert_error(line, "expected '" + keyword + "', got '" + head + "'");
  }
  return fields;
}

}  // namespace

ScheduleCertificate ScheduleCertificate::decode(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != "ba-async-cert v1") {
    cert_error(1, "bad header (want 'ba-async-cert v1')");
  }
  ScheduleCertificate cert;
  std::size_t line = 2;
  {
    auto f = cert_line(in, line++, "protocol");
    if (!(f >> cert.protocol)) cert_error(line - 1, "missing protocol name");
  }
  {
    auto f = cert_line(in, line++, "n");
    if (!(f >> cert.params.n)) cert_error(line - 1, "missing n");
  }
  {
    auto f = cert_line(in, line++, "t");
    if (!(f >> cert.params.t)) cert_error(line - 1, "missing t");
  }
  {
    auto f = cert_line(in, line++, "proposals");
    int b = 0;
    while (f >> b) cert.proposals.push_back(b);
  }
  {
    auto f = cert_line(in, line++, "faulty");
    ProcessId p = 0;
    while (f >> p) cert.faulty.insert(p);
  }
  {
    auto f = cert_line(in, line++, "coin-seed");
    if (!(f >> cert.coin_seed)) cert_error(line - 1, "missing coin seed");
  }
  {
    auto f = cert_line(in, line++, "completion");
    if (!(f >> cert.completion_strategy >> cert.completion_seed)) {
      cert_error(line - 1, "want 'completion <strategy> <seed>'");
    }
  }
  {
    auto f = cert_line(in, line++, "max-deliveries");
    if (!(f >> cert.max_deliveries)) {
      cert_error(line - 1, "missing max-deliveries");
    }
  }
  {
    auto f = cert_line(in, line++, "choices");
    std::uint32_t c = 0;
    while (f >> c) cert.choices.push_back(c);
  }
  {
    auto f = cert_line(in, line++, "property");
    if (!(f >> cert.property)) cert_error(line - 1, "missing property");
  }
  {
    std::string text_line;
    if (!std::getline(in, text_line) ||
        text_line.rfind("detail ", 0) != 0) {
      cert_error(line, "expected 'detail <text>'");
    }
    cert.detail = text_line.substr(7);
  }
  return cert;
}

}  // namespace ba::async
