#pragma once

// Adversarial delivery schedulers for the asynchronous executor.
//
// In the asynchronous model the network adversary's whole power is the
// delivery ORDER: every sent message is eventually delivered, but the
// adversary picks which in-flight message arrives next. A `Scheduler` is
// that adversary as a strategy object — the executor (async/async_system.h)
// asks it to pick one message from the pending pool before every delivery.
//
// Strategies (all deterministic given their construction arguments):
//   fifo           deliver in global send order — the most benign schedule
//   random         seeded uniform pick (splitmix64 stream; the sampling
//                  mode of async/explore.h runs one seed per schedule)
//   delay-decider  starve the most-advanced process: always deliver to the
//                  receiver that has received the FEWEST messages so far,
//                  keeping everyone maximally far from their next quorum
//   rr-starve      round-robin across receivers, except one seed-selected
//                  victim that is served only when it is the sole receiver
//                  with pending traffic (maximal single-process starvation
//                  under reliable links)
//
// Determinism contract: `pick` must be a pure function of the scheduler's
// own state and its arguments. The explored-schedule replay machinery and
// the jobs∈{1,2,8} byte-identity battery depend on it.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/types.h"
#include "runtime/value.h"

namespace ba::async {

/// One in-flight message. `seq` is the global 1-based send-sequence number —
/// the executor also uses it as the message's virtual round in recorded
/// traces, so (sender, receiver, seq) is a unique A.1.1 identity.
struct PendingMessage {
  std::uint64_t seq{0};
  ProcessId sender{kNoProcess};
  ProcessId receiver{kNoProcess};
  Value payload;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Picks the index (into `pending`, non-empty, in send order) of the next
  /// message to deliver. `deliveries_to[p]` counts messages delivered to
  /// process p so far.
  virtual std::size_t pick(const std::vector<PendingMessage>& pending,
                           const std::vector<std::uint64_t>& deliveries_to) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// The strategy tokens `make_scheduler` accepts, sorted, joined by " | " —
/// shared by every error message and usage string that enumerates them.
[[nodiscard]] const char* scheduler_strategy_list();

[[nodiscard]] bool scheduler_strategy_known(const std::string& strategy);

/// Builds a scheduler. `n` is the system size (rr-starve picks its victim
/// mod n); `seed` feeds the seeded strategies and is ignored by the rest.
/// Throws std::invalid_argument naming the known strategies on an unknown
/// token.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const std::string& strategy, std::uint64_t seed, std::uint32_t n);

/// Wraps a base scheduler with a scripted choice prefix: delivery i takes
/// `choices[i]` (clamped to the pending pool) while the prefix lasts, then
/// control passes to `base`. This is how explored schedules branch and how
/// failing-schedule certificates replay (async/explore.h).
class ScriptedScheduler final : public Scheduler {
 public:
  ScriptedScheduler(std::vector<std::uint32_t> choices,
                    std::unique_ptr<Scheduler> base)
      : choices_(std::move(choices)), base_(std::move(base)) {}

  std::size_t pick(const std::vector<PendingMessage>& pending,
                   const std::vector<std::uint64_t>& deliveries_to) override {
    if (next_ < choices_.size()) {
      const std::size_t c = choices_[next_++];
      return c < pending.size() ? c : pending.size() - 1;
    }
    return base_->pick(pending, deliveries_to);
  }

  [[nodiscard]] const char* name() const override { return "scripted"; }

 private:
  std::vector<std::uint32_t> choices_;
  std::unique_ptr<Scheduler> base_;
  std::size_t next_{0};
};

}  // namespace ba::async
