#include "async/bracha.h"

#include <vector>

#include "protocols/common.h"

namespace ba::async {
namespace {

using protocols::has_tag;
using protocols::tagged;

class BrachaProcess final : public AsyncProcess {
 public:
  explicit BrachaProcess(const AsyncContext& ctx)
      : n_(ctx.params.n),
        t_(ctx.params.t),
        self_(ctx.self),
        v1_(ctx.proposal.try_bit().value_or(0) == 1),
        echo_from_(ctx.params.n, false),
        ready_from_(ctx.params.n, false) {}

  Outbox on_start() override {
    Outbox out;
    step(out);
    return out;
  }

  Outbox on_message(ProcessId sender, const Value& payload) override {
    Outbox out;
    // Per-sender dedup: a Byzantine peer gets one ECHO and one READY vote.
    if (has_tag(payload, "echo") && !echo_from_[sender]) {
      echo_from_[sender] = true;
      echoes_++;
    } else if (has_tag(payload, "ready") && !ready_from_[sender]) {
      ready_from_[sender] = true;
      readies_++;
    } else {
      return out;
    }
    step(out);
    return out;
  }

  [[nodiscard]] std::optional<Value> decision() const override {
    return decision_;
  }
  // Acceptance is terminal: an AC process has broadcast both its ECHO and
  // its READY already, so the default decision-implies-halted is exact.

 private:
  /// Fires every enabled transition (one delivery can cascade ECHO -> READY
  /// -> accept when the buffered evidence is already sufficient).
  void step(Outbox& out) {
    const bool evidence = echoes_ >= bracha_echo_quorum(n_, t_) ||
                          readies_ >= bracha_ready_support(t_);
    if (!sent_echo_ && (v1_ || evidence)) {
      sent_echo_ = true;
      echo_from_[self_] = true;
      echoes_++;
      multicast(out, tagged("echo", {}));
    }
    if (sent_echo_ && !sent_ready_ &&
        (echoes_ >= bracha_echo_quorum(n_, t_) ||
         readies_ >= bracha_ready_support(t_))) {
      sent_ready_ = true;
      ready_from_[self_] = true;
      readies_++;
      multicast(out, tagged("ready", {}));
    }
    if (sent_ready_ && !decision_ && readies_ >= bracha_ready_quorum(t_)) {
      decision_ = Value::bit(1);
    }
  }

  void multicast(Outbox& out, const Value& payload) {
    for (ProcessId p = 0; p < n_; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
  }

  std::uint32_t n_;
  std::uint32_t t_;
  ProcessId self_;
  bool v1_;

  bool sent_echo_{false};
  bool sent_ready_{false};
  std::optional<Value> decision_;

  std::uint32_t echoes_{0};
  std::uint32_t readies_{0};
  std::vector<bool> echo_from_;
  std::vector<bool> ready_from_;
};

}  // namespace

AsyncProtocolFactory bracha_factory() {
  return [](const AsyncContext& ctx) {
    return std::make_unique<BrachaProcess>(ctx);
  };
}

statics::CommSpec bracha_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  statics::CommSpec spec;
  spec.protocol = "bracha";
  spec.problem = "strong-consensus";
  spec.resilience = "n > 3t";
  spec.rounds = Poly(3);
  spec.blocks = {
      {.label = "echo broadcast",
       .rounds = Poly(1),
       .patterns = {{.label = "every process multicasts ECHO at most once",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}},
      {.label = "ready broadcast",
       .rounds = Poly(1),
       .patterns = {{.label = "every process multicasts READY at most once",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}},
      {.label = "accept",
       .rounds = Poly(1),
       .patterns = {}},
  };
  spec.notes =
      "Bracha echo-ready acceptance: one ECHO and one READY broadcast per "
      "process in any schedule, so correct processes send at most "
      "2 n (n - 1) messages; the three logical stages (echo, ready, accept) "
      "bound the round envelope";
  return spec;
}

}  // namespace ba::async
