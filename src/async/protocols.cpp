#include "async/protocols.h"

#include "async/ben_or.h"
#include "async/bracha.h"
#include "async/coin.h"

namespace ba::async {

const std::vector<AsyncProtocolInfo>& async_protocols() {
  static const std::vector<AsyncProtocolInfo> kProtocols = {
      {.name = "ben-or",
       .summary = "Ben-Or '83 randomized binary consensus, seeded ideal coin",
       .randomized = true,
       .make =
           [](std::uint64_t coin_seed) {
             return ben_or_factory({.coin = ideal_coin(coin_seed)});
           }},
      {.name = "ben-or-broken",
       .summary = "Ben-Or with deliberately unsound thresholds (certificate "
                  "target; safe under fifo, violated by adversarial order)",
       .randomized = true,
       .deliberately_broken = true,
       .make =
           [](std::uint64_t coin_seed) {
             return ben_or_factory(
                 {.coin = ideal_coin(coin_seed), .broken = true});
           }},
      {.name = "ben-or-local",
       .summary = "Ben-Or '83 with independent per-process local coins",
       .randomized = true,
       .make =
           [](std::uint64_t coin_seed) {
             return ben_or_factory({.coin = local_coin(coin_seed)});
           }},
      {.name = "bracha",
       .summary = "Bracha echo-ready acceptance gadget (deterministic)",
       .make = [](std::uint64_t) { return bracha_factory(); }},
  };
  return kProtocols;
}

const AsyncProtocolInfo* find_async_protocol(const std::string& name) {
  for (const AsyncProtocolInfo& info : async_protocols()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

const char* async_protocol_list() {
  return "ben-or | ben-or-broken | ben-or-local | bracha";
}

}  // namespace ba::async
