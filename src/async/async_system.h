#pragma once

// The asynchronous executor: delivery-at-a-time execution under a pluggable
// adversarial scheduler (async/scheduler.h).
//
// Semantics. Every non-crashed process is activated once (`on_start`); its
// sends enter the in-flight pool. Then, repeatedly, the scheduler picks one
// in-flight message; the executor delivers it to its receiver, whose
// reaction sends (if any) join the pool. The run ends when the pool is
// empty (quiescence — reliable links delivered everything and nobody has
// more to say) or the delivery cap is hit (a non-quiescent protocol, or a
// deliberately truncated exploration prefix).
//
// Virtual-round trace encoding. Recorded traces reuse the synchronous
// ExecutionTrace vocabulary so the whole analysis stack (A.1 linter,
// trace_io, lint_trace) works unchanged: a message's ROUND is its global
// 1-based send-sequence number. At most one message exists per round, so
// the A.1.1 identity discipline (one message per ordered pair per round, no
// self-messages) holds by construction, and conservation is exact — a
// delivered message appears as `received` in its send round's bucket, an
// in-flight message at the cut as `receive_omitted`. Two async invariants
// differ from the synchronous reading and are linted through
// `LintOptions::async_model` (the async-aware quiescence/budget semantics
// of src/analysis/lint.h): quiescence means "no deliverable message
// pending", not "silent final round", and receive-omissions at correct
// processes are in-flight messages of a truncated run, not adversary
// omissions.

#include <cstdint>
#include <optional>
#include <vector>

#include "async/async_process.h"
#include "async/scheduler.h"
#include "runtime/sync_system.h"
#include "runtime/types.h"
#include "runtime/value.h"

namespace ba::async {

struct AsyncRunOptions {
  /// Hard cap on deliveries (protects against chattering protocols).
  std::uint64_t max_deliveries{100000};
  /// Stop after exactly this many deliveries even though messages remain in
  /// flight (schedule-exploration prefixes). nullopt = run to quiescence.
  std::optional<std::uint64_t> stop_after{};
  /// Record the full virtual-round trace.
  bool record_trace{true};
  /// Lint the recorded trace (async invariant semantics). Requires
  /// record_trace, like the synchronous executors.
  bool lint_trace{false};
  /// Static message budget (statics::budget_at) forwarded to the linter.
  std::optional<std::uint64_t> message_budget;
  /// Snapshot the in-flight pool at the end of the run into
  /// AsyncRunResult::pending (exploration wants the branching candidates).
  bool capture_pending{false};
};

struct AsyncRunResult {
  /// Decisions, counters, trace and lint verdict in the shared RunResult
  /// shape. `run.rounds_executed` is the number of virtual rounds == total
  /// messages sent; `run.quiesced` is true iff the in-flight pool drained.
  RunResult run;
  /// Number of deliveries performed.
  std::uint64_t deliveries{0};
  /// The scheduler's picks, one pending-pool index per delivery — replaying
  /// them through a ScriptedScheduler reproduces this run exactly.
  std::vector<std::uint32_t> schedule;
  /// In-flight messages at the end of the run (only with capture_pending).
  std::vector<PendingMessage> pending;
};

/// Runs one asynchronous execution. Pure up to the scheduler's state: with
/// a fresh deterministic scheduler, identical arguments give identical
/// results. Throws std::invalid_argument on malformed arguments
/// (proposals size, lint without trace).
AsyncRunResult run_async(const SystemParams& params,
                         const AsyncProtocolFactory& protocol,
                         const std::vector<Value>& proposals,
                         const AsyncAdversary& adversary,
                         Scheduler& scheduler,
                         const AsyncRunOptions& options = {});

}  // namespace ba::async
