#include "async/backend.h"

#include <stdexcept>

#include "async/protocols.h"
#include "async/scheduler.h"

namespace ba::async {

AsyncBackend::AsyncBackend(const engine::AsyncBackendConfig& config)
    : config_(config) {
  if (!scheduler_strategy_known(config_.strategy)) {
    throw std::invalid_argument("AsyncBackend: unknown strategy '" +
                                config_.strategy + "' (" +
                                scheduler_strategy_list() + ")");
  }
}

RunResult AsyncBackend::run(const SystemParams& /*params*/,
                            const ProtocolFactory& /*protocol*/,
                            const std::vector<Value>& /*proposals*/,
                            const Adversary& /*adversary*/,
                            const RunOptions& /*options*/) const {
  throw std::invalid_argument(
      std::string("AsyncBackend: synchronous protocols cannot run on the "
                  "async scheduler; use run_async with an async protocol (") +
      async_protocol_list() + ")");
}

AsyncRunResult AsyncBackend::run_async_protocol(
    const SystemParams& params, const AsyncProtocolFactory& protocol,
    const std::vector<Value>& proposals, const AsyncAdversary& adversary,
    const AsyncRunOptions& options) const {
  const auto scheduler =
      make_scheduler(config_.strategy, config_.seed, params.n);
  return run_async(params, protocol, proposals, adversary, *scheduler,
                   options);
}

}  // namespace ba::async
