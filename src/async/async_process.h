#pragma once

// The asynchronous (message-driven) state-machine interface.
//
// The synchronous `Process` (runtime/process.h) advances in lockstep rounds;
// an asynchronous protocol has no rounds at all — it reacts to single
// message deliveries whose ORDER is chosen by an adversarial scheduler
// (async/scheduler.h). This interface is the executable counterpart of the
// TLA+ next-state relations in the Ben_or83 and aba_asyn_byz exemplars: a
// process owns only its local state, every transition is triggered by one
// delivery, and the messages it emits in reaction are handed back to the
// runtime, which owns all routing and accounting.
//
// Determinism contract (mirrors A.1.3 in spirit): two processes constructed
// from equal contexts must produce identical send sequences and decisions
// given the same delivery sequence. All randomness must come through the
// seeded common-coin abstraction (async/coin.h), never from wall clocks or
// global RNG state — the schedule-exploration engine (async/explore.h)
// replays delivery prefixes and relies on runs being pure functions of
// (protocol, proposals, schedule).

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "runtime/message.h"
#include "runtime/types.h"
#include "runtime/value.h"

namespace ba::async {

class AsyncProcess {
 public:
  virtual ~AsyncProcess() = default;

  /// Messages sent on activation, before any delivery (the TLA+ Init-state
  /// sends — e.g. Ben-Or's phase-1 report, Bracha's initial ECHO). Called
  /// exactly once. Self-sends and out-of-range receivers are dropped by the
  /// runtime.
  virtual Outbox on_start() = 0;

  /// One message delivery: the scheduler chose to deliver `payload` from
  /// `sender`. Returns the messages sent in reaction (possibly none).
  /// Channels are authenticated: `sender` is the true origin.
  virtual Outbox on_message(ProcessId sender, const Value& payload) = 0;

  /// The decision, if the process has decided (decisions are permanent).
  [[nodiscard]] virtual std::optional<Value> decision() const = 0;

  /// True once the process will provably never send another message no
  /// matter what is delivered. The executor stops delivering *to* a halted
  /// process (deliveries are still recorded, preserving conservation).
  [[nodiscard]] virtual bool halted() const { return decision().has_value(); }
};

/// Construction-time context, mirroring ProcessContext.
struct AsyncContext {
  SystemParams params;
  ProcessId self{kNoProcess};
  Value proposal;
};

/// An async protocol is a pure factory of deterministic replicas.
using AsyncProtocolFactory =
    std::function<std::unique_ptr<AsyncProcess>(const AsyncContext&)>;

/// Adversary for asynchronous executions. Mirrors `Adversary`
/// (runtime/fault.h) restricted to the fault classes the async model uses:
///   * crash-from-start — faulty, non-Byzantine processes are never
///     activated: they send nothing and ignore every delivery;
///   * Byzantine — the replica is built by `byzantine_factory` instead of
///     the honest factory (must be a subset of `faulty`).
/// The scheduler itself is the omission-power of this model: it may delay
/// any message arbitrarily (but the executor delivers every message it can
/// before declaring quiescence — asynchronous reliable links).
struct AsyncAdversary {
  ProcessSet faulty;
  ProcessSet byzantine;
  AsyncProtocolFactory byzantine_factory;

  [[nodiscard]] static AsyncAdversary none() { return {}; }

  [[nodiscard]] bool is_faulty(ProcessId p) const {
    return faulty.contains(p);
  }
  [[nodiscard]] bool is_byzantine(ProcessId p) const {
    return byzantine.contains(p);
  }
  /// Crashed-from-start: faulty but not Byzantine.
  [[nodiscard]] bool is_crashed(ProcessId p) const {
    return is_faulty(p) && !is_byzantine(p);
  }
};

}  // namespace ba::async
