#include "async/async_system.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "analysis/lint.h"

namespace ba::async {
namespace {

/// One recorded event, materialized into the virtual-round trace at the end
/// of the run (so the hot loop never touches n * rounds storage).
struct SendRecord {
  std::uint64_t seq;  // == virtual round
  ProcessId sender;
  ProcessId receiver;
  Value payload;
  bool delivered{false};
};

}  // namespace

AsyncRunResult run_async(const SystemParams& params,
                         const AsyncProtocolFactory& protocol,
                         const std::vector<Value>& proposals,
                         const AsyncAdversary& adversary, Scheduler& scheduler,
                         const AsyncRunOptions& options) {
  if (!params.valid()) {
    throw std::invalid_argument("run_async: invalid SystemParams");
  }
  if (proposals.size() != params.n) {
    throw std::invalid_argument("run_async: need exactly n proposals");
  }
  if (options.lint_trace && !options.record_trace) {
    throw std::invalid_argument(
        "run_async: lint_trace requires record_trace (an empty trace would "
        "lint vacuously)");
  }

  const std::uint32_t n = params.n;
  AsyncRunResult out;
  out.run.decisions.assign(n, std::nullopt);

  // Replicas: honest factory for correct processes, the Byzantine override
  // for adversary.byzantine, nothing at all for crashed-from-start faulty
  // processes (they stay silent and ignore deliveries).
  std::vector<std::unique_ptr<AsyncProcess>> procs(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (adversary.is_crashed(p)) continue;
    const AsyncContext ctx{params, p, proposals[p]};
    procs[p] = adversary.is_byzantine(p) ? adversary.byzantine_factory(ctx)
                                         : protocol(ctx);
  }

  std::vector<SendRecord> sends;          // index == seq - 1
  std::vector<PendingMessage> pending;    // in send order
  std::vector<std::uint64_t> deliveries_to(n, 0);
  std::vector<Round> decision_round(n, kNoRound);

  auto enqueue = [&](ProcessId sender, Outbox&& outbox) {
    for (Outgoing& o : outbox) {
      if (o.to == sender || o.to >= n) continue;  // A.1.1: no self, in-range
      const std::uint64_t seq = sends.size() + 1;
      sends.push_back(SendRecord{seq, sender, o.to, o.payload, false});
      pending.push_back(PendingMessage{seq, sender, o.to,
                                       std::move(o.payload)});
      out.run.messages_sent_total++;
      if (!adversary.is_faulty(sender)) out.run.messages_sent_by_correct++;
    }
  };

  auto note_decision = [&](ProcessId p) {
    if (out.run.decisions[p]) return;
    if (auto d = procs[p]->decision()) {
      out.run.decisions[p] = std::move(d);
      // Virtual round of the decision: the latest send sequence issued so
      // far (floored at 1 — the trace is padded to one round if a process
      // decides before any message exists).
      decision_round[p] =
          static_cast<Round>(std::max<std::uint64_t>(sends.size(), 1));
    }
  };

  for (ProcessId p = 0; p < n; ++p) {
    if (!procs[p]) continue;
    enqueue(p, procs[p]->on_start());
  }
  for (ProcessId p = 0; p < n; ++p) {
    if (procs[p]) note_decision(p);
  }

  while (!pending.empty() && out.deliveries < options.max_deliveries &&
         (!options.stop_after || out.deliveries < *options.stop_after)) {
    const std::size_t idx = scheduler.pick(pending, deliveries_to);
    if (idx >= pending.size()) {
      throw std::logic_error("async scheduler picked out of range");
    }
    out.schedule.push_back(static_cast<std::uint32_t>(idx));
    PendingMessage msg = std::move(pending[idx]);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(idx));
    out.deliveries++;
    deliveries_to[msg.receiver]++;
    sends[msg.seq - 1].delivered = true;
    AsyncProcess* receiver = procs[msg.receiver].get();
    if (receiver != nullptr && !receiver->halted()) {
      enqueue(msg.receiver, receiver->on_message(msg.sender, msg.payload));
      note_decision(msg.receiver);
    }
  }

  out.run.quiesced = pending.empty();
  const bool any_decided = std::any_of(
      out.run.decisions.begin(), out.run.decisions.end(),
      [](const std::optional<Value>& d) { return d.has_value(); });
  const std::uint64_t virtual_rounds =
      std::max<std::uint64_t>(sends.size(), any_decided ? 1 : 0);
  out.run.rounds_executed = static_cast<Round>(virtual_rounds);

  if (options.record_trace) {
    ExecutionTrace& trace = out.run.trace;
    trace.params = params;
    trace.faulty = adversary.faulty;
    trace.rounds = static_cast<Round>(virtual_rounds);
    trace.quiesced = out.run.quiesced;
    trace.procs.resize(n);
    for (ProcessId p = 0; p < n; ++p) {
      trace.procs[p].proposal = proposals[p];
      trace.procs[p].rounds.resize(virtual_rounds);
      trace.procs[p].decision = out.run.decisions[p];
      trace.procs[p].decision_round = decision_round[p];
    }
    for (const SendRecord& s : sends) {
      const Message m{s.sender, s.receiver, static_cast<Round>(s.seq),
                      s.payload};
      RoundEvents& sender_round = trace.procs[s.sender].rounds[s.seq - 1];
      sender_round.sent.push_back(m);
      RoundEvents& receiver_round = trace.procs[s.receiver].rounds[s.seq - 1];
      if (s.delivered) {
        receiver_round.received.push_back(m);
      } else {
        // In flight at the cut: the async linter reads these as pending
        // deliveries, not adversary omissions.
        receiver_round.receive_omitted.push_back(m);
      }
    }
  }

  if (options.lint_trace) {
    analysis::LintOptions lint_options;
    lint_options.async_model = true;
    lint_options.message_budget = options.message_budget;
    out.run.lint = analysis::lint_trace(out.run.trace, lint_options);
  }

  if (options.capture_pending) out.pending = std::move(pending);
  return out;
}

}  // namespace ba::async
