#include "async/ben_or.h"

#include <array>
#include <stdexcept>
#include <utility>
#include <vector>

#include "protocols/common.h"

namespace ba::async {
namespace {

using protocols::field;
using protocols::has_tag;
using protocols::tagged;

constexpr int kVoteQuestion = 2;  // the '?' proposal of step 2

class BenOrProcess final : public AsyncProcess {
 public:
  BenOrProcess(const AsyncContext& ctx, const BenOrConfig& config)
      : n_(ctx.params.n),
        t_(ctx.params.t),
        self_(ctx.self),
        config_(config),
        x_(ctx.proposal.try_bit().value_or(0)) {
    // Tallies are indexed by phase; a decider participates through phase
    // r* + 1 <= max_phases + 1, and peers may run one phase ahead of us, so
    // keep room (and accept messages) up to max_phases + 1.
    const std::size_t phases = std::size_t{config_.max_phases} + 2;
    report_votes_.assign(phases, {});
    proposal_votes_.assign(phases, {});
    seen_report_.assign(phases, std::vector<bool>(n_, false));
    seen_proposal_.assign(phases, std::vector<bool>(n_, false));
  }

  Outbox on_start() override {
    Outbox out;
    broadcast_report(out);
    advance(out);
    return out;
  }

  Outbox on_message(ProcessId sender, const Value& payload) override {
    Outbox out;
    if (halted_) return out;
    absorb(sender, payload);
    advance(out);
    return out;
  }

  [[nodiscard]] std::optional<Value> decision() const override {
    return decision_;
  }
  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  /// Validates and tallies one incoming message. Malformed payloads,
  /// out-of-range phases, and duplicate (sender, phase, step) votes are
  /// dropped — a Byzantine sender can at worst withhold its vote.
  void absorb(ProcessId sender, const Value& m) {
    const bool is_report = has_tag(m, "bo1");
    if (!is_report && !has_tag(m, "bo2")) return;
    const Value* phase_field = field(m, 0);
    const Value* vote_field = field(m, 1);
    if (phase_field == nullptr || vote_field == nullptr ||
        !phase_field->is_int()) {
      return;
    }
    const std::int64_t phase = phase_field->as_int();
    if (phase < 1 || phase >= static_cast<std::int64_t>(report_votes_.size())) {
      return;
    }
    const auto ph = static_cast<std::size_t>(phase);
    if (is_report) {
      const std::optional<int> bit = vote_field->try_bit();
      if (!bit || seen_report_[ph][sender]) return;
      seen_report_[ph][sender] = true;
      report_votes_[ph][static_cast<std::size_t>(*bit)]++;
    } else {
      if (!vote_field->is_int()) return;
      const std::int64_t vote = vote_field->as_int();
      if (vote < 0 || vote > kVoteQuestion || seen_proposal_[ph][sender]) {
        return;
      }
      seen_proposal_[ph][sender] = true;
      proposal_votes_[ph][static_cast<std::size_t>(vote)]++;
    }
  }

  /// Runs the phase machine as far as the tallies allow. Buffered
  /// future-phase votes can let several phases complete off one delivery.
  void advance(Outbox& out) {
    while (!halted_) {
      if (step_ == 1) {
        if (total(report_votes_[phase_]) < n_ - t_) return;
        my_vote_ = kVoteQuestion;
        for (int v : {0, 1}) {
          const std::uint32_t c = report_votes_[phase_][v];
          const bool strong = config_.broken ? 2 * c >= n_ : 2 * c > n_ + t_;
          if (strong) {
            my_vote_ = v;
            break;
          }
        }
        broadcast_proposal(out, my_vote_);
        step_ = 2;
        continue;
      }
      if (total(proposal_votes_[phase_]) < n_ - t_) return;
      finish_phase();
      if (halted_) return;
      broadcast_report(out);
    }
  }

  /// Step-2 resolution for the current phase: decide / adopt / flip, then
  /// move to the next phase (or halt).
  void finish_phase() {
    const auto& votes = proposal_votes_[phase_];
    if (config_.broken) {
      if (!decision_ && my_vote_ != kVoteQuestion &&
          votes[static_cast<std::size_t>(my_vote_)] >= 1) {
        decision_ = Value::bit(my_vote_);
      }
    } else {
      for (int v : {0, 1}) {
        if (!decision_ && 2 * votes[static_cast<std::size_t>(v)] > n_ + t_) {
          decision_ = Value::bit(v);
        }
      }
    }
    int adopted = -1;
    for (int v : {0, 1}) {
      if (votes[static_cast<std::size_t>(v)] >= t_ + 1) {
        adopted = v;
        break;
      }
    }
    x_ = adopted >= 0 ? adopted
                      : (config_.coin->flip(self_, phase_) ? 1 : 0);
    phase_++;
    step_ = 1;
    if (decision_ && halt_after_phase_ == 0) {
      halt_after_phase_ = phase_;  // the one extra phase (r* + 1)
    }
    if ((halt_after_phase_ != 0 && phase_ > halt_after_phase_) ||
        phase_ > config_.max_phases) {
      halted_ = true;
    }
  }

  void broadcast_report(Outbox& out) {
    seen_report_[phase_][self_] = true;
    report_votes_[phase_][static_cast<std::size_t>(x_)]++;
    multicast(out, tagged("bo1", {Value(static_cast<std::int64_t>(phase_)),
                                  Value::bit(x_)}));
  }

  void broadcast_proposal(Outbox& out, int vote) {
    seen_proposal_[phase_][self_] = true;
    proposal_votes_[phase_][static_cast<std::size_t>(vote)]++;
    multicast(out, tagged("bo2", {Value(static_cast<std::int64_t>(phase_)),
                                  Value(static_cast<std::int64_t>(vote))}));
  }

  void multicast(Outbox& out, const Value& payload) {
    for (ProcessId p = 0; p < n_; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
  }

  template <std::size_t K>
  static std::uint32_t total(const std::array<std::uint32_t, K>& votes) {
    std::uint32_t sum = 0;
    for (const std::uint32_t c : votes) sum += c;
    return sum;
  }

  std::uint32_t n_;
  std::uint32_t t_;
  ProcessId self_;
  BenOrConfig config_;

  int x_;                        // current estimate bit
  std::uint32_t phase_{1};
  int step_{1};
  int my_vote_{kVoteQuestion};   // this phase's step-2 proposal
  std::optional<Value> decision_;
  std::uint32_t halt_after_phase_{0};  // r* + 1 once decided; 0 = undecided
  bool halted_{false};

  // tallies[phase][value]; totals via per-sender dedup so a Byzantine peer
  // contributes at most one vote per (phase, step).
  std::vector<std::array<std::uint32_t, 2>> report_votes_;
  std::vector<std::array<std::uint32_t, 3>> proposal_votes_;
  std::vector<std::vector<bool>> seen_report_;
  std::vector<std::vector<bool>> seen_proposal_;
};

}  // namespace

AsyncProtocolFactory ben_or_factory(BenOrConfig config) {
  if (!config.coin) {
    throw std::invalid_argument("ben_or_factory: config.coin is required");
  }
  return [config = std::move(config)](const AsyncContext& ctx) {
    return std::make_unique<BenOrProcess>(ctx, config);
  };
}

statics::CommSpec ben_or_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  statics::CommSpec spec;
  spec.protocol = "ben-or";
  spec.aliases = {"ben-or-local", "ben-or-broken"};
  spec.problem = "strong-consensus";
  spec.resilience = "n > 5t";
  // Two all-to-all broadcast virtual rounds per phase, kBenOrMaxPhases
  // phases. Virtual rounds of the async executor are single messages; the
  // spec counts the 2-broadcast-per-phase envelope the protocol never
  // exceeds regardless of schedule.
  spec.rounds = Poly(2 * static_cast<int>(kBenOrMaxPhases));
  spec.blocks = {
      {.label = "per-phase report + proposal broadcasts",
       .rounds = Poly(2 * static_cast<int>(kBenOrMaxPhases)),
       .patterns = {{.label = "every process multicasts its vote",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kValue}}},
  };
  spec.notes =
      "asynchronous randomized consensus (Ben-Or '83); a phase is one "
      "report and one proposal broadcast, capped at 64 phases, so correct "
      "processes send at most 128 n (n - 1) messages under any schedule";
  return spec;
}

}  // namespace ba::async
