#pragma once

// Ben-Or's randomized binary consensus (Ben-Or, PODC '83) as an
// asynchronous message-driven process — the executable counterpart of the
// Ben_or83 TLA+ exemplar.
//
// Each phase r has two steps. Step 1: broadcast the current estimate as a
// report ["bo1", r, x] and wait for n - t phase-r reports (the local vote is
// counted without a self-send). If more than (n + t) / 2 reports carry the
// same v, step 2 proposes D(v); otherwise it proposes '?'. Step 2:
// broadcast ["bo2", r, vote] (vote encodes D(0) as 0, D(1) as 1, '?' as 2),
// wait for n - t phase-r proposals; more than (n + t) / 2 D(v) decides v,
// at least t + 1 D(v) adopts x := v, otherwise x := coin flip for phase r.
//
// Termination bookkeeping: a decider keeps participating for exactly ONE
// more full phase after the phase it decided in, then halts. Every other
// correct process sees at least t + 1 D(v) in the decision phase, adopts v,
// and unanimity makes phase r* + 1 decide deterministically — so all
// correct processes decide by r* + 1 and the in-flight pool drains
// (quiescence). A decider must NOT halt immediately: with fewer than t + 1
// deciders the stragglers could never fill their n - t quorums again.
//
// The `broken` configuration deliberately weakens two thresholds (see
// BenOrConfig) so that schedule exploration (async/explore.h) can
// demonstrate a real agreement violation and minimize it into a replayable
// certificate. Unanimous inputs still decide correctly (validity survives
// the weakening); split inputs disagree under adversarial delivery orders,
// which exploration finds and minimizes.

#include <cstdint>

#include "async/async_process.h"
#include "async/coin.h"
#include "statics/comm_spec.h"

namespace ba::async {

/// Phase cap: a correct process gives up (halts undecided) after this many
/// phases. With the seeded ideal coin the expected decision phase is O(1);
/// the cap only bounds adversarial-coin executions and sizes the static
/// message budget (2 broadcast rounds per phase -> the CommSpec's 128-round
/// envelope).
inline constexpr std::uint32_t kBenOrMaxPhases = 64;

struct BenOrConfig {
  /// Source of the phase coin (async/coin.h). Required.
  CoinHandle coin;
  std::uint32_t max_phases{kBenOrMaxPhases};
  /// Deliberately unsound variant for the certificate machinery:
  ///   * step 1 proposes D(v) already at 2 * count >= n (a non-exclusive
  ///     "half", so D(0) and D(1) can coexist in one phase);
  ///   * step 2 decides its own proposed vote on a SINGLE matching echo
  ///     (>= 1 instead of > (n + t) / 2).
  /// With unanimous inputs both relaxations still line up; split inputs let
  /// two processes propose different D(v) in one phase and decide apart.
  bool broken{false};
};

/// Factory of Ben-Or replicas. Proposals are interpreted as bits via
/// Value::try_bit (non-bit proposals default to 0). Throws
/// std::invalid_argument if config.coin is null.
[[nodiscard]] AsyncProtocolFactory ben_or_factory(BenOrConfig config);

/// Static communication envelope: kBenOrMaxPhases phases of two all-to-all
/// broadcast rounds — 128 virtual rounds, 128 n (n - 1) messages.
[[nodiscard]] statics::CommSpec ben_or_comm_spec();

}  // namespace ba::async
