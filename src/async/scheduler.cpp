#include "async/scheduler.h"

#include <limits>
#include <optional>
#include <stdexcept>

namespace ba::async {
namespace {

class FifoScheduler final : public Scheduler {
 public:
  std::size_t pick(const std::vector<PendingMessage>& /*pending*/,
                   const std::vector<std::uint64_t>& /*deliveries_to*/)
      override {
    return 0;  // pending is kept in send order
  }
  [[nodiscard]] const char* name() const override { return "fifo"; }
};

class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : state_(seed) {}

  std::size_t pick(const std::vector<PendingMessage>& pending,
                   const std::vector<std::uint64_t>& /*deliveries_to*/)
      override {
    return static_cast<std::size_t>(next() % pending.size());
  }
  [[nodiscard]] const char* name() const override { return "random"; }

 private:
  std::uint64_t next() {
    // splitmix64: a full-period counter-based stream; the modulo bias is
    // irrelevant for schedule sampling.
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t state_;
};

class DelayDeciderScheduler final : public Scheduler {
 public:
  std::size_t pick(const std::vector<PendingMessage>& pending,
                   const std::vector<std::uint64_t>& deliveries_to) override {
    // Serve the least-served receiver: the process closest to a quorum is
    // exactly the one we refuse to feed. Ties break toward the oldest
    // message, so the strategy stays a total, deterministic order.
    std::size_t best = 0;
    std::uint64_t best_served = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::uint64_t served = deliveries_to[pending[i].receiver];
      if (served < best_served) {
        best_served = served;
        best = i;
      }
    }
    return best;
  }
  [[nodiscard]] const char* name() const override { return "delay-decider"; }
};

class RoundRobinStarveScheduler final : public Scheduler {
 public:
  RoundRobinStarveScheduler(std::uint64_t seed, std::uint32_t n)
      : n_(n), victim_(static_cast<ProcessId>(seed % (n == 0 ? 1 : n))) {}

  std::size_t pick(const std::vector<PendingMessage>& pending,
                   const std::vector<std::uint64_t>& /*deliveries_to*/)
      override {
    // Round-robin over receivers, skipping the victim; the victim is served
    // only when it is the sole receiver with pending traffic (reliable
    // links require eventual delivery before quiescence).
    for (std::uint32_t off = 1; off <= n_; ++off) {
      const ProcessId r = static_cast<ProcessId>((cursor_ + off) % n_);
      if (r == victim_) continue;
      if (const auto idx = earliest_to(pending, r)) {
        cursor_ = r;
        return *idx;
      }
    }
    cursor_ = victim_;
    return *earliest_to(pending, victim_);
  }
  [[nodiscard]] const char* name() const override { return "rr-starve"; }

 private:
  static std::optional<std::size_t> earliest_to(
      const std::vector<PendingMessage>& pending, ProcessId r) {
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].receiver == r) return i;
    }
    return std::nullopt;
  }

  std::uint32_t n_;
  ProcessId victim_;
  ProcessId cursor_{0};
};

}  // namespace

const char* scheduler_strategy_list() {
  return "fifo | random | delay-decider | rr-starve";
}

bool scheduler_strategy_known(const std::string& strategy) {
  return strategy == "fifo" || strategy == "random" ||
         strategy == "delay-decider" || strategy == "rr-starve";
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& strategy,
                                          std::uint64_t seed,
                                          std::uint32_t n) {
  if (strategy == "fifo") return std::make_unique<FifoScheduler>();
  if (strategy == "random") return std::make_unique<RandomScheduler>(seed);
  if (strategy == "delay-decider") {
    return std::make_unique<DelayDeciderScheduler>();
  }
  if (strategy == "rr-starve") {
    return std::make_unique<RoundRobinStarveScheduler>(seed, n);
  }
  throw std::invalid_argument("unknown async scheduler strategy '" + strategy +
                              "' (" + scheduler_strategy_list() + ")");
}

}  // namespace ba::async
