#pragma once

// Bracha-style asynchronous binary agreement acceptance gadget — the
// executable counterpart of the aba_asyn_byz TLA+ exemplar.
//
// Each process starts V0 (proposal bit 0) or V1 (proposal bit 1) and moves
// through the classic echo-ready-accept ladder:
//
//   V0/V1 --[V1, or enough ECHO/READY evidence]--> EC   (broadcast ECHO)
//   EC    --[enough ECHO/READY evidence]--------> RD    (broadcast READY)
//   RD    --[2t + 1 READY]----------------------> AC    (decide 1)
//
// with the standard guards (n > 3t):
//   echo quorum   nE >= ceil((n + t + 1) / 2)  == (n + t + 2) / 2 in ints
//   ready support nR >= t + 1                  (amplification)
//   ready quorum  nR >= 2t + 1                 (acceptance)
//
// Safety shape: with every correct process starting V0 and at most t
// Byzantine echoes/readies, no guard ever fires — the system stays silent
// and undecided (validity). Once any correct process accepts, the 2t + 1
// READY quorum contains t + 1 correct READYs, which re-amplify to every
// correct process, so all correct processes accept (totality under a fair
// schedule). Each process sends at most one ECHO and one READY broadcast,
// so correct processes send at most 2 n (n - 1) messages in any schedule.

#include <cstdint>

#include "async/async_process.h"
#include "statics/comm_spec.h"

namespace ba::async {

/// Integer-arithmetic guards, exposed for the conformance tests
/// (tests/async/bracha_test.cpp asserts them against the TLA+ definitions).
[[nodiscard]] constexpr std::uint32_t bracha_echo_quorum(std::uint32_t n,
                                                         std::uint32_t t) {
  return (n + t + 2) / 2;  // ceil((n + t + 1) / 2)
}
[[nodiscard]] constexpr std::uint32_t bracha_ready_support(std::uint32_t t) {
  return t + 1;
}
[[nodiscard]] constexpr std::uint32_t bracha_ready_quorum(std::uint32_t t) {
  return 2 * t + 1;
}

/// Factory of Bracha replicas. A proposal whose bit is 1 starts V1 (sends
/// ECHO immediately); anything else starts V0.
[[nodiscard]] AsyncProtocolFactory bracha_factory();

/// Static communication envelope: one ECHO and one READY broadcast per
/// process — 3 virtual rounds (echo, ready, accept), 2 n (n - 1) messages.
[[nodiscard]] statics::CommSpec bracha_comm_spec();

}  // namespace ba::async
