#pragma once

// Common-coin abstraction for randomized asynchronous agreement.
//
// Ben-Or-style protocols flip a coin when a phase fails to produce a
// decision. The flavour of that coin is the whole liveness story:
//
//   * local coin  — every process flips independently per phase (Ben-Or's
//     original protocol). Termination is only probabilistic: an adversarial
//     schedule can keep disagreeing flips alive, so campaigns over local
//     coins assert safety always and termination only in aggregate.
//   * ideal coin  — one shared bit per phase, visible to every process
//     (the classic "common coin" oracle of Rabin). With a shared flip the
//     undecided phases collapse quickly, which is what the >= 1e3-seed
//     termination battery in tests/async/ relies on.
//
// Both are DETERMINISTIC given their seed: a flip is a pure function of
// (seed, process, phase) — never of scheduling, wall clocks, or call order —
// so explored schedules replay bit-identically (async/explore.h).

#include <cstdint>
#include <memory>

#include "runtime/types.h"

namespace ba::async {

class CommonCoin {
 public:
  virtual ~CommonCoin() = default;

  /// The coin bit process `p` observes in phase `phase`. The ideal coin
  /// ignores `p` (every process sees the same bit); the local coin keys off
  /// both.
  [[nodiscard]] virtual bool flip(ProcessId p, std::uint32_t phase) const = 0;

  /// "local" | "ideal" — stamped into diagnostics.
  [[nodiscard]] virtual const char* kind() const = 0;
};

/// Shared immutable coin handle: one coin instance serves every replica of a
/// run (and is safe to share across ExperimentPool workers).
using CoinHandle = std::shared_ptr<const CommonCoin>;

/// Independent per-(process, phase) flips derived from `seed`.
[[nodiscard]] CoinHandle local_coin(std::uint64_t seed);

/// One shared flip per phase derived from `seed`; every process agrees.
[[nodiscard]] CoinHandle ideal_coin(std::uint64_t seed);

}  // namespace ba::async
