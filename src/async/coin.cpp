#include "async/coin.h"

namespace ba::async {
namespace {

/// splitmix64 finalizer: a cheap, well-mixed pure function of its input.
/// Quality matters less than determinism here, but the avalanche keeps
/// neighbouring (seed, phase) pairs uncorrelated.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class LocalCoin final : public CommonCoin {
 public:
  explicit LocalCoin(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] bool flip(ProcessId p, std::uint32_t phase) const override {
    // Domain-separate process and phase so (p=1, phase=2) != (p=2, phase=1).
    const std::uint64_t h =
        mix64(seed_ ^ mix64((std::uint64_t{p} << 32) | phase));
    return (h & 1u) != 0;
  }
  [[nodiscard]] const char* kind() const override { return "local"; }

 private:
  std::uint64_t seed_;
};

class IdealCoin final : public CommonCoin {
 public:
  explicit IdealCoin(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] bool flip(ProcessId /*p*/,
                          std::uint32_t phase) const override {
    return (mix64(seed_ ^ phase) & 1u) != 0;
  }
  [[nodiscard]] const char* kind() const override { return "ideal"; }

 private:
  std::uint64_t seed_;
};

}  // namespace

CoinHandle local_coin(std::uint64_t seed) {
  return std::make_shared<LocalCoin>(seed);
}

CoinHandle ideal_coin(std::uint64_t seed) {
  return std::make_shared<IdealCoin>(seed);
}

}  // namespace ba::async
