#include "lowerbound/lemma2.h"

#include <sstream>

#include "calculus/swap_omission.h"

namespace ba::lowerbound {

Lemma2Report lemma2_report(const ExecutionTrace& e, const ProcessSet& y) {
  Lemma2Report rep;
  rep.b_x = e.unanimous_correct_decision();

  const ProcessSet x = e.correct();
  for (ProcessId p : y) {
    const auto omitted_from_x = e.receive_omitted_from(p, x);
    if (omitted_from_x.size() < e.params.t / 2) {
      rep.low_omission.push_back(p);
      if (rep.b_x && e.procs[p].decision == rep.b_x) {
        rep.agreeing.push_back(p);
      }
    }
  }
  rep.holds = rep.b_x.has_value() && 2 * rep.agreeing.size() > y.size();
  return rep;
}

std::optional<ViolationCertificate> find_lemma2_violation(
    const ExecutionTrace& e, const ProcessSet& y, const std::string& how) {
  const auto b_x = e.unanimous_correct_decision();
  if (!b_x) return std::nullopt;  // caller handles X-internal violations

  for (ProcessId p : y) {
    const auto& decision = e.procs[p].decision;
    if (decision.has_value() && *decision == *b_x) continue;  // agrees
    if (!decision.has_value() && !e.quiesced) continue;  // can't certify

    auto pre = calculus::check_swap_preconditions(e, p);
    if (!pre.ok) continue;

    calculus::SwapResult swapped = calculus::swap_omission(e, p);

    // Find a process that is correct in E' and decided b_x (every correct
    // process of E does, and at least the precondition witness survives).
    ProcessId other = kNoProcess;
    for (ProcessId q = 0; q < e.params.n; ++q) {
      if (q == p || swapped.execution.faulty.contains(q)) continue;
      if (swapped.execution.procs[q].decision == b_x) {
        other = q;
        break;
      }
    }
    if (other == kNoProcess) continue;

    ViolationCertificate cert;
    cert.execution = std::move(swapped.execution);
    cert.witness_a = p;
    cert.witness_b = other;
    std::ostringstream os;
    os << how << "; isolated p" << p << " (now correct after swap_omission) ";
    if (decision.has_value()) {
      cert.kind = ViolationKind::kAgreement;
      os << "decides " << *decision << " while correct p" << other
         << " decides " << *b_x;
    } else {
      cert.kind = ViolationKind::kTermination;
      os << "never decides although correct";
    }
    cert.narrative = os.str();
    return cert;
  }
  return std::nullopt;
}

}  // namespace ba::lowerbound
