#pragma once

// Batch driver for the attack engine: runs the Theorem 2 attack over a grid
// of (protocol, n, t) points and collects one structured row per point —
// the machinery behind `examples/paper_report` and reusable by downstream
// evaluation scripts.
//
// Grid points are independent, so the sweep fans them across the
// deterministic experiment pool (parallel/experiment_pool.h) when
// SweepOptions::jobs != 1. The contract — asserted by
// tests/parallel/sweep_determinism_test.cpp — is that the produced rows,
// including the encoded violation certificates, are bit-identical to the
// serial path for every worker count.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_spec.h"
#include "lowerbound/attack.h"
#include "runtime/process.h"
#include "runtime/serde.h"

namespace ba::lowerbound {

struct SweepEntry {
  std::string protocol_name;
  /// Builds the protocol for a given system size (may capture shared state
  /// such as an Authenticator per n). Must be pure: the sweep calls it once
  /// per grid point, possibly concurrently from pool workers.
  std::function<ProtocolFactory(const SystemParams&)> make;
};

/// One point of a message-vs-fault curve: the protocol run once at actual
/// fault count f under the sweep's fault-axis adversary. The paper's point
/// made measurable: the static bound stays Omega(t^2) at every f (it may
/// not decrease in f), however few processes actually misbehave.
struct FaultCurvePoint {
  std::uint32_t f{0};
  /// Messages sent by correct processes in the run at this f.
  std::uint64_t messages{0};
  /// statics::budget_at(bounds, params, f); nullopt when the protocol
  /// declares no CommSpec.
  std::optional<std::uint64_t> static_bound_f;
  /// All correct processes decided and agree.
  bool agree{false};

  friend bool operator==(const FaultCurvePoint&,
                         const FaultCurvePoint&) = default;
};

struct SweepRow {
  std::string protocol_name;
  SystemParams params;
  bool violation{false};
  bool certificate_verified{false};
  std::string violation_kind;  // empty when no violation
  std::uint64_t max_messages{0};
  std::uint64_t bound{0};
  /// Statically derived worst-case message bound for this protocol at this
  /// (n, t) (statics::budget_at over the protocol's CommSpec); nullopt when
  /// the protocol declares no spec. Observed max_messages exceeding this is
  /// a spec bug — the conformance suite (tests/statics/) asserts it never
  /// happens for the registered protocols.
  std::optional<std::uint64_t> static_bound;
  std::optional<Round> critical_round;
  /// Serialized violation certificate (certificate_io), empty when no
  /// violation. Kept in encoded form so "parallel == serial" can be
  /// asserted byte-for-byte and rows can be re-verified offline.
  Bytes certificate;
  /// Message-vs-fault curve, one point per f in 0..t; empty unless
  /// SweepOptions::fault_axis is set. Legacy (axis-less) rows encode
  /// byte-identically to the pre-fault-axis format.
  std::vector<FaultCurvePoint> fault_curve;

  friend bool operator==(const SweepRow&, const SweepRow&) = default;
};

struct SweepOptions {
  /// Per-point attack configuration. `attack.backend` selects the execution
  /// backend for every grid point (null = lockstep); backends are const and
  /// thread-safe by contract, so the same handle is shared by all pool
  /// workers and the bit-identical parallel-vs-serial guarantee holds for
  /// sim-backed sweeps too.
  AttackOptions attack;
  /// Worker threads to fan grid points across: 1 (default) runs the serial
  /// reference path in the calling thread; 0 means hardware concurrency.
  unsigned jobs{1};
  /// Streaming hook: called once per grid point with (index, row) the
  /// moment the point completes. Calls are serialized (never concurrent)
  /// but arrive in completion order when jobs != 1 — pair with
  /// service::OrderedNdjsonWriter to emit index-ordered output. The index
  /// is entry-major (index = entry_i * |grid| + grid_i), identical to the
  /// rows vector's order.
  std::function<void(std::size_t, const SweepRow&)> on_row;
  /// Keep rows in SweepResult::rows (default). Off streams large grids
  /// through on_row with O(1) row memory; theorem2_consistent() still works
  /// (consistency is folded per row as the sweep runs).
  bool keep_rows{true};
  /// Fault-axis template: when set, every grid point additionally charts a
  /// message-vs-fault curve — the template instantiated at count f for each
  /// f in 0..t, compiled to an adversary (faults/compile.h) and run once on
  /// the sweep's backend with alternating-bit proposals. The kind must be
  /// sweepable (faults::kind_sweepable); the template's own count is
  /// ignored.
  std::optional<faults::FaultSpec> fault_axis;
  /// Seed for randomized fault-axis plans (e.g. crash round derivation).
  std::uint64_t fault_seed{1};
};

struct SweepResult {
  /// Empty when SweepOptions::keep_rows was off; see `points`.
  std::vector<SweepRow> rows;
  /// Grid points evaluated (rows.size() when rows are kept).
  std::size_t points{0};
  /// Resolved worker count the sweep ran with (1 for the serial path).
  unsigned jobs_used{1};
  /// Wall-clock time of the grid evaluation, microseconds.
  std::uint64_t wall_micros{0};
  /// Per-row consistency verdict folded while the sweep ran; what
  /// theorem2_consistent() reports when `rows` was not kept.
  bool streamed_consistent{true};
  /// Canonical format of the fault-axis template the sweep ran with
  /// (FaultSpec::format of the f=0 instantiation); empty when off. Recorded
  /// so write_bench_json can stamp the axis into the artifact.
  std::string fault_axis;

  /// True iff every sub-threshold protocol was broken with a verified
  /// certificate and every surviving protocol clears the bound.
  [[nodiscard]] bool theorem2_consistent() const;
};

/// Runs the attack for every entry at every (n, t) point. Certificates are
/// re-verified by replay before a row claims `certificate_verified`.
SweepResult run_attack_sweep(const std::vector<SweepEntry>& entries,
                             const std::vector<SystemParams>& grid,
                             const SweepOptions& options);

/// Back-compat overload: serial sweep with the given attack options.
SweepResult run_attack_sweep(const std::vector<SweepEntry>& entries,
                             const std::vector<SystemParams>& grid,
                             const AttackOptions& options = {});

/// Renders the rows as a GitHub-flavored markdown table.
void write_markdown(std::ostream& os, const SweepResult& result);

/// One grid point as a self-describing NDJSON line (no trailing newline):
/// the streaming row format of `ba_cli sweep --out` (docs/SERVICE.md). The
/// encoding is canonical — a fixed field order with no whitespace — so
/// streamed outputs compare byte-for-byte across worker counts.
[[nodiscard]] std::string encode_sweep_row_ndjson(const SweepRow& row);

/// Renders the sweep as the machine-readable BENCH_sweep.json document:
/// wall time, throughput, and one object per grid point (messages, bound,
/// verdict, certificate size). The perf-trajectory artifact CI uploads.
void write_bench_json(std::ostream& os, const SweepResult& result);

/// The library's standard candidate + reference protocol set.
std::vector<SweepEntry> standard_sweep_entries();

/// The standard (n, t) grid the paper report and the benches sweep.
std::vector<SystemParams> standard_sweep_grid();

}  // namespace ba::lowerbound
