#pragma once

// Batch driver for the attack engine: runs the Theorem 2 attack over a grid
// of (protocol, n, t) points and collects one structured row per point —
// the machinery behind `examples/paper_report` and reusable by downstream
// evaluation scripts.

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "lowerbound/attack.h"
#include "runtime/process.h"

namespace ba::lowerbound {

struct SweepEntry {
  std::string protocol_name;
  /// Builds the protocol for a given system size (may capture shared state
  /// such as an Authenticator per n).
  std::function<ProtocolFactory(const SystemParams&)> make;
};

struct SweepRow {
  std::string protocol_name;
  SystemParams params;
  bool violation{false};
  bool certificate_verified{false};
  std::string violation_kind;  // empty when no violation
  std::uint64_t max_messages{0};
  std::uint64_t bound{0};
  std::optional<Round> critical_round;
};

struct SweepResult {
  std::vector<SweepRow> rows;

  /// True iff every sub-threshold protocol was broken with a verified
  /// certificate and every surviving protocol clears the bound.
  [[nodiscard]] bool theorem2_consistent() const;
};

/// Runs the attack for every entry at every (n, t) point. Certificates are
/// re-verified by replay before a row claims `certificate_verified`.
SweepResult run_attack_sweep(const std::vector<SweepEntry>& entries,
                             const std::vector<SystemParams>& grid,
                             const AttackOptions& options = {});

/// Renders the rows as a GitHub-flavored markdown table.
void write_markdown(std::ostream& os, const SweepResult& result);

/// The library's standard candidate + reference protocol set.
std::vector<SweepEntry> standard_sweep_entries();

}  // namespace ba::lowerbound
