#pragma once

// Lemma 2 machinery: in any execution where group Y is isolated and the
// correct processes decide b_X, more than half of Y — specifically every
// member that receive-omitted fewer than t/2 messages from correct senders —
// must also decide b_X. A member that does not yields, via swap_omission, a
// valid execution in which a *correct* process disagrees with (or fails to
// terminate against) another correct process: a violation certificate.

#include <optional>
#include <vector>

#include "lowerbound/certificate.h"
#include "runtime/trace.h"

namespace ba::lowerbound {

struct Lemma2Report {
  /// Unanimous decision of the correct processes (nullopt => they already
  /// violate Agreement/Termination themselves).
  std::optional<Value> b_x;
  /// Members of Y with fewer than t/2 receive-omitted messages from correct
  /// senders (the paper's Y' candidates).
  std::vector<ProcessId> low_omission;
  /// Subset of low_omission that decided b_x.
  std::vector<ProcessId> agreeing;
  /// Lemma 2's conclusion: |agreeing| > |Y| / 2.
  bool holds{false};
};

/// Evaluates Lemma 2's statement on execution `e` with isolated group `y`
/// (X is the correct set of `e`; Z the remaining faulty processes).
Lemma2Report lemma2_report(const ExecutionTrace& e, const ProcessSet& y);

/// Hunts for a certificate: a member of `y` that (a) disagrees with the
/// correct processes or never decides, and (b) passes the swap_omission
/// preconditions. Returns nullopt when every such attempt fails (which is
/// what happens for correct protocols).
std::optional<ViolationCertificate> find_lemma2_violation(
    const ExecutionTrace& e, const ProcessSet& y, const std::string& how);

}  // namespace ba::lowerbound
