#pragma once

// An executable Dolev-Reischuk-style attack [51] for Byzantine BROADCAST —
// the paper's §1 point of departure ("the seminal Dolev-Reischuk bound
// proves that Byzantine broadcast cannot be solved unless Omega(t^2)
// messages are exchanged").
//
// The classical argument: if correct processes send too few messages, some
// non-sender process p hears from at most t processes in the fault-free
// execution. Corrupt exactly those senders (omission model) and have them
// send-omit everything addressed to p: p's view becomes independent of the
// sender's value, while the OTHER correct processes still learn it. Running
// the same cut with two different sender values v0 != v1 forces p to decide
// identically in both — so in at least one of them p disagrees with a
// correct process that decided the sender's value (or p never decides):
// a concrete Agreement/Termination violation with <= t omission faults.
//
// The engine returns the same replay-verifiable certificates as the weak-
// consensus attack. Correct broadcast protocols (Dolev-Strong) escape
// because every non-sender hears from ~n-1 processes: the cut set exceeds
// the fault budget (or leaves no correct witness), which the report records.

#include <optional>
#include <string>

#include "engine/backend.h"
#include "lowerbound/certificate.h"
#include "runtime/process.h"
#include "runtime/types.h"

namespace ba::lowerbound {

struct BroadcastAttackReport {
  bool violation_found{false};
  std::optional<ViolationCertificate> certificate;
  std::string narrative;
  /// The victim process and its fault-free in-neighbour count, when a
  /// feasible cut existed.
  ProcessId victim{kNoProcess};
  std::size_t cut_size{0};
  /// Smallest in-neighbourhood over non-sender processes (diagnostic: the
  /// protocol is attackable only when this is <= t with a correct witness
  /// left over).
  std::size_t min_in_neighbourhood{0};
  std::uint64_t fault_free_messages{0};
};

/// Attacks a Byzantine-broadcast protocol (designated `sender`): the
/// protocol's decisions should deliver the sender's proposal to every
/// correct process when the sender is correct. `v0` and `v1` are two
/// distinct sender values to drive the indistinguishability pair;
/// `filler` is the proposal of the non-sender processes (held fixed).
/// `backend` evaluates the three constructed executions (the fault-free
/// probe and the two cut runs); it must support traces.
BroadcastAttackReport attack_broadcast(
    const SystemParams& params, const ProtocolFactory& protocol,
    ProcessId sender, const Value& v0, const Value& v1,
    const Value& filler = Value::bit(0), Round max_rounds = 4000,
    const engine::ExecutionBackend& backend = engine::default_backend());

}  // namespace ba::lowerbound
