#pragma once

// Violation certificates: self-contained, machine-checkable counterexamples
// produced by the Theorem 2 attack engine. A certificate names a concrete
// execution (with <= t omission faults) and the property of weak consensus it
// violates; `verify_certificate` re-validates the execution structurally
// (A.1.6) AND re-runs the protocol's deterministic state machines against the
// recorded receive histories, so a certificate cannot be faked.

#include <optional>
#include <string>

#include "runtime/process.h"
#include "runtime/trace.h"

namespace ba::lowerbound {

enum class ViolationKind {
  kWeakValidity,  // all correct, unanimous proposal, different decision
  kAgreement,     // two correct processes decide differently
  kTermination,   // a correct process never decides (execution quiesced)
};

std::string to_string(ViolationKind k);

struct ViolationCertificate {
  ViolationKind kind{ViolationKind::kAgreement};
  ExecutionTrace execution;
  /// The correct processes exhibiting the violation (two for Agreement, one
  /// for Termination / Weak Validity).
  ProcessId witness_a{kNoProcess};
  ProcessId witness_b{kNoProcess};
  std::string narrative;  // how the engine constructed this execution
};

struct CertificateCheck {
  bool ok{false};
  std::string error;
};

/// Full verification: structural validity of the execution, fault budget,
/// witnesses correct, decisions replayed from `protocol` match the trace,
/// and the claimed violation really occurs.
CertificateCheck verify_certificate(const ViolationCertificate& cert,
                                    const ProtocolFactory& protocol);

}  // namespace ba::lowerbound
