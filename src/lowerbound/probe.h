#pragma once

// The shared message-complexity probe: one definition of "worst observed
// messages" used by both the benches (bench/bench_util.h forwards here) and
// the test battery, so the two can never drift apart.
//
// The paper counts messages *sent by correct processes*, so omitting
// deliveries cannot lower the count an adversary reveals — probing a small
// schedule of isolation adversaries under-approximates the true worst case
// but never overshoots it. Callers pick the schedule explicitly (or take
// `default_probe_schedule`), which keeps the probe a pure function of its
// arguments — a requirement for fanning probes across the experiment pool.
//
// Executions are evaluated by an engine::ExecutionBackend, so the same probe
// runs on the lockstep executor or the discrete-event simulator (the parity
// suite asserts identical worst-case counts under both).

#include <cstdint>
#include <vector>

#include "engine/backend.h"
#include "runtime/fault.h"
#include "runtime/process.h"
#include "runtime/value.h"

namespace ba::lowerbound {

/// The standard probe schedule: isolate the suffix group of max(1, t/4)
/// processes from round k, for k in {1, 2, 3}.
std::vector<Adversary> default_probe_schedule(const SystemParams& params);

/// Largest message complexity (messages sent by correct processes) over the
/// fault-free unanimous-`v` execution plus every adversary in `schedule`,
/// with each execution evaluated by `backend`.
std::uint64_t worst_observed_messages_via(
    const engine::ExecutionBackend& backend, const SystemParams& params,
    const ProtocolFactory& protocol, const Value& v,
    const std::vector<Adversary>& schedule);

/// Largest message complexity (messages sent by correct processes) over the
/// fault-free unanimous-`v` execution plus every adversary in `schedule`,
/// evaluated by engine::default_backend() (the lockstep executor).
std::uint64_t worst_observed_messages(const SystemParams& params,
                                      const ProtocolFactory& protocol,
                                      const Value& v,
                                      const std::vector<Adversary>& schedule);

}  // namespace ba::lowerbound
