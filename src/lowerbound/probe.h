#pragma once

// The shared message-complexity probe: one definition of "worst observed
// messages" used by both the benches (bench/bench_util.h forwards here) and
// the test battery, so the two can never drift apart.
//
// The paper counts messages *sent by correct processes*, so omitting
// deliveries cannot lower the count an adversary reveals — probing a small
// schedule of isolation adversaries under-approximates the true worst case
// but never overshoots it. Callers pick the schedule explicitly (or take
// `default_probe_schedule`), which keeps the probe a pure function of its
// arguments — a requirement for fanning probes across the experiment pool.

#include <cstdint>
#include <vector>

#include "runtime/fault.h"
#include "runtime/process.h"
#include "runtime/value.h"

namespace ba::lowerbound {

/// The standard probe schedule: isolate the suffix group of max(1, t/4)
/// processes from round k, for k in {1, 2, 3}.
std::vector<Adversary> default_probe_schedule(const SystemParams& params);

/// Pluggable execution backend for the probe: returns the count of messages
/// sent by correct processes for one execution of `protocol` with the given
/// unanimous proposals under `adversary`. The default backend runs the
/// lockstep executor; the sim parity suite substitutes the discrete-event
/// simulator (sim/sync_adapter.h) and asserts identical worst-case counts.
using MessageCountRunner = std::function<std::uint64_t(
    const SystemParams&, const ProtocolFactory&, const std::vector<Value>&,
    const Adversary&)>;

/// The default backend: run_execution with traces off.
MessageCountRunner lockstep_message_count_runner();

/// Largest message complexity (messages sent by correct processes) over the
/// fault-free unanimous-`v` execution plus every adversary in `schedule`,
/// with each execution evaluated by `runner`.
std::uint64_t worst_observed_messages_via(
    const MessageCountRunner& runner, const SystemParams& params,
    const ProtocolFactory& protocol, const Value& v,
    const std::vector<Adversary>& schedule);

/// Largest message complexity (messages sent by correct processes) over the
/// fault-free unanimous-`v` execution plus every adversary in `schedule`.
std::uint64_t worst_observed_messages(const SystemParams& params,
                                      const ProtocolFactory& protocol,
                                      const Value& v,
                                      const std::vector<Adversary>& schedule);

}  // namespace ba::lowerbound
