#include "lowerbound/certificate.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "runtime/sync_system.h"

namespace ba::lowerbound {

std::string to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kWeakValidity:
      return "WeakValidity";
    case ViolationKind::kAgreement:
      return "Agreement";
    case ViolationKind::kTermination:
      return "Termination";
  }
  return "?";
}

namespace {

/// Replays process `p` against its recorded receive history and checks that
/// the recorded behaviour (sends incl. omitted, decision) matches.
CertificateCheck replay_matches(const ExecutionTrace& trace,
                                const ProtocolFactory& protocol,
                                ProcessId p) {
  CertificateCheck out;
  const ProcessTrace& pt = trace.procs.at(p);
  std::vector<Inbox> inboxes;
  inboxes.reserve(pt.rounds.size());
  for (const RoundEvents& re : pt.rounds) inboxes.push_back(re.received);

  ReplayResult replay =
      replay_process(trace.params, protocol, p, pt.proposal, inboxes);

  for (std::size_t r = 0; r < pt.rounds.size(); ++r) {
    std::vector<Message> expected = pt.rounds[r].sent;
    for (const Message& m : pt.rounds[r].send_omitted) expected.push_back(m);
    std::sort(expected.begin(), expected.end());
    std::vector<Message> produced = normalize_outbox(
        replay.outboxes[r], p, static_cast<Round>(r + 1), trace.params.n);
    std::sort(produced.begin(), produced.end());
    if (expected != produced) {
      std::ostringstream os;
      os << "replayed sends of p" << p << " differ from the trace in round "
         << (r + 1);
      out.error = os.str();
      return out;
    }
  }
  if (replay.decision != pt.decision) {
    std::ostringstream os;
    os << "replayed decision of p" << p << " differs from the trace";
    out.error = os.str();
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace

CertificateCheck verify_certificate(const ViolationCertificate& cert,
                                    const ProtocolFactory& protocol) {
  CertificateCheck out;
  const ExecutionTrace& e = cert.execution;

  if (auto why = e.validate()) {
    out.error = "execution invalid: " + *why;
    return out;
  }
  if (e.faulty.size() > e.params.t) {
    out.error = "more than t faulty processes";
    return out;
  }

  // Replay every process: the trace must be a genuine execution of the
  // protocol, not just structurally well-formed.
  for (ProcessId p = 0; p < e.params.n; ++p) {
    CertificateCheck rc = replay_matches(e, protocol, p);
    if (!rc.ok) return rc;
  }

  auto correct = [&](ProcessId p) { return !e.faulty.contains(p); };
  switch (cert.kind) {
    case ViolationKind::kAgreement: {
      if (!correct(cert.witness_a) || !correct(cert.witness_b)) {
        out.error = "agreement witnesses must be correct";
        return out;
      }
      const auto& da = e.procs[cert.witness_a].decision;
      const auto& db = e.procs[cert.witness_b].decision;
      if (!da || !db || *da == *db) {
        out.error = "witnesses do not decide differently";
        return out;
      }
      break;
    }
    case ViolationKind::kTermination: {
      if (!correct(cert.witness_a)) {
        out.error = "termination witness must be correct";
        return out;
      }
      if (!e.quiesced) {
        out.error = "execution not quiesced; non-termination not established";
        return out;
      }
      if (e.procs[cert.witness_a].decision.has_value()) {
        out.error = "termination witness actually decided";
        return out;
      }
      break;
    }
    case ViolationKind::kWeakValidity: {
      if (!e.faulty.empty()) {
        out.error = "weak-validity violation requires a fault-free execution";
        return out;
      }
      std::set<Value> proposals;
      for (const ProcessTrace& pt : e.procs) proposals.insert(pt.proposal);
      if (proposals.size() != 1) {
        out.error = "proposals not unanimous";
        return out;
      }
      const auto& d = e.procs[cert.witness_a].decision;
      if (!d) {
        if (!e.quiesced) {
          out.error = "witness undecided but execution not quiesced";
          return out;
        }
      } else if (*d == *proposals.begin()) {
        out.error = "witness decided the unanimous proposal; no violation";
        return out;
      }
      break;
    }
  }
  out.ok = true;
  return out;
}

}  // namespace ba::lowerbound
