#include "lowerbound/sweep.h"

#include <memory>
#include <ostream>

#include "crypto/signature.h"
#include "lowerbound/certificate.h"
#include "protocols/weak_consensus.h"

namespace ba::lowerbound {

bool SweepResult::theorem2_consistent() const {
  for (const SweepRow& row : rows) {
    if (row.violation) {
      if (!row.certificate_verified) return false;
    } else {
      if (row.max_messages < row.bound) return false;
    }
  }
  return true;
}

SweepResult run_attack_sweep(const std::vector<SweepEntry>& entries,
                             const std::vector<SystemParams>& grid,
                             const AttackOptions& options) {
  SweepResult result;
  for (const SweepEntry& entry : entries) {
    for (const SystemParams& params : grid) {
      ProtocolFactory protocol = entry.make(params);
      AttackReport report =
          attack_weak_consensus(params, protocol, options);
      SweepRow row;
      row.protocol_name = entry.protocol_name;
      row.params = params;
      row.violation = report.violation_found;
      row.max_messages = report.max_message_complexity;
      row.bound = report.bound;
      row.critical_round = report.critical_round;
      if (report.certificate) {
        row.violation_kind = to_string(report.certificate->kind);
        row.certificate_verified =
            verify_certificate(*report.certificate, protocol).ok;
      }
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

void write_markdown(std::ostream& os, const SweepResult& result) {
  os << "| protocol | n | t | messages | t^2/32 | outcome |\n"
     << "|---|---|---|---|---|---|\n";
  for (const SweepRow& row : result.rows) {
    os << "| " << row.protocol_name << " | " << row.params.n << " | "
       << row.params.t << " | " << row.max_messages << " | " << row.bound
       << " | ";
    if (row.violation) {
      os << row.violation_kind << " violation ("
         << (row.certificate_verified ? "verified" : "UNVERIFIED") << ")";
    } else {
      os << "survives";
    }
    os << " |\n";
  }
}

std::vector<SweepEntry> standard_sweep_entries() {
  std::vector<SweepEntry> entries;
  entries.push_back({"silent-default", [](const SystemParams&) {
                       return protocols::wc_candidate_silent(1);
                     }});
  entries.push_back({"leader-beacon", [](const SystemParams&) {
                       return protocols::wc_candidate_leader_beacon();
                     }});
  entries.push_back({"gossip-ring-2", [](const SystemParams&) {
                       return protocols::wc_candidate_gossip_ring(2, 3);
                     }});
  entries.push_back({"dolev-strong-weak", [](const SystemParams& params) {
                       auto auth = std::make_shared<crypto::Authenticator>(
                           0xd5, params.n);
                       return protocols::weak_consensus_auth(auth);
                     }});
  return entries;
}

}  // namespace ba::lowerbound
