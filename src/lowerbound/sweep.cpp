#include "lowerbound/sweep.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "crypto/signature.h"
#include "faults/compile.h"
#include "lowerbound/certificate.h"
#include "lowerbound/certificate_io.h"
#include "parallel/experiment_pool.h"
#include "protocols/comm_specs.h"
#include "protocols/weak_consensus.h"
#include "statics/analyzer.h"

namespace ba::lowerbound {
namespace {

/// Charts the message-vs-fault curve of one grid point: the fault-axis
/// template at count f for f in 0..t, each compiled to an adversary and run
/// once on `backend` with alternating-bit proposals. Pure, like sweep_point.
std::vector<FaultCurvePoint> chart_fault_curve(
    const ProtocolFactory& protocol, const SystemParams& params,
    const std::optional<statics::StaticBounds>& bounds,
    const SweepOptions& options) {
  const engine::ExecutionBackend& backend = options.attack.backend
                                                ? *options.attack.backend
                                                : engine::default_backend();
  std::vector<Value> proposals;
  proposals.reserve(params.n);
  for (std::uint32_t p = 0; p < params.n; ++p) {
    proposals.push_back(Value::bit(static_cast<int>(p % 2)));
  }
  std::vector<FaultCurvePoint> curve;
  curve.reserve(params.t + 1);
  for (std::uint32_t f = 0; f <= params.t; ++f) {
    const faults::FaultSpec spec = options.fault_axis->with_count(f);
    const Adversary adversary =
        faults::compile_adversary(spec, params, options.fault_seed);
    const RunResult res = backend.run(params, protocol, proposals, adversary);
    FaultCurvePoint point;
    point.f = f;
    point.messages = res.messages_sent_by_correct;
    if (bounds) {
      point.static_bound_f = statics::budget_at(*bounds, params, f).messages;
    }
    point.agree = res.unanimous_correct_decision().has_value();
    curve.push_back(point);
  }
  return curve;
}

/// Evaluates one grid point. A pure function of (entry, params, options):
/// this is what makes the parallel fan-out trivially deterministic.
SweepRow sweep_point(const SweepEntry& entry, const SystemParams& params,
                     const SweepOptions& options) {
  ProtocolFactory protocol = entry.make(params);
  AttackReport report = attack_weak_consensus(params, protocol, options.attack);
  SweepRow row;
  row.protocol_name = entry.protocol_name;
  row.params = params;
  row.violation = report.violation_found;
  row.max_messages = report.max_message_complexity;
  row.bound = report.bound;
  std::optional<statics::StaticBounds> bounds;
  if (const statics::CommSpec* spec =
          protocols::find_comm_spec(entry.protocol_name)) {
    bounds = statics::analyze(*spec);
    row.static_bound = statics::budget_at(*bounds, params).messages;
  }
  row.critical_round = report.critical_round;
  if (report.certificate) {
    row.violation_kind = to_string(report.certificate->kind);
    row.certificate_verified =
        verify_certificate(*report.certificate, protocol).ok;
    row.certificate = encode_certificate(*report.certificate);
  }
  if (options.fault_axis) {
    row.fault_curve = chart_fault_curve(protocol, params, bounds, options);
  }
  return row;
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

/// Observed-over-static ratio; nullopt when there is no (or a zero) static
/// bound to compare against.
std::optional<double> obs_static_ratio(const SweepRow& row) {
  if (!row.static_bound || *row.static_bound == 0) return std::nullopt;
  return static_cast<double>(row.max_messages) /
         static_cast<double>(*row.static_bound);
}

}  // namespace

/// The per-row half of the Theorem 2 verdict, folded incrementally so
/// streaming sweeps (keep_rows off) still report consistency.
bool row_consistent(const SweepRow& row) {
  if (row.violation) return row.certificate_verified;
  return row.max_messages >= row.bound;
}

bool SweepResult::theorem2_consistent() const {
  if (rows.empty()) return streamed_consistent;
  for (const SweepRow& row : rows) {
    if (!row_consistent(row)) return false;
  }
  return true;
}

SweepResult run_attack_sweep(const std::vector<SweepEntry>& entries,
                             const std::vector<SystemParams>& grid,
                             const SweepOptions& options) {
  SweepResult result;
  if (options.fault_axis) {
    if (!faults::kind_sweepable(options.fault_axis->kind)) {
      throw std::runtime_error(
          std::string{"sweep fault axis '"} +
          faults::fault_kind_name(options.fault_axis->kind) +
          "': want a sweepable fault kind (crash mute isolate silent-byz "
          "noise-byz)");
    }
    result.fault_axis = options.fault_axis->with_count(0).format();
  }
  const std::size_t points = entries.size() * grid.size();
  result.points = points;
  const auto start = std::chrono::steady_clock::now();
  if (options.jobs == 1) {
    // Serial reference path: the parallel path must match it bit-for-bit.
    if (options.keep_rows) result.rows.reserve(points);
    std::size_t index = 0;
    for (const SweepEntry& entry : entries) {
      for (const SystemParams& params : grid) {
        SweepRow row = sweep_point(entry, params, options);
        result.streamed_consistent =
            result.streamed_consistent && row_consistent(row);
        if (options.on_row) options.on_row(index, row);
        if (options.keep_rows) result.rows.push_back(std::move(row));
        ++index;
      }
    }
    result.jobs_used = 1;
  } else {
    parallel::ExperimentPool pool(options.jobs);
    // Serializes on_row and the consistency fold; sweep_point itself runs
    // unlocked on the workers.
    std::mutex row_mu;
    if (options.keep_rows) result.rows.resize(points);
    for (std::size_t index = 0; index < points; ++index) {
      pool.submit([&, index] {
        const SweepEntry& entry = entries[index / grid.size()];
        const SystemParams& params = grid[index % grid.size()];
        SweepRow row = sweep_point(entry, params, options);
        const std::lock_guard<std::mutex> lock(row_mu);
        result.streamed_consistent =
            result.streamed_consistent && row_consistent(row);
        if (options.on_row) options.on_row(index, row);
        if (options.keep_rows) result.rows[index] = std::move(row);
      });
    }
    pool.collect();
    result.jobs_used = pool.jobs();
  }
  result.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

SweepResult run_attack_sweep(const std::vector<SweepEntry>& entries,
                             const std::vector<SystemParams>& grid,
                             const AttackOptions& options) {
  SweepOptions sweep_options;
  sweep_options.attack = options;
  return run_attack_sweep(entries, grid, sweep_options);
}

void write_markdown(std::ostream& os, const SweepResult& result) {
  os << "| protocol | n | t | messages | t^2/32 | static bound | obs/static "
        "| outcome |\n"
     << "|---|---|---|---|---|---|---|---|\n";
  for (const SweepRow& row : result.rows) {
    os << "| " << row.protocol_name << " | " << row.params.n << " | "
       << row.params.t << " | " << row.max_messages << " | " << row.bound
       << " | ";
    if (row.static_bound) {
      os << *row.static_bound;
    } else {
      os << "-";
    }
    os << " | ";
    if (const std::optional<double> ratio = obs_static_ratio(row)) {
      os << *ratio;
    } else {
      os << "-";
    }
    os << " | ";
    if (row.violation) {
      os << row.violation_kind << " violation ("
         << (row.certificate_verified ? "verified" : "UNVERIFIED") << ")";
    } else {
      os << "survives";
    }
    os << " |\n";
  }
  if (result.fault_axis.empty()) return;
  os << "\nMessage-vs-fault curves (fault axis `" << result.fault_axis
     << "`):\n\n"
     << "| protocol | n | t | f | messages | static bound(f) | agree |\n"
     << "|---|---|---|---|---|---|---|\n";
  for (const SweepRow& row : result.rows) {
    for (const FaultCurvePoint& point : row.fault_curve) {
      os << "| " << row.protocol_name << " | " << row.params.n << " | "
         << row.params.t << " | " << point.f << " | " << point.messages
         << " | ";
      if (point.static_bound_f) {
        os << *point.static_bound_f;
      } else {
        os << "-";
      }
      os << " | " << (point.agree ? "yes" : "no") << " |\n";
    }
  }
}

void write_bench_json(std::ostream& os, const SweepResult& result) {
  const double wall_seconds =
      static_cast<double>(result.wall_micros) / 1e6;
  const double points_per_sec =
      result.wall_micros == 0
          ? 0.0
          : static_cast<double>(result.points) / wall_seconds;
  os << "{\n"
     << "  \"experiment\": \"theorem2_attack_sweep\",\n"
     << "  \"fault_axis\": ";
  if (result.fault_axis.empty()) {
    os << "null";
  } else {
    os << "\"";
    json_escape(os, result.fault_axis);
    os << "\"";
  }
  os << ",\n"
     << "  \"jobs\": " << result.jobs_used << ",\n"
     << "  \"points\": " << result.points << ",\n"
     << "  \"wall_seconds\": " << wall_seconds << ",\n"
     << "  \"points_per_sec\": " << points_per_sec << ",\n"
     << "  \"theorem2_consistent\": "
     << (result.theorem2_consistent() ? "true" : "false") << ",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const SweepRow& row = result.rows[i];
    os << "    {\"protocol\": \"";
    json_escape(os, row.protocol_name);
    os << "\", \"n\": " << row.params.n << ", \"t\": " << row.params.t
       << ", \"messages\": " << row.max_messages
       << ", \"bound\": " << row.bound << ", \"static_bound\": ";
    if (row.static_bound) {
      os << *row.static_bound;
    } else {
      os << "null";
    }
    os << ", \"obs_static_ratio\": ";
    if (const std::optional<double> ratio = obs_static_ratio(row)) {
      os << *ratio;
    } else {
      os << "null";
    }
    os << ", \"violation\": "
       << (row.violation ? "true" : "false") << ", \"kind\": \"";
    json_escape(os, row.violation_kind);
    os << "\", \"certificate_verified\": "
       << (row.certificate_verified ? "true" : "false")
       << ", \"certificate_bytes\": " << row.certificate.size() << "}"
       << (i + 1 < result.rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string encode_sweep_row_ndjson(const SweepRow& row) {
  const auto append_escaped = [](std::string& out, const std::string& s) {
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
  };
  std::string out = "{\"protocol\":\"";
  append_escaped(out, row.protocol_name);
  out += "\",\"n\":" + std::to_string(row.params.n);
  out += ",\"t\":" + std::to_string(row.params.t);
  out += ",\"messages\":" + std::to_string(row.max_messages);
  out += ",\"bound\":" + std::to_string(row.bound);
  out += ",\"static_bound\":";
  out += row.static_bound ? std::to_string(*row.static_bound) : "null";
  out += ",\"violation\":";
  out += row.violation ? "true" : "false";
  out += ",\"kind\":\"";
  append_escaped(out, row.violation_kind);
  out += "\",\"certificate_verified\":";
  out += row.certificate_verified ? "true" : "false";
  out += ",\"certificate_bytes\":" + std::to_string(row.certificate.size());
  // Appended only when a fault axis was swept: legacy rows stay
  // byte-identical to the pre-fault-axis encoding.
  if (!row.fault_curve.empty()) {
    out += ",\"fault_curve\":[";
    for (std::size_t i = 0; i < row.fault_curve.size(); ++i) {
      const FaultCurvePoint& point = row.fault_curve[i];
      if (i != 0) out += ',';
      out += "{\"f\":" + std::to_string(point.f);
      out += ",\"messages\":" + std::to_string(point.messages);
      out += ",\"static_bound_f\":";
      out += point.static_bound_f ? std::to_string(*point.static_bound_f)
                                  : "null";
      out += ",\"agree\":";
      out += point.agree ? "true" : "false";
      out += '}';
    }
    out += ']';
  }
  out += "}";
  return out;
}

std::vector<SweepEntry> standard_sweep_entries() {
  std::vector<SweepEntry> entries;
  entries.push_back({"silent-default", [](const SystemParams&) {
                       return protocols::wc_candidate_silent(1);
                     }});
  entries.push_back({"leader-beacon", [](const SystemParams&) {
                       return protocols::wc_candidate_leader_beacon();
                     }});
  entries.push_back({"gossip-ring-2", [](const SystemParams&) {
                       return protocols::wc_candidate_gossip_ring(2, 3);
                     }});
  entries.push_back({"dolev-strong-weak", [](const SystemParams& params) {
                       auto auth = std::make_shared<crypto::Authenticator>(
                           0xd5, params.n);
                       return protocols::weak_consensus_auth(auth);
                     }});
  return entries;
}

std::vector<SystemParams> standard_sweep_grid() {
  return {{12, 11}, {16, 15}};
}

}  // namespace ba::lowerbound
