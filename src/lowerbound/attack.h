#pragma once

// The Theorem 2 attack engine: the constructive form of the paper's
// lower-bound proof (§3). Given ANY weak-consensus protocol, it builds the
// executions of Table 1, locates the critical round of Lemma 4, merges
// per Lemma 5 / Figure 2, and — when the protocol's message complexity is
// below t^2/32 — extracts a machine-checkable violation certificate via
// Lemma 2 and swap_omission.
//
// For correct protocols (which necessarily send >= t^2/32 messages) every
// certificate attempt fails and the engine reports the observed message
// complexity against the bound instead.

#include <cstdint>
#include <optional>
#include <string>

#include "engine/backend.h"
#include "lowerbound/certificate.h"
#include "runtime/process.h"
#include "runtime/types.h"

namespace ba::lowerbound {

struct AttackOptions {
  Round max_rounds{4000};
  /// Override the isolated groups (defaults: the last 2*floor(t/4), split in
  /// half; group size at least 1).
  std::optional<ProcessSet> group_b;
  std::optional<ProcessSet> group_c;
  /// Probe every isolated execution with the Lemma 2 violation finder
  /// directly (a sound strengthening that often short-circuits the hunt).
  /// Disable to force the paper's pure critical-round + merge route.
  bool direct_lemma2{true};
  /// Execution backend evaluating every constructed execution; null means
  /// engine::default_backend() (the lockstep executor). Must support traces
  /// (engine::Capability::kTraces) — the engine merges and lints them. A
  /// shared handle keeps AttackOptions copyable and cheap to fan across the
  /// experiment pool; backends are const and thread-safe by contract.
  engine::BackendHandle backend{};
};

struct AttackReport {
  bool violation_found{false};
  std::optional<ViolationCertificate> certificate;
  /// Step-by-step log of the constructions performed.
  std::string narrative;
  /// Largest message complexity among the constructed executions.
  std::uint64_t max_message_complexity{0};
  /// The paper's bound t^2 / 32.
  std::uint64_t bound{0};
  /// The proposal bit of the execution family that flipped (Lemma 4).
  std::optional<int> family_bit;
  /// The critical round R (decision flips between E^B(R) and E^B(R+1)).
  std::optional<Round> critical_round;
  /// The default bit (decision of A in E_0^B(1)).
  std::optional<int> default_bit;
};

/// Runs the full attack against `protocol` (a candidate binary
/// weak-consensus protocol in the omission model).
AttackReport attack_weak_consensus(const SystemParams& params,
                                   const ProtocolFactory& protocol,
                                   const AttackOptions& options = {});

/// t^2/32, the Lemma 1 threshold.
inline std::uint64_t lemma1_bound(std::uint32_t t) {
  return static_cast<std::uint64_t>(t) * t / 32;
}

}  // namespace ba::lowerbound
