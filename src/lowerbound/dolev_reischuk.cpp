#include "lowerbound/dolev_reischuk.h"

#include <set>
#include <sstream>

#include "adversary/omission.h"
#include "runtime/sync_system.h"

namespace ba::lowerbound {
namespace {

/// Processes that sent p at least one message in the trace.
ProcessSet in_neighbourhood(const ExecutionTrace& trace, ProcessId p) {
  ProcessSet s;
  for (const RoundEvents& re : trace.procs[p].rounds) {
    for (const Message& m : re.received) s.insert(m.sender);
    for (const Message& m : re.receive_omitted) s.insert(m.sender);
  }
  return s;
}

/// The cut adversary: members of `cut` send-omit everything addressed to
/// `victim`, from round 1 on.
Adversary cut_towards(const ProcessSet& cut, ProcessId victim) {
  Adversary adv;
  adv.faulty = cut;
  adv.send_omit = [cut, victim](const MsgKey& k) {
    return k.receiver == victim && cut.contains(k.sender);
  };
  return adv;
}

}  // namespace

BroadcastAttackReport attack_broadcast(const SystemParams& params,
                                       const ProtocolFactory& protocol,
                                       ProcessId sender, const Value& v0,
                                       const Value& v1, const Value& filler,
                                       Round max_rounds,
                                       const engine::ExecutionBackend& backend) {
  BroadcastAttackReport report;
  std::ostringstream log;
  RunOptions opts;
  opts.max_rounds = max_rounds;

  auto proposals_with = [&](const Value& sender_value) {
    std::vector<Value> proposals(params.n, filler);
    proposals[sender] = sender_value;
    return proposals;
  };

  // Step 1: the fault-free execution with sender value v0 determines each
  // non-sender's in-neighbourhood.
  RunResult base = backend.run(params, protocol, proposals_with(v0),
                               Adversary::none(), opts);
  report.fault_free_messages = base.messages_sent_by_correct;
  log << "fault-free run with sender value " << v0 << ": "
      << report.fault_free_messages << " messages\n";

  ProcessId victim = kNoProcess;
  ProcessSet cut;
  report.min_in_neighbourhood = params.n;
  for (ProcessId p = 0; p < params.n; ++p) {
    if (p == sender) continue;
    ProcessSet nbh = in_neighbourhood(base.trace, p);
    report.min_in_neighbourhood =
        std::min(report.min_in_neighbourhood, nbh.size());
    if (nbh.size() > params.t) continue;  // cut exceeds the fault budget
    // (A faulty-but-honest sender inside the cut is fine: the violation is
    // an AGREEMENT violation between the victim and another correct
    // process, not a Sender Validity one.)
    ProcessSet candidate_cut = nbh;
    if (candidate_cut.size() + 2 > params.n) continue;  // no witness left
    victim = p;
    cut = candidate_cut;
    break;
  }
  if (victim == kNoProcess) {
    log << "no victim: every non-sender hears from more than t processes "
           "(min in-neighbourhood = "
        << report.min_in_neighbourhood << ") — protocol not cuttable\n";
    report.narrative = log.str();
    return report;
  }
  report.victim = victim;
  report.cut_size = cut.size();
  log << "victim p" << victim << " hears from only " << cut.size()
      << " processes; corrupting them to send-omit towards it\n";

  // Step 2: run the cut with both sender values. The victim's receive
  // history is empty in both (its only in-edges are severed), so by
  // determinism it behaves identically; correct processes still hear the
  // sender.
  for (const Value& sender_value : {v0, v1}) {
    RunResult res = backend.run(params, protocol, proposals_with(sender_value),
                                cut_towards(cut, victim), opts);
    const ExecutionTrace& e = res.trace;
    const auto& victim_decision = e.procs[victim].decision;
    log << "cut run with sender value " << sender_value << ": victim decides "
        << (victim_decision ? victim_decision->to_string() : "<nothing>")
        << "\n";

    // Find a correct witness whose decision differs from the victim's.
    for (ProcessId q = 0; q < params.n; ++q) {
      if (q == victim || e.faulty.contains(q)) continue;
      const auto& dq = e.procs[q].decision;
      if (!dq.has_value()) continue;
      if (victim_decision.has_value() && *victim_decision != *dq) {
        ViolationCertificate cert;
        cert.kind = ViolationKind::kAgreement;
        cert.execution = e;
        cert.witness_a = victim;
        cert.witness_b = q;
        std::ostringstream os;
        os << "Dolev-Reischuk cut: victim p" << victim << " (cut off from its "
           << cut.size() << " in-neighbours) decides " << *victim_decision
           << " while correct p" << q << " decides " << *dq
           << " (sender value " << sender_value << ")";
        cert.narrative = os.str();
        log << "VIOLATION: " << cert.narrative << "\n";
        report.violation_found = true;
        report.certificate = std::move(cert);
        report.narrative = log.str();
        return report;
      }
    }
    if (!victim_decision.has_value() && e.quiesced) {
      ViolationCertificate cert;
      cert.kind = ViolationKind::kTermination;
      cert.execution = e;
      cert.witness_a = victim;
      std::ostringstream os;
      os << "Dolev-Reischuk cut: correct victim p" << victim
         << " never decides (sender value " << sender_value << ")";
      cert.narrative = os.str();
      log << "VIOLATION: " << cert.narrative << "\n";
      report.violation_found = true;
      report.certificate = std::move(cert);
      report.narrative = log.str();
      return report;
    }
  }
  log << "victim agreed with the correct processes in both runs — no "
         "violation constructible\n";
  report.narrative = log.str();
  return report;
}

}  // namespace ba::lowerbound
