#include "lowerbound/certificate_io.h"

#include "runtime/trace_io.h"

namespace ba::lowerbound {

Value certificate_to_value(const ViolationCertificate& cert) {
  return Value{ValueVec{
      Value{"cert"}, Value{static_cast<std::int64_t>(cert.kind)},
      trace_to_value(cert.execution),
      Value{static_cast<std::int64_t>(cert.witness_a)},
      Value{static_cast<std::int64_t>(cert.witness_b)},
      Value{cert.narrative}}};
}

std::optional<ViolationCertificate> certificate_from_value(const Value& v) {
  if (!v.is_vec() || v.as_vec().size() != 6) return std::nullopt;
  const ValueVec& f = v.as_vec();
  if (!f[0].is_str() || f[0].as_str() != "cert" || !f[1].is_int() ||
      !f[3].is_int() || !f[4].is_int() || !f[5].is_str()) {
    return std::nullopt;
  }
  const std::int64_t kind = f[1].as_int();
  if (kind < 0 || kind > 2) return std::nullopt;
  auto trace = trace_from_value(f[2]);
  if (!trace) return std::nullopt;
  // Witnesses must name processes of the certified execution (or carry the
  // kNoProcess sentinel for kinds with fewer witnesses); anything else is a
  // malformed certificate, not a weird-but-usable one.
  auto checked_witness = [&](const Value& w) -> std::optional<ProcessId> {
    const std::int64_t i = w.as_int();
    if (i == static_cast<std::int64_t>(kNoProcess)) return kNoProcess;
    if (i < 0 || i >= static_cast<std::int64_t>(trace->params.n)) {
      return std::nullopt;
    }
    return static_cast<ProcessId>(i);
  };
  const auto wa = checked_witness(f[3]);
  const auto wb = checked_witness(f[4]);
  if (!wa || !wb) return std::nullopt;
  ViolationCertificate cert;
  cert.kind = static_cast<ViolationKind>(kind);
  cert.execution = std::move(*trace);
  cert.witness_a = *wa;
  cert.witness_b = *wb;
  cert.narrative = f[5].as_str();
  return cert;
}

Bytes encode_certificate(const ViolationCertificate& cert) {
  return encode_value(certificate_to_value(cert));
}

std::optional<ViolationCertificate> decode_certificate(
    std::span<const std::uint8_t> bytes) {
  try {
    return certificate_from_value(decode_value(bytes));
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace ba::lowerbound
