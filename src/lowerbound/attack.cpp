#include "lowerbound/attack.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "adversary/omission.h"
#include "calculus/merge.h"
#include "lowerbound/lemma2.h"
#include "runtime/sync_system.h"

namespace ba::lowerbound {
namespace {

using calculus::IsolatedExecution;

class Engine {
 public:
  Engine(const SystemParams& params, const ProtocolFactory& protocol,
         const AttackOptions& options)
      : params_(params),
        protocol_(protocol),
        options_(options),
        backend_(options.backend ? *options.backend
                                 : engine::default_backend()) {
    if (!backend_.has_capability(engine::Capability::kTraces)) {
      throw std::invalid_argument("attack engine requires a backend with "
                                  "trace support (Capability::kTraces)");
    }
    report_.bound = lemma1_bound(params.t);
    const std::uint32_t g = std::max<std::uint32_t>(1, params.t / 4);
    b_ = options.group_b.value_or(
        ProcessSet::range(params.n - 2 * g, params.n - g));
    c_ = options.group_c.value_or(ProcessSet::range(params.n - g, params.n));
    if (b_.size() + c_.size() > params.t) {
      throw std::invalid_argument(
          "attack requires |B| + |C| <= t (need t >= 2)");
    }
  }

  AttackReport run() {
    // Step 0: fault-free executions E_0 and E_1 (sanity + R_max).
    ExecutionTrace e0 = run_fault_free(0);
    if (done()) return finish();
    ExecutionTrace e1 = run_fault_free(1);
    if (done()) return finish();

    // Step 1: the default bit — A's decision with B isolated from round 1.
    IsolatedExecution e0b1 = run_isolated(0, b_, 1);
    auto d0 = correct_decision(e0b1.trace, "E_0^B(1)");
    if (done()) return finish();
    report_.default_bit = d0->try_bit().value_or(-1);
    log_ << "decision of A in E_0^B(1): " << *d0 << "\n";

    // Step 2: pick the execution family with a Lemma 4 flip.
    int family;
    if (*d0 != Value::bit(0)) {
      family = 0;  // decision at k=1 differs from the fault-free decision 0
    } else {
      IsolatedExecution e1b1 = run_isolated(1, b_, 1);
      auto d1 = correct_decision(e1b1.trace, "E_1^B(1)");
      if (done()) return finish();
      log_ << "decision of A in E_1^B(1): " << *d1 << "\n";
      if (*d1 != Value::bit(1)) {
        family = 1;
      } else {
        // d0 = 0 and d1 = 1: two round-1 mergeable pairs cannot both agree
        // (Lemma 3). Measure E_1^C(1) and drill whichever pair differs.
        IsolatedExecution e1c1 = run_isolated(1, c_, 1);
        auto z = correct_decision(e1c1.trace, "E_1^C(1)");
        if (done()) return finish();
        log_ << "decision of A in E_1^C(1): " << *z << "\n";
        if (*z != *d0) {
          drill(e0b1, *d0, e1c1, *z, "merge(E_0^B(1), E_1^C(1))");
        } else {
          drill(e1b1, *d1, e1c1, *z, "merge(E_1^B(1), E_1^C(1))");
        }
        return finish();
      }
    }
    report_.family_bit = family;
    log_ << "using proposal-" << family << " execution family\n";

    // Step 3: Lemma 4 — scan isolation rounds for the decision flip.
    const ExecutionTrace& base = family == 0 ? e0 : e1;
    Round r_max = 1;
    for (const ProcessTrace& pt : base.procs) {
      r_max = std::max(r_max, pt.decision_round + 1);
    }
    log_ << "R_max = " << r_max << "\n";

    std::vector<IsolatedExecution> family_execs;  // index k-1 => E^B(k)
    std::vector<Value> decs;
    std::optional<Round> flip;
    for (Round k = 1; k <= r_max; ++k) {
      family_execs.push_back(run_isolated(family, b_, k));
      std::ostringstream name;
      name << "E_" << family << "^B(" << k << ")";
      auto d = correct_decision(family_execs.back().trace, name.str());
      if (done()) return finish();
      decs.push_back(*d);
      if (k >= 2 && decs[k - 1] != decs[k - 2]) {
        flip = k - 1;  // decision changes between E^B(k-1) and E^B(k)
        break;
      }
    }
    if (!flip) {
      log_ << "no decision flip up to R_max; protocol ignores its proposals "
              "in this family — inconclusive\n";
      return finish();
    }
    const Round r = *flip;
    report_.critical_round = r;
    log_ << "critical round R = " << r << ": A decides " << decs[r - 1]
         << " in E^B(R) but " << decs[r] << " in E^B(R+1)\n";

    // Step 4: Lemma 5 — compare against the C-family and merge.
    IsolatedExecution ec_r = run_isolated(family, c_, r);
    std::ostringstream cname;
    cname << "E_" << family << "^C(" << r << ")";
    auto z = correct_decision(ec_r.trace, cname.str());
    if (done()) return finish();
    log_ << "decision of A in " << cname.str() << ": " << *z << "\n";

    if (*z != decs[r - 1]) {
      std::ostringstream how;
      how << "merge(E_" << family << "^B(" << r << "), " << cname.str() << ")";
      drill(family_execs[r - 1], decs[r - 1], ec_r, *z, how.str());
    } else {
      std::ostringstream how;
      how << "merge(E_" << family << "^B(" << (r + 1) << "), " << cname.str()
          << ")";
      drill(family_execs[r], decs[r], ec_r, *z, how.str());
    }
    return finish();
  }

 private:
  [[nodiscard]] bool done() const {
    return report_.violation_found || inconclusive_;
  }

  AttackReport finish() {
    report_.narrative = log_.str();
    return report_;
  }

  RunOptions run_opts() const {
    RunOptions o;
    o.max_rounds = options_.max_rounds;
    o.record_trace = true;
    return o;
  }

  void observe(const ExecutionTrace& e) {
    report_.max_message_complexity =
        std::max(report_.max_message_complexity, e.message_complexity());
  }

  ExecutionTrace run_fault_free(int bit) {
    RunResult res =
        backend_.run_all_correct(params_, protocol_, Value::bit(bit),
                                 run_opts());
    observe(res.trace);
    std::ostringstream name;
    name << "E_" << bit << " (fault-free, unanimous " << bit << ")";
    auto d = correct_decision(res.trace, name.str());
    if (done()) return res.trace;
    if (*d != Value::bit(bit)) {
      // Fault-free unanimous execution deciding the other value: a direct
      // Weak Validity violation.
      ViolationCertificate cert;
      cert.kind = ViolationKind::kWeakValidity;
      cert.execution = res.trace;
      cert.witness_a = 0;
      std::ostringstream os;
      os << name.str() << " decides " << *d << " instead of " << bit;
      cert.narrative = os.str();
      emit(std::move(cert));
    }
    return res.trace;
  }

  IsolatedExecution run_isolated(int bit, const ProcessSet& g, Round k) {
    std::vector<Value> proposals(params_.n, Value::bit(bit));
    RunResult res = backend_.run(params_, protocol_, proposals,
                                 isolate_group(g, k), run_opts());
    observe(res.trace);
    // Lemma 2 applies to this execution directly (partition (G-bar, G, {})):
    // an isolated member with few omissions that disagrees with the correct
    // processes already yields a certificate, without any merging.
    if (options_.direct_lemma2 && !report_.violation_found) {
      std::ostringstream name;
      name << "E_" << bit << "^{G(" << k << ")} with G={";
      for (ProcessId p : g) name << 'p' << p << ' ';
      name << '}';
      if (auto cert = find_lemma2_violation(res.trace, g, name.str())) {
        emit(std::move(*cert));
      }
    }
    return IsolatedExecution{std::move(res.trace), g, k};
  }

  /// The unanimous decision of the correct processes of `e`; emits a direct
  /// certificate (and returns nullopt) on disagreement / non-termination.
  std::optional<Value> correct_decision(const ExecutionTrace& e,
                                        const std::string& name) {
    ProcessId undecided = kNoProcess;
    ProcessId first = kNoProcess;
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (e.faulty.contains(p)) continue;
      if (!e.procs[p].decision.has_value()) {
        undecided = p;
        continue;
      }
      if (first == kNoProcess) {
        first = p;
      } else if (*e.procs[first].decision != *e.procs[p].decision) {
        ViolationCertificate cert;
        cert.kind = ViolationKind::kAgreement;
        cert.execution = e;
        cert.witness_a = first;
        cert.witness_b = p;
        cert.narrative = "correct processes disagree within " + name;
        emit(std::move(cert));
        return std::nullopt;
      }
    }
    if (undecided != kNoProcess) {
      if (e.quiesced) {
        ViolationCertificate cert;
        cert.kind = ViolationKind::kTermination;
        cert.execution = e;
        cert.witness_a = undecided;
        cert.narrative = "correct process undecided in quiesced " + name;
        emit(std::move(cert));
      } else {
        log_ << name << ": undecided correct process and no quiescence; "
             << "inconclusive\n";
        inconclusive_ = true;
      }
      return std::nullopt;
    }
    return *e.procs[first].decision;
  }

  /// Lemma 5's contradiction: merge two mergeable executions whose A-group
  /// decisions differ, then extract a Lemma 2 violation.
  void drill(const IsolatedExecution& eb, const Value& b1,
             const IsolatedExecution& ec, const Value& b2,
             const std::string& how) {
    log_ << "drilling into " << how << " (A decides " << b1 << " vs " << b2
         << ")\n";
    ExecutionTrace merged =
        calculus::merge(params_, protocol_, eb, ec, options_.max_rounds);
    observe(merged);

    auto b_a = correct_decision(merged, how);
    if (done()) return;
    log_ << "A decides " << *b_a << " in the merged execution\n";

    if (*b_a != b1) {
      if (auto cert = find_lemma2_violation(
              merged, eb.group, how + ": A disagrees with isolated group B")) {
        emit(std::move(*cert));
        return;
      }
    }
    if (*b_a != b2) {
      if (auto cert = find_lemma2_violation(
              merged, ec.group, how + ": A disagrees with isolated group C")) {
        emit(std::move(*cert));
        return;
      }
    }
    // The Lemma 3 contradiction also requires Lemma 2 to hold at the two
    // SOURCE executions (the proof applies it to the partitions
    // (A u C, B, {}) and (A u B, C, {})): a violation may surface there
    // rather than inside the merge.
    if (auto cert = find_lemma2_violation(
            eb.trace, eb.group, how + ": Lemma 2 fails at the B-source")) {
      emit(std::move(*cert));
      return;
    }
    if (auto cert = find_lemma2_violation(
            ec.trace, ec.group, how + ": Lemma 2 fails at the C-source")) {
      emit(std::move(*cert));
      return;
    }
    log_ << "no swap_omission certificate constructible from " << how
         << " (message complexity too high for the pigeonhole)\n";
  }

  void emit(ViolationCertificate cert) {
    if (report_.violation_found) return;  // first certificate wins
    log_ << "VIOLATION (" << to_string(cert.kind) << "): " << cert.narrative
         << "\n";
    report_.violation_found = true;
    report_.certificate = std::move(cert);
  }

  SystemParams params_;
  const ProtocolFactory& protocol_;
  AttackOptions options_;
  const engine::ExecutionBackend& backend_;
  AttackReport report_;
  ProcessSet b_, c_;
  std::ostringstream log_;
  bool inconclusive_{false};
};

}  // namespace

AttackReport attack_weak_consensus(const SystemParams& params,
                                   const ProtocolFactory& protocol,
                                   const AttackOptions& options) {
  return Engine(params, protocol, options).run();
}

}  // namespace ba::lowerbound
