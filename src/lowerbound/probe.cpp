#include "lowerbound/probe.h"

#include <algorithm>

#include "adversary/omission.h"
#include "runtime/sync_system.h"

namespace ba::lowerbound {

std::vector<Adversary> default_probe_schedule(const SystemParams& params) {
  const std::uint32_t g = std::max<std::uint32_t>(1, params.t / 4);
  std::vector<Adversary> schedule;
  schedule.reserve(3);
  for (Round k : {1u, 2u, 3u}) {
    schedule.push_back(
        isolate_group(ProcessSet::range(params.n - g, params.n), k));
  }
  return schedule;
}

std::uint64_t worst_observed_messages_via(
    const engine::ExecutionBackend& backend, const SystemParams& params,
    const ProtocolFactory& protocol, const Value& v,
    const std::vector<Adversary>& schedule) {
  // One unanimous proposal vector serves every run (COW: n handles to one
  // shared payload, not n deep copies).
  const std::vector<Value> proposals(params.n, v);
  RunOptions opts;
  opts.record_trace = false;
  std::uint64_t worst =
      backend.run(params, protocol, proposals, Adversary::none(), opts)
          .messages_sent_by_correct;
  for (const Adversary& adv : schedule) {
    worst = std::max(worst,
                     backend.run(params, protocol, proposals, adv, opts)
                         .messages_sent_by_correct);
  }
  return worst;
}

std::uint64_t worst_observed_messages(const SystemParams& params,
                                      const ProtocolFactory& protocol,
                                      const Value& v,
                                      const std::vector<Adversary>& schedule) {
  return worst_observed_messages_via(engine::default_backend(), params,
                                     protocol, v, schedule);
}

}  // namespace ba::lowerbound
