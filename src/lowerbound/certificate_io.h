#pragma once

// Serialization of violation certificates: the counterexample the attack
// engine constructs can be written to disk and re-verified later / elsewhere
// against the protocol (verify_certificate replays every state machine, so a
// deserialized certificate is exactly as trustworthy as a fresh one).

#include <optional>

#include "lowerbound/certificate.h"
#include "runtime/serde.h"

namespace ba::lowerbound {

Value certificate_to_value(const ViolationCertificate& cert);
std::optional<ViolationCertificate> certificate_from_value(const Value& v);

Bytes encode_certificate(const ViolationCertificate& cert);
std::optional<ViolationCertificate> decode_certificate(
    std::span<const std::uint8_t> bytes);

}  // namespace ba::lowerbound
