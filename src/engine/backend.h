#pragma once

// The execution-backend seam: one interface every driver in the repo runs
// executions through.
//
// The repo has two execution substrates — the lockstep round executor
// (runtime/sync_system.h) and the discrete-event network simulator
// (sim/simulator.h) — that implement the same synchronous model (§2) and
// are proven bit-identical under the zero-jitter link model
// (tests/sim/sim_parity_test.cpp). `ExecutionBackend` abstracts over them
// so the Theorem 2 probe/attack/sweep drivers, the CLI, and the benches
// dispatch uniformly instead of hard-wiring one executor each. Adding a
// backend (remote, batched, cached-replay) means implementing `run` and
// registering a factory (engine/registry.h); every driver picks it up.
//
// Contract: `run` is a PURE function of its arguments — no hidden state,
// no wall clock — so a backend handle can be shared across ExperimentPool
// workers and "parallel == serial" stays byte-identical (the jobs ∈ {1,2,8}
// sweep contract of docs/PARALLEL.md). Implementations must be const and
// thread-safe.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/fault.h"
#include "runtime/process.h"
#include "runtime/sync_system.h"
#include "sim/fault.h"
#include "sim/link.h"

namespace ba::engine {

/// What a backend can do, beyond the base contract of producing decisions
/// and message counts. Drivers query this instead of hard-coding backend
/// names (e.g. the attack engine requires kTraces; the CLI prints metrics
/// only when kNetMetrics is advertised).
enum Capability : std::uint32_t {
  /// Honors RunOptions::record_trace with full per-round event traces.
  kTraces = 1u << 0,
  /// Honors RunOptions::lint_trace (in-run analysis lint of the trace).
  kLint = 1u << 1,
  /// Fills RunResult::net with per-link network metrics.
  kNetMetrics = 1u << 2,
};
using Capabilities = std::uint32_t;

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Runs one execution of `protocol` among n processes with the given
  /// proposals under `adversary` — the exact semantics of `run_execution`
  /// (runtime/sync_system.h). Must be pure and thread-safe.
  [[nodiscard]] virtual RunResult run(const SystemParams& params,
                                      const ProtocolFactory& protocol,
                                      const std::vector<Value>& proposals,
                                      const Adversary& adversary,
                                      const RunOptions& options = {}) const = 0;

  /// Registry name of the substrate ("lockstep", "sim", ...). Written into
  /// schema-v2 trace provenance, so it must be a name the registry knows.
  [[nodiscard]] virtual const char* name() const = 0;

  [[nodiscard]] virtual Capabilities capabilities() const = 0;

  [[nodiscard]] bool has_capability(Capabilities wanted) const {
    return (capabilities() & wanted) == wanted;
  }

  /// Convenience: fault-free unanimous-`v` execution (run_all_correct's
  /// shape, on this backend).
  [[nodiscard]] RunResult run_all_correct(const SystemParams& params,
                                          const ProtocolFactory& protocol,
                                          const Value& v,
                                          const RunOptions& options = {}) const;
};

/// Shared, immutable backend handle — what drivers store and what the
/// registry hands out. Shareable across pool workers.
using BackendHandle = std::shared_ptr<const ExecutionBackend>;

/// The lockstep round executor (runtime/sync_system.h) behind the seam.
class LockstepBackend final : public ExecutionBackend {
 public:
  [[nodiscard]] RunResult run(const SystemParams& params,
                              const ProtocolFactory& protocol,
                              const std::vector<Value>& proposals,
                              const Adversary& adversary,
                              const RunOptions& options = {}) const override;
  [[nodiscard]] const char* name() const override { return "lockstep"; }
  [[nodiscard]] Capabilities capabilities() const override {
    return kTraces | kLint;
  }
};

/// Configuration for a simulator-backed backend: the link model family plus
/// its seed/shape knobs and an optional fault plan, carried per-backend
/// (RunOptions stays substrate-neutral). The link model itself is built per
/// run because the gst lag group depends on n.
struct SimBackendConfig {
  /// Link model family: "sync" | "jitter" | "gst".
  std::string model{"sync"};
  /// Seed for the per-message latency sampler (jitter / pre-GST).
  std::uint64_t seed{1};
  /// Logical round length in ticks.
  sim::SimTime round_ticks{256};
  /// gst only: first round with bounded delivery.
  Round gst_round{3};
  /// gst only: size of the lagging suffix group (declared faulty; must fit
  /// the fault budget together with the run's adversary).
  std::uint32_t lag{1};
  /// Injected network faults, applied on top of every run's adversary.
  sim::FaultPlan plan{};
  /// Collect per-link metrics into RunResult::net.
  bool collect_metrics{true};
};

/// The discrete-event simulator (sim/simulator.h) behind the seam.
class SimBackend final : public ExecutionBackend {
 public:
  explicit SimBackend(SimBackendConfig config = {});

  [[nodiscard]] RunResult run(const SystemParams& params,
                              const ProtocolFactory& protocol,
                              const std::vector<Value>& proposals,
                              const Adversary& adversary,
                              const RunOptions& options = {}) const override;
  [[nodiscard]] const char* name() const override { return "sim"; }
  [[nodiscard]] Capabilities capabilities() const override {
    return kTraces | kLint |
           (config_.collect_metrics ? kNetMetrics : Capabilities{0});
  }

  [[nodiscard]] const SimBackendConfig& config() const { return config_; }

 private:
  SimBackendConfig config_;
};

/// Configuration for the asynchronous adversarial-scheduler backend
/// (async/backend.h, registered as "async"): the delivery-order strategy
/// plus its seed. Carried per-backend like SimBackendConfig so RunOptions
/// stays substrate-neutral.
struct AsyncBackendConfig {
  /// Scheduler strategy: "fifo" | "random" | "delay-decider" | "rr-starve"
  /// (async/scheduler.h).
  std::string strategy{"fifo"};
  /// Seed for the seeded strategies (random picks, rr-starve victim).
  std::uint64_t seed{1};
};

/// The process-wide default backend (a stateless LockstepBackend): what
/// drivers fall back to when no backend was picked explicitly.
[[nodiscard]] const ExecutionBackend& default_backend();

}  // namespace ba::engine
