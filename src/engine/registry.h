#pragma once

// Name → factory registry for execution backends.
//
// The registry is what gives the repo's surfaces one dispatch path: ba_cli's
// `--backend lockstep|sim[:model,seed]` flag, the benches' per-backend
// sections, and lint_trace's provenance audit (a schema-v2 trace naming a
// backend the registry doesn't know fails the lint) all resolve names here.
// Adding a backend is one `add()` call — every surface picks it up.
//
// Built-ins registered at construction: "lockstep" (the round executor),
// "sim" (the discrete-event simulator, configured by BackendSpec::sim), and
// "async" (the adversarial-scheduler executor, configured by
// BackendSpec::async).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/backend.h"

namespace ba::engine {

/// Everything a backend factory may consult. `name` picks the factory; the
/// rest parameterizes it (the sim backend reads `sim`, the async backend
/// reads `async`).
struct BackendSpec {
  std::string name{"lockstep"};
  SimBackendConfig sim{};
  AsyncBackendConfig async{};
};

using BackendFactory = std::function<BackendHandle(const BackendSpec&)>;

class Registry {
 public:
  /// The process-wide registry, with the built-ins pre-registered.
  static Registry& global();

  /// Registers (or replaces) a factory under `name`.
  void add(const std::string& name, BackendFactory factory);

  [[nodiscard]] bool knows(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Builds a backend; throws std::invalid_argument on an unknown name.
  [[nodiscard]] BackendHandle make(const BackendSpec& spec) const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();

  std::vector<std::pair<std::string, BackendFactory>> factories_;
};

/// Parses a CLI backend spec: "lockstep", "sim[:model[,seed]]", or
/// "async[:strategy[,seed]]" — e.g. "sim:jitter,42", "async:rr-starve,7".
/// The part after the colon fills both SimBackendConfig's model and
/// AsyncBackendConfig's strategy (only the named backend reads its config).
/// Unknown registry names still parse (make() reports them); malformed
/// syntax — empty name/model/seed, a non-numeric or out-of-range seed —
/// returns nullopt.
[[nodiscard]] std::optional<BackendSpec> parse_backend_spec(
    const std::string& spec);

/// parse + Registry::global().make: throws std::invalid_argument on
/// malformed specs and unknown names alike.
[[nodiscard]] BackendHandle make_backend(const std::string& spec);

}  // namespace ba::engine
