#include "engine/registry.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>

#include "async/backend.h"

namespace ba::engine {

Registry::Registry() {
  add("lockstep", [](const BackendSpec&) -> BackendHandle {
    return std::make_shared<LockstepBackend>();
  });
  add("sim", [](const BackendSpec& spec) -> BackendHandle {
    return std::make_shared<SimBackend>(spec.sim);
  });
  add("async", [](const BackendSpec& spec) -> BackendHandle {
    return std::make_shared<async::AsyncBackend>(spec.async);
  });
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::add(const std::string& name, BackendFactory factory) {
  for (auto& [key, value] : factories_) {
    if (key == name) {
      value = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(name, std::move(factory));
}

bool Registry::knows(const std::string& name) const {
  return std::any_of(factories_.begin(), factories_.end(),
                     [&name](const auto& entry) { return entry.first == name; });
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, value] : factories_) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

BackendHandle Registry::make(const BackendSpec& spec) const {
  for (const auto& [key, factory] : factories_) {
    if (key == spec.name) return factory(spec);
  }
  std::string known;
  for (const std::string& name : names()) {
    if (!known.empty()) known += " | ";
    known += name;
  }
  throw std::invalid_argument("unknown execution backend '" + spec.name +
                              "' (registered: " + known + ")");
}

std::optional<BackendSpec> parse_backend_spec(const std::string& spec) {
  BackendSpec out;
  const auto colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (out.name.empty()) return std::nullopt;
  if (colon == std::string::npos) return out;

  // name:model[,seed] — the model token doubles as the async backend's
  // strategy; only the backend named by `out.name` reads its config.
  const std::string rest = spec.substr(colon + 1);
  const auto comma = rest.find(',');
  out.sim.model = rest.substr(0, comma);
  if (out.sim.model.empty()) return std::nullopt;
  out.async.strategy = out.sim.model;
  if (comma != std::string::npos) {
    const std::string seed = rest.substr(comma + 1);
    if (seed.empty() ||
        seed.find_first_not_of("0123456789") != std::string::npos) {
      return std::nullopt;
    }
    errno = 0;
    const std::uint64_t parsed = std::strtoull(seed.c_str(), nullptr, 10);
    if (errno == ERANGE) return std::nullopt;  // > 2^64 - 1 overflows
    out.sim.seed = parsed;
    out.async.seed = parsed;
  }
  return out;
}

BackendHandle make_backend(const std::string& spec) {
  auto parsed = parse_backend_spec(spec);
  if (!parsed) {
    throw std::invalid_argument("malformed backend spec '" + spec +
                                "' (want name[:model[,seed]])");
  }
  return Registry::global().make(*parsed);
}

}  // namespace ba::engine
