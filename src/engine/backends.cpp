#include "engine/backend.h"

#include <stdexcept>
#include <utility>

#include "sim/simulator.h"

namespace ba::engine {

RunResult ExecutionBackend::run_all_correct(const SystemParams& params,
                                            const ProtocolFactory& protocol,
                                            const Value& v,
                                            const RunOptions& options) const {
  // COW Values: n handles to one shared payload, not n deep copies.
  const std::vector<Value> proposals(params.n, v);
  return run(params, protocol, proposals, Adversary::none(), options);
}

RunResult LockstepBackend::run(const SystemParams& params,
                               const ProtocolFactory& protocol,
                               const std::vector<Value>& proposals,
                               const Adversary& adversary,
                               const RunOptions& options) const {
  return run_execution(params, protocol, proposals, adversary, options);
}

SimBackend::SimBackend(SimBackendConfig config) : config_(std::move(config)) {
  if (config_.model != "sync" && config_.model != "jitter" &&
      config_.model != "gst") {
    throw std::invalid_argument("SimBackend: unknown link model '" +
                                config_.model + "' (sync | jitter | gst)");
  }
  if (config_.round_ticks == 0) {
    throw std::invalid_argument("SimBackend: round_ticks must be >= 1");
  }
}

RunResult SimBackend::run(const SystemParams& params,
                          const ProtocolFactory& protocol,
                          const std::vector<Value>& proposals,
                          const Adversary& adversary,
                          const RunOptions& options) const {
  sim::SimConfig cfg;
  cfg.round_ticks = config_.round_ticks;
  cfg.max_rounds = options.max_rounds;
  cfg.record_trace = options.record_trace;
  cfg.stop_on_quiescence = options.stop_on_quiescence;
  cfg.lint_trace = options.lint_trace;
  cfg.message_budget = options.message_budget;
  cfg.collect_metrics = config_.collect_metrics;
  if (config_.model == "sync") {
    cfg.link = sim::LinkModel::synchronous();
  } else if (config_.model == "jitter") {
    cfg.link = sim::LinkModel::jitter(1, config_.round_ticks, config_.seed);
  } else {  // gst (the constructor rejected everything else)
    if (config_.lag == 0 || config_.lag > params.t ||
        config_.lag >= params.n) {
      throw std::invalid_argument(
          "SimBackend: gst lag group size must be in [1, t]");
    }
    cfg.link = sim::LinkModel::partial_synchrony(
        ProcessSet::range(params.n - config_.lag, params.n),
        config_.gst_round, config_.seed);
  }
  sim::SimResult res =
      sim::simulate(params, protocol, proposals, adversary, config_.plan, cfg);
  return std::move(res.run);
}

const ExecutionBackend& default_backend() {
  static const LockstepBackend backend;
  return backend;
}

}  // namespace ba::engine
