#include "analysis/lint.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "runtime/sync_system.h"

namespace ba::analysis {
namespace {

/// Shared mutable state of one lint pass. Checks append violations until the
/// cap is hit; every check degrades gracefully on traces too malformed to
/// inspect further (the structural pre-pass reports why).
class Linter {
 public:
  Linter(const ExecutionTrace& trace, const LintOptions& options)
      : trace_(trace), options_(options) {}

  LintReport run(const ProtocolFactory* protocol) {
    // The shape pre-pass is not optional: every later check indexes
    // `procs` by ProcessId and `rounds` by round number.
    if (!check_shape()) return std::move(report_);
    check_structure();
    if (options_.conservation) check_conservation();
    if (options_.budget) check_budget();
    if (options_.quiescence) check_quiescent_final_round();
    // Round-based determinism replay is meaningless for async virtual-round
    // traces (LintOptions::async_model): one delivery per round, driven by a
    // scheduler the replayer cannot reconstruct.
    if (protocol != nullptr && options_.determinism && !options_.async_model) {
      report_.replayed = true;
      check_determinism(*protocol);
    }
    return std::move(report_);
  }

 private:
  [[nodiscard]] bool full() const {
    return report_.violations.size() >= options_.max_violations;
  }

  template <typename... Parts>
  void add(LintCheck check, ProcessId p, Round r, Parts&&... parts) {
    if (full()) {
      report_.truncated = true;
      return;
    }
    std::ostringstream detail;
    (detail << ... << parts);
    report_.violations.push_back(LintViolation{check, p, r, detail.str()});
  }

  /// Fatal shape errors: a trace that cannot even be indexed.
  bool check_shape() {
    bool ok = true;
    if (!trace_.params.valid()) {
      add(LintCheck::kStructure, kNoProcess, kNoRound,
          "invalid system parameters n=", trace_.params.n,
          " t=", trace_.params.t, " (need n > 0 and t < n)");
      ok = false;
    }
    if (trace_.procs.size() != trace_.params.n) {
      add(LintCheck::kStructure, kNoProcess, kNoRound,
          "trace has ", trace_.procs.size(), " process traces for n=",
          trace_.params.n);
      ok = false;
    }
    for (ProcessId p : trace_.faulty) {
      if (p >= trace_.params.n) {
        add(LintCheck::kStructure, p, kNoRound,
            "faulty set names process p", p, " outside the system (n=",
            trace_.params.n, ")");
        ok = false;
      }
    }
    return ok;
  }

  /// A.1.1 / A.1.4 message-slot discipline inside each fragment.
  void check_structure() {
    const std::uint32_t n = trace_.params.n;
    for (ProcessId p = 0; p < n; ++p) {
      const ProcessTrace& pt = trace_.procs[p];
      if (pt.rounds.size() != trace_.rounds) {
        add(LintCheck::kStructure, p, kNoRound, "process trace covers ",
            pt.rounds.size(), " rounds but the execution records ",
            trace_.rounds);
      }
      if (pt.decision.has_value() != (pt.decision_round != kNoRound)) {
        add(LintCheck::kStructure, p, pt.decision_round,
            "decision and decision_round disagree (",
            pt.decision ? "decided" : "undecided", " at round ",
            pt.decision_round, ")");
      } else if (pt.decision && pt.decision_round > pt.rounds.size()) {
        add(LintCheck::kStructure, p, pt.decision_round,
            "decision_round ", pt.decision_round,
            " lies beyond the recorded ", pt.rounds.size(), " rounds");
      }
      for (std::size_t i = 0; i < pt.rounds.size(); ++i) {
        const Round r = static_cast<Round>(i + 1);
        const RoundEvents& re = pt.rounds[i];
        report_.stats.rounds_checked++;
        std::set<ProcessId> out_receivers;
        for (const auto* bucket : {&re.sent, &re.send_omitted}) {
          for (const Message& m : *bucket) {
            report_.stats.messages_checked++;
            if (m.sender != p) {
              add(LintCheck::kStructure, p, r, "outbound message claims sender p",
                  m.sender);
            }
            if (m.round != r) {
              add(LintCheck::kStructure, p, r,
                  "outbound message claims round ", m.round);
            }
            if (m.receiver == p) {
              add(LintCheck::kStructure, p, r, "self-message");
            } else if (m.receiver >= n) {
              add(LintCheck::kStructure, p, r, "receiver p", m.receiver,
                  " outside the system");
            } else if (!out_receivers.insert(m.receiver).second) {
              add(LintCheck::kStructure, p, r, "two messages to p",
                  m.receiver, " in one round (A.1.1 allows at most one)");
            }
          }
        }
        std::set<ProcessId> in_senders;
        ProcessId prev_sender = kNoProcess;
        bool first_inbound = true;
        for (const auto* bucket : {&re.received, &re.receive_omitted}) {
          const bool is_received = bucket == &re.received;
          for (const Message& m : *bucket) {
            report_.stats.messages_checked++;
            if (m.receiver != p) {
              add(LintCheck::kStructure, p, r,
                  "inbound message claims receiver p", m.receiver);
            }
            if (m.round != r) {
              add(LintCheck::kStructure, p, r, "inbound message claims round ",
                  m.round);
            }
            if (m.sender == p) {
              add(LintCheck::kStructure, p, r, "received a self-message");
            } else if (m.sender >= n) {
              add(LintCheck::kStructure, p, r, "sender p", m.sender,
                  " outside the system");
            } else if (!in_senders.insert(m.sender).second) {
              add(LintCheck::kStructure, p, r, "two inbound messages from p",
                  m.sender, " in one round");
            }
            if (is_received) {
              // Canonical delivery order (sort_inbox): ascending by sender.
              if (!first_inbound && m.sender < prev_sender) {
                add(LintCheck::kStructure, p, r,
                    "received set is not in canonical sender order");
              }
              first_inbound = false;
              prev_sender = m.sender;
            }
          }
        }
      }
    }
  }

  /// Send-/receive-validity (A.1.6): messages are conserved between the
  /// sender-side and receiver-side views of the execution.
  void check_conservation() {
    const std::uint32_t n = trace_.params.n;
    // Sender-side index of every successfully sent message.
    std::map<MsgKey, const Message*> sent_index;
    for (ProcessId p = 0; p < n; ++p) {
      for (const RoundEvents& re : trace_.procs[p].rounds) {
        for (const Message& m : re.sent) sent_index.emplace(m.key(), &m);
      }
    }
    // Receiver side: everything received or receive-omitted must trace back
    // to a send, payload included, and no identity may appear in both sets.
    std::set<MsgKey> consumed;
    for (ProcessId p = 0; p < n; ++p) {
      const ProcessTrace& pt = trace_.procs[p];
      for (std::size_t i = 0; i < pt.rounds.size(); ++i) {
        const Round r = static_cast<Round>(i + 1);
        const RoundEvents& re = pt.rounds[i];
        for (const auto* bucket : {&re.received, &re.receive_omitted}) {
          const char* verb =
              bucket == &re.received ? "received" : "receive-omitted";
          for (const Message& m : *bucket) {
            if (m.sender >= n || m.receiver != p || m.round != r) {
              continue;  // already a structure violation; unindexable
            }
            auto it = sent_index.find(m.key());
            if (it == sent_index.end()) {
              add(LintCheck::kConservation, p, r, verb, " a message from p",
                  m.sender, " that p", m.sender,
                  " never sent (forged receive)");
              continue;
            }
            if (it->second->payload != m.payload) {
              add(LintCheck::kConservation, p, r, verb, " payload ",
                  m.payload.to_string(), " but p", m.sender, " sent ",
                  it->second->payload.to_string());
            }
            if (!consumed.insert(m.key()).second) {
              add(LintCheck::kConservation, p, r,
                  "message from p", m.sender,
                  " appears as both received and receive-omitted");
            }
          }
        }
      }
    }
    // Sender side: a sent message may not vanish — its receiver must account
    // for it, provided the receiver's trace covers that round.
    for (const auto& [key, msg] : sent_index) {
      if (key.receiver >= n) continue;  // structure violation already
      if (key.round > trace_.procs[key.receiver].rounds.size()) continue;
      if (!consumed.contains(key)) {
        add(LintCheck::kConservation, key.receiver, key.round,
            "message sent by p", key.sender,
            " is neither received nor receive-omitted (vanished)");
      }
    }
  }

  /// §2 adversary accounting: fault budget, attributability, and (when a
  /// static bound is supplied) the message budget.
  void check_budget() {
    if (trace_.faulty.size() > trace_.params.t) {
      add(LintCheck::kBudget, kNoProcess, kNoRound, "|F| = ",
          trace_.faulty.size(), " exceeds the fault budget t = ",
          trace_.params.t);
    }
    if (options_.message_budget) {
      const std::uint64_t sent = trace_.message_complexity();
      if (sent > *options_.message_budget) {
        add(LintCheck::kBudget, kNoProcess, kNoRound,
            "correct processes sent ", sent,
            " message(s), exceeding the static bound ",
            *options_.message_budget,
            " — run misbehaved or the protocol's CommSpec under-counts");
      }
    }
    for (ProcessId p = 0; p < trace_.params.n; ++p) {
      if (trace_.faulty.contains(p)) continue;
      const ProcessTrace& pt = trace_.procs[p];
      for (std::size_t i = 0; i < pt.rounds.size(); ++i) {
        const Round r = static_cast<Round>(i + 1);
        if (!pt.rounds[i].send_omitted.empty()) {
          add(LintCheck::kBudget, p, r, "correct process send-omitted ",
              pt.rounds[i].send_omitted.size(),
              " message(s) — omission not attributable to F");
        }
        // Async reading: a receive-omission at a correct process is a
        // message still in flight when the run was cut, not an adversary
        // omission (the quiescence check catches drained-pool lies).
        if (!options_.async_model && !pt.rounds[i].receive_omitted.empty()) {
          add(LintCheck::kBudget, p, r, "correct process receive-omitted ",
              pt.rounds[i].receive_omitted.size(),
              " message(s) — omission not attributable to F");
        }
      }
    }
  }

  /// Structural half of quiescence. Synchronous reading: a quiesced trace
  /// ends with a silent round (the runtime only sets the flag once nobody
  /// sent). Async virtual-round reading: the final round IS a send by
  /// construction, so round-synchronized silence is the wrong invariant —
  /// quiescence there means the in-flight pool drained, i.e. no message
  /// anywhere is still receive-omitted at the cut.
  void check_quiescent_final_round() {
    if (!trace_.quiesced || trace_.rounds == 0) return;
    if (options_.async_model) {
      for (ProcessId p = 0; p < trace_.params.n; ++p) {
        const ProcessTrace& pt = trace_.procs[p];
        for (std::size_t i = 0; i < pt.rounds.size(); ++i) {
          if (!pt.rounds[i].receive_omitted.empty()) {
            add(LintCheck::kQuiescence, p, static_cast<Round>(i + 1),
                "trace claims quiescence but ",
                pt.rounds[i].receive_omitted.size(),
                " message(s) to p", p, " are still in flight");
          }
        }
      }
      return;
    }
    for (ProcessId p = 0; p < trace_.params.n; ++p) {
      const ProcessTrace& pt = trace_.procs[p];
      if (pt.rounds.size() != trace_.rounds) continue;  // structure violation
      const RoundEvents& last = pt.rounds[trace_.rounds - 1];
      if (!last.sent.empty()) {
        add(LintCheck::kQuiescence, p, trace_.rounds,
            "trace claims quiescence but p", p, " sent ", last.sent.size(),
            " message(s) in the final round");
      }
    }
  }

  /// A.1.3 determinism: the recorded behaviour of every correct process must
  /// be reproducible from its proposal and receive history alone.
  void check_determinism(const ProtocolFactory& protocol) {
    const std::uint32_t n = trace_.params.n;
    for (ProcessId p = 0; p < n; ++p) {
      if (trace_.faulty.contains(p)) continue;  // Byzantine replicas differ
      const ProcessTrace& pt = trace_.procs[p];
      if (full()) {
        report_.truncated = true;
        return;
      }
      std::vector<Inbox> inboxes;
      inboxes.reserve(pt.rounds.size());
      for (const RoundEvents& re : pt.rounds) inboxes.push_back(re.received);
      const ReplayResult replay =
          replay_process(trace_.params, protocol, p, pt.proposal, inboxes);
      report_.stats.processes_replayed++;

      for (std::size_t i = 0; i < pt.rounds.size(); ++i) {
        const Round r = static_cast<Round>(i + 1);
        const std::vector<Message> expected =
            normalize_outbox(replay.outboxes[i], p, r, n);
        // The machine's intended sends are the union of what the network
        // delivered and what the adversary suppressed (empty for a correct
        // process unless the budget check already fired).
        std::vector<Message> recorded = pt.rounds[i].sent;
        recorded.insert(recorded.end(), pt.rounds[i].send_omitted.begin(),
                        pt.rounds[i].send_omitted.end());
        std::sort(recorded.begin(), recorded.end(),
                  [](const Message& a, const Message& b) {
                    return a.receiver < b.receiver;
                  });
        if (recorded != expected) {
          add(LintCheck::kDeterminism, p, r, "replay produced ",
              expected.size(), " send(s) but the trace records ",
              recorded.size(), " — receive history does not explain the sends");
        }
      }
      if (replay.decision != pt.decision) {
        add(LintCheck::kDeterminism, p, pt.decision_round,
            "replay decided ",
            replay.decision ? replay.decision->to_string() : "<nothing>",
            " but the trace records ",
            pt.decision ? pt.decision->to_string() : "<nothing>");
      } else if (replay.decision_round != pt.decision_round) {
        add(LintCheck::kDeterminism, p, pt.decision_round,
            "replay decided in round ", replay.decision_round,
            " but the trace records round ", pt.decision_round);
      }
      if (options_.quiescence && trace_.quiesced && !replay.quiescent) {
        add(LintCheck::kQuiescence, p, trace_.rounds,
            "trace claims quiescence but p", p,
            "'s replayed state machine is not quiescent");
      }
    }
  }

  const ExecutionTrace& trace_;
  const LintOptions& options_;
  LintReport report_;
};

}  // namespace

std::string_view to_string(LintCheck check) {
  switch (check) {
    case LintCheck::kStructure:
      return "structure";
    case LintCheck::kConservation:
      return "conservation";
    case LintCheck::kBudget:
      return "budget";
    case LintCheck::kDeterminism:
      return "determinism";
    case LintCheck::kQuiescence:
      return "quiescence";
  }
  return "unknown";
}

std::string LintViolation::to_string() const {
  std::ostringstream os;
  os << '[' << analysis::to_string(check) << ']';
  if (process != kNoProcess) os << " p" << process;
  if (round != kNoRound) os << " r" << round;
  os << ": " << detail;
  return os.str();
}

std::size_t LintReport::count(LintCheck check) const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [check](const LintViolation& v) { return v.check == check; }));
}

std::string LintReport::summary() const {
  std::ostringstream os;
  if (clean()) {
    os << "clean: " << stats.messages_checked << " message(s) over "
       << stats.rounds_checked << " process-round(s)";
    if (replayed) os << ", " << stats.processes_replayed << " replay(s)";
    return os.str();
  }
  os << violations.size() << (truncated ? "+" : "") << " violation(s):";
  for (LintCheck check :
       {LintCheck::kStructure, LintCheck::kConservation, LintCheck::kBudget,
        LintCheck::kDeterminism, LintCheck::kQuiescence}) {
    if (std::size_t k = count(check); k > 0) {
      os << ' ' << to_string(check) << '=' << k;
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const LintReport& report) {
  os << report.summary();
  for (const LintViolation& v : report.violations) {
    os << "\n  " << v.to_string();
  }
  if (report.truncated) os << "\n  ... (truncated)";
  return os;
}

LintReport lint_trace(const ExecutionTrace& trace, const LintOptions& options) {
  return Linter(trace, options).run(nullptr);
}

LintReport lint_execution(const ExecutionTrace& trace,
                          const ProtocolFactory& protocol,
                          const LintOptions& options) {
  return Linter(trace, options).run(&protocol);
}

}  // namespace ba::analysis
