#pragma once

// Execution-invariant linter (the analysis subsystem).
//
// `ExecutionTrace::validate()` answers "is this trace well-formed?" with a
// single yes/no and the first failure found. The linter answers the stronger
// auditing question — *which* invariants of the Appendix A.1 execution
// vocabulary hold, and exactly where the trace breaks them — as structured
// per-violation diagnostics over five invariant families:
//
//   * structure     (A.1.1/A.1.4): every message identity is well-formed for
//     the slot it occupies (right sender/receiver/round, no self-messages,
//     at most one message per ordered pair and round, canonical inbox order);
//   * conservation  (A.1.6 send-/receive-validity): every received or
//     receive-omitted message was actually sent by its claimed sender in the
//     same round with an identical payload, no message is both received and
//     receive-omitted, and every sent message is accounted for at its
//     receiver;
//   * budget        (§2 static adversary): |F| <= t and every omission event
//     is attributable to a declared-faulty endpoint — correct processes never
//     omit;
//   * determinism   (A.1.3): replaying each correct process's receive history
//     through the protocol's state machine reproduces its recorded sends,
//     decision, and decision round;
//   * quiescence    (A.1.6 finite prefixes): a trace claiming quiescence has
//     a silent final round and, under replay, state machines that report they
//     will stay silent forever.
//
// The linter is the machine-checkable counterpart of the paper's exact
// message accounting: Lemma 1 and Theorem 3 count every message a correct
// process sends, so a trace that fabricates or loses messages silently would
// invalidate the executable proofs. Property tests and the certificate
// pipeline (tools/lint_trace) run the linter on every trace they produce.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/process.h"
#include "runtime/trace.h"
#include "runtime/types.h"

namespace ba::analysis {

/// The invariant family a violation belongs to.
enum class LintCheck : std::uint8_t {
  kStructure,
  kConservation,
  kBudget,
  kDeterminism,
  kQuiescence,
};

[[nodiscard]] std::string_view to_string(LintCheck check);

/// One diagnosed invariant violation, attributed to a process/round when the
/// violation is local (kNoProcess / kNoRound mean "whole trace").
struct LintViolation {
  LintCheck check{LintCheck::kStructure};
  ProcessId process{kNoProcess};
  Round round{kNoRound};
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

/// Work accounting, so reports can state how much evidence backs a clean
/// verdict (a lint of an empty trace is vacuous, and should look vacuous).
struct LintStats {
  std::uint64_t messages_checked{0};
  std::uint64_t rounds_checked{0};
  std::uint64_t processes_replayed{0};
};

struct LintReport {
  std::vector<LintViolation> violations;
  LintStats stats;
  /// True when max_violations was hit and later checks were cut short.
  bool truncated{false};
  /// True when the determinism replay ran (a protocol factory was supplied).
  bool replayed{false};

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] std::size_t count(LintCheck check) const;
  /// One-line human summary ("clean: ..." or "N violations: ...").
  [[nodiscard]] std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const LintReport& report);

struct LintOptions {
  bool conservation{true};
  bool budget{true};
  /// Effective only when a protocol factory is supplied (lint_execution).
  bool determinism{true};
  bool quiescence{true};
  /// Statically derived cap on messages sent by correct processes
  /// (statics::budget_at): when set, a trace whose message_complexity()
  /// exceeds it breaks the budget invariant — either the run misbehaved or
  /// the protocol's CommSpec under-counts its communication.
  std::optional<std::uint64_t> message_budget;
  /// Stop collecting after this many violations (the report is marked
  /// truncated). A corrupt trace can break one invariant per message.
  std::size_t max_violations{64};
  /// Lint under the asynchronous virtual-round reading (async/async_system.h:
  /// round = global send sequence, one message per round). Three invariants
  /// change meaning:
  ///   * budget: receive-omissions at CORRECT processes are in-flight
  ///     messages of a truncated run, not adversary omissions — not flagged
  ///     (send-omissions at correct processes remain violations);
  ///   * quiescence: a quiesced async trace means the in-flight pool
  ///     drained — zero receive-omitted anywhere — rather than "silent
  ///     final round" (the final virtual round IS a send by definition);
  ///   * determinism: the round-based replay machinery does not apply to
  ///     message-driven processes; the replay is skipped even when a
  ///     protocol factory is supplied.
  bool async_model{false};
};

/// Lints everything that can be checked from the trace alone: structure,
/// conservation, budget, and the structural half of quiescence.
[[nodiscard]] LintReport lint_trace(const ExecutionTrace& trace,
                                    const LintOptions& options = {});

/// Full lint: everything `lint_trace` checks plus the determinism replay of
/// every correct process against `protocol` and the replay half of the
/// quiescence check.
[[nodiscard]] LintReport lint_execution(const ExecutionTrace& trace,
                                        const ProtocolFactory& protocol,
                                        const LintOptions& options = {});

}  // namespace ba::analysis
