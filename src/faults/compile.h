#pragma once

// The fault compiler: lowers one FaultSpec to each execution substrate.
//
//   compile_adversary   -> Adversary            lockstep + sim backends
//   compile_fault_plan  -> sim::FaultPlan       network-level sim schedules
//   compile_async       -> async::AsyncAdversary the async backend / explore
//
// compile_adversary is total over the grammar and is the reference lowering:
// for the legacy plan names it reproduces the adversaries the campaign
// service built before this IR existed, bit-for-bit (same seed derivation,
// same target groups, same rounds) — campaigns over legacy plan names replay
// byte-identically through it (tests/service/service_runner_test.cpp).
//
// The other two lowerings are partial: a FaultPlan can only express faults
// that are network-schedulable (send-side omissions — fault-free, crash,
// mute), and the async model only knows crash-from-start and Byzantine
// replicas. Kinds outside a target's fragment throw a std::runtime_error
// naming the plan and the missing lowering; callers that can fall back to
// compile_adversary should (the sim backend takes an Adversary directly).

#include <cstdint>

#include "async/async_process.h"
#include "faults/fault_spec.h"
#include "runtime/fault.h"
#include "runtime/types.h"
#include "sim/fault.h"

namespace ba::faults {

/// Total lowering to the runtime Adversary. `seed` drives the randomized
/// plans (crash rounds, omission coin flips, Byzantine noise) — same seed,
/// same adversary. Throws on budget violations (validate_for).
[[nodiscard]] Adversary compile_adversary(const FaultSpec& spec,
                                          const SystemParams& params,
                                          std::uint64_t seed);

/// Partial lowering to a simulator fault schedule. Supported: fault-free
/// (empty plan), crash (crash windows at the same seed-derived or @R
/// rounds), mute (crash windows — a FaultPlan crash is exactly "send-omit
/// everything from round R", which is mute's semantics). Throws for
/// isolate/random-omissions/Byzantine kinds, which have no network-level
/// expression. simulate(...) with the returned plan and Adversary::none()
/// is trace-identical to the sim backend under compile_adversary
/// (tests/faults/compile_test.cpp).
[[nodiscard]] sim::FaultPlan compile_fault_plan(const FaultSpec& spec,
                                                const SystemParams& params,
                                                std::uint64_t seed);

/// Partial lowering to the async model: crash and mute become
/// crash-from-start (the async model has no rounds for "@R" to bind to —
/// crashing at the start is the adversary's strongest choice), silent-byz
/// becomes Byzantine replicas that never send. Throws for
/// isolate/random-omissions/noise-byz.
[[nodiscard]] async::AsyncAdversary compile_async(const FaultSpec& spec,
                                                  const SystemParams& params,
                                                  std::uint64_t seed);

}  // namespace ba::faults
