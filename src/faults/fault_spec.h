#pragma once

// The typed fault-model IR: one FaultSpec describes "what faults happen in
// this run" for every execution substrate in the repo.
//
// Historically three layers each re-invented this description: the campaign
// service parsed stringly-typed plan names ("crash:1"), the simulator had
// its own sim::FaultPlan schedule builder, and the async backend took a raw
// AsyncAdversary. A FaultSpec is the single source of truth the three are
// compiled from (faults/compile.h), so the paper's distinction between the
// fault *budget* t and the *actual* fault count f — the whole point of the
// Ω(t²)-even-when-f-is-small lower bound — shows up once, as
// declared_faults(), and every budget/bound evaluation can be taken at the
// declared f instead of the worst case.
//
// Grammar (canonical parse/format, round-trips the legacy plan-name syntax):
//
//   fault-free                    no faults (f = 0)
//   crash:K[@R][%head]            K processes crash-stop; seed-derived
//                                 rounds by default, all at round R with @R
//   mute:K[@R][%head]             K processes send-omit everything from
//                                 round R (default 2)
//   isolate:K[@R][%head]          K processes receive-isolated from round R
//                                 (default 2) — Definition 1's schedule
//   random-omissions[:P]         the full budget t drops each message with
//                                 probability P/1000 (default 250)
//   silent-byz:K[%head]           K silent Byzantine replicas
//   noise-byz:K[%head]            K deterministic-noise Byzantine replicas
//
// Targets default to the K highest process ids (the conventional corrupted
// suffix); "%head" selects the K lowest instead. format() emits the
// canonical spelling: counts always explicit, defaults omitted — and
// parse_fault_spec(format(s)) == s for every spec (property-tested).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "runtime/types.h"

namespace ba::faults {

enum class FaultKind : std::uint8_t {
  kFaultFree,
  kCrash,
  kMute,
  kIsolate,
  kRandomOmissions,
  kSilentByz,
  kNoiseByz,
};

/// Which process ids a counted plan corrupts.
enum class TargetSelection : std::uint8_t {
  kTail,  ///< the count highest ids (legacy default)
  kHead,  ///< the count lowest ids
};

/// The plan-name keyword of a kind ("crash", "random-omissions", ...).
[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// Kinds that take a ":K" fault count.
[[nodiscard]] bool kind_takes_count(FaultKind kind);

/// Counted kinds whose count is meaningful at every f in 0..t — the kinds a
/// fault axis (sweep/campaign) may sweep.
[[nodiscard]] bool kind_sweepable(FaultKind kind);

/// Resolves a bare kind keyword ("isolate"); nullopt when unknown.
[[nodiscard]] std::optional<FaultKind> find_fault_kind(std::string_view name);

/// Space-separated plan-name grammar summary (usage strings, error text).
[[nodiscard]] const char* fault_plan_names();

/// One fault plan: kind x count/probability x target selection x timing.
/// Fields a kind does not use stay at their defaults — parse_fault_spec only
/// ever produces such canonical specs, which is what makes operator== and
/// the format/parse round trip exact.
struct FaultSpec {
  FaultKind kind{FaultKind::kFaultFree};
  /// K for counted kinds; 0 otherwise.
  std::uint32_t count{0};
  /// Drop probability in permille for kRandomOmissions; 250 otherwise.
  std::uint32_t permille{250};
  TargetSelection targets{TargetSelection::kTail};
  /// "@R" timing override: crash round for kCrash, first omitted round for
  /// kMute/kIsolate. nullopt = the kind's default (seed-derived crash
  /// rounds; round 2 for mute/isolate).
  std::optional<Round> at_round{};

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;

  /// The *actual* fault count f this plan commits at (n, t): 0 for
  /// fault-free, t for random-omissions (the full budget participates),
  /// `count` for counted kinds. This is the f that statics::budget_at and
  /// the f-axis columns are evaluated at.
  [[nodiscard]] std::uint32_t declared_faults(const SystemParams& params)
      const;

  /// Canonical spelling; parse_fault_spec(format()) == *this.
  [[nodiscard]] std::string format() const;

  /// Same plan at a different fault count (fault-axis sweeps).
  [[nodiscard]] FaultSpec with_count(std::uint32_t k) const;
};

/// Parses the grammar above. Throws std::runtime_error with a pinned
/// message; the unknown-kind message is shared verbatim by every surface
/// (ba_cli run/sim/sweep, serve validate):
///   unknown fault plan '<text>' (known: <fault_plan_names()>)
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& text);

/// Budget check at one (n, t) point: a counted plan must fit the fault
/// budget (K <= t). Throws std::runtime_error naming the plan.
void validate_for(const FaultSpec& spec, const SystemParams& params);

/// parse_fault_spec + validate_for in one step.
[[nodiscard]] FaultSpec checked_fault_spec(const std::string& text,
                                           const SystemParams& params);

}  // namespace ba::faults
