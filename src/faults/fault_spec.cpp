#include "faults/fault_spec.h"

#include <charconv>
#include <limits>
#include <stdexcept>

namespace ba::faults {
namespace {

[[noreturn]] void fault_error(const std::string& what) {
  throw std::runtime_error(what);
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

[[noreturn]] void malformed(const std::string& text) {
  fault_error("fault plan '" + text + "': malformed argument");
}

[[noreturn]] void unknown(const std::string& text) {
  fault_error("unknown fault plan '" + text + "' (known: " +
              fault_plan_names() + ")");
}

/// Whether "@R" timing is meaningful for the kind (Byzantine replicas run
/// from the start; random omissions have per-message timing already).
bool kind_takes_round(FaultKind kind) {
  return kind == FaultKind::kCrash || kind == FaultKind::kMute ||
         kind == FaultKind::kIsolate;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFaultFree:
      return "fault-free";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kMute:
      return "mute";
    case FaultKind::kIsolate:
      return "isolate";
    case FaultKind::kRandomOmissions:
      return "random-omissions";
    case FaultKind::kSilentByz:
      return "silent-byz";
    case FaultKind::kNoiseByz:
      return "noise-byz";
  }
  return "?";
}

bool kind_takes_count(FaultKind kind) {
  return kind != FaultKind::kFaultFree && kind != FaultKind::kRandomOmissions;
}

bool kind_sweepable(FaultKind kind) { return kind_takes_count(kind); }

std::optional<FaultKind> find_fault_kind(std::string_view name) {
  for (const FaultKind kind :
       {FaultKind::kFaultFree, FaultKind::kCrash, FaultKind::kMute,
        FaultKind::kIsolate, FaultKind::kRandomOmissions,
        FaultKind::kSilentByz, FaultKind::kNoiseByz}) {
    if (name == fault_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

const char* fault_plan_names() {
  return "fault-free crash:K mute:K isolate:K random-omissions:P "
         "silent-byz:K noise-byz:K";
}

std::uint32_t FaultSpec::declared_faults(const SystemParams& params) const {
  switch (kind) {
    case FaultKind::kFaultFree:
      return 0;
    case FaultKind::kRandomOmissions:
      return params.t;
    default:
      return count;
  }
}

std::string FaultSpec::format() const {
  std::string out = fault_kind_name(kind);
  if (kind == FaultKind::kRandomOmissions) {
    out += ':';
    out += std::to_string(permille);
    return out;
  }
  if (kind == FaultKind::kFaultFree) return out;
  out += ':';
  out += std::to_string(count);
  if (at_round) {
    out += '@';
    out += std::to_string(*at_round);
  }
  if (targets == TargetSelection::kHead) out += "%head";
  return out;
}

FaultSpec FaultSpec::with_count(std::uint32_t k) const {
  FaultSpec copy = *this;
  copy.count = k;
  return copy;
}

FaultSpec parse_fault_spec(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) {
    const auto kind = find_fault_kind(text);
    if (!kind) unknown(text);
    if (kind_takes_count(*kind)) {
      fault_error("fault plan '" + text + "': missing :K argument");
    }
    FaultSpec spec;
    spec.kind = *kind;
    return spec;  // fault-free / bare random-omissions (default permille)
  }

  const auto kind = find_fault_kind(std::string_view(text).substr(0, colon));
  if (!kind) unknown(text);
  std::string_view arg = std::string_view(text).substr(colon + 1);

  if (*kind == FaultKind::kFaultFree) {
    fault_error("fault plan 'fault-free' takes no argument");
  }
  if (*kind == FaultKind::kRandomOmissions) {
    const auto permille = parse_u64(arg);
    if (!permille) malformed(text);
    if (*permille > 1000) {
      fault_error("fault plan '" + text + "': permille > 1000");
    }
    FaultSpec spec;
    spec.kind = *kind;
    spec.permille = static_cast<std::uint32_t>(*permille);
    return spec;
  }

  FaultSpec spec;
  spec.kind = *kind;
  // Counted kinds: K, then optional @R, then optional %head — in that order.
  constexpr std::string_view kHeadSuffix = "%head";
  if (arg.size() >= kHeadSuffix.size() &&
      arg.substr(arg.size() - kHeadSuffix.size()) == kHeadSuffix) {
    spec.targets = TargetSelection::kHead;
    arg.remove_suffix(kHeadSuffix.size());
  }
  const auto at = arg.find('@');
  if (at != std::string_view::npos) {
    if (!kind_takes_round(*kind)) {
      fault_error("fault plan '" + text +
                  "': '@' timing applies only to crash/mute/isolate");
    }
    const auto round = parse_u64(arg.substr(at + 1));
    if (!round || *round == 0 || *round > std::numeric_limits<Round>::max()) {
      malformed(text);
    }
    spec.at_round = static_cast<Round>(*round);
    arg = arg.substr(0, at);
  }
  const auto k = parse_u64(arg);
  if (!k || *k > std::numeric_limits<std::uint32_t>::max()) malformed(text);
  spec.count = static_cast<std::uint32_t>(*k);
  return spec;
}

void validate_for(const FaultSpec& spec, const SystemParams& params) {
  if (!kind_takes_count(spec.kind)) return;
  if (spec.count > params.t) {
    fault_error("fault plan '" + spec.format() + "': " +
                std::to_string(spec.count) + " faults exceed budget t=" +
                std::to_string(params.t));
  }
}

FaultSpec checked_fault_spec(const std::string& text,
                             const SystemParams& params) {
  const FaultSpec spec = parse_fault_spec(text);
  validate_for(spec, params);
  return spec;
}

}  // namespace ba::faults
