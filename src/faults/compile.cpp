#include "faults/compile.h"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "crypto/siphash.h"

namespace ba::faults {
namespace {

// Domain-separation context for seed-derived crash rounds. The value is the
// one the campaign service used before the compiler existed: cached campaign
// rows (content-addressed NDJSON) replay byte-identically only if the same
// seed derives the same schedule.
constexpr std::uint64_t kFaultContext = 0xfa017ab1ULL;

[[noreturn]] void no_lowering(const FaultSpec& spec, const char* target,
                              const char* why) {
  throw std::runtime_error("fault plan '" + spec.format() + "': no " +
                           target + " lowering (" + why + ")");
}

/// The corrupted group: the count highest ids (tail) or lowest (head).
ProcessSet target_group(const FaultSpec& spec, const SystemParams& params,
                        std::uint32_t k) {
  return spec.targets == TargetSelection::kHead
             ? ProcessSet::range(0, k)
             : ProcessSet::range(params.n - k, params.n);
}

/// The i-th corrupted id, in the order the legacy crash schedule numbered
/// them (descending from the top for the tail selection).
ProcessId target_id(const FaultSpec& spec, const SystemParams& params,
                    std::uint32_t i) {
  return spec.targets == TargetSelection::kHead ? i : params.n - 1 - i;
}

/// Crash/mute schedule shared by the Adversary and FaultPlan lowerings:
/// (process, first silent round) pairs. Crash rounds are seed-derived in
/// 1..4 unless "@R" pinned them; mute goes silent at its from-round.
std::vector<std::pair<ProcessId, Round>> silence_schedule(
    const FaultSpec& spec, const SystemParams& params, std::uint64_t seed) {
  std::vector<std::pair<ProcessId, Round>> schedule;
  schedule.reserve(spec.count);
  if (spec.kind == FaultKind::kMute) {
    const Round from = spec.at_round.value_or(2);
    for (std::uint32_t i = 0; i < spec.count; ++i) {
      schedule.emplace_back(target_id(spec, params, i), from);
    }
    return schedule;
  }
  if (spec.at_round) {
    for (std::uint32_t i = 0; i < spec.count; ++i) {
      schedule.emplace_back(target_id(spec, params, i), *spec.at_round);
    }
    return schedule;
  }
  const crypto::SipKey key = crypto::derive_key(seed, kFaultContext);
  const crypto::SipHasher base(key);
  for (std::uint32_t i = 0; i < spec.count; ++i) {
    crypto::SipHasher h = base;
    h.absorb_u32(i);
    schedule.emplace_back(target_id(spec, params, i),
                          static_cast<Round>(1 + h.digest() % 4));
  }
  return schedule;
}

/// A Byzantine async replica that never sends and never decides — the async
/// counterpart of byz_silent().
class SilentAsyncReplica final : public async::AsyncProcess {
 public:
  Outbox on_start() override { return {}; }
  Outbox on_message(ProcessId, const Value&) override { return {}; }
  [[nodiscard]] std::optional<Value> decision() const override {
    return std::nullopt;
  }
  [[nodiscard]] bool halted() const override { return true; }
};

}  // namespace

Adversary compile_adversary(const FaultSpec& spec, const SystemParams& params,
                            std::uint64_t seed) {
  validate_for(spec, params);
  switch (spec.kind) {
    case FaultKind::kFaultFree:
      return Adversary::none();
    case FaultKind::kRandomOmissions:
      return random_omissions(target_group(spec, params, params.t), seed,
                              spec.permille);
    case FaultKind::kCrash:
      return crash_schedule(silence_schedule(spec, params, seed));
    case FaultKind::kMute:
      return mute_group(target_group(spec, params, spec.count),
                        spec.at_round.value_or(2));
    case FaultKind::kIsolate:
      return isolate_group(target_group(spec, params, spec.count),
                           spec.at_round.value_or(2));
    case FaultKind::kSilentByz: {
      Adversary adv;
      adv.faulty = target_group(spec, params, spec.count);
      adv.byzantine = adv.faulty;
      adv.byzantine_factory = byz_silent();
      return adv;
    }
    case FaultKind::kNoiseByz: {
      Adversary adv;
      adv.faulty = target_group(spec, params, spec.count);
      adv.byzantine = adv.faulty;
      adv.byzantine_factory = byz_noise(seed, 12);
      return adv;
    }
  }
  throw std::runtime_error("fault plan: unreachable kind");
}

sim::FaultPlan compile_fault_plan(const FaultSpec& spec,
                                  const SystemParams& params,
                                  std::uint64_t seed) {
  validate_for(spec, params);
  sim::FaultPlan plan;
  switch (spec.kind) {
    case FaultKind::kFaultFree:
      return plan;
    case FaultKind::kCrash:
    case FaultKind::kMute:
      // A FaultPlan crash window is "send-omit everything from round R":
      // exactly the crash and mute semantics (mute just never recovers and
      // starts later).
      for (const auto& [p, round] : silence_schedule(spec, params, seed)) {
        plan.crash(p, round);
      }
      return plan;
    case FaultKind::kIsolate:
      no_lowering(spec, "sim fault-plan",
                  "receive-isolation is not a network-schedulable fault; "
                  "use the adversary lowering");
    case FaultKind::kRandomOmissions:
      no_lowering(spec, "sim fault-plan",
                  "per-message coin flips are adversary predicates, not "
                  "link windows; use the adversary lowering");
    case FaultKind::kSilentByz:
    case FaultKind::kNoiseByz:
      no_lowering(spec, "sim fault-plan",
                  "Byzantine replicas are process substitutions, not "
                  "network faults; use the adversary lowering");
  }
  throw std::runtime_error("fault plan: unreachable kind");
}

async::AsyncAdversary compile_async(const FaultSpec& spec,
                                    const SystemParams& params,
                                    std::uint64_t /*seed*/) {
  validate_for(spec, params);
  async::AsyncAdversary adv;
  switch (spec.kind) {
    case FaultKind::kFaultFree:
      return adv;
    case FaultKind::kCrash:
    case FaultKind::kMute:
      // The async model has no rounds for crash timing to bind to;
      // crash-from-start is the adversary's strongest schedule.
      adv.faulty = target_group(spec, params, spec.count);
      return adv;
    case FaultKind::kSilentByz:
      adv.faulty = target_group(spec, params, spec.count);
      adv.byzantine = adv.faulty;
      adv.byzantine_factory = [](const async::AsyncContext&) {
        return std::make_unique<SilentAsyncReplica>();
      };
      return adv;
    case FaultKind::kIsolate:
      no_lowering(spec, "async",
                  "the scheduler already owns delivery order; receive-"
                  "isolation has no async counterpart");
    case FaultKind::kRandomOmissions:
      no_lowering(spec, "async",
                  "async links are reliable; omission power lives in the "
                  "scheduler");
    case FaultKind::kNoiseByz:
      no_lowering(spec, "async",
                  "the noise strategy is round-structured; only silent-byz "
                  "lowers to the async model");
  }
  throw std::runtime_error("fault plan: unreachable kind");
}

}  // namespace ba::faults
