#include "protocols/interactive_consistency.h"

#include <utility>

#include "protocols/broadcast.h"
#include "protocols/dolev_strong.h"
#include "protocols/parallel.h"

namespace ba::protocols {
namespace {

Value combine_vector(const std::vector<Value>& decisions) {
  return Value{ValueVec(decisions.begin(), decisions.end())};
}

}  // namespace

ProtocolFactory auth_interactive_consistency(
    std::shared_ptr<const crypto::Authenticator> auth) {
  return [auth = std::move(auth)](const ProcessContext& ctx) {
    const std::uint32_t n = ctx.params.n;
    return parallel_composition(
        n,
        [auth](std::size_t instance, const ProcessContext& inner_ctx) {
          return dolev_strong_broadcast(
              auth, static_cast<ProcessId>(instance),
              static_cast<std::uint64_t>(instance))(inner_ctx);
        },
        combine_vector)(ctx);
  };
}

ProtocolFactory unauth_interactive_consistency_bits() {
  return [](const ProcessContext& ctx) {
    const std::uint32_t n = ctx.params.n;
    return parallel_composition(
        n,
        [](std::size_t instance, const ProcessContext& inner_ctx) {
          return unauth_broadcast_bit(static_cast<ProcessId>(instance))(
              inner_ctx);
        },
        combine_vector)(ctx);
  };
}

}  // namespace ba::protocols
