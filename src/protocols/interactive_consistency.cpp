#include "protocols/interactive_consistency.h"

#include <utility>

#include "protocols/broadcast.h"
#include "protocols/dolev_strong.h"
#include "protocols/parallel.h"

namespace ba::protocols {
namespace {

Value combine_vector(const std::vector<Value>& decisions) {
  return Value{ValueVec(decisions.begin(), decisions.end())};
}

}  // namespace

ProtocolFactory auth_interactive_consistency(
    std::shared_ptr<const crypto::Authenticator> auth) {
  return [auth = std::move(auth)](const ProcessContext& ctx) {
    const std::uint32_t n = ctx.params.n;
    return parallel_composition(
        n,
        [auth](std::size_t instance, const ProcessContext& inner_ctx) {
          return dolev_strong_broadcast(
              auth, static_cast<ProcessId>(instance),
              static_cast<std::uint64_t>(instance))(inner_ctx);
        },
        combine_vector)(ctx);
  };
}

ProtocolFactory unauth_interactive_consistency_bits() {
  return [](const ProcessContext& ctx) {
    const std::uint32_t n = ctx.params.n;
    return parallel_composition(
        n,
        [](std::size_t instance, const ProcessContext& inner_ctx) {
          return unauth_broadcast_bit(static_cast<ProcessId>(instance))(
              inner_ctx);
        },
        combine_vector)(ctx);
  };
}

statics::CommSpec auth_ic_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec;
  spec.protocol = "auth-ic";
  spec.problem = "interactive-consistency";
  spec.resilience = "t < n";
  spec.rounds = t + 1;
  spec.blocks = {
      {.label = "n bundled Dolev-Strong instances",
       .rounds = t + 1,
       .patterns = {{.label = "every process ships one batched bundle per "
                              "peer per round",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kSignatureChain,
                     .sig_depth = t + 1,
                     .payload_copies = n}}}};
  spec.notes =
      "parallel composition batches the n broadcasts into one wire message "
      "per ordered pair per round: (t+1) n (n-1) messages of n signature "
      "chains each";
  return spec;
}

statics::CommSpec unauth_ic_bits_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec;
  spec.protocol = "unauth-ic-bits";
  spec.problem = "interactive-consistency";
  spec.resilience = "n > 3t";
  spec.rounds = Poly(1) + Poly(3) * (t + 1);
  spec.blocks = {
      {.label = "n bundled unauthenticated broadcasts",
       .rounds = Poly(1) + Poly(3) * (t + 1),
       .patterns = {{.label = "every process ships one batched bit bundle "
                              "per peer per round",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit,
                     .payload_copies = n}}}};
  spec.notes =
      "n parallel unauth broadcasts batched per ordered pair: "
      "(3t+4) n (n-1) messages of n bits each";
  return spec;
}

}  // namespace ba::protocols
