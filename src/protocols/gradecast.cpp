#include "protocols/gradecast.h"

#include <map>
#include <memory>
#include <optional>

#include "protocols/common.h"

namespace ba::protocols {

std::optional<GradecastOutput> parse_gradecast(const Value& decision) {
  if (!has_tag(decision, "grade")) return std::nullopt;
  const Value* v = field(decision, 0);
  const Value* g = field(decision, 1);
  if (!v || !g || !g->is_int()) return std::nullopt;
  return GradecastOutput{*v, static_cast<int>(g->as_int())};
}

namespace {

Value pack(const Value& v, int grade) {
  return tagged("grade", {v, Value{static_cast<std::int64_t>(grade)}});
}

class GradecastProcess final : public DecidingProcess {
 public:
  GradecastProcess(const ProcessContext& ctx, ProcessId sender)
      : params_(ctx.params),
        self_(ctx.self),
        sender_(sender),
        proposal_(ctx.proposal) {}

  Outbox outbox_for_round(Round r) override {
    switch (r) {
      case 1:
        if (self_ == sender_) {
          return multicast(tagged("gc-init", {proposal_}));
        }
        return {};
      case 2:
        if (received_) return multicast(tagged("gc-echo", {*received_}));
        return {};
      case 3:
        if (backed_) return multicast(tagged("gc-vote", {*backed_}));
        return {};
      default:
        return {};
    }
  }

  void deliver(Round r, const Inbox& inbox) override {
    switch (r) {
      case 1: {
        if (self_ == sender_) {
          received_ = proposal_;
          break;
        }
        for (const Message& m : inbox) {
          if (m.sender != sender_ || !has_tag(m.payload, "gc-init")) continue;
          if (const Value* v = field(m.payload, 0)) received_ = *v;
        }
        break;
      }
      case 2: {
        std::map<Value, std::uint32_t> echoes;
        if (received_) ++echoes[*received_];
        for (const Message& m : inbox) {
          if (!has_tag(m.payload, "gc-echo")) continue;
          if (const Value* v = field(m.payload, 0)) ++echoes[*v];
        }
        for (const auto& [v, count] : echoes) {
          if (count >= params_.n - params_.t) backed_ = v;
        }
        break;
      }
      case 3: {
        std::map<Value, std::uint32_t> votes;
        if (backed_) ++votes[*backed_];
        for (const Message& m : inbox) {
          if (!has_tag(m.payload, "gc-vote")) continue;
          if (const Value* v = field(m.payload, 0)) ++votes[*v];
        }
        const Value* best = nullptr;
        std::uint32_t best_count = 0;
        for (const auto& [v, count] : votes) {
          if (count > best_count) {
            best = &v;
            best_count = count;
          }
        }
        if (best && best_count >= params_.n - params_.t) {
          decide(pack(*best, 2));
        } else if (best && best_count >= params_.t + 1) {
          decide(pack(*best, 1));
        } else {
          decide(pack(bottom(), 0));
        }
        break;
      }
      default:
        break;
    }
  }

 private:
  Outbox multicast(const Value& payload) const {
    Outbox out;
    out.reserve(params_.n);
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  SystemParams params_;
  ProcessId self_;
  ProcessId sender_;
  Value proposal_;
  std::optional<Value> received_;
  std::optional<Value> backed_;
};

}  // namespace

ProtocolFactory gradecast_bit(ProcessId sender) {
  return [sender](const ProcessContext& ctx) {
    return std::make_unique<GradecastProcess>(ctx, sender);
  };
}

statics::CommSpec gradecast_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  statics::CommSpec spec;
  spec.protocol = "gradecast";
  spec.problem = "graded-broadcast";
  spec.resilience = "n > 3t";
  spec.rounds = Poly(3);
  spec.blocks = {
      {.label = "round 1",
       .rounds = Poly(1),
       .patterns = {{.label = "the sender multicasts its bit",
                     .senders = Poly(1),
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}},
      {.label = "round 2",
       .rounds = Poly(1),
       .patterns = {{.label = "every process echoes what it received",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}},
      {.label = "round 3",
       .rounds = Poly(1),
       .patterns = {{.label = "every process votes for the echo majority",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}}};
  spec.notes = "sender multicast, echo round, vote round";
  return spec;
}

}  // namespace ba::protocols
