#pragma once

// Protocol adapters: zero-message wrappers that transform proposals on the
// way in and decisions on the way out. Algorithm 1 of the paper (the
// weak-consensus reduction) is exactly such a wrapper; the reductions module
// builds on these.

#include <functional>

#include "runtime/process.h"

namespace ba::protocols {

/// proposal_map(self, weak_proposal) -> proposal fed to the inner protocol.
using ProposalMap = std::function<Value(ProcessId, const Value&)>;
/// decision_map(inner_decision) -> outer decision.
using DecisionMap = std::function<Value(const Value&)>;

/// Wraps `inner` with proposal/decision transformations. Sends exactly the
/// messages `inner` sends (zero additional communication).
ProtocolFactory map_protocol(ProtocolFactory inner, ProposalMap proposal_map,
                             DecisionMap decision_map);

/// Delays the inner protocol by `offset` rounds: the wrapper is silent during
/// rounds 1..offset and runs inner round r - offset afterwards. Used for
/// sequential composition.
ProtocolFactory delay_protocol(ProtocolFactory inner, Round offset);

}  // namespace ba::protocols
