#include "protocols/dolev_strong.h"

#include <set>
#include <utility>
#include <vector>

#include "protocols/common.h"

namespace ba::protocols {
namespace {

/// The value a chain endorses, namespaced by instance:
/// ["dsv", instance, v].
Value wrap_value(std::uint64_t instance, const Value& v) {
  return tagged("dsv", {Value{static_cast<std::int64_t>(instance)}, v});
}

std::optional<Value> unwrap_value(const Value& wrapped,
                                  std::uint64_t instance) {
  if (!has_tag(wrapped, "dsv")) return std::nullopt;
  const Value* inst = field(wrapped, 0);
  const Value* v = field(wrapped, 1);
  if (!inst || !v || !inst->is_int() ||
      inst->as_int() != static_cast<std::int64_t>(instance)) {
    return std::nullopt;
  }
  return *v;
}

class DolevStrongProcess final : public DecidingProcess {
 public:
  DolevStrongProcess(const ProcessContext& ctx,
                     std::shared_ptr<const crypto::Authenticator> auth,
                     ProcessId sender, std::uint64_t instance)
      : params_(ctx.params),
        self_(ctx.self),
        sender_(sender),
        instance_(instance),
        auth_(std::move(auth)),
        signer_(auth_, ctx.self),
        proposal_(ctx.proposal),
        arena_(auth_) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1 && self_ == sender_) {
      const std::uint32_t chain =
          arena_.extend(arena_.root(wrap_value(instance_, proposal_)), signer_);
      extracted_.insert(proposal_);
      out = chains_to_all({chain});
      return out;
    }
    if (r >= 2 && r <= last_round() && !pending_relay_.empty()) {
      out = chains_to_all(pending_relay_);
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    pending_relay_.clear();
    if (r <= last_round()) {
      // Batch-verify the round's inbox in one arena pass: chains accepted
      // at the end of round r carry >= r distinct signatures, the first
      // being the designated sender's. Relayed chains share their verified
      // prefix with chains checked in earlier rounds, so only the
      // signatures this round added are actually MAC-checked.
      chain_fields_.clear();
      for (const Message& m : inbox) {
        if (!has_tag(m.payload, "ds")) continue;
        const ValueVec& fields = m.payload.as_vec();
        for (std::size_t i = 1; i < fields.size(); ++i) {
          chain_fields_.push_back(&fields[i]);
        }
      }
      for (const crypto::ChainArena::Accepted& acc :
           arena_.verify_batch(chain_fields_, r, sender_)) {
        auto v = unwrap_value(acc.value, instance_);
        if (!v) continue;
        if (extracted_.contains(*v)) continue;
        if (extracted_.size() >= 2) continue;  // two values prove equivocation
        extracted_.insert(*v);
        if (r < last_round() && !arena_.contains_signer(acc.node, self_)) {
          pending_relay_.push_back(arena_.extend(acc.node, signer_));
        }
      }
    }
    if (r == last_round()) {
      decide(extracted_.size() == 1 ? *extracted_.begin() : bottom());
    }
  }

  [[nodiscard]] bool quiescent() const override {
    return decision().has_value() && pending_relay_.empty();
  }

 private:
  [[nodiscard]] Round last_round() const { return params_.t + 1; }

  Outbox chains_to_all(const std::vector<std::uint32_t>& chains) {
    ValueVec payload_fields;
    payload_fields.reserve(chains.size());
    for (std::uint32_t c : chains) {
      payload_fields.push_back(arena_.to_value(c));
    }
    Value payload = tagged("ds", std::move(payload_fields));
    Outbox out;
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  SystemParams params_;
  ProcessId self_;
  ProcessId sender_;
  std::uint64_t instance_;
  std::shared_ptr<const crypto::Authenticator> auth_;
  crypto::Signer signer_;
  Value proposal_;
  crypto::ChainArena arena_;

  std::set<Value> extracted_;
  std::vector<std::uint32_t> pending_relay_;  // arena chain ids
  std::vector<const Value*> chain_fields_;    // scratch, inbox order
};

}  // namespace

ProtocolFactory dolev_strong_broadcast(
    std::shared_ptr<const crypto::Authenticator> auth, ProcessId sender,
    std::uint64_t instance) {
  return [auth = std::move(auth), sender,
          instance](const ProcessContext& ctx) {
    return std::make_unique<DolevStrongProcess>(ctx, auth, sender, instance);
  };
}

statics::CommSpec dolev_strong_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec;
  spec.protocol = "dolev-strong";
  spec.problem = "broadcast";
  spec.resilience = "t < n";
  spec.rounds = t + 1;
  spec.blocks = {
      {.label = "round 1",
       .rounds = Poly(1),
       .patterns = {{.label = "the sender multicasts its signed value",
                     .senders = Poly(1),
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kSignatureChain,
                     .sig_depth = Poly(1)}}},
      {.label = "relay rounds 2..t+1",
       .rounds = t,
       .patterns = {{.label =
                         "each process relays at most two extracted values",
                     .senders = Poly(2) * n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kSignatureChain,
                     .sig_depth = t + 1,
                     .per_block = true}}},
  };
  spec.notes =
      "a correct process relays at most two distinct values over the whole "
      "execution (two signed values already prove sender equivocation), so "
      "the relay pattern is per-block: 2n(n-1) relays total, not per round";
  return spec;
}

}  // namespace ba::protocols
