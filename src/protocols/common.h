#pragma once

// Shared conventions for protocol payloads and decisions.

#include <optional>
#include <string>

#include "runtime/message.h"
#include "runtime/process.h"
#include "runtime/value.h"

namespace ba::protocols {

/// Tagged payloads: ["tag", field...]. Protocols running side by side (e.g.
/// n parallel broadcast instances inside interactive consistency) prefix an
/// instance id field.
inline Value tagged(const std::string& tag, ValueVec fields) {
  ValueVec v;
  v.reserve(fields.size() + 1);
  v.emplace_back(tag);
  for (Value& f : fields) v.push_back(std::move(f));
  return Value{std::move(v)};
}

inline bool has_tag(const Value& v, const std::string& tag) {
  return v.is_vec() && !v.as_vec().empty() && v.as_vec()[0].is_str() &&
         v.as_vec()[0].as_str() == tag;
}

/// Field accessor for tagged payloads (index 0 is the tag).
inline const Value* field(const Value& v, std::size_t i) {
  if (!v.is_vec() || v.as_vec().size() <= i + 1) return nullptr;
  return &v.as_vec()[i + 1];
}

/// The distinguished "no value" decision used by broadcast protocols when
/// the sender is exposed as faulty.
inline Value bottom() { return Value::null(); }

/// Base class capturing the common state of a deciding process.
class DecidingProcess : public Process {
 public:
  [[nodiscard]] std::optional<Value> decision() const override {
    return decision_;
  }

 protected:
  void decide(Value v) {
    if (!decision_) decision_ = std::move(v);
  }

 private:
  std::optional<Value> decision_;
};

}  // namespace ba::protocols
