#include "protocols/external_validity.h"

#include <memory>
#include <utility>

#include "protocols/common.h"
#include "protocols/dolev_strong.h"

namespace ba::protocols {
namespace {

class ExternalValidityProcess final : public DecidingProcess {
 public:
  ExternalValidityProcess(const ProcessContext& ctx,
                          std::shared_ptr<const crypto::Authenticator> auth,
                          ValidPredicate valid)
      : ctx_(ctx), auth_(std::move(auth)), valid_(std::move(valid)) {
    start_view(0);
  }

  Outbox outbox_for_round(Round r) override {
    if (decision() || !view_process_) return {};
    return view_process_->outbox_for_round(view_round(r));
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (decision() || !view_process_) return;
    view_process_->deliver(view_round(r), inbox);
    if (auto d = view_process_->decision()) {
      if (valid_(*d)) {
        decide(*d);
        view_process_.reset();
      } else if (view_ + 1 <= ctx_.params.t) {
        start_view(view_ + 1);
      } else {
        // Unreachable with <= t faults: one of the t + 1 leaders is correct
        // and its proposal is valid. Decide bottom defensively.
        decide(bottom());
        view_process_.reset();
      }
    }
  }

  [[nodiscard]] bool quiescent() const override {
    return decision().has_value();
  }

 private:
  [[nodiscard]] Round view_len() const { return ctx_.params.t + 1; }
  [[nodiscard]] Round view_round(Round r) const {
    return r - view_ * view_len();
  }

  void start_view(std::uint32_t view) {
    view_ = view;
    view_process_ = dolev_strong_broadcast(
        auth_, /*sender=*/static_cast<ProcessId>(view),
        /*instance=*/1000 + view)(ctx_);
  }

  ProcessContext ctx_;
  std::shared_ptr<const crypto::Authenticator> auth_;
  ValidPredicate valid_;
  std::uint32_t view_{0};
  std::unique_ptr<Process> view_process_;
};

}  // namespace

ProtocolFactory external_validity_agreement(
    std::shared_ptr<const crypto::Authenticator> auth, ValidPredicate valid) {
  return [auth = std::move(auth),
          valid = std::move(valid)](const ProcessContext& ctx) {
    return std::make_unique<ExternalValidityProcess>(ctx, auth, valid);
  };
}

statics::CommSpec external_validity_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec;
  spec.protocol = "external-validity";
  spec.problem = "external-validity-agreement";
  spec.resilience = "t < n";
  spec.rounds = (t + 1) * (t + 1);
  spec.blocks = {
      {.label = "views 1..t+1, each a Dolev-Strong broadcast by its leader",
       .rounds = (t + 1) * (t + 1),
       .patterns =
           {{.label = "each view leader multicasts its signed proposal",
             .senders = t + 1,
             .receivers_per_sender = n - 1,
             .payload = PayloadClass::kSignatureChain,
             .sig_depth = Poly(1),
             .per_block = true},
            {.label = "relays: at most two values per process per view",
             .senders = Poly(2) * n * (t + 1),
             .receivers_per_sender = n - 1,
             .payload = PayloadClass::kSignatureChain,
             .sig_depth = t + 1,
             .per_block = true}}}};
  spec.notes =
      "t + 1 rotating views of t + 1 rounds each; the Dolev-Strong relay "
      "cap applies per view, giving (t+1)((n-1) + 2n(n-1)) total";
  return spec;
}

}  // namespace ba::protocols
