#pragma once

// Interactive consistency (IC) [78, 18]: correct processes agree on a vector
// of n values whose j-th component equals p_j's proposal whenever p_j is
// correct (IC-Validity). IC is the "universal" agreement problem of the
// paper's §5: any non-trivial problem satisfying the containment condition
// reduces to it (Algorithm 2).
//
// Two constructions:
//  * authenticated: n parallel Dolev-Strong broadcasts — any t < n;
//  * unauthenticated: n parallel (multicast + phase-king) bit broadcasts —
//    n > 3t, bits only (arbitrary values: see eig_interactive_consistency).

#include <memory>

#include "crypto/signature.h"
#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

/// Authenticated IC, any t < n, t + 1 rounds.
/// Decision: vector of n values (component = broadcast decision; bottom()
/// for exposed senders).
ProtocolFactory auth_interactive_consistency(
    std::shared_ptr<const crypto::Authenticator> auth);

/// Unauthenticated IC over bits, n > 3t, 1 + 3(t+1) rounds.
ProtocolFactory unauth_interactive_consistency_bits();

/// Static communication declarations. Parallel composition batches the n
/// instances into one wire message per ordered pair per round, so both
/// variants are (rounds) * n * (n-1) messages of n-bundled payloads.
statics::CommSpec auth_ic_comm_spec();
statics::CommSpec unauth_ic_bits_comm_spec();

}  // namespace ba::protocols
