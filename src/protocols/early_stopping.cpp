#include "protocols/early_stopping.h"

#include <memory>
#include <set>

#include "protocols/common.h"

namespace ba::protocols {
namespace {

class FloodSetProcess : public DecidingProcess {
 public:
  FloodSetProcess(const ProcessContext& ctx, bool early)
      : params_(ctx.params), self_(ctx.self), early_(early) {
    seen_.insert(ctx.proposal);
  }

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r > params_.t + 1) return out;
    ValueVec values(seen_.begin(), seen_.end());
    const Value payload = tagged("flood", {Value{std::move(values)}});
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > params_.t + 1) return;
    std::set<ProcessId> heard{self_};
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "flood")) continue;
      heard.insert(m.sender);
      if (const Value* vals = field(m.payload, 0)) {
        if (vals->is_vec()) {
          for (const Value& v : vals->as_vec()) seen_.insert(v);
        }
      }
    }
    if (early_ && !prev_heard_.empty() && heard == prev_heard_) {
      decide(*seen_.begin());
    }
    prev_heard_ = std::move(heard);
    if (r == params_.t + 1) decide(*seen_.begin());
  }

  /// Quiescent only after the full t + 1 rounds even if decided early: the
  /// flooding is what keeps everyone else safe.
  [[nodiscard]] bool quiescent() const override {
    return decision().has_value() && prev_rounds_done();
  }

 private:
  [[nodiscard]] bool prev_rounds_done() const {
    // After t + 1 deliveries prev_heard_ reflects round t + 1.
    return decision().has_value();
  }

  SystemParams params_;
  ProcessId self_;
  bool early_;
  std::set<Value> seen_;
  std::set<ProcessId> prev_heard_;
};

}  // namespace

ProtocolFactory floodset_consensus() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<FloodSetProcess>(ctx, /*early=*/false);
  };
}

ProtocolFactory early_deciding_floodset() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<FloodSetProcess>(ctx, /*early=*/true);
  };
}

statics::CommSpec floodset_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec;
  spec.protocol = "floodset";
  spec.problem = "crash-consensus";
  spec.resilience = "t < n (crash faults)";
  spec.rounds = t + 1;
  spec.blocks = {
      {.label = "flood rounds 1..t+1",
       .rounds = t + 1,
       .patterns = {{.label = "every process multicasts its value set",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kValueSet}}}};
  spec.notes =
      "(t+1) n (n-1) messages of up to n values each; decides the minimum "
      "after t + 1 rounds";
  return spec;
}

statics::CommSpec early_deciding_floodset_comm_spec() {
  statics::CommSpec spec = floodset_comm_spec();
  spec.protocol = "early-deciding-floodset";
  spec.aliases = {"floodset-early"};
  spec.notes =
      "decides after two clean rounds (by round f + 2) but keeps flooding "
      "through t + 1, so the worst-case structure matches floodset";
  return spec;
}

}  // namespace ba::protocols
