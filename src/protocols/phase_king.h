#pragma once

// Phase-King binary strong consensus (Berman-Garay-Perry), unauthenticated,
// n > 3t, 3(t+1) rounds, O(n^2 * t) messages.
//
// Strong Validity: if all correct processes propose the same bit, that bit is
// decided. Phases k = 1..t+1, king = p_{k-1}, three rounds per phase:
//   1. value exchange — everyone multicasts its preference; a process whose
//      count for bit w reaches n - t (own value included) backs w;
//   2. proposal exchange — backers multicast their backed bit; a bit
//      supported by >= t + 1 proposals becomes the preference (at most one
//      bit can be, since two would need correct proposers for both, which
//      n > 3t forbids); support >= n - t makes the process *sure*;
//   3. king round — the king multicasts its preference; processes that are
//      not sure adopt it.
// If all correct processes enter a phase with the same preference it persists
// (counts reach n - t everywhere); the first phase with a correct king makes
// all correct preferences equal. Decision after phase t + 1.

#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

/// Binary strong consensus. Non-bit proposals are coerced to 0.
ProtocolFactory phase_king_consensus();

/// Rounds used: 3 * (t + 1).
inline Round phase_king_rounds(const SystemParams& p) { return 3 * (p.t + 1); }

/// Resilience requirement.
inline std::uint32_t phase_king_min_n(std::uint32_t t) { return 3 * t + 1; }

/// Static communication declaration: (t+1)(2n(n-1) + (n-1)) bit messages
/// over 3(t+1) rounds.
statics::CommSpec phase_king_comm_spec();

}  // namespace ba::protocols
