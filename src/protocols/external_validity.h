#pragma once

// Byzantine agreement with External Validity [29] (§4.3): the decided value
// must satisfy a globally verifiable predicate valid(.). The blockchain-style
// problem: processes propose (e.g.) signed transactions; only valid ones may
// be decided.
//
// Protocol (authenticated, any t < n): leaders rotate. In view l
// (l = 0..t), leader p_l Dolev-Strong-broadcasts its current proposal; at the
// end of the view every process checks the agreed broadcast output — if it is
// valid, everyone decides it; otherwise the next view starts. Correct
// processes agree on every broadcast output, so they decide in the same view.
// Some view has a correct leader, whose proposal is valid, so termination
// takes at most (t + 1)(t + 1) rounds.
//
// Corollary 1 instantiation: the protocol has fully-correct executions
// deciding different values (unanimous proposal v => p_0 correct => v
// decided), so the Omega(t^2) bound applies to it.

#include <functional>
#include <memory>

#include "crypto/signature.h"
#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

using ValidPredicate = std::function<bool(const Value&)>;

/// Correct processes must propose values satisfying `valid`.
ProtocolFactory external_validity_agreement(
    std::shared_ptr<const crypto::Authenticator> auth, ValidPredicate valid);

inline Round external_validity_max_rounds(const SystemParams& p) {
  return (p.t + 1) * (p.t + 1);
}

/// Static communication declaration: (t+1)((n-1) + 2n(n-1)) signature-chain
/// messages over (t+1)^2 rounds (one Dolev-Strong broadcast per view).
statics::CommSpec external_validity_comm_spec();

}  // namespace ba::protocols
