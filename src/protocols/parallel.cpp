#include "protocols/parallel.h"

#include <map>
#include <utility>

#include "protocols/common.h"

namespace ba::protocols {
namespace {

class ParallelProcess final : public DecidingProcess {
 public:
  ParallelProcess(const ProcessContext& ctx, std::size_t count,
                  const InstanceFactory& make_instance,
                  DecisionCombiner combine)
      : params_(ctx.params), self_(ctx.self), combine_(std::move(combine)) {
    instances_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      instances_.push_back(make_instance(i, ctx));
    }
    decided_.assign(count, std::nullopt);
  }

  Outbox outbox_for_round(Round r) override {
    // Gather per-receiver bundles across instances.
    std::map<ProcessId, ValueVec> bundles;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      for (Outgoing& o : instances_[i]->outbox_for_round(r)) {
        bundles[o.to].push_back(Value{
            ValueVec{Value{static_cast<std::int64_t>(i)}, std::move(o.payload)}});
      }
    }
    Outbox out;
    out.reserve(bundles.size());
    for (auto& [to, parts] : bundles) {
      out.push_back(Outgoing{to, tagged("par", std::move(parts))});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    // Split bundles back into per-instance inboxes.
    std::vector<Inbox> per_instance(instances_.size());
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "par")) continue;
      const ValueVec& parts = m.payload.as_vec();
      for (std::size_t j = 1; j < parts.size(); ++j) {
        const Value& part = parts[j];
        if (!part.is_vec() || part.as_vec().size() != 2 ||
            !part.as_vec()[0].is_int()) {
          continue;
        }
        const std::int64_t i = part.as_vec()[0].as_int();
        if (i < 0 || static_cast<std::size_t>(i) >= instances_.size()) continue;
        per_instance[static_cast<std::size_t>(i)].push_back(
            Message{m.sender, m.receiver, m.round, part.as_vec()[1]});
      }
    }
    bool all_decided = true;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      instances_[i]->deliver(r, per_instance[i]);
      if (!decided_[i]) decided_[i] = instances_[i]->decision();
      if (!decided_[i]) all_decided = false;
    }
    if (all_decided && !decision()) {
      std::vector<Value> values;
      values.reserve(decided_.size());
      for (const auto& d : decided_) values.push_back(*d);
      decide(combine_(values));
    }
  }

  [[nodiscard]] bool quiescent() const override {
    for (const auto& inst : instances_) {
      if (!inst->quiescent()) return false;
    }
    return decision().has_value();
  }

 private:
  SystemParams params_;
  ProcessId self_;
  DecisionCombiner combine_;
  std::vector<std::unique_ptr<Process>> instances_;
  std::vector<std::optional<Value>> decided_;
};

}  // namespace

ProtocolFactory parallel_composition(std::size_t count,
                                     InstanceFactory make_instance,
                                     DecisionCombiner combine) {
  return [count, make_instance = std::move(make_instance),
          combine = std::move(combine)](const ProcessContext& ctx) {
    return std::make_unique<ParallelProcess>(ctx, count, make_instance,
                                             combine);
  };
}

}  // namespace ba::protocols
