#include "protocols/adapters.h"

#include <memory>
#include <utility>

#include "protocols/common.h"

namespace ba::protocols {
namespace {

class MappedProcess final : public DecidingProcess {
 public:
  MappedProcess(std::unique_ptr<Process> inner, DecisionMap decision_map)
      : inner_(std::move(inner)), decision_map_(std::move(decision_map)) {}

  Outbox outbox_for_round(Round r) override {
    return inner_->outbox_for_round(r);
  }

  void deliver(Round r, const Inbox& inbox) override {
    inner_->deliver(r, inbox);
    if (!decision()) {
      if (auto d = inner_->decision()) decide(decision_map_(*d));
    }
  }

  [[nodiscard]] bool quiescent() const override {
    return inner_->quiescent();
  }

 private:
  std::unique_ptr<Process> inner_;
  DecisionMap decision_map_;
};

class DelayedProcess final : public DecidingProcess {
 public:
  DelayedProcess(std::unique_ptr<Process> inner, Round offset)
      : inner_(std::move(inner)), offset_(offset) {}

  Outbox outbox_for_round(Round r) override {
    if (r <= offset_) return {};
    return inner_->outbox_for_round(r - offset_);
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r <= offset_) return;
    inner_->deliver(r - offset_, inbox);
    if (!decision()) {
      if (auto d = inner_->decision()) decide(*d);
    }
  }

  [[nodiscard]] bool quiescent() const override {
    return inner_->quiescent();
  }

 private:
  std::unique_ptr<Process> inner_;
  Round offset_;
};

}  // namespace

ProtocolFactory map_protocol(ProtocolFactory inner, ProposalMap proposal_map,
                             DecisionMap decision_map) {
  return [inner = std::move(inner), proposal_map = std::move(proposal_map),
          decision_map =
              std::move(decision_map)](const ProcessContext& ctx) {
    ProcessContext mapped = ctx;
    if (proposal_map) mapped.proposal = proposal_map(ctx.self, ctx.proposal);
    return std::make_unique<MappedProcess>(
        inner(mapped), decision_map ? decision_map : [](const Value& v) {
          return v;
        });
  };
}

ProtocolFactory delay_protocol(ProtocolFactory inner, Round offset) {
  return [inner = std::move(inner), offset](const ProcessContext& ctx) {
    return std::make_unique<DelayedProcess>(inner(ctx), offset);
  };
}

}  // namespace ba::protocols
