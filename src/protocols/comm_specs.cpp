#include "protocols/comm_specs.h"

#include "async/ben_or.h"
#include "async/bracha.h"
#include "protocols/beyond_agreement.h"
#include "protocols/broadcast.h"
#include "protocols/crusader.h"
#include "protocols/dolev_strong.h"
#include "protocols/early_stopping.h"
#include "protocols/eig.h"
#include "protocols/external_validity.h"
#include "protocols/gradecast.h"
#include "protocols/interactive_consistency.h"
#include "protocols/phase_king.h"
#include "protocols/turpin_coan.h"
#include "protocols/weak_consensus.h"

namespace ba::protocols {

const std::vector<statics::CommSpec>& all_comm_specs() {
  // Parameter choices mirror the runnable surfaces: gossip-ring at (k=2,
  // rounds=3) and relay-ring at k=2 (tools/tool_protocols.h,
  // lowerbound/sweep.cpp); approximate agreement at the test suite's
  // (epsilon=1, value_bound=1024); k-set at k=2.
  static const std::vector<statics::CommSpec> specs = {
      dolev_strong_comm_spec(),
      weak_consensus_auth_comm_spec(),
      phase_king_comm_spec(),
      weak_consensus_unauth_comm_spec(),
      turpin_coan_comm_spec(),
      unauth_broadcast_comm_spec(),
      eig_ic_comm_spec(),
      eig_strong_comm_spec(),
      auth_ic_comm_spec(),
      unauth_ic_bits_comm_spec(),
      crusader_comm_spec(),
      gradecast_comm_spec(),
      floodset_comm_spec(),
      early_deciding_floodset_comm_spec(),
      external_validity_comm_spec(),
      approximate_agreement_comm_spec(1, 1024),
      k_set_comm_spec(2),
      wc_candidate_silent_comm_spec(),
      wc_candidate_leader_beacon_comm_spec(),
      wc_candidate_gossip_ring_comm_spec(2, 3),
      wc_candidate_one_shot_echo_comm_spec(),
      bb_candidate_direct_comm_spec(),
      bb_candidate_relay_ring_comm_spec(2),
      // Asynchronous protocols (src/async/): the kBudget linter and the
      // `ba_cli bounds` surface cover the async backend through these.
      async::ben_or_comm_spec(),
      async::bracha_comm_spec(),
  };
  return specs;
}

const statics::CommSpec* find_comm_spec(std::string_view name) {
  for (const statics::CommSpec& spec : all_comm_specs()) {
    if (spec.protocol == name) return &spec;
    for (const std::string& alias : spec.aliases) {
      if (alias == name) return &spec;
    }
  }
  return nullptr;
}

}  // namespace ba::protocols
