#include "protocols/phase_king.h"

#include <array>
#include <memory>
#include <optional>

#include "protocols/common.h"

namespace ba::protocols {
namespace {

class PhaseKingProcess final : public DecidingProcess {
 public:
  explicit PhaseKingProcess(const ProcessContext& ctx)
      : params_(ctx.params), self_(ctx.self) {
    pref_ = ctx.proposal.try_bit().value_or(0);
  }

  Outbox outbox_for_round(Round r) override {
    if (r > total_rounds()) return {};
    switch (subround(r)) {
      case 1:
        return multicast(tagged("pk-val", {Value::bit(pref_)}));
      case 2:
        if (backed_.has_value()) {
          return multicast(tagged("pk-prop", {Value::bit(*backed_)}));
        }
        return {};
      case 3:
        if (self_ == king(r)) {
          return multicast(tagged("pk-king", {Value::bit(pref_)}));
        }
        return {};
      default:
        return {};
    }
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > total_rounds()) return;
    switch (subround(r)) {
      case 1: {
        std::array<std::uint32_t, 2> count{0, 0};
        ++count[static_cast<std::size_t>(pref_)];  // own value counts
        for (const Message& m : inbox) {
          if (auto b = parse_bit(m.payload, "pk-val")) {
            ++count[static_cast<std::size_t>(*b)];
          }
        }
        backed_.reset();
        for (int w : {0, 1}) {
          if (count[static_cast<std::size_t>(w)] >= params_.n - params_.t) {
            backed_ = w;
          }
        }
        break;
      }
      case 2: {
        std::array<std::uint32_t, 2> support{0, 0};
        if (backed_) ++support[static_cast<std::size_t>(*backed_)];
        for (const Message& m : inbox) {
          if (auto b = parse_bit(m.payload, "pk-prop")) {
            ++support[static_cast<std::size_t>(*b)];
          }
        }
        sure_ = false;
        for (int w : {0, 1}) {
          if (support[static_cast<std::size_t>(w)] >= params_.t + 1) {
            pref_ = w;
            sure_ = support[static_cast<std::size_t>(w)] >=
                    params_.n - params_.t;
          }
        }
        break;
      }
      case 3: {
        if (!sure_ && self_ != king(r)) {  // the king's own value is pref_
          int king_bit = 0;
          for (const Message& m : inbox) {
            if (m.sender != king(r)) continue;
            if (auto b = parse_bit(m.payload, "pk-king")) king_bit = *b;
          }
          pref_ = king_bit;
        }
        if (r == total_rounds()) decide(Value::bit(pref_));
        break;
      }
      default:
        break;
    }
  }

 private:
  [[nodiscard]] Round total_rounds() const { return 3 * (params_.t + 1); }
  [[nodiscard]] static Round subround(Round r) { return (r - 1) % 3 + 1; }
  [[nodiscard]] ProcessId king(Round r) const {
    return static_cast<ProcessId>(((r - 1) / 3) % params_.n);
  }

  Outbox multicast(const Value& payload) const {
    Outbox out;
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  static std::optional<int> parse_bit(const Value& payload,
                                      const std::string& tag) {
    if (!has_tag(payload, tag)) return std::nullopt;
    const Value* v = field(payload, 0);
    if (!v) return std::nullopt;
    return v->try_bit();
  }

  SystemParams params_;
  ProcessId self_;
  int pref_{0};
  std::optional<int> backed_;
  bool sure_{false};
};

}  // namespace

ProtocolFactory phase_king_consensus() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<PhaseKingProcess>(ctx);
  };
}

statics::CommSpec phase_king_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec;
  spec.protocol = "phase-king-strong";
  spec.problem = "strong-consensus";
  spec.resilience = "n > 3t";
  spec.rounds = Poly(3) * (t + 1);
  spec.blocks = {
      {.label = "value-exchange rounds (one per phase)",
       .rounds = t + 1,
       .patterns = {{.label = "every process multicasts its preference",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}},
      {.label = "proposal rounds (one per phase)",
       .rounds = t + 1,
       .patterns = {{.label = "every process multicasts its proposal",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}},
      {.label = "king rounds (one per phase)",
       .rounds = t + 1,
       .patterns = {{.label = "the phase king multicasts its tiebreak",
                     .senders = Poly(1),
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}},
  };
  spec.notes =
      "t + 1 phases of exchange / propose / king rounds; the king round has "
      "a single sender, so the bound is (t+1)(2n(n-1) + (n-1))";
  return spec;
}

}  // namespace ba::protocols
