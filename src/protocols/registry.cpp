#include "protocols/registry.h"

#include <memory>

#include "crypto/signature.h"
#include "protocols/early_stopping.h"
#include "protocols/eig.h"
#include "protocols/phase_king.h"
#include "protocols/weak_consensus.h"

namespace ba::protocols {

std::optional<ProtocolFactory> make_protocol_by_name(const std::string& name,
                                                     std::uint32_t n) {
  if (name == "silent") return wc_candidate_silent(1);
  if (name == "beacon") return wc_candidate_leader_beacon();
  if (name == "gossip") return wc_candidate_gossip_ring(2, 3);
  if (name == "one-shot-echo") return wc_candidate_one_shot_echo();
  if (name == "ds-weak") {
    auto auth = std::make_shared<crypto::Authenticator>(0xc11, n);
    return weak_consensus_auth(auth);
  }
  if (name == "phase-king") return weak_consensus_unauth();
  if (name == "phase-king-strong") return phase_king_consensus();
  if (name == "floodset") return floodset_consensus();
  if (name == "eig-strong") return eig_strong_consensus();
  return std::nullopt;
}

const char* registered_protocol_names() {
  return "silent beacon gossip one-shot-echo ds-weak phase-king "
         "phase-king-strong floodset eig-strong";
}

}  // namespace ba::protocols
