#pragma once

// Early-deciding consensus in the crash/omission-fault model, and the
// non-early FloodSet baseline.
//
// FloodSet [82]: every process floods the set of proposals it has seen for
// t + 1 rounds and decides the minimum — the textbook crash-tolerant
// consensus with Strong Validity.
//
// The early-deciding variant adds the classic stabilization rule: a process
// decides as soon as the set of processes it heard from is IDENTICAL in two
// consecutive rounds (no fresh crash evidence), which happens by round
// f + 2 when only f <= t processes actually crash. Crucially — this is the
// point of [50], "Early-deciding consensus is expensive", cited by the
// paper — deciding early does NOT allow stopping early: processes keep
// flooding until round t + 1 so that slower processes still learn their
// sets, and the message complexity stays Theta(n^2 t) even in fault-free
// runs. The E11 bench measures exactly this decoupling.
//
// Fault model: crash failures (a process stops sending at some round) or,
// more generally, send-muting omission; NOT arbitrary Byzantine behaviour.

#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

/// Decides min of the seen proposals at round t + 1 exactly.
ProtocolFactory floodset_consensus();

/// Decides min of the seen proposals at the first round whose heard-from
/// set repeats (<= f + 2 with f actual crashes), but keeps flooding until
/// t + 1.
ProtocolFactory early_deciding_floodset();

inline Round floodset_rounds(const SystemParams& p) { return p.t + 1; }

/// Static communication declarations: (t+1) n (n-1) value-set messages.
/// Early decision does not change the worst-case structure (the protocol
/// keeps flooding through round t + 1 either way).
statics::CommSpec floodset_comm_spec();
statics::CommSpec early_deciding_floodset_comm_spec();

}  // namespace ba::protocols
