#include "protocols/turpin_coan.h"

#include <map>
#include <memory>
#include <optional>

#include "protocols/common.h"
#include "protocols/phase_king.h"

namespace ba::protocols {
namespace {

class TurpinCoanProcess final : public DecidingProcess {
 public:
  explicit TurpinCoanProcess(const ProcessContext& ctx) : ctx_(ctx) {}

  Outbox outbox_for_round(Round r) override {
    if (r == 1) return multicast(tagged("tc-val", {ctx_.proposal}));
    if (r == 2) {
      if (candidate_) return multicast(tagged("tc-cand", {*candidate_}));
      return {};
    }
    if (!binary_) return {};
    return binary_->outbox_for_round(r - 2);
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r == 1) {
      std::map<Value, std::uint32_t> tally;
      ++tally[ctx_.proposal];
      for (const Message& m : inbox) {
        if (!has_tag(m.payload, "tc-val")) continue;
        if (const Value* v = field(m.payload, 0)) ++tally[*v];
      }
      for (const auto& [v, count] : tally) {
        if (count >= ctx_.params.n - ctx_.params.t) candidate_ = v;
      }
      return;
    }
    if (r == 2) {
      std::map<Value, std::uint32_t> tally;
      if (candidate_) ++tally[*candidate_];
      for (const Message& m : inbox) {
        if (!has_tag(m.payload, "tc-cand")) continue;
        if (const Value* v = field(m.payload, 0)) ++tally[*v];
      }
      std::uint32_t best = 0;
      for (const auto& [v, count] : tally) {
        if (count > best) {
          best = count;
          top_ = v;
        }
      }
      const int b = best >= ctx_.params.n - ctx_.params.t ? 1 : 0;
      ProcessContext inner = ctx_;
      inner.proposal = Value::bit(b);
      binary_ = phase_king_consensus()(inner);
      return;
    }
    binary_->deliver(r - 2, inbox);
    if (!decision()) {
      if (auto d = binary_->decision()) {
        decide(d->try_bit().value_or(0) == 1 && top_.has_value() ? *top_
                                                                 : bottom());
      }
    }
  }

  [[nodiscard]] bool quiescent() const override {
    return binary_ && binary_->quiescent();
  }

 private:
  Outbox multicast(const Value& payload) const {
    Outbox out;
    for (ProcessId p = 0; p < ctx_.params.n; ++p) {
      if (p != ctx_.self) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  ProcessContext ctx_;
  std::optional<Value> candidate_;
  std::optional<Value> top_;
  std::unique_ptr<Process> binary_;
};

}  // namespace

ProtocolFactory turpin_coan_multivalued() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<TurpinCoanProcess>(ctx);
  };
}

statics::CommSpec turpin_coan_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec = phase_king_comm_spec();
  spec.protocol = "turpin-coan";
  spec.problem = "strong-consensus";
  spec.rounds = Poly(2) + Poly(3) * (t + 1);
  spec.blocks.insert(
      spec.blocks.begin(),
      {{.label = "round 1",
        .rounds = Poly(1),
        .patterns = {{.label = "every process multicasts its value",
                      .senders = n,
                      .receivers_per_sender = n - 1,
                      .payload = PayloadClass::kValue}}},
       {.label = "round 2",
        .rounds = Poly(1),
        .patterns = {{.label = "every process multicasts its popular value",
                      .senders = n,
                      .receivers_per_sender = n - 1,
                      .payload = PayloadClass::kValue}}}});
  spec.notes =
      "two multivalued exchange rounds, then phase-king bit consensus on "
      "'is my candidate the popular one'";
  return spec;
}

}  // namespace ba::protocols
